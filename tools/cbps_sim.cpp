// cbps_sim — run a custom simulated experiment from the command line.
//
// Exposes every knob of the paper's evaluation (§5) so a user can design
// their own parameter sweep without writing C++:
//
//   $ cbps_sim --nodes=500 --mapping=m3 --transport=mcast
//              --subs=1000 --pubs=1000 --match-prob=0.5 --verify
//
// Prints the configuration, the per-request hop costs, storage stats and
// (with --verify) the delivery-correctness ledger.
#include <cstdio>
#include <iostream>
#include <string>

#include "cbps/common/flags.hpp"
#include "cbps/workload/fault_script.hpp"
#include "harness.hpp"
#include "sweep.hpp"

using namespace cbps;
using namespace cbps::bench;

namespace {

bool parse_mapping(const std::string& s, pubsub::MappingKind* out) {
  if (s == "m1" || s == "attribute-split") {
    *out = pubsub::MappingKind::kAttributeSplit;
  } else if (s == "m2" || s == "key-space-split") {
    *out = pubsub::MappingKind::kKeySpaceSplit;
  } else if (s == "m3" || s == "selective-attribute") {
    *out = pubsub::MappingKind::kSelectiveAttribute;
  } else {
    return false;
  }
  return true;
}

bool parse_transport(const std::string& s,
                     pubsub::PubSubConfig::Transport* out) {
  if (s == "unicast") {
    *out = pubsub::PubSubConfig::Transport::kUnicast;
  } else if (s == "mcast" || s == "multicast") {
    *out = pubsub::PubSubConfig::Transport::kMulticast;
  } else if (s == "chain") {
    *out = pubsub::PubSubConfig::Transport::kChain;
  } else {
    return false;
  }
  return true;
}

bool parse_dissemination(const std::string& s,
                         pubsub::PubSubConfig::Dissemination* out) {
  if (s == "unicast") {
    *out = pubsub::PubSubConfig::Dissemination::kUnicast;
  } else if (s == "mcast" || s == "multicast") {
    *out = pubsub::PubSubConfig::Dissemination::kMcast;
  } else if (s == "gossip") {
    *out = pubsub::PubSubConfig::Dissemination::kGossip;
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t nodes = 500;
  std::int64_t ring_bits = 13;
  std::int64_t seed = 1;
  std::string mapping = "m3";
  std::string transport = "unicast";
  std::string dissemination = "unicast";
  std::int64_t gossip_fanout = 3;
  std::int64_t gossip_rounds = 0;
  double anti_entropy_s = 10.0;
  double gossip_window_s = 60.0;
  std::int64_t subs = 1000;
  std::int64_t pubs = 1000;
  std::int64_t selective = 0;
  double match_prob = 0.5;
  double locality = 0.0;
  double zipf = 0.7;
  std::int64_t discretization = 1;
  bool buffering = false;
  bool collecting = false;
  double buffer_period_s = 5.0;
  std::int64_t replication = 0;
  double ttl_s = 0.0;  // 0 = never expire
  bool counting_index = false;
  std::string match_engine = "brute";
  bool verify = false;
  std::string save_trace;
  std::string replay_trace;
  double loss_rate = 0.0;
  std::int64_t max_retries = 5;
  double retry_base_ms = 250.0;
  std::string fault_script;
  std::int64_t seeds = 1;
  std::int64_t jobs = 0;
  std::int64_t sim_threads = 1;
  std::string json_path;
  std::string trace_path;
  double trace_sample_rate = 0.0;
  std::string metrics_json;
  double sample_period_s = 0.0;

  FlagParser parser(
      "cbps_sim — content-based pub/sub over a simulated Chord overlay\n"
      "(Baldoni et al., ICDCS 2005). Runs one experiment and prints the\n"
      "measured per-request costs.");
  parser.add("nodes", "number of overlay nodes", &nodes);
  parser.add("ring-bits", "key space is 2^bits", &ring_bits);
  parser.add("seed", "PRNG seed (runs are deterministic)", &seed);
  parser.add("mapping", "m1|m2|m3 (attribute-split, key-space-split, "
             "selective-attribute)", &mapping);
  parser.add("transport", "unicast|mcast|chain", &transport);
  parser.add("dissemination", "notify-leg backend: unicast|mcast|gossip",
             &dissemination);
  parser.add("gossip-fanout", "peers each infected node pushes to",
             &gossip_fanout);
  parser.add("gossip-rounds", "infect-and-die round budget (0 = auto: "
             "ceil(log2(group)) + 2)", &gossip_rounds);
  parser.add("anti-entropy-s", "gossip anti-entropy period in seconds "
             "(0 = repair off)", &anti_entropy_s);
  parser.add("gossip-window-s", "gossip repair retention window in seconds",
             &gossip_window_s);
  parser.add("subs", "subscriptions to inject (1 per 5s)", &subs);
  parser.add("pubs", "publications to inject (Poisson, mean 5s)", &pubs);
  parser.add("selective", "number of selective attributes (of 4)",
             &selective);
  parser.add("match-prob", "publication matching probability", &match_prob);
  parser.add("locality", "temporal locality of the event stream [0,1)",
             &locality);
  parser.add("zipf", "Zipf exponent for selective centers", &zipf);
  parser.add("discretization", "mapping interval width in values (1=off)",
             &discretization);
  parser.add("buffering", "buffer notifications (periodic batches)",
             &buffering);
  parser.add("collecting", "aggregate matches toward range agents",
             &collecting);
  parser.add("buffer-period-s", "buffering/collecting period in seconds",
             &buffer_period_s);
  parser.add("replication", "replicas per stored subscription",
             &replication);
  parser.add("ttl-s", "subscription expiration in seconds (0 = never)",
             &ttl_s);
  parser.add("counting-index", "use the counting matcher at rendezvous "
             "(shorthand for --match-engine counting)",
             &counting_index);
  parser.add("match-engine",
             "rendezvous matching engine: brute | counting | covering",
             &match_engine);
  parser.add("verify", "check exactly-once delivery at the end", &verify);
  parser.add("save-trace", "record the workload to this file", &save_trace);
  parser.add("replay-trace", "replay a recorded workload from this file",
             &replay_trace);
  parser.add("loss-rate", "per-message drop probability [0,1); non-zero "
             "arms ack/retry reliability", &loss_rate);
  parser.add("max-retries", "retransmissions per reliable message",
             &max_retries);
  parser.add("retry-base-ms", "first ack timeout in ms (doubles per retry)",
             &retry_base_ms);
  parser.add("fault-script",
             "scripted fault scenario, e.g. 'partition at=100 heal=400 "
             "frac=0.4; loss at=50 until=300 model=ge p=0.02 q=0.2 "
             "good=0.005 bad=0.7; slow at=10 nodes=3 factor=8; crash_burst "
             "at=200 count=5 correlation=0.7'",
             &fault_script);
  parser.add("seeds", "sweep over this many consecutive seeds (one "
             "independent run each, starting at --seed)", &seeds);
  parser.add("jobs", "worker threads for --seeds sweeps (0 = all hardware "
             "threads)", &jobs);
  parser.add("sim-threads", "engine worker threads inside each run (the "
             "epoch-synchronous sharded engine; results are bit-identical "
             "to 1, only wall time changes)", &sim_threads);
  parser.add("json", "dump per-run timings+metrics to this file",
             &json_path);
  parser.add("trace", "write the causal message trace here (.jsonl = one "
             "span per line; anything else = Chrome trace_event JSON for "
             "Perfetto)", &trace_path);
  parser.add("trace-sample-rate", "fraction of pub/sub roots traced "
             "(default: 1.0 when --trace is set, else off)",
             &trace_sample_rate);
  parser.add("metrics-json", "dump counters, latency/hop histograms "
             "(p50/p90/p99) and the time-series samples to this file",
             &metrics_json);
  parser.add("sample-period-s", "time-series sampler period in simulated "
             "seconds (default: 1 when --metrics-json is set, else off)",
             &sample_period_s);
  if (!parser.parse(argc, argv, std::cout, std::cerr)) return 1;
  if (verify && !replay_trace.empty()) {
    std::fprintf(stderr, "--verify cannot be combined with --replay-trace\n");
    return 1;
  }
  if (!fault_script.empty() && !replay_trace.empty()) {
    std::fprintf(stderr,
                 "--fault-script cannot be combined with --replay-trace\n");
    return 1;
  }
  if (seeds < 1 || jobs < 0) {
    std::fprintf(stderr, "bad --seeds/--jobs\n");
    return 1;
  }
  if (sim_threads < 1) {
    std::fprintf(stderr, "bad --sim-threads: %lld\n",
                 static_cast<long long>(sim_threads));
    return 1;
  }
  if (seeds > 1 && !(save_trace.empty() && replay_trace.empty())) {
    std::fprintf(stderr,
                 "--seeds > 1 cannot be combined with trace save/replay\n");
    return 1;
  }
  if (seeds > 1 && !(trace_path.empty() && metrics_json.empty())) {
    // Every run would clobber the same output file.
    std::fprintf(stderr,
                 "--seeds > 1 cannot be combined with --trace/--metrics-json\n");
    return 1;
  }
  if (trace_sample_rate < 0.0 || trace_sample_rate > 1.0) {
    std::fprintf(stderr, "bad --trace-sample-rate: %g (want [0,1])\n",
                 trace_sample_rate);
    return 1;
  }

  ExperimentConfig cfg;
  if (!parse_mapping(mapping, &cfg.mapping)) {
    std::fprintf(stderr, "bad --mapping: %s\n", mapping.c_str());
    return 1;
  }
  pubsub::PubSubConfig::Transport t;
  if (!parse_transport(transport, &t)) {
    std::fprintf(stderr, "bad --transport: %s\n", transport.c_str());
    return 1;
  }
  cfg.sub_transport = t;
  cfg.pub_transport = t;
  if (!parse_dissemination(dissemination, &cfg.dissemination)) {
    std::fprintf(stderr, "bad --dissemination: %s\n", dissemination.c_str());
    return 1;
  }
  if (gossip_fanout < 1 || gossip_rounds < 0 || anti_entropy_s < 0.0 ||
      gossip_window_s <= 0.0) {
    std::fprintf(stderr, "bad gossip knobs (want fanout >= 1, rounds >= 0, "
                         "anti-entropy >= 0, window > 0)\n");
    return 1;
  }
  cfg.gossip_fanout = static_cast<std::size_t>(gossip_fanout);
  cfg.gossip_rounds = static_cast<std::uint32_t>(gossip_rounds);
  cfg.anti_entropy_period =
      anti_entropy_s > 0 ? sim::from_seconds(anti_entropy_s) : 0;
  cfg.gossip_window = sim::from_seconds(gossip_window_s);
  cfg.nodes = static_cast<std::size_t>(nodes);
  cfg.ring_bits = static_cast<unsigned>(ring_bits);
  cfg.seed = static_cast<std::uint64_t>(seed);
  cfg.subscriptions = static_cast<std::uint64_t>(subs);
  cfg.publications = static_cast<std::uint64_t>(pubs);
  cfg.selective_attributes = static_cast<int>(selective);
  cfg.matching_probability = match_prob;
  cfg.event_locality = locality;
  cfg.zipf_exponent = zipf;
  cfg.discretization = discretization;
  cfg.buffering = buffering;
  cfg.collecting = collecting;
  cfg.buffer_period = sim::from_seconds(buffer_period_s);
  cfg.replication_factor = static_cast<std::size_t>(replication);
  cfg.sub_ttl = ttl_s > 0 ? sim::from_seconds(ttl_s) : sim::kSimTimeNever;
  const auto engine = pubsub::match_engine_from_string(match_engine);
  if (!engine) {
    std::fprintf(stderr,
                 "bad --match-engine: %s (want brute|counting|covering)\n",
                 match_engine.c_str());
    return 1;
  }
  cfg.match_engine = counting_index ? pubsub::MatchEngine::kCountingIndex
                                    : *engine;
  cfg.verify = verify;
  cfg.trace_save_path = save_trace;
  cfg.trace_replay_path = replay_trace;
  cfg.trace_path = trace_path;
  cfg.trace_sample_rate = trace_sample_rate;
  cfg.metrics_json_path = metrics_json;
  cfg.sample_period = sample_period_s > 0
                          ? sim::from_seconds(sample_period_s)
                          : 0;
  if (loss_rate < 0.0 || loss_rate >= 1.0) {
    std::fprintf(stderr, "bad --loss-rate: %g (want [0,1))\n", loss_rate);
    return 1;
  }
  cfg.loss_rate = loss_rate;
  cfg.max_retries = static_cast<std::uint32_t>(max_retries);
  cfg.retry_base = sim::from_seconds(retry_base_ms / 1000.0);
  if (!fault_script.empty()) {
    std::string fs_error;
    if (!workload::FaultScript::parse(fault_script, &fs_error)) {
      std::fprintf(stderr, "bad --fault-script: %s\n", fs_error.c_str());
      return 1;
    }
    cfg.fault_script = fault_script;
  }

  std::printf("config: n=%zu ring=2^%u mapping=%s transport=%s "
              "dissemination=%s subs=%llu "
              "pubs=%llu selective=%d p=%.2f disc=%lld buf=%d collect=%d "
              "repl=%zu ttl=%s seed=%llu%s\n\n",
              cfg.nodes, cfg.ring_bits, mapping_label(cfg.mapping).c_str(),
              transport_label(t).c_str(),
              dissemination_label(cfg.dissemination).c_str(),
              static_cast<unsigned long long>(cfg.subscriptions),
              static_cast<unsigned long long>(cfg.publications),
              cfg.selective_attributes, cfg.matching_probability,
              static_cast<long long>(cfg.discretization),
              cfg.buffering ? 1 : 0, cfg.collecting ? 1 : 0,
              cfg.replication_factor,
              ttl_s > 0 ? (std::to_string(ttl_s) + "s").c_str() : "never",
              static_cast<unsigned long long>(cfg.seed),
              seeds > 1 ? (" (+" + std::to_string(seeds - 1) +
                           " consecutive seeds)").c_str()
                        : "");

  bench::Sweep<> sweep("cbps_sim");
  bench::SweepOptions so;
  so.jobs = static_cast<std::size_t>(jobs);
  so.json_path = json_path;
  so.sim_threads = static_cast<std::size_t>(sim_threads);
  sweep.set_options(so);
  for (std::int64_t i = 0; i < seeds; ++i) {
    ExperimentConfig point = cfg;
    point.seed = cfg.seed + static_cast<std::uint64_t>(i);
    sweep.add("seed=" + std::to_string(point.seed), point);
  }

  if (seeds > 1) {
    // Multi-seed sweep: one compact row per run plus a verify tally.
    std::printf("%-12s %10s %10s %12s %10s%s\n", "seed", "hops/sub",
                "hops/pub", "hops/notif", "delivered",
                verify ? "   verify" : "");
    std::uint64_t failed = 0;
    sweep.run([&](std::size_t i, const ExperimentResult& r) {
      std::printf("%-12s %10.2f %10.2f %12.2f %10llu",
                  sweep.label(i).c_str(), r.hops_per_subscription,
                  r.hops_per_publication, r.hops_per_notification,
                  static_cast<unsigned long long>(
                      r.notifications_delivered));
      if (verify) {
        std::printf("   %s", r.verified ? "OK" : "FAILED");
        if (!r.verified) ++failed;
      }
      std::puts("");
    });
    if (verify && failed > 0) {
      std::printf("\n%llu of %lld runs FAILED verification\n",
                  static_cast<unsigned long long>(failed),
                  static_cast<long long>(seeds));
      return 2;
    }
    return 0;
  }

  const ExperimentResult r = sweep.run().front();

  std::printf("network cost (one-hop messages):\n");
  std::printf("  hops per subscription        %10.2f\n",
              r.hops_per_subscription);
  std::printf("  hops per publication         %10.2f\n",
              r.hops_per_publication);
  std::printf("  hops per notification        %10.2f\n",
              r.hops_per_notification);
  std::printf("  notify+collect hops per pub  %10.2f\n",
              r.notify_hops_per_publication);
  std::printf("  avg unicast route length     %10.2f\n", r.avg_route_hops);
  std::printf("storage:\n");
  std::printf("  max subscriptions per node   %10zu\n", r.max_subs_per_node);
  std::printf("  avg subscriptions per node   %10.1f\n", r.avg_subs_per_node);
  std::printf("deliveries:\n");
  std::printf("  notifications delivered      %10llu\n",
              static_cast<unsigned long long>(r.notifications_delivered));
  std::printf("  avg notification delay       %9.2fs\n",
              r.avg_notification_delay_s);
  std::printf("  delay p50/p99/max            %.2fs / %.2fs / %.2fs\n",
              r.delay_p50_s, r.delay_p99_s, r.delay_max_s);
  std::printf("  route hops p50/p99           %.1f / %.1f\n", r.hops_p50,
              r.hops_p99);
  if (!trace_path.empty()) {
    std::printf("trace: %llu traces, %llu spans -> %s\n",
                static_cast<unsigned long long>(r.traces_started),
                static_cast<unsigned long long>(r.trace_spans),
                trace_path.c_str());
  }
  if (!metrics_json.empty()) {
    std::printf("metrics: %s\n", metrics_json.c_str());
  }
  if (cfg.loss_rate > 0.0) {
    std::printf("reliability (loss-rate %.3f, %u retries, base %.0fms):\n",
                cfg.loss_rate, cfg.max_retries, retry_base_ms);
    std::printf("  messages lost in flight      %10llu\n",
                static_cast<unsigned long long>(r.messages_lost));
    std::printf("  retransmissions              %10llu\n",
                static_cast<unsigned long long>(r.retransmits));
    std::printf("  sends failed (budget spent)  %10llu\n",
                static_cast<unsigned long long>(r.sends_failed));
    std::printf("  duplicates suppressed        %10llu\n",
                static_cast<unsigned long long>(r.duplicates_suppressed));
  }
  if (cfg.dissemination == pubsub::PubSubConfig::Dissemination::kGossip) {
    std::printf("gossip backend (fanout %zu, %s rounds, anti-entropy "
                "%.0fs):\n",
                cfg.gossip_fanout,
                cfg.gossip_rounds > 0
                    ? std::to_string(cfg.gossip_rounds).c_str()
                    : "auto",
                anti_entropy_s);
    std::printf("  epidemic pushes sent         %10llu\n",
                static_cast<unsigned long long>(r.gossip_pushes));
    std::printf("  duplicate records dropped    %10llu\n",
                static_cast<unsigned long long>(r.gossip_duplicates));
    std::printf("  anti-entropy digests         %10llu\n",
                static_cast<unsigned long long>(r.gossip_digests));
    std::printf("  records pulled by repair     %10llu\n",
                static_cast<unsigned long long>(r.gossip_repairs));
    std::printf("  subscriptions learned        %10llu\n",
                static_cast<unsigned long long>(r.gossip_subs_learned));
  }
  if (!cfg.fault_script.empty()) {
    std::printf("fault scenario:\n");
    std::printf("  messages cut by partitions   %10llu\n",
                static_cast<unsigned long long>(r.partition_cut));
    std::printf("  nodes crashed by script      %10llu\n",
                static_cast<unsigned long long>(r.fault_crashes));
    std::printf("  retransmissions              %10llu\n",
                static_cast<unsigned long long>(r.retransmits));
    std::printf("  duplicates suppressed        %10llu\n",
                static_cast<unsigned long long>(r.duplicates_suppressed));
  }
  if (verify) {
    if (!cfg.fault_script.empty()) {
      // The harness windows the check to post-fault publications (see
      // ExperimentConfig::verify); say so next to the verdict.
      std::printf("verification window: publications after all faults "
                  "cleared\n");
    }
    std::printf("verification: %s (%llu expected, %llu missing, "
                "%llu duplicate, %llu spurious)\n",
                r.verified ? "OK" : "FAILED",
                static_cast<unsigned long long>(r.expected_deliveries),
                static_cast<unsigned long long>(r.missing),
                static_cast<unsigned long long>(r.duplicates),
                static_cast<unsigned long long>(r.spurious));
    return r.verified ? 0 : 2;
  }
  return 0;
}
