#!/usr/bin/env python3
"""Analyze a causal trace written by the cbps harness (--trace).

Accepts both export formats:
  * JSONL (one span per line, produced for ".jsonl" paths)
  * Chrome trace_event JSON (everything else; the spans ride in each
    event's "args" and the kind in its "name")

Reports:
  * span counts per kind and per-trace span statistics
  * per-phase latency breakdown of completed traces (publish -> map ->
    first/last route hop -> deliver)
  * top-k hottest nodes by span count
  * top-k hottest rendezvous keys from "hot-key" spans (a = key id,
    b = notifications attributed to it), with each trace's
    publish->deliver time attributed evenly across its distinct keys
  * integrity checks: every span's parent must exist, belong to the same
    trace, and start no later than its child; sampled publish traces must
    terminate (deliver or drop span)

Exit status 1 on any integrity violation (orphans, time-travel parents,
unterminated publish traces), 0 otherwise.
"""

import argparse
import collections
import json
import sys


def load_spans(path):
    """Return a list of span dicts with the JSONL field names."""
    with open(path, "r", encoding="utf-8") as f:
        # JSONL span lines start with "{" too, so sniff by parsing: a
        # Chrome trace is one JSON document, a JSONL file is not.
        try:
            doc = json.load(f)
        except json.JSONDecodeError:
            doc = None
        f.seek(0)
        if isinstance(doc, dict):
            spans = []
            for ev in doc.get("traceEvents", []):
                args = ev.get("args", {})
                if "span" not in args:
                    continue
                spans.append({
                    "span": args["span"],
                    "trace": args["trace"],
                    "parent": args["parent"],
                    "kind": ev["name"],
                    "node": ev["tid"],
                    "ts_us": ev["ts"],
                    "end_us": ev["ts"] + ev.get("dur", 0),
                    "a": args.get("a", 0),
                    "b": args.get("b", 0),
                })
            return spans
        return [json.loads(line) for line in f if line.strip()]


def check_integrity(spans):
    """Yield human-readable violation strings."""
    by_id = {s["span"]: s for s in spans}
    for s in spans:
        parent = s["parent"]
        if parent == 0:
            continue
        p = by_id.get(parent)
        if p is None:
            yield (f"orphan: span {s['span']} ({s['kind']}) references "
                   f"missing parent {parent}")
            continue
        if p["trace"] != s["trace"]:
            yield (f"cross-trace parent: span {s['span']} (trace "
                   f"{s['trace']}) -> parent {parent} (trace {p['trace']})")
        if p["ts_us"] > s["ts_us"]:
            yield (f"time-travel: span {s['span']} at {s['ts_us']}us starts "
                   f"before parent {parent} at {p['ts_us']}us")

    # Every publish-rooted trace must end in at least one deliver or drop.
    # (A publish whose event matches nothing legitimately has neither, but
    # then it has no notify/buffer/collect spans either.)
    by_trace = collections.defaultdict(list)
    for s in spans:
        by_trace[s["trace"]].append(s)
    for trace_id, members in sorted(by_trace.items()):
        kinds = collections.Counter(m["kind"] for m in members)
        if "publish" not in kinds:
            continue
        routed = kinds["notify"] + kinds["buffer"] + kinds["collect"]
        terminated = kinds["deliver"] + kinds["drop"]
        if routed > 0 and terminated == 0:
            yield (f"unterminated: trace {trace_id} routed notifications "
                   f"({dict(kinds)}) but has no deliver/drop span")


def phase_breakdown(spans):
    """Per-trace publish->deliver latency split into phases (us)."""
    by_trace = collections.defaultdict(list)
    for s in spans:
        by_trace[s["trace"]].append(s)
    rows = []
    for members in by_trace.values():
        kinds = collections.defaultdict(list)
        for m in members:
            kinds[m["kind"]].append(m)
        if not kinds["publish"] or not kinds["deliver"]:
            continue
        start = min(m["ts_us"] for m in kinds["publish"])
        hops = kinds["route-hop"]
        first_hop = min((m["ts_us"] for m in hops), default=start)
        last_hop = max((m["ts_us"] for m in hops), default=start)
        done = max(m["end_us"] for m in kinds["deliver"])
        rows.append({
            "mapping_us": first_hop - start,
            "routing_us": last_hop - first_hop,
            "delivery_us": done - last_hop,
            "total_us": done - start,
            "hops": len(hops),
        })
    return rows


def hot_key_attribution(spans):
    """Aggregate "hot-key" spans (a = rendezvous key, b = notifications
    the match charged to it) and attribute each trace's publish->deliver
    wall time evenly across the distinct keys its matches touched.

    Returns {key: {"matches", "notifications", "time_us"}}.
    """
    by_trace = collections.defaultdict(list)
    for s in spans:
        by_trace[s["trace"]].append(s)
    keys = collections.defaultdict(
        lambda: {"matches": 0, "notifications": 0, "time_us": 0.0})
    for members in by_trace.values():
        hot = [m for m in members if m["kind"] == "hot-key"]
        if not hot:
            continue
        publishes = [m["ts_us"] for m in members if m["kind"] == "publish"]
        delivers = [m["end_us"] for m in members if m["kind"] == "deliver"]
        total_us = (max(delivers) - min(publishes)
                    if publishes and delivers else 0)
        distinct = {m["a"] for m in hot}
        share_us = total_us / len(distinct)
        for m in hot:
            keys[m["a"]]["matches"] += 1
            keys[m["a"]]["notifications"] += m["b"]
        for k in distinct:
            keys[k]["time_us"] += share_us
    return keys


def pct(values, p):
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(p / 100.0 * len(ordered)))
    return ordered[idx]


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="trace file (.jsonl or Chrome JSON)")
    ap.add_argument("--top", type=int, default=10,
                    help="hottest nodes to list (default 10)")
    ap.add_argument("--max-violations", type=int, default=20,
                    help="violations to print before truncating")
    args = ap.parse_args()

    spans = load_spans(args.trace)
    if not spans:
        print("no spans found")
        return 1

    traces = {s["trace"] for s in spans}
    print(f"{len(spans)} spans in {len(traces)} traces")

    print("\nspans per kind:")
    for kind, count in collections.Counter(
            s["kind"] for s in spans).most_common():
        print(f"  {kind:<12} {count}")

    rows = phase_breakdown(spans)
    if rows:
        print(f"\nphase breakdown over {len(rows)} publish->deliver traces "
              "(milliseconds):")
        print(f"  {'phase':<10} {'p50':>8} {'p90':>8} {'p99':>8} {'max':>8}")
        for phase in ("mapping_us", "routing_us", "delivery_us", "total_us"):
            vals = [r[phase] for r in rows]
            name = phase[:-3]
            print(f"  {name:<10} "
                  f"{pct(vals, 50) / 1000:>8.1f} {pct(vals, 90) / 1000:>8.1f} "
                  f"{pct(vals, 99) / 1000:>8.1f} {max(vals) / 1000:>8.1f}")
        hop_counts = [r["hops"] for r in rows]
        print(f"  route hops per trace: p50={pct(hop_counts, 50)} "
              f"p99={pct(hop_counts, 99)} max={max(hop_counts)}")

    hot_keys = hot_key_attribution(spans)
    if hot_keys:
        total_notifs = sum(v["notifications"] for v in hot_keys.values())
        print(f"\ntop {args.top} hottest rendezvous keys "
              f"({len(hot_keys)} keys saw matches):")
        print(f"  {'key':<12} {'matches':>8} {'notifs':>8} {'share':>7} "
              f"{'attrib ms':>10}")
        ranked = sorted(hot_keys.items(),
                        key=lambda kv: (-kv[1]["notifications"],
                                        -kv[1]["matches"], kv[0]))
        for key, v in ranked[:args.top]:
            share = (v["notifications"] / total_notifs
                     if total_notifs else 0.0)
            print(f"  {key:<12} {v['matches']:>8} {v['notifications']:>8} "
                  f"{share:>6.1%} {v['time_us'] / 1000:>10.1f}")

    print(f"\ntop {args.top} hottest nodes by span count:")
    per_node = collections.Counter(s["node"] for s in spans)
    for node, count in per_node.most_common(args.top):
        kinds = collections.Counter(
            s["kind"] for s in spans if s["node"] == node)
        top_kind, top_n = kinds.most_common(1)[0]
        print(f"  node {node:<8} {count:>7} spans "
              f"(mostly {top_kind}: {top_n})")

    violations = list(check_integrity(spans))
    if violations:
        print(f"\nINTEGRITY: {len(violations)} violation(s)")
        for v in violations[:args.max_violations]:
            print(f"  {v}")
        if len(violations) > args.max_violations:
            print(f"  ... and {len(violations) - args.max_violations} more")
        return 1
    print("\nintegrity: OK (no orphaned spans, parents precede children, "
          "routed traces terminate)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
