// Extension experiment — delivery under message loss (and churn).
//
// The paper's evaluation assumes a perfect wire. This bench injects
// uniform per-message loss into the Chord substrate and measures what
// the hop-by-hop ack/retry layer buys back: the delivery ledger reports
// the fraction of matched traffic that still reached its subscribers,
// the duplicates the end-to-end filter had to absorb, and the
// retransmission overhead paid for the recovery — swept over loss rate
// with and without concurrent membership churn.
#include <cstdio>
#include <string>
#include <vector>

#include "cbps/common/assert.hpp"
#include "cbps/pubsub/delivery_checker.hpp"
#include "cbps/workload/churn.hpp"
#include "cbps/workload/driver.hpp"
#include "cbps/workload/fault_script.hpp"
#include "sweep.hpp"

using namespace cbps;

namespace {

struct Row {
  std::uint64_t expected = 0;
  std::uint64_t missing = 0;
  std::uint64_t duplicates = 0;       // surfaced past the filter
  std::uint64_t dups_suppressed = 0;  // absorbed by the filter
  std::uint64_t lost = 0;             // dropped in flight
  std::uint64_t retransmits = 0;
  std::uint64_t sends_failed = 0;
  std::uint64_t total_hops = 0;
  double delivery_rate = 1.0;
  double delay_p50_s = 0;
  double delay_p99_s = 0;
  double hops_p50 = 0;
  double hops_p99 = 0;
  double retries_p99 = 0;
  std::uint64_t sim_events = 0;
};

bench::JsonFields json_fields(const Row& r) {
  return {{"expected", static_cast<double>(r.expected)},
          {"missing", static_cast<double>(r.missing)},
          {"duplicates", static_cast<double>(r.duplicates)},
          {"dups_suppressed", static_cast<double>(r.dups_suppressed)},
          {"lost", static_cast<double>(r.lost)},
          {"retransmits", static_cast<double>(r.retransmits)},
          {"sends_failed", static_cast<double>(r.sends_failed)},
          {"total_hops", static_cast<double>(r.total_hops)},
          {"delivery_rate", r.delivery_rate},
          {"delay_p50_s", r.delay_p50_s},
          {"delay_p99_s", r.delay_p99_s},
          {"hops_p50", r.hops_p50},
          {"hops_p99", r.hops_p99},
          {"retries_p99", r.retries_p99}};
}

bench::JsonFields metrics_fields(const Row& r) {
  return {{"delay_p50_s", r.delay_p50_s},
          {"delay_p99_s", r.delay_p99_s},
          {"hops_p50", r.hops_p50},
          {"hops_p99", r.hops_p99},
          {"retries_p99", r.retries_p99},
          {"delivery_rate", r.delivery_rate}};
}

enum class Churn { kNone, kGraceful, kCrashy };

Row run(double loss_rate, Churn churn_kind, std::size_t sim_threads) {
  // The loss regime is a one-directive fault script (the scripted-
  // scenario engine's canonical path) instead of a construction knob.
  workload::FaultScript script;
  if (loss_rate > 0.0) {
    std::string error;
    const auto parsed = workload::FaultScript::parse(
        "loss at=0 model=uniform rate=" + std::to_string(loss_rate),
        &error);
    CBPS_ASSERT_MSG(parsed.has_value(), "bad loss script");
    script = *parsed;
  }

  pubsub::SystemConfig cfg;
  cfg.nodes = 64;
  cfg.seed = 4242;
  cfg.chord.ring = RingParams{12};
  cfg.chord.stabilize_period = sim::sec(5);
  cfg.chord.force_reliable = script.needs_reliable_transport();
  cfg.mapping = pubsub::MappingKind::kSelectiveAttribute;
  cfg.pubsub.sub_transport = pubsub::PubSubConfig::Transport::kMulticast;
  cfg.sim_threads = sim_threads;
  pubsub::PubSubSystem system(cfg, pubsub::Schema::uniform(3, 99'999));
  system.network().start_maintenance_all();

  workload::FaultScriptRunner fault_runner(system, script, cfg.seed);
  fault_runner.start();

  pubsub::DeliveryChecker checker;
  workload::WorkloadParams wp;
  wp.matching_probability = 0.8;
  workload::WorkloadGenerator gen(system.schema(), wp, 17);
  workload::DriverParams dp;
  dp.max_subscriptions = 60;
  dp.max_publications = 300;
  dp.sub_interval = sim::sec(5);
  workload::Driver driver(system, gen, dp, &checker);
  driver.start();

  workload::ChurnParams cp;
  cp.mean_interval_s = 45.0;
  cp.join_fraction = 0.4;
  cp.crash_fraction = churn_kind == Churn::kCrashy ? 1.0 : 0.0;
  cp.min_nodes = 32;
  workload::ChurnDriver churn(
      system, cp, 99, [&driver](Key id) {
        for (const auto& sub : driver.active_subscriptions()) {
          if (sub->subscriber == id) return true;
        }
        return false;
      });
  churn.set_delivery_checker(&checker);
  if (churn_kind != Churn::kNone) churn.start();

  // Publications are Poisson(5 s) x 300 ≈ 1500 s of simulated time.
  system.run_for(sim::sec(2'000));
  churn.stop();
  system.run_for(sim::sec(120));  // drain retries + final repairs

  const auto report = checker.verify(/*grace=*/sim::sec(10));
  const metrics::Registry& reg = system.network().registry();
  Row row;
  row.expected = report.expected;
  row.missing = report.missing;
  row.duplicates = report.duplicates;
  row.dups_suppressed = system.duplicates_suppressed();
  row.lost = reg.counter_value("chord.net.lost");
  row.retransmits = reg.counter_value("chord.retransmits");
  row.sends_failed = reg.counter_value("chord.send_failed");
  const overlay::TrafficStats& traffic = system.traffic();
  for (std::size_t c = 0; c < overlay::kMessageClassCount; ++c) {
    row.total_hops += traffic.hops(static_cast<overlay::MessageClass>(c));
  }
  row.delivery_rate =
      report.expected == 0
          ? 1.0
          : static_cast<double>(report.delivered) /
                static_cast<double>(report.expected);
  const metrics::Histogram delay_hist = system.delay_histogram();
  row.delay_p50_s = delay_hist.p50();
  row.delay_p99_s = delay_hist.p99();
  metrics::Registry& reg_mut = system.network().registry();
  row.hops_p50 = reg_mut.histogram("chord.route_hops").p50();
  row.hops_p99 = reg_mut.histogram("chord.route_hops").p99();
  row.retries_p99 = reg_mut.histogram("chord.retries_per_send").p99();
  row.sim_events = system.sim().events_processed();
  return row;
}

const char* churn_label(Churn c) {
  switch (c) {
    case Churn::kNone: return "none";
    case Churn::kGraceful: return "graceful";
    case Churn::kCrashy: return "crashes";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Sweep<Row> sweep("loss_resilience");
  if (!sweep.parse_args(argc, argv)) return 1;

  const double losses[] = {0.0, 0.01, 0.02, 0.05};
  const Churn churns[] = {Churn::kNone, Churn::kGraceful, Churn::kCrashy};
  for (const double loss : losses) {
    for (const Churn churn : churns) {
      sweep.add("loss=" + std::to_string(loss) +
                    "/churn=" + churn_label(churn),
                [loss, churn, st = sweep.options().sim_threads] {
                  return run(loss, churn, st);
                });
    }
  }

  std::puts("=== Loss resilience: ack/retry under a lossy wire ===");
  std::puts("64 nodes, 60 subscriptions + 300 publications (~1500s);");
  std::puts("Mapping 3, m-cast; churn = Poisson(45s) joins+removals\n");
  std::printf("%-7s %-9s %10s %8s %6s %9s %7s %8s %7s %10s\n", "loss",
              "churn", "expected", "missing", "dups", "dupsupp", "lost",
              "retrans", "failed", "delivered");
  const std::size_t per_group = std::size(churns);
  sweep.run([&](std::size_t i, const Row& r) {
    // Retransmit overhead: resends as a share of all transmissions.
    const double overhead =
        r.total_hops == 0 ? 0.0
                          : 100.0 * static_cast<double>(r.retransmits) /
                                static_cast<double>(r.total_hops);
    std::printf(
        "%-7.2f %-9s %10llu %8llu %6llu %9llu %7llu %7.2f%% %7llu %9.1f%%\n",
        losses[i / per_group], churn_label(churns[i % per_group]),
        static_cast<unsigned long long>(r.expected),
        static_cast<unsigned long long>(r.missing),
        static_cast<unsigned long long>(r.duplicates),
        static_cast<unsigned long long>(r.dups_suppressed),
        static_cast<unsigned long long>(r.lost), overhead,
        static_cast<unsigned long long>(r.sends_failed),
        100.0 * r.delivery_rate);
  });
  std::puts("\nretrans = timer-driven resends as % of all transmissions");
  std::puts("(the bandwidth price of reliability); dupsupp = duplicates");
  std::puts("absorbed by the end-to-end (event, subscription) filter so");
  std::puts("subscribers still observe at-most-once delivery.");
  return 0;
}
