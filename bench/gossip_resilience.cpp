// Extension experiment — gossip resilience: the delivery-rate vs
// message-cost frontier of the three dissemination backends (unicast,
// m-cast, gossip) across the fault matrix, with the gossip fan-out and
// anti-entropy period as sweep axes.
//
// Unicast and m-cast notifications ride the ack/retry transport, so
// their answer to loss is retransmission; gossip messages are exempt
// and answer with epidemic redundancy plus periodic anti-entropy pull
// repair. Each cell reports what that trade buys: the delivery ratio
// (overall and after the faults clear), the bytes spent on the notify
// leg per delivered notification, and the gossip-internal counters
// (pushes, digests, repaired records). The headline: under bursty
// Gilbert–Elliott loss around 18% plus a correlated crash burst, the
// gossip backend matches or beats the m-cast tree's delivery rate
// while paying its overhead in small digests instead of full-payload
// retransmissions.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cbps/pubsub/audit.hpp"
#include "cbps/pubsub/delivery_checker.hpp"
#include "cbps/workload/driver.hpp"
#include "cbps/workload/fault_script.hpp"
#include "sweep.hpp"

using namespace cbps;

namespace {

struct Scenario {
  const char* label;
  const char* script;       // FaultScript text ("" = baseline)
  double post_clear_from_s; // post-fault window start (0 = whole run)
};

// Faults start after the 60 subscriptions have registered (t = 300 s).
// The GE parameters give ~18% long-run loss (stationary bad-state
// probability p/(p+q) = 0.25 at 70% bad-state drop + 1% good-state).
const Scenario kScenarios[] = {
    {"baseline", "", 0},
    {"ge_loss",
     "loss at=300 until=1500 model=ge p=0.05 q=0.15 good=0.01 bad=0.7",
     1560},
    {"crash_burst", "crash_burst at=700 count=6 correlation=0.7", 760},
    {"ge_loss_crash",
     "loss at=300 until=1500 model=ge p=0.05 q=0.15 good=0.01 bad=0.7\n"
     "crash_burst at=700 count=6 correlation=0.7",
     1560},
};

struct Backend {
  const char* label;
  pubsub::PubSubConfig::Dissemination dissemination;
  std::size_t fanout;        // gossip only
  double anti_entropy_s;     // gossip only
};

const Backend kBackends[] = {
    {"unicast", pubsub::PubSubConfig::Dissemination::kUnicast, 0, 0},
    {"mcast", pubsub::PubSubConfig::Dissemination::kMcast, 0, 0},
    {"gossip/f2", pubsub::PubSubConfig::Dissemination::kGossip, 2, 10},
    {"gossip/f4", pubsub::PubSubConfig::Dissemination::kGossip, 4, 10},
    {"gossip/ae5", pubsub::PubSubConfig::Dissemination::kGossip, 3, 5},
    {"gossip/ae20", pubsub::PubSubConfig::Dissemination::kGossip, 3, 20},
};

struct Row {
  std::uint64_t expected = 0;
  std::uint64_t missing = 0;
  std::uint64_t duplicates = 0;
  double delivery_rate = 1.0;
  double post_clear_rate = 1.0;
  std::uint64_t retransmits = 0;
  std::uint64_t notify_hops = 0;    // kNotify + kGossip wire hops
  double notify_kb = 0;             // kNotify + kGossip wire bytes
  double kb_per_delivery = 0;       // notify-leg cost per delivered
  std::uint64_t pushes = 0;
  std::uint64_t digests = 0;
  std::uint64_t repairs = 0;
  std::uint64_t gossip_duplicates = 0;
  std::uint64_t misdirected = 0;
  std::uint64_t crashes = 0;
  double delay_p50_s = 0;
  double delay_p99_s = 0;
  std::uint64_t sim_events = 0;
};

bench::JsonFields json_fields(const Row& r) {
  return {{"expected", static_cast<double>(r.expected)},
          {"missing", static_cast<double>(r.missing)},
          {"duplicates", static_cast<double>(r.duplicates)},
          {"delivery_rate", r.delivery_rate},
          {"post_clear_rate", r.post_clear_rate},
          {"retransmits", static_cast<double>(r.retransmits)},
          {"notify_hops", static_cast<double>(r.notify_hops)},
          {"notify_kb", r.notify_kb},
          {"kb_per_delivery", r.kb_per_delivery},
          {"gossip_pushes", static_cast<double>(r.pushes)},
          {"gossip_digests", static_cast<double>(r.digests)},
          {"gossip_repairs", static_cast<double>(r.repairs)},
          {"gossip_duplicates", static_cast<double>(r.gossip_duplicates)},
          {"misdirected", static_cast<double>(r.misdirected)},
          {"crashes", static_cast<double>(r.crashes)},
          {"delay_p50_s", r.delay_p50_s},
          {"delay_p99_s", r.delay_p99_s}};
}

bench::JsonFields metrics_fields(const Row& r) {
  return {{"delay_p50_s", r.delay_p50_s},
          {"delay_p99_s", r.delay_p99_s},
          {"delivery_rate", r.delivery_rate},
          {"post_clear_rate", r.post_clear_rate},
          {"kb_per_delivery", r.kb_per_delivery}};
}

Row run(const Scenario& sc, const Backend& be, std::size_t sim_threads) {
  std::string error;
  const auto script = workload::FaultScript::parse(sc.script, &error);
  CBPS_ASSERT_MSG(script.has_value(), "bad scenario script");

  pubsub::SystemConfig cfg;
  cfg.nodes = 64;
  cfg.seed = 4242;
  cfg.chord.ring = RingParams{12};
  cfg.chord.stabilize_period = sim::sec(5);
  cfg.chord.force_reliable = script->needs_reliable_transport();
  cfg.mapping = pubsub::MappingKind::kSelectiveAttribute;
  cfg.pubsub.sub_transport = pubsub::PubSubConfig::Transport::kMulticast;
  cfg.pubsub.replication_factor = 2;
  cfg.pubsub.dissemination = be.dissemination;
  if (be.dissemination == pubsub::PubSubConfig::Dissemination::kGossip) {
    cfg.pubsub.gossip_fanout = be.fanout;
    cfg.pubsub.anti_entropy_period = sim::from_seconds(be.anti_entropy_s);
    // Retention must hold enough digest rounds to out-wait a loss burst.
    cfg.pubsub.gossip_window = sim::sec(120);
  }
  cfg.sim_threads = sim_threads;
  pubsub::PubSubSystem system(cfg, pubsub::Schema::uniform(3, 99'999));
  system.network().start_maintenance_all();

  pubsub::DeliveryChecker checker;
  workload::WorkloadParams wp;
  wp.matching_probability = 0.8;
  workload::WorkloadGenerator gen(system.schema(), wp, 17);
  workload::DriverParams dp;
  dp.max_subscriptions = 60;
  dp.max_publications = 300;
  dp.sub_interval = sim::sec(5);
  workload::Driver driver(system, gen, dp, &checker);
  driver.start();

  workload::FaultScriptRunner runner(
      system, *script, cfg.seed, [&driver](Key id) {
        // Subscribers survive: the sweep measures the notify leg's
        // resilience, not subscriber death.
        for (const auto& sub : driver.active_subscriptions()) {
          if (sub->subscriber == id) return true;
        }
        return false;
      });
  runner.set_delivery_checker(&checker);
  runner.start();

  system.run_for(sim::sec(2'000));
  system.run_for(sim::sec(200));  // drain retries + final repairs

  const auto report = checker.verify(/*grace=*/sim::sec(15));
  const auto post_clear = checker.verify(
      /*grace=*/sim::sec(15), sim::from_seconds(sc.post_clear_from_s));
  const metrics::Registry& reg = system.network().registry();
  const overlay::TrafficStats& traffic = system.traffic();

  Row row;
  row.expected = report.expected;
  row.missing = report.missing;
  row.duplicates = report.duplicates;
  row.delivery_rate =
      report.expected == 0
          ? 1.0
          : static_cast<double>(report.delivered) /
                static_cast<double>(report.expected);
  row.post_clear_rate =
      post_clear.expected == 0
          ? 1.0
          : static_cast<double>(post_clear.delivered) /
                static_cast<double>(post_clear.expected);
  row.retransmits = reg.counter_value("chord.retransmits");
  row.notify_hops = traffic.hops(overlay::MessageClass::kNotify) +
                    traffic.hops(overlay::MessageClass::kGossip);
  const std::uint64_t notify_bytes =
      traffic.bytes(overlay::MessageClass::kNotify) +
      traffic.bytes(overlay::MessageClass::kGossip);
  row.notify_kb = static_cast<double>(notify_bytes) / 1024.0;
  row.kb_per_delivery =
      report.delivered == 0
          ? 0
          : row.notify_kb / static_cast<double>(report.delivered);
  const auto& gs = system.gossip_stats();
  row.pushes = gs.pushes_sent;
  row.digests = gs.digests_sent;
  row.repairs = gs.repair_records;
  row.gossip_duplicates = gs.duplicates;
  row.misdirected = gs.misdirected;
  row.crashes = runner.crashes();
  const metrics::Histogram delay_hist = system.delay_histogram();
  row.delay_p50_s = delay_hist.p50();
  row.delay_p99_s = delay_hist.p99();
  row.sim_events = system.sim().events_processed();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Sweep<Row> sweep("gossip_resilience");
  if (!sweep.parse_args(argc, argv)) return 1;

  for (const Scenario& sc : kScenarios) {
    for (const Backend& be : kBackends) {
      sweep.add(std::string(sc.label) + "/" + be.label,
                [&sc, &be, st = sweep.options().sim_threads] {
                  return run(sc, be, st);
                });
    }
  }

  std::puts("=== Gossip resilience: backend x fault scenario ===");
  std::puts("64 nodes, repl=2, M3, 60 subscriptions + 300 publications;");
  std::puts("GE burst loss ~18% for 1200s / correlated crash burst /");
  std::puts("both. gossip axes: fan-out f, anti-entropy period ae\n");
  std::printf("%-13s %-12s %8s %7s %5s %9s %10s %8s %9s %8s %7s %7s %8s\n",
              "scenario", "backend", "expected", "missing", "dups",
              "delivered", "post-clear", "retrans", "notify-kb", "kb/dlv",
              "pushes", "digests", "repairs");
  const std::size_t per_group = std::size(kBackends);
  sweep.run([&](std::size_t i, const Row& r) {
    const Scenario& sc = kScenarios[i / per_group];
    const Backend& be = kBackends[i % per_group];
    std::printf(
        "%-13s %-12s %8llu %7llu %5llu %8.1f%% %9.1f%% %8llu %9.0f %8.2f "
        "%7llu %7llu %8llu\n",
        sc.label, be.label, static_cast<unsigned long long>(r.expected),
        static_cast<unsigned long long>(r.missing),
        static_cast<unsigned long long>(r.duplicates),
        100.0 * r.delivery_rate, 100.0 * r.post_clear_rate,
        static_cast<unsigned long long>(r.retransmits), r.notify_kb,
        r.kb_per_delivery, static_cast<unsigned long long>(r.pushes),
        static_cast<unsigned long long>(r.digests),
        static_cast<unsigned long long>(r.repairs));
  });
  std::puts("\npost-clear = delivery ratio counting only publications after");
  std::puts("the scenario's faults cleared; notify-kb = wire bytes in the");
  std::puts("notify + gossip message classes (the dissemination leg only);");
  std::puts("kb/dlv = that cost per delivered notification.");
  return 0;
}
