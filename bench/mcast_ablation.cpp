// Ablation — §4.3.1's analysis of one-to-many propagation to a key
// range: the native m-cast vs the aggressive unicast baseline (one
// send() per key, in parallel) vs the conservative chain baseline
// (ring-order walk).
//
// Expected shape (paper's analysis):
//   m-cast:      O(log n + N) messages, O(log n) dilation
//   aggressive:  Omega(x * log n) messages, O(log n) dilation
//   chain:       O(log n + N) messages, O(log n + N) dilation
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cbps/chord/network.hpp"
#include "cbps/sim/simulator.hpp"
#include "sweep.hpp"

using namespace cbps;
using namespace cbps::chord;

namespace {

struct ProbePayload final : overlay::Payload {
  overlay::MessageClass message_class() const override {
    return overlay::MessageClass::kPublish;
  }
};

struct CountingApp final : overlay::OverlayApp {
  explicit CountingApp(sim::SimulatorBase& sim) : sim_(sim) {}
  void on_deliver(Key, const overlay::PayloadPtr&) override { note(); }
  void on_deliver_mcast(std::span<const Key>,
                        const overlay::PayloadPtr&) override {
    note();
  }
  overlay::PayloadPtr export_state(Key, Key, bool) override {
    return nullptr;
  }
  void import_state(const overlay::PayloadPtr&) override {}
  void note() {
    ++deliveries;
    last_delivery = sim_.now();
  }
  sim::SimulatorBase& sim_;
  std::uint64_t deliveries = 0;
  sim::SimTime last_delivery = 0;
};

struct Outcome {
  std::uint64_t hops = 0;
  std::uint64_t node_deliveries = 0;
  double dilation_hops = 0;  // completion time / per-hop delay
  double hops_p50 = 0;       // per-route hop distribution (unicast legs)
  double hops_p99 = 0;
  double fanout_p50 = 0;     // m-cast split branching factor
  double fanout_p99 = 0;
  std::uint64_t sim_events = 0;
};

bench::JsonFields json_fields(const Outcome& o) {
  return {{"hops", static_cast<double>(o.hops)},
          {"nodes_hit", static_cast<double>(o.node_deliveries)},
          {"dilation_hops", o.dilation_hops},
          {"hops_p50", o.hops_p50},
          {"hops_p99", o.hops_p99},
          {"fanout_p50", o.fanout_p50},
          {"fanout_p99", o.fanout_p99}};
}

bench::JsonFields metrics_fields(const Outcome& o) {
  return {{"hops_p50", o.hops_p50},
          {"hops_p99", o.hops_p99},
          {"fanout_p50", o.fanout_p50},
          {"fanout_p99", o.fanout_p99},
          {"dilation_hops", o.dilation_hops}};
}

enum class Mode { kMcast, kAggressiveUnicast, kChain };

Outcome run(Mode mode, std::uint64_t range_keys, std::size_t sim_threads,
            std::size_t n = 500) {
  // Default wire: fixed 50 ms each way — the engine lookahead.
  const auto sim = bench::make_engine(sim_threads, sim::ms(50));
  ChordConfig cfg;
  cfg.location_cache_size = 0;  // isolate the primitives from caching
  cfg.owner_feedback = false;
  ChordNetwork net(*sim, cfg, 99);
  for (std::size_t i = 0; i < n; ++i) {
    net.add_node("node-" + std::to_string(i));
  }
  net.build_static_ring();
  std::vector<std::unique_ptr<CountingApp>> apps;
  for (Key id : net.alive_ids()) {
    apps.push_back(std::make_unique<CountingApp>(*sim));
    net.node(id)->set_app(apps.back().get());
  }

  std::vector<Key> keys;
  keys.reserve(range_keys);
  for (std::uint64_t i = 0; i < range_keys; ++i) {
    keys.push_back(net.ring().wrap(1000 + i));
  }

  ChordNode& src = net.alive_node(n / 2);
  const auto payload = std::make_shared<ProbePayload>();
  const sim::SimTime start = sim->now();
  switch (mode) {
    case Mode::kMcast:
      src.m_cast(keys, payload);
      break;
    case Mode::kAggressiveUnicast:
      for (Key k : keys) src.send(k, payload);
      break;
    case Mode::kChain:
      src.chain_cast(keys, payload);
      break;
  }
  sim->run();

  Outcome out;
  out.hops = net.traffic().hops(overlay::MessageClass::kPublish);
  sim::SimTime last = start;
  for (const auto& app : apps) {
    if (app->deliveries > 0) {
      ++out.node_deliveries;  // counts nodes reached
      if (app->last_delivery > last) last = app->last_delivery;
    }
  }
  out.dilation_hops = static_cast<double>(last - start) /
                      static_cast<double>(sim::ms(50));
  metrics::Registry& reg = net.registry();
  out.hops_p50 = reg.histogram("chord.route_hops").p50();
  out.hops_p99 = reg.histogram("chord.route_hops").p99();
  out.fanout_p50 = reg.histogram("chord.mcast_fanout").p50();
  out.fanout_p99 = reg.histogram("chord.mcast_fanout").p99();
  out.sim_events = sim->events_processed();
  return out;
}

const char* mode_label(Mode m) {
  switch (m) {
    case Mode::kMcast:
      return "m-cast";
    case Mode::kAggressiveUnicast:
      return "aggressive";
    case Mode::kChain:
      return "chain";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Sweep<Outcome> sweep("mcast_ablation");
  if (!sweep.parse_args(argc, argv)) return 1;

  const std::uint64_t ranges[] = {64, 256, 1024, 4096};
  const Mode modes[] = {Mode::kMcast, Mode::kAggressiveUnicast,
                        Mode::kChain};
  for (const std::uint64_t range : ranges) {
    for (const Mode mode : modes) {
      sweep.add(std::string(mode_label(mode)) + "/range=" +
                    std::to_string(range),
                [mode, range, st = sweep.options().sim_threads] {
                  return run(mode, range, st);
                });
    }
  }

  std::puts("=== m-cast ablation: one-to-many to a key range, n=500 ===");
  std::puts("(cache disabled; dilation = completion time in hop units)\n");
  std::printf("%10s %-12s %10s %12s %10s\n", "range keys", "primitive",
              "hops", "nodes hit", "dilation");
  const std::size_t per_group = std::size(modes);
  sweep.run([&](std::size_t i, const Outcome& o) {
    const std::uint64_t range = ranges[i / per_group];
    const Mode mode = modes[i % per_group];
    std::printf("%10llu %-12s %10llu %12llu %10.0f\n",
                static_cast<unsigned long long>(range), mode_label(mode),
                static_cast<unsigned long long>(o.hops),
                static_cast<unsigned long long>(o.node_deliveries),
                o.dilation_hops);
    if ((i + 1) % per_group == 0) std::puts("");
  });
  std::puts("m-cast matches the aggressive baseline's O(log n) dilation at");
  std::puts("the chain baseline's O(log n + N) message cost — the best of");
  std::puts("both, as §4.3.1 argues.");
  return 0;
}
