// Figure 8 — "Scalability of memory consumption": maximum number of
// subscriptions stored per node when 25,000 subscriptions are injected,
// as a function of the number of nodes, with zero and one selective
// attributes.
//
// Expected shape: with no selective attributes, M1 and M3 degrade as n
// grows (ranges split across more rendezvous, so subscriptions are
// copied more often) while M2 stays roughly flat; with one selective
// attribute, M3's duplication is rare and it beats M2 for n below
// ~2500 (§5.2).
#include <cstdio>
#include <vector>

#include "harness.hpp"

using namespace cbps;
using namespace cbps::bench;

int main() {
  std::puts("=== Figure 8: max subscriptions per node vs number of nodes ===");
  std::puts("25000 subscriptions, no publications, no expiration\n");

  const std::vector<std::size_t> node_counts = {100, 250, 500, 1000, 2500};

  for (const int selective : {0, 1}) {
    std::printf("--- %d selective attribute(s) ---\n", selective);
    std::printf("%-20s", "mapping");
    for (std::size_t n : node_counts) std::printf(" %9zu", n);
    std::puts("");
    for (const pubsub::MappingKind mapping :
         {pubsub::MappingKind::kAttributeSplit,
          pubsub::MappingKind::kKeySpaceSplit,
          pubsub::MappingKind::kSelectiveAttribute}) {
      std::printf("%-20s", mapping_label(mapping).c_str());
      for (const std::size_t n : node_counts) {
        ExperimentConfig cfg;
        cfg.nodes = n;
        cfg.mapping = mapping;
        cfg.selective_attributes = selective;
        cfg.subscriptions = 25'000;
        cfg.publications = 0;
        cfg.sub_transport = pubsub::PubSubConfig::Transport::kMulticast;
        const ExperimentResult r = run_experiment(cfg);
        std::printf(" %9zu", r.max_subs_per_node);
      }
      std::puts("");
    }
    std::puts("");
  }
  return 0;
}
