// Figure 8 — "Scalability of memory consumption": maximum number of
// subscriptions stored per node when 25,000 subscriptions are injected,
// as a function of the number of nodes, with zero and one selective
// attributes.
//
// Expected shape: with no selective attributes, M1 and M3 degrade as n
// grows (ranges split across more rendezvous, so subscriptions are
// copied more often) while M2 stays roughly flat; with one selective
// attribute, M3's duplication is rare and it beats M2 for n below
// ~2500 (§5.2).
#include <cstdio>
#include <string>
#include <vector>

#include "sweep.hpp"

using namespace cbps;
using namespace cbps::bench;

int main(int argc, char** argv) {
  Sweep<> sweep("fig8_memory_scaling");
  if (!sweep.parse_args(argc, argv)) return 1;

  const std::vector<std::size_t> node_counts = {100, 250, 500, 1000, 2500};
  const pubsub::MappingKind mappings[] = {
      pubsub::MappingKind::kAttributeSplit,
      pubsub::MappingKind::kKeySpaceSplit,
      pubsub::MappingKind::kSelectiveAttribute};

  for (const int selective : {0, 1}) {
    for (const pubsub::MappingKind mapping : mappings) {
      for (const std::size_t n : node_counts) {
        ExperimentConfig cfg;
        cfg.nodes = n;
        cfg.mapping = mapping;
        cfg.selective_attributes = selective;
        cfg.subscriptions = 25'000;
        cfg.publications = 0;
        cfg.sub_transport = pubsub::PubSubConfig::Transport::kMulticast;
        // Inject back-to-back: the stored-subscription peak is identical
        // (no publications, no expiry) and the dense event population is
        // what the sharded engine's scaling sweep measures.
        cfg.sub_interval = 0;
        sweep.add(mapping_label(mapping) + "/sel" +
                      std::to_string(selective) + "/n=" + std::to_string(n),
                  cfg);
      }
    }
  }

  std::puts("=== Figure 8: max subscriptions per node vs number of nodes ===");
  std::puts("25000 subscriptions, no publications, no expiration\n");

  const std::size_t per_row = node_counts.size();
  const std::size_t per_group = per_row * std::size(mappings);
  sweep.run([&](std::size_t i, const ExperimentResult& r) {
    const std::size_t group = i / per_group;  // selective 0/1
    const std::size_t in_group = i % per_group;
    const std::size_t mapping_idx = in_group / per_row;
    if (in_group == 0) {
      std::printf("--- %zu selective attribute(s) ---\n", group);
      std::printf("%-20s", "mapping");
      for (std::size_t n : node_counts) std::printf(" %9zu", n);
      std::puts("");
    }
    if (in_group % per_row == 0) {
      std::printf("%-20s", mapping_label(mappings[mapping_idx]).c_str());
    }
    std::printf(" %9zu", r.max_subs_per_node);
    if ((in_group + 1) % per_row == 0) std::puts("");
    if (in_group + 1 == per_group) std::puts("");
  });
  return 0;
}
