#include "sweep.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <mutex>

#include "cbps/common/assert.hpp"
#include "cbps/common/thread_pool.hpp"

namespace cbps::bench {

JsonFields json_fields(const ExperimentResult& r) {
  return {
      {"hops_per_subscription", r.hops_per_subscription},
      {"hops_per_publication", r.hops_per_publication},
      {"hops_per_notification", r.hops_per_notification},
      {"notify_hops_per_publication", r.notify_hops_per_publication},
      {"subscribe_hops", static_cast<double>(r.subscribe_hops)},
      {"publish_hops", static_cast<double>(r.publish_hops)},
      {"notify_hops", static_cast<double>(r.notify_hops)},
      {"collect_hops", static_cast<double>(r.collect_hops)},
      {"control_hops", static_cast<double>(r.control_hops)},
      {"notify_bytes", static_cast<double>(r.notify_bytes)},
      {"subscribe_bytes", static_cast<double>(r.subscribe_bytes)},
      {"max_subs_per_node", static_cast<double>(r.max_subs_per_node)},
      {"avg_subs_per_node", r.avg_subs_per_node},
      {"subscriptions_issued", static_cast<double>(r.subscriptions_issued)},
      {"publications_issued", static_cast<double>(r.publications_issued)},
      {"notifications_delivered",
       static_cast<double>(r.notifications_delivered)},
      {"avg_route_hops", r.avg_route_hops},
      {"avg_notification_delay_s", r.avg_notification_delay_s},
      {"max_notification_delay_s", r.max_notification_delay_s},
      {"delay_p50_s", r.delay_p50_s},
      {"delay_p99_s", r.delay_p99_s},
      {"hops_p50", r.hops_p50},
      {"hops_p99", r.hops_p99},
      {"messages_lost", static_cast<double>(r.messages_lost)},
      {"retransmits", static_cast<double>(r.retransmits)},
      {"sends_failed", static_cast<double>(r.sends_failed)},
      {"duplicates_suppressed",
       static_cast<double>(r.duplicates_suppressed)},
  };
}

JsonFields metrics_fields(const ExperimentResult& r) {
  return {
      {"delay_p50_s", r.delay_p50_s},
      {"delay_p90_s", r.delay_p90_s},
      {"delay_p99_s", r.delay_p99_s},
      {"delay_max_s", r.delay_max_s},
      {"avg_notification_delay_s", r.avg_notification_delay_s},
      {"hops_p50", r.hops_p50},
      {"hops_p90", r.hops_p90},
      {"hops_p99", r.hops_p99},
      {"hops_max", r.hops_max},
      {"avg_route_hops", r.avg_route_hops},
      {"fanout_p50", r.fanout_p50},
      {"fanout_p99", r.fanout_p99},
      {"retries_p99", r.retries_p99},
      {"load_max_over_mean", r.load_max_over_mean},
      {"load_gini", r.load_gini},
      {"hot_key_top1_share", r.hot_key_top1_share},
      {"notifications_delivered",
       static_cast<double>(r.notifications_delivered)},
      {"traces_started", static_cast<double>(r.traces_started)},
      {"trace_spans", static_cast<double>(r.trace_spans)},
  };
}

namespace detail {

std::size_t resolve_jobs(std::size_t requested) {
  return requested == 0 ? common::ThreadPool::hardware_threads() : requested;
}

void run_indexed(std::size_t count, std::size_t jobs,
                 const std::function<void(std::size_t)>& body,
                 const std::function<void(std::size_t)>& done) {
  jobs = resolve_jobs(jobs);
  if (jobs > count) jobs = count;
  if (jobs <= 1) {
    // Fully serial: no threads, the reference execution mode.
    for (std::size_t i = 0; i < count; ++i) {
      body(i);
      done(i);
    }
    return;
  }

  std::mutex mu;
  std::condition_variable point_done;
  std::vector<char> completed(count, 0);
  std::atomic<std::size_t> next{0};

  common::ThreadPool pool(jobs);
  for (std::size_t w = 0; w < jobs; ++w) {
    pool.submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          body(i);
        } catch (...) {
          // Mark complete so the reporter can't deadlock, then let the
          // pool surface the exception from wait().
          {
            const std::lock_guard<std::mutex> lock(mu);
            completed[i] = 1;
          }
          point_done.notify_all();
          throw;
        }
        {
          const std::lock_guard<std::mutex> lock(mu);
          completed[i] = 1;
        }
        point_done.notify_all();
      }
    });
  }
  // Report rows in sweep order as they become available.
  for (std::size_t i = 0; i < count; ++i) {
    std::unique_lock lock(mu);
    point_done.wait(lock, [&] { return completed[i] != 0; });
    lock.unlock();
    done(i);
  }
  pool.wait();  // joins the logic above; rethrows the first task error
}

namespace {

void append_json_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
}

void append_double(std::string& out, double v) {
  char buf[64];
  // Round-trippable without exponent soup for the magnitudes we emit.
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

void write_json(const std::string& path, const std::string& bench,
                std::size_t jobs, double total_wall_s,
                const std::vector<std::string>& labels,
                const std::vector<PointTiming>& timings,
                const std::vector<JsonFields>& metrics) {
  std::string out;
  out += "{\n  \"bench\": \"";
  append_json_escaped(out, bench);
  out += "\",\n  \"jobs\": " + std::to_string(jobs);
  out += ",\n  \"total_wall_s\": ";
  append_double(out, total_wall_s);
  out += ",\n  \"points\": [\n";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    out += "    {\"label\": \"";
    append_json_escaped(out, labels[i]);
    out += "\", \"wall_s\": ";
    append_double(out, timings[i].wall_s);
    out += ", \"sim_events\": " + std::to_string(timings[i].sim_events);
    out += ", \"events_per_sec\": ";
    append_double(out, timings[i].events_per_sec);
    out += ", \"metrics\": {";
    for (std::size_t m = 0; m < metrics[i].size(); ++m) {
      if (m > 0) out += ", ";
      out += '"';
      append_json_escaped(out, metrics[i][m].first);
      out += "\": ";
      append_double(out, metrics[i][m].second);
    }
    out += "}}";
    out += i + 1 < labels.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  CBPS_ASSERT_MSG(f != nullptr, "cannot open --json output file");
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
}

}  // namespace detail
}  // namespace cbps::bench
