// Scheduler microbench — events/sec through the simulator's dominant
// schedule/fire/cancel cycles, isolated from any pub/sub logic.
//
// Three workloads:
//   fire         K self-rescheduling events (pure schedule+fire churn,
//                the publish/notify delivery pattern)
//   cancel       every fired event schedules a successor AND a decoy
//                that is cancelled before it can fire (the ack/retry
//                timer pattern from the reliability layer)
//   timers       K periodic timers ticking concurrently (stabilize /
//                retry backoff maintenance load)
//   shard/tN     the fire chains again, but one actor domain per chain
//                through the epoch-synchronous sharded engine at N
//                worker threads — the serial-vs-parallel scaling row
//                (--sim-threads N adds shard/t1 and shard/tN)
//
// Prints events/sec per workload and, with --json, appends a bench
// record in the same shape the sweep runner emits (see EXPERIMENTS.md).
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "cbps/common/exec_context.hpp"
#include "cbps/common/flags.hpp"
#include "cbps/sim/parallel_simulator.hpp"
#include "cbps/sim/simulator.hpp"

using namespace cbps;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Row {
  std::string label;
  std::uint64_t events = 0;
  double wall_s = 0;
  double events_per_sec = 0;
};

Row run_fire(std::uint64_t total_events, std::size_t width) {
  sim::Simulator sim;
  struct Chain {
    sim::Simulator& sim;
    std::uint64_t budget;
    void arm() {
      if (budget == 0) return;
      --budget;
      sim.schedule_after(sim::us(7), [this] { arm(); });
    }
  };
  std::vector<Chain> chains(width, Chain{sim, 0});
  const auto t0 = std::chrono::steady_clock::now();
  for (auto& c : chains) {
    c.budget = total_events / width;
    c.arm();
  }
  sim.run();
  Row r{"fire", sim.events_processed(), seconds_since(t0), 0};
  r.events_per_sec = static_cast<double>(r.events) / r.wall_s;
  return r;
}

Row run_cancel(std::uint64_t total_events, std::size_t width) {
  sim::Simulator sim;
  // Each live event re-arms itself and a decoy timeout that it cancels
  // on the next firing — one cancel per fire, like an ack arriving
  // before the retransmit timer.
  struct Retry {
    sim::Simulator& sim;
    std::uint64_t budget;
    sim::Simulator::EventId decoy = sim::Simulator::kInvalidEvent;
    void arm() {
      if (decoy != sim::Simulator::kInvalidEvent) sim.cancel(decoy);
      decoy = sim::Simulator::kInvalidEvent;
      if (budget == 0) return;
      --budget;
      decoy = sim.schedule_after(sim::sec(60), [] {});
      sim.schedule_after(sim::us(11), [this] { arm(); });
    }
  };
  std::vector<Retry> retries(width, Retry{sim, 0});
  const auto t0 = std::chrono::steady_clock::now();
  for (auto& rt : retries) {
    rt.budget = total_events / width;
    rt.arm();
  }
  sim.run();
  Row r{"cancel", sim.events_processed(), seconds_since(t0), 0};
  r.events_per_sec = static_cast<double>(r.events) / r.wall_s;
  return r;
}

Row run_timers(std::uint64_t total_events, std::size_t width) {
  sim::Simulator sim;
  std::uint64_t fired = 0;
  std::vector<sim::Simulator::TimerId> ids;
  ids.reserve(width);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < width; ++i) {
    ids.push_back(
        sim.add_timer(sim::us(13 + i % 7), [&fired] { ++fired; }));
  }
  while (fired < total_events) {
    sim.run(total_events - fired);
  }
  for (const auto id : ids) sim.cancel_timer(id);
  sim.run();
  Row r{"timers", sim.events_processed(), seconds_since(t0), 0};
  r.events_per_sec = static_cast<double>(r.events) / r.wall_s;
  return r;
}

Row run_shards(std::uint64_t total_events, std::size_t width,
               std::size_t threads) {
  // The `fire` chains again, but each chain lives on its own actor
  // domain so the sharded engine spreads them across worker threads.
  // The processed-event count and final simulated time are identical at
  // any thread count; only wall time changes.
  std::unique_ptr<sim::SimulatorBase> sim_ptr;
  if (threads > 1) {
    sim_ptr = std::make_unique<sim::ParallelSimulator>(
        static_cast<unsigned>(threads), sim::ms(50));
  } else {
    sim_ptr = std::make_unique<sim::Simulator>();
  }
  sim::SimulatorBase& sim = *sim_ptr;
  struct Chain {
    sim::SimulatorBase& sim;
    common::Domain domain = common::kGlobalDomain;
    std::uint64_t budget = 0;
    void arm() {
      if (budget == 0) return;
      --budget;
      // Key + place the successor on this chain's shard.
      const common::ActorScope as(domain);
      sim.schedule_after(sim::us(7), [this] { arm(); });
    }
  };
  std::vector<Chain> chains(width, Chain{sim});
  for (auto& c : chains) c.domain = sim.register_domain();
  const auto t0 = std::chrono::steady_clock::now();
  for (auto& c : chains) {
    c.budget = total_events / width;
    c.arm();
  }
  sim.run();
  Row r{"shard/t" + std::to_string(threads), sim.events_processed(),
        seconds_since(t0), 0};
  r.events_per_sec = static_cast<double>(r.events) / r.wall_s;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t events = 2'000'000;
  std::int64_t width = 1024;
  std::int64_t sim_threads = 1;
  std::string json_path;
  FlagParser parser(
      "sim_core — discrete-event scheduler microbench (events/sec through\n"
      "the schedule/fire/cancel hot path; no pub/sub logic involved).");
  parser.add("events", "events to process per workload", &events);
  parser.add("width", "concurrently pending events / timers", &width);
  parser.add("sim-threads",
             "sharded-engine worker threads for the shard workload "
             "(> 1 adds a shard/t1 baseline and a shard/tN row)",
             &sim_threads);
  parser.add("json", "append a bench record to this JSON file", &json_path);
  if (!parser.parse(argc, argv, std::cout, std::cerr)) return 1;
  if (sim_threads < 1) {
    std::fprintf(stderr, "bad --sim-threads: %lld\n",
                 static_cast<long long>(sim_threads));
    return 1;
  }

  std::puts("=== sim_core: scheduler hot-path events/sec ===");
  std::printf("%-8s %12s %10s %14s\n", "workload", "events", "wall s",
              "events/sec");
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<Row> rows;
  rows.push_back(run_fire(static_cast<std::uint64_t>(events),
                          static_cast<std::size_t>(width)));
  rows.push_back(run_cancel(static_cast<std::uint64_t>(events),
                            static_cast<std::size_t>(width)));
  rows.push_back(run_timers(static_cast<std::uint64_t>(events),
                            static_cast<std::size_t>(width)));
  rows.push_back(run_shards(static_cast<std::uint64_t>(events),
                            static_cast<std::size_t>(width), 1));
  if (sim_threads > 1) {
    rows.push_back(run_shards(static_cast<std::uint64_t>(events),
                              static_cast<std::size_t>(width),
                              static_cast<std::size_t>(sim_threads)));
  }
  for (const Row& r : rows) {
    std::printf("%-8s %12llu %10.3f %14.0f\n", r.label.c_str(),
                static_cast<unsigned long long>(r.events), r.wall_s,
                r.events_per_sec);
  }
  const double total_wall = seconds_since(t0);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"sim_core\",\n  \"jobs\": 1,\n"
                 "  \"total_wall_s\": %.6f,\n  \"points\": [\n", total_wall);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "    {\"label\": \"%s\", \"wall_s\": %.6f, "
                   "\"sim_events\": %llu, \"events_per_sec\": %.0f, "
                   "\"metrics\": {\"events_per_sec\": %.0f}}%s\n",
                   r.label.c_str(), r.wall_s,
                   static_cast<unsigned long long>(r.events),
                   r.events_per_sec, r.events_per_sec,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
  }
  return 0;
}
