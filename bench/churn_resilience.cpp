// Extension experiment — delivery under continuous membership churn.
//
// The paper's central claim is self-configuration ("adaptiveness to
// dynamic changes", §1) but its evaluation runs on a stable ring. This
// bench quantifies the claim: a Poisson churn process (40% joins, the
// rest split between graceful leaves and crashes) runs concurrently with
// the paper workload, and a delivery ledger reports how much of the
// matched traffic still reached its subscribers — with and without
// subscription replication (§4.1).
#include <cstdio>
#include <string>
#include <vector>

#include "cbps/common/assert.hpp"
#include "cbps/pubsub/delivery_checker.hpp"
#include "cbps/workload/churn.hpp"
#include "cbps/workload/driver.hpp"
#include "cbps/workload/fault_script.hpp"
#include "sweep.hpp"

using namespace cbps;

namespace {

struct Row {
  std::uint64_t events = 0;
  std::uint64_t expected = 0;
  std::uint64_t missing = 0;
  std::uint64_t duplicates = 0;
  double delivery_rate = 1.0;
  double delay_p50_s = 0;
  double delay_p99_s = 0;
  double hops_p50 = 0;
  double hops_p99 = 0;
  std::uint64_t sim_events = 0;
};

bench::JsonFields json_fields(const Row& r) {
  return {{"churn_events", static_cast<double>(r.events)},
          {"expected", static_cast<double>(r.expected)},
          {"missing", static_cast<double>(r.missing)},
          {"duplicates", static_cast<double>(r.duplicates)},
          {"delivery_rate", r.delivery_rate},
          {"delay_p50_s", r.delay_p50_s},
          {"delay_p99_s", r.delay_p99_s},
          {"hops_p50", r.hops_p50},
          {"hops_p99", r.hops_p99}};
}

bench::JsonFields metrics_fields(const Row& r) {
  return {{"delay_p50_s", r.delay_p50_s},
          {"delay_p99_s", r.delay_p99_s},
          {"hops_p50", r.hops_p50},
          {"hops_p99", r.hops_p99},
          {"delivery_rate", r.delivery_rate}};
}

Row run(double churn_interval_s, std::size_t replication,
        const char* fault_script, std::size_t sim_threads) {
  std::string error;
  const auto script = workload::FaultScript::parse(fault_script, &error);
  CBPS_ASSERT_MSG(script.has_value(), "bad churn fault script");

  pubsub::SystemConfig cfg;
  cfg.nodes = 64;
  cfg.seed = 4242;
  cfg.chord.ring = RingParams{12};
  cfg.chord.stabilize_period = sim::sec(5);
  cfg.chord.force_reliable = script->needs_reliable_transport();
  cfg.mapping = pubsub::MappingKind::kSelectiveAttribute;
  cfg.pubsub.sub_transport = pubsub::PubSubConfig::Transport::kMulticast;
  cfg.pubsub.replication_factor = replication;
  cfg.sim_threads = sim_threads;
  pubsub::PubSubSystem system(cfg, pubsub::Schema::uniform(3, 99'999));
  system.network().start_maintenance_all();

  pubsub::DeliveryChecker checker;
  workload::WorkloadParams wp;
  wp.matching_probability = 0.8;
  workload::WorkloadGenerator gen(system.schema(), wp, 17);
  workload::DriverParams dp;
  dp.max_subscriptions = 60;
  dp.max_publications = 400;
  dp.sub_interval = sim::sec(5);
  workload::Driver driver(system, gen, dp, &checker);
  driver.start();

  workload::ChurnParams cp;
  cp.mean_interval_s = churn_interval_s > 0 ? churn_interval_s : 1.0;
  cp.min_nodes = 32;
  workload::ChurnDriver churn(
      system, cp, 99, [&driver](Key id) {
        // Protect subscriber nodes: the metric targets rendezvous-state
        // resilience, not subscriber death.
        for (const auto& sub : driver.active_subscriptions()) {
          if (sub->subscriber == id) return true;
        }
        return false;
      });
  churn.set_delivery_checker(&checker);
  if (churn_interval_s > 0) churn.start();

  workload::FaultScriptRunner fault_runner(
      system, *script, cfg.seed, [&driver](Key id) {
        for (const auto& sub : driver.active_subscriptions()) {
          if (sub->subscriber == id) return true;
        }
        return false;
      });
  fault_runner.set_delivery_checker(&checker);
  fault_runner.start();

  // Publications are Poisson(5 s) x 400 ≈ 2000 s of simulated time.
  system.run_for(sim::sec(2'600));
  churn.stop();
  system.run_for(sim::sec(120));  // drain + final repairs

  const auto report = checker.verify(/*grace=*/sim::sec(10));
  Row row;
  row.events = churn.events() + fault_runner.crashes();
  row.expected = report.expected;
  row.missing = report.missing;
  row.duplicates = report.duplicates;
  row.delivery_rate =
      report.expected == 0
          ? 1.0
          : static_cast<double>(report.delivered) /
                static_cast<double>(report.expected);
  const metrics::Histogram delay_hist = system.delay_histogram();
  row.delay_p50_s = delay_hist.p50();
  row.delay_p99_s = delay_hist.p99();
  metrics::Registry& reg = system.network().registry();
  row.hops_p50 = reg.histogram("chord.route_hops").p50();
  row.hops_p99 = reg.histogram("chord.route_hops").p99();
  row.sim_events = system.sim().events_processed();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Sweep<Row> sweep("churn_resilience");
  if (!sweep.parse_args(argc, argv)) return 1;

  struct Case {
    const char* label;
    double interval_s;
    const char* script;  // FaultScript text ("" = Poisson churn only)
  };
  // The last case trades the Poisson process for two scripted crash
  // bursts correlated along the ring — the regime replication is for.
  const Case cases[] = {{"none", 0, ""},
                        {"120s", 120, ""},
                        {"60s", 60, ""},
                        {"30s", 30, ""},
                        {"15s", 15, ""},
                        {"burst", 0,
                         "crash_burst at=600 count=5 correlation=0.7\n"
                         "crash_burst at=1400 count=5 correlation=0.7"}};
  const std::size_t repls[] = {0, 2};
  for (const std::size_t repl : repls) {
    for (const Case& c : cases) {
      sweep.add("churn=" + std::string(c.label) +
                    "/repl=" + std::to_string(repl),
                [interval = c.interval_s, repl, script = c.script,
                 st = sweep.options().sim_threads] {
                  return run(interval, repl, script, st);
                });
    }
  }

  std::puts("=== Churn resilience: delivery rate under membership churn ===");
  std::puts("64 nodes, 60 subscriptions + 400 publications (~2000s);");
  std::puts("churn = Poisson joins/leaves/crashes; Mapping 3, m-cast\n");
  std::printf("%-22s %-6s %8s %10s %9s %9s %10s\n", "churn interval",
              "repl", "events", "expected", "missing", "dups",
              "delivered");
  const std::size_t per_group = std::size(cases);
  sweep.run([&](std::size_t i, const Row& r) {
    std::printf("%-22s %-6zu %8llu %10llu %9llu %9llu %9.1f%%\n",
                cases[i % per_group].label, repls[i / per_group],
                static_cast<unsigned long long>(r.events),
                static_cast<unsigned long long>(r.expected),
                static_cast<unsigned long long>(r.missing),
                static_cast<unsigned long long>(r.duplicates),
                100.0 * r.delivery_rate);
  });
  std::puts("\ngraceful leaves and joins hand subscription state over and");
  std::puts("lose nothing; crashes can drop rendezvous state unless");
  std::puts("replication (r=2) keeps a copy on the successors (§4.1).");
  return 0;
}
