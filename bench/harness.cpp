#include "harness.hpp"

#include <fstream>
#include <optional>

#include "cbps/common/assert.hpp"
#include "cbps/workload/driver.hpp"
#include "cbps/workload/fault_script.hpp"
#include "cbps/workload/trace.hpp"

namespace cbps::bench {

using overlay::MessageClass;

ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  std::string fs_error;
  const auto fault_script =
      workload::FaultScript::parse(cfg.fault_script, &fs_error);
  CBPS_ASSERT_MSG(fault_script.has_value(), fs_error.c_str());

  pubsub::SystemConfig sys_cfg;
  sys_cfg.nodes = cfg.nodes;
  sys_cfg.seed = cfg.seed;
  sys_cfg.chord.ring = RingParams{cfg.ring_bits};
  sys_cfg.mapping = cfg.mapping;
  sys_cfg.mapping_options.discretization = cfg.discretization;
  sys_cfg.pubsub.sub_transport = cfg.sub_transport;
  sys_cfg.pubsub.pub_transport = cfg.pub_transport;
  sys_cfg.pubsub.buffering = cfg.buffering;
  sys_cfg.pubsub.collecting = cfg.collecting;
  sys_cfg.pubsub.buffer_period = cfg.buffer_period;
  sys_cfg.pubsub.match_engine = cfg.match_engine;
  sys_cfg.pubsub.replication_factor = cfg.replication_factor;
  sys_cfg.chord.loss_rate = cfg.loss_rate;
  sys_cfg.chord.max_retries = cfg.max_retries;
  sys_cfg.chord.retry_base = cfg.retry_base;
  sys_cfg.chord.force_reliable = fault_script->needs_reliable_transport();

  pubsub::Schema schema =
      pubsub::Schema::uniform(cfg.dimensions, cfg.attr_max);
  pubsub::PubSubSystem system(sys_cfg, schema);

  pubsub::DeliveryChecker checker;
  std::optional<workload::FaultScriptRunner> faults;
  if (!fault_script->empty()) {
    // Fault scenarios need live maintenance for ring repair; the
    // fault-free figure benches keep the static ring (and its control-
    // traffic accounting) untouched.
    system.network().start_maintenance_all();
    faults.emplace(system, *fault_script, cfg.seed);
    if (cfg.verify) faults->set_delivery_checker(&checker);
    faults->start();
  }

  workload::WorkloadParams wp;
  wp.nonselective_range_frac = cfg.nonselective_frac;
  wp.selective_range_frac = cfg.selective_frac;
  wp.matching_probability = cfg.matching_probability;
  wp.zipf_exponent = cfg.zipf_exponent;
  wp.selective.assign(cfg.dimensions, false);
  for (int i = 0; i < cfg.selective_attributes &&
                  i < static_cast<int>(cfg.dimensions);
       ++i) {
    wp.selective[static_cast<std::size_t>(i)] = true;
  }
  workload::WorkloadGenerator gen(schema, wp, cfg.seed * 7919 + 17);

  workload::DriverParams dp;
  dp.sub_interval = cfg.sub_interval;
  dp.pub_mean_interval_s = cfg.pub_mean_interval_s;
  dp.sub_ttl = cfg.sub_ttl;
  dp.max_subscriptions = cfg.subscriptions;
  dp.max_publications = cfg.publications;
  dp.event_locality = cfg.event_locality;

  ExperimentResult r;
  if (!cfg.trace_replay_path.empty()) {
    CBPS_ASSERT_MSG(fault_script->empty(),
                    "fault scripts cannot run against a trace replay");
    // Replay a recorded workload instead of generating one.
    std::ifstream in(cfg.trace_replay_path);
    CBPS_ASSERT_MSG(in.good(), "cannot open trace file");
    std::string error;
    const auto trace = workload::Trace::load(in, &error);
    CBPS_ASSERT_MSG(trace.has_value(), error.c_str());
    workload::TraceReplayer replayer(system, *trace);
    replayer.start();
    system.quiesce();
    r.subscriptions_issued = trace->subscription_count();
    r.publications_issued = trace->publication_count();
  } else {
    workload::Trace trace;
    workload::Driver driver(
        system, gen, dp, cfg.verify ? &checker : nullptr,
        cfg.trace_save_path.empty() ? nullptr : &trace);
    driver.start();
    if (fault_script->empty()) {
      driver.run_to_completion();
    } else {
      // With maintenance timers armed the queue never drains: advance in
      // time chunks until the workload completes, give retries and
      // repairs a drain window, then stop maintenance and flush the rest.
      while (!driver.finished()) system.run_for(sim::sec(60));
      system.run_for(sim::sec(120));
      system.network().stop_maintenance_all();
      system.quiesce();
    }
    r.subscriptions_issued = driver.subscriptions_issued();
    r.publications_issued = driver.publications_issued();
    if (!cfg.trace_save_path.empty()) {
      std::ofstream out(cfg.trace_save_path);
      CBPS_ASSERT_MSG(out.good(), "cannot write trace file");
      trace.save(out);
    }
  }

  const overlay::TrafficStats& traffic = system.traffic();
  r.subscribe_hops = traffic.hops(MessageClass::kSubscribe);
  r.publish_hops = traffic.hops(MessageClass::kPublish);
  r.notify_hops = traffic.hops(MessageClass::kNotify);
  r.collect_hops = traffic.hops(MessageClass::kCollect);
  r.control_hops = traffic.hops(MessageClass::kControl);
  r.notify_bytes = traffic.bytes(MessageClass::kNotify) +
                   traffic.bytes(MessageClass::kCollect);
  r.subscribe_bytes = traffic.bytes(MessageClass::kSubscribe);
  r.notifications_delivered = system.notifications_delivered();

  if (r.subscriptions_issued > 0) {
    r.hops_per_subscription = static_cast<double>(r.subscribe_hops) /
                              static_cast<double>(r.subscriptions_issued);
  }
  if (r.publications_issued > 0) {
    r.hops_per_publication = static_cast<double>(r.publish_hops) /
                             static_cast<double>(r.publications_issued);
    r.notify_hops_per_publication =
        static_cast<double>(r.notify_hops + r.collect_hops) /
        static_cast<double>(r.publications_issued);
  }
  if (r.notifications_delivered > 0) {
    r.hops_per_notification =
        static_cast<double>(r.notify_hops + r.collect_hops) /
        static_cast<double>(r.notifications_delivered);
  }

  const auto storage = system.storage_stats();
  r.max_subs_per_node = storage.max_peak;
  r.avg_subs_per_node = storage.avg_peak;

  // Average end-to-end route length over all unicast classes.
  double total_routes = 0, total_hops = 0;
  for (MessageClass c : {MessageClass::kSubscribe, MessageClass::kPublish,
                         MessageClass::kNotify}) {
    const RunningStat& s = traffic.route_hops(c);
    total_routes += static_cast<double>(s.count());
    total_hops += s.sum();
  }
  if (total_routes > 0) r.avg_route_hops = total_hops / total_routes;

  const RunningStat delay = system.notification_delay();
  r.avg_notification_delay_s = delay.mean();
  r.max_notification_delay_s = delay.max();

  const metrics::Registry& reg = system.network().registry();
  r.messages_lost = reg.counter_value("chord.net.lost");
  r.retransmits = reg.counter_value("chord.retransmits");
  r.sends_failed = reg.counter_value("chord.send_failed");
  r.duplicates_suppressed = system.duplicates_suppressed();
  r.partition_cut = reg.counter_value("chord.net.partition_refused") +
                    reg.counter_value("chord.net.partition_dropped");
  r.fault_crashes = faults ? faults->crashes() : 0;

  r.sim_events = system.sim().events_processed();

  if (cfg.verify) {
    // A fault run is judged on the publications issued after every fault
    // cleared (plus a stabilization margin): mid-fault misses to cut-off
    // or crashed subscribers are the scenario, not a bug. Fault-free
    // runs keep the strict whole-run check.
    sim::SimTime pubs_after = 0;
    if (!fault_script->empty()) {
      pubs_after = fault_script->all_clear_at() +
                   8 * sys_cfg.chord.stabilize_period;
    }
    const auto report = fault_script->empty()
                            ? checker.verify()
                            : checker.verify(sim::sec(15), pubs_after);
    r.verified = report.ok();
    r.expected_deliveries = report.expected;
    r.missing = report.missing;
    r.duplicates = report.duplicates;
    r.spurious = report.spurious;
  }
  return r;
}

std::string mapping_label(pubsub::MappingKind kind) {
  switch (kind) {
    case pubsub::MappingKind::kAttributeSplit:
      return "M1 attribute-split";
    case pubsub::MappingKind::kKeySpaceSplit:
      return "M2 key-space-split";
    case pubsub::MappingKind::kSelectiveAttribute:
      return "M3 selective-attr";
  }
  return "?";
}

std::string transport_label(pubsub::PubSubConfig::Transport t) {
  switch (t) {
    case pubsub::PubSubConfig::Transport::kUnicast:
      return "unicast";
    case pubsub::PubSubConfig::Transport::kMulticast:
      return "m-cast";
    case pubsub::PubSubConfig::Transport::kChain:
      return "chain";
  }
  return "?";
}

}  // namespace cbps::bench
