#include "harness.hpp"

#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <utility>

#include "cbps/common/assert.hpp"
#include "cbps/sim/parallel_simulator.hpp"
#include "cbps/workload/driver.hpp"
#include "cbps/workload/fault_script.hpp"
#include "cbps/workload/trace.hpp"

namespace cbps::bench {

using overlay::MessageClass;

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

void append_num(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

/// Append one hot-key table: {"total": N, "entries": [{key,count,error}]}.
void append_topk(std::string& out, const metrics::TopK& sketch,
                 std::size_t table_size) {
  out += "{\"total\": " + std::to_string(sketch.total()) +
         ", \"entries\": [";
  bool first = true;
  for (const metrics::TopK::Entry& e : sketch.top(table_size)) {
    if (!first) out += ", ";
    first = false;
    out += "{\"key\": " + std::to_string(e.key) +
           ", \"count\": " + std::to_string(e.count) +
           ", \"error\": " + std::to_string(e.error) + "}";
  }
  out += "]}";
}

/// One flat JSON document: every registry counter/stat/histogram (the
/// histograms with their percentiles), the folded per-key hot-key
/// tables, the harness' derived summary fields, and the time-series
/// sampler's rows.
void write_metrics_json(const std::string& path,
                        pubsub::PubSubSystem& system,
                        const ExperimentResult& r,
                        std::size_t hot_key_table_size) {
  const metrics::Registry& reg = system.network().registry();
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : reg.counters()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    append_escaped(out, name);
    out += "\": " + std::to_string(c.value());
  }
  out += "\n  },\n  \"stats\": {";
  first = true;
  for (const auto& [name, s] : reg.stats()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    append_escaped(out, name);
    out += "\": {\"count\": " + std::to_string(s.count()) + ", \"mean\": ";
    append_num(out, s.mean());
    out += ", \"min\": ";
    append_num(out, s.min());
    out += ", \"max\": ";
    append_num(out, s.max());
    out += "}";
  }
  // The harness-side distributions live outside the registry; fold them
  // into the same histogram table under stable names.
  std::map<std::string, metrics::Histogram> hists(reg.histograms().begin(),
                                                  reg.histograms().end());
  hists["pubsub.delay_s"] = system.delay_histogram();
  hists["pubsub.publish_fanout"] = system.fanout_histogram();
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : hists) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    append_escaped(out, name);
    out += "\": {\"count\": " + std::to_string(h.count()) + ", \"mean\": ";
    append_num(out, h.mean());
    out += ", \"p50\": ";
    append_num(out, h.p50());
    out += ", \"p90\": ";
    append_num(out, h.p90());
    out += ", \"p99\": ";
    append_num(out, h.p99());
    out += ", \"min\": ";
    append_num(out, h.min());
    out += ", \"max\": ";
    append_num(out, h.max());
    out += "}";
  }
  // Per-rendezvous-key load tables, folded over every node in ring
  // order (deterministic at any --sim-threads; see KeyLoad).
  const pubsub::KeyLoad key_load = system.key_load();
  const std::pair<const char*, const metrics::TopK*> tables[] = {
      {"subs_stored", &key_load.subs_stored},
      {"match_calls", &key_load.match_calls},
      {"match_units", &key_load.match_units},
      {"notify_fanout", &key_load.notify_fanout},
  };
  out += "\n  },\n  \"hot_keys\": {";
  first = true;
  for (const auto& [name, sketch] : tables) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    out += name;
    out += "\": ";
    append_topk(out, *sketch, hot_key_table_size);
  }
  out += "\n  },\n  \"summary\": {";
  const std::pair<const char*, double> summary[] = {
      {"notifications_delivered",
       static_cast<double>(r.notifications_delivered)},
      {"delay_p50_s", r.delay_p50_s},  {"delay_p90_s", r.delay_p90_s},
      {"delay_p99_s", r.delay_p99_s},  {"delay_max_s", r.delay_max_s},
      {"hops_p50", r.hops_p50},        {"hops_p90", r.hops_p90},
      {"hops_p99", r.hops_p99},        {"hops_max", r.hops_max},
      {"fanout_p50", r.fanout_p50},    {"fanout_p99", r.fanout_p99},
      {"retries_p99", r.retries_p99},
      {"load_max_over_mean", r.load_max_over_mean},
      {"load_gini", r.load_gini},
      {"hot_key_top1", static_cast<double>(r.hot_key_top1)},
      {"hot_key_top1_share", r.hot_key_top1_share},
      {"traces_started", static_cast<double>(r.traces_started)},
      {"trace_spans", static_cast<double>(r.trace_spans)},
      {"sim_threads", static_cast<double>(r.sim_threads)},
      {"sim_stale_entries_skipped",
       static_cast<double>(r.sim_stale_entries_skipped)},
      {"sim_heap_compactions",
       static_cast<double>(r.sim_heap_compactions)},
      {"gossip_hops", static_cast<double>(r.gossip_hops)},
      {"gossip_bytes", static_cast<double>(r.gossip_bytes)},
      {"gossip_pushes", static_cast<double>(r.gossip_pushes)},
      {"gossip_duplicates", static_cast<double>(r.gossip_duplicates)},
      {"gossip_digests", static_cast<double>(r.gossip_digests)},
      {"gossip_repairs", static_cast<double>(r.gossip_repairs)},
      {"gossip_subs_learned",
       static_cast<double>(r.gossip_subs_learned)},
  };
  first = true;
  for (const auto& [name, v] : summary) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    out += name;
    out += "\": ";
    append_num(out, v);
  }
  out += "\n  },\n  \"timeseries\": ";
  std::ofstream os(path);
  CBPS_ASSERT_MSG(os.good(), "cannot write --metrics-json output file");
  os << out;
  system.timeseries().write_json(os);
  os << "\n}\n";
}

void write_trace_file(const std::string& path, metrics::TraceSink& sink) {
  std::ofstream os(path);
  CBPS_ASSERT_MSG(os.good(), "cannot write --trace output file");
  const bool jsonl =
      path.size() >= 6 && path.compare(path.size() - 6, 6, ".jsonl") == 0;
  if (jsonl) {
    sink.write_jsonl(os);
  } else {
    sink.write_chrome_trace(os);
  }
}

}  // namespace

std::unique_ptr<sim::SimulatorBase> make_engine(std::size_t threads,
                                                sim::SimTime lookahead) {
  if (threads > 1 && lookahead > 0) {
    return std::make_unique<sim::ParallelSimulator>(
        static_cast<unsigned>(threads), lookahead);
  }
  return std::make_unique<sim::Simulator>();
}

ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  std::string fs_error;
  const auto fault_script =
      workload::FaultScript::parse(cfg.fault_script, &fs_error);
  CBPS_ASSERT_MSG(fault_script.has_value(), fs_error.c_str());

  pubsub::SystemConfig sys_cfg;
  sys_cfg.nodes = cfg.nodes;
  sys_cfg.seed = cfg.seed;
  sys_cfg.chord.ring = RingParams{cfg.ring_bits};
  sys_cfg.mapping = cfg.mapping;
  sys_cfg.mapping_options.discretization = cfg.discretization;
  sys_cfg.pubsub.sub_transport = cfg.sub_transport;
  sys_cfg.pubsub.pub_transport = cfg.pub_transport;
  sys_cfg.pubsub.buffering = cfg.buffering;
  sys_cfg.pubsub.collecting = cfg.collecting;
  sys_cfg.pubsub.buffer_period = cfg.buffer_period;
  sys_cfg.pubsub.dissemination = cfg.dissemination;
  sys_cfg.pubsub.gossip_fanout = cfg.gossip_fanout;
  sys_cfg.pubsub.gossip_rounds = cfg.gossip_rounds;
  sys_cfg.pubsub.anti_entropy_period = cfg.anti_entropy_period;
  sys_cfg.pubsub.gossip_window = cfg.gossip_window;
  sys_cfg.pubsub.match_engine = cfg.match_engine;
  sys_cfg.pubsub.replication_factor = cfg.replication_factor;
  sys_cfg.pubsub.key_topk_capacity = cfg.key_topk_capacity;
  sys_cfg.chord.loss_rate = cfg.loss_rate;
  sys_cfg.chord.max_retries = cfg.max_retries;
  sys_cfg.chord.retry_base = cfg.retry_base;
  sys_cfg.chord.force_reliable = fault_script->needs_reliable_transport();
  sys_cfg.sim_threads = cfg.sim_threads;
  // An output path without an explicit rate means "trace everything".
  sys_cfg.trace_sample_rate = cfg.trace_sample_rate > 0.0
                                  ? cfg.trace_sample_rate
                                  : (cfg.trace_path.empty() ? 0.0 : 1.0);

  pubsub::Schema schema =
      pubsub::Schema::uniform(cfg.dimensions, cfg.attr_max);
  pubsub::PubSubSystem system(sys_cfg, schema);

  pubsub::DeliveryChecker checker;
  std::optional<workload::FaultScriptRunner> faults;
  if (!fault_script->empty()) {
    // Fault scenarios need live maintenance for ring repair; the
    // fault-free figure benches keep the static ring (and its control-
    // traffic accounting) untouched.
    system.network().start_maintenance_all();
    faults.emplace(system, *fault_script, cfg.seed);
    if (cfg.verify) faults->set_delivery_checker(&checker);
    faults->start();
  }

  workload::WorkloadParams wp;
  wp.nonselective_range_frac = cfg.nonselective_frac;
  wp.selective_range_frac = cfg.selective_frac;
  wp.matching_probability = cfg.matching_probability;
  wp.zipf_exponent = cfg.zipf_exponent;
  wp.selective.assign(cfg.dimensions, false);
  for (int i = 0; i < cfg.selective_attributes &&
                  i < static_cast<int>(cfg.dimensions);
       ++i) {
    wp.selective[static_cast<std::size_t>(i)] = true;
  }
  workload::WorkloadGenerator gen(schema, wp, cfg.seed * 7919 + 17);

  workload::DriverParams dp;
  dp.sub_interval = cfg.sub_interval;
  dp.pub_mean_interval_s = cfg.pub_mean_interval_s;
  dp.sub_ttl = cfg.sub_ttl;
  dp.max_subscriptions = cfg.subscriptions;
  dp.max_publications = cfg.publications;
  dp.event_locality = cfg.event_locality;

  // Arm the time-series sampler when asked for (explicitly or implied by
  // a metrics dump). Its periodic timer keeps the event queue alive, so
  // the run paths below must stop it before draining to completion.
  const sim::SimTime sample_period =
      cfg.sample_period > 0
          ? cfg.sample_period
          : (cfg.metrics_json_path.empty() ? 0 : sim::sec(1));
  const bool sampling = sample_period > 0 && cfg.trace_replay_path.empty();
  if (sampling) system.start_sampler(sample_period);

  ExperimentResult r;
  if (!cfg.trace_replay_path.empty()) {
    CBPS_ASSERT_MSG(fault_script->empty(),
                    "fault scripts cannot run against a trace replay");
    // Replay a recorded workload instead of generating one.
    std::ifstream in(cfg.trace_replay_path);
    CBPS_ASSERT_MSG(in.good(), "cannot open trace file");
    std::string error;
    const auto trace = workload::Trace::load(in, &error);
    CBPS_ASSERT_MSG(trace.has_value(), error.c_str());
    workload::TraceReplayer replayer(system, *trace);
    replayer.start();
    system.quiesce();
    r.subscriptions_issued = trace->subscription_count();
    r.publications_issued = trace->publication_count();
  } else {
    workload::Trace trace;
    workload::Driver driver(
        system, gen, dp, cfg.verify ? &checker : nullptr,
        cfg.trace_save_path.empty() ? nullptr : &trace);
    driver.start();
    if (fault_script->empty() && !sampling) {
      driver.run_to_completion();
    } else if (fault_script->empty()) {
      // The sampler's periodic timer keeps the queue alive: advance in
      // time chunks until the workload completes, then disarm and drain.
      while (!driver.finished()) system.run_for(sim::sec(60));
      system.stop_sampler();
      system.quiesce();
    } else {
      // With maintenance timers armed the queue never drains: advance in
      // time chunks until the workload completes, give retries and
      // repairs a drain window, then stop maintenance and flush the rest.
      while (!driver.finished()) system.run_for(sim::sec(60));
      system.run_for(sim::sec(120));
      system.network().stop_maintenance_all();
      system.stop_sampler();
      system.quiesce();
    }
    r.subscriptions_issued = driver.subscriptions_issued();
    r.publications_issued = driver.publications_issued();
    if (!cfg.trace_save_path.empty()) {
      std::ofstream out(cfg.trace_save_path);
      CBPS_ASSERT_MSG(out.good(), "cannot write trace file");
      trace.save(out);
    }
  }

  const overlay::TrafficStats& traffic = system.traffic();
  r.subscribe_hops = traffic.hops(MessageClass::kSubscribe);
  r.publish_hops = traffic.hops(MessageClass::kPublish);
  r.notify_hops = traffic.hops(MessageClass::kNotify);
  r.collect_hops = traffic.hops(MessageClass::kCollect);
  r.control_hops = traffic.hops(MessageClass::kControl);
  r.gossip_hops = traffic.hops(MessageClass::kGossip);
  r.notify_bytes = traffic.bytes(MessageClass::kNotify) +
                   traffic.bytes(MessageClass::kCollect);
  r.subscribe_bytes = traffic.bytes(MessageClass::kSubscribe);
  r.gossip_bytes = traffic.bytes(MessageClass::kGossip);
  r.notifications_delivered = system.notifications_delivered();
  const pubsub::PubSubNode::GossipStats gstats = system.gossip_stats();
  r.gossip_pushes = gstats.pushes_sent;
  r.gossip_duplicates = gstats.duplicates;
  r.gossip_digests = gstats.digests_sent;
  r.gossip_repairs = gstats.repair_records;
  r.gossip_subs_learned = gstats.subs_learned;

  if (r.subscriptions_issued > 0) {
    r.hops_per_subscription = static_cast<double>(r.subscribe_hops) /
                              static_cast<double>(r.subscriptions_issued);
  }
  // The gossip class is this backend's notify leg; fold it into the
  // per-publication / per-notification dissemination cost so backends
  // compare on one axis.
  const std::uint64_t dissemination_hops =
      r.notify_hops + r.collect_hops + r.gossip_hops;
  if (r.publications_issued > 0) {
    r.hops_per_publication = static_cast<double>(r.publish_hops) /
                             static_cast<double>(r.publications_issued);
    r.notify_hops_per_publication =
        static_cast<double>(dissemination_hops) /
        static_cast<double>(r.publications_issued);
  }
  if (r.notifications_delivered > 0) {
    r.hops_per_notification =
        static_cast<double>(dissemination_hops) /
        static_cast<double>(r.notifications_delivered);
  }

  const auto storage = system.storage_stats();
  r.max_subs_per_node = storage.max_peak;
  r.avg_subs_per_node = storage.avg_peak;

  // Average end-to-end route length over all unicast classes.
  double total_routes = 0, total_hops = 0;
  for (MessageClass c : {MessageClass::kSubscribe, MessageClass::kPublish,
                         MessageClass::kNotify}) {
    const RunningStat& s = traffic.route_hops(c);
    total_routes += static_cast<double>(s.count());
    total_hops += s.sum();
  }
  if (total_routes > 0) r.avg_route_hops = total_hops / total_routes;

  const RunningStat delay = system.notification_delay();
  r.avg_notification_delay_s = delay.mean();
  r.max_notification_delay_s = delay.max();

  const metrics::Histogram delay_hist = system.delay_histogram();
  r.delay_p50_s = delay_hist.p50();
  r.delay_p90_s = delay_hist.p90();
  r.delay_p99_s = delay_hist.p99();
  r.delay_max_s = delay_hist.max();
  metrics::Registry& reg_mut = system.network().registry();
  const metrics::Histogram& hop_hist = reg_mut.histogram("chord.route_hops");
  r.hops_p50 = hop_hist.p50();
  r.hops_p90 = hop_hist.p90();
  r.hops_p99 = hop_hist.p99();
  r.hops_max = hop_hist.max();
  const metrics::Histogram fanout_hist = system.fanout_histogram();
  r.fanout_p50 = fanout_hist.p50();
  r.fanout_p99 = fanout_hist.p99();
  r.retries_p99 = reg_mut.histogram("chord.retries_per_send").p99();
  const pubsub::PubSubSystem::LoadImbalance imbalance =
      system.load_imbalance();
  r.load_max_over_mean = imbalance.max_over_mean;
  r.load_gini = imbalance.gini;
  const pubsub::KeyLoad key_load = system.key_load();
  if (const auto top1 = key_load.match_calls.top(1); !top1.empty()) {
    r.hot_key_top1 = top1.front().key;
    r.hot_key_top1_share = static_cast<double>(top1.front().count) /
                           static_cast<double>(key_load.match_calls.total());
  }
  if (metrics::TraceSink* sink = system.trace_sink()) {
    r.traces_started = sink->traces_started();
    r.trace_spans = sink->spans().size();
  }

  const metrics::Registry& reg = system.network().registry();
  r.messages_lost = reg.counter_value("chord.net.lost");
  r.retransmits = reg.counter_value("chord.retransmits");
  r.sends_failed = reg.counter_value("chord.send_failed");
  r.duplicates_suppressed = system.duplicates_suppressed();
  r.partition_cut = reg.counter_value("chord.net.partition_refused") +
                    reg.counter_value("chord.net.partition_dropped");
  r.fault_crashes = faults ? faults->crashes() : 0;

  r.sim_events = system.sim().events_processed();
  r.sim_threads = system.sim().thread_count();
  r.sim_stale_entries_skipped = system.sim().stale_entries_skipped();
  r.sim_heap_compactions = system.sim().heap_compactions();

  if (cfg.verify) {
    // A fault run is judged on the publications issued after every fault
    // cleared (plus a stabilization margin): mid-fault misses to cut-off
    // or crashed subscribers are the scenario, not a bug. Fault-free
    // runs keep the strict whole-run check.
    sim::SimTime pubs_after = 0;
    if (!fault_script->empty()) {
      pubs_after = fault_script->all_clear_at() +
                   8 * sys_cfg.chord.stabilize_period;
    }
    const auto report = fault_script->empty()
                            ? checker.verify()
                            : checker.verify(sim::sec(15), pubs_after);
    r.verified = report.ok();
    r.expected_deliveries = report.expected;
    r.missing = report.missing;
    r.duplicates = report.duplicates;
    r.spurious = report.spurious;
  }

  if (!cfg.trace_path.empty() && system.trace_sink() != nullptr) {
    write_trace_file(cfg.trace_path, *system.trace_sink());
  }
  if (!cfg.metrics_json_path.empty()) {
    write_metrics_json(cfg.metrics_json_path, system, r,
                       cfg.hot_key_table_size);
  }
  return r;
}

std::string mapping_label(pubsub::MappingKind kind) {
  switch (kind) {
    case pubsub::MappingKind::kAttributeSplit:
      return "M1 attribute-split";
    case pubsub::MappingKind::kKeySpaceSplit:
      return "M2 key-space-split";
    case pubsub::MappingKind::kSelectiveAttribute:
      return "M3 selective-attr";
  }
  return "?";
}

std::string transport_label(pubsub::PubSubConfig::Transport t) {
  switch (t) {
    case pubsub::PubSubConfig::Transport::kUnicast:
      return "unicast";
    case pubsub::PubSubConfig::Transport::kMulticast:
      return "m-cast";
    case pubsub::PubSubConfig::Transport::kChain:
      return "chain";
  }
  return "?";
}

std::string dissemination_label(pubsub::PubSubConfig::Dissemination d) {
  switch (d) {
    case pubsub::PubSubConfig::Dissemination::kUnicast:
      return "unicast";
    case pubsub::PubSubConfig::Dissemination::kMcast:
      return "m-cast";
    case pubsub::PubSubConfig::Dissemination::kGossip:
      return "gossip";
  }
  return "?";
}

}  // namespace cbps::bench
