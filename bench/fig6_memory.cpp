// Figure 6 — "Memory consumption": maximum number of subscriptions
// stored per node as a function of the subscription expiration time, for
// the three mappings, with zero and one selective attributes.
//
// Paper setup: 25,000 subscriptions injected (one per 5 s), no
// publications. Expected shape: M2 stores the least without selective
// attributes; M3 benefits strongly from one selective attribute.
#include <cstdio>
#include <vector>

#include "harness.hpp"

using namespace cbps;
using namespace cbps::bench;

int main() {
  std::puts("=== Figure 6: max subscriptions per node vs expiration time ===");
  std::puts("n=500, 25000 subscriptions (1 per 5s), no publications\n");

  const std::vector<std::pair<const char*, sim::SimTime>> expiries = {
      {"5000s", sim::sec(5'000)},
      {"25000s", sim::sec(25'000)},
      {"60000s", sim::sec(60'000)},
      {"never", sim::kSimTimeNever},
  };

  for (const int selective : {0, 1}) {
    std::printf("--- %d selective attribute(s) ---\n", selective);
    std::printf("%-20s", "mapping");
    for (const auto& [label, _] : expiries) std::printf(" %10s", label);
    std::printf("   %s\n", "(avg/node at 'never')");

    for (const pubsub::MappingKind mapping :
         {pubsub::MappingKind::kAttributeSplit,
          pubsub::MappingKind::kKeySpaceSplit,
          pubsub::MappingKind::kSelectiveAttribute}) {
      std::printf("%-20s", mapping_label(mapping).c_str());
      double avg_at_never = 0;
      for (const auto& [label, ttl] : expiries) {
        ExperimentConfig cfg;
        cfg.mapping = mapping;
        cfg.selective_attributes = selective;
        cfg.subscriptions = 25'000;
        cfg.publications = 0;
        cfg.sub_ttl = ttl;
        // Memory is transport-independent; m-cast keeps the run fast.
        cfg.sub_transport = pubsub::PubSubConfig::Transport::kMulticast;
        const ExperimentResult r = run_experiment(cfg);
        std::printf(" %10zu", r.max_subs_per_node);
        if (ttl == sim::kSimTimeNever) avg_at_never = r.avg_subs_per_node;
      }
      std::printf("   %.1f\n", avg_at_never);
    }
    std::puts("");
  }
  return 0;
}
