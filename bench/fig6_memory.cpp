// Figure 6 — "Memory consumption": maximum number of subscriptions
// stored per node as a function of the subscription expiration time, for
// the three mappings, with zero and one selective attributes.
//
// Paper setup: 25,000 subscriptions injected (one per 5 s), no
// publications. Expected shape: M2 stores the least without selective
// attributes; M3 benefits strongly from one selective attribute.
#include <cstdio>
#include <string>
#include <vector>

#include "sweep.hpp"

using namespace cbps;
using namespace cbps::bench;

int main(int argc, char** argv) {
  Sweep<> sweep("fig6_memory");
  if (!sweep.parse_args(argc, argv)) return 1;

  const std::vector<std::pair<const char*, sim::SimTime>> expiries = {
      {"5000s", sim::sec(5'000)},
      {"25000s", sim::sec(25'000)},
      {"60000s", sim::sec(60'000)},
      {"never", sim::kSimTimeNever},
  };
  const pubsub::MappingKind mappings[] = {
      pubsub::MappingKind::kAttributeSplit,
      pubsub::MappingKind::kKeySpaceSplit,
      pubsub::MappingKind::kSelectiveAttribute};

  // Point order: selective x mapping x expiry (rows stream cell by cell).
  for (const int selective : {0, 1}) {
    for (const pubsub::MappingKind mapping : mappings) {
      for (const auto& [label, ttl] : expiries) {
        ExperimentConfig cfg;
        cfg.mapping = mapping;
        cfg.selective_attributes = selective;
        cfg.subscriptions = 25'000;
        cfg.publications = 0;
        cfg.sub_ttl = ttl;
        // Memory is transport-independent; m-cast keeps the run fast.
        cfg.sub_transport = pubsub::PubSubConfig::Transport::kMulticast;
        sweep.add(mapping_label(mapping) + "/sel" +
                      std::to_string(selective) + "/ttl=" + label,
                  cfg);
      }
    }
  }

  std::puts("=== Figure 6: max subscriptions per node vs expiration time ===");
  std::puts("n=500, 25000 subscriptions (1 per 5s), no publications\n");

  const std::size_t per_row = expiries.size();
  const std::size_t per_group = per_row * std::size(mappings);
  sweep.run([&](std::size_t i, const ExperimentResult& r) {
    const std::size_t group = i / per_group;       // selective 0/1
    const std::size_t in_group = i % per_group;
    const std::size_t mapping_idx = in_group / per_row;
    const std::size_t expiry_idx = in_group % per_row;
    if (in_group == 0) {
      std::printf("--- %zu selective attribute(s) ---\n", group);
      std::printf("%-20s", "mapping");
      for (const auto& [label, _] : expiries) std::printf(" %10s", label);
      std::printf("   %s\n", "(avg/node at 'never')");
    }
    if (expiry_idx == 0) {
      std::printf("%-20s", mapping_label(mappings[mapping_idx]).c_str());
    }
    std::printf(" %10zu", r.max_subs_per_node);
    if (expiries[expiry_idx].second == sim::kSimTimeNever) {
      std::printf("   %.1f\n", r.avg_subs_per_node);
    }
    if (in_group + 1 == per_group) std::puts("");
  });
  return 0;
}
