// Declarative parameter-sweep runner for the bench binaries.
//
// A bench enumerates its sweep as (label, body) points up front, then
// run() executes them across --jobs worker threads (default: all
// hardware threads) and reports each point IN SWEEP ORDER on the calling
// thread — point i's row is printed only after rows 0..i-1, no matter
// which worker finished first. Every point owns its whole simulation
// (Simulator, Chord ring, Registry, Rng), so the metrics are
// bit-identical to a --jobs 1 run; only wall time changes.
//
// With --json <path> the runner also dumps one record per point (wall
// time, simulated events/sec, and the result's metric fields) in the
// BENCH_sweeps.json row format documented in EXPERIMENTS.md.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "cbps/common/flags.hpp"
#include "harness.hpp"

namespace cbps::bench {

struct SweepOptions {
  std::size_t jobs = 0;           // 0 = hardware_concurrency
  std::string json_path;          // empty = no JSON dump
  std::string metrics_json_path;  // empty = no distribution-metrics dump
  /// Engine worker threads inside each point's simulation (parallel
  /// discrete-event engine; bit-identical results at any value). This is
  /// orthogonal to --jobs, which runs whole points concurrently.
  std::size_t sim_threads = 1;
};

/// Wall-clock cost and simulated-event throughput of one sweep point.
struct PointTiming {
  double wall_s = 0;
  std::uint64_t sim_events = 0;
  double events_per_sec = 0;
};

/// Flat (name, value) metric fields for the JSON dump. Benches with
/// custom result structs provide their own `json_fields` overload
/// (found by ADL / ordinary lookup at Sweep<Result>::run instantiation).
using JsonFields = std::vector<std::pair<std::string, double>>;

JsonFields json_fields(const ExperimentResult& r);

/// Distribution metrics (latency/hop/fan-out percentiles) for the
/// --metrics-json dump. Benches whose result type has no overload fall
/// back to their json_fields — providing one is opt-in, exactly like
/// json_fields itself.
JsonFields metrics_fields(const ExperimentResult& r);

namespace detail {

/// Run body(i) for i in [0, count) on `jobs` workers; invoke done(i) on
/// the calling thread in ascending order as results become available.
/// jobs <= 1 runs everything inline with no threads at all.
void run_indexed(std::size_t count, std::size_t jobs,
                 const std::function<void(std::size_t)>& body,
                 const std::function<void(std::size_t)>& done);

void write_json(const std::string& path, const std::string& bench,
                std::size_t jobs, double total_wall_s,
                const std::vector<std::string>& labels,
                const std::vector<PointTiming>& timings,
                const std::vector<JsonFields>& metrics);

std::size_t resolve_jobs(std::size_t requested);

inline double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace detail

template <typename Result = ExperimentResult>
class Sweep {
 public:
  explicit Sweep(std::string bench_name) : bench_(std::move(bench_name)) {}

  /// Parse --jobs/--json (and -h/--help). Returns false if the program
  /// should exit (help was printed or a flag was invalid).
  bool parse_args(int argc, char** argv) {
    std::int64_t jobs = 0;
    std::int64_t sim_threads = 1;
    FlagParser parser(bench_ +
                      " — parameter sweep (each point is an independent "
                      "simulation;\nresults are identical for any --jobs).");
    parser.add("jobs", "worker threads (0 = all hardware threads)", &jobs);
    parser.add("sim-threads",
               "engine threads inside each simulation (sharded parallel "
               "engine; results bit-identical to 1)",
               &sim_threads);
    parser.add("json", "dump per-point timings+metrics to this file",
               &opts_.json_path);
    parser.add("metrics-json",
               "dump per-point latency/hop distribution metrics "
               "(p50/p90/p99) to this file",
               &opts_.metrics_json_path);
    if (!parser.parse(argc, argv, std::cout, std::cerr)) return false;
    if (jobs < 0) {
      std::cerr << "bad --jobs: " << jobs << '\n';
      return false;
    }
    if (sim_threads < 1) {
      std::cerr << "bad --sim-threads: " << sim_threads << '\n';
      return false;
    }
    opts_.jobs = static_cast<std::size_t>(jobs);
    opts_.sim_threads = static_cast<std::size_t>(sim_threads);
    return true;
  }

  void set_options(const SweepOptions& opts) { opts_ = opts; }
  const SweepOptions& options() const { return opts_; }

  /// Add one point. `body` runs on a worker thread and must be
  /// self-contained: it builds, runs and tears down its own simulation
  /// and touches no state shared with other points.
  void add(std::string label, std::function<Result()> body) {
    labels_.push_back(std::move(label));
    bodies_.push_back(std::move(body));
  }

  /// Convenience for the run_experiment benches. The sweep's
  /// --sim-threads setting is applied to the config at execution time.
  template <typename R = Result>
    requires std::same_as<R, ExperimentResult>
  void add(std::string label, const ExperimentConfig& cfg) {
    add(std::move(label), [this, cfg = cfg]() mutable {
      cfg.sim_threads = opts_.sim_threads;
      return run_experiment(cfg);
    });
  }

  /// Execute every point; `on_row(i, result)` fires on the calling
  /// thread in add() order. Returns all results, index-aligned with
  /// add() order.
  const std::vector<Result>& run(
      const std::function<void(std::size_t, const Result&)>& on_row = {}) {
    const std::size_t n = bodies_.size();
    results_.clear();
    results_.resize(n);
    timings_.assign(n, PointTiming{});
    const auto t0 = std::chrono::steady_clock::now();
    detail::run_indexed(
        n, opts_.jobs,
        [this](std::size_t i) {
          const auto start = std::chrono::steady_clock::now();
          results_[i] = bodies_[i]();
          PointTiming& t = timings_[i];
          t.wall_s = detail::seconds_since(start);
          if constexpr (requires(const Result& r) { r.sim_events; }) {
            t.sim_events =
                static_cast<std::uint64_t>(results_[i].sim_events);
            if (t.wall_s > 0) {
              t.events_per_sec =
                  static_cast<double>(t.sim_events) / t.wall_s;
            }
          }
        },
        [&](std::size_t i) {
          if (on_row) on_row(i, results_[i]);
        });
    total_wall_s_ = detail::seconds_since(t0);
    if (!opts_.json_path.empty()) {
      std::vector<JsonFields> metrics;
      metrics.reserve(n);
      for (const Result& r : results_) metrics.push_back(json_fields(r));
      detail::write_json(opts_.json_path, bench_,
                         detail::resolve_jobs(opts_.jobs), total_wall_s_,
                         labels_, timings_, metrics);
    }
    if (!opts_.metrics_json_path.empty()) {
      std::vector<JsonFields> metrics;
      metrics.reserve(n);
      for (const Result& r : results_) {
        if constexpr (requires { metrics_fields(r); }) {
          metrics.push_back(metrics_fields(r));
        } else {
          metrics.push_back(json_fields(r));
        }
      }
      detail::write_json(opts_.metrics_json_path, bench_,
                         detail::resolve_jobs(opts_.jobs), total_wall_s_,
                         labels_, timings_, metrics);
    }
    return results_;
  }

  std::size_t size() const { return bodies_.size(); }
  const std::string& label(std::size_t i) const { return labels_[i]; }
  const std::vector<Result>& results() const { return results_; }
  const std::vector<PointTiming>& timings() const { return timings_; }
  double total_wall_s() const { return total_wall_s_; }

 private:
  std::string bench_;
  SweepOptions opts_;
  std::vector<std::string> labels_;
  std::vector<std::function<Result()>> bodies_;
  std::vector<Result> results_;
  std::vector<PointTiming> timings_;
  double total_wall_s_ = 0;
};

}  // namespace cbps::bench
