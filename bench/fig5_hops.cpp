// Figure 5 — "Total Number of Hops": hops per request (subscription,
// publication, notification) for the three mappings, with the standard
// unicast send and with the native m-cast primitive.
//
// Paper setup (§5.1/§5.2): n = 500, key space 2^13, subscriptions never
// expire, all attributes non-selective, matching probability 0.5.
//
// Expected shape: publications cost ~1 route for M1/M2 and ~4 routes for
// M3; subscription hops are highest for M1 (~10x M3's key count) and
// lowest for M2; m-cast cuts subscription hops by >90% where the key
// count is high (M1, M3).
#include <cstdio>

#include "sweep.hpp"

using namespace cbps;
using namespace cbps::bench;

int main(int argc, char** argv) {
  using Transport = pubsub::PubSubConfig::Transport;

  Sweep<> sweep("fig5_hops");
  if (!sweep.parse_args(argc, argv)) return 1;

  const pubsub::MappingKind mappings[] = {
      pubsub::MappingKind::kAttributeSplit,
      pubsub::MappingKind::kKeySpaceSplit,
      pubsub::MappingKind::kSelectiveAttribute};
  const Transport transports[] = {Transport::kUnicast,
                                  Transport::kMulticast};
  for (const pubsub::MappingKind mapping : mappings) {
    for (const Transport t : transports) {
      ExperimentConfig cfg;
      cfg.mapping = mapping;
      cfg.sub_transport = t;
      cfg.pub_transport = t;
      cfg.subscriptions = 1000;
      cfg.publications = 1000;
      sweep.add(mapping_label(mapping) + "/" + transport_label(t), cfg);
    }
  }

  std::puts("=== Figure 5: hops per request, 3 mappings x {unicast, m-cast} ===");
  std::puts("n=500, 2^13 keys, no expiration, 0 selective attrs,");
  std::puts("1000 subscriptions, 1000 publications, matching prob 0.5\n");
  std::printf("%-20s %-9s %12s %12s %12s %14s\n", "mapping", "transport",
              "hops/sub", "hops/pub", "hops/notif", "notifications");

  const auto& results =
      sweep.run([&](std::size_t i, const ExperimentResult& r) {
        const auto mapping = mappings[i / 2];
        const auto t = transports[i % 2];
        std::printf("%-20s %-9s %12.1f %12.2f %12.2f %14llu\n",
                    mapping_label(mapping).c_str(),
                    transport_label(t).c_str(), r.hops_per_subscription,
                    r.hops_per_publication, r.hops_per_notification,
                    static_cast<unsigned long long>(
                        r.notifications_delivered));
      });

  // Point order: (M1, M2, M3) x (unicast, m-cast).
  const double m1_unicast_sub_hops = results[0].hops_per_subscription;
  const double m1_mcast_sub_hops = results[1].hops_per_subscription;
  const double m3_unicast_sub_hops = results[4].hops_per_subscription;
  const double m3_mcast_sub_hops = results[5].hops_per_subscription;

  std::printf("\nm-cast reduction of subscription hops: M1 %.0f%%, M3 %.0f%%"
              " (paper: >90%% for high-key-count mappings)\n",
              100.0 * (1.0 - m1_mcast_sub_hops / m1_unicast_sub_hops),
              100.0 * (1.0 - m3_mcast_sub_hops / m3_unicast_sub_hops));
  std::printf("M1/M3 unicast subscription-hop ratio: %.1fx (paper: ~10x "
              "more keys for M1)\n",
              m1_unicast_sub_hops / m3_unicast_sub_hops);
  return 0;
}
