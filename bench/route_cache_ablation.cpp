// Ablation — §5.1's "finger caching" observation: with n = 500 the
// average number of hops to deliver a message between two random nodes
// is ~2.5, better than log2(n) ≈ 9, thanks to the location cache.
//
// Sweeps the cache configuration (off / passive only / passive + owner
// feedback) and reports the average route length over a warm workload.
#include <cstdio>
#include <memory>
#include <vector>

#include "cbps/chord/network.hpp"
#include "cbps/sim/simulator.hpp"
#include "sweep.hpp"

using namespace cbps;
using namespace cbps::chord;

namespace {

struct Row {
  double avg_hops = 0;
  double hops_p50 = 0;
  double hops_p99 = 0;
  std::uint64_t sim_events = 0;
};

bench::JsonFields json_fields(const Row& r) {
  return {{"avg_hops", r.avg_hops},
          {"hops_p50", r.hops_p50},
          {"hops_p99", r.hops_p99}};
}

struct ProbePayload final : overlay::Payload {
  overlay::MessageClass message_class() const override {
    return overlay::MessageClass::kPublish;
  }
};

struct NullApp final : overlay::OverlayApp {
  void on_deliver(Key, const overlay::PayloadPtr&) override {}
  void on_deliver_mcast(std::span<const Key>,
                        const overlay::PayloadPtr&) override {}
  overlay::PayloadPtr export_state(Key, Key, bool) override {
    return nullptr;
  }
  void import_state(const overlay::PayloadPtr&) override {}
};

Row run(std::size_t cache_size, bool feedback, std::size_t n,
        std::size_t messages, std::size_t sim_threads,
        std::size_t warmup = 0) {
  const auto sim_ptr = bench::make_engine(sim_threads, sim::ms(50));
  sim::SimulatorBase& sim = *sim_ptr;
  ChordConfig cfg;
  cfg.location_cache_size = cache_size;
  cfg.owner_feedback = feedback;
  ChordNetwork net(sim, cfg, 12345);
  for (std::size_t i = 0; i < n; ++i) {
    net.add_node("node-" + std::to_string(i));
  }
  net.build_static_ring();
  std::vector<std::unique_ptr<NullApp>> apps;
  for (Key id : net.alive_ids()) {
    apps.push_back(std::make_unique<NullApp>());
    net.node(id)->set_app(apps.back().get());
  }

  Rng rng(7);
  const auto payload = std::make_shared<ProbePayload>();
  for (std::size_t i = 0; i < warmup + messages; ++i) {
    if (i == warmup) {
      sim.run();
      net.traffic().reset();  // measure the warmed steady state only
      net.registry().histogram("chord.route_hops").reset();
    }
    ChordNode& src = net.alive_node(static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)));
    const Key key = static_cast<Key>(
        rng.uniform_int(0, static_cast<std::int64_t>(net.ring().max_key())));
    src.send(key, payload);
    // Pace the sends so feedback from earlier routes lands first.
    sim.run_until(sim.now() + sim::ms(500));
  }
  sim.run();
  metrics::Histogram& hops = net.registry().histogram("chord.route_hops");
  return Row{
      net.traffic().route_hops(overlay::MessageClass::kPublish).mean(),
      hops.p50(), hops.p99(), sim.events_processed()};
}

}  // namespace

int main(int argc, char** argv) {
  bench::Sweep<Row> sweep("route_cache_ablation");
  if (!sweep.parse_args(argc, argv)) return 1;

  const std::size_t st = sweep.options().sim_threads;
  sweep.add("no cache", [st] { return run(0, false, 500, 5000, st); });
  sweep.add("passive cache (128 entries)",
            [st] { return run(128, false, 500, 5000, st); });
  sweep.add("passive + owner feedback",
            [st] { return run(128, true, 500, 5000, st); });
  sweep.add("large cache (512) + feedback",
            [st] { return run(512, true, 500, 5000, st); });
  sweep.add("warmed 512-cache (100k warm-up)",
            [st] { return run(512, true, 500, 20000, st, 100000); });

  std::puts("=== Route-cache ablation: avg hops per unicast, n=500 ===");
  std::puts("5000 random routes from random sources (paper §5.1: ~2.5 hops");
  std::puts("at n=500, better than log2(500) = 9, via finger caching)\n");
  std::printf("%-34s %10s\n", "configuration", "avg hops");
  sweep.run([&](std::size_t i, const Row& r) {
    std::printf("%-34s %10.2f\n", sweep.label(i).c_str(), r.avg_hops);
  });
  std::puts("\n(the paper's ~2.5 is the steady state of a long experiment,");
  std::puts("where every node has learned most owners)");
  return 0;
}
