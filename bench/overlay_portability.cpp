// Ablation — overlay portability (§3.1 footnote 1): the same CB-pub/sub
// layer and workload running over the Chord substrate and over the
// Pastry-style prefix-routing substrate. Compares per-request hop costs.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cbps/chord/network.hpp"
#include "cbps/pastry/pastry.hpp"
#include "cbps/pubsub/node.hpp"
#include "cbps/sim/simulator.hpp"
#include "cbps/workload/generator.hpp"
#include "sweep.hpp"

using namespace cbps;

namespace {

struct Result {
  double hops_per_sub = 0;
  double hops_per_pub = 0;
  double hops_per_notif = 0;
  std::uint64_t notifications = 0;
  double delay_p50_s = 0;  // publish-to-notify latency distribution
  double delay_p99_s = 0;
  double hops_p50 = 0;     // per-route hop distribution
  double hops_p99 = 0;
  std::uint64_t sim_events = 0;
};

bench::JsonFields json_fields(const Result& r) {
  return {{"hops_per_sub", r.hops_per_sub},
          {"hops_per_pub", r.hops_per_pub},
          {"hops_per_notif", r.hops_per_notif},
          {"notifications", static_cast<double>(r.notifications)},
          {"delay_p50_s", r.delay_p50_s},
          {"delay_p99_s", r.delay_p99_s},
          {"hops_p50", r.hops_p50},
          {"hops_p99", r.hops_p99}};
}

bench::JsonFields metrics_fields(const Result& r) {
  return {{"delay_p50_s", r.delay_p50_s},
          {"delay_p99_s", r.delay_p99_s},
          {"hops_p50", r.hops_p50},
          {"hops_p99", r.hops_p99},
          {"hops_per_notif", r.hops_per_notif}};
}

// Drive the identical workload over any pair of (nodes, traffic stats).
template <typename MakeNode>
Result drive(sim::SimulatorBase& sim, const std::vector<Key>& ids,
             MakeNode&& node_of, overlay::TrafficStats& traffic,
             pubsub::MappingKind kind,
             pubsub::PubSubConfig::Transport transport) {
  const pubsub::Schema schema = pubsub::Schema::uniform(4, 1'000'000);
  const auto mapping = pubsub::make_mapping(kind, schema, RingParams{13});

  pubsub::PubSubConfig pcfg;
  pcfg.sub_transport = transport;
  pcfg.pub_transport = transport;

  std::vector<std::unique_ptr<pubsub::PubSubNode>> nodes;
  for (Key id : ids) {
    nodes.push_back(std::make_unique<pubsub::PubSubNode>(node_of(id), sim,
                                                         *mapping, pcfg));
  }
  std::uint64_t delivered = 0;
  for (auto& n : nodes) {
    n->set_notify_sink(
        [&delivered](Key, const pubsub::Notification&) { ++delivered; });
  }

  workload::WorkloadGenerator gen(schema, {}, 424242);
  std::vector<pubsub::SubscriptionPtr> active;
  const std::uint64_t kSubs = 400;
  const std::uint64_t kPubs = 400;
  SubscriptionId next_sub = 1;
  EventId next_event = 1;
  for (std::uint64_t i = 0; i < kSubs; ++i) {
    const auto idx = static_cast<std::size_t>(
        gen.rng().uniform_int(0, static_cast<std::int64_t>(ids.size()) - 1));
    auto sub = std::make_shared<pubsub::Subscription>();
    sub->id = next_sub++;
    sub->subscriber = ids[idx];
    sub->constraints = gen.make_constraints();
    nodes[idx]->subscribe(sub);
    active.push_back(std::move(sub));
    sim.run_until(sim.now() + sim::sec(5));
  }
  for (std::uint64_t i = 0; i < kPubs; ++i) {
    const auto idx = static_cast<std::size_t>(
        gen.rng().uniform_int(0, static_cast<std::int64_t>(ids.size()) - 1));
    auto event = std::make_shared<pubsub::Event>();
    event->id = next_event++;
    event->values = gen.make_event_values(active);
    nodes[idx]->publish(std::move(event));
    sim.run_until(sim.now() + sim::sec(5));
  }
  sim.run();

  Result r;
  r.hops_per_sub =
      static_cast<double>(traffic.hops(overlay::MessageClass::kSubscribe)) /
      static_cast<double>(kSubs);
  r.hops_per_pub =
      static_cast<double>(traffic.hops(overlay::MessageClass::kPublish)) /
      static_cast<double>(kPubs);
  r.notifications = delivered;
  if (delivered > 0) {
    r.hops_per_notif =
        static_cast<double>(traffic.hops(overlay::MessageClass::kNotify)) /
        static_cast<double>(delivered);
  }
  metrics::Histogram delay_hist;
  for (const auto& n : nodes) delay_hist.merge(n->delay_histogram());
  r.delay_p50_s = delay_hist.p50();
  r.delay_p99_s = delay_hist.p99();
  r.sim_events = sim.events_processed();
  return r;
}

Result run_chord(pubsub::MappingKind kind,
                 pubsub::PubSubConfig::Transport transport,
                 std::size_t sim_threads) {
  const auto sim_ptr = bench::make_engine(sim_threads, sim::ms(50));
  sim::SimulatorBase& sim = *sim_ptr;
  chord::ChordConfig cfg;
  chord::ChordNetwork net(sim, cfg, 11);
  for (int i = 0; i < 200; ++i) net.add_node("c" + std::to_string(i));
  net.build_static_ring();
  Result r = drive(
      sim, net.alive_ids(),
      [&net](Key id) -> overlay::OverlayNode& { return *net.node(id); },
      net.traffic(), kind, transport);
  metrics::Histogram& hops = net.registry().histogram("chord.route_hops");
  r.hops_p50 = hops.p50();
  r.hops_p99 = hops.p99();
  return r;
}

Result run_pastry(pubsub::MappingKind kind,
                  pubsub::PubSubConfig::Transport transport,
                  std::size_t sim_threads) {
  const auto sim_ptr = bench::make_engine(sim_threads, sim::ms(50));
  sim::SimulatorBase& sim = *sim_ptr;
  pastry::PastryConfig cfg;
  pastry::PastryNetwork net(sim, cfg, 11);
  for (int i = 0; i < 200; ++i) net.add_node("c" + std::to_string(i));
  net.build_static_ring();
  Result r = drive(
      sim, net.ids(),
      [&net](Key id) -> overlay::OverlayNode& { return *net.node(id); },
      net.traffic(), kind, transport);
  metrics::Histogram& hops = net.registry().histogram("pastry.route_hops");
  r.hops_p50 = hops.p50();
  r.hops_p99 = hops.p99();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using Transport = pubsub::PubSubConfig::Transport;
  bench::Sweep<Result> sweep("overlay_portability");
  if (!sweep.parse_args(argc, argv)) return 1;

  struct Case {
    pubsub::MappingKind kind;
    Transport transport;
    const char* label;
  };
  const Case cases[] = {
      {pubsub::MappingKind::kSelectiveAttribute, Transport::kUnicast,
       "M3 selective-attr"},
      {pubsub::MappingKind::kSelectiveAttribute, Transport::kMulticast,
       "M3 selective-attr"},
      {pubsub::MappingKind::kKeySpaceSplit, Transport::kUnicast,
       "M2 key-space-split"},
  };
  const char* overlays[] = {"chord", "pastry"};
  for (const Case& c : cases) {
    const char* tname =
        c.transport == Transport::kUnicast ? "unicast" : "m-cast";
    for (std::size_t o = 0; o < std::size(overlays); ++o) {
      sweep.add(std::string(c.label) + "/" + tname + "/" + overlays[o],
                [&c, o, st = sweep.options().sim_threads] {
                  return o == 0 ? run_chord(c.kind, c.transport, st)
                                : run_pastry(c.kind, c.transport, st);
                });
    }
  }

  std::puts("=== Overlay portability: identical pub/sub layer + workload ===");
  std::puts("n=200, 400 subs + 400 pubs, paper workload; Chord has the");
  std::puts("location cache, Pastry is pure prefix routing\n");
  std::printf("%-20s %-9s %-8s %10s %10s %12s %8s\n", "mapping", "transport",
              "overlay", "hops/sub", "hops/pub", "hops/notif", "notifs");

  sweep.run([&](std::size_t i, const Result& r) {
    const Case& c = cases[i / std::size(overlays)];
    const char* tname =
        c.transport == Transport::kUnicast ? "unicast" : "m-cast";
    std::printf("%-20s %-9s %-8s %10.1f %10.2f %12.2f %8llu\n", c.label,
                tname, overlays[i % std::size(overlays)], r.hops_per_sub,
                r.hops_per_pub, r.hops_per_notif,
                static_cast<unsigned long long>(r.notifications));
  });
  std::puts("\nthe identical notification counts confirm the layer is");
  std::puts("overlay-agnostic; hop differences reflect the substrates'");
  std::puts("routing (cached Chord vs pure prefix routing).");
  return 0;
}
