// Figure 7 — "Scalability of bandwidth consumption": hops per
// publication as a function of the number of nodes n, for Mapping 3
// (Selective-Attribute) with unicast.
//
// Expected shape: logarithmic growth in n — the basic scalability
// property of the underlying overlay (§5.2).
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "sweep.hpp"

using namespace cbps;
using namespace cbps::bench;

int main(int argc, char** argv) {
  Sweep<> sweep("fig7_scalability");
  if (!sweep.parse_args(argc, argv)) return 1;

  const std::vector<std::size_t> node_counts = {50, 100, 250, 500, 1000,
                                                2000};
  for (const std::size_t n : node_counts) {
    ExperimentConfig cfg;
    cfg.nodes = n;
    cfg.mapping = pubsub::MappingKind::kSelectiveAttribute;
    cfg.subscriptions = 500;
    cfg.publications = 500;
    sweep.add("n=" + std::to_string(n), cfg);
  }

  std::puts("=== Figure 7: hops per publication vs number of nodes ===");
  std::puts("Mapping 3 (selective-attribute), unicast, 500 subs + 500 pubs\n");
  std::printf("%6s %14s %14s %10s\n", "nodes", "hops/pub",
              "avg route hops", "log2(n)");

  sweep.run([&](std::size_t i, const ExperimentResult& r) {
    const std::size_t n = node_counts[i];
    std::printf("%6zu %14.2f %14.2f %10.1f\n", n, r.hops_per_publication,
                r.avg_route_hops, std::log2(static_cast<double>(n)));
  });

  std::puts("\n(each publication routes to d=4 rendezvous keys; the per-route");
  std::puts("average stays below log2(n) thanks to the location cache, as");
  std::puts("the paper observes: ~2.5 hops at n=500)");
  return 0;
}
