// Micro-benchmarks for the compute-bound pieces of the library: the
// scaling hash, SK/EK mapping computation, matching, store maintenance
// and SHA-1. Timing is hand-rolled (steady_clock + auto-scaled
// iteration counts) so the bench shares the sweep runner and JSON
// output with the figure benches instead of pulling in an external
// benchmark framework.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cbps/common/sha1.hpp"
#include "cbps/metrics/histogram.hpp"
#include "cbps/pubsub/mapping.hpp"
#include "cbps/pubsub/store.hpp"
#include "cbps/workload/generator.hpp"
#include "sweep.hpp"

namespace {

using namespace cbps;

template <typename T>
inline void do_not_optimize(const T& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

struct MicroRow {
  double ns_per_op = 0;
  double ops_per_sec = 0;
  double items_per_sec = 0;  // ops/sec x per-op item count (0 if n/a)
  double ns_p50 = 0;         // chunk-level per-op cost distribution
  double ns_p99 = 0;
  std::uint64_t iterations = 0;
};

bench::JsonFields json_fields(const MicroRow& r) {
  return {{"ns_per_op", r.ns_per_op},
          {"ops_per_sec", r.ops_per_sec},
          {"items_per_sec", r.items_per_sec},
          {"ns_p50", r.ns_p50},
          {"ns_p99", r.ns_p99},
          {"iterations", static_cast<double>(r.iterations)}};
}

bench::JsonFields metrics_fields(const MicroRow& r) {
  return {{"ns_per_op", r.ns_per_op},
          {"ns_p50", r.ns_p50},
          {"ns_p99", r.ns_p99},
          {"ops_per_sec", r.ops_per_sec}};
}

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

// Runs `op` in ever-larger batches until a batch takes at least
// `min_time_s`, then reports per-op cost from that batch.
template <typename Op>
MicroRow time_op(Op&& op, double items_per_op = 0,
                 double min_time_s = 0.1) {
  op();  // warm-up (and first-call setup such as lazy allocations)
  std::uint64_t iters = 1;
  for (;;) {
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) op();
    const double s =
        seconds_between(start, std::chrono::steady_clock::now());
    if (s >= min_time_s || iters >= (std::uint64_t{1} << 30)) {
      MicroRow r;
      r.iterations = iters;
      r.ns_per_op = s * 1e9 / static_cast<double>(iters);
      r.ops_per_sec = static_cast<double>(iters) / s;
      r.items_per_sec = r.ops_per_sec * items_per_op;
      // Distribution pass: re-run the same budget in chunks, recording
      // each chunk's per-op cost. (Timing single nanosecond-scale ops
      // would measure the clock, not the op — chunk-level percentiles
      // still expose allocator/cache jitter.)
      metrics::Histogram hist;
      const std::uint64_t chunks = iters < 32 ? iters : 32;
      const std::uint64_t per_chunk = iters / chunks;
      for (std::uint64_t c = 0; per_chunk > 0 && c < chunks; ++c) {
        const auto cs = std::chrono::steady_clock::now();
        for (std::uint64_t i = 0; i < per_chunk; ++i) op();
        const double chunk_s =
            seconds_between(cs, std::chrono::steady_clock::now());
        hist.add(chunk_s * 1e9 / static_cast<double>(per_chunk));
      }
      r.ns_p50 = hist.p50();
      r.ns_p99 = hist.p99();
      return r;
    }
    // Aim 40% past the threshold; cap the growth factor at 16x.
    std::uint64_t next = iters * 16;
    if (s > 0) {
      const double scaled = static_cast<double>(iters) * min_time_s * 1.4 / s;
      if (scaled < static_cast<double>(next)) {
        next = static_cast<std::uint64_t>(scaled) + 1;
      }
    }
    iters = next > iters ? next : iters + 1;
  }
}

// As time_op, but rebuilds fresh state before every timed call — for
// destructive operations such as the expiry sweep.
template <typename Setup, typename Op>
MicroRow time_op_with_setup(Setup&& setup, Op&& op,
                            double min_time_s = 0.1) {
  {
    auto state = setup();
    op(state);  // warm-up
  }
  double total = 0;
  std::uint64_t iters = 0;
  metrics::Histogram hist;  // here every op is individually timed
  while (total < min_time_s) {
    auto state = setup();
    const auto start = std::chrono::steady_clock::now();
    op(state);
    const double s = seconds_between(start, std::chrono::steady_clock::now());
    total += s;
    hist.add(s * 1e9);
    ++iters;
  }
  MicroRow r;
  r.iterations = iters;
  r.ns_per_op = total * 1e9 / static_cast<double>(iters);
  r.ops_per_sec = static_cast<double>(iters) / total;
  r.ns_p50 = hist.p50();
  r.ns_p99 = hist.p99();
  return r;
}

pubsub::Schema paper_schema() {
  return pubsub::Schema::uniform(4, 1'000'000);
}

constexpr pubsub::MappingKind kMappings[] = {
    pubsub::MappingKind::kAttributeSplit,
    pubsub::MappingKind::kKeySpaceSplit,
    pubsub::MappingKind::kSelectiveAttribute,
};

MicroRow run_subscription_keys(pubsub::MappingKind kind) {
  const auto schema = paper_schema();
  auto mapping = pubsub::make_mapping(kind, schema, RingParams{13});
  workload::WorkloadGenerator gen(schema, {}, 42);
  std::vector<pubsub::Subscription> subs;
  for (int i = 0; i < 256; ++i) {
    pubsub::Subscription s;
    s.id = static_cast<SubscriptionId>(i + 1);
    s.constraints = gen.make_constraints();
    subs.push_back(std::move(s));
  }
  std::size_t i = 0;
  return time_op([&] {
    do_not_optimize(mapping->subscription_keys(subs[i++ % subs.size()]));
  });
}

MicroRow run_event_keys(pubsub::MappingKind kind) {
  const auto schema = paper_schema();
  auto mapping = pubsub::make_mapping(kind, schema, RingParams{13});
  workload::WorkloadGenerator gen(schema, {}, 43);
  std::vector<pubsub::Event> events;
  for (int i = 0; i < 256; ++i) {
    pubsub::Event e;
    e.id = static_cast<EventId>(i + 1);
    e.values = gen.make_random_values();
    events.push_back(std::move(e));
  }
  std::size_t i = 0;
  return time_op([&] {
    do_not_optimize(mapping->event_keys(events[i++ % events.size()]));
  });
}

MicroRow run_match(std::size_t n_subs, bool counting_index) {
  const auto schema = paper_schema();
  workload::WorkloadGenerator gen(schema, {}, 44);
  pubsub::SubscriptionStore store;
  if (counting_index) store.use_counting_index(schema);
  for (std::size_t i = 0; i < n_subs; ++i) {
    auto s = std::make_shared<pubsub::Subscription>();
    s->id = static_cast<SubscriptionId>(i + 1);
    s->constraints = gen.make_constraints();
    store.insert({std::move(s), sim::kSimTimeNever, {}, false});
  }
  pubsub::Event e;
  e.id = 1;
  return time_op(
      [&] {
        e.values = gen.make_random_values();
        do_not_optimize(store.match(e, 0));
      },
      static_cast<double>(n_subs));
}

MicroRow run_store_churn() {
  const auto schema = paper_schema();
  workload::WorkloadGenerator gen(schema, {}, 45);
  std::vector<pubsub::SubscriptionPtr> subs;
  for (int i = 0; i < 4096; ++i) {
    auto s = std::make_shared<pubsub::Subscription>();
    s->id = static_cast<SubscriptionId>(i + 1);
    s->constraints = gen.make_constraints();
    subs.push_back(std::move(s));
  }
  pubsub::SubscriptionStore store;
  std::size_t i = 0;
  return time_op([&] {
    const auto& s = subs[i % subs.size()];
    store.insert({s, sim::sec(i + 1), {}, false});
    if (i >= 1024) store.remove(subs[(i - 1024) % subs.size()]->id);
    ++i;
  });
}

MicroRow run_expiry_sweep() {
  const auto schema = paper_schema();
  workload::WorkloadGenerator gen(schema, {}, 46);
  std::vector<pubsub::SubscriptionPtr> subs;
  for (int i = 0; i < 1000; ++i) {
    auto s = std::make_shared<pubsub::Subscription>();
    s->id = static_cast<SubscriptionId>(i + 1);
    s->constraints = gen.make_constraints();
    subs.push_back(std::move(s));
  }
  return time_op_with_setup(
      [&] {
        pubsub::SubscriptionStore store;
        for (std::size_t i = 0; i < subs.size(); ++i) {
          store.insert({subs[i], sim::sec(static_cast<std::uint64_t>(i)),
                        {}, false});
        }
        return store;
      },
      [](pubsub::SubscriptionStore& store) {
        do_not_optimize(store.sweep_expired(sim::sec(1000)));
      });
}

MicroRow run_sha1(std::size_t bytes) {
  const std::string data(bytes, 'x');
  MicroRow r = time_op([&] { do_not_optimize(cbps::Sha1::hash(data)); });
  r.items_per_sec = r.ops_per_sec * static_cast<double>(bytes);  // bytes/s
  return r;
}

MicroRow run_zipf() {
  Rng rng(47);
  ZipfSampler zipf(1'000'000, 1.0);
  return time_op([&] { do_not_optimize(zipf(rng)); });
}

}  // namespace

int main(int argc, char** argv) {
  bench::Sweep<MicroRow> sweep("micro_pubsub");
  if (!sweep.parse_args(argc, argv)) return 1;

  for (const auto kind : kMappings) {
    sweep.add("subscription_keys/" + std::string(pubsub::to_string(kind)),
              [kind] { return run_subscription_keys(kind); });
  }
  for (const auto kind : kMappings) {
    sweep.add("event_keys/" + std::string(pubsub::to_string(kind)),
              [kind] { return run_event_keys(kind); });
  }
  for (const std::size_t n : {100, 1000, 10000}) {
    sweep.add("match_store/" + std::to_string(n),
              [n] { return run_match(n, false); });
  }
  for (const std::size_t n : {100, 1000, 10000}) {
    sweep.add("match_counting_index/" + std::to_string(n),
              [n] { return run_match(n, true); });
  }
  sweep.add("store_insert_erase_churn", [] { return run_store_churn(); });
  sweep.add("expiry_sweep/1000", [] { return run_expiry_sweep(); });
  for (const std::size_t bytes : {64, 4096}) {
    sweep.add("sha1/" + std::to_string(bytes),
              [bytes] { return run_sha1(bytes); });
  }
  sweep.add("zipf_sample", [] { return run_zipf(); });

  std::puts("=== Micro-benchmarks: compute-bound pieces ===\n");
  std::printf("%-36s %12s %14s %14s\n", "benchmark", "ns/op", "ops/sec",
              "items/sec");
  sweep.run([&](std::size_t i, const MicroRow& r) {
    std::printf("%-36s %12.1f %14.0f", sweep.label(i).c_str(), r.ns_per_op,
                r.ops_per_sec);
    if (r.items_per_sec > 0) {
      std::printf(" %14.0f", r.items_per_sec);
    }
    std::puts("");
  });
  std::puts("\n(items/sec = subscriptions tested per second for the match");
  std::puts("benches, bytes per second for sha1)");
  return 0;
}
