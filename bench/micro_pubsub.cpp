// Micro-benchmarks (google-benchmark) for the compute-bound pieces of
// the library: the scaling hash, SK/EK mapping computation, matching,
// store maintenance and SHA-1.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "cbps/common/sha1.hpp"
#include "cbps/pubsub/mapping.hpp"
#include "cbps/pubsub/store.hpp"
#include "cbps/workload/generator.hpp"

namespace {

using namespace cbps;

pubsub::Schema paper_schema() {
  return pubsub::Schema::uniform(4, 1'000'000);
}

pubsub::MappingKind kind_from_arg(std::int64_t arg) {
  switch (arg) {
    case 0:
      return pubsub::MappingKind::kAttributeSplit;
    case 1:
      return pubsub::MappingKind::kKeySpaceSplit;
    default:
      return pubsub::MappingKind::kSelectiveAttribute;
  }
}

void BM_SubscriptionKeys(benchmark::State& state) {
  const auto schema = paper_schema();
  auto mapping = pubsub::make_mapping(kind_from_arg(state.range(0)), schema,
                                      RingParams{13});
  workload::WorkloadGenerator gen(schema, {}, 42);
  std::vector<pubsub::Subscription> subs;
  for (int i = 0; i < 256; ++i) {
    pubsub::Subscription s;
    s.id = static_cast<SubscriptionId>(i + 1);
    s.constraints = gen.make_constraints();
    subs.push_back(std::move(s));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mapping->subscription_keys(subs[i++ % subs.size()]));
  }
  state.SetLabel(std::string(pubsub::to_string(kind_from_arg(state.range(0)))));
}
BENCHMARK(BM_SubscriptionKeys)->Arg(0)->Arg(1)->Arg(2);

void BM_EventKeys(benchmark::State& state) {
  const auto schema = paper_schema();
  auto mapping = pubsub::make_mapping(kind_from_arg(state.range(0)), schema,
                                      RingParams{13});
  workload::WorkloadGenerator gen(schema, {}, 43);
  std::vector<pubsub::Event> events;
  for (int i = 0; i < 256; ++i) {
    pubsub::Event e;
    e.id = static_cast<EventId>(i + 1);
    e.values = gen.make_random_values();
    events.push_back(std::move(e));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapping->event_keys(events[i++ % events.size()]));
  }
  state.SetLabel(std::string(pubsub::to_string(kind_from_arg(state.range(0)))));
}
BENCHMARK(BM_EventKeys)->Arg(0)->Arg(1)->Arg(2);

void BM_MatchAgainstStore(benchmark::State& state) {
  const auto schema = paper_schema();
  workload::WorkloadGenerator gen(schema, {}, 44);
  pubsub::SubscriptionStore store;
  const auto n_subs = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n_subs; ++i) {
    auto s = std::make_shared<pubsub::Subscription>();
    s->id = static_cast<SubscriptionId>(i + 1);
    s->constraints = gen.make_constraints();
    store.insert({std::move(s), sim::kSimTimeNever, {}, false});
  }
  pubsub::Event e;
  e.id = 1;
  for (auto _ : state) {
    e.values = gen.make_random_values();
    benchmark::DoNotOptimize(store.match(e, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MatchAgainstStore)->Arg(100)->Arg(1000)->Arg(10000);

void BM_MatchCountingIndex(benchmark::State& state) {
  const auto schema = paper_schema();
  workload::WorkloadGenerator gen(schema, {}, 44);
  pubsub::SubscriptionStore store;
  store.use_counting_index(schema);
  const auto n_subs = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n_subs; ++i) {
    auto s = std::make_shared<pubsub::Subscription>();
    s->id = static_cast<SubscriptionId>(i + 1);
    s->constraints = gen.make_constraints();
    store.insert({std::move(s), sim::kSimTimeNever, {}, false});
  }
  pubsub::Event e;
  e.id = 1;
  for (auto _ : state) {
    e.values = gen.make_random_values();
    benchmark::DoNotOptimize(store.match(e, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MatchCountingIndex)->Arg(100)->Arg(1000)->Arg(10000);

void BM_StoreInsertEraseChurn(benchmark::State& state) {
  const auto schema = paper_schema();
  workload::WorkloadGenerator gen(schema, {}, 45);
  std::vector<pubsub::SubscriptionPtr> subs;
  for (int i = 0; i < 4096; ++i) {
    auto s = std::make_shared<pubsub::Subscription>();
    s->id = static_cast<SubscriptionId>(i + 1);
    s->constraints = gen.make_constraints();
    subs.push_back(std::move(s));
  }
  pubsub::SubscriptionStore store;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& s = subs[i % subs.size()];
    store.insert({s, sim::sec(i + 1), {}, false});
    if (i >= 1024) store.remove(subs[(i - 1024) % subs.size()]->id);
    ++i;
  }
}
BENCHMARK(BM_StoreInsertEraseChurn);

void BM_ExpirySweep(benchmark::State& state) {
  const auto schema = paper_schema();
  workload::WorkloadGenerator gen(schema, {}, 46);
  for (auto _ : state) {
    state.PauseTiming();
    pubsub::SubscriptionStore store;
    for (int i = 0; i < 1000; ++i) {
      auto s = std::make_shared<pubsub::Subscription>();
      s->id = static_cast<SubscriptionId>(i + 1);
      s->constraints = gen.make_constraints();
      store.insert({std::move(s), sim::sec(static_cast<std::uint64_t>(i)),
                    {}, false});
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(store.sweep_expired(sim::sec(1000)));
  }
}
BENCHMARK(BM_ExpirySweep);

void BM_Sha1(benchmark::State& state) {
  const std::string data(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(cbps::Sha1::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(64)->Arg(4096);

void BM_ZipfSample(benchmark::State& state) {
  Rng rng(47);
  ZipfSampler zipf(1'000'000, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf(rng));
  }
}
BENCHMARK(BM_ZipfSample);

}  // namespace

BENCHMARK_MAIN();
