// Extension experiment — the fault matrix: scripted fault scenarios
// (partition/heal, bursty Gilbert–Elliott loss, gray failures,
// correlated crash bursts, and all of them at once) crossed with the
// paper's AK mappings.
//
// Each cell runs the standard workload under one FaultScript and
// reports the overall and post-heal delivery ratios, the reliability
// overhead paid (retransmissions, messages cut by the partition), how
// long the ring took to re-merge after heal, and what the post-run
// invariant auditor found. The headline: with replication and the
// ack/retry layer, every scenario returns to delivery ratio 1.0 after
// its faults clear, and the auditor certifies the ring and the
// subscription placement.
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cbps/pubsub/audit.hpp"
#include "cbps/pubsub/delivery_checker.hpp"
#include "cbps/workload/driver.hpp"
#include "cbps/workload/fault_script.hpp"
#include "sweep.hpp"

using namespace cbps;

namespace {

struct Scenario {
  const char* label;
  const char* script;          // FaultScript text ("" = baseline)
  double post_heal_from_s;     // post-heal window start (0 = whole run)
};

// Faults start after the 60 subscriptions have registered (t = 300 s)
// and clear with enough run left (~1500 s of publications) to observe
// recovery.
const Scenario kScenarios[] = {
    {"baseline", "", 0},
    {"partition", "partition at=400 heal=700 frac=0.4", 760},
    {"burst_loss",
     "loss at=300 until=1200 model=ge p=0.02 q=0.2 good=0.005 bad=0.7",
     1260},
    {"gray", "slow at=300 until=1200 nodes=6 factor=8", 0},
    {"crash_burst", "crash_burst at=700 count=6 correlation=0.7", 760},
    {"combined",
     "loss at=300 until=1200 model=ge p=0.02 q=0.2 good=0.005 bad=0.7\n"
     "slow at=300 until=1200 nodes=4 factor=6\n"
     "partition at=400 heal=700 frac=0.3\n"
     "crash_burst at=900 count=4 correlation=0.5",
     1260},
};

struct Row {
  std::uint64_t expected = 0;
  std::uint64_t missing = 0;
  std::uint64_t duplicates = 0;
  double delivery_rate = 1.0;
  double post_heal_rate = 1.0;
  std::uint64_t retransmits = 0;
  std::uint64_t partition_cut = 0;  // refused + dropped at the cut
  std::uint64_t crashes = 0;
  double recovery_s = -1.0;  // heal -> ring audit clean (-1 = n/a)
  bool ring_ok = false;
  std::uint64_t audit_violations = 0;  // placement+replica+rendezvous
  double delay_p50_s = 0;
  double delay_p99_s = 0;
  double hops_p50 = 0;
  double hops_p99 = 0;
  std::uint64_t sim_events = 0;
};

bench::JsonFields json_fields(const Row& r) {
  return {{"expected", static_cast<double>(r.expected)},
          {"missing", static_cast<double>(r.missing)},
          {"duplicates", static_cast<double>(r.duplicates)},
          {"delivery_rate", r.delivery_rate},
          {"post_heal_rate", r.post_heal_rate},
          {"retransmits", static_cast<double>(r.retransmits)},
          {"partition_cut", static_cast<double>(r.partition_cut)},
          {"crashes", static_cast<double>(r.crashes)},
          {"recovery_s", r.recovery_s},
          {"ring_ok", r.ring_ok ? 1.0 : 0.0},
          {"audit_violations", static_cast<double>(r.audit_violations)},
          {"delay_p50_s", r.delay_p50_s},
          {"delay_p99_s", r.delay_p99_s},
          {"hops_p50", r.hops_p50},
          {"hops_p99", r.hops_p99}};
}

bench::JsonFields metrics_fields(const Row& r) {
  return {{"delay_p50_s", r.delay_p50_s},
          {"delay_p99_s", r.delay_p99_s},
          {"hops_p50", r.hops_p50},
          {"hops_p99", r.hops_p99},
          {"delivery_rate", r.delivery_rate},
          {"post_heal_rate", r.post_heal_rate}};
}

Row run(const Scenario& sc, pubsub::MappingKind mapping,
        std::size_t sim_threads) {
  std::string error;
  const auto script = workload::FaultScript::parse(sc.script, &error);
  CBPS_ASSERT_MSG(script.has_value(), "bad scenario script");

  pubsub::SystemConfig cfg;
  cfg.nodes = 64;
  cfg.seed = 4242;
  cfg.chord.ring = RingParams{12};
  cfg.chord.stabilize_period = sim::sec(5);
  cfg.chord.force_reliable = script->needs_reliable_transport();
  cfg.mapping = mapping;
  cfg.pubsub.sub_transport = pubsub::PubSubConfig::Transport::kMulticast;
  cfg.pubsub.replication_factor = 2;
  cfg.sim_threads = sim_threads;
  pubsub::PubSubSystem system(cfg, pubsub::Schema::uniform(3, 99'999));
  system.network().start_maintenance_all();

  pubsub::DeliveryChecker checker;
  workload::WorkloadParams wp;
  wp.matching_probability = 0.8;
  workload::WorkloadGenerator gen(system.schema(), wp, 17);
  workload::DriverParams dp;
  dp.max_subscriptions = 60;
  dp.max_publications = 300;
  dp.sub_interval = sim::sec(5);
  workload::Driver driver(system, gen, dp, &checker);
  driver.start();

  workload::FaultScriptRunner runner(
      system, *script, cfg.seed, [&driver](Key id) {
        // Subscribers survive: the matrix measures rendezvous-state and
        // wire resilience, not subscriber death.
        for (const auto& sub : driver.active_subscriptions()) {
          if (sub->subscriber == id) return true;
        }
        return false;
      });
  runner.set_delivery_checker(&checker);
  runner.start();

  // Ring-recovery probe: after the partition heals, poll the ring audit
  // every 5 simulated seconds and record how long the re-merge took.
  auto recovery_s = std::make_shared<double>(-1.0);
  auto poll = std::make_shared<std::function<void()>>();
  *poll = [&system, &runner, recovery_s, poll] {
    if (*recovery_s >= 0) return;
    if (runner.last_heal_at() != sim::kSimTimeNever &&
        !system.network().partitioned() &&
        pubsub::audit_ring(system.network()).ok()) {
      *recovery_s =
          sim::to_seconds(system.sim().now() - runner.last_heal_at());
      return;
    }
    system.sim().schedule_after(sim::sec(5), *poll);
  };
  system.sim().schedule_after(sim::sec(5), *poll);

  system.run_for(sim::sec(2'000));
  system.run_for(sim::sec(200));  // drain retries + final repairs

  const auto report = checker.verify(/*grace=*/sim::sec(15));
  const auto post_heal = checker.verify(
      /*grace=*/sim::sec(15), sim::from_seconds(sc.post_heal_from_s));
  const auto audit = pubsub::audit_system(system);
  const metrics::Registry& reg = system.network().registry();

  Row row;
  row.expected = report.expected;
  row.missing = report.missing;
  row.duplicates = report.duplicates;
  row.delivery_rate =
      report.expected == 0
          ? 1.0
          : static_cast<double>(report.delivered) /
                static_cast<double>(report.expected);
  row.post_heal_rate =
      post_heal.expected == 0
          ? 1.0
          : static_cast<double>(post_heal.delivered) /
                static_cast<double>(post_heal.expected);
  row.retransmits = reg.counter_value("chord.retransmits");
  row.partition_cut = reg.counter_value("chord.net.partition_refused") +
                      reg.counter_value("chord.net.partition_dropped");
  row.crashes = runner.crashes();
  row.recovery_s = *recovery_s;
  row.ring_ok = audit.ring.ok();
  row.audit_violations = audit.misplaced_records + audit.under_replicated +
                         audit.unstored_subscriptions;
  const metrics::Histogram delay_hist = system.delay_histogram();
  row.delay_p50_s = delay_hist.p50();
  row.delay_p99_s = delay_hist.p99();
  metrics::Registry& reg_mut = system.network().registry();
  row.hops_p50 = reg_mut.histogram("chord.route_hops").p50();
  row.hops_p99 = reg_mut.histogram("chord.route_hops").p99();
  row.sim_events = system.sim().events_processed();
  return row;
}

const char* mapping_tag(pubsub::MappingKind m) {
  return m == pubsub::MappingKind::kAttributeSplit ? "m1" : "m3";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Sweep<Row> sweep("fault_matrix");
  if (!sweep.parse_args(argc, argv)) return 1;

  const pubsub::MappingKind mappings[] = {
      pubsub::MappingKind::kAttributeSplit,
      pubsub::MappingKind::kSelectiveAttribute};
  for (const Scenario& sc : kScenarios) {
    for (const auto mapping : mappings) {
      sweep.add(std::string(sc.label) + "/" + mapping_tag(mapping),
                [&sc, mapping, st = sweep.options().sim_threads] {
                  return run(sc, mapping, st);
                });
    }
  }

  std::puts("=== Fault matrix: scripted scenarios x AK mapping ===");
  std::puts("64 nodes, repl=2, 60 subscriptions + 300 publications;");
  std::puts("partition 40% for 300s / GE burst loss / gray x8 / crash");
  std::puts("bursts (correlated along the ring) / all combined\n");
  std::printf("%-11s %-3s %9s %8s %6s %10s %10s %8s %7s %9s %5s %5s\n",
              "scenario", "map", "expected", "missing", "dups", "delivered",
              "post-heal", "retrans", "cut", "recover", "ring", "viol");
  const std::size_t per_group = std::size(mappings);
  sweep.run([&](std::size_t i, const Row& r) {
    const Scenario& sc = kScenarios[i / per_group];
    char recover[16];
    if (r.recovery_s < 0) {
      std::snprintf(recover, sizeof recover, "-");
    } else {
      std::snprintf(recover, sizeof recover, "%.0fs", r.recovery_s);
    }
    std::printf(
        "%-11s %-3s %9llu %8llu %6llu %9.1f%% %9.1f%% %8llu %7llu %9s "
        "%5s %5llu\n",
        sc.label, mapping_tag(mappings[i % per_group]),
        static_cast<unsigned long long>(r.expected),
        static_cast<unsigned long long>(r.missing),
        static_cast<unsigned long long>(r.duplicates),
        100.0 * r.delivery_rate, 100.0 * r.post_heal_rate,
        static_cast<unsigned long long>(r.retransmits),
        static_cast<unsigned long long>(r.partition_cut), recover,
        r.ring_ok ? "ok" : "BAD",
        static_cast<unsigned long long>(r.audit_violations));
  });
  std::puts("\npost-heal = delivery ratio counting only publications after");
  std::puts("the scenario's faults cleared; recover = partition heal to a");
  std::puts("clean ring audit; viol = post-run placement/replication/");
  std::puts("rendezvous violations found by the invariant auditor.");
  return 0;
}
