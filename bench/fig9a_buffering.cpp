// Figure 9(a) — effect of buffering and collecting on notification
// traffic, as a function of the matching probability.
//
// Configurations, as in the paper: no buffering/no collecting;
// buffering + collecting with period 1x, 2x and 5x the average
// publication period (5 s); buffering without collecting.
//
// Expected shape: both optimizations significantly reduce notification
// hops, with most of the benefit already at small buffering periods.
#include <cstdio>
#include <string>
#include <vector>

#include "sweep.hpp"

using namespace cbps;
using namespace cbps::bench;

namespace {

struct Variant {
  const char* label;
  bool buffering;
  bool collecting;
  sim::SimTime period;
};

}  // namespace

int main(int argc, char** argv) {
  Sweep<> sweep("fig9a_buffering");
  if (!sweep.parse_args(argc, argv)) return 1;

  const std::vector<Variant> variants = {
      {"no buf, no collect", false, false, sim::sec(5)},
      {"buf+collect 1x", true, true, sim::sec(5)},
      {"buf+collect 2x", true, true, sim::sec(10)},
      {"buf+collect 5x", true, true, sim::sec(25)},
      {"buf only 1x", true, false, sim::sec(5)},
  };
  const std::vector<double> probs = {0.1, 0.25, 0.5, 0.75, 1.0};

  for (const Variant& v : variants) {
    for (const double p : probs) {
      ExperimentConfig cfg;
      cfg.mapping = pubsub::MappingKind::kSelectiveAttribute;
      cfg.matching_probability = p;
      cfg.buffering = v.buffering;
      cfg.collecting = v.collecting;
      cfg.buffer_period = v.period;
      cfg.subscriptions = 1000;
      cfg.publications = 2000;
      cfg.event_locality = 0.9;
      sweep.add(std::string(v.label) + "/p=" + std::to_string(p), cfg);
    }
  }

  std::puts("=== Figure 9(a): notification hops vs matching probability ===");
  std::puts("Mapping 3, n=500, 1000 subs + 2000 pubs; cell = (notify+collect)");
  std::puts("hops per publication. The event stream is temporally local");
  std::puts("(locality 0.9), the setting that motivates buffering in §4.3.2:");
  std::puts("consecutive events have close values and hit the same");
  std::puts("subscriptions/rendezvous repeatedly.\n");

  std::printf("%-22s", "configuration");
  for (double p : probs) std::printf(" %9.2f", p);
  std::printf(" %14s %12s\n", "avg delay @0.5", "KB @0.5");

  const std::size_t per_row = probs.size();
  double delay_at_half = 0;
  double kb_at_half = 0;
  sweep.run([&](std::size_t i, const ExperimentResult& r) {
    const std::size_t variant_idx = i / per_row;
    const std::size_t prob_idx = i % per_row;
    if (prob_idx == 0) {
      std::printf("%-22s", variants[variant_idx].label);
      delay_at_half = kb_at_half = 0;
    }
    std::printf(" %9.2f", r.notify_hops_per_publication);
    if (probs[prob_idx] == 0.5) {
      delay_at_half = r.avg_notification_delay_s;
      kb_at_half = static_cast<double>(r.notify_bytes) / 1024.0;
    }
    if (prob_idx + 1 == per_row) {
      std::printf(" %13.1fs %11.1f\n", delay_at_half, kb_at_half);
    }
  });

  std::puts("\n(delay = what the hop savings cost — the paper notes the");
  std::puts("optimizations 'introduce only a delay in the notification");
  std::puts("itself'. KB = total notification bytes: message COUNT drops");
  std::puts("sharply while bytes stay roughly flat — 'fewer exchange");
  std::puts("messages are sent but those messages are longer, which is");
  std::puts("typically more desirable', §4.3.2. Pure buffering also saves");
  std::puts("bytes; collecting trades a little byte overhead per item for");
  std::puts("the amortized neighbor exchange.)");
  return 0;
}
