// Figure 9(b) — effect of mapping discretization on the cost of issuing
// subscriptions (Mapping 3 with unicast; the paper notes the same
// results apply to the other mappings with multicast).
//
// Discretization interval sizes: 1 (none), 10% and 20% of the average
// constraint range size. With non-selective ranges uniform in
// [1, 3% * ATTR_MAX], the average range is 15,000 values, so the
// intervals are 1,500 and 3,000 values wide.
//
// Expected shape: coarser discretization -> markedly fewer hops per
// subscription.
#include <cstdio>
#include <vector>

#include "harness.hpp"

using namespace cbps;
using namespace cbps::bench;

int main() {
  std::puts("=== Figure 9(b): subscription hops vs discretization ===");
  std::puts("Mapping 3, unicast, n=500, 1000 subscriptions; rows sweep the");
  std::puts("average range size (non-selective range bound)\n");

  struct Disc {
    const char* label;
    double frac_of_mean_range;  // 0 = no discretization
  };
  const std::vector<Disc> discs = {
      {"none", 0.0}, {"10% of range", 0.10}, {"20% of range", 0.20}};
  const std::vector<double> range_fracs = {0.01, 0.03, 0.05};

  std::printf("%-22s", "avg range size");
  for (const Disc& d : discs) std::printf(" %14s", d.label);
  std::puts("");

  for (const double frac : range_fracs) {
    const double mean_range = frac * 1'000'000 / 2.0;
    std::printf("%-22.0f", mean_range);
    for (const Disc& d : discs) {
      ExperimentConfig cfg;
      cfg.mapping = pubsub::MappingKind::kSelectiveAttribute;
      cfg.nonselective_frac = frac;
      cfg.discretization =
          d.frac_of_mean_range == 0.0
              ? 1
              : static_cast<Value>(mean_range * d.frac_of_mean_range);
      cfg.subscriptions = 1000;
      cfg.publications = 0;
      const ExperimentResult r = run_experiment(cfg);
      std::printf(" %14.1f", r.hops_per_subscription);
    }
    std::puts("");
  }
  std::puts("\n(cell = one-hop messages per subscription)");
  return 0;
}
