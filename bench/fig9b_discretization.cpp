// Figure 9(b) — effect of mapping discretization on the cost of issuing
// subscriptions (Mapping 3 with unicast; the paper notes the same
// results apply to the other mappings with multicast).
//
// Discretization interval sizes: 1 (none), 10% and 20% of the average
// constraint range size. With non-selective ranges uniform in
// [1, 3% * ATTR_MAX], the average range is 15,000 values, so the
// intervals are 1,500 and 3,000 values wide.
//
// Expected shape: coarser discretization -> markedly fewer hops per
// subscription.
#include <cstdio>
#include <string>
#include <vector>

#include "sweep.hpp"

using namespace cbps;
using namespace cbps::bench;

int main(int argc, char** argv) {
  Sweep<> sweep("fig9b_discretization");
  if (!sweep.parse_args(argc, argv)) return 1;

  struct Disc {
    const char* label;
    double frac_of_mean_range;  // 0 = no discretization
  };
  const std::vector<Disc> discs = {
      {"none", 0.0}, {"10% of range", 0.10}, {"20% of range", 0.20}};
  const std::vector<double> range_fracs = {0.01, 0.03, 0.05};

  for (const double frac : range_fracs) {
    const double mean_range = frac * 1'000'000 / 2.0;
    for (const Disc& d : discs) {
      ExperimentConfig cfg;
      cfg.mapping = pubsub::MappingKind::kSelectiveAttribute;
      cfg.nonselective_frac = frac;
      cfg.discretization =
          d.frac_of_mean_range == 0.0
              ? 1
              : static_cast<Value>(mean_range * d.frac_of_mean_range);
      cfg.subscriptions = 1000;
      cfg.publications = 0;
      sweep.add("range=" + std::to_string(mean_range) + "/disc=" + d.label,
                cfg);
    }
  }

  std::puts("=== Figure 9(b): subscription hops vs discretization ===");
  std::puts("Mapping 3, unicast, n=500, 1000 subscriptions; rows sweep the");
  std::puts("average range size (non-selective range bound)\n");

  std::printf("%-22s", "avg range size");
  for (const Disc& d : discs) std::printf(" %14s", d.label);
  std::puts("");

  const std::size_t per_row = discs.size();
  sweep.run([&](std::size_t i, const ExperimentResult& r) {
    const std::size_t row = i / per_row;
    if (i % per_row == 0) {
      std::printf("%-22.0f", range_fracs[row] * 1'000'000 / 2.0);
    }
    std::printf(" %14.1f", r.hops_per_subscription);
    if ((i + 1) % per_row == 0) std::puts("");
  });
  std::puts("\n(cell = one-hop messages per subscription)");
  return 0;
}
