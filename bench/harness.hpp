// Shared experiment harness for the paper-reproduction benches.
//
// Each figure binary builds an ExperimentConfig (defaults = §5.1), calls
// run_experiment, and prints one table row per sweep point. All the
// figures' metrics come from the same instrumented run: per-class hop
// counts, per-request averages and stored-subscription statistics.
#pragma once

#include <cstdint>
#include <string>

#include "cbps/pubsub/system.hpp"
#include "cbps/workload/generator.hpp"

namespace cbps::bench {

struct ExperimentConfig {
  // Topology (§5.1 defaults).
  std::size_t nodes = 500;
  unsigned ring_bits = 13;  // key space 2^13
  std::uint64_t seed = 1;

  // Pub/sub layer.
  pubsub::MappingKind mapping = pubsub::MappingKind::kSelectiveAttribute;
  pubsub::PubSubConfig::Transport sub_transport =
      pubsub::PubSubConfig::Transport::kUnicast;
  pubsub::PubSubConfig::Transport pub_transport =
      pubsub::PubSubConfig::Transport::kUnicast;
  bool buffering = false;
  bool collecting = false;
  sim::SimTime buffer_period = sim::sec(5);
  Value discretization = 1;

  /// Notify-leg backend (rendezvous -> match group) plus the gossip
  /// backend's knobs (ignored by the other backends).
  pubsub::PubSubConfig::Dissemination dissemination =
      pubsub::PubSubConfig::Dissemination::kUnicast;
  std::size_t gossip_fanout = 3;
  std::uint32_t gossip_rounds = 0;  // 0 = auto (ceil(log2(group)) + 2)
  sim::SimTime anti_entropy_period = sim::sec(10);
  sim::SimTime gossip_window = sim::sec(60);

  // Workload (§5.1 defaults).
  std::size_t dimensions = 4;
  Value attr_max = 1'000'000;
  int selective_attributes = 0;   // how many of the d attrs are selective
  double nonselective_frac = 0.03;
  double selective_frac = 0.001;
  // Zipf exponent for selective-attribute centers. The paper does not
  // state its value; 0.7 reproduces the reported Figure 6/8 shape
  // (moderate popularity skew — with s=1 a single rank-1 hotspot
  // dominates every mapping's max).
  double zipf_exponent = 0.7;
  double matching_probability = 0.5;
  std::uint64_t subscriptions = 1000;
  std::uint64_t publications = 1000;
  sim::SimTime sub_interval = sim::sec(5);
  double pub_mean_interval_s = 5.0;
  sim::SimTime sub_ttl = sim::kSimTimeNever;  // expiration time
  double event_locality = 0.0;  // §4.3.2 temporal locality of the stream

  /// Track every operation in a DeliveryChecker and verify completeness /
  /// exactly-once at the end of the run (slower; O(subs x pubs)). When a
  /// fault_script is set, the check is windowed to publications issued
  /// after the script's last fault cleared: mid-fault misses to cut-off
  /// subscribers are the scenario under test, not a protocol bug.
  bool verify = false;

  /// Matching engine at the rendezvous nodes. The counting index is the
  /// default: it returns exactly the brute-force match set (the
  /// differential tests enforce this) at a per-event cost proportional
  /// to satisfied constraints instead of stored subscriptions.
  pubsub::MatchEngine match_engine = pubsub::MatchEngine::kCountingIndex;

  /// Subscription replication factor (§4.1).
  std::size_t replication_factor = 0;

  /// Fault injection: per-message drop probability. Non-zero arms the
  /// overlay's ack/retry reliability layer and the pub/sub duplicate
  /// filter; 0 leaves the wire bit-identical to a loss-free run.
  double loss_rate = 0.0;
  std::uint32_t max_retries = 5;
  sim::SimTime retry_base = sim::ms(250);

  /// Scripted fault scenario (workload::FaultScript text; empty = none).
  /// A non-empty script starts overlay maintenance, arms the reliable
  /// transport when the script needs it (partition/loss/crash_burst),
  /// and drives the directives against the live system.
  std::string fault_script;

  /// Record the generated workload to this file (empty = off).
  std::string trace_save_path;
  /// Replay a previously saved workload instead of generating one
  /// (empty = generate). Overrides subscriptions/publications counts.
  std::string trace_replay_path;

  // --- observability -------------------------------------------------------
  /// Write the run's causal trace here (empty = off). A ".jsonl" suffix
  /// selects the line-per-span format; anything else gets Chrome
  /// trace_event JSON (loadable in chrome://tracing / Perfetto).
  std::string trace_path;
  /// Fraction of publish/subscribe roots that start a trace. 0 with a
  /// trace_path set means "trace everything" (rate 1); 0 without one
  /// leaves tracing entirely off (no sink is allocated).
  double trace_sample_rate = 0.0;
  /// Dump the metrics registry (counters, histograms with percentiles)
  /// plus the per-key hot-key tables and the time-series samples to
  /// this JSON file (empty = off).
  std::string metrics_json_path;
  /// Capacity of the per-node rendezvous-key heavy-hitter sketches
  /// (metrics::TopK); count error is bounded by per-node load / capacity.
  std::size_t key_topk_capacity = metrics::TopK::kDefaultCapacity;
  /// Entries per sketch emitted into the metrics JSON hot-key tables.
  std::size_t hot_key_table_size = 16;
  /// Period of the time-series sampler. 0 = off, unless
  /// metrics_json_path is set (then it defaults to 1 simulated second).
  sim::SimTime sample_period = 0;

  /// Engine worker threads for each point's simulation. >1 selects the
  /// epoch-synchronous sharded engine; every metric stays bit-identical
  /// to 1 (see sim/parallel_simulator.hpp), only wall time changes.
  std::size_t sim_threads = 1;
};

struct ExperimentResult {
  // Per-request network cost (one-hop messages, §5 metric (a)).
  double hops_per_subscription = 0;
  double hops_per_publication = 0;
  double hops_per_notification = 0;  // (notify + collect) / delivered
  double notify_hops_per_publication = 0;

  // Raw class totals.
  std::uint64_t subscribe_hops = 0;
  std::uint64_t publish_hops = 0;
  std::uint64_t notify_hops = 0;
  std::uint64_t collect_hops = 0;
  std::uint64_t control_hops = 0;
  std::uint64_t gossip_hops = 0;   // epidemic + anti-entropy traffic
  std::uint64_t notify_bytes = 0;  // notify + collect classes
  std::uint64_t subscribe_bytes = 0;
  std::uint64_t gossip_bytes = 0;

  // Gossip-backend protocol counters (0 unless dissemination==gossip).
  std::uint64_t gossip_pushes = 0;
  std::uint64_t gossip_duplicates = 0;
  std::uint64_t gossip_digests = 0;
  std::uint64_t gossip_repairs = 0;       // records pulled back by repair
  std::uint64_t gossip_subs_learned = 0;  // owned subs learned via repair

  // Stored subscriptions (§5 metric (b)); peaks over the run.
  std::size_t max_subs_per_node = 0;
  double avg_subs_per_node = 0;

  // Sanity.
  std::uint64_t subscriptions_issued = 0;
  std::uint64_t publications_issued = 0;
  std::uint64_t notifications_delivered = 0;
  double avg_route_hops = 0;  // mean end-to-end hops of unicast routes
  double avg_notification_delay_s = 0;  // publish-to-notify latency
  double max_notification_delay_s = 0;

  // Distribution metrics (log-scale histograms; §5 reports averages only,
  // the percentiles expose the tail the averages hide).
  double delay_p50_s = 0;  // publish-to-notify latency percentiles
  double delay_p90_s = 0;
  double delay_p99_s = 0;
  double delay_max_s = 0;
  double hops_p50 = 0;     // end-to-end unicast route length
  double hops_p90 = 0;
  double hops_p99 = 0;
  double hops_max = 0;
  double fanout_p50 = 0;   // rendezvous keys per publish
  double fanout_p99 = 0;
  double retries_p99 = 0;  // retransmits per reliable send

  // Load observatory: ring-wide imbalance over per-node load units and
  // the hot-key concentration (top-1 share of per-key match calls).
  double load_max_over_mean = 0;
  double load_gini = 0;
  std::uint64_t hot_key_top1 = 0;      // hottest rendezvous key id
  double hot_key_top1_share = 0;       // its share of all match calls

  // Causal tracing (0 unless tracing was on).
  std::uint64_t traces_started = 0;
  std::uint64_t trace_spans = 0;

  // Populated when ExperimentConfig::verify is set.
  bool verified = false;
  std::uint64_t expected_deliveries = 0;
  std::uint64_t missing = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t spurious = 0;

  // Fault-injection / reliability accounting (all 0 when loss_rate == 0).
  std::uint64_t messages_lost = 0;       // dropped in flight by the wire
  std::uint64_t retransmits = 0;         // timer-driven resends
  std::uint64_t sends_failed = 0;        // retry budget exhausted
  std::uint64_t duplicates_suppressed = 0;  // end-to-end filter drops

  // Fault-scenario accounting (0 unless cfg.fault_script ran).
  std::uint64_t partition_cut = 0;   // messages refused/dropped at a cut
  std::uint64_t fault_crashes = 0;   // nodes crashed by the script

  // Simulator events processed over the run (the sweep runner divides by
  // wall time for the simulated-events/sec throughput trajectory).
  std::uint64_t sim_events = 0;

  // Engine health/shape: worker threads the engine actually ran with
  // (1 = serial, including zero-lookahead fallbacks), lazy-deleted heap
  // entries skipped at pop, and full heap rebuilds triggered.
  std::uint64_t sim_threads = 1;
  std::uint64_t sim_stale_entries_skipped = 0;
  std::uint64_t sim_heap_compactions = 0;
};

/// Run one simulated experiment to completion (all operations issued,
/// network drained).
ExperimentResult run_experiment(const ExperimentConfig& cfg);

/// Engine factory for benches that assemble networks by hand: the
/// sharded parallel engine when threads > 1 and lookahead > 0, the
/// serial engine otherwise. `lookahead` must be the minimum delay the
/// bench's latency model can emit.
std::unique_ptr<sim::SimulatorBase> make_engine(std::size_t threads,
                                                sim::SimTime lookahead);

/// "attribute-split" -> "M1 attr-split", etc. (row labels).
std::string mapping_label(pubsub::MappingKind kind);
std::string transport_label(pubsub::PubSubConfig::Transport t);
std::string dissemination_label(pubsub::PubSubConfig::Dissemination d);

}  // namespace cbps::bench
