// Rendezvous matching at production scale: 10^5..10^7 subscriptions on
// one node, across the three match engines (brute force, counting
// index, counting + covering/merging).
//
// The workload models the redundancy real deployments have (Shi et al.,
// PAPERS.md): a Zipf-popular pool of template filters, with most
// subscriptions being exact copies, narrowed variants (covering prey),
// or one-attribute shifts (merging prey) of a template; the rest are
// fresh random filters. Reported per point: per-event match latency
// percentiles, stored-vs-logical subscription counts, covering/merging
// ratios, and the index's heap footprint — the metrics JSON carries the
// p99/stored/memory columns the ROADMAP's million-subscription item
// asks for.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cbps/common/flags.hpp"
#include "cbps/common/rng.hpp"
#include "cbps/metrics/histogram.hpp"
#include "cbps/pubsub/store.hpp"
#include "cbps/workload/generator.hpp"
#include "sweep.hpp"

namespace {

using namespace cbps;

struct ScaleRow {
  double logical_subs = 0;       // subscriptions registered
  double stored_roots = 0;       // entries the index actually stores
  double covered_children = 0;   // held with zero index entries
  double umbrellas = 0;          // synthetic merged roots
  double covered_ratio = 0;      // covered_children / logical_subs
  double index_memory_bytes = 0; // per-node index heap footprint
  double build_s = 0;            // wall time to insert everything
  double inserts_per_sec = 0;
  double match_ns_mean = 0;      // per-event match cost distribution
  double match_ns_p50 = 0;
  double match_ns_p99 = 0;
  double match_ns_max = 0;
  double matches_per_event = 0;  // avg result-set size (sanity)
};

bench::JsonFields json_fields(const ScaleRow& r) {
  return {{"logical_subs", r.logical_subs},
          {"stored_roots", r.stored_roots},
          {"covered_children", r.covered_children},
          {"umbrellas", r.umbrellas},
          {"covered_ratio", r.covered_ratio},
          {"index_memory_bytes", r.index_memory_bytes},
          {"build_s", r.build_s},
          {"inserts_per_sec", r.inserts_per_sec},
          {"match_ns_mean", r.match_ns_mean},
          {"match_ns_p50", r.match_ns_p50},
          {"match_ns_p99", r.match_ns_p99},
          {"match_ns_max", r.match_ns_max},
          {"matches_per_event", r.matches_per_event}};
}

bench::JsonFields metrics_fields(const ScaleRow& r) {
  return {{"match_ns_p50", r.match_ns_p50},
          {"match_ns_p99", r.match_ns_p99},
          {"match_ns_max", r.match_ns_max},
          {"logical_subs", r.logical_subs},
          {"stored_roots", r.stored_roots},
          {"covered_ratio", r.covered_ratio},
          {"index_memory_bytes", r.index_memory_bytes}};
}

struct ScaleParams {
  std::size_t subscriptions = 0;
  pubsub::MatchEngine engine = pubsub::MatchEngine::kBruteForce;
  std::size_t events = 1000;
  double dup_frac = 0.7;     // share of subs derived from a template
  double template_frac = 0.01;  // template pool size / subscriptions
  std::uint64_t seed = 1;
};

// Derive a subscription from a template: exact copy (covered), a
// narrowed variant (covered), or a one-attribute shift (mergeable).
std::vector<pubsub::Constraint> derive(
    const std::vector<pubsub::Constraint>& tmpl, Rng& rng,
    const pubsub::Schema& schema) {
  std::vector<pubsub::Constraint> cs = tmpl;
  const double kind = rng.uniform01();
  if (kind < 0.5 || cs.empty()) return cs;  // exact duplicate
  auto& c = cs[static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(cs.size()) - 1))];
  const ClosedInterval dom = schema.domain(c.attribute);
  const auto w = static_cast<std::int64_t>(c.range.width());
  if (kind < 0.75) {
    // Narrow: stays inside the template interval.
    const Value lo = c.range.lo + rng.uniform_int(0, w / 4);
    const Value hi = c.range.hi - rng.uniform_int(0, w / 4);
    c.range = {std::min(lo, hi), std::max(lo, hi)};
  } else {
    // Shift by up to one width: overlapping or slightly disjoint, the
    // case covering misses and merging collects.
    const std::int64_t delta = rng.uniform_int(-w, w);
    Value lo = c.range.lo + delta;
    Value hi = c.range.hi + delta;
    lo = std::max(dom.lo, std::min(lo, dom.hi));
    hi = std::max(lo, std::min(hi, dom.hi));
    c.range = {lo, hi};
  }
  return cs;
}

ScaleRow run_point(const ScaleParams& p) {
  const pubsub::Schema schema = pubsub::Schema::uniform(4, 1'000'000);
  workload::WorkloadParams wp;
  workload::WorkloadGenerator gen(schema, wp, p.seed);
  Rng& rng = gen.rng();

  const std::size_t n_templates = std::max<std::size_t>(
      16, static_cast<std::size_t>(
              static_cast<double>(p.subscriptions) * p.template_frac));
  std::vector<std::vector<pubsub::Constraint>> templates;
  templates.reserve(n_templates);
  for (std::size_t i = 0; i < n_templates; ++i) {
    templates.push_back(gen.make_constraints());
  }
  const ZipfSampler zipf(n_templates, 0.8);

  pubsub::SubscriptionStore store;
  store.use_engine(p.engine, schema);

  std::vector<pubsub::SubscriptionPtr> subs;
  subs.reserve(p.subscriptions);
  const auto build_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < p.subscriptions; ++i) {
    auto s = std::make_shared<pubsub::Subscription>();
    s->id = static_cast<SubscriptionId>(i + 1);
    s->subscriber = static_cast<Key>(i % 4096);
    if (rng.bernoulli(p.dup_frac)) {
      const std::size_t t =
          static_cast<std::size_t>(zipf(rng)) % n_templates;
      s->constraints = derive(templates[t], rng, schema);
    } else {
      s->constraints = gen.make_constraints();
    }
    store.insert({s, sim::kSimTimeNever, {}, false});
    subs.push_back(std::move(s));
  }
  const double build_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - build_start)
                             .count();

  metrics::Histogram lat;
  std::uint64_t total_matches = 0;
  for (std::size_t i = 0; i < p.events; ++i) {
    pubsub::Event e;
    e.id = static_cast<EventId>(i + 1);
    e.values = gen.make_event_values(subs);
    const auto t0 = std::chrono::steady_clock::now();
    const auto matched = store.match(e, /*now=*/1);
    const auto t1 = std::chrono::steady_clock::now();
    lat.add(std::chrono::duration<double, std::nano>(t1 - t0).count());
    total_matches += matched.size();
  }

  ScaleRow r;
  r.logical_subs = static_cast<double>(p.subscriptions);
  r.build_s = build_s;
  r.inserts_per_sec =
      build_s > 0 ? static_cast<double>(p.subscriptions) / build_s : 0;
  r.match_ns_mean = lat.mean();
  r.match_ns_p50 = lat.p50();
  r.match_ns_p99 = lat.p99();
  r.match_ns_max = lat.max();
  r.matches_per_event =
      p.events > 0
          ? static_cast<double>(total_matches) / static_cast<double>(p.events)
          : 0;
  if (const auto* cov = store.covering_index()) {
    r.stored_roots = static_cast<double>(cov->stored_roots());
    r.covered_children = static_cast<double>(cov->covered_children());
    r.umbrellas = static_cast<double>(cov->umbrella_count());
    r.covered_ratio =
        r.logical_subs > 0 ? r.covered_children / r.logical_subs : 0;
  } else {
    r.stored_roots = static_cast<double>(store.size());
  }
  r.index_memory_bytes = static_cast<double>(store.index_memory_bytes());
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t jobs = 0;
  std::int64_t max_subs = 1'000'000;
  std::int64_t brute_max = 1'000'000;
  std::int64_t events = 1000;
  double dup_frac = 0.7;
  std::string json_path;
  std::string metrics_json_path;
  FlagParser parser(
      "match_scale — rendezvous matching at 10^5..10^7 subscriptions\n"
      "across the brute/counting/covering engines (one store per point).");
  parser.add("jobs", "worker threads (0 = all hardware threads)", &jobs);
  parser.add("max-subs",
             "largest sweep point (points are decades from 1e5 up; pass "
             "10000000 for the 10^7 point)",
             &max_subs);
  parser.add("brute-max",
             "skip brute-force points above this many subscriptions",
             &brute_max);
  parser.add("events", "match trials per point", &events);
  parser.add("dup-frac",
             "fraction of subscriptions derived from a popular template",
             &dup_frac);
  parser.add("json", "dump per-point timings+metrics to this file",
             &json_path);
  parser.add("metrics-json",
             "dump per-point latency/memory metrics to this file",
             &metrics_json_path);
  if (!parser.parse(argc, argv, std::cout, std::cerr)) return 1;

  bench::Sweep<ScaleRow> sweep("match_scale");
  bench::SweepOptions opts;
  opts.jobs = static_cast<std::size_t>(jobs < 0 ? 0 : jobs);
  opts.json_path = json_path;
  opts.metrics_json_path = metrics_json_path;
  sweep.set_options(opts);

  constexpr pubsub::MatchEngine kEngines[] = {
      pubsub::MatchEngine::kBruteForce,
      pubsub::MatchEngine::kCountingIndex,
      pubsub::MatchEngine::kCoveringIndex,
  };
  for (std::int64_t n = 100'000; n <= max_subs; n *= 10) {
    for (const auto engine : kEngines) {
      if (engine == pubsub::MatchEngine::kBruteForce && n > brute_max) {
        continue;
      }
      ScaleParams p;
      p.subscriptions = static_cast<std::size_t>(n);
      p.engine = engine;
      p.events = static_cast<std::size_t>(events);
      p.dup_frac = dup_frac;
      sweep.add(std::string(pubsub::to_string(engine)) + "/" +
                    std::to_string(n),
                [p] { return run_point(p); });
    }
  }

  std::puts("=== match_scale: per-node matching at scale ===\n");
  std::printf("%-20s %12s %12s %12s %10s %8s %12s\n", "engine/subs",
              "p50 us", "p99 us", "stored", "covered%", "umbr",
              "index MiB");
  sweep.run([&](std::size_t i, const ScaleRow& r) {
    std::printf("%-20s %12.1f %12.1f %12.0f %10.1f %8.0f %12.1f\n",
                sweep.label(i).c_str(), r.match_ns_p50 / 1e3,
                r.match_ns_p99 / 1e3, r.stored_roots,
                100.0 * r.covered_ratio, r.umbrellas,
                r.index_memory_bytes / (1024.0 * 1024.0));
  });
  std::puts("\n(stored = index-resident roots; covered% = subscriptions");
  std::puts("held as covered/merged children with zero index entries)");
  return 0;
}
