// Ablation — load balancing via virtual nodes (§4.2's pointer to
// "techniques at the level of KN-mapping": running several virtual
// overlay nodes per physical host is Chord's own mechanism, Stoica et
// al. §6). With one virtual node per host, the random id assignment
// leaves some hosts covering arcs O(log n) times larger than average;
// virtual nodes smooth the arcs and with them the subscription-storage
// imbalance.
//
// The second sweep axis is the load observatory's Zipf skew frontier:
// the same Zipf-skewed workload (one selective attribute, so event/
// subscription centers concentrate on popular values) under each EK/SK
// mapping (M1/M2/M3). Per point the metrics JSON carries the folded
// per-key top-K table, the ring Gini coefficient and the hot-key
// concentration, so mapping choice vs per-key skew is directly
// plottable from BENCH_metrics.json.
#include <cstdio>
#include <string>
#include <vector>

#include "cbps/metrics/histogram.hpp"
#include "cbps/workload/driver.hpp"
#include "sweep.hpp"

using namespace cbps;
using namespace cbps::bench;

namespace {

struct Row {
  std::size_t max_per_host = 0;
  double avg_per_host = 0;
  double load_p50 = 0;  // per-host stored-subscription distribution
  double load_p99 = 0;
  double hops_p50 = 0;  // subscription-routing hop distribution
  double hops_p99 = 0;
  // Load observatory: ring imbalance over per-node load units and the
  // hot-key concentration (top-1 share of per-key match calls; the
  // subs_stored share when the point issues no publications).
  double load_gini = 0;
  double load_max_over_mean = 0;
  double hot_key_top1_share = 0;
  std::uint64_t hot_key_top1 = 0;
  std::uint64_t sim_events = 0;
};

JsonFields json_fields(const Row& r) {
  return {{"max_per_host", static_cast<double>(r.max_per_host)},
          {"avg_per_host", r.avg_per_host},
          {"load_p50", r.load_p50},
          {"load_p99", r.load_p99},
          {"hops_p50", r.hops_p50},
          {"hops_p99", r.hops_p99},
          {"load_gini", r.load_gini},
          {"load_max_over_mean", r.load_max_over_mean},
          {"hot_key_top1_share", r.hot_key_top1_share}};
}

JsonFields metrics_fields(const Row& r) {
  return {{"load_p50", r.load_p50},
          {"load_p99", r.load_p99},
          {"hops_p50", r.hops_p50},
          {"hops_p99", r.hops_p99},
          {"load_gini", r.load_gini},
          {"load_max_over_mean", r.load_max_over_mean},
          {"hot_key_top1", static_cast<double>(r.hot_key_top1)},
          {"hot_key_top1_share", r.hot_key_top1_share}};
}

struct RunSpec {
  pubsub::MappingKind mapping = pubsub::MappingKind::kSelectiveAttribute;
  std::size_t hosts = 250;
  std::size_t virtuals = 1;
  std::uint64_t subscriptions = 5000;
  std::uint64_t publications = 0;
  bool zipf_selective = false;  // one selective attr, Zipf centers
  std::size_t sim_threads = 1;
};

Row run(const RunSpec& spec) {
  pubsub::SystemConfig sys_cfg;
  sys_cfg.nodes = spec.hosts * spec.virtuals;
  sys_cfg.virtual_nodes_per_host = spec.virtuals;
  sys_cfg.seed = 13;
  sys_cfg.mapping = spec.mapping;
  sys_cfg.pubsub.sub_transport =
      pubsub::PubSubConfig::Transport::kMulticast;
  sys_cfg.sim_threads = spec.sim_threads;
  pubsub::PubSubSystem system(sys_cfg,
                              pubsub::Schema::uniform(4, 1'000'000));

  workload::WorkloadParams wp;
  if (spec.zipf_selective) {
    wp.selective.assign(4, false);
    wp.selective[0] = true;
  }
  workload::WorkloadGenerator gen(system.schema(), wp, 77);
  workload::DriverParams dp;
  dp.max_subscriptions = spec.subscriptions;
  dp.max_publications = spec.publications;
  workload::Driver driver(system, gen, dp);
  driver.start();
  driver.run_to_completion();

  const auto st = system.host_storage_stats();
  Row row;
  row.max_per_host = st.max_peak;
  row.avg_per_host = st.avg_peak;
  std::vector<std::size_t> per_host(system.host_count(), 0);
  for (std::size_t i = 0; i < system.node_count(); ++i) {
    per_host[system.host_of(i)] +=
        system.pubsub_node(i).store().peak_owned_size();
  }
  metrics::Histogram load_hist;
  for (const std::size_t v : per_host) {
    load_hist.add(static_cast<double>(v));
  }
  row.load_p50 = load_hist.p50();
  row.load_p99 = load_hist.p99();
  metrics::Registry& reg = system.network().registry();
  row.hops_p50 = reg.histogram("chord.route_hops").p50();
  row.hops_p99 = reg.histogram("chord.route_hops").p99();
  const pubsub::PubSubSystem::LoadImbalance imbalance =
      system.load_imbalance();
  row.load_gini = imbalance.gini;
  row.load_max_over_mean = imbalance.max_over_mean;
  const pubsub::KeyLoad key_load = system.key_load();
  // Hot-key concentration: match calls when the point publishes,
  // subscription stores otherwise (a subscription-only point has no
  // match traffic to concentrate).
  const metrics::TopK& hot = key_load.match_calls.total() > 0
                                 ? key_load.match_calls
                                 : key_load.subs_stored;
  if (const auto top1 = hot.top(1); !top1.empty()) {
    row.hot_key_top1 = top1.front().key;
    row.hot_key_top1_share = static_cast<double>(top1.front().count) /
                             static_cast<double>(hot.total());
  }
  row.sim_events = system.sim().events_processed();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  Sweep<Row> sweep("load_balance_ablation");
  if (!sweep.parse_args(argc, argv)) return 1;

  struct Point {
    std::string label;
    RunSpec spec;
  };
  std::vector<Point> points;
  const std::size_t virtuals[] = {1, 2, 4, 8};
  for (const std::size_t v : virtuals) {
    RunSpec spec;
    spec.virtuals = v;
    points.push_back({"virtuals=" + std::to_string(v), spec});
  }
  // Zipf skew frontier: same skewed workload under each mapping.
  const pubsub::MappingKind mappings[] = {
      pubsub::MappingKind::kAttributeSplit,
      pubsub::MappingKind::kKeySpaceSplit,
      pubsub::MappingKind::kSelectiveAttribute};
  for (const pubsub::MappingKind m : mappings) {
    RunSpec spec;
    spec.mapping = m;
    spec.subscriptions = 2000;
    spec.publications = 1000;
    spec.zipf_selective = true;
    points.push_back({"zipf/" + mapping_label(m), spec});
  }
  for (Point& p : points) p.spec.sim_threads = sweep.options().sim_threads;
  for (const Point& p : points) {
    sweep.add(p.label, [spec = p.spec] { return run(spec); });
  }

  std::puts("=== Load-balance ablation: virtual nodes + mapping skew ===");
  std::puts("virtuals=N rows: 250 hosts, 5000 subscriptions, Mapping 3,");
  std::puts("no selective attrs; cell = subscriptions stored per host.");
  std::puts("zipf/M* rows: Zipf-skewed selective workload per mapping;");
  std::puts("gini/top1 = per-node load imbalance and hot-key share\n");
  std::printf("%22s %10s %10s %8s %6s %6s\n", "point", "max/host",
              "avg/host", "max/avg", "gini", "top1");
  sweep.run([&](std::size_t i, const Row& r) {
    std::printf("%22s %10zu %10.1f %8.2f %6.3f %6.3f\n",
                points[i].label.c_str(), r.max_per_host, r.avg_per_host,
                r.avg_per_host > 0
                    ? static_cast<double>(r.max_per_host) / r.avg_per_host
                    : 0.0,
                r.load_gini, r.hot_key_top1_share);
  });
  std::puts("\nmore virtual nodes -> the max-to-average imbalance shrinks");
  std::puts("toward 1. Under Zipf skew the mapping choice decides how much");
  std::puts("of the ring shares the hot keys' load: M1 pins each attribute");
  std::puts("to one arc, M2 spreads by value, M3 concentrates on the");
  std::puts("selective attribute's popular values (the top-K table in the");
  std::puts("metrics JSON names the hot keys).");
  return 0;
}
