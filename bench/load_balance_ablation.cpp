// Ablation — load balancing via virtual nodes (§4.2's pointer to
// "techniques at the level of KN-mapping": running several virtual
// overlay nodes per physical host is Chord's own mechanism, Stoica et
// al. §6). With one virtual node per host, the random id assignment
// leaves some hosts covering arcs O(log n) times larger than average;
// virtual nodes smooth the arcs and with them the subscription-storage
// imbalance.
#include <cstdio>
#include <string>
#include <vector>

#include "cbps/metrics/histogram.hpp"
#include "cbps/workload/driver.hpp"
#include "sweep.hpp"

using namespace cbps;
using namespace cbps::bench;

namespace {

struct Row {
  std::size_t max_per_host = 0;
  double avg_per_host = 0;
  double load_p50 = 0;  // per-host stored-subscription distribution
  double load_p99 = 0;
  double hops_p50 = 0;  // subscription-routing hop distribution
  double hops_p99 = 0;
  std::uint64_t sim_events = 0;
};

JsonFields json_fields(const Row& r) {
  return {{"max_per_host", static_cast<double>(r.max_per_host)},
          {"avg_per_host", r.avg_per_host},
          {"load_p50", r.load_p50},
          {"load_p99", r.load_p99},
          {"hops_p50", r.hops_p50},
          {"hops_p99", r.hops_p99}};
}

JsonFields metrics_fields(const Row& r) {
  return {{"load_p50", r.load_p50},
          {"load_p99", r.load_p99},
          {"hops_p50", r.hops_p50},
          {"hops_p99", r.hops_p99}};
}

Row run(std::size_t hosts, std::size_t virtuals,
        std::size_t sim_threads) {
  pubsub::SystemConfig sys_cfg;
  sys_cfg.nodes = hosts * virtuals;
  sys_cfg.virtual_nodes_per_host = virtuals;
  sys_cfg.seed = 13;
  sys_cfg.mapping = pubsub::MappingKind::kSelectiveAttribute;
  sys_cfg.pubsub.sub_transport =
      pubsub::PubSubConfig::Transport::kMulticast;
  sys_cfg.sim_threads = sim_threads;
  pubsub::PubSubSystem system(sys_cfg,
                              pubsub::Schema::uniform(4, 1'000'000));

  workload::WorkloadGenerator gen(system.schema(), {}, 77);
  workload::DriverParams dp;
  dp.max_subscriptions = 5000;
  dp.max_publications = 0;
  workload::Driver driver(system, gen, dp);
  driver.start();
  driver.run_to_completion();

  const auto st = system.host_storage_stats();
  Row row;
  row.max_per_host = st.max_peak;
  row.avg_per_host = st.avg_peak;
  std::vector<std::size_t> per_host(system.host_count(), 0);
  for (std::size_t i = 0; i < system.node_count(); ++i) {
    per_host[system.host_of(i)] +=
        system.pubsub_node(i).store().peak_owned_size();
  }
  metrics::Histogram load_hist;
  for (const std::size_t v : per_host) {
    load_hist.add(static_cast<double>(v));
  }
  row.load_p50 = load_hist.p50();
  row.load_p99 = load_hist.p99();
  metrics::Registry& reg = system.network().registry();
  row.hops_p50 = reg.histogram("chord.route_hops").p50();
  row.hops_p99 = reg.histogram("chord.route_hops").p99();
  row.sim_events = system.sim().events_processed();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  Sweep<Row> sweep("load_balance_ablation");
  if (!sweep.parse_args(argc, argv)) return 1;

  const std::size_t virtuals[] = {1, 2, 4, 8};
  for (const std::size_t v : virtuals) {
    sweep.add("virtuals=" + std::to_string(v),
              [v, st = sweep.options().sim_threads] {
                return run(250, v, st);
              });
  }

  std::puts("=== Load-balance ablation: virtual nodes per host ===");
  std::puts("250 hosts, 5000 subscriptions, Mapping 3, no selective attrs;");
  std::puts("cell = subscriptions stored per physical host\n");
  std::printf("%18s %12s %12s %10s\n", "virtual nodes/host", "max/host",
              "avg/host", "max/avg");
  sweep.run([&](std::size_t i, const Row& r) {
    std::printf("%18zu %12zu %12.1f %10.2f\n", virtuals[i], r.max_per_host,
                r.avg_per_host,
                static_cast<double>(r.max_per_host) / r.avg_per_host);
  });
  std::puts("\nmore virtual nodes -> the max-to-average imbalance shrinks");
  std::puts("toward 1. The trade-off: more (virtual) nodes split each");
  std::puts("subscription's key range into more pieces, raising the");
  std::puts("average (the same range-duplication effect as Figure 8).");
  return 0;
}
