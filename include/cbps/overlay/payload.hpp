// Application payloads routed through the overlay, and traffic accounting.
//
// The overlay routes opaque payloads: it never inspects pub/sub content,
// mirroring the strict layering of the paper's architecture (Figure 2).
// The only thing a payload exposes is its MessageClass, used to attribute
// one-hop messages to the traffic category the evaluation counts.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "cbps/common/exec_context.hpp"
#include "cbps/common/rng.hpp"
#include "cbps/metrics/trace.hpp"

namespace cbps::overlay {

/// Traffic category of a message, for per-class hop accounting
/// (the paper's figures count hops per subscription / publication /
/// notification separately).
enum class MessageClass : std::uint8_t {
  kSubscribe = 0,   // subscription propagation to rendezvous keys
  kUnsubscribe,     // explicit unsubscription propagation
  kPublish,         // event propagation to rendezvous keys
  kNotify,          // rendezvous (or agent) -> subscriber notifications
  kCollect,         // ring-neighbor aggregation toward an agent (§4.3.2)
  kStateTransfer,   // subscription-state handover on join/leave, replicas
  kControl,         // overlay maintenance: stabilization, lookups, acks
  kGossip,          // epidemic pushes, anti-entropy digests and repairs
  kCount,
};

constexpr std::size_t kMessageClassCount =
    static_cast<std::size_t>(MessageClass::kCount);

std::string_view to_string(MessageClass cls);

/// Base class for everything the overlay can carry.
class Payload {
 public:
  virtual ~Payload() = default;
  virtual MessageClass message_class() const = 0;

  /// Approximate serialized size of the payload in bytes (used for
  /// bandwidth accounting; §4.3.2 argues for "fewer exchange messages
  /// ... but those messages are longer", which hop counts alone cannot
  /// show). Default: one cache line.
  virtual std::size_t size_bytes() const { return 64; }

  /// Trace context ({0,0} = unsampled). Set by the originating layer
  /// before the payload pointer is shared as const; read-only from then
  /// on — payloads are shared across m-cast branches, so per-hop parent
  /// chaining rides on the copied wire messages instead.
  metrics::TraceRef trace;
};

using PayloadPtr = std::shared_ptr<const Payload>;

/// One-hop message and delivery counts, split by MessageClass.
///
/// A "hop" is one node-to-node message transmission (the unit all the
/// paper's network figures are expressed in). Self-deliveries are free.
///
/// Striped for the parallel engine: every recording method writes a
/// per-execution-stripe block (one writer per stripe between engine
/// barriers — no atomics needed), and readers fold the stripes in fixed
/// stripe order. Totals stay bit-identical across engines and shard
/// counts because everything recorded is integer-valued: counts are
/// exact sums, and RunningStat's moments are sums of (squares of) small
/// integers, exact in IEEE754 and thus order-independent.
class TrafficStats {
 public:
  void record_hop(MessageClass cls) { ++block().hops[index(cls)]; }
  void record_hop(MessageClass cls, std::size_t payload_bytes) {
    Block& b = block();
    ++b.hops[index(cls)];
    b.bytes[index(cls)] += payload_bytes + kHeaderBytes;
  }
  void record_delivery(MessageClass cls) {
    ++block().deliveries[index(cls)];
  }

  /// Approximate bytes transmitted, per class (payload + per-message
  /// header).
  std::uint64_t bytes(MessageClass cls) const;
  std::uint64_t total_bytes() const;

  /// Fixed per-message envelope overhead assumed by the accounting.
  static constexpr std::size_t kHeaderBytes = 48;

  std::uint64_t hops(MessageClass cls) const;
  std::uint64_t deliveries(MessageClass cls) const;

  std::uint64_t total_hops() const;

  /// Hops attributable to application requests (everything except
  /// overlay maintenance).
  std::uint64_t app_hops() const {
    return total_hops() - hops(MessageClass::kControl);
  }

  /// Record a completed unicast route and the number of hops it took
  /// (feeds the "average hops per message" summaries, e.g. the ~2.5-hop
  /// observation in §5.1).
  void record_route_complete(MessageClass cls, std::uint32_t hops) {
    block().route_hops[index(cls)].add(static_cast<double>(hops));
  }

  /// Stripe-merged summary (by value: the per-stripe parts are folded
  /// on each call).
  RunningStat route_hops(MessageClass cls) const;

  void reset();

 private:
  // Stripe 0 (serial / global context) + up to 63 shard cores.
  static constexpr std::size_t kStripes = 64;

  struct alignas(64) Block {
    std::array<std::uint64_t, kMessageClassCount> hops{};
    std::array<std::uint64_t, kMessageClassCount> deliveries{};
    std::array<std::uint64_t, kMessageClassCount> bytes{};
    std::array<RunningStat, kMessageClassCount> route_hops{};
  };

  static std::size_t index(MessageClass cls) {
    return static_cast<std::size_t>(cls);
  }
  Block& block() { return blocks_[common::exec_context().stripe]; }

  std::vector<Block> blocks_ = std::vector<Block>(kStripes);
};

}  // namespace cbps::overlay
