// Target-set partitioning for the m-cast primitive (paper §4.3.1,
// Figure 4), shared by every overlay implementation.
//
// Given the local node, its covered-range predicate and its routing
// candidates (finger/routing-table/leaf-set nodes) sorted by ring
// distance, the partition assigns:
//   - covered targets to local delivery,
//   - targets in (self, candidates[0]] to the first candidate (the ring
//     successor, which covers them),
//   - every other target to the farthest candidate *strictly* preceding
//     it, so a whole segment (c_i, c_{i+1}] travels in one message and
//     every node receives the multicast at most once.
#pragma once

#include <functional>
#include <vector>

#include "cbps/common/ring.hpp"
#include "cbps/common/types.hpp"

namespace cbps::overlay {

struct McastPartition {
  /// Targets this node covers (deliver locally), sorted by ring distance.
  std::vector<Key> local;
  /// Per-candidate delegated target batches; parallel to the candidate
  /// vector passed in (empty batches for unused candidates).
  std::vector<std::vector<Key>> delegated;
  /// Targets with no viable candidate (only when `candidates` is empty).
  std::vector<Key> undeliverable;
};

/// `candidates` must be sorted by increasing ring distance from `self`
/// and must not contain `self`. `covers` decides local delivery.
McastPartition partition_mcast_targets(
    RingParams ring, Key self, const std::function<bool(Key)>& covers,
    std::vector<Key> targets, const std::vector<Key>& candidates);

}  // namespace cbps::overlay
