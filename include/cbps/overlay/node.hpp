// Overlay-facing interfaces between the key-based routing substrate and
// the CB-pub/sub layer (paper Figure 2).
//
// The pub/sub layer is written only against these interfaces; the Chord
// library implements them. Any other structured overlay (Pastry, CAN,
// Tapestry) could be slotted in below without touching pub/sub code —
// the portability claim of §3.1 footnote 1.
#pragma once

#include <span>
#include <vector>

#include "cbps/common/exec_context.hpp"
#include "cbps/common/ring.hpp"
#include "cbps/common/types.hpp"
#include "cbps/overlay/payload.hpp"

namespace cbps::overlay {

/// Upcalls from the overlay into the application layer. One instance is
/// attached per overlay node.
class OverlayApp {
 public:
  virtual ~OverlayApp() = default;

  /// A unicast message routed to `key` arrived; this node covers `key`.
  virtual void on_deliver(Key key, const PayloadPtr& payload) = 0;

  /// An m-cast message arrived; `covered` is the subset of the multicast
  /// target keys this node covers (non-empty, delivered at most once per
  /// m-cast invocation, §4.3.1).
  virtual void on_deliver_mcast(std::span<const Key> covered,
                                const PayloadPtr& payload) = 0;

  /// The overlay is handing the key range (range_lo, range_hi] to another
  /// node (join) or taking it over (leave). The app must return its state
  /// for those keys as an opaque payload; if `remove`, it must also drop
  /// that state locally.
  virtual PayloadPtr export_state(Key range_lo, Key range_hi,
                                  bool remove) = 0;

  /// State produced by export_state() on another node arrives here.
  virtual void import_state(const PayloadPtr& state) = 0;
};

/// The primitives the overlay offers the application — the paper's
/// send(m, k) plus the proposed m-cast() extension and neighbor access
/// (each overlay "provides a proprietary way of sending messages to
/// neighbors", §4.1).
class OverlayNode {
 public:
  virtual ~OverlayNode() = default;

  virtual Key id() const = 0;
  virtual RingParams ring() const = 0;

  /// The scheduling domain this node's events run on (see
  /// common::ExecContext). The application layer wraps scheduling of its
  /// own per-node timers in an ActorScope of this domain so they land on
  /// the same engine shard as the overlay node. Default: global.
  virtual common::Domain domain() const { return common::kGlobalDomain; }

  /// Route `payload` to the node covering `key` (the standard unicast
  /// send(m, k)).
  virtual void send(Key key, PayloadPtr payload) = 0;

  /// Native one-to-many primitive (§4.3.1, Figure 4): deliver `payload`
  /// to every node covering at least one key in `keys`, at most once per
  /// node. Keys may be unsorted and contain duplicates.
  virtual void m_cast(std::vector<Key> keys, PayloadPtr payload) = 0;

  /// Conservative unicast-based one-to-many baseline (§4.3.1): route to
  /// the first key, then walk the remaining keys in ring order node by
  /// node. Same worst-case message count as m_cast but O(log n + N)
  /// dilation.
  virtual void chain_cast(std::vector<Key> keys, PayloadPtr payload) = 0;

  /// Direct one-hop sends to ring neighbors (used by the collecting
  /// optimization, §4.3.2).
  virtual void send_to_successor(PayloadPtr payload) = 0;
  virtual void send_to_predecessor(PayloadPtr payload) = 0;

  /// Ring neighbors' identifiers (this node covers (predecessor_id, id]).
  virtual Key successor_id() const = 0;
  virtual Key predecessor_id() const = 0;

  /// Attach the application layer. Must be called before any traffic.
  virtual void set_app(OverlayApp* app) = 0;
};

}  // namespace cbps::overlay
