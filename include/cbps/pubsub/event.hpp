// Events: points in the event space (paper §3.2).
#pragma once

#include <memory>
#include <ostream>
#include <vector>

#include "cbps/common/types.hpp"
#include "cbps/pubsub/schema.hpp"

namespace cbps::pubsub {

/// A published event: one value per schema attribute.
struct Event {
  EventId id = 0;
  std::vector<Value> values;

  Value value(std::size_t attr) const {
    CBPS_ASSERT(attr < values.size());
    return values[attr];
  }

  /// Whether the value vector is inside the schema's domains.
  bool valid_for(const Schema& schema) const {
    if (values.size() != schema.dimensions()) return false;
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (!schema.domain(i).contains(values[i])) return false;
    }
    return true;
  }
};

using EventPtr = std::shared_ptr<const Event>;

std::ostream& operator<<(std::ostream& os, const Event& e);

}  // namespace cbps::pubsub
