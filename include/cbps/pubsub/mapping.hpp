// The ak-mapping module (paper Figure 2): stateless mappings from the
// subscription space Sigma and the event space Omega into the overlay key
// space K.
//
//   SK : Sigma -> 2^K   keys a subscription is stored at
//   EK : Omega -> 2^K   rendezvous keys of an event
//
// Every mapping must satisfy the *mapping intersection rule*:
//   e in sigma  =>  EK(e) ∩ SK(sigma) != ∅            (paper §3.2)
//
// Three concrete mappings are provided (§4.2): Attribute-Split,
// Key Space-Split and Selective-Attribute, all parameterized by the
// scaling hash h_i(x) = x * 2^l / |Omega_i| and an optional
// discretization interval (§4.3.3).
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "cbps/common/interval.hpp"
#include "cbps/common/ring.hpp"
#include "cbps/common/types.hpp"
#include "cbps/pubsub/event.hpp"
#include "cbps/pubsub/schema.hpp"
#include "cbps/pubsub/subscription.hpp"

namespace cbps::pubsub {

/// Closed range of ring keys [lo, hi] (may wrap modulo 2^m).
struct KeyRange {
  Key lo = 0;
  Key hi = 0;

  bool contains(RingParams ring, Key k) const {
    return ring.in_closed_closed(lo, hi, k);
  }
  std::uint64_t size(RingParams ring) const {
    return ring.closed_interval_size(lo, hi);
  }
  friend bool operator==(const KeyRange&, const KeyRange&) = default;
};

/// The paper's scaling hash h_i(x) = x * 2^l / |Omega_i| (§4.2), shifted
/// to general domains and composed with the discretization of §4.3.3
/// (values are first rounded down to a multiple of the interval width, so
/// every value in an interval shares one rendezvous key).
class ScalingHasher {
 public:
  ScalingHasher(ClosedInterval domain, unsigned bits,
                Value interval_width = 1);

  unsigned bits() const { return bits_; }
  Value interval_width() const { return width_; }

  /// h(x) for x in the domain; an l-bit value.
  std::uint64_t hash(Value x) const;

  /// H(c): all distinct hash values over the (clamped) value range,
  /// ascending. Without discretization this is the contiguous integer
  /// range [h(lo), h(hi)]; with discretization, one value per overlapped
  /// interval.
  std::vector<std::uint64_t> hash_set(ClosedInterval r) const;

 private:
  ClosedInterval domain_;
  unsigned bits_;
  Value width_;  // discretization interval width (1 = none)
};

/// Options shared by all mappings.
struct MappingOptions {
  /// Discretization interval width in attribute values (1 disables,
  /// §4.3.3). Applied uniformly to every attribute.
  Value discretization = 1;

  /// Key-space rotation: every SK/EK key is shifted by this offset
  /// modulo 2^m. This is the "nearly static" mapping adjustment of §4.2:
  /// when the mapped region of the event space turns into a hotspot, an
  /// (infrequently disseminated) epoch offset relocates it to different
  /// nodes. Applied uniformly to SK and EK, it trivially preserves the
  /// mapping intersection rule.
  Key rotation = 0;
};

/// Abstract stateless mapping (the paper's "subscription-static"
/// mappings: SK/EK never depend on which subscriptions are stored).
///
/// Concrete mappings implement the *_impl virtuals; the public methods
/// apply the shared key-space rotation on top.
class AkMapping {
 public:
  AkMapping(Schema schema, RingParams ring, Key rotation = 0)
      : schema_(std::move(schema)), ring_(ring), rotation_(rotation) {}
  virtual ~AkMapping() = default;

  virtual std::string_view name() const = 0;

  /// SK(sigma).  Sorted, deduplicated.
  std::vector<Key> subscription_keys(const Subscription& sub) const {
    return rotate(subscription_keys_impl(sub));
  }

  /// EK(e).  Sorted, deduplicated.
  std::vector<Key> event_keys(const Event& e) const {
    return rotate(event_keys_impl(e));
  }

  /// Rendezvous-side filter: whether a rendezvous that received `e` via
  /// `delivered_key` should notify `sub`'s subscriber. Mappings whose EK
  /// returns multiple keys (Selective-Attribute) use this to guarantee
  /// exactly-once notification; single-key EK mappings always say yes.
  bool should_notify(const Subscription& sub, const Event& e,
                     Key delivered_key) const {
    return should_notify_impl(sub, e, ring_.sub(delivered_key, rotation_));
  }

  /// SK(sigma) compressed into maximal runs of consecutive keys; the
  /// collecting optimization elects the node covering each run's middle
  /// key as the run's agent (§4.3.2).
  std::vector<KeyRange> subscription_ranges(const Subscription& sub) const;

  const Schema& schema() const { return schema_; }
  RingParams ring() const { return ring_; }
  Key rotation() const { return rotation_; }

 protected:
  virtual std::vector<Key> subscription_keys_impl(
      const Subscription& sub) const = 0;
  virtual std::vector<Key> event_keys_impl(const Event& e) const = 0;
  virtual bool should_notify_impl(const Subscription& sub, const Event& e,
                                  Key unrotated_key) const {
    (void)sub;
    (void)e;
    (void)unrotated_key;
    return true;
  }

  std::vector<Key> rotate(std::vector<Key> keys) const;

  Schema schema_;
  RingParams ring_;
  Key rotation_;
};

enum class MappingKind {
  kAttributeSplit,    // Mapping 1
  kKeySpaceSplit,     // Mapping 2
  kSelectiveAttribute // Mapping 3
};

std::string_view to_string(MappingKind kind);

/// How Attribute-Split's EK picks "some i" (§4.2 leaves the choice free).
enum class EventAttrPolicy {
  kFixedFirst,  // always attribute 0
  kByEventId,   // event id modulo d — spreads rendezvous load
};

std::unique_ptr<AkMapping> make_mapping(MappingKind kind, Schema schema,
                                        RingParams ring,
                                        MappingOptions options = {});

/// Attribute-Split with an explicit event-attribute policy.
std::unique_ptr<AkMapping> make_attribute_split(
    Schema schema, RingParams ring, MappingOptions options,
    EventAttrPolicy policy);

}  // namespace cbps::pubsub
