// Counting-based matching index.
//
// The paper's rendezvous nodes "match e against the subscriptions they
// host" (§3.2); the straightforward scan is linear in the number of
// stored subscriptions. This index implements the classic counting
// algorithm of Fabret et al. (the paper's [6]): per attribute, constraint
// intervals are registered in coarse value buckets; matching an event
// stabs one bucket per attribute, counts satisfied constraints per
// subscription, and reports the subscriptions whose entire conjunction
// is satisfied. Expected cost is proportional to the number of
// *satisfied constraints*, not the number of subscriptions.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cbps/common/types.hpp"
#include "cbps/pubsub/match_index.hpp"
#include "cbps/pubsub/schema.hpp"
#include "cbps/pubsub/subscription.hpp"

namespace cbps::pubsub {

class CountingIndex final : public MatchIndex {
 public:
  /// `buckets_per_attribute` trades insertion cost (an interval is
  /// registered in every bucket it overlaps) against stab precision.
  explicit CountingIndex(const Schema& schema,
                         std::size_t buckets_per_attribute = 256);

  /// Register a subscription. Duplicate ids are rejected (no-op, false).
  /// A subscription with a constraint range disjoint from its attribute
  /// domain can never match; it is registered (so remove() and duplicate
  /// detection behave) but gets no bucket entries — exactly the
  /// brute-force engine's behaviour of never reporting it.
  bool insert(const SubscriptionPtr& sub) override;

  /// Remove by id. Returns false if unknown.
  bool remove(SubscriptionId id) override;

  /// Ids of all registered subscriptions matching `e`, unordered.
  std::vector<SubscriptionId> match(const Event& e) const;

  void match_into(const Event& e,
                  std::vector<SubscriptionId>& out) const override;

  std::size_t size() const override { return subs_.size(); }

  /// Heap footprint of the bucket/scratch structures in bytes.
  std::size_t memory_bytes() const override;

 private:
  // Entries refer to subscriptions by a dense slot index so match() can
  // count into flat arrays instead of a per-event hash map.
  struct Entry {
    std::uint32_t dense;
    ClosedInterval range;
  };
  struct DenseInfo {
    SubscriptionId id = 0;
    std::uint32_t constraint_count = 0;
  };
  struct SubInfo {
    SubscriptionPtr sub;
    std::uint32_t dense;
  };

  std::size_t bucket_of(std::size_t attr, Value v) const;

  Schema schema_;
  std::size_t buckets_per_attribute_;
  // buckets_[attr][bucket] -> entries whose interval overlaps the bucket.
  std::vector<std::vector<std::vector<Entry>>> buckets_;
  // Subscriptions with no constraints match every event.
  std::vector<SubscriptionId> match_all_;
  std::unordered_map<SubscriptionId, SubInfo> subs_;
  std::vector<DenseInfo> dense_;        // slot -> threshold + id
  std::vector<std::uint32_t> free_dense_;
  // Epoch-stamped scratch: bumping epoch_ invalidates every count, so a
  // match never clears (or allocates) the buffers it counts into.
  mutable std::vector<std::uint32_t> scratch_count_;
  mutable std::vector<std::uint64_t> scratch_epoch_;
  mutable std::vector<std::uint32_t> scratch_touched_;
  mutable std::uint64_t epoch_ = 0;
};

}  // namespace cbps::pubsub
