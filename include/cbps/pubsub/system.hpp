// End-to-end assembly: simulator + Chord ring + one CB-pub/sub node per
// overlay node. This is the public entry point examples and benches use.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "cbps/chord/network.hpp"
#include "cbps/metrics/timeseries.hpp"
#include "cbps/metrics/trace.hpp"
#include "cbps/pubsub/mapping.hpp"
#include "cbps/pubsub/node.hpp"
#include "cbps/sim/simulator.hpp"

namespace cbps::pubsub {

struct SystemConfig {
  std::size_t nodes = 500;             // paper default (§5.1)
  /// Virtual overlay nodes per physical host (Chord's own load-balancing
  /// mechanism; the paper's §4.2 points at "techniques at the level of
  /// KN-mapping" for fighting load imbalance). `nodes` then counts
  /// virtual nodes; hosts = nodes / virtual_nodes_per_host.
  std::size_t virtual_nodes_per_host = 1;
  std::uint64_t seed = 42;
  chord::ChordConfig chord;            // key space 2^13 by default
  PubSubConfig pubsub;
  MappingKind mapping = MappingKind::kSelectiveAttribute;
  MappingOptions mapping_options;
  sim::SimTime message_delay = sim::ms(50);  // paper default (§5.1)
  /// Fraction of publish/subscribe roots that start a causal trace
  /// (0 = tracing off; the sink is then never even allocated).
  double trace_sample_rate = 0.0;
  /// Engine worker threads. >1 selects the epoch-synchronous sharded
  /// engine (sim::ParallelSimulator) with the latency model's min_delay
  /// as conservative lookahead; results are bit-identical to 1. Falls
  /// back to the serial engine (with a logged warning) when the latency
  /// model can emit zero delay — there is then no usable lookahead.
  std::size_t sim_threads = 1;
};

/// A complete simulated deployment of the paper's architecture.
class PubSubSystem {
 public:
  /// All-notifications sink: subscriber's overlay key + the notification.
  using NotifySink = PubSubNode::NotifySink;

  PubSubSystem(SystemConfig cfg, Schema schema);
  ~PubSubSystem();

  PubSubSystem(const PubSubSystem&) = delete;
  PubSubSystem& operator=(const PubSubSystem&) = delete;

  // --- topology ----------------------------------------------------------
  std::size_t node_count() const { return node_ids_.size(); }
  /// Overlay key of the i-th node (nodes ordered by ring id).
  Key node_id(std::size_t i) const { return node_ids_[i]; }
  PubSubNode& pubsub_node(std::size_t i);
  chord::ChordNode& chord_node(std::size_t i);
  chord::ChordNetwork& network() { return *network_; }
  const AkMapping& mapping() const { return *mapping_; }
  const Schema& schema() const { return mapping_->schema(); }
  const SystemConfig& config() const { return cfg_; }

  // --- membership ------------------------------------------------------------
  /// Join a brand-new node through the overlay's join protocol, with the
  /// CB-pub/sub layer attached from the start (so state handover and
  /// deliveries reach the application). Requires Chord maintenance to be
  /// running for the ring to converge. Returns the node's dense index.
  std::size_t join_node(const std::string& name);

  /// Graceful departure / crash of node i. The node's pub/sub layer
  /// stays allocated (in-flight shared state) but it no longer counts in
  /// storage statistics. Crashing also halts the pub/sub layer: a dead
  /// rendezvous must not keep flushing buffered notifications.
  void leave_node(std::size_t i);
  void crash_node(std::size_t i);

  /// Dense index of the node with overlay key `id` (asserts on unknown).
  std::size_t index_of(Key id) const;

  /// Ask every alive node to rebuild the replica chains of its owned
  /// subscriptions along the current ring. Run after a partition heals;
  /// returns the number of records re-replicated.
  std::size_t re_replicate_all();

  /// Ask every alive node to re-issue its live subscriptions toward their
  /// current rendezvous (soft-state refresh). Recovers records whose
  /// entire owner+replica chain crashed; returns subscriptions re-issued.
  std::size_t refresh_all_subscriptions();

  // --- application operations ---------------------------------------------
  /// Issue a subscription from node `node_idx`; returns the registered
  /// subscription (its id is sub->id).
  SubscriptionPtr subscribe(std::size_t node_idx,
                            std::vector<Constraint> constraints,
                            sim::SimTime ttl = sim::kSimTimeNever);
  void unsubscribe(std::size_t node_idx, SubscriptionId id);

  /// Disjunction support (§3.2: "disjunctive constraints can be treated
  /// as separate subscriptions"): registers one subscription per clause.
  /// An event matching several clauses yields one notification per
  /// matching clause; deduplicate by event id at the application if
  /// at-most-once across the disjunction is required.
  std::vector<SubscriptionPtr> subscribe_disjunction(
      std::size_t node_idx, std::vector<std::vector<Constraint>> clauses,
      sim::SimTime ttl = sim::kSimTimeNever);
  /// Publish an event from node `node_idx`; returns its id.
  EventId publish(std::size_t node_idx, std::vector<Value> values);

  /// Invoked for every notification delivered anywhere in the system (in
  /// addition to any per-node sink behavior).
  void set_notify_sink(NotifySink sink);

  // --- execution ------------------------------------------------------------
  sim::SimulatorBase& sim() { return *sim_; }
  /// Advance simulated time by `d`, processing all due events.
  void run_for(sim::SimTime d) { sim_->run_until(sim_->now() + d); }
  /// Drain every pending event (terminates: no periodic idle timers are
  /// armed unless Chord maintenance is on).
  void quiesce() { sim_->run(); }

  // --- measurements -----------------------------------------------------------
  overlay::TrafficStats& traffic() { return network_->traffic(); }

  struct StorageStats {
    std::size_t max_owned = 0;     // max over nodes, current
    double avg_owned = 0.0;        // mean over nodes, current
    std::size_t max_peak = 0;      // max over nodes, lifetime peak
    double avg_peak = 0.0;
    std::size_t total_owned = 0;   // system-wide stored subscriptions
    std::size_t total_replicas = 0;
  };
  StorageStats storage_stats() const;

  /// Storage aggregated per physical host (sums each host's virtual
  /// nodes; identical to storage_stats() when virtual_nodes_per_host
  /// is 1). Host peaks are the sums of per-virtual peaks — exact for
  /// monotonically growing stores.
  StorageStats host_storage_stats() const;

  std::size_t host_count() const;
  /// The physical host owning node i.
  std::size_t host_of(std::size_t i) const { return host_of_[i]; }

  std::uint64_t subscriptions_issued() const { return subs_issued_; }
  std::uint64_t publications_issued() const { return pubs_issued_; }
  std::uint64_t notifications_delivered() const;
  /// Notifications dropped by the end-to-end duplicate filter (lossy runs).
  std::uint64_t duplicates_suppressed() const;
  /// Gossip-backend counters summed over all nodes (all zero unless
  /// pubsub.dissemination == kGossip).
  PubSubNode::GossipStats gossip_stats() const;

  /// Publish-to-notify latency across all subscribers (seconds).
  RunningStat notification_delay() const;

  /// Publish-to-notify latency distribution (seconds, percentiles),
  /// merged across all subscribers.
  metrics::Histogram delay_histogram() const;
  /// Rendezvous-key fan-out per publish, merged across all publishers.
  metrics::Histogram fanout_histogram() const;

  /// Per-rendezvous-key load sketches folded over every node in ring
  /// order (the canonical domain order; TopK::merge is permutation-
  /// invariant, so the result is bit-identical at any --sim-threads).
  /// Crashed/departed nodes are included: load they served before dying
  /// is still load the ring carried.
  KeyLoad key_load() const;

  /// Ring-wide load-imbalance coefficients over the alive nodes'
  /// per-node KeyLoad totals.
  struct LoadImbalance {
    std::uint64_t max_load = 0;   // hottest node's load units
    double mean_load = 0.0;       // mean over alive nodes
    double max_over_mean = 0.0;   // 1.0 = perfectly balanced
    double gini = 0.0;            // 0 = equal, -> 1 = one node does all
  };
  LoadImbalance load_imbalance() const;

  // --- observability ---------------------------------------------------------
  /// Per-run causal-trace sink; null unless cfg.trace_sample_rate > 0.
  /// Wired into the overlay network and every pub/sub node (joins too).
  metrics::TraceSink* trace_sink() { return trace_sink_.get(); }

  /// Arm the periodic time-series sampler (one row every `period`,
  /// plus a baseline row now). Call stop_sampler() before quiesce():
  /// the periodic timer otherwise keeps the event queue alive forever.
  void start_sampler(sim::SimTime period);
  void stop_sampler();
  bool sampler_running() const { return sampler_timer_ != 0; }
  const metrics::TimeSeries& timeseries() const { return series_; }

 private:
  void sample_once();

  SystemConfig cfg_;
  std::unique_ptr<sim::SimulatorBase> sim_;  // never null
  std::unique_ptr<AkMapping> mapping_;
  std::unique_ptr<chord::ChordNetwork> network_;
  std::vector<Key> node_ids_;  // ring order
  std::vector<std::unique_ptr<PubSubNode>> nodes_;  // parallel to node_ids_
  std::vector<std::size_t> host_of_;                // parallel to node_ids_
  std::size_t hosts_ = 0;

  std::unique_ptr<metrics::TraceSink> trace_sink_;
  metrics::TimeSeries series_{{"in_flight_events", "pending_retries",
                               "owned_subs_max", "owned_subs_avg",
                               "alive_nodes", "notifications_delivered",
                               "ge_bad_state", "load_max_over_mean",
                               "load_gini"}};
  sim::Simulator::TimerId sampler_timer_ = 0;

  NotifySink sink_;
  SubscriptionId next_sub_id_ = 1;
  EventId next_event_id_ = 1;
  std::uint64_t subs_issued_ = 0;
  std::uint64_t pubs_issued_ = 0;
};

}  // namespace cbps::pubsub
