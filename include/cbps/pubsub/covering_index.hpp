// Subscription covering/merging on top of the counting index.
//
// At production scale most subscriptions are near-duplicates: many
// subscribers register the same popular filter, or the same filter
// shifted slightly in one attribute (Shi et al., "Towards Scalable
// Subscription Aggregation and Real Time Event Matching in a Large-Scale
// Content-Based Network"). This engine exploits that redundancy while
// staying *exact*:
//
//   - Covering: a new subscription whose subspace is contained in a
//     stored root's subspace becomes a covered *child* of that root — no
//     index entries, no per-event candidate cost. Children are verified
//     with Subscription::matches only when their coverer matches, which
//     cannot miss (child space is a subset of the coverer's).
//   - Merging: subscriptions identical on all but one attribute are
//     grouped under a synthetic *umbrella* root whose interval on the
//     free attribute is the group hull. The umbrella is what the
//     counting index stores; its members are children verified exactly
//     at match time. A bounded false-positive budget limits the fraction
//     of the hull not covered by any member, so umbrella hits that
//     verify to nothing stay rare. Umbrella ids are internal and never
//     reported.
//   - Expansion: removing (or expiring) a root re-promotes its children
//     through the normal insert path; an umbrella left with one member
//     dissolves back into a plain root.
//
// Exactness invariant: match_into returns precisely the registered
// subscriptions matching the event — identical to the brute-force scan —
// because covering/merging only ever *over*-approximates candidate sets
// and every child is re-verified against the event.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cbps/common/types.hpp"
#include "cbps/pubsub/counting_index.hpp"
#include "cbps/pubsub/match_index.hpp"
#include "cbps/pubsub/schema.hpp"
#include "cbps/pubsub/subscription.hpp"

namespace cbps::pubsub {

struct CoveringOptions {
  /// Counting-index resolution for the stored roots.
  std::size_t buckets_per_attribute = 256;
  /// Cap on covered children per root: bounds the exact-verification
  /// work a single root hit can trigger. A full root stops accepting
  /// children; new subscriptions fall through to merging or a new root.
  std::size_t max_children_per_root = 256;
  /// Merge false-positive budget: the fraction of an umbrella's hull on
  /// the free attribute that no member covers must stay <= this. 0
  /// merges only touching/overlapping intervals; 1 merges anything.
  double merge_fp_budget = 0.25;
  /// Coverer search inspects at most this many candidate roots.
  std::size_t max_cover_candidates = 32;
  /// Merge lookup inspects at most this many same-signature roots.
  std::size_t max_merge_candidates = 8;
};

class CoveringIndex final : public MatchIndex {
 public:
  explicit CoveringIndex(const Schema& schema, CoveringOptions opts = {});

  bool insert(const SubscriptionPtr& sub) override;
  bool remove(SubscriptionId id) override;
  void match_into(const Event& e,
                  std::vector<SubscriptionId>& out) const override;

  /// Logical subscription count (roots + covered children + inert).
  std::size_t size() const override { return logical_size_; }
  std::size_t memory_bytes() const override;

  // --- aggregation statistics -------------------------------------------
  /// Entries the counting index actually stores (real roots + umbrellas).
  std::size_t stored_roots() const { return index_.size(); }
  /// Subscriptions held as covered/merged children (no index entries).
  std::size_t covered_children() const { return parent_of_.size(); }
  /// Synthetic umbrella roots currently live.
  std::size_t umbrella_count() const { return umbrella_count_; }
  /// Subscriptions that can never match (constraint disjoint from the
  /// schema domain) held inert.
  std::size_t inert_count() const { return inert_.size(); }

  const CoveringOptions& options() const { return opts_; }

 private:
  struct RootInfo {
    SubscriptionPtr sub;  // the indexed subscription (real or umbrella)
    std::vector<SubscriptionPtr> children;
    bool umbrella = false;
    std::size_t free_attr = 0;  // umbrella only: the merged attribute
    // Umbrella only: disjoint sorted union of member intervals on
    // free_attr, for the false-positive budget accounting.
    std::vector<ClosedInterval> covered;
    // Signature hashes this root registered in merge_map_ (one per
    // constrained attribute for real roots, one for umbrellas).
    std::vector<std::uint64_t> sigs;
  };

  bool insert_internal(const SubscriptionPtr& sub);
  bool try_cover(const SubscriptionPtr& sub);
  bool try_merge(const SubscriptionPtr& sub);
  void add_root(const SubscriptionPtr& sub);
  void remove_root_entry(SubscriptionId id, RootInfo& info);
  void promote_children(std::vector<SubscriptionPtr> children);
  void register_sigs(SubscriptionId id, RootInfo& info);
  void unregister_sigs(SubscriptionId id, const RootInfo& info);
  std::uint64_t signature(const Subscription& sub,
                          std::size_t free_attr) const;
  /// Merge `iv` into the sorted-disjoint union `covered`; returns the
  /// union's total width.
  static std::uint64_t merge_covered(std::vector<ClosedInterval>& covered,
                                     ClosedInterval iv);
  static std::uint64_t covered_width(
      const std::vector<ClosedInterval>& covered);

  Schema schema_;
  CoveringOptions opts_;
  CountingIndex index_;  // roots only (real + umbrella)
  std::unordered_map<SubscriptionId, RootInfo> roots_;
  std::unordered_map<SubscriptionId, SubscriptionId> parent_of_;
  std::unordered_map<SubscriptionId, SubscriptionPtr> inert_;
  // signature -> roots eligible to merge under it.
  std::unordered_map<std::uint64_t, std::vector<SubscriptionId>> merge_map_;
  SubscriptionId next_umbrella_id_;
  std::size_t umbrella_count_ = 0;
  std::size_t logical_size_ = 0;
  mutable std::vector<SubscriptionId> scratch_ids_;
};

}  // namespace cbps::pubsub
