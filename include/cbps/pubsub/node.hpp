// The CB-pub/sub layer of one node (paper Figure 2, §4.1).
//
// Responsibilities, quoting the paper: computing the SK/EK mappings,
// forwarding subscriptions and events to their rendezvous keys, storing
// subscriptions, matching events, forwarding notifications, and managing
// the application state across node joins and departures. The buffering
// and collecting optimizations of §4.3.2 live here as well.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cbps/common/rng.hpp"
#include "cbps/metrics/histogram.hpp"
#include "cbps/metrics/topk.hpp"
#include "cbps/metrics/trace.hpp"
#include "cbps/overlay/node.hpp"
#include "cbps/pubsub/gossip.hpp"
#include "cbps/pubsub/mapping.hpp"
#include "cbps/pubsub/messages.hpp"
#include "cbps/pubsub/store.hpp"
#include "cbps/sim/simulator.hpp"

namespace cbps::pubsub {

struct PubSubConfig {
  /// How one-to-many propagation is realized on the overlay (§4.3.1).
  enum class Transport {
    kUnicast,    // aggressive: one send() per key, in parallel
    kMulticast,  // the paper's native m-cast extension
    kChain,      // conservative: ring-order walk (baseline)
  };

  Transport sub_transport = Transport::kUnicast;
  Transport pub_transport = Transport::kUnicast;

  /// How matched notifications travel from the rendezvous to the match
  /// group (the notify leg; `Transport` above governs the sub/pub legs).
  enum class Dissemination {
    kUnicast,  // the paper's default: one NotifyMsg per subscriber
    kMcast,    // one MultiNotifyMsg through the overlay's m-cast tree
    kGossip,   // epidemic push + anti-entropy repair (see gossip.hpp)
  };

  Dissemination dissemination = Dissemination::kUnicast;

  /// Gossip backend knobs (ignored unless dissemination == kGossip).
  /// Fan-out: random group members each infected node pushes to.
  std::size_t gossip_fanout = 3;
  /// Push rounds before a record dies (infect-and-die counter);
  /// 0 = auto: ceil(log2(group size)) + 2.
  std::uint32_t gossip_rounds = 0;
  /// Anti-entropy digest-exchange period (0 disables repair).
  sim::SimTime anti_entropy_period = sim::sec(10);
  /// Recent-record retention for anti-entropy repair; older records are
  /// pruned from the seen cache and can no longer be pulled.
  sim::SimTime gossip_window = sim::sec(60);
  /// Base seed of the per-node gossip RNG streams (each node derives an
  /// independent stream from this and its own overlay id, so runs stay
  /// bit-identical across engine shard counts). PubSubSystem sets it
  /// from the system seed.
  std::uint64_t gossip_seed = 0x9e3779b97f4a7c15ull;

  /// Buffer matched notifications and send them in periodic per-
  /// subscriber batches (§4.3.2).
  bool buffering = false;
  sim::SimTime buffer_period = sim::sec(5);

  /// Aggregate matches along each stored key range toward the range's
  /// agent node before notifying (§4.3.2). Implies periodic (buffered)
  /// agent flushes with the same period.
  bool collecting = false;

  /// Push each stored subscription to this many ring successors so a
  /// crashed rendezvous' state survives (§4.1). 0 disables.
  std::size_t replication_factor = 0;

  /// Default subscription lifetime (kSimTimeNever = no expiration).
  sim::SimTime default_ttl = sim::kSimTimeNever;

  /// Matching engine at the rendezvous (brute-force scan or the
  /// counting index of Fabret et al., the paper's [6]).
  MatchEngine match_engine = MatchEngine::kBruteForce;

  /// Drop notifications for an (event, subscription) pair already seen
  /// here. The overlay's ack/retry layer can deliver an application
  /// message twice when a retransmit is re-routed around a crashed hop,
  /// so lossy runs need this end-to-end safety net (PubSubSystem turns
  /// it on automatically whenever the network injects loss).
  bool duplicate_suppression = false;

  /// Capacity of the per-node per-rendezvous-key heavy-hitter sketches
  /// (the load observatory). With total per-node load N the sketch's
  /// count error is bounded by N / capacity; a capacity at least the
  /// number of distinct keys a node serves makes the counts exact.
  std::size_t key_topk_capacity = metrics::TopK::kDefaultCapacity;
};

/// Per-rendezvous-key load attribution: one sketch set per node, updated
/// only from that node's own events (which execute in identical
/// canonical order at any engine shard count), so each node's sketches
/// are bit-identical across --sim-threads. PubSubSystem::key_load()
/// folds them in ring (canonical domain) order; TopK::merge is
/// permutation-invariant, so the folded table is deterministic too.
struct KeyLoad {
  metrics::TopK subs_stored;    // subscription store ops per covered key
  metrics::TopK match_calls;    // match invocations per covered key
  metrics::TopK match_units;    // matched records scanned per covered key
  metrics::TopK notify_fanout;  // notifications attributed per key

  explicit KeyLoad(std::size_t capacity = metrics::TopK::kDefaultCapacity)
      : subs_stored(capacity), match_calls(capacity),
        match_units(capacity), notify_fanout(capacity) {}

  void merge(const KeyLoad& o) {
    subs_stored.merge(o.subs_stored);
    match_calls.merge(o.match_calls);
    match_units.merge(o.match_units);
    notify_fanout.merge(o.notify_fanout);
  }

  /// Total load units this node performed as a rendezvous (the scalar
  /// the ring-imbalance coefficients are computed over).
  std::uint64_t total() const {
    return subs_stored.total() + match_calls.total() +
           match_units.total() + notify_fanout.total();
  }
};

class PubSubNode final : public overlay::OverlayApp {
 public:
  /// Receives every notification delivered to this node's application.
  using NotifySink =
      std::function<void(Key subscriber, const Notification&)>;

  PubSubNode(overlay::OverlayNode& overlay, sim::SimulatorBase& sim,
             const AkMapping& mapping, PubSubConfig cfg);
  ~PubSubNode() override;

  PubSubNode(const PubSubNode&) = delete;
  PubSubNode& operator=(const PubSubNode&) = delete;

  void set_notify_sink(NotifySink sink) { sink_ = std::move(sink); }

  /// Install a per-run trace sink (nullptr = tracing off, the default).
  /// Samples new traces at publish/subscribe and emits pub/sub-layer
  /// spans (publish, map, buffer, collect, notify, deliver, drop).
  void set_trace_sink(metrics::TraceSink* sink) { trace_ = sink; }

  // --- application API: the paper's sub() / pub() ----------------------
  /// Register `sub` (id and subscriber key must be filled in) for `ttl`.
  void subscribe(SubscriptionPtr sub, sim::SimTime ttl);
  void subscribe(SubscriptionPtr sub) {
    subscribe(std::move(sub), cfg_.default_ttl);
  }

  /// Withdraw a previously issued subscription.
  void unsubscribe(SubscriptionId id);

  /// Publish an event (id must be filled in).
  void publish(EventPtr event);

  /// Crash hygiene: stop behaving like a live process. Pending batches
  /// are dropped and the armed one-shot timers become no-ops — a
  /// crashed rendezvous must not keep flushing notifications.
  void halt();
  bool halted() const { return halted_; }

  /// Re-push every owned (non-replica) subscription down the current
  /// successor chain. Run after a partition heals (or any event that
  /// reshuffles ring ownership): the replica chains recorded before the
  /// fault may point at nodes that are no longer this node's
  /// successors. Returns the number of records re-replicated; no-op
  /// when replication is off.
  std::size_t re_replicate();

  // --- overlay::OverlayApp ----------------------------------------------
  void on_deliver(Key key, const overlay::PayloadPtr& payload) override;
  void on_deliver_mcast(std::span<const Key> covered,
                        const overlay::PayloadPtr& payload) override;
  overlay::PayloadPtr export_state(Key range_lo, Key range_hi,
                                   bool remove) override;
  void import_state(const overlay::PayloadPtr& state) override;

  // --- introspection ------------------------------------------------------
  const SubscriptionStore& store() const { return store_; }
  overlay::OverlayNode& overlay() { return overlay_; }
  std::uint64_t notifications_received() const {
    return notifications_received_;
  }
  std::uint64_t duplicates_suppressed() const {
    return duplicates_suppressed_;
  }
  /// Notifications addressed to a different node that key-routing landed
  /// here (the addressee crashed, or the ring moved mid-route). Dropped,
  /// never surfaced: they would be ghost deliveries under a dead
  /// subscriber's identity.
  std::uint64_t misdirected_notifies() const {
    return misdirected_notifies_;
  }
  /// Publish-to-notify latency (seconds) of notifications received here.
  const RunningStat& notification_delay() const {
    return notification_delay_;
  }
  /// Publish-to-notify latency distribution (seconds): same samples as
  /// notification_delay(), but with percentiles.
  const metrics::Histogram& delay_histogram() const { return delay_hist_; }
  /// Rendezvous-key fan-out per publish issued from this node.
  const metrics::Histogram& fanout_histogram() const { return fanout_hist_; }
  std::uint64_t notify_batches_sent() const { return notify_batches_sent_; }
  std::uint64_t notifications_sent() const { return notifications_sent_; }
  /// Per-rendezvous-key load sketches of this node (see KeyLoad).
  const KeyLoad& key_load() const { return key_load_; }

  /// Gossip-backend accounting (all zero unless dissemination==kGossip).
  struct GossipStats {
    std::uint64_t pushes_sent = 0;      // epidemic GossipMsg transmissions
    std::uint64_t duplicates = 0;       // records received more than once
    std::uint64_t misdirected = 0;      // pushes/digests for a dead member
    std::uint64_t digests_sent = 0;     // anti-entropy digests (both legs)
    std::uint64_t repair_records = 0;   // records resurfaced by pull repair
    std::uint64_t subs_learned = 0;     // owned subs learned via repair

    GossipStats& operator+=(const GossipStats& o) {
      pushes_sent += o.pushes_sent;
      duplicates += o.duplicates;
      misdirected += o.misdirected;
      digests_sent += o.digests_sent;
      repair_records += o.repair_records;
      subs_learned += o.subs_learned;
      return *this;
    }
  };
  const GossipStats& gossip_stats() const { return gossip_stats_; }
  std::size_t gossip_seen_size() const { return gossip_seen_.size(); }
  /// Imported records that were not ours to keep and were re-issued as
  /// fresh subscriptions toward their current rendezvous (post-heal
  /// ownership repair).
  std::uint64_t reissued_imports() const { return reissued_imports_; }
  /// A subscription this node issued: the pointer plus the expiry it was
  /// registered with (needed to re-issue it verbatim on refresh).
  struct OwnSub {
    SubscriptionPtr sub;
    sim::SimTime expires_at = sim::kSimTimeNever;
  };

  /// Subscriptions this node issued and has not withdrawn.
  const std::unordered_map<SubscriptionId, OwnSub>& own_subscriptions()
      const {
    return own_subs_;
  }

  /// Soft-state refresh: re-issue every live subscription this node owns
  /// toward its current rendezvous nodes. Recovers records whose entire
  /// owner+replica chain crashed (the one loss replication cannot mask).
  /// Idempotent where records survived: a refresh of an existing record
  /// updates it in place without re-building replica chains. Returns the
  /// number of subscriptions re-issued.
  std::size_t refresh_subscriptions();

 private:
  // Rendezvous-side handlers.
  void handle_subscribe(const SubscribeMsg& msg,
                        std::span<const Key> covered);
  void handle_unsubscribe(const UnsubscribeMsg& msg);
  void handle_publish(const PublishMsg& msg, std::span<const Key> covered);
  void handle_notify(const NotifyMsg& msg);
  void handle_collect(const CollectMsg& msg);
  void handle_replica(const ReplicaMsg& msg);
  void handle_replica_remove(const ReplicaRemoveMsg& msg);
  void handle_multi_notify(const MultiNotifyMsg& msg,
                           std::span<const Key> covered);
  void handle_gossip(const GossipMsg& msg);
  void handle_gossip_digest(const GossipDigestMsg& msg);
  void handle_gossip_repair(const GossipRepairMsg& msg);
  void handle_gossip_sub_repair(const GossipSubRepairMsg& msg);
  void dispatch(std::span<const Key> covered,
                const overlay::PayloadPtr& payload);
  /// Shared tail of the match paths: per-covered-key load attribution
  /// (match invocations, match-set sizes) and kHotKey trace spans.
  void record_match_load(const PublishMsg& msg,
                         std::span<const Key> covered,
                         std::size_t match_set_size,
                         const std::vector<std::uint64_t>& per_key_notifies);

  // Gossip internals.
  /// Group-wide dissemination (m-cast and gossip backends): collect the
  /// responsible matches of one publish into sorted (subscriber,
  /// notification) entries.
  std::vector<GossipEntry> collect_entries(const PublishMsg& msg,
                                           std::span<const Key> covered);
  void disseminate_mcast(const PublishMsg& msg, std::span<const Key> covered);
  void disseminate_gossip(const PublishMsg& msg,
                          std::span<const Key> covered);
  /// Surface every entry addressed to this node (dedup'd, kDeliver
  /// spans — delivery looks the same whatever backend carried it).
  void surface_own_entries(const std::vector<GossipEntry>& entries);
  /// Push `rec` to up to gossip_fanout random group members (never
  /// self), spending one round. No-op when rounds == 0.
  void gossip_push(const GossipRecordPtr& rec, std::uint32_t rounds);
  /// First sight of `rec` (push or repair): cache it, surface own
  /// entries, arm anti-entropy. Returns false when already seen.
  bool absorb_gossip_record(const GossipRecordPtr& rec);
  void schedule_anti_entropy();
  void anti_entropy_tick();
  std::shared_ptr<GossipDigestMsg> build_digest(Key to, bool reply);
  /// One repair leg: push records + owned subs `msg.from` lacks per its
  /// digest, then (unless the digest is itself a reply) answer with our
  /// own digest.
  void answer_digest(const GossipDigestMsg& msg);
  std::uint32_t gossip_rounds_for(std::size_t group_size) const;

  /// Route one match to its subscriber through the configured path
  /// (immediate / buffered / collected). `trace` is the publish payload's
  /// context; the notification inherits it.
  void route_match(const SubscriptionStore::Record& rec, EventPtr event,
                   sim::SimTime published_at, metrics::TraceRef trace);

  void buffer_notification(Key subscriber, Notification n);
  void enqueue_collect(CollectItem item);
  void flush_notify_buffer();
  void flush_collect_buffers();
  void schedule_sweep();
  void sweep_expired();

  void send_to_keys(const std::vector<Key>& keys,
                    overlay::PayloadPtr payload,
                    PubSubConfig::Transport transport);

  // Ring geometry helpers for collecting (§4.3.2).
  bool covers_key(Key k) const;
  bool coverage_intersects(const KeyRange& r) const;
  const KeyRange* my_range_for(const SubscriptionStore::Record& rec) const;
  bool is_agent_for(const KeyRange& r) const;
  bool agent_toward_successor(const KeyRange& r) const;

  overlay::OverlayNode& overlay_;
  sim::SimulatorBase& sim_;
  const AkMapping& mapping_;
  PubSubConfig cfg_;

  SubscriptionStore store_;
  std::unordered_map<SubscriptionId, OwnSub> own_subs_;
  NotifySink sink_;
  metrics::TraceSink* trace_ = nullptr;

  // Pending per-subscriber notification batches (buffering + agent role).
  std::unordered_map<Key, std::vector<Notification>> notify_buffer_;
  // Pending collect items by ring direction.
  std::vector<CollectItem> collect_to_succ_;
  std::vector<CollectItem> collect_to_pred_;

  // One-shot timers, armed only while there is pending work.
  bool flush_scheduled_ = false;
  bool collect_scheduled_ = false;
  bool sweep_scheduled_ = false;
  sim::SimTime sweep_at_ = sim::kSimTimeNever;

  // --- gossip backend state (empty unless dissemination == kGossip) ----
  /// Per-node RNG stream: peer picks must not consume the overlay or
  /// workload streams, or the backends would perturb each other's runs.
  Rng gossip_rng_;
  /// Recently seen records: dedup for the epidemic and the pull-repair
  /// inventory for anti-entropy. Ordered (D1): digests iterate it.
  /// Retention follows each record's seeded_at (one absolute deadline
  /// for the whole system), so the cache provably drains and the
  /// anti-entropy timer disarms.
  std::map<GossipId, GossipRecordPtr> gossip_seen_;
  bool anti_entropy_scheduled_ = false;
  std::uint64_t next_gossip_seq_ = 1;
  GossipStats gossip_stats_;

  bool halted_ = false;

  std::uint64_t notifications_received_ = 0;
  std::uint64_t notify_batches_sent_ = 0;
  std::uint64_t notifications_sent_ = 0;
  std::uint64_t duplicates_suppressed_ = 0;
  std::uint64_t misdirected_notifies_ = 0;
  std::uint64_t reissued_imports_ = 0;
  KeyLoad key_load_;
  RunningStat notification_delay_;
  metrics::Histogram delay_hist_;
  metrics::Histogram fanout_hist_;
  // (event, subscription) pairs already surfaced to the sink; only
  // populated when cfg_.duplicate_suppression is on.
  std::set<std::pair<EventId, SubscriptionId>> delivered_;
};

}  // namespace cbps::pubsub
