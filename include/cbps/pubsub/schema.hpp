// The event space Omega: a d-dimensional space of named, typed numeric
// attributes (paper §3.2). String attributes are reduced to numbers by
// hashing before they enter the schema.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cbps/common/assert.hpp"
#include "cbps/common/interval.hpp"
#include "cbps/common/types.hpp"

namespace cbps::pubsub {

struct AttributeDef {
  std::string name;
  ClosedInterval domain;  // Omega_i: the attribute's value range
};

class Schema {
 public:
  explicit Schema(std::vector<AttributeDef> attributes)
      : attributes_(std::move(attributes)) {
    CBPS_ASSERT_MSG(!attributes_.empty(), "schema needs >= 1 attribute");
  }

  /// d, the dimensionality of the event space.
  std::size_t dimensions() const { return attributes_.size(); }

  const AttributeDef& attribute(std::size_t i) const {
    CBPS_ASSERT(i < attributes_.size());
    return attributes_[i];
  }

  const ClosedInterval& domain(std::size_t i) const {
    return attribute(i).domain;
  }

  /// Index of the attribute named `name`, or nullopt.
  std::optional<std::size_t> attribute_index(std::string_view name) const {
    for (std::size_t i = 0; i < attributes_.size(); ++i) {
      if (attributes_[i].name == name) return i;
    }
    return std::nullopt;
  }

  /// |Omega_i|, the number of values in attribute i's domain.
  std::uint64_t domain_size(std::size_t i) const {
    return domain(i).width();
  }

  /// The paper's evaluation schema: `d` integer attributes named a0..a<d>
  /// ranging over [0, attr_max] (§5.1 uses d=4, attr_max=1,000,000).
  static Schema uniform(std::size_t d, Value attr_max) {
    std::vector<AttributeDef> attrs;
    attrs.reserve(d);
    for (std::size_t i = 0; i < d; ++i) {
      attrs.push_back({"a" + std::to_string(i), {0, attr_max}});
    }
    return Schema(std::move(attrs));
  }

  /// Reduce a string attribute value to a number inside attribute i's
  /// domain (the paper's §3.2 footnote 2: "string values can be reduced
  /// to numbers by applying a hashing"). Equality constraints on the
  /// resulting value behave exactly like string-equality subscriptions;
  /// range constraints over hashed strings are not meaningful.
  Value value_from_string(std::size_t attr, std::string_view s) const;

 private:
  std::vector<AttributeDef> attributes_;
};

}  // namespace cbps::pubsub
