// Subscriptions: conjunctions of range constraints (paper §3.2).
//
// A subscription sigma captures the subspace of Omega where every
// constraint holds. Disjunctions are expressed as separate subscriptions,
// exactly as the paper prescribes.
#pragma once

#include <memory>
#include <optional>
#include <ostream>
#include <vector>

#include "cbps/common/interval.hpp"
#include "cbps/common/types.hpp"
#include "cbps/pubsub/event.hpp"
#include "cbps/pubsub/schema.hpp"

namespace cbps::pubsub {

/// A single range constraint sigma.c_i: lo <= a_attribute <= hi.
/// Equality constraints are degenerate ranges (lo == hi).
struct Constraint {
  std::size_t attribute = 0;
  ClosedInterval range;

  friend constexpr bool operator==(const Constraint&,
                                   const Constraint&) = default;
};

/// A conjunction of constraints, at most one per attribute. Attributes
/// with no constraint are unconstrained ("partially defined
/// subscriptions", §4.2).
struct Subscription {
  SubscriptionId id = 0;
  Key subscriber = 0;  // overlay key of the subscribing node
  std::vector<Constraint> constraints;

  /// The constraint on `attr`, if any.
  const Constraint* constraint_on(std::size_t attr) const;

  /// e in sigma: every constraint satisfied (paper's matching relation).
  bool matches(const Event& e) const;

  /// Constraint attributes are distinct, in-range for the schema, and
  /// ranges lie within the attribute domains.
  bool valid_for(const Schema& schema) const;

  /// Structural validity only: constraint attributes are distinct and
  /// in-range for the schema. Unlike valid_for, ranges may extend past
  /// (or lie entirely outside) the attribute domains.
  bool well_formed_for(const Schema& schema) const;

  /// True when some event inside the schema's domains can satisfy every
  /// constraint — i.e. no constraint range is disjoint from its
  /// attribute domain. An unsatisfiable subscription never matches any
  /// event; every match engine skips it.
  bool satisfiable_for(const Schema& schema) const;

  /// The constraint on `attr` clamped to the attribute domain, or the
  /// whole domain when unconstrained ("effective interval"). Requires
  /// satisfiable_for(schema).
  ClosedInterval effective_interval(const Schema& schema,
                                    std::size_t attr) const;

  /// Subsumption: every event matching `other` also matches this
  /// subscription (this' subspace contains other's, intervals compared
  /// after clamping to the schema domains). Both subscriptions must be
  /// satisfiable.
  bool covers(const Schema& schema, const Subscription& other) const;

  /// Selectivity of the constraint on `attr`: r_i / |Omega_i|
  /// (1.0 when unconstrained). Lower is more selective.
  double selectivity(const Schema& schema, std::size_t attr) const;

  /// The most selective constrained attribute
  /// (argmin_i r_i / |Omega_i|; ties break to the lowest index), or
  /// nullopt if there are no constraints. This is the "selective
  /// attribute" sigma.c_s of Mapping 3.
  std::optional<std::size_t> most_selective_attribute(
      const Schema& schema) const;
};

using SubscriptionPtr = std::shared_ptr<const Subscription>;

std::ostream& operator<<(std::ostream& os, const Subscription& s);

}  // namespace cbps::pubsub
