// Post-fault invariant auditor (the "did it actually heal?" oracle).
//
// After a fault scenario ends and the system quiesces, the scripted
// benches and tests call audit_ring / audit_system to assert that the
// self-stabilization machinery really restored the paper's invariants:
// a consistent ring (successor/predecessor agreement, live fingers),
// full replica coverage of stored subscriptions, and a rendezvous for
// every live subscription. Ground truth comes from the network's
// membership oracle, so the audit is exact, not statistical.
//
// The audit is read-only and meant for a quiesced (or at least
// maintenance-converged) system; auditing mid-turbulence reports the
// turbulence, which is occasionally also what a test wants.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "cbps/chord/network.hpp"
#include "cbps/pubsub/system.hpp"

namespace cbps::pubsub {

struct RingAuditReport {
  std::size_t nodes_audited = 0;
  // Hard violations: the ring disagrees with the membership oracle.
  std::size_t successor_mismatches = 0;    // succ != next alive id
  std::size_t predecessor_mismatches = 0;  // pred != previous alive id
  std::size_t dead_successor_entries = 0;  // successor-list entry not alive
  std::size_t dead_fingers = 0;            // finger pointing at a dead node
  // Soft: finger alive but not the true successor of its start. Routing
  // still works (greedy forwarding tolerates stale fingers); reported
  // for convergence tracking, never a failure.
  std::size_t stale_fingers = 0;
  std::vector<std::string> issues;  // first few, human-readable

  bool ok() const {
    return successor_mismatches == 0 && predecessor_mismatches == 0 &&
           dead_successor_entries == 0 && dead_fingers == 0;
  }
};

/// Check every alive node's routing state against the membership oracle.
RingAuditReport audit_ring(chord::ChordNetwork& net);

struct SystemAuditReport {
  RingAuditReport ring;
  // Subscription-placement invariants (ground truth: alive ring + the
  // system's AK mapping). Assumes non-expiring subscriptions — an
  // expired-but-unswept record would be flagged as a false positive.
  std::size_t misplaced_records = 0;     // owned record outside coverage
  std::size_t under_replicated = 0;      // owned record with short chain
  std::size_t unstored_subscriptions = 0;  // live sub missing a rendezvous
  std::vector<std::string> issues;

  bool ok() const {
    return ring.ok() && misplaced_records == 0 && under_replicated == 0 &&
           unstored_subscriptions == 0;
  }
};

/// Full audit: ring consistency plus subscription placement, replica
/// coverage and rendezvous completeness for every alive node.
SystemAuditReport audit_system(PubSubSystem& system);

}  // namespace cbps::pubsub
