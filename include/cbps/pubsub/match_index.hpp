// Pluggable rendezvous matching engines.
//
// SubscriptionStore delegates candidate generation to a MatchIndex when
// one is installed (brute force is the null engine: the store scans its
// records directly). Implementations must be *exact*: match() returns
// precisely the ids of registered subscriptions matching the event — the
// brute-force scan is the correctness oracle the differential tests
// compare every engine against.
#pragma once

#include <cstddef>
#include <vector>

#include "cbps/common/types.hpp"
#include "cbps/pubsub/event.hpp"
#include "cbps/pubsub/subscription.hpp"

namespace cbps::pubsub {

class MatchIndex {
 public:
  virtual ~MatchIndex() = default;

  /// Register a subscription. Duplicate ids are rejected (no-op, false).
  virtual bool insert(const SubscriptionPtr& sub) = 0;

  /// Remove by id. Returns false if unknown.
  virtual bool remove(SubscriptionId id) = 0;

  /// Append the ids of all registered subscriptions matching `e` to
  /// `out` (unordered, no duplicates). `out` is not cleared.
  virtual void match_into(const Event& e,
                          std::vector<SubscriptionId>& out) const = 0;

  /// Number of registered (logical) subscriptions.
  virtual std::size_t size() const = 0;

  /// Estimated heap footprint of the index structures in bytes
  /// (buckets, entry vectors, bookkeeping maps — not the Subscription
  /// objects themselves, which the store owns).
  virtual std::size_t memory_bytes() const = 0;
};

}  // namespace cbps::pubsub
