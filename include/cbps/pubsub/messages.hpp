// Application payloads the CB-pub/sub layer routes through the overlay.
#pragma once

#include <memory>
#include <vector>

#include "cbps/common/types.hpp"
#include "cbps/metrics/trace.hpp"
#include "cbps/overlay/payload.hpp"
#include "cbps/pubsub/event.hpp"
#include "cbps/pubsub/mapping.hpp"
#include "cbps/pubsub/subscription.hpp"
#include "cbps/sim/time.hpp"

namespace cbps::pubsub {

/// One (event, subscription) match to be reported to a subscriber.
struct Notification {
  EventPtr event;
  SubscriptionId subscription = 0;
  /// When the event was published (simulated time); lets subscribers and
  /// the benches measure the notification delay that buffering and
  /// collecting trade for fewer messages (§4.3.2).
  sim::SimTime published_at = 0;
  /// Per-match trace context: notifications carry their own ref (distinct
  /// from the enclosing payload's) because buffering and collecting batch
  /// matches from different publishes into one wire message.
  metrics::TraceRef trace;
};

/// Propagates a subscription to its rendezvous keys.
struct SubscribeMsg final : overlay::Payload {
  SubscribeMsg(SubscriptionPtr s, sim::SimTime expiry,
               std::vector<KeyRange> rs)
      : sub(std::move(s)), expires_at(expiry), ranges(std::move(rs)) {}

  overlay::MessageClass message_class() const override {
    return overlay::MessageClass::kSubscribe;
  }

  std::size_t size_bytes() const override {
    return 32 + 24 * sub->constraints.size() + 16 * ranges.size();
  }

  SubscriptionPtr sub;
  sim::SimTime expires_at;      // absolute sim time; kSimTimeNever = none
  std::vector<KeyRange> ranges; // full SK(sub) as contiguous runs
};

/// Removes a subscription from its rendezvous keys.
struct UnsubscribeMsg final : overlay::Payload {
  explicit UnsubscribeMsg(SubscriptionId s) : sub_id(s) {}

  overlay::MessageClass message_class() const override {
    return overlay::MessageClass::kUnsubscribe;
  }

  std::size_t size_bytes() const override { return 16; }

  SubscriptionId sub_id;
};

/// Propagates an event to its rendezvous keys.
struct PublishMsg final : overlay::Payload {
  PublishMsg(EventPtr e, Key pub, sim::SimTime at)
      : event(std::move(e)), publisher(pub), published_at(at) {}

  overlay::MessageClass message_class() const override {
    return overlay::MessageClass::kPublish;
  }

  std::size_t size_bytes() const override {
    return 32 + 8 * event->values.size();
  }

  EventPtr event;
  Key publisher;
  sim::SimTime published_at;
};

/// Batch of notifications for one subscriber (a batch of size one when
/// buffering is off).
struct NotifyMsg final : overlay::Payload {
  NotifyMsg(Key s, std::vector<Notification> b)
      : subscriber(s), batch(std::move(b)) {}

  overlay::MessageClass message_class() const override {
    return overlay::MessageClass::kNotify;
  }

  std::size_t size_bytes() const override {
    std::size_t total = 16;
    for (const Notification& n : batch) {
      total += 24 + 8 * n.event->values.size();
    }
    return total;
  }

  Key subscriber;
  std::vector<Notification> batch;
};

/// One match travelling along the ring toward a range's agent node
/// (collecting, §4.3.2).
struct CollectItem {
  KeyRange range;       // the stored run this match belongs to
  Key subscriber = 0;
  Notification notification;
};

/// Batch of collect items pushed one ring hop toward their agents.
struct CollectMsg final : overlay::Payload {
  explicit CollectMsg(std::vector<CollectItem> i) : items(std::move(i)) {}

  overlay::MessageClass message_class() const override {
    return overlay::MessageClass::kCollect;
  }

  std::size_t size_bytes() const override {
    std::size_t total = 8;
    for (const CollectItem& item : items) {
      total += 48 + 8 * item.notification.event->values.size();
    }
    return total;
  }

  std::vector<CollectItem> items;
};

/// A stored-subscription record in transit (state transfer, replicas).
struct StoredSubRecord {
  SubscriptionPtr sub;
  sim::SimTime expires_at = sim::kSimTimeNever;
  std::vector<KeyRange> ranges;
  /// Whether the receiver should hold this as a replica (crash backup)
  /// rather than as owned state.
  bool replica = false;
};

/// Application state handed over on join/leave (OverlayApp::export_state
/// product).
struct StateMsg final : overlay::Payload {
  explicit StateMsg(std::vector<StoredSubRecord> r) : records(std::move(r)) {}

  overlay::MessageClass message_class() const override {
    return overlay::MessageClass::kStateTransfer;
  }

  std::size_t size_bytes() const override {
    std::size_t total = 8;
    for (const StoredSubRecord& r : records) {
      total += 32 + 24 * r.sub->constraints.size() + 16 * r.ranges.size();
    }
    return total;
  }

  std::vector<StoredSubRecord> records;
};

/// Replica of a stored subscription pushed along `remaining_hops`
/// successors for crash resilience (§4.1: "state replicated on a small
/// number of neighbors").
struct ReplicaMsg final : overlay::Payload {
  ReplicaMsg(StoredSubRecord r, std::size_t hops)
      : record(std::move(r)), remaining_hops(hops) {}

  overlay::MessageClass message_class() const override {
    return overlay::MessageClass::kStateTransfer;
  }

  std::size_t size_bytes() const override {
    return 40 + 24 * record.sub->constraints.size() +
           16 * record.ranges.size();
  }

  StoredSubRecord record;
  std::size_t remaining_hops;
};

/// Replica removal (follows unsubscription).
struct ReplicaRemoveMsg final : overlay::Payload {
  ReplicaRemoveMsg(SubscriptionId s, std::size_t hops)
      : sub_id(s), remaining_hops(hops) {}

  overlay::MessageClass message_class() const override {
    return overlay::MessageClass::kStateTransfer;
  }

  std::size_t size_bytes() const override { return 24; }

  SubscriptionId sub_id;
  std::size_t remaining_hops;
};

}  // namespace cbps::pubsub
