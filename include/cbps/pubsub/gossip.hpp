// Epidemic (gossip) notification dissemination — wire records.
//
// The gossip backend replaces the rendezvous' per-subscriber unicast
// notifications with a push/push-pull epidemic inside the event's match
// group: the rendezvous seeds a GossipRecord (one immutable blob holding
// the whole group's notifications) to a random fan-out of group members;
// every first-time receiver surfaces its own entries and re-pushes the
// record with a decremented round counter (counter-based infect-and-die,
// so the epidemic provably terminates). A periodic anti-entropy digest
// exchange lets nodes that missed the push phase — crashed, partitioned
// or just unlucky under loss — pull recent records back (and piggybacks
// a rendezvous-state digest so owned subscription records lost to
// crashes can be re-learned the same way).
#pragma once

#include <compare>
#include <cstdint>
#include <memory>
#include <vector>

#include "cbps/overlay/payload.hpp"
#include "cbps/pubsub/messages.hpp"

namespace cbps::pubsub {

/// Globally unique id of one gossip record: the seeding rendezvous plus
/// its per-node sequence number. Ordered so seen-caches and digests can
/// use std::map / sorted vectors (deterministic iteration, D1-clean).
struct GossipId {
  Key origin = 0;
  std::uint64_t seq = 0;

  auto operator<=>(const GossipId&) const = default;
};

/// One subscriber's share of a gossiped event.
struct GossipEntry {
  Key subscriber = 0;
  Notification notification;
};

/// The immutable unit of epidemic dissemination: every notification one
/// publish produced at one rendezvous, plus the sorted member list the
/// epidemic runs over. Shared by pointer across all pushes and repairs —
/// only the thin per-hop GossipMsg wrapper is ever copied.
struct GossipRecord {
  GossipId id;
  /// When the rendezvous seeded the record. Retention is keyed to this
  /// one absolute instant — every node prunes the record from its seen
  /// cache at seeded_at + gossip_window and refuses to re-absorb it
  /// afterwards. Pruning by local receipt time instead would let two
  /// nodes repair an aged-out record back and forth forever (each pull
  /// refreshing the other's retention clock), and the system would never
  /// quiesce.
  sim::SimTime seeded_at = 0;
  /// Sorted, unique subscriber keys — the gossip group. Determines whom
  /// pushes and anti-entropy exchanges may address.
  std::vector<Key> group;
  /// Sorted by (subscriber, subscription id); each member surfaces only
  /// its own entries.
  std::vector<GossipEntry> entries;

  std::size_t size_bytes() const {
    std::size_t total = 32 + 8 * group.size();
    for (const GossipEntry& e : entries) {
      total += 32 + 8 * e.notification.event->values.size();
    }
    return total;
  }
};

using GossipRecordPtr = std::shared_ptr<const GossipRecord>;

/// One epidemic push hop. A fresh wrapper per transmission (the record
/// itself is shared): the round counter decrements hop by hop and the
/// addressee is pinned so key-routing misdirections (the member crashed,
/// the ring moved) are detected and ghost-dropped at the receiver.
struct GossipMsg final : overlay::Payload {
  GossipMsg(Key t, GossipRecordPtr r, std::uint32_t rounds)
      : target(t), rec(std::move(r)), rounds_left(rounds) {}

  overlay::MessageClass message_class() const override {
    return overlay::MessageClass::kGossip;
  }

  std::size_t size_bytes() const override { return 16 + rec->size_bytes(); }

  Key target;
  GossipRecordPtr rec;
  std::uint32_t rounds_left;
};

/// Compact advertisement of one owned subscription record (rendezvous
/// soft state), piggybacked on anti-entropy digests. Replica-held
/// records are never advertised — re-gossiping a backup copy would make
/// every chain member act like an owner.
struct GossipSubDigest {
  SubscriptionId id = 0;
  sim::SimTime expires_at = sim::kSimTimeNever;
};

/// Periodic anti-entropy digest: "here is everything in my recent-event
/// cache (and the owned subscriptions whose ranges cover your key)".
/// The receiver pushes back whatever the sender lacks and — unless this
/// digest is already a reply — answers with its own digest, completing
/// one push-pull exchange without looping.
struct GossipDigestMsg final : overlay::Payload {
  GossipDigestMsg(Key f, Key t, bool r)
      : from(f), target(t), reply(r) {}

  overlay::MessageClass message_class() const override {
    return overlay::MessageClass::kGossip;
  }

  std::size_t size_bytes() const override {
    return 24 + 16 * have.size() + 16 * subs.size();
  }

  Key from;     // the digesting node (where the response goes)
  Key target;   // addressee (misdirection guard, as in GossipMsg)
  bool reply;   // true = second leg of an exchange; do not answer again
  std::vector<GossipId> have;      // sorted recent-record ids
  std::vector<GossipSubDigest> subs;  // sorted owned-subscription digest
};

/// Pull repair: full records the digest exchange found missing at the
/// addressee. Repaired records do not re-enter the push phase (round
/// counter 0) — anti-entropy converges, it does not re-ignite.
struct GossipRepairMsg final : overlay::Payload {
  GossipRepairMsg(Key f, Key t) : from(f), target(t) {}

  overlay::MessageClass message_class() const override {
    return overlay::MessageClass::kGossip;
  }

  std::size_t size_bytes() const override {
    std::size_t total = 16;
    for (const GossipRecordPtr& r : records) total += r->size_bytes();
    return total;
  }

  Key from;
  Key target;
  std::vector<GossipRecordPtr> records;
};

/// Rendezvous-state repair: full owned-subscription records the peer's
/// digest showed missing. The receiver stores them as owned (after the
/// usual coverage check) and rebuilds their replica chains.
struct GossipSubRepairMsg final : overlay::Payload {
  explicit GossipSubRepairMsg(Key t) : target(t) {}

  overlay::MessageClass message_class() const override {
    return overlay::MessageClass::kGossip;
  }

  std::size_t size_bytes() const override {
    std::size_t total = 8;
    for (const StoredSubRecord& r : records) {
      total += 32 + 24 * r.sub->constraints.size() + 16 * r.ranges.size();
    }
    return total;
  }

  Key target;
  std::vector<StoredSubRecord> records;
};

/// The m-cast dissemination backend's wire unit: the whole match group's
/// notifications in one payload, delivered through the overlay's native
/// m_cast tree. Each covered member surfaces only its own entries.
struct MultiNotifyMsg final : overlay::Payload {
  MultiNotifyMsg() = default;

  overlay::MessageClass message_class() const override {
    return overlay::MessageClass::kNotify;
  }

  std::size_t size_bytes() const override {
    std::size_t total = 8;
    for (const GossipEntry& e : entries) {
      total += 32 + 8 * e.notification.event->values.size();
    }
    return total;
  }

  std::vector<GossipEntry> entries;  // sorted by (subscriber, sub id)
};

}  // namespace cbps::pubsub
