// Per-rendezvous subscription storage and matching.
//
// A node stores each subscription at most once regardless of how many of
// its keys the node covers; records carry the expiry time and the SK key
// runs (needed for collecting-agent election and state handover). An
// ordered expiry index makes expiration sweeps O(log n) so the paper's
// 25k-subscription memory experiments stay cheap.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cbps/common/types.hpp"
#include "cbps/pubsub/counting_index.hpp"
#include "cbps/pubsub/covering_index.hpp"
#include "cbps/pubsub/match_index.hpp"
#include "cbps/pubsub/messages.hpp"
#include "cbps/pubsub/subscription.hpp"
#include "cbps/sim/time.hpp"

namespace cbps::pubsub {

/// How a rendezvous matches incoming events against its stored
/// subscriptions.
enum class MatchEngine {
  kBruteForce,     // linear scan (simple, the correctness oracle)
  kCountingIndex,  // per-attribute interval buckets (Fabret et al. [6])
  kCoveringIndex,  // counting index + subscription covering/merging
};

const char* to_string(MatchEngine engine);
/// Parse "brute" / "counting" / "covering"; returns std::nullopt on
/// anything else.
std::optional<MatchEngine> match_engine_from_string(std::string_view s);

class SubscriptionStore {
 public:
  struct Record {
    SubscriptionPtr sub;
    sim::SimTime expires_at = sim::kSimTimeNever;
    std::vector<KeyRange> ranges;  // full SK(sub) as contiguous runs
    bool replica = false;          // held for a neighbor's crash recovery
  };

  SubscriptionStore() = default;

  /// Switch matching to the counting index (call before any insert).
  void use_counting_index(const Schema& schema,
                          std::size_t buckets_per_attribute = 256) {
    CBPS_ASSERT_MSG(records_.empty(), "enable the index on an empty store");
    index_ = std::make_unique<CountingIndex>(schema, buckets_per_attribute);
    engine_ = MatchEngine::kCountingIndex;
  }

  /// Switch matching to the covering/merging engine (call before any
  /// insert).
  void use_covering_index(const Schema& schema, CoveringOptions opts = {}) {
    CBPS_ASSERT_MSG(records_.empty(), "enable the index on an empty store");
    index_ = std::make_unique<CoveringIndex>(schema, opts);
    engine_ = MatchEngine::kCoveringIndex;
  }

  /// Install `engine` (no-op for kBruteForce; call before any insert).
  void use_engine(MatchEngine engine, const Schema& schema) {
    switch (engine) {
      case MatchEngine::kBruteForce:
        break;
      case MatchEngine::kCountingIndex:
        use_counting_index(schema);
        break;
      case MatchEngine::kCoveringIndex:
        use_covering_index(schema);
        break;
    }
  }

  MatchEngine engine() const { return engine_; }

  /// The installed index, or nullptr under brute force.
  const MatchIndex* match_index() const { return index_.get(); }

  /// Covering/merging statistics (nullptr unless kCoveringIndex).
  const CoveringIndex* covering_index() const {
    return engine_ == MatchEngine::kCoveringIndex
               ? static_cast<const CoveringIndex*>(index_.get())
               : nullptr;
  }

  /// Heap footprint of the match index in bytes (0 under brute force).
  std::size_t index_memory_bytes() const {
    return index_ ? index_->memory_bytes() : 0;
  }

  /// Insert or refresh. Returns true if the record is new — or if a
  /// non-replica insert upgraded an existing replica record to an owned
  /// one (fresh ownership needs a fresh replication chain).
  bool insert(const Record& record);

  /// Remove by id. Returns true if present.
  bool remove(SubscriptionId id);

  const Record* find(SubscriptionId id) const;

  /// Remove every record with expires_at <= now. Returns removed count.
  std::size_t sweep_expired(sim::SimTime now);

  /// Earliest finite expiry among stored records (kSimTimeNever if none).
  sim::SimTime next_expiry() const {
    return expiry_index_.empty() ? sim::kSimTimeNever
                                 : expiry_index_.begin()->first;
  }

  /// Matching records (non-expired) for `e` — owned and replica alike
  /// (replicas only ever see events when this node inherited the range).
  std::vector<const Record*> match(const Event& e, sim::SimTime now) const;

  /// Visit every record (e.g. for state export).
  void for_each(const std::function<void(const Record&)>& fn) const;

  /// Remove all records for which `pred` returns true; returns count.
  std::size_t remove_if(const std::function<bool(const Record&)>& pred);

  std::size_t size() const { return records_.size(); }
  /// Count of owned (non-replica) records — the quantity the paper's
  /// memory figures report.
  std::size_t owned_size() const { return owned_; }

  /// High-water mark of owned_size() over the store's lifetime.
  std::size_t peak_owned_size() const { return peak_owned_; }

 private:
  using RecordMap = std::unordered_map<SubscriptionId, Record>;

  void index_expiry(SubscriptionId id, sim::SimTime at);
  void unindex_expiry(SubscriptionId id, sim::SimTime at);
  RecordMap::iterator erase_record(RecordMap::iterator it);
  void note_owned_change();

  RecordMap records_;
  std::multimap<sim::SimTime, SubscriptionId> expiry_index_;
  std::unique_ptr<MatchIndex> index_;  // null = brute force
  MatchEngine engine_ = MatchEngine::kBruteForce;
  std::size_t owned_ = 0;
  std::size_t peak_owned_ = 0;
};

}  // namespace cbps::pubsub
