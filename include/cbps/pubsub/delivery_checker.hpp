// Test oracle for end-to-end delivery correctness.
//
// Records every subscribe/unsubscribe/publish/notify in a run and then
// verifies, pair by pair, that each event reached exactly the subscribers
// whose subscriptions it matched while they were active — no misses, no
// spurious notifications, no duplicates. A grace window absorbs
// propagation delay around subscription/unsubscription boundaries, where
// delivery is legitimately indeterminate.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "cbps/pubsub/messages.hpp"
#include "cbps/pubsub/subscription.hpp"
#include "cbps/sim/time.hpp"

namespace cbps::pubsub {

class DeliveryChecker {
 public:
  void on_subscribe(SubscriptionPtr sub, sim::SimTime when,
                    sim::SimTime expires_at);
  void on_unsubscribe(SubscriptionId id, sim::SimTime when);
  void on_publish(EventPtr event, sim::SimTime when);
  void on_notify(Key subscriber, const Notification& n, sim::SimTime when);
  /// The subscriber at `node` crashed: its subscriptions end at `when` —
  /// a dead node cannot receive, so later events must not be counted as
  /// expected deliveries (and a notification surfacing there anyway is a
  /// ghost the overlay failed to contain).
  void on_node_crashed(Key node, sim::SimTime when);

  struct Report {
    std::uint64_t expected = 0;    // (event, sub) pairs that must deliver
    std::uint64_t delivered = 0;   // of those, delivered at least once
    std::uint64_t missing = 0;     // of those, never delivered
    std::uint64_t duplicates = 0;  // extra deliveries of an expected pair
    std::uint64_t spurious = 0;    // deliveries of a non-matching pair
    std::uint64_t wrong_subscriber = 0;  // delivered to the wrong node
    std::vector<std::string> issues;     // first few, human-readable

    bool ok() const {
      return missing == 0 && duplicates == 0 && spurious == 0 &&
             wrong_subscriber == 0;
    }
  };

  /// Verify the run. `grace`: publications within `grace` of a
  /// subscription's registration, expiry or unsubscription are exempt
  /// from the must-deliver requirement (but deliveries there are still
  /// not spurious). `pubs_after` restricts the audit to publications at
  /// or after that time — how fault benches measure the post-heal
  /// delivery ratio separately from the mid-fault dip.
  Report verify(sim::SimTime grace = sim::sec(2),
                sim::SimTime pubs_after = 0) const;

  std::size_t publication_count() const { return publishes_.size(); }
  std::size_t subscription_count() const { return subs_.size(); }

 private:
  struct SubEntry {
    SubscriptionPtr sub;
    sim::SimTime subscribed_at = 0;
    sim::SimTime ends_at = sim::kSimTimeNever;  // expiry or unsubscribe
  };
  struct PubEntry {
    EventPtr event;
    sim::SimTime when = 0;
  };
  struct DeliveryInfo {
    std::uint64_t count = 0;
    Key subscriber = 0;  // node of the FIRST delivery of this pair
    // A later delivery of the same pair surfaced at a different node.
    // Kept separately so a duplicate cannot overwrite `subscriber` and
    // mask (or fake) a wrong-subscriber verdict.
    bool subscriber_mismatch = false;
  };

  std::map<SubscriptionId, SubEntry> subs_;
  std::vector<PubEntry> publishes_;
  // on_notify runs inside subscriber delivery events — concurrently
  // across shards under the parallel engine. The map is commutative
  // (keyed counts), so a mutex keeps it deterministic.
  // detlint: concurrency-ok(commutative keyed counts; TSan-proven in parallel_sim_test)
  std::mutex notify_mu_;
  std::map<std::pair<EventId, SubscriptionId>, DeliveryInfo> deliveries_;
};

}  // namespace cbps::pubsub
