// Continuous membership churn against a running system.
//
// The paper's headline claim is self-configuration: the pub/sub service
// keeps working while nodes join and leave with no manual management.
// The ChurnDriver turns that claim into an experiment: a Poisson process
// of joins, graceful leaves and crashes, to be combined with a workload
// Driver and a DeliveryChecker measuring how much of the traffic still
// reaches its subscribers (bench/churn_resilience).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "cbps/common/rng.hpp"
#include "cbps/pubsub/delivery_checker.hpp"
#include "cbps/pubsub/system.hpp"

namespace cbps::workload {

struct ChurnParams {
  /// Mean time between membership events (exponential inter-arrival).
  double mean_interval_s = 60.0;
  /// Probability that an event is a join; the remainder are removals.
  double join_fraction = 0.4;
  /// Fraction of removals that are crashes (vs graceful leaves).
  double crash_fraction = 0.5;
  /// Never remove nodes once the ring is this small.
  std::size_t min_nodes = 8;
  /// Stop after this many membership events.
  std::uint64_t max_events = std::numeric_limits<std::uint64_t>::max();
};

class ChurnDriver {
 public:
  /// `is_protected`, when set, exempts nodes (by overlay key) from
  /// removal — e.g. nodes acting as subscribers, so the experiment
  /// measures rendezvous-state resilience rather than subscriber death.
  using Protected = std::function<bool(Key)>;

  ChurnDriver(pubsub::PubSubSystem& system, ChurnParams params,
              std::uint64_t seed, Protected is_protected = nullptr);

  /// Arm the event process. Call once, then run the simulator.
  void start();
  /// Stop scheduling further events.
  void stop() { stopped_ = true; }

  /// Keep a delivery oracle honest across crashes: the driver reports
  /// every crashed node so the checker stops expecting deliveries there.
  void set_delivery_checker(pubsub::DeliveryChecker* checker) {
    checker_ = checker;
  }

  std::uint64_t joins() const { return joins_; }
  std::uint64_t leaves() const { return leaves_; }
  std::uint64_t crashes() const { return crashes_; }
  std::uint64_t events() const { return joins_ + leaves_ + crashes_; }

  /// One membership event as it happened, in order. Two drivers with the
  /// same seed against identically-seeded systems must produce
  /// bit-identical logs (determinism regression surface).
  struct ChurnEvent {
    enum class Kind : std::uint8_t { kJoin, kLeave, kCrash };
    Kind kind = Kind::kJoin;
    Key node = 0;  // the joined node's id, or the removed victim's id
    sim::SimTime at = 0;
  };
  const std::vector<ChurnEvent>& event_log() const { return log_; }

 private:
  void schedule_next();
  void fire();
  /// A removable node's dense index, or nullopt if none qualifies.
  std::optional<std::size_t> pick_victim();

  pubsub::PubSubSystem& system_;
  ChurnParams params_;
  Rng rng_;
  Protected is_protected_;
  pubsub::DeliveryChecker* checker_ = nullptr;
  std::vector<ChurnEvent> log_;

  bool stopped_ = false;
  std::uint64_t joins_ = 0;
  std::uint64_t leaves_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t join_seq_ = 0;
};

}  // namespace cbps::workload
