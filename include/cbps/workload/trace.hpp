// Replayable workload traces.
//
// A Trace is a time-ordered list of application operations (subscribe /
// unsubscribe / publish) with a line-oriented text serialization, so an
// interesting run can be captured once and replayed against different
// system configurations (mappings, transports, optimizations) for an
// apples-to-apples comparison.
//
// Format (one op per line, times in microseconds):
//   sub <t> <node> <id> <ttl|never> <attr>:<lo>:<hi> [...]
//   unsub <t> <node> <id>
//   pub <t> <node> <v0> <v1> [...]
//   # comments and blank lines are ignored
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "cbps/pubsub/subscription.hpp"
#include "cbps/pubsub/system.hpp"
#include "cbps/sim/time.hpp"

namespace cbps::workload {

struct TraceOp {
  enum class Kind { kSubscribe, kUnsubscribe, kPublish };

  Kind kind = Kind::kPublish;
  sim::SimTime at = 0;
  std::size_t node = 0;  // dense node index in the system

  // kSubscribe / kUnsubscribe
  SubscriptionId sub_id = 0;
  sim::SimTime ttl = sim::kSimTimeNever;            // kSubscribe
  std::vector<pubsub::Constraint> constraints;      // kSubscribe

  // kPublish
  std::vector<Value> values;
};

class Trace {
 public:
  void add(TraceOp op) { ops_.push_back(std::move(op)); }
  const std::vector<TraceOp>& ops() const { return ops_; }
  std::size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

  std::uint64_t subscription_count() const;
  std::uint64_t publication_count() const;

  void save(std::ostream& os) const;

  /// Parse a trace; returns nullopt (with a message in *error) on
  /// malformed input.
  static std::optional<Trace> load(std::istream& is,
                                   std::string* error = nullptr);

 private:
  std::vector<TraceOp> ops_;
};

/// Schedules every trace operation against a system at its recorded
/// simulated time. Construct, call start(), then run the simulator.
class TraceReplayer {
 public:
  TraceReplayer(pubsub::PubSubSystem& system, const Trace& trace);

  /// Arm the replay. Operations whose node index exceeds the system's
  /// node count are skipped (counted in skipped()).
  void start();

  std::uint64_t replayed() const { return replayed_; }
  std::uint64_t skipped() const { return skipped_; }

 private:
  void apply(const TraceOp& op);

  pubsub::PubSubSystem& system_;
  const Trace& trace_;
  // Maps trace subscription ids to the ids the system assigned.
  std::map<SubscriptionId, std::pair<std::size_t, SubscriptionId>>
      sub_ids_;
  std::uint64_t replayed_ = 0;
  std::uint64_t skipped_ = 0;
};

}  // namespace cbps::workload
