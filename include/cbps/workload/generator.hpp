// Workload generation following the paper's evaluation setup (§5.1):
//
//   - 4 integer attributes in [0, ATTR_MAX = 1,000,000];
//   - each constraint spans a range drawn uniformly from [1, X], where
//     X = 3% of ATTR_MAX for non-selective attributes and 0.1% for
//     selective ones;
//   - ranges are centered uniformly (non-selective) or Zipf-distributed
//     (selective);
//   - publications match at least one active subscription with a given
//     matching probability.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cbps/common/rng.hpp"
#include "cbps/pubsub/schema.hpp"
#include "cbps/pubsub/subscription.hpp"

namespace cbps::workload {

struct WorkloadParams {
  /// Fraction of the attribute domain bounding a non-selective
  /// constraint's range (paper: 3%).
  double nonselective_range_frac = 0.03;
  /// Fraction bounding a selective constraint's range (paper: 0.1%).
  double selective_range_frac = 0.001;
  /// Which attributes are selective (empty = none). Selective attributes
  /// get tight ranges with Zipf-distributed centers.
  std::vector<bool> selective;
  /// Zipf exponent for selective-attribute centers.
  double zipf_exponent = 1.0;
  /// Probability that a publication matches >= 1 active subscription.
  double matching_probability = 0.5;

  bool is_selective(std::size_t attr) const {
    return attr < selective.size() && selective[attr];
  }
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(pubsub::Schema schema, WorkloadParams params,
                    std::uint64_t seed);

  const pubsub::Schema& schema() const { return schema_; }
  const WorkloadParams& params() const { return params_; }
  Rng& rng() { return rng_; }

  /// Constraints of a fresh subscription: one range constraint per
  /// attribute, per the paper's model.
  std::vector<pubsub::Constraint> make_constraints();

  /// Event values drawn uniformly from the whole event space (almost
  /// surely matching nothing under the paper's tight ranges).
  std::vector<Value> make_random_values();

  /// Event values guaranteed to match `target`.
  std::vector<Value> make_matching_values(const pubsub::Subscription& target);

  /// Event values honoring the matching probability: with probability p,
  /// a uniform point inside a uniformly chosen subscription from
  /// `active`; otherwise uniform over the event space. Falls back to
  /// uniform when `active` is empty.
  std::vector<Value> make_event_values(
      std::span<const pubsub::SubscriptionPtr> active);

 private:
  pubsub::Constraint make_constraint(std::size_t attr);
  /// A Zipf-popular value of attribute `attr` (popularity follows Zipf;
  /// rank is mapped to a domain position by a fixed bijection so popular
  /// values are spread across the domain).
  Value zipf_value(std::size_t attr);

  pubsub::Schema schema_;
  WorkloadParams params_;
  Rng rng_;
  std::vector<ZipfSampler> zipf_;  // one per attribute
  std::vector<std::uint64_t> rank_multiplier_;
};

}  // namespace cbps::workload
