// Scripted fault scenarios: time-stamped partitions, loss regimes,
// gray failures and crash bursts, driven by the simulator clock.
//
// Replaces the benches' ad-hoc fault knobs with one declarative spec a
// CLI flag can carry. The text format is one directive per line (or
// ';'-separated), `name key=value...`, times in simulated seconds,
// `#` comments:
//
//   partition at=10 heal=40 frac=0.4
//   loss at=5 until=35 model=uniform rate=0.2
//   loss at=5 until=35 model=ge p=0.05 q=0.25 good=0.01 bad=0.8
//   slow at=10 until=50 nodes=3 factor=8
//   crash_burst at=20 count=5 correlation=0.7
//   checkpoint at=60 label=post-heal
//
// A FaultScriptRunner schedules the parsed directives against a
// PubSubSystem: partitions split the ring into two contiguous arcs and
// heal on time (triggering replica-chain repair), loss swaps the wire's
// loss model, slow marks gray nodes, crash bursts kill ring-correlated
// victims, checkpoints invoke a caller hook (where benches audit).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cbps/common/rng.hpp"
#include "cbps/pubsub/delivery_checker.hpp"
#include "cbps/pubsub/system.hpp"

namespace cbps::workload {

struct FaultDirective {
  enum class Kind : std::uint8_t {
    kPartition,
    kLoss,
    kSlow,
    kCrashBurst,
    kCheckpoint,
  };
  enum class LossKind : std::uint8_t { kUniform, kGilbertElliott };

  Kind kind = Kind::kCheckpoint;
  sim::SimTime at = 0;
  /// End of the fault (partition heal / loss cleared / slow cleared).
  /// kSimTimeNever = the fault persists to the end of the run.
  sim::SimTime until = sim::kSimTimeNever;

  // partition: fraction of the alive ring cut off as the minority arc.
  double frac = 0.5;

  // loss
  LossKind loss_kind = LossKind::kUniform;
  double rate = 0.0;                    // uniform drop probability
  double ge_p = 0.0, ge_q = 1.0;        // Gilbert–Elliott transitions
  double ge_good = 0.0, ge_bad = 0.0;   // per-state drop probabilities

  // slow (gray failure)
  std::size_t nodes = 1;   // how many gray nodes to pick
  double factor = 4.0;     // latency multiplier while gray

  // crash_burst
  std::size_t count = 1;       // victims
  double correlation = 0.0;    // P(next victim = ring successor of last)

  // checkpoint
  std::string label;
};

struct FaultScript {
  std::vector<FaultDirective> directives;

  bool empty() const { return directives.empty(); }

  /// Any directive that drops or refuses messages? Such scripts need the
  /// ack/retry layer armed (chord.force_reliable) to meet delivery
  /// guarantees.
  bool needs_reliable_transport() const;

  /// Time by which every bounded fault has cleared and every one-shot
  /// fault has fired (a persistent fault — no until/heal — counts from
  /// its start; there is no clearing it). Verification windows open
  /// here: publications during an active partition legitimately miss
  /// cut-off subscribers, so completeness is only owed afterwards.
  /// Returns 0 for an empty script.
  sim::SimTime all_clear_at() const;

  /// Parse the text format above. Returns nullopt on malformed input and
  /// stores a human-readable reason in *error (when non-null).
  static std::optional<FaultScript> parse(std::string_view text,
                                          std::string* error = nullptr);
};

class FaultScriptRunner {
 public:
  /// Exempts nodes (by overlay key) from crash bursts — e.g. designated
  /// subscribers/publishers of the measuring workload.
  using Protected = std::function<bool(Key)>;
  /// Invoked at each `checkpoint` directive.
  using CheckpointFn =
      std::function<void(const std::string& label, sim::SimTime when)>;

  FaultScriptRunner(pubsub::PubSubSystem& system, FaultScript script,
                    std::uint64_t seed, Protected is_protected = nullptr);

  void set_checkpoint_callback(CheckpointFn fn) { on_checkpoint_ = std::move(fn); }
  /// Crashed victims are reported here so the oracle stops expecting
  /// deliveries to them.
  void set_delivery_checker(pubsub::DeliveryChecker* checker) {
    checker_ = checker;
  }

  /// Schedule every directive. Call once, then run the simulator.
  void start();

  // --- introspection ------------------------------------------------------
  std::uint64_t partitions_applied() const { return partitions_; }
  std::uint64_t crashes() const { return crashes_; }
  std::uint64_t loss_swaps() const { return loss_swaps_; }
  std::uint64_t slow_marks() const { return slow_marks_; }
  /// Heal time of the last partition (kSimTimeNever if none healed yet).
  sim::SimTime last_heal_at() const { return last_heal_at_; }

 private:
  void apply(const FaultDirective& d);
  void schedule_re_replication(bool refresh_subs);
  void apply_partition(const FaultDirective& d);
  void apply_loss(const FaultDirective& d);
  void apply_slow(const FaultDirective& d);
  void apply_crash_burst(const FaultDirective& d);

  pubsub::PubSubSystem& system_;
  FaultScript script_;
  Rng rng_;
  Protected is_protected_;
  pubsub::DeliveryChecker* checker_ = nullptr;
  CheckpointFn on_checkpoint_;

  std::uint64_t partitions_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t loss_swaps_ = 0;
  std::uint64_t slow_marks_ = 0;
  sim::SimTime last_heal_at_ = sim::kSimTimeNever;
};

}  // namespace cbps::workload
