// Replays the paper's workload against a PubSubSystem (§5.1):
// subscriptions injected at a regular rate from random nodes,
// publications as a Poisson process, randomly interleaved.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "cbps/pubsub/delivery_checker.hpp"
#include "cbps/pubsub/system.hpp"
#include "cbps/workload/generator.hpp"
#include "cbps/workload/trace.hpp"

namespace cbps::workload {

struct DriverParams {
  /// Interval between subscription injections (paper: one each 5 s).
  sim::SimTime sub_interval = sim::sec(5);
  /// Mean of the exponential inter-publication time (paper: 5 s).
  double pub_mean_interval_s = 5.0;
  /// Lifetime of injected subscriptions (simulated unsubscription).
  sim::SimTime sub_ttl = sim::kSimTimeNever;
  /// Stop issuing after these many operations.
  std::uint64_t max_subscriptions = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_publications = std::numeric_limits<std::uint64_t>::max();

  /// Temporal locality of the event stream (§4.3.2: "consecutive events
  /// exhibit temporal locality, i.e., have close attribute values"):
  /// probability that a publication stays in the region of the previous
  /// one (drawing a fresh point inside the same matched subscription)
  /// instead of re-anchoring. 0 = independent events.
  double event_locality = 0.0;
};

class Driver {
 public:
  /// The checker, when given, is fed every subscribe/publish and is wired
  /// as the system's notification sink. The trace, when given, records
  /// every injected operation for later replay.
  Driver(pubsub::PubSubSystem& system, WorkloadGenerator& gen,
         DriverParams params, pubsub::DeliveryChecker* checker = nullptr,
         Trace* record = nullptr);

  /// Arm the injection processes. Call once, then run the simulator.
  void start();

  /// True when both processes reached their operation budgets.
  bool finished() const {
    return subs_issued_ >= params_.max_subscriptions &&
           pubs_issued_ >= params_.max_publications;
  }

  /// Run the system until both budgets are exhausted and the network has
  /// drained (requires finite budgets).
  void run_to_completion();

  std::uint64_t subscriptions_issued() const { return subs_issued_; }
  std::uint64_t publications_issued() const { return pubs_issued_; }

  /// Subscriptions not yet expired at the current simulated time.
  const std::vector<pubsub::SubscriptionPtr>& active_subscriptions();

 private:
  void inject_subscription();
  void inject_publication();
  void schedule_next_subscription();
  void schedule_next_publication();
  std::size_t random_node();
  void prune_expired();

  pubsub::PubSubSystem& system_;
  WorkloadGenerator& gen_;
  DriverParams params_;
  pubsub::DeliveryChecker* checker_;
  Trace* record_;

  struct ActiveSub {
    pubsub::SubscriptionPtr sub;
    sim::SimTime expires_at;
  };
  std::vector<ActiveSub> active_;
  std::vector<pubsub::SubscriptionPtr> active_view_;
  pubsub::SubscriptionPtr locality_anchor_;  // last matched subscription
  std::vector<Value> anchor_values_;         // last non-matching point

  std::uint64_t subs_issued_ = 0;
  std::uint64_t pubs_issued_ = 0;
};

}  // namespace cbps::workload
