// Simulated time.
//
// The simulator clock is a 64-bit count of microseconds since the start of
// the run. Helpers build durations readably: sim::sec(5), sim::ms(50).
#pragma once

#include <cstdint>

namespace cbps::sim {

/// Absolute simulated time or a duration, in microseconds.
using SimTime = std::uint64_t;

constexpr SimTime kSimTimeNever = ~SimTime{0};

constexpr SimTime us(std::uint64_t n) { return n; }
constexpr SimTime ms(std::uint64_t n) { return n * 1000; }
constexpr SimTime sec(std::uint64_t n) { return n * 1000 * 1000; }

/// Duration as fractional seconds (for reporting).
constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / 1e6;
}

/// Fractional seconds to SimTime (rounding down).
constexpr SimTime from_seconds(double s) {
  return static_cast<SimTime>(s * 1e6);
}

}  // namespace cbps::sim
