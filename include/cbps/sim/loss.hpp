// Message-loss fault injection for the simulated wire.
//
// A LossModel decides, per transmitted message, whether the network
// drops it in flight. Networks sample it after hop accounting (the
// message consumed bandwidth) and before scheduling delivery. The
// model draws from a dedicated Rng stream split off the run RNG, so
// enabling loss never perturbs latency sampling and a run with
// rate == 0 is bit-identical to one with no model installed.
#pragma once

#include <memory>

#include "cbps/common/assert.hpp"
#include "cbps/common/rng.hpp"

namespace cbps::sim {

class LossModel {
 public:
  virtual ~LossModel() = default;
  /// True if this transmission is lost.
  virtual bool drop(Rng& rng) = 0;
};

/// Drops every message independently with a fixed probability.
class UniformLoss final : public LossModel {
 public:
  explicit UniformLoss(double rate) : rate_(rate) {
    CBPS_ASSERT_MSG(rate >= 0.0 && rate <= 1.0,
                    "loss rate must be in [0, 1]");
  }

  bool drop(Rng& rng) override { return rng.uniform01() < rate_; }
  double rate() const { return rate_; }

 private:
  double rate_;
};

}  // namespace cbps::sim
