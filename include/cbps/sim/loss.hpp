// Message-loss fault injection for the simulated wire.
//
// A LossModel decides, per transmitted message, whether the network
// drops it in flight. Networks sample it after hop accounting (the
// message consumed bandwidth) and before scheduling delivery. The
// model draws from a dedicated Rng stream split off the run RNG, so
// enabling loss never perturbs latency sampling and a run with
// rate == 0 is bit-identical to one with no model installed.
#pragma once

#include <memory>

#include "cbps/common/assert.hpp"
#include "cbps/common/rng.hpp"

namespace cbps::sim {

class LossModel {
 public:
  virtual ~LossModel() = default;
  /// True if this transmission is lost.
  virtual bool drop(Rng& rng) = 0;

  /// Fresh copy with independent channel state. The network keeps one
  /// channel per *sender* so loss decisions ride the sender's own RNG
  /// stream (a hard requirement for shard-count-invariant determinism:
  /// a shared channel would be consumed in wall-clock order).
  virtual std::unique_ptr<LossModel> clone() const = 0;
};

/// Drops every message independently with a fixed probability.
class UniformLoss final : public LossModel {
 public:
  explicit UniformLoss(double rate) : rate_(rate) {
    CBPS_ASSERT_MSG(rate >= 0.0 && rate <= 1.0,
                    "loss rate must be in [0, 1]");
  }

  bool drop(Rng& rng) override { return rng.uniform01() < rate_; }
  std::unique_ptr<LossModel> clone() const override {
    return std::make_unique<UniformLoss>(rate_);
  }
  double rate() const { return rate_; }

 private:
  double rate_;
};

/// Gilbert–Elliott bursty loss: a two-state Markov chain alternating
/// between a Good state (rare residual loss) and a Bad state (heavy
/// loss). Transitions are sampled per message, so consecutive messages
/// are correlated — mean burst length is 1/q messages. This is the
/// standard model for the correlated failures that break independence
/// assumptions in overlay repair.
class GilbertElliottLoss final : public LossModel {
 public:
  /// `p` = P(Good -> Bad) per message, `q` = P(Bad -> Good) per message,
  /// `good_loss` / `bad_loss` = drop probability in each state.
  GilbertElliottLoss(double p, double q, double good_loss, double bad_loss)
      : p_(p), q_(q), good_loss_(good_loss), bad_loss_(bad_loss) {
    CBPS_ASSERT_MSG(p >= 0.0 && p <= 1.0 && q >= 0.0 && q <= 1.0,
                    "transition probabilities must be in [0, 1]");
    CBPS_ASSERT_MSG(good_loss >= 0.0 && good_loss <= 1.0 &&
                        bad_loss >= 0.0 && bad_loss <= 1.0,
                    "loss rates must be in [0, 1]");
  }

  bool drop(Rng& rng) override {
    const bool lost = rng.uniform01() < (bad_ ? bad_loss_ : good_loss_);
    if (bad_) {
      if (rng.uniform01() < q_) bad_ = false;
    } else {
      if (rng.uniform01() < p_) bad_ = true;
    }
    return lost;
  }

  std::unique_ptr<LossModel> clone() const override {
    auto c = std::make_unique<GilbertElliottLoss>(p_, q_, good_loss_,
                                                 bad_loss_);
    c->bad_ = bad_;
    return c;
  }

  bool in_bad_state() const { return bad_; }
  /// Long-run fraction of time spent in the Bad state: p / (p + q).
  double stationary_bad() const {
    return p_ + q_ > 0 ? p_ / (p_ + q_) : 0.0;
  }
  /// Long-run average drop probability.
  double mean_rate() const {
    const double b = stationary_bad();
    return b * bad_loss_ + (1.0 - b) * good_loss_;
  }

 private:
  double p_;
  double q_;
  double good_loss_;
  double bad_loss_;
  bool bad_ = false;
};

}  // namespace cbps::sim
