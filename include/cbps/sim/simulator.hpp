// Single-threaded discrete-event simulation engine.
//
// Events are (time, callback) pairs processed in nondecreasing time order;
// ties break by schedule order (a strict total order), which together with
// the seeded Rng makes every run bit-reproducible.
//
// The schedule/fire/cancel cycle is allocation-free in steady state:
// callbacks live in generation-stamped slots (a flat vector recycled
// through an intrusive free list, small captures stored inline via
// InlineFunction), and the time-ordered heap is a plain vector of
// (time, seq, id) triples. Cancellation just bumps the slot's
// generation; the stale heap entry is skipped when popped, and the heap
// is compacted whenever stale entries outnumber live ones so
// timer-heavy workloads (ack/retry backoff) cannot grow it unboundedly.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cbps/common/assert.hpp"
#include "cbps/common/inline_function.hpp"
#include "cbps/sim/time.hpp"

namespace cbps::sim {

class Simulator {
 public:
  using Callback = common::InlineFunction<void(), 48>;
  using EventId = std::uint64_t;
  using TimerId = std::uint64_t;

  static constexpr EventId kInvalidEvent = 0;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedule `cb` at absolute time `t` (>= now()). Returns a handle that
  /// can cancel the event before it fires.
  EventId schedule_at(SimTime t, Callback cb);

  /// Schedule `cb` after `delay` from now.
  EventId schedule_after(SimTime delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Cancel a pending event. Returns false if it already fired or was
  /// already cancelled.
  bool cancel(EventId id);

  /// Register a periodic timer firing every `period`, first at
  /// now() + first_delay (defaults to one full period). The callback keeps
  /// firing until cancel_timer().
  TimerId add_timer(SimTime period, Callback cb);
  TimerId add_timer(SimTime period, SimTime first_delay, Callback cb);

  /// Stop a periodic timer. Returns false if unknown/already cancelled.
  bool cancel_timer(TimerId id);

  /// Run until the queue drains (or `max_events` fire). Returns the number
  /// of events processed.
  std::uint64_t run(std::uint64_t max_events = ~std::uint64_t{0});

  /// Process every event with time <= t, then advance the clock to t.
  /// Returns the number of events processed.
  std::uint64_t run_until(SimTime t);

  /// Pending (non-cancelled) event count, periodic timers included.
  std::size_t pending_events() const { return live_; }

  std::uint64_t events_processed() const { return processed_; }

 private:
  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

  // EventId layout: generation in the high 32 bits, slot index + 1 in the
  // low 32 (so generation 0 / slot 0 is still nonzero and kInvalidEvent
  // never collides). A slot's generation bumps on every release, so a
  // handle to a fired/cancelled event — or to a recycled slot — goes
  // stale. (A single slot would need 2^32 reuses to alias.)
  static EventId make_id(std::uint32_t gen, std::uint32_t slot) {
    return (static_cast<EventId>(gen) << 32) |
           (static_cast<EventId>(slot) + 1);
  }
  static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id & 0xffffffffu) - 1;
  }
  static std::uint32_t gen_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }

  struct Slot {
    Callback cb;
    std::uint32_t gen = 0;
    std::uint32_t next_free = kNoSlot;
    bool armed = false;
  };

  struct HeapEntry {
    SimTime time;
    std::uint64_t seq;  // schedule order, the deterministic tie-break
    EventId id;
    // Min-heap ordering: earliest time first, then schedule order.
    friend bool operator>(const HeapEntry& a, const HeapEntry& b) {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  struct TimerState {
    SimTime period;
    // Shared so a fire can keep the body alive while the callback itself
    // cancels the timer (which erases this state).
    std::shared_ptr<Callback> cb;
    EventId next_event = kInvalidEvent;
  };

  bool is_live(EventId id) const {
    const std::uint32_t slot = slot_of(id);
    return slot < slots_.size() && slots_[slot].armed &&
           slots_[slot].gen == gen_of(id);
  }

  /// Free the slot behind `id` (bumps generation, recycles storage).
  void release(std::uint32_t slot);

  /// Rebuild the heap without stale entries once they dominate.
  void maybe_compact();

  /// Pop and run the earliest event. Precondition: queue non-empty after
  /// discarding cancelled entries. Returns false if nothing runnable.
  bool step();

  void arm_timer(TimerId id);
  void fire_timer(TimerId id);

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  TimerId next_timer_id_ = 1;
  std::uint64_t processed_ = 0;
  std::vector<HeapEntry> heap_;  // min-heap via std::push_heap/pop_heap
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::size_t live_ = 0;  // armed slots == non-stale heap entries
  std::unordered_map<TimerId, TimerState> timers_;
};

}  // namespace cbps::sim
