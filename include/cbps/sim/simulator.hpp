// Single-threaded discrete-event simulation engine.
//
// Events are (time, callback) pairs processed in nondecreasing time order;
// ties break by schedule order (a strict total order), which together with
// the seeded Rng makes every run bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "cbps/common/assert.hpp"
#include "cbps/sim/time.hpp"

namespace cbps::sim {

class Simulator {
 public:
  using Callback = std::function<void()>;
  using EventId = std::uint64_t;
  using TimerId = std::uint64_t;

  static constexpr EventId kInvalidEvent = 0;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedule `cb` at absolute time `t` (>= now()). Returns a handle that
  /// can cancel the event before it fires.
  EventId schedule_at(SimTime t, Callback cb);

  /// Schedule `cb` after `delay` from now.
  EventId schedule_after(SimTime delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Cancel a pending event. Returns false if it already fired or was
  /// already cancelled.
  bool cancel(EventId id);

  /// Register a periodic timer firing every `period`, first at
  /// now() + first_delay (defaults to one full period). The callback keeps
  /// firing until cancel_timer().
  TimerId add_timer(SimTime period, Callback cb);
  TimerId add_timer(SimTime period, SimTime first_delay, Callback cb);

  /// Stop a periodic timer. Returns false if unknown/already cancelled.
  bool cancel_timer(TimerId id);

  /// Run until the queue drains (or `max_events` fire). Returns the number
  /// of events processed.
  std::uint64_t run(std::uint64_t max_events = ~std::uint64_t{0});

  /// Process every event with time <= t, then advance the clock to t.
  /// Returns the number of events processed.
  std::uint64_t run_until(SimTime t);

  /// Pending (non-cancelled) event count, periodic timers included.
  std::size_t pending_events() const { return pending_.size(); }

  std::uint64_t events_processed() const { return processed_; }

 private:
  struct HeapEntry {
    SimTime time;
    EventId id;
    // Min-heap ordering: earliest time first, then earliest id.
    friend bool operator>(const HeapEntry& a, const HeapEntry& b) {
      return a.time != b.time ? a.time > b.time : a.id > b.id;
    }
  };

  struct TimerState {
    SimTime period;
    Callback cb;
    EventId next_event = kInvalidEvent;
  };

  /// Pop and run the earliest event. Precondition: queue non-empty after
  /// discarding cancelled entries. Returns false if nothing runnable.
  bool step();

  void arm_timer(TimerId id);
  void fire_timer(TimerId id);

  SimTime now_ = 0;
  EventId next_id_ = 1;
  TimerId next_timer_id_ = 1;
  std::uint64_t processed_ = 0;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>
      heap_;
  std::unordered_map<EventId, Callback> pending_;
  std::unordered_map<TimerId, TimerState> timers_;
};

}  // namespace cbps::sim
