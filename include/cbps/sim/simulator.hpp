// Discrete-event simulation engines.
//
// SimulatorBase is the seam the overlay/network/pub-sub layers program
// against: scheduling, periodic timers, domain registration, and run
// control. Two engines implement it:
//
//   - Simulator (this header): the single-threaded engine. One event
//     core, events processed in canonical (time, key) order.
//   - ParallelSimulator (parallel_simulator.hpp): the epoch-synchronous
//     sharded engine. Nodes are sharded across worker threads; each
//     conservative-lookahead window executes shard-locally and
//     cross-shard messages are exchanged at barriers. Bit-identical to
//     the serial engine (see event_core.hpp for the ordering contract).
//
// Domains: every simulated actor that needs its events isolated onto a
// shard registers a *domain* (register_domain()). Domain 0 is the
// global domain — drivers, samplers, fault scripts — whose events are
// barriers in the parallel engine. Single-domain users (unit tests,
// micro-benches) can ignore the concept entirely; everything defaults
// to domain 0 and behaves exactly like the classic serial engine.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cbps/common/assert.hpp"
#include "cbps/common/exec_context.hpp"
#include "cbps/common/inline_function.hpp"
#include "cbps/sim/event_core.hpp"
#include "cbps/sim/time.hpp"

namespace cbps::sim {

class SimulatorBase {
 public:
  using Callback = common::InlineFunction<void(), 48>;
  using EventId = std::uint64_t;
  using TimerId = std::uint64_t;
  using Domain = common::Domain;

  static constexpr EventId kInvalidEvent = 0;

  SimulatorBase() = default;
  SimulatorBase(const SimulatorBase&) = delete;
  SimulatorBase& operator=(const SimulatorBase&) = delete;
  virtual ~SimulatorBase() = default;

  /// Current simulated time. Inside an event callback this is the event's
  /// time (on any engine); outside it is the engine clock.
  virtual SimTime now() const = 0;

  /// Schedule `cb` at absolute time `t` (>= now()). The event is keyed
  /// by — and, on the parallel engine, placed on the shard of — the
  /// current acting domain (common::exec_context().actor_domain).
  /// Returns a handle that can cancel the event before it fires.
  virtual EventId schedule_at(SimTime t, Callback cb) = 0;

  /// Schedule `cb` after `delay` from now.
  EventId schedule_after(SimTime delay, Callback cb) {
    return schedule_at(now() + delay, std::move(cb));
  }

  /// Schedule `cb` to execute *as* domain `target` at absolute time `t`
  /// (network delivery: the receiver runs the callback). On the parallel
  /// engine the event is placed on the target's shard; called from a
  /// worker with a target on another shard, `t` must be at least one
  /// lookahead ahead and the returned handle is kInvalidEvent (a
  /// cross-shard event cannot be cancelled by its sender).
  virtual EventId schedule_for(Domain target, SimTime t, Callback cb) = 0;

  /// Cancel a pending event. Returns false if it already fired or was
  /// already cancelled. On the parallel engine, only the owning shard
  /// (or global context at a barrier) may cancel.
  virtual bool cancel(EventId id) = 0;

  /// Register a periodic timer firing every `period`, first at
  /// now() + first_delay (defaults to one full period). The timer is
  /// owned by the current acting domain (events keyed/placed like
  /// schedule_at). The callback keeps firing until cancel_timer().
  TimerId add_timer(SimTime period, Callback cb) {
    return add_timer(period, period, std::move(cb));
  }
  virtual TimerId add_timer(SimTime period, SimTime first_delay,
                            Callback cb) = 0;

  /// Stop a periodic timer. Returns false if unknown/already cancelled.
  virtual bool cancel_timer(TimerId id) = 0;

  /// Run until the queue drains (or at least `max_events` fire — the
  /// parallel engine only checks the budget between epochs). Returns the
  /// number of events processed.
  virtual std::uint64_t run(std::uint64_t max_events = ~std::uint64_t{0}) = 0;

  /// Process every event with time <= t, then advance the clock to t.
  /// Returns the number of events processed.
  virtual std::uint64_t run_until(SimTime t) = 0;

  /// Pending (non-cancelled) event count, periodic timers included.
  virtual std::size_t pending_events() const = 0;

  virtual std::uint64_t events_processed() const = 0;

  /// Heap-health accounting (surfaces in --metrics-json): lazy-deleted
  /// entries skipped at pop time, and full heap rebuilds triggered when
  /// stale entries outnumbered live ones.
  virtual std::uint64_t stale_entries_skipped() const = 0;
  virtual std::uint64_t heap_compactions() const = 0;

  /// Allocate a fresh scheduling domain (dense, starting at 1). The
  /// parallel engine assigns the domain to a shard; the serial engine
  /// only uses it for key attribution.
  virtual Domain register_domain() = 0;

  /// Worker threads executing events (1 for the serial engine).
  virtual unsigned thread_count() const { return 1; }
};

/// The single-threaded engine: one EventCore processed in canonical
/// (time, key) order. Final so direct users (micro-benches, tests)
/// devirtualize the hot path.
class Simulator final : public SimulatorBase {
 public:
  Simulator();

  SimTime now() const override { return now_; }
  EventId schedule_at(SimTime t, Callback cb) override;
  EventId schedule_for(Domain target, SimTime t, Callback cb) override;
  bool cancel(EventId id) override;
  using SimulatorBase::add_timer;
  TimerId add_timer(SimTime period, SimTime first_delay,
                    Callback cb) override;
  bool cancel_timer(TimerId id) override;
  std::uint64_t run(std::uint64_t max_events = ~std::uint64_t{0}) override;
  std::uint64_t run_until(SimTime t) override;
  std::size_t pending_events() const override { return core_.live(); }
  std::uint64_t events_processed() const override {
    return core_.processed();
  }
  std::uint64_t stale_entries_skipped() const override {
    return core_.stale_skipped();
  }
  std::uint64_t heap_compactions() const override {
    return core_.compactions();
  }
  Domain register_domain() override;

 private:
  /// Canonical key for a fresh event, attributed to the acting domain.
  std::uint64_t next_key();

  /// Pop and run the earliest event. Returns false if nothing runnable.
  bool step();

  void fire_timer(TimerId id);

  detail::EventCore core_;
  SimTime now_ = 0;
  // Per-domain schedule counters (index = domain; [0] is global).
  std::vector<std::uint64_t> dom_seq_;
};

}  // namespace cbps::sim
