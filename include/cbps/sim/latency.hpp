// Per-message network latency models.
//
// The paper fixes the message delay to 50 ms (§5.1); a jittered model is
// provided for robustness experiments.
#pragma once

#include <memory>

#include "cbps/common/rng.hpp"
#include "cbps/sim/time.hpp"

namespace cbps::sim {

/// Samples the one-hop delivery delay of a message.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  virtual SimTime sample(Rng& rng) = 0;

  /// Minimum delay this model can ever emit — the conservative
  /// lookahead of the parallel engine's epoch windows. Models that
  /// cannot bound themselves keep the base default of 0, which makes
  /// the engine factory fall back to serial execution (a zero lookahead
  /// would deadlock the barrier protocol).
  virtual SimTime min_delay() const { return 0; }
};

/// Constant delay (the paper's model: 50 ms).
class FixedLatency final : public LatencyModel {
 public:
  explicit FixedLatency(SimTime delay) : delay_(delay) {}
  SimTime sample(Rng&) override { return delay_; }
  SimTime min_delay() const override { return delay_; }

 private:
  SimTime delay_;
};

/// Uniform delay in [lo, hi].
class UniformLatency final : public LatencyModel {
 public:
  UniformLatency(SimTime lo, SimTime hi) : lo_(lo), hi_(hi) {
    CBPS_ASSERT(lo <= hi);
  }
  SimTime min_delay() const override { return lo_; }
  SimTime sample(Rng& rng) override {
    return static_cast<SimTime>(rng.uniform_int(
        static_cast<std::int64_t>(lo_), static_cast<std::int64_t>(hi_)));
  }

 private:
  SimTime lo_;
  SimTime hi_;
};

/// The paper's default.
inline std::unique_ptr<LatencyModel> default_latency() {
  return std::make_unique<FixedLatency>(ms(50));
}

}  // namespace cbps::sim
