// Epoch-synchronous sharded discrete-event engine.
//
// Nodes (domains) are sharded across worker threads. Execution
// alternates between two modes:
//
//   - Global batches: whenever the earliest pending event belongs to
//     the global domain (drivers, samplers, fault scripts), every
//     global event at that timestamp runs exclusively on the calling
//     thread, in canonical key order. Global context may touch any
//     shard (joins, crashes, cross-shard cancels) — nothing else runs.
//   - Parallel windows: otherwise, with m the earliest pending shard
//     event and L the conservative lookahead (the minimum delay the
//     network's latency model can emit), all shards concurrently
//     process their events with time < min(m + L, next global event).
//     Within a shard, events run in canonical (time, key) order.
//
// Shard isolation is the engines' contract with the network layer:
// during a window a shard only touches its own nodes' state, striped /
// atomic metrics, and its own event core. The only cross-shard
// interaction is schedule_for() to another shard, which must be at
// least one lookahead in the future (network transmission — asserted);
// those land in a per-shard outbox that the barrier merges. Because
// every event carries a canonical key and heaps order by (time, key),
// the merge order is deterministic no matter which shard produced what
// when — runs are bit-identical to the serial engine and to themselves
// at any shard count (see event_core.hpp for the full argument).
//
// The engine asserts lookahead > 0 — a zero-delay latency model would
// make every window empty. Callers (PubSubSystem) fall back to the
// serial engine for such models instead of constructing this one.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cbps/common/thread_pool.hpp"
#include "cbps/sim/simulator.hpp"

namespace cbps::sim {

class ParallelSimulator final : public SimulatorBase {
 public:
  /// `threads` worker shards (>= 1), conservative lookahead `lookahead`
  /// (> 0; the minimum possible network delay).
  ParallelSimulator(unsigned threads, SimTime lookahead);
  ~ParallelSimulator() override;

  SimTime now() const override;
  EventId schedule_at(SimTime t, Callback cb) override;
  EventId schedule_for(Domain target, SimTime t, Callback cb) override;
  bool cancel(EventId id) override;
  using SimulatorBase::add_timer;
  TimerId add_timer(SimTime period, SimTime first_delay,
                    Callback cb) override;
  bool cancel_timer(TimerId id) override;
  std::uint64_t run(std::uint64_t max_events = ~std::uint64_t{0}) override;
  std::uint64_t run_until(SimTime t) override;
  std::size_t pending_events() const override;
  std::uint64_t events_processed() const override;
  std::uint64_t stale_entries_skipped() const override;
  std::uint64_t heap_compactions() const override;
  Domain register_domain() override;
  unsigned thread_count() const override { return shards_; }

  SimTime lookahead() const { return lookahead_; }

 private:
  // Domains are assigned to shards in blocks of four so the four
  // schedule counters sharing one cache line always belong to the same
  // shard (no false sharing on the key-allocation hot path).
  static constexpr std::uint32_t kDomainBlock = 4;

  struct alignas(64) SeqBlock {
    std::uint64_t v[kDomainBlock] = {0, 0, 0, 0};
  };

  /// A cross-shard event captured during a window, merged at the
  /// barrier. The key was already allocated at schedule_for() time, so
  /// merge order cannot affect execution order.
  struct OutboxEntry {
    std::uint32_t target_core;
    Domain target;
    SimTime time;
    std::uint64_t key;
    Callback cb;
  };

  struct CoreState {
    explicit CoreState(std::uint32_t idx) : ev(idx) {}
    detail::EventCore ev;
    SimTime cur_time = 0;             // clock of the running worker
    std::vector<OutboxEntry> outbox;  // filled during a window
  };

  /// Core index for a domain: 0 (the global core) for domain 0, else a
  /// block-cyclic assignment over the shard cores 1..shards_.
  std::uint32_t core_of(Domain d) const {
    return d == 0 ? 0 : 1 + ((d - 1) / kDomainBlock) % shards_;
  }

  std::uint64_t next_key(Domain actor);
  EventId place(std::uint32_t core, Domain target, SimTime t,
                std::uint64_t key, Callback cb);
  void run_shard(std::uint32_t core_idx, SimTime window_end);
  void run_global_batch(SimTime g);
  void fire_timer(std::uint32_t core_idx, std::uint64_t local_id);
  std::uint64_t run_loop(SimTime limit, std::uint64_t max_events);

  unsigned shards_;
  SimTime lookahead_;
  SimTime now_ = 0;         // global/barrier clock
  SimTime window_end_ = 0;  // exclusive bound of the running window
  std::uint64_t global_seq_ = 0;        // domain 0 schedule counter
  std::vector<SeqBlock> dom_seq_;       // domains >= 1, blocks of 4
  Domain next_domain_ = 1;
  std::vector<std::unique_ptr<CoreState>> cores_;  // [0] = global core
  common::ThreadPool pool_;
};

}  // namespace cbps::sim
