// Shared event-queue machinery for the two simulation engines.
//
// An EventCore is one time-ordered event heap plus the slot storage and
// periodic-timer table behind it. The serial Simulator owns exactly one;
// the ParallelSimulator owns one per shard plus one for the global
// domain. The schedule/fire/cancel cycle is allocation-free in steady
// state (generation-stamped slots recycled through a free list, inline
// callbacks, a flat vector heap), and stale entries left behind by
// cancel() are skipped lazily and compacted away once they dominate.
//
// Ordering — the determinism contract. Every event carries a canonical
// 64-bit key
//
//     key = (scheduling domain << 40) | per-domain schedule counter
//
// and each heap orders by (time, key). Because a domain's counter is
// only ever bumped while that domain is executing (or, for the global
// domain, while the engine is between events), the sequence of keys a
// domain assigns is a pure function of its own execution history — not
// of how events from *other* domains interleave in wall-clock terms.
// Both engines therefore produce the same keys for the same logical
// events, and (time, key) is a total order that is identical across the
// serial engine and any shard count. Domain 0 keys sort before all node
// keys at equal time, which is exactly the "global events at time t run
// before node events at t" barrier rule of the parallel engine.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cbps/common/assert.hpp"
#include "cbps/common/exec_context.hpp"
#include "cbps/common/inline_function.hpp"
#include "cbps/sim/time.hpp"

namespace cbps::sim::detail {

using Domain = common::Domain;

/// Canonical event key: scheduling domain in the high 24 bits, that
/// domain's schedule counter in the low 40. Uniqueness needs < 2^24
/// domains and < 2^40 events per domain; both asserted where bumped.
inline std::uint64_t make_key(Domain domain, std::uint64_t dseq) {
  CBPS_ASSERT(domain < (1u << 24));
  CBPS_ASSERT(dseq < (std::uint64_t{1} << 40));
  return (static_cast<std::uint64_t>(domain) << 40) | dseq;
}

class EventCore {
 public:
  using Callback = common::InlineFunction<void(), 48>;
  using EventId = std::uint64_t;

  static constexpr EventId kInvalidEvent = 0;
  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

  // EventId layout: [core:6][generation:30][slot index + 1:28]. The +1
  // keeps core 0 / generation 0 / slot 0 distinct from kInvalidEvent. A
  // slot's generation bumps on every release, so handles to fired,
  // cancelled, or recycled events go stale (2^30 reuses to alias).
  static EventId make_id(std::uint32_t core, std::uint32_t gen,
                         std::uint32_t slot) {
    CBPS_ASSERT(core < 64 && slot < ((1u << 28) - 1));
    return (static_cast<EventId>(core) << 58) |
           (static_cast<EventId>(gen & ((1u << 30) - 1)) << 28) |
           (static_cast<EventId>(slot) + 1);
  }
  static std::uint32_t core_of_id(EventId id) {
    return static_cast<std::uint32_t>(id >> 58);
  }
  static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id & ((1u << 28) - 1)) - 1;
  }
  static std::uint32_t gen_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 28) & ((1u << 30) - 1);
  }

  explicit EventCore(std::uint32_t core_index = 0) : core_(core_index) {}
  EventCore(const EventCore&) = delete;
  EventCore& operator=(const EventCore&) = delete;

  struct Popped {
    SimTime time = 0;
    std::uint64_t key = 0;
    Domain target = 0;  // domain the callback executes as
    Callback cb;
  };

  /// Insert an event. `key` is the canonical key (already attributed to
  /// the scheduling domain by the engine); `target` is the domain the
  /// callback will execute as.
  EventId schedule(SimTime t, std::uint64_t key, Domain target,
                   Callback cb) {
    CBPS_ASSERT_MSG(t >= floor_, "scheduling into the past");
    CBPS_ASSERT(static_cast<bool>(cb));
    std::uint32_t slot;
    if (free_head_ != kNoSlot) {
      slot = free_head_;
      free_head_ = slots_[slot].next_free;
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& s = slots_[slot];
    s.cb = std::move(cb);
    s.armed = true;
    s.target = target;
    const EventId id = make_id(core_, s.gen, slot);
    heap_.push_back(HeapEntry{t, key, id});
    std::push_heap(heap_.begin(), heap_.end(), HeapGreater{});
    ++live_;
    return id;
  }

  /// Cancel a pending event of *this* core. Returns false if it already
  /// fired or was already cancelled.
  bool cancel(EventId id) {
    if (!is_live(id)) return false;
    release(slot_of(id));
    // The heap entry stays behind and is skipped lazily when popped —
    // unless stale entries now dominate, in which case rebuild.
    maybe_compact();
    return true;
  }

  bool is_live(EventId id) const {
    const std::uint32_t slot = slot_of(id);
    return slot < slots_.size() && slots_[slot].armed &&
           slots_[slot].gen == gen_of(id);
  }

  /// Time of the earliest live event (kSimTimeNever when empty). Pops
  /// stale (cancelled) heads as a side effect.
  SimTime min_time() {
    skim_stale();
    return heap_.empty() ? kSimTimeNever : heap_.front().time;
  }

  /// Pop the earliest live event. Returns false when the core is empty.
  bool pop(Popped& out) {
    skim_stale();
    if (heap_.empty()) return false;
    const HeapEntry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), HeapGreater{});
    heap_.pop_back();
    CBPS_ASSERT(top.time >= floor_);
    floor_ = top.time;
    const std::uint32_t slot = slot_of(top.id);
    out.time = top.time;
    out.key = top.key;
    out.target = slots_[slot].target;
    out.cb = std::move(slots_[slot].cb);
    release(slot);
    ++processed_;
    return true;
  }

  // --- periodic timers ----------------------------------------------------
  // The core stores the timer table; the engine drives arming/firing so
  // it can attribute the rearm key to the timer's owner domain.
  struct TimerState {
    SimTime period = 0;
    // Shared so a fire can keep the body alive while the callback itself
    // cancels the timer (which erases this state).
    std::shared_ptr<Callback> cb;
    EventId next_event = kInvalidEvent;
    Domain owner = 0;
  };
  std::unordered_map<std::uint64_t, TimerState> timers;
  std::uint64_t next_timer_seq = 1;

  // --- accounting ---------------------------------------------------------
  std::size_t live() const { return live_; }
  std::uint64_t processed() const { return processed_; }
  std::uint64_t compactions() const { return compactions_; }
  std::uint64_t stale_skipped() const { return stale_skipped_; }
  /// Time of the last popped event (the core-local clock floor).
  SimTime floor_time() const { return floor_; }
  std::uint32_t core_index() const { return core_; }

 private:
  struct Slot {
    Callback cb;
    std::uint32_t gen = 0;
    std::uint32_t next_free = kNoSlot;
    Domain target = 0;
    bool armed = false;
  };

  struct HeapEntry {
    SimTime time;
    std::uint64_t key;  // canonical (domain, seq) key — see file header
    EventId id;
    // Min-heap ordering: earliest time first, then canonical key. Keys
    // are unique, so pop order is a total order independent of the
    // heap's internal (insertion-dependent) layout.
    friend bool operator>(const HeapEntry& a, const HeapEntry& b) {
      return a.time != b.time ? a.time > b.time : a.key > b.key;
    }
  };

  struct HeapGreater {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      return a > b;
    }
  };

  /// Free the slot behind `id` (bumps generation, recycles storage).
  void release(std::uint32_t slot) {
    Slot& s = slots_[slot];
    s.cb = nullptr;
    s.armed = false;
    ++s.gen;
    s.next_free = free_head_;
    free_head_ = slot;
    --live_;
  }

  void skim_stale() {
    while (!heap_.empty() && !is_live(heap_.front().id)) {
      std::pop_heap(heap_.begin(), heap_.end(), HeapGreater{});
      heap_.pop_back();
      ++stale_skipped_;
    }
  }

  /// Rebuild the heap without stale entries once they dominate.
  void maybe_compact() {
    const std::size_t stale = heap_.size() - live_;
    if (stale <= live_ || heap_.size() < 64) return;
    std::erase_if(heap_,
                  [this](const HeapEntry& e) { return !is_live(e.id); });
    std::make_heap(heap_.begin(), heap_.end(), HeapGreater{});
    ++compactions_;
  }

  std::uint32_t core_;
  std::vector<HeapEntry> heap_;  // min-heap via std::push_heap/pop_heap
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::size_t live_ = 0;  // armed slots == non-stale heap entries
  std::uint64_t processed_ = 0;
  std::uint64_t compactions_ = 0;
  std::uint64_t stale_skipped_ = 0;
  SimTime floor_ = 0;
};

}  // namespace cbps::sim::detail
