// A Pastry-style prefix-routing overlay (Rowstron & Druschel,
// Middleware '01) implementing the same overlay::OverlayNode interface
// as the Chord substrate.
//
// The paper claims its architecture "can use any overlay routing scheme"
// (§3.1 footnote 1); this module demonstrates that portability: the
// whole CB-pub/sub layer runs unchanged on top of prefix routing.
//
// Design notes:
//  - Node identifiers live on the same 2^m ring; a node covers
//    (predecessor, id], the successor convention the pub/sub layer
//    assumes, with the predecessor taken from the leaf set.
//  - The routing table has one row per identifier bit: row i points to a
//    node that shares the top i bits with this node and differs at bit
//    i (binary Plaxton routing, O(log N) hops).
//  - The leaf set holds the nearest ring neighbors on both sides and
//    finishes every route.
//  - m-cast reuses the shared Figure-4 segment partitioning, with
//    routing-table + leaf nodes as delegation candidates — every node
//    still receives the multicast at most once.
//  - The network supports statically built topologies (the membership
//    dynamics of the paper's evaluation run on Chord).
#pragma once

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <variant>
#include <vector>

#include "cbps/common/ring.hpp"
#include "cbps/metrics/registry.hpp"
#include "cbps/metrics/trace.hpp"
#include "cbps/overlay/node.hpp"
#include "cbps/overlay/payload.hpp"
#include "cbps/sim/latency.hpp"
#include "cbps/sim/loss.hpp"
#include "cbps/sim/simulator.hpp"

namespace cbps::pastry {

struct PastryConfig {
  RingParams ring{13};
  /// Leaf-set entries per side.
  std::size_t leaf_set_size = 4;
  std::uint32_t max_route_hops = 512;

  /// Fault injection + ack/retry reliability, mirroring ChordConfig:
  /// a non-zero loss rate drops transmissions uniformly at random and
  /// arms hop-by-hop acks for application traffic; 0 disables both.
  double loss_rate = 0.0;
  std::uint32_t max_retries = 5;
  sim::SimTime retry_base = sim::ms(250);
  bool reliable_transport() const { return loss_rate > 0.0; }
};

// Wire messages (static topology: application traffic only).
struct RouteMsg {
  Key target = 0;
  overlay::PayloadPtr payload;
  std::uint32_t hops = 0;
  std::uint64_t seq = 0;  // reliability sequence id (0 = no ack wanted)
  std::uint64_t parent_span = 0;  // trace: span of the previous hop
};
struct McastMsg {
  std::vector<Key> targets;
  overlay::PayloadPtr payload;
  std::uint32_t hops = 0;
  std::uint64_t seq = 0;
  std::uint64_t parent_span = 0;  // trace: span of the delegating split
};
struct ChainMsg {
  std::vector<Key> targets;
  overlay::PayloadPtr payload;
  std::uint32_t hops = 0;
  std::uint64_t seq = 0;
  std::uint64_t parent_span = 0;  // trace: span of the previous hop
};
struct NeighborMsg {
  overlay::PayloadPtr payload;
  std::uint64_t seq = 0;
};
/// Hop-level acknowledgment; field deliberately not named `seq` so acks
/// are never themselves ack-eligible.
struct AckMsg {
  std::uint64_t acked_seq = 0;
};
using WireMessage =
    std::variant<RouteMsg, McastMsg, ChainMsg, NeighborMsg, AckMsg>;

/// Pointer to the reliability sequence field of ack-eligible messages,
/// nullptr for AckMsg.
inline std::uint64_t* seq_field(WireMessage& msg) {
  return std::visit(
      [](auto& m) -> std::uint64_t* {
        if constexpr (requires { m.seq; }) {
          return &m.seq;
        } else {
          return nullptr;
        }
      },
      msg);
}

inline const std::uint64_t* seq_field(const WireMessage& msg) {
  return seq_field(const_cast<WireMessage&>(msg));
}

class PastryNetwork;

class PastryNode final : public overlay::OverlayNode {
 public:
  /// `domain` is this node's scheduling domain, registered with the
  /// engine by PastryNetwork (see ChordNode for the contract).
  PastryNode(PastryNetwork& net, Key id, std::string name,
             common::Domain domain);

  PastryNode(const PastryNode&) = delete;
  PastryNode& operator=(const PastryNode&) = delete;

  // --- overlay::OverlayNode --------------------------------------------
  Key id() const override { return id_; }
  RingParams ring() const override;
  void send(Key key, overlay::PayloadPtr payload) override;
  void m_cast(std::vector<Key> keys, overlay::PayloadPtr payload) override;
  void chain_cast(std::vector<Key> keys,
                  overlay::PayloadPtr payload) override;
  void send_to_successor(overlay::PayloadPtr payload) override;
  void send_to_predecessor(overlay::PayloadPtr payload) override;
  Key successor_id() const override;
  Key predecessor_id() const override;
  void set_app(overlay::OverlayApp* app) override { app_ = app; }

  // --- introspection ------------------------------------------------------
  const std::string& name() const { return name_; }
  common::Domain domain() const override { return domain_; }
  bool covers(Key k) const;
  const std::vector<std::optional<Key>>& routing_table() const {
    return table_;
  }
  const std::vector<Key>& leaf_predecessors() const { return leaf_pred_; }
  const std::vector<Key>& leaf_successors() const { return leaf_succ_; }

  /// Install exact state (static topology construction). Leaves are
  /// nearest-first; table entry i shares i top bits and differs at bit i.
  void install_state(std::vector<Key> leaf_pred, std::vector<Key> leaf_succ,
                     std::vector<std::optional<Key>> table);

  void receive(Key from, WireMessage msg);

  /// Drop the pending-send (ack/retry) table and cancel its timers.
  void cancel_pending_sends();
  std::size_t pending_send_count() const { return pending_sends_.size(); }

 private:
  const PastryConfig& config() const;
  bool transmit(Key to, WireMessage msg, overlay::MessageClass cls);
  bool transmit_reliable(Key to, WireMessage msg,
                         overlay::MessageClass cls);
  void retransmit(std::uint64_t seq);
  void handle_ack(std::uint64_t acked_seq);

  /// Next hop toward `key`: leaf set if in range, else prefix routing,
  /// else the closest preceding known node (guaranteed progress).
  std::optional<Key> next_hop(Key key) const;
  /// Number of leading bits `key` shares with this node's id.
  unsigned shared_prefix_bits(Key key) const;
  std::vector<Key> known_nodes_by_distance() const;

  void handle_route(RouteMsg msg);
  void deliver_route(const RouteMsg& msg);
  void run_mcast(std::vector<Key> keys, const overlay::PayloadPtr& payload,
                 std::uint32_t hops, bool initiator,
                 std::uint64_t parent_span = 0);
  void run_chain(std::vector<Key> keys, const overlay::PayloadPtr& payload,
                 std::uint32_t hops, bool initiator,
                 std::uint64_t parent_span = 0);
  void forward_chain(ChainMsg msg);

  PastryNetwork& net_;
  Key id_;
  std::string name_;
  common::Domain domain_ = common::kGlobalDomain;
  overlay::OverlayApp* app_ = nullptr;

  std::vector<Key> leaf_pred_;  // nearest first (counter-clockwise)
  std::vector<Key> leaf_succ_;  // nearest first (clockwise)
  std::vector<std::optional<Key>> table_;  // one row per identifier bit

  // Ack/retry reliability layer, mirroring ChordNode.
  struct PendingSend {
    Key to = 0;
    WireMessage msg;
    overlay::MessageClass cls = overlay::MessageClass::kControl;
    std::uint32_t retries = 0;
    sim::SimTime timeout = 0;
    sim::Simulator::EventId timer = sim::Simulator::kInvalidEvent;
  };
  std::unordered_map<std::uint64_t, PendingSend> pending_sends_;
  std::uint64_t next_send_seq_ = 1;
  std::unordered_map<Key, std::unordered_set<std::uint64_t>> seen_seqs_;
};

/// Simulation container: owns the nodes, the wire and a routing oracle.
class PastryNetwork {
 public:
  PastryNetwork(sim::SimulatorBase& sim, PastryConfig cfg,
                std::uint64_t seed,
                std::unique_ptr<sim::LatencyModel> latency = nullptr);
  ~PastryNetwork();

  PastryNetwork(const PastryNetwork&) = delete;
  PastryNetwork& operator=(const PastryNetwork&) = delete;

  PastryNode& add_node(const std::string& name);
  PastryNode& add_node_with_id(Key id, std::string name);

  /// Build exact leaf sets and routing tables for all nodes.
  void build_static_ring();

  PastryNode* node(Key id);
  std::size_t node_count() const { return nodes_.size(); }
  std::vector<Key> ids() const { return ids_; }
  /// Node by dense index, in id order. O(1): ids are a sorted vector.
  PastryNode& node_at(std::size_t i);
  Key oracle_successor(Key key) const;

  bool transmit(Key from, Key to, WireMessage msg,
                overlay::MessageClass cls);
  void self_deliver(std::function<void()> action);

  sim::SimulatorBase& sim() { return sim_; }
  overlay::TrafficStats& traffic() { return traffic_; }
  metrics::Registry& registry() { return registry_; }
  const PastryConfig& config() const { return cfg_; }
  RingParams ring() const { return cfg_.ring; }

  /// Install a per-run trace sink (nullptr = tracing off, the default).
  void set_trace_sink(metrics::TraceSink* sink) { trace_sink_ = sink; }
  metrics::TraceSink* trace_sink() const { return trace_sink_; }

  /// Pre-resolved registry handles for per-message hot paths (mirrors
  /// ChordNetwork::HotStats).
  struct HotStats {
    explicit HotStats(metrics::Registry& reg);

    metrics::Counter* send_to_dead;
    metrics::Counter* retransmits;
    metrics::Counter* send_failed;
    metrics::Counter* dup_suppressed;
    metrics::Counter* route_dropped;
    metrics::Counter* route_no_candidate;
    metrics::Counter* mcast_dropped_keys;
    metrics::Counter* chain_dropped;
    metrics::Counter* chain_no_candidate;
    metrics::Counter* net_lost;
    std::array<metrics::Counter*, overlay::kMessageClassCount>
        net_lost_by_class;
    metrics::Histogram* route_hops;
    metrics::Histogram* mcast_fanout;
    metrics::Histogram* retries_per_send;
  };
  HotStats& hot() { return hot_; }

 private:
  // Per-sender wire state (domain + dedicated latency/loss streams +
  // loss-channel clone); see ChordNetwork::WireState for the rationale.
  struct WireState {
    common::Domain domain = common::kGlobalDomain;
    Rng latency_rng;
    Rng loss_rng;
    std::unique_ptr<sim::LossModel> loss;  // null = lossless channel
  };

  sim::SimulatorBase& sim_;
  PastryConfig cfg_;
  std::uint64_t seed_;
  Rng rng_;
  std::unique_ptr<sim::LatencyModel> latency_;
  std::unique_ptr<sim::LossModel> loss_;  // prototype; null = lossless
  std::unordered_map<Key, WireState> wire_;
  overlay::TrafficStats traffic_;
  metrics::Registry registry_;
  HotStats hot_{registry_};
  metrics::TraceSink* trace_sink_ = nullptr;
  std::map<Key, std::unique_ptr<PastryNode>> nodes_;
  std::vector<Key> ids_;  // sorted
};

}  // namespace cbps::pastry
