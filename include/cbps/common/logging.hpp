// Minimal leveled logger with simulation context.
//
// Simulation runs are chatty at debug level and silent by default; the
// logger is a global singleton so examples can flip verbosity with one
// call. It is the one piece of state shared between concurrently-running
// simulations (the sweep runner executes one per worker thread), so the
// level is atomic and lines are written whole under a mutex.
//
// Context: log lines are prefixed with the current simulated time and
// node id when available. Both live in thread-local state set by RAII
// scope guards — the simulator's dispatch loop installs a clock
// (logctx::ScopedClock), and message receive paths install the handling
// node's id (logctx::ScopedNode) — so concurrent sweep workers each see
// their own simulation's context.
//
// The logger also keeps a bounded ring of the most recent formatted
// lines (including lines below the console level, down to ring_level),
// which the invariant auditor dumps when a post-fault check fails: the
// lines leading up to the violation are usually the story.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace cbps {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Thread-local log context. Plain function-pointer clock so the common
/// layer needs no dependency on the simulator: the simulator installs
/// `{this, &now_fn}` for the duration of its dispatch loop.
namespace logctx {

struct State {
  const void* clock_ctx = nullptr;
  std::uint64_t (*clock_now_us)(const void*) = nullptr;
  std::uint64_t node = 0;
  bool has_node = false;
};

State& state();

/// Installs a sim-time source for this thread; restores on destruction.
class ScopedClock {
 public:
  ScopedClock(const void* ctx, std::uint64_t (*now_us)(const void*)) {
    State& s = state();
    saved_ctx_ = s.clock_ctx;
    saved_fn_ = s.clock_now_us;
    s.clock_ctx = ctx;
    s.clock_now_us = now_us;
  }
  ~ScopedClock() {
    State& s = state();
    s.clock_ctx = saved_ctx_;
    s.clock_now_us = saved_fn_;
  }
  ScopedClock(const ScopedClock&) = delete;
  ScopedClock& operator=(const ScopedClock&) = delete;

 private:
  const void* saved_ctx_;
  std::uint64_t (*saved_fn_)(const void*);
};

/// Tags log lines with the node currently handling a message.
class ScopedNode {
 public:
  explicit ScopedNode(std::uint64_t node) {
    State& s = state();
    saved_node_ = s.node;
    saved_has_ = s.has_node;
    s.node = node;
    s.has_node = true;
  }
  ~ScopedNode() {
    State& s = state();
    s.node = saved_node_;
    s.has_node = saved_has_;
  }
  ScopedNode(const ScopedNode&) = delete;
  ScopedNode& operator=(const ScopedNode&) = delete;

 private:
  std::uint64_t saved_node_;
  bool saved_has_;
};

}  // namespace logctx

class Logger {
 public:
  static Logger& instance() {
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }

  /// Lines below the console level but at/above the ring level are
  /// still formatted and kept in the recent-lines ring.
  void set_ring_level(LogLevel level) {
    ring_level_.store(level, std::memory_order_relaxed);
  }
  LogLevel ring_level() const {
    return ring_level_.load(std::memory_order_relaxed);
  }

  bool enabled(LogLevel level) const {
    return level >= this->level() || level >= ring_level();
  }

  void write(LogLevel level, std::string_view msg);

  /// Most recent formatted lines, oldest first (bounded; see kRingCap).
  std::vector<std::string> recent_lines() const;
  /// Dump the ring to `os` and clear it (used on invariant failure).
  void dump_recent(std::ostream& os);
  void clear_recent();

  static constexpr std::size_t kRingCap = 256;

 private:
  Logger() = default;
  // detlint: concurrency-ok(global log level read by concurrent sweep workers)
  std::atomic<LogLevel> level_ = LogLevel::kWarn;
  // detlint: concurrency-ok(global log level read by concurrent sweep workers)
  std::atomic<LogLevel> ring_level_ = LogLevel::kInfo;
  // detlint: concurrency-ok(whole-line console/ring mutex; log text never feeds run state)
  mutable std::mutex write_mu_;
  std::deque<std::string> ring_;
};

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().write(level_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace cbps

#define CBPS_LOG(level)                                      \
  if (!::cbps::Logger::instance().enabled(level)) {          \
  } else                                                     \
    ::cbps::detail::LogLine(level)

#define CBPS_LOG_DEBUG CBPS_LOG(::cbps::LogLevel::kDebug)
#define CBPS_LOG_INFO CBPS_LOG(::cbps::LogLevel::kInfo)
#define CBPS_LOG_WARN CBPS_LOG(::cbps::LogLevel::kWarn)
#define CBPS_LOG_ERROR CBPS_LOG(::cbps::LogLevel::kError)
