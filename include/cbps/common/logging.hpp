// Minimal leveled logger.
//
// Simulation runs are chatty at debug level and silent by default; the
// logger is a global singleton so examples can flip verbosity with one
// call. It is the one piece of state shared between concurrently-running
// simulations (the sweep runner executes one per worker thread), so the
// level is atomic and lines are written whole under a mutex.
#pragma once

#include <atomic>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string_view>

namespace cbps {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static Logger& instance() {
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }
  bool enabled(LogLevel level) const { return level >= this->level(); }

  void write(LogLevel level, std::string_view msg);

 private:
  Logger() = default;
  std::atomic<LogLevel> level_ = LogLevel::kWarn;
  std::mutex write_mu_;
};

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().write(level_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace cbps

#define CBPS_LOG(level)                                      \
  if (!::cbps::Logger::instance().enabled(level)) {          \
  } else                                                     \
    ::cbps::detail::LogLine(level)

#define CBPS_LOG_DEBUG CBPS_LOG(::cbps::LogLevel::kDebug)
#define CBPS_LOG_INFO CBPS_LOG(::cbps::LogLevel::kInfo)
#define CBPS_LOG_WARN CBPS_LOG(::cbps::LogLevel::kWarn)
#define CBPS_LOG_ERROR CBPS_LOG(::cbps::LogLevel::kError)
