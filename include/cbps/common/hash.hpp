// Key derivation: consistent hashing of names and values into the ring.
#pragma once

#include <string_view>

#include "cbps/common/ring.hpp"
#include "cbps/common/sha1.hpp"
#include "cbps/common/types.hpp"

namespace cbps {

/// Consistent-hash an arbitrary string into the m-bit key space by taking
/// the leading 64 bits of its SHA-1 digest (big-endian) and reducing
/// modulo 2^m. This is how node identifiers are assigned (paper §3.1.1).
Key consistent_hash(std::string_view name, RingParams ring);

/// Hash a 64-bit integer the same way (used to reduce string attribute
/// values to numbers, paper §3.2 footnote 2).
Key consistent_hash(std::uint64_t v, RingParams ring);

}  // namespace cbps
