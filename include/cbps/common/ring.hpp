// Modular arithmetic on the Chord identifier circle.
//
// All keys live on a ring of size 2^m ("the Chord ring", paper §3.1.1).
// Interval-membership tests on the ring are the single most error-prone
// piece of any Chord implementation, so they are centralized here and
// covered by exhaustive property tests.
#pragma once

#include <cstdint>

#include "cbps/common/assert.hpp"
#include "cbps/common/types.hpp"

namespace cbps {

/// Parameters of the identifier circle: keys are m-bit values,
/// 1 <= m <= 63.
class RingParams {
 public:
  explicit constexpr RingParams(unsigned bits) : bits_(bits) {
    CBPS_ASSERT_MSG(bits >= 1 && bits <= 63, "ring bits out of range");
  }

  constexpr unsigned bits() const { return bits_; }

  /// Size of the key space, 2^m.
  constexpr std::uint64_t size() const { return std::uint64_t{1} << bits_; }

  /// Largest valid key, 2^m - 1. Doubles as the bit mask.
  constexpr Key max_key() const { return size() - 1; }

  /// Reduce an arbitrary 64-bit value into the key space.
  constexpr Key wrap(std::uint64_t v) const { return v & max_key(); }

  /// k + d on the ring.
  constexpr Key add(Key k, std::uint64_t d) const { return wrap(k + d); }

  /// k - d on the ring.
  constexpr Key sub(Key k, std::uint64_t d) const {
    return wrap(k + size() - (d & max_key()));
  }

  /// Clockwise distance from a to b: the number of steps to reach b from a
  /// moving in increasing-key direction. distance(a, a) == 0.
  constexpr std::uint64_t distance(Key a, Key b) const {
    return wrap(b + size() - a);
  }

  /// k in (a, b] on the ring. By Chord convention, (a, a] is the full ring:
  /// leaving a and travelling clockwise, every key including a itself is
  /// reached before "returning past" a.
  constexpr bool in_open_closed(Key a, Key b, Key k) const {
    if (a == b) return true;
    return distance(a, k) != 0 && distance(a, k) <= distance(a, b);
  }

  /// k in [a, b) on the ring; [a, a) is the full ring.
  constexpr bool in_closed_open(Key a, Key b, Key k) const {
    if (a == b) return true;
    return distance(a, k) < distance(a, b);
  }

  /// k in (a, b) on the ring; (a, a) is everything except a.
  constexpr bool in_open_open(Key a, Key b, Key k) const {
    if (a == b) return k != a;
    return distance(a, k) != 0 && distance(a, k) < distance(a, b);
  }

  /// k in [a, b] on the ring; [a, a] is just {a}.
  constexpr bool in_closed_closed(Key a, Key b, Key k) const {
    return distance(a, k) <= distance(a, b);
  }

  /// Number of keys in the closed ring interval [a, b].
  constexpr std::uint64_t closed_interval_size(Key a, Key b) const {
    return distance(a, b) + 1;
  }

  /// Midpoint of the closed ring interval [a, b]: the key reached after
  /// half the clockwise distance. Used to elect collecting agents
  /// (paper §4.3.2, "the middle node of the range").
  constexpr Key midpoint(Key a, Key b) const {
    return add(a, distance(a, b) / 2);
  }

  friend constexpr bool operator==(RingParams l, RingParams r) {
    return l.bits_ == r.bits_;
  }

 private:
  unsigned bits_;
};

}  // namespace cbps
