// Thread-local execution context shared by the simulation engines and
// the metrics layer.
//
// Both engines (serial and sharded-parallel) publish, for the event
// callback currently running on this thread:
//   - the simulated time of the event,
//   - the *acting domain* (who is doing the scheduling — used to
//     attribute canonical event keys, see event_core.hpp),
//   - the canonical key of the event itself plus a per-event emission
//     counter (the deterministic sort key for trace spans), and
//   - the metrics stripe (0 for the serial engine and for barrier /
//     global-context execution, shard index + 1 inside a parallel
//     worker) that lock-free striped statistics index with.
//
// Keeping this in common/ lets metrics code read the stripe without a
// dependency on the sim layer, and sim code stays the only writer.
#pragma once

#include <cstdint>

namespace cbps::common {

/// A scheduling/execution domain. 0 is the global domain (drivers,
/// samplers, fault scripts — everything that is not a simulated node);
/// simulated nodes register dense domains >= 1 with their engine.
using Domain = std::uint32_t;

inline constexpr Domain kGlobalDomain = 0;

struct ExecContext {
  std::uint64_t time = 0;        // simulated time of the running event
  Domain actor_domain = 0;       // who schedules / draws randomness
  std::uint64_t event_key = 0;   // canonical key of the running event
  std::uint32_t emit_seq = 0;    // per-event trace-span emission counter
  std::uint32_t stripe = 0;      // metrics stripe (0 = serial/global)
};

inline ExecContext& exec_context() {
  thread_local ExecContext ctx;
  return ctx;
}

/// RAII actor switch: node code wraps scheduling of *self-owned* events
/// (periodic timers, retransmit timers, buffer flushes) in an
/// ActorScope(my_domain) so the event is keyed by — and placed on the
/// shard of — its owner even when the node's code happens to run inside
/// a global-context callback (e.g. a subscribe issued by the driver).
/// This is what makes every cancel() a same-shard operation.
class ActorScope {
 public:
  explicit ActorScope(Domain d) : saved_(exec_context().actor_domain) {
    exec_context().actor_domain = d;
  }
  ~ActorScope() { exec_context().actor_domain = saved_; }
  ActorScope(const ActorScope&) = delete;
  ActorScope& operator=(const ActorScope&) = delete;

 private:
  Domain saved_;
};

}  // namespace cbps::common
