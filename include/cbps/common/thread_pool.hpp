// Fixed-size worker pool for running independent simulations in
// parallel (the sweep runner's engine).
//
// Deliberately minimal: submit() enqueues a task, wait() blocks until
// everything submitted so far has finished and rethrows the first task
// exception. The simulator itself stays single-threaded — parallelism
// only ever exists BETWEEN simulations (one Simulator/Registry/Rng per
// task), never inside one.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cbps::common {

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(std::size_t threads);

  /// Waits for every submitted task to finish, then joins the workers.
  /// Pending exceptions are swallowed here — call wait() first if you
  /// care about them.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Tasks must not submit to the pool they run on's
  /// wait() path (no nested wait()), but may submit() new tasks.
  void submit(std::function<void()> task);

  /// Block until all tasks submitted so far have completed. If any task
  /// threw, rethrows the first exception (and clears it, so the pool
  /// stays usable).
  void wait();

  std::size_t thread_count() const { return workers_.size(); }

  /// std::thread::hardware_concurrency(), but never 0.
  static std::size_t hardware_threads();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // dequeued but not yet finished
  std::exception_ptr first_error_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace cbps::common
