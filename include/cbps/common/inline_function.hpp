// Move-only callable wrapper with small-buffer storage.
//
// std::function heap-allocates any capture larger than the
// implementation's tiny inline buffer (and libstdc++'s only fits a
// pointer or two), which made every Simulator::schedule_after a malloc.
// InlineFunction stores callables up to `Capacity` bytes inline and only
// falls back to the heap beyond that; the simulator's hot-path lambdas
// ([this, id]-sized captures) always fit.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace cbps::common {

template <typename Signature, std::size_t Capacity = 48>
class InlineFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace<std::decay_t<F>>(std::forward<F>(f));
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  explicit operator bool() const { return vt_ != nullptr; }

  R operator()(Args... args) {
    return vt_->invoke(&buf_, std::forward<Args>(args)...);
  }

 private:
  struct VTable {
    R (*invoke)(void*, Args&&...);
    // dst == nullptr: destroy src. Otherwise move-construct into dst's
    // buffer and destroy src.
    void (*relocate)(void* src, void* dst);
  };

  template <typename F>
  static constexpr bool fits_inline =
      sizeof(F) <= Capacity && alignof(F) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<F>;

  template <typename F, typename... CtorArgs>
  void emplace(CtorArgs&&... ctor_args) {
    if constexpr (fits_inline<F>) {
      ::new (static_cast<void*>(&buf_)) F(std::forward<CtorArgs>(ctor_args)...);
      static const VTable vt = {
          [](void* buf, Args&&... args) -> R {
            return (*std::launder(reinterpret_cast<F*>(buf)))(
                std::forward<Args>(args)...);
          },
          [](void* src, void* dst) {
            F* f = std::launder(reinterpret_cast<F*>(src));
            if (dst != nullptr) ::new (dst) F(std::move(*f));
            f->~F();
          }};
      vt_ = &vt;
    } else {
      // Heap fallback: the buffer holds a single owning pointer.
      ::new (static_cast<void*>(&buf_))
          F*(new F(std::forward<CtorArgs>(ctor_args)...));
      static const VTable vt = {
          [](void* buf, Args&&... args) -> R {
            return (**std::launder(reinterpret_cast<F**>(buf)))(
                std::forward<Args>(args)...);
          },
          [](void* src, void* dst) {
            F** p = std::launder(reinterpret_cast<F**>(src));
            if (dst != nullptr) {
              ::new (dst) F*(*p);
            } else {
              delete *p;
            }
          }};
      vt_ = &vt;
    }
  }

  void move_from(InlineFunction& other) noexcept {
    if (other.vt_ == nullptr) return;
    other.vt_->relocate(&other.buf_, &buf_);
    vt_ = other.vt_;
    other.vt_ = nullptr;
  }

  void reset() {
    if (vt_ != nullptr) {
      vt_->relocate(&buf_, nullptr);
      vt_ = nullptr;
    }
  }

  const VTable* vt_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[Capacity < sizeof(void*)
                                                   ? sizeof(void*)
                                                   : Capacity];
};

}  // namespace cbps::common
