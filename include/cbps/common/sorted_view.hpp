// Deterministic iteration over unordered containers.
//
// The engine's bit-identical contract (see DESIGN.md "Determinism
// contract", rule D1) forbids letting hash-table iteration order reach
// anything observable: output bytes, metrics, trace spans, or the order
// in which messages are sent (message order shifts RNG draws and event
// keys, so a different bucket layout would change the whole run).
// `sorted_view()` is the one sanctioned way to walk an unordered
// container when the loop body has observable effects: it snapshots
// pointers to the elements and sorts them by key (maps) or by value
// (sets), making the walk a pure function of the container's *contents*.
//
// The snapshot is pointer-based, so the usual invalidation rule applies:
// do not insert into or erase from the underlying container while
// iterating the view. Mutating mapped values through a non-const view is
// fine — that is the intended use for flush-style loops.
//
// detlint (tools/detlint) enforces rule D1 mechanically: it flags every
// iteration over a `std::unordered_{map,set}` that is not routed through
// sorted_view() or carrying an `unordered-ok(<reason>)` waiver comment
// (syntax in DESIGN.md "Determinism contract").
#pragma once

#include <algorithm>
#include <type_traits>
#include <vector>

namespace cbps {

namespace detail {

template <typename C, typename = void>
struct is_map_like : std::false_type {};

template <typename C>
struct is_map_like<C, std::void_t<typename C::mapped_type>>
    : std::true_type {};

}  // namespace detail

/// Snapshot the elements of `c` as a vector of pointers sorted by key
/// (map-like containers) or by value (set-like containers). Key/value
/// types must have `operator<` — true for every key the engine uses
/// (integer ids, strings). Non-const containers yield mutable element
/// pointers so callers can move batches out of mapped values.
template <typename C>
auto sorted_view(C& c) {
  // Set elements are immutable through iterators, so set views are
  // always const; map views are mutable when the map is.
  using Elem = std::conditional_t<
      std::is_const_v<C> || !detail::is_map_like<C>::value,
      const typename C::value_type, typename C::value_type>;
  std::vector<Elem*> view;
  view.reserve(c.size());
  for (Elem& e : c) view.push_back(&e);
  if constexpr (detail::is_map_like<C>::value) {
    std::sort(view.begin(), view.end(),
              [](const Elem* a, const Elem* b) { return a->first < b->first; });
  } else {
    std::sort(view.begin(), view.end(),
              [](const Elem* a, const Elem* b) { return *a < *b; });
  }
  return view;
}

}  // namespace cbps
