// Deterministic pseudo-random number generation and the samplers the
// paper's workload model needs (uniform, exponential / Poisson process,
// Zipf).
//
// All simulation randomness flows through one seeded Rng so that every
// experiment is exactly reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "cbps/common/assert.hpp"

namespace cbps {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via SplitMix64.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform integer in [lo, hi] (inclusive). Uses Lemire-style rejection
  /// so the distribution is exactly uniform.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi);

  /// true with probability p.
  bool bernoulli(double p) { return uniform01() < p; }

  /// Exponentially distributed value with the given mean (> 0). This is
  /// the inter-arrival time of a Poisson process with rate 1/mean, which
  /// is how the paper generates publications (§5.1).
  double exponential(double mean);

  /// Split off an independent stream (for per-component generators that
  /// must not perturb each other's sequences).
  Rng split();

 private:
  std::uint64_t s_[4];
};

/// Zipf-distributed ranks over {1, ..., n} with exponent `s` (> 0),
/// P(k) ∝ 1/k^s. Uses Hörmann's rejection-inversion method so it is O(1)
/// per sample with no O(n) tables — the paper draws selective-attribute
/// centers from a Zipf distribution over up to 10^6 values (§5.1).
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double s);

  std::uint64_t n() const { return n_; }
  double exponent() const { return s_; }

  /// Sample a rank in [1, n].
  std::uint64_t operator()(Rng& rng) const;

 private:
  double h(double x) const;
  double h_inv(double x) const;

  std::uint64_t n_;
  double s_;
  double h_x1_;       // h(1.5) - 1
  double h_n_;        // h(n + 0.5)
  double threshold_;  // 2 - h_inv(h(2.5) - 1/2^s)
};

/// Simple accumulation of sample statistics (used by tests that check
/// distribution shapes and by the metrics layer).
class RunningStat {
 public:
  void add(double x);

  /// Fold another summary into this one (exact: all moments are sums).
  void merge(const RunningStat& other);

  /// Drop all samples (the object is reusable; references stay valid).
  void reset() { *this = RunningStat{}; }

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double variance() const;
  double sum() const { return sum_; }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace cbps
