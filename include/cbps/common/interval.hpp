// Closed integer intervals over attribute domains.
//
// A subscription constraint "lo <= a_i <= hi" is a ClosedInterval; the
// mapping layer turns value intervals into key intervals. These are plain
// (non-modular) intervals — ring intervals live in ring.hpp.
#pragma once

#include <algorithm>
#include <optional>
#include <ostream>

#include "cbps/common/assert.hpp"
#include "cbps/common/types.hpp"

namespace cbps {

/// Closed interval [lo, hi] over Value, lo <= hi.
struct ClosedInterval {
  Value lo = 0;
  Value hi = 0;

  constexpr ClosedInterval() = default;
  constexpr ClosedInterval(Value l, Value h) : lo(l), hi(h) {
    CBPS_ASSERT_MSG(l <= h, "interval bounds inverted");
  }

  static constexpr ClosedInterval point(Value v) { return {v, v}; }

  constexpr bool contains(Value v) const { return lo <= v && v <= hi; }

  /// Number of integer values in the interval.
  constexpr std::uint64_t width() const {
    return static_cast<std::uint64_t>(hi - lo) + 1;
  }

  constexpr bool overlaps(const ClosedInterval& o) const {
    return lo <= o.hi && o.lo <= hi;
  }

  /// Intersection, or nullopt when disjoint.
  constexpr std::optional<ClosedInterval> intersect(
      const ClosedInterval& o) const {
    const Value l = std::max(lo, o.lo);
    const Value h = std::min(hi, o.hi);
    if (l > h) return std::nullopt;
    return ClosedInterval{l, h};
  }

  friend constexpr bool operator==(const ClosedInterval&,
                                   const ClosedInterval&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const ClosedInterval& i) {
  return os << '[' << i.lo << ", " << i.hi << ']';
}

}  // namespace cbps
