// Minimal command-line flag parsing for the tools and benches.
//
// Supports --name=value and --name value; bool flags may be given bare
// (--verbose) or explicit (--verbose=false). -h/--help prints usage.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace cbps {

class FlagParser {
 public:
  explicit FlagParser(std::string description)
      : description_(std::move(description)) {}

  void add(const std::string& name, const std::string& help, bool* target) {
    flags_.push_back({name, help, target});
  }
  void add(const std::string& name, const std::string& help,
           std::int64_t* target) {
    flags_.push_back({name, help, target});
  }
  void add(const std::string& name, const std::string& help,
           double* target) {
    flags_.push_back({name, help, target});
  }
  void add(const std::string& name, const std::string& help,
           std::string* target) {
    flags_.push_back({name, help, target});
  }

  /// Parse argv. Returns false (after printing usage or an error) if the
  /// program should exit.
  bool parse(int argc, const char* const* argv, std::ostream& out,
             std::ostream& err);

  void print_help(std::ostream& os) const;

 private:
  using Target =
      std::variant<bool*, std::int64_t*, double*, std::string*>;
  struct Flag {
    std::string name;
    std::string help;
    Target target;
  };

  const Flag* find(const std::string& name) const;
  static bool assign(const Flag& flag, const std::string& value,
                     std::ostream& err);

  std::string description_;
  std::vector<Flag> flags_;
};

}  // namespace cbps
