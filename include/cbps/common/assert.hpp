// Lightweight always-on assertion macro.
//
// Simulation code is full of protocol invariants whose violation means the
// run is meaningless; we keep these checks enabled in release builds
// (their cost is negligible next to event dispatch).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace cbps::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "CBPS_ASSERT failed: %s at %s:%d%s%s\n", expr, file,
               line, msg ? " — " : "", msg ? msg : "");
  std::abort();
}

}  // namespace cbps::detail

#define CBPS_ASSERT(expr)                                              \
  ((expr) ? static_cast<void>(0)                                       \
          : ::cbps::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr))

#define CBPS_ASSERT_MSG(expr, msg)                                     \
  ((expr) ? static_cast<void>(0)                                       \
          : ::cbps::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)))
