// Lightweight always-on assertion macro.
//
// Simulation code is full of protocol invariants whose violation means the
// run is meaningless; we keep these checks enabled in release builds
// (their cost is negligible next to event dispatch).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace cbps::detail {

// Pre-abort diagnostics hook. The logger (always linked via
// cbps_common) installs a dump of its recent-lines ring here at static
// init, so *every* CBPS_ASSERT failure — in benches and tools as much
// as under the audit_* checks — prints the log lines leading up to the
// violation. A function pointer keeps this header free of any logging
// dependency.
using AssertDumpHook = void (*)();

inline AssertDumpHook& assert_dump_hook() {
  static AssertDumpHook hook = nullptr;
  return hook;
}

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "CBPS_ASSERT failed: %s at %s:%d%s%s\n", expr, file,
               line, msg ? " — " : "", msg ? msg : "");
  if (AssertDumpHook hook = assert_dump_hook()) hook();
  std::abort();
}

}  // namespace cbps::detail

#define CBPS_ASSERT(expr)                                              \
  ((expr) ? static_cast<void>(0)                                       \
          : ::cbps::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr))

#define CBPS_ASSERT_MSG(expr, msg)                                     \
  ((expr) ? static_cast<void>(0)                                       \
          : ::cbps::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)))
