// Fundamental identifier types shared by every layer.
#pragma once

#include <cstdint>

namespace cbps {

/// A point in the overlay key space. Keys live in [0, 2^m) for the ring
/// parameter m (see ring.hpp); the full 64-bit range is never used so that
/// modular arithmetic cannot overflow.
using Key = std::uint64_t;

/// Identifier of a pub/sub subscription, unique system-wide.
using SubscriptionId = std::uint64_t;

/// Identifier of a published event, unique system-wide.
using EventId = std::uint64_t;

/// Attribute values in the event space. The paper's data model uses
/// numeric attributes (strings are reduced to numbers by hashing).
using Value = std::int64_t;

/// 128-bit unsigned helper for overflow-free scaling arithmetic
/// (h_i(x) = x * 2^l / |Omega_i| needs the wide intermediate).
__extension__ using Uint128 = unsigned __int128;

}  // namespace cbps
