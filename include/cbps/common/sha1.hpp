// SHA-1, implemented from scratch (FIPS 180-1).
//
// Chord's consistent hashing assigns node and key identifiers with SHA-1
// (paper §3.1.1). We implement the digest ourselves so the repository has
// no external dependencies; it is validated against the official FIPS
// test vectors in the unit tests.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace cbps {

/// Incremental SHA-1 hasher.
///
/// Usage:
///   Sha1 h;
///   h.update(data, len);
///   Sha1::Digest d = h.finish();
class Sha1 {
 public:
  using Digest = std::array<std::uint8_t, 20>;

  Sha1() { reset(); }

  /// Restore the initial state so the object can be reused.
  void reset();

  /// Absorb `len` bytes.
  void update(const void* data, std::size_t len);
  void update(std::string_view s) { update(s.data(), s.size()); }

  /// Finalize and return the 160-bit digest. The hasher must be reset()
  /// before further use.
  Digest finish();

  /// One-shot convenience.
  static Digest hash(std::string_view s) {
    Sha1 h;
    h.update(s);
    return h.finish();
  }

  /// Hex rendering of a digest (lowercase), for logging and tests.
  static std::string to_hex(const Digest& d);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> state_{};
  std::uint64_t total_bytes_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
};

}  // namespace cbps
