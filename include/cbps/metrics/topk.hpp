// Deterministic space-saving heavy-hitter sketch (Metwally et al.,
// "Efficient Computation of Frequent and Top-k Elements in Data
// Streams"), specialized for per-rendezvous-key load attribution.
//
// The sketch tracks at most `capacity` keys. An offer() for a tracked
// key adds its weight exactly; an offer for an untracked key at
// capacity evicts the minimum-count entry and inherits its count as the
// new entry's error term. Standard guarantees with total offered
// weight N and capacity K:
//   * count - error <= true count <= count  for every tracked key,
//   * error <= N / K, and
//   * every key with true count > N / K is tracked.
//
// Determinism contract (the load observatory's fold depends on it):
//   * storage is an ordered std::map, so iteration and the min-count
//     eviction scan are layout-independent (detlint D1 by construction);
//   * eviction tie-breaks are total: minimum count first, then the
//     LARGEST key id among the minima is evicted (small key ids are the
//     stickier residents);
//   * merge() is a union-sum with NO eviction — it is associative and
//     commutative, so folding per-node sketches is invariant under the
//     fold order (only top() truncates). A fold accumulator therefore
//     grows to at most (#shards x capacity) entries, which is the price
//     of permutation invariance.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace cbps::metrics {

class TopK {
 public:
  struct Entry {
    std::uint64_t key = 0;
    std::uint64_t count = 0;  // overestimate: true count <= count
    std::uint64_t error = 0;  // count - error <= true count

    bool operator==(const Entry&) const = default;
  };

  explicit TopK(std::size_t capacity = kDefaultCapacity);

  /// Account `weight` units of load against `key`.
  void offer(std::uint64_t key, std::uint64_t weight = 1);

  /// Union-sum fold of another sketch into this one (counts, errors and
  /// totals add; nothing is evicted). Permutation-invariant: any merge
  /// order of the same sketch set yields identical state.
  void merge(const TopK& other);

  /// The k heaviest tracked entries, ordered by count descending then
  /// key ascending (the stable tie-break the report tables rely on).
  std::vector<Entry> top(std::size_t k) const;

  /// Count/error for one key (count 0 when untracked).
  Entry find(std::uint64_t key) const;

  std::uint64_t total() const { return total_; }
  std::size_t size() const { return cells_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return cells_.empty(); }
  void reset();

  static constexpr std::size_t kDefaultCapacity = 32;

 private:
  struct Cell {
    std::uint64_t count = 0;
    std::uint64_t error = 0;
  };

  std::size_t capacity_;
  std::uint64_t total_ = 0;
  // Keyed by key id; ordered so every walk (eviction scan, top(), JSON
  // emission) is independent of insertion history and hash layout.
  std::map<std::uint64_t, Cell> cells_;
};

}  // namespace cbps::metrics
