// Named counters and running summaries for experiment instrumentation.
//
// Benches create one Registry per run, pass it down through the harness,
// and read it back to print a figure row. Nothing here is global: two
// concurrently-constructed simulations never share state.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "cbps/common/rng.hpp"

namespace cbps::metrics {

class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

class Registry {
 public:
  /// Find or create a counter.
  Counter& counter(const std::string& name) { return counters_[name]; }

  /// Find or create a running summary.
  RunningStat& stat(const std::string& name) { return stats_[name]; }

  /// Counter value, 0 if never touched (does not create).
  std::uint64_t counter_value(const std::string& name) const;

  void reset_all();

  /// Human-readable dump (sorted by name).
  void print(std::ostream& os) const;

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, RunningStat>& stats() const { return stats_; }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, RunningStat> stats_;
};

}  // namespace cbps::metrics
