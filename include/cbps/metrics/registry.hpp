// Named counters, running summaries, and histograms for experiment
// instrumentation.
//
// Benches create one Registry per run, pass it down through the harness,
// and read it back to print a figure row. Nothing here is global: two
// concurrently-constructed simulations never share state.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "cbps/common/rng.hpp"
#include "cbps/metrics/histogram.hpp"

namespace cbps::metrics {

class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

class Registry {
 public:
  /// Find or create a counter.
  Counter& counter(const std::string& name) { return counters_[name]; }

  /// Find or create a running summary.
  RunningStat& stat(const std::string& name) { return stats_[name]; }

  /// Find or create a histogram.
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  // Cached-handle API: resolve the name once, hold the pointer, and
  // increment through it on hot paths (a std::map string lookup per
  // message is measurable). Pointers are stable for the Registry's
  // lifetime — std::map nodes never move and reset_all() resets entries
  // in place instead of erasing them.
  Counter* counter_handle(const std::string& name) { return &counters_[name]; }
  RunningStat* stat_handle(const std::string& name) { return &stats_[name]; }
  Histogram* histogram_handle(const std::string& name) {
    return &histograms_[name];
  }

  /// Counter value, 0 if never touched (does not create).
  std::uint64_t counter_value(const std::string& name) const;

  void reset_all();

  /// Human-readable dump: one table, deterministically sorted by name
  /// across counters, stats, and histograms (so bench output diffs are
  /// stable run to run).
  void print(std::ostream& os) const;

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, RunningStat>& stats() const { return stats_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, RunningStat> stats_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace cbps::metrics
