// Named counters, running summaries, and histograms for experiment
// instrumentation.
//
// Benches create one Registry per run, pass it down through the harness,
// and read it back to print a figure row. Nothing here is global: two
// concurrently-constructed simulations never share state.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "cbps/common/rng.hpp"
#include "cbps/metrics/histogram.hpp"

namespace cbps::metrics {

// Lock-free under the parallel simulation engine: counters on hot paths
// are incremented concurrently from shard workers. Relaxed ordering is
// enough — integer sums are order-independent, so totals stay
// bit-identical across engines and shard counts; the engine's epoch
// barriers provide the happens-before for anyone reading totals.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter& o) : value_(o.value()) {}
  Counter& operator=(const Counter& o) {
    value_.store(o.value(), std::memory_order_relaxed);
    return *this;
  }

  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Registry {
 public:
  /// Find or create a counter.
  Counter& counter(const std::string& name) { return counters_[name]; }

  /// Find or create a running summary.
  RunningStat& stat(const std::string& name) { return stats_[name]; }

  /// Find or create a histogram.
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  // Cached-handle API: resolve the name once, hold the pointer, and
  // increment through it on hot paths (a std::map string lookup per
  // message is measurable). Pointers are stable for the Registry's
  // lifetime — std::map nodes never move and reset_all() resets entries
  // in place instead of erasing them.
  Counter* counter_handle(const std::string& name) { return &counters_[name]; }
  RunningStat* stat_handle(const std::string& name) { return &stats_[name]; }
  Histogram* histogram_handle(const std::string& name) {
    return &histograms_[name];
  }

  /// Counter value, 0 if never touched (does not create).
  std::uint64_t counter_value(const std::string& name) const;

  void reset_all();

  /// Human-readable dump: one table, deterministically sorted by name
  /// across counters, stats, and histograms (so bench output diffs are
  /// stable run to run).
  void print(std::ostream& os) const;

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, RunningStat>& stats() const { return stats_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, RunningStat> stats_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace cbps::metrics
