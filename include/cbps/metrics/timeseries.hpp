// Periodic time-series recorder: a fixed column schema plus rows of
// (sim-time, values). The sampling *task* lives with whoever owns a
// simulator (PubSubSystem arms a periodic timer); this class is just the
// deterministic storage + JSON/CSV export, so fault-script runs can plot
// degradation and recovery curves.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace cbps::metrics {

class TimeSeries {
 public:
  explicit TimeSeries(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  /// Append one sample row; `row` must match the column schema's arity.
  void append(std::uint64_t t_us, std::vector<double> row);

  const std::vector<std::string>& columns() const { return columns_; }
  std::size_t size() const { return times_us_.size(); }
  const std::vector<std::uint64_t>& times_us() const { return times_us_; }
  const std::vector<double>& row(std::size_t i) const { return rows_[i]; }

  /// {"columns":[...],"rows":[[t_s, v0, v1, ...], ...]}
  void write_json(std::ostream& os) const;
  /// Header line then one comma-separated row per sample.
  void write_csv(std::ostream& os) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::uint64_t> times_us_;
  std::vector<std::vector<double>> rows_;
};

}  // namespace cbps::metrics
