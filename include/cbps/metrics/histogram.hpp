// Fixed-bucket log-linear histogram (HdrHistogram-style): one octave per
// power of two, each split into kSubBuckets linear sub-buckets, so the
// relative quantization error is bounded by 1/kSubBuckets while add() is
// a frexp + two integer ops — cheap enough for per-message hot paths.
//
// Deterministic by construction: bucket indices come from exact floating-
// point decomposition (no libm), so two runs that record the same values
// in any order produce bit-identical bucket arrays and percentiles.
// Concurrency: add() is lock-free (relaxed atomics) so registry
// histograms on message hot paths can be fed from the parallel engine's
// shard workers. Determinism is preserved because every recorded
// quantity is integer-valued where cross-shard sharing occurs: bucket
// counts and count are exact sums, the double sum of integers is exact
// in IEEE754 (and therefore order-independent), and min/max are
// order-independent by definition. Readers (percentile/merge/print) run
// after an engine barrier.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <limits>

namespace cbps::metrics {

class Histogram {
 public:
  /// Linear sub-buckets per octave; relative error <= 1/kSubBuckets.
  static constexpr int kSubBuckets = 8;
  /// Octave exponents covered: values in [2^(kMinExp-1), 2^kMaxExp).
  /// 2^-21 ~ 5e-7 (sub-microsecond) up to 2^40 ~ 1e12; out-of-range
  /// values clamp into the edge buckets.
  static constexpr int kMinExp = -20;
  static constexpr int kMaxExp = 40;
  /// Bucket 0 holds zero and negative values.
  static constexpr std::size_t kBucketCount =
      static_cast<std::size_t>(kMaxExp - kMinExp + 1) * kSubBuckets + 1;

  Histogram() = default;
  Histogram(const Histogram& o) { *this = o; }
  Histogram& operator=(const Histogram& o);

  void add(double v, std::uint64_t weight = 1);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    const std::uint64_t n = count();
    return n ? sum() / static_cast<double>(n) : 0.0;
  }
  double min() const { return count() ? min_.load(std::memory_order_relaxed) : 0.0; }
  double max() const { return count() ? max_.load(std::memory_order_relaxed) : 0.0; }

  /// Value at percentile p in [0, 100]: the representative (midpoint) of
  /// the bucket holding the rank-ceil(p/100*count) observation, clamped
  /// to the observed [min, max].
  double percentile(double p) const;
  double p50() const { return percentile(50.0); }
  double p90() const { return percentile(90.0); }
  double p99() const { return percentile(99.0); }

  /// Bucket-wise accumulate (for aggregating per-node histograms).
  void merge(const Histogram& other);
  void reset();

  /// One-line summary: count/mean/p50/p90/p99/max.
  void print(std::ostream& os) const;

  /// Snapshot of the bucket counts (atomics are not comparable/copyable
  /// in place; callers compare and index the returned value).
  std::array<std::uint64_t, kBucketCount> buckets() const {
    std::array<std::uint64_t, kBucketCount> out;
    for (std::size_t i = 0; i < kBucketCount; ++i) out[i] = bucket(i);
    return out;
  }
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  static std::size_t bucket_index(double v);
  /// Midpoint of the value range bucket `i` covers (0 for bucket 0).
  static double bucket_mid(std::size_t i);

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // +/- infinity sentinels instead of a count==0 special case: the
  // CAS-min/max loops in add() then need no initialization ordering.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

}  // namespace cbps::metrics
