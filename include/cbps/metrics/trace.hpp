// Causal message tracing.
//
// A TraceSink is owned by one run (one PubSubSystem / one sweep point) —
// never global — so parallel sweep workers cannot interleave spans and a
// run's trace is bit-identical regardless of --jobs. Sampling is a
// deterministic credit accumulator (no RNG draw), so enabling tracing
// does not perturb the simulation's random streams.
//
// Under the parallel engine, spans are emitted concurrently from shard
// workers. Each execution stripe (see common::ExecContext) appends to
// its own buffer with a stripe-tagged provisional span id, and every
// record carries the canonical sort key of the emitting event
// (sim time, event key, per-event emission index). finalize() — run
// lazily by the first reader, always after the engine has stopped —
// sorts all stripes by that key, renumbers span ids 1..n in sorted
// order, and remaps parent references. Because the canonical event key
// is engine-invariant, the finalized trace is bit-identical across the
// serial engine and any shard count (and, for the serial engine, equals
// the seed emission order exactly).
//
// The trace context (trace id + parent span id) rides in two places:
//  * `Payload::trace` — set once by the pub/sub layer before the payload
//    pointer becomes shared/const; identifies the trace and the root-side
//    parent for any node that only sees the payload.
//  * `parent_span` fields on the per-hop wire messages (RouteMsg /
//    McastMsg / ChainMsg) — wire messages are copied per transmission,
//    so each hop can re-parent its children, chaining route-hop spans.
//
// Spans are instants in simulated time (start == end for most kinds);
// export as JSONL (one span per line) or Chrome trace_event JSON, which
// opens directly in Perfetto / chrome://tracing.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace cbps::metrics {

enum class SpanKind : std::uint8_t {
  kPublish,     // root: application pub() at the publisher
  kSubscribe,   // root: application sub() at the subscriber
  kMap,         // EK/SK mapping -> rendezvous key set (a = #keys)
  kRouteHop,    // one overlay forwarding hop (a = target key, b = hops)
  kMcastSplit,  // m-cast partition/delegation (a = #keys, b = #branches)
  kBuffer,      // notification parked in a per-subscriber buffer
  kCollect,     // notification aggregated along a collect chain
  kNotify,      // notification batch sent toward the subscriber
  kDeliver,     // notification surfaced to the application
  kRetry,       // hop-by-hop retransmission (a = attempt#)
  kDrop,        // message abandoned (a = reason code)
  kGossipPush,  // epidemic forward of a gossip record (a = rounds left)
  kGossipRepair,  // record resurfaced by anti-entropy pull repair
  kHotKey,      // rendezvous match under one covered key (a = key,
                // b = notifications attributed to it) — lets
                // tools/trace_report.py attribute phase time to hot keys
  kCount,
};

const char* to_string(SpanKind kind);

/// Drop-reason codes carried in kDrop spans' `a` argument.
enum class DropReason : std::uint64_t {
  kMaxHops = 1,
  kNoCandidate = 2,
  kRetryBudget = 3,
  kMisdirected = 4,
  kDuplicate = 5,
  kMcastDead = 6,
};

/// Trace context threaded through payloads and notifications.
/// trace_id == 0 means "not sampled" and makes every emit a no-op.
struct TraceRef {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
  bool sampled() const { return trace_id != 0; }
};

struct Span {
  std::uint64_t span_id = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;  // 0 = trace root
  SpanKind kind = SpanKind::kCount;
  std::uint64_t node = 0;      // overlay id of the emitting node
  std::uint64_t start_us = 0;  // simulated time
  std::uint64_t end_us = 0;
  std::uint64_t a = 0;  // kind-specific arguments (see SpanKind)
  std::uint64_t b = 0;
};

class TraceSink {
 public:
  /// sample_rate in [0, 1]: fraction of root operations (pub/sub calls)
  /// that start a trace. Deterministic: every 1/rate-th root samples.
  explicit TraceSink(double sample_rate);

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  bool enabled() const { return sample_rate_ > 0.0; }
  double sample_rate() const { return sample_rate_; }

  /// Called at a root operation. Returns a fresh trace id, or 0 when
  /// this root is not sampled. Global-context only (stripe 0): roots are
  /// started by drivers and application entry points, never from shard
  /// workers, so the trace-id sequence needs no synchronization.
  std::uint64_t maybe_start_trace();

  /// Record a span in trace `t` (no-op returning 0 when !t.sampled()).
  /// Returns a provisional span id to parent children on; ids are
  /// renumbered deterministically at finalize(). Safe to call
  /// concurrently from distinct execution stripes.
  std::uint64_t emit(const TraceRef& t, SpanKind kind, std::uint64_t node,
                     std::uint64_t start_us, std::uint64_t end_us,
                     std::uint64_t a = 0, std::uint64_t b = 0);

  /// Finalized spans, sorted by canonical event key and renumbered 1..n.
  /// First call finalizes; emitting after that is a usage error.
  const std::vector<Span>& spans() {
    finalize();
    return final_;
  }
  std::uint64_t traces_started() const { return next_trace_ - 1; }
  /// Spans discarded after the in-memory cap was hit.
  std::uint64_t spans_dropped() const;
  /// Per-stripe cap; a run that stays under it is engine-invariant.
  void set_max_spans(std::size_t cap) { max_spans_ = cap; }

  /// One span per line: {"span":..,"trace":..,"parent":..,"kind":"..",...}
  void write_jsonl(std::ostream& os);
  /// Chrome trace_event JSON ("X" complete events, one pid per trace is
  /// too sparse — nodes become tids so a Perfetto row is one node).
  void write_chrome_trace(std::ostream& os);

 private:
  // Stripe 0 (serial / global context) + up to 63 shard cores.
  static constexpr std::size_t kMaxStripes = 64;

  struct Rec {
    Span span;
    std::uint64_t time = 0;      // sim time of the emitting event
    std::uint64_t event_key = 0; // canonical key of the emitting event
    std::uint32_t emit_seq = 0;  // emission index within that event
  };
  // Cache-line separated so concurrent appends from shard workers do
  // not false-share; each stripe is written by exactly one thread
  // between engine barriers.
  struct alignas(64) Stripe {
    std::vector<Rec> recs;
    std::uint64_t next_local = 1;
    std::uint64_t dropped = 0;
  };

  void finalize();

  double sample_rate_;
  double credit_ = 0.0;
  std::uint64_t next_trace_ = 1;
  std::size_t max_spans_ = 1u << 22;  // ~4M spans ≈ 300 MB worst case
  bool finalized_ = false;
  std::vector<Stripe> stripes_;
  std::vector<Span> final_;
};

}  // namespace cbps::metrics
