// A Chord node: key routing, the m-cast primitive, maintenance protocols.
//
// Implements the overlay::OverlayNode interface the CB-pub/sub layer is
// written against. All inter-node communication goes through
// ChordNetwork::transmit, which applies latency and hop accounting.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cbps/chord/config.hpp"
#include "cbps/chord/finger_table.hpp"
#include "cbps/chord/location_cache.hpp"
#include "cbps/chord/wire.hpp"
#include "cbps/overlay/node.hpp"
#include "cbps/sim/simulator.hpp"

namespace cbps::chord {

class ChordNetwork;

class ChordNode final : public overlay::OverlayNode {
 public:
  /// `domain` is this node's scheduling domain, registered with the
  /// engine by ChordNetwork when the node is created. Every self-owned
  /// event the node schedules (retransmit timers, maintenance) is keyed
  /// by — and, under the parallel engine, placed on the shard of — this
  /// domain.
  ChordNode(ChordNetwork& net, Key id, std::string name,
            common::Domain domain);

  ChordNode(const ChordNode&) = delete;
  ChordNode& operator=(const ChordNode&) = delete;

  // --- overlay::OverlayNode -------------------------------------------
  Key id() const override { return id_; }
  RingParams ring() const override;
  void send(Key key, overlay::PayloadPtr payload) override;
  void m_cast(std::vector<Key> keys, overlay::PayloadPtr payload) override;
  void chain_cast(std::vector<Key> keys,
                  overlay::PayloadPtr payload) override;
  void send_to_successor(overlay::PayloadPtr payload) override;
  void send_to_predecessor(overlay::PayloadPtr payload) override;
  Key successor_id() const override {
    return succs_.empty() ? id_ : succs_.front();
  }
  Key predecessor_id() const override { return has_pred_ ? pred_ : id_; }
  void set_app(overlay::OverlayApp* app) override { app_ = app; }

  // --- identity / introspection ---------------------------------------
  const std::string& name() const { return name_; }
  overlay::OverlayApp* app() const { return app_; }
  common::Domain domain() const override { return domain_; }

  /// Whether this node covers key `k`, i.e. k in (pred, id]. A node with
  /// no known predecessor accepts everything routed to it (routing is
  /// then authoritative).
  bool covers(Key k) const;

  std::optional<Key> predecessor() const {
    return has_pred_ ? std::optional<Key>(pred_) : std::nullopt;
  }
  const std::vector<Key>& successor_list() const { return succs_; }
  const FingerTable& finger_table() const { return fingers_; }
  const LocationCache& location_cache() const { return cache_; }

  // --- ring membership (driven by ChordNetwork) ------------------------
  /// Install exact routing state (static topology construction).
  void install_state(std::optional<Key> pred, std::vector<Key> succs,
                     std::vector<Key> finger_nodes);

  /// Start the dynamic join protocol via a bootstrap node.
  void begin_join(Key bootstrap);

  /// Hand state to the successor, tell neighbors, and go offline.
  void leave_gracefully();

  /// Abrupt crash: stop maintenance, drop pending sends, and refuse to
  /// run any still-scheduled callback (self-deliveries, join retries) —
  /// a dead process executes nothing.
  void go_offline();
  bool offline() const { return offline_; }

  /// Enable/disable the periodic stabilize/fix-fingers/check-pred loop.
  void start_maintenance();
  void stop_maintenance();

  /// Drop the pending-send (ack/retry) table and cancel its timers.
  /// Called when this node goes offline; retransmitting from a dead
  /// node would be physically wrong.
  void cancel_pending_sends();

  /// Reliable sends awaiting acknowledgment (introspection for tests).
  std::size_t pending_send_count() const { return pending_sends_.size(); }

  /// Current retransmission timeout toward `peer`: the Jacobson
  /// SRTT + 4*RTTVAR estimate once a clean RTT sample exists, the
  /// configured retry_base before that (introspection for tests).
  sim::SimTime current_rto(Key peer) const;

  /// Peers evicted as unreachable, kept for post-partition re-merge
  /// probing (introspection for tests).
  std::vector<Key> remembered_contacts() const {
    return {remembered_.begin(), remembered_.end()};
  }

  /// Entry point for messages arriving from the network.
  void receive(Envelope env);

 private:
  const ChordConfig& config() const;

  // Transmission helper: returns false (and evicts `to` from all local
  // state) when the peer is dead. When the reliability layer is armed
  // (config().reliable_transport()) and the message is ack-eligible,
  // the send is tracked for timer-driven retransmission.
  bool transmit(Key to, WireMessage msg, overlay::MessageClass cls);
  bool transmit_reliable(Key to, WireMessage msg,
                         overlay::MessageClass cls);
  void retransmit(std::uint64_t seq);
  void handle_ack(std::uint64_t acked_seq);
  void on_peer_dead(Key peer);

  /// Best next hop toward `key` among successors, fingers, predecessor
  /// and the location cache; nullopt when this node covers `key` or has
  /// no live candidate.
  std::optional<Key> next_hop(Key key) const;
  std::optional<Key> closest_preceding(Key key) const;

  // Message handlers.
  void handle_route(RouteMsg msg);
  void deliver_route(const RouteMsg& msg);
  void forward_route(RouteMsg msg);
  void handle_mcast(McastMsg msg);
  void run_mcast(std::vector<Key> keys, const overlay::PayloadPtr& payload,
                 std::uint32_t hops, bool initiator,
                 std::uint64_t parent_span = 0);
  void handle_chain(ChainMsg msg);
  void run_chain(std::vector<Key> keys, const overlay::PayloadPtr& payload,
                 std::uint32_t hops, bool initiator,
                 std::uint64_t parent_span = 0);
  void forward_chain(ChainMsg msg);
  void handle_find_successor(FindSuccessorReq msg);
  void handle_find_successor_reply(const FindSuccessorReply& msg);
  void handle_get_neighbors(const GetNeighborsReq& msg);
  void handle_get_neighbors_reply(const GetNeighborsReply& msg, Key from);
  void handle_notify_pred(Key candidate);
  void handle_pull_state(const PullStateReq& msg);
  void handle_pred_leave(const PredLeaveMsg& msg, Key from);
  void handle_succ_leave(const SuccLeaveMsg& msg, Key from);

  // Maintenance.
  void maintenance_tick();
  void stabilize();
  void fix_fingers();
  void check_predecessor();
  void adopt_predecessor(Key candidate);
  void set_successor_front(Key s);

  ChordNetwork& net_;
  Key id_;
  std::string name_;
  common::Domain domain_ = common::kGlobalDomain;
  overlay::OverlayApp* app_ = nullptr;

  bool has_pred_ = false;
  Key pred_ = 0;
  std::vector<Key> succs_;  // nearest first; never contains id_
  FingerTable fingers_;
  LocationCache cache_;

  bool joining_ = false;
  Key join_bootstrap_ = 0;
  sim::Simulator::TimerId maintenance_timer_ = 0;

  // fix_fingers bookkeeping: req_id -> finger index.
  std::uint64_t next_req_id_ = 1;
  std::unordered_map<std::uint64_t, std::size_t> pending_finger_fixes_;
  static constexpr std::uint64_t kJoinReqId = ~std::uint64_t{0};

  // Ack/retry reliability layer (armed only when the network injects
  // loss). Each reliable send is parked here, keyed by its sequence id,
  // until the hop-level ack arrives or the retry budget is exhausted.
  struct PendingSend {
    Key to = 0;
    WireMessage msg;             // retransmission copy (payload shared)
    overlay::MessageClass cls = overlay::MessageClass::kControl;
    std::uint32_t retries = 0;   // retransmissions performed so far
    sim::SimTime timeout = 0;    // current backoff; doubles per retry
    sim::SimTime sent_at = 0;    // original transmission time (RTT)
    sim::Simulator::EventId timer = sim::Simulator::kInvalidEvent;
  };
  std::unordered_map<std::uint64_t, PendingSend> pending_sends_;
  std::uint64_t next_send_seq_ = 1;
  // Receiver-side duplicate suppression: per-sender set of already
  // processed sequence ids (a retransmit whose ack was lost must be
  // re-acked but not re-processed).
  std::unordered_map<Key, std::unordered_set<std::uint64_t>> seen_seqs_;

  // Jacobson/Karn RTT estimator, one per peer. Samples come only from
  // acks of never-retransmitted sends (Karn's rule); the first retry
  // timeout toward a peer is then SRTT + 4*RTTVAR instead of the fixed
  // retry_base.
  struct RttState {
    double srtt_us = 0.0;
    double rttvar_us = 0.0;
    bool valid = false;
  };
  void record_rtt_sample(Key peer, sim::SimTime rtt);
  sim::SimTime rto_for(Key peer) const;
  std::unordered_map<Key, RttState> rtt_;

  // Peers this node evicted as unreachable. During a partition the far
  // side of the cut accumulates here; after heal, maintenance probes
  // each remembered contact (GetNeighborsReq) so the split rings find
  // each other again and stabilization re-merges them. Bounded; an
  // entry leaves when any envelope arrives from that peer.
  static constexpr std::size_t kMaxRemembered = 16;
  void remember_contact(Key peer);
  void probe_remembered();
  std::unordered_set<Key> remembered_;

  bool offline_ = false;
};

}  // namespace cbps::chord
