// Wire-level messages exchanged between Chord nodes.
//
// Everything a node sends travels as one of these variants inside an
// Envelope that also carries the sender's identity and (claimed) covered
// range — receivers learn ring structure passively from every message.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "cbps/common/types.hpp"
#include "cbps/overlay/payload.hpp"

namespace cbps::chord {

/// Application unicast being routed to the node covering `target`
/// (paper's send(m, k)).
struct RouteMsg {
  Key target = 0;
  overlay::PayloadPtr payload;
  std::uint32_t hops = 0;  // transmissions so far
  Key origin = 0;          // node that issued the send()
  std::uint64_t seq = 0;   // reliability sequence id (0 = no ack wanted)
  std::uint64_t parent_span = 0;  // trace: span of the previous hop
};

/// Native multicast (paper §4.3.1, Figure 4). `targets` is the subset of
/// the original key set delegated to the recipient, sorted by ring
/// distance from the original sender.
struct McastMsg {
  std::vector<Key> targets;
  overlay::PayloadPtr payload;
  std::uint32_t hops = 0;  // delegation depth guard
  std::uint64_t seq = 0;   // reliability sequence id (0 = no ack wanted)
  std::uint64_t parent_span = 0;  // trace: span of the delegating split
};

/// Conservative unicast-based one-to-many baseline: the remaining keys
/// are visited in ring order, hopping successor-by-successor.
struct ChainMsg {
  std::vector<Key> targets;  // sorted in ring order from targets.front()
  overlay::PayloadPtr payload;
  std::uint32_t hops = 0;
  std::uint64_t seq = 0;     // reliability sequence id (0 = no ack wanted)
  std::uint64_t parent_span = 0;  // trace: span of the previous hop
};

/// Direct one-hop application message to a ring neighbor (§4.3.2
/// collecting uses these).
struct NeighborMsg {
  overlay::PayloadPtr payload;
  std::uint64_t seq = 0;  // reliability sequence id (0 = no ack wanted)
};

/// Hop-level acknowledgment of a reliable application message. The
/// field is deliberately not named `seq` so acks never look like
/// ack-requesting traffic themselves.
struct AckMsg {
  std::uint64_t acked_seq = 0;
};

/// Routing feedback: `owner` covers (owner_range_lo, owner] and delivered
/// a route for the origin; the origin caches this.
struct OwnerInfoMsg {
  Key owner = 0;
  Key owner_range_lo = 0;
};

/// Lookup request: find the node covering `target`; routed like a
/// RouteMsg, the owner replies directly to `reply_to`.
struct FindSuccessorReq {
  Key target = 0;
  Key reply_to = 0;
  std::uint64_t req_id = 0;
  std::uint32_t hops = 0;
};

struct FindSuccessorReply {
  Key target = 0;
  Key owner = 0;
  std::uint64_t req_id = 0;
};

/// Stabilization: ask a node for its predecessor and successor list.
struct GetNeighborsReq {
  Key reply_to = 0;
};

struct GetNeighborsReply {
  bool has_pred = false;
  Key pred = 0;
  std::vector<Key> successors;
};

/// Chord notify(): "I believe I am your predecessor."
struct NotifyPredMsg {};

/// Ask the recipient (our successor) for the application state of keys in
/// (range_lo, range_hi]; used when joining.
struct PullStateReq {
  Key range_lo = 0;
  Key range_hi = 0;
  Key reply_to = 0;
  std::uint64_t seq = 0;  // reliability sequence id (0 = no ack wanted)
};

/// Application state produced by OverlayApp::export_state.
struct StateTransferMsg {
  overlay::PayloadPtr state;
  std::uint64_t seq = 0;  // reliability sequence id (0 = no ack wanted)
};

/// Graceful leave: sent to the successor with the leaver's state.
struct PredLeaveMsg {
  bool has_new_pred = false;
  Key new_pred = 0;
  overlay::PayloadPtr state;
  std::uint64_t seq = 0;  // reliability sequence id (0 = no ack wanted)
};

/// Graceful leave: sent to the predecessor with the leaver's successor.
struct SuccLeaveMsg {
  Key new_succ = 0;
  std::uint64_t seq = 0;  // reliability sequence id (0 = no ack wanted)
};

using WireMessage =
    std::variant<RouteMsg, McastMsg, ChainMsg, NeighborMsg, AckMsg,
                 OwnerInfoMsg, FindSuccessorReq, FindSuccessorReply,
                 GetNeighborsReq, GetNeighborsReply, NotifyPredMsg,
                 PullStateReq, StateTransferMsg, PredLeaveMsg, SuccLeaveMsg>;

/// Pointer to the reliability sequence field of ack-eligible message
/// types (application traffic plus the state-carrying membership
/// messages: RouteMsg, McastMsg, ChainMsg, NeighborMsg, PullStateReq,
/// StateTransferMsg, PredLeaveMsg, SuccLeaveMsg), nullptr for
/// everything else. AckMsg is excluded by its field name.
inline std::uint64_t* seq_field(WireMessage& msg) {
  return std::visit(
      [](auto& m) -> std::uint64_t* {
        if constexpr (requires { m.seq; }) {
          return &m.seq;
        } else {
          return nullptr;
        }
      },
      msg);
}

inline const std::uint64_t* seq_field(const WireMessage& msg) {
  return seq_field(const_cast<WireMessage&>(msg));
}

/// Sender identity attached to every transmission.
struct Envelope {
  Key from = 0;
  bool from_has_pred = false;
  Key from_pred = 0;  // sender's covered range is (from_pred, from]
  WireMessage msg;
};

}  // namespace cbps::chord
