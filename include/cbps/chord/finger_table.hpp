// The Chord finger table (paper §3.1.1).
//
// Entry i (1-based in the paper, 0-based here) holds the node covering
// key (n + 2^i) mod 2^m. The table stores node identifiers only; the
// simulation network resolves identifiers to nodes.
#pragma once

#include <optional>
#include <vector>

#include "cbps/common/ring.hpp"
#include "cbps/common/types.hpp"

namespace cbps::chord {

class FingerTable {
 public:
  FingerTable(RingParams ring, Key owner)
      : ring_(ring), owner_(owner), entries_(ring.bits()) {}

  RingParams ring() const { return ring_; }
  std::size_t size() const { return entries_.size(); }

  /// The key whose successor finger i tracks: (owner + 2^i) mod 2^m.
  Key start(std::size_t i) const {
    return ring_.add(owner_, std::uint64_t{1} << i);
  }

  void set(std::size_t i, Key node) { entries_[i] = node; }
  void clear(std::size_t i) { entries_[i] = std::nullopt; }
  void clear_all() {
    for (auto& e : entries_) e = std::nullopt;
  }

  std::optional<Key> get(std::size_t i) const { return entries_[i]; }

  /// Remove every entry pointing at `node` (used when a peer is found
  /// dead).
  void evict(Key node);

  /// Distinct populated finger nodes, sorted by increasing ring distance
  /// from the owner. This is the delegation order m-cast uses.
  std::vector<Key> distinct_nodes() const;

 private:
  RingParams ring_;
  Key owner_;
  std::vector<std::optional<Key>> entries_;
};

}  // namespace cbps::chord
