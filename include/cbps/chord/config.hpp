// Tunables of the Chord substrate.
#pragma once

#include <cstddef>

#include "cbps/common/ring.hpp"
#include "cbps/sim/time.hpp"

namespace cbps::chord {

struct ChordConfig {
  /// Identifier circle: keys are `ring.bits()`-bit values. The paper's
  /// simulations use a key space of size 2^13 (§5.1).
  RingParams ring{13};

  /// Length of the successor list kept for failure resilience.
  std::size_t successor_list_size = 4;

  /// Capacity of the per-node location cache ("finger caching", §5.1:
  /// the cache is why the average route takes ~2.5 hops at n=500 instead
  /// of log n). 0 disables caching.
  std::size_t location_cache_size = 128;

  /// Whether the owner of a routed key reports itself back to the route
  /// origin (feeds the origin's location cache; sent as control traffic).
  bool owner_feedback = true;

  /// Period of the stabilize / fix-fingers / check-predecessor loop.
  /// 0 disables periodic maintenance (static topologies built by the
  /// network harness don't need it).
  sim::SimTime stabilize_period = sim::sec(30);

  /// Routing messages are dropped after this many hops (protection
  /// against transient routing loops while the ring converges).
  std::uint32_t max_route_hops = 512;

  /// Fault injection: probability that any one transmission is lost in
  /// flight (uniform per message, sampled from a dedicated RNG stream).
  /// A non-zero rate also arms the hop-by-hop ack/retry reliability
  /// layer for application traffic; 0 disables both entirely, leaving
  /// the wire and all metrics bit-identical to a loss-free build.
  double loss_rate = 0.0;

  /// Retransmissions attempted per reliable message before the sender
  /// declares the send failed (counted, never silent).
  std::uint32_t max_retries = 5;

  /// Ack timeout for the first retransmission before any RTT sample
  /// exists for the peer (and always, when adaptive_rto is off); doubles
  /// after every retry (exponential backoff). Must comfortably exceed
  /// one message round-trip.
  sim::SimTime retry_base = sim::ms(250);

  /// Arm the ack/retry reliability layer even at loss_rate == 0. The
  /// fault-scenario engine needs this: partitions and runtime-installed
  /// loss models drop messages on a wire whose configured rate is 0.
  bool force_reliable = false;

  /// Jacobson/Karn adaptive retransmission: the first retry timeout of a
  /// reliable send is SRTT + 4*RTTVAR of its link (seeded from acked,
  /// never-retransmitted transmissions) instead of the fixed retry_base,
  /// so retries track the latency model — slow (gray-failing) peers get
  /// patience, fast links get snappy recovery. retry_base remains the
  /// pre-first-sample default.
  bool adaptive_rto = true;

  /// Clamp for the adaptive retransmission timeout.
  sim::SimTime rto_min = sim::ms(100);
  sim::SimTime rto_max = sim::sec(30);

  /// Whether the ack/retry reliability layer is active.
  bool reliable_transport() const {
    return loss_rate > 0.0 || force_reliable;
  }
};

}  // namespace cbps::chord
