// Per-node location cache ("finger caching").
//
// Nodes learn (node, covered-range) pairs passively from every envelope
// they receive and from owner feedback on completed routes. A cached
// entry that covers a lookup key lets the route finish in one hop, which
// is how the paper's simulator averages ~2.5 hops at n=500 (§5.1).
// Entries are evicted LRU and whenever a peer is observed dead.
#pragma once

#include <cstddef>
#include <list>
#include <map>
#include <optional>
#include <vector>

#include "cbps/common/ring.hpp"
#include "cbps/common/types.hpp"

namespace cbps::chord {

class LocationCache {
 public:
  LocationCache(RingParams ring, std::size_t capacity)
      : ring_(ring), capacity_(capacity) {}

  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Record that `node` covers (range_lo, node]. Refreshes LRU position.
  void insert(Key node, Key range_lo);

  /// Remove a node observed to be dead.
  void evict(Key node);

  /// A cached node believed to cover `key`, if any. Refreshes LRU
  /// position of the hit.
  std::optional<Key> find_owner(Key key);

  /// All cached node ids (for closest-preceding-node candidate scans).
  const std::list<Key>& nodes() const { return lru_; }

 private:
  // Ordered map on purpose (determinism rule D1): find_owner scans for a
  // covering entry, and several entries can cover one key — the winner
  // must be a pure function of the cache contents, not hash-bucket
  // layout. The cache is LRU-capped at a few dozen entries, so the
  // O(log n) ops cost nothing measurable.
  using Map = std::map<Key, std::pair<Key, std::list<Key>::iterator>>;

  void touch(Map::iterator it);

  RingParams ring_;
  std::size_t capacity_;
  // LRU list: most recently used at front. Map: node -> (range_lo, list pos).
  std::list<Key> lru_;
  Map map_;
};

}  // namespace cbps::chord
