// Simulation-side container for a Chord ring.
//
// Owns the nodes, the clock's view of the "wire" (latency + hop
// accounting), liveness, and a ground-truth key->node oracle used both to
// build static topologies and to verify routing in tests.
#pragma once

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cbps/chord/config.hpp"
#include "cbps/chord/node.hpp"
#include "cbps/chord/wire.hpp"
#include "cbps/metrics/registry.hpp"
#include "cbps/metrics/trace.hpp"
#include "cbps/overlay/payload.hpp"
#include "cbps/sim/latency.hpp"
#include "cbps/sim/loss.hpp"
#include "cbps/sim/simulator.hpp"

namespace cbps::chord {

class ChordNetwork {
 public:
  ChordNetwork(sim::SimulatorBase& sim, ChordConfig cfg, std::uint64_t seed,
               std::unique_ptr<sim::LatencyModel> latency = nullptr);
  ~ChordNetwork();

  ChordNetwork(const ChordNetwork&) = delete;
  ChordNetwork& operator=(const ChordNetwork&) = delete;

  // --- membership -------------------------------------------------------
  /// Create a node whose identifier is the consistent hash of `name`
  /// (salted on the rare id collision). The node is alive but not wired
  /// into the ring until build_static_ring() or begin_join().
  ChordNode& add_node(const std::string& name);

  /// Create a node with an explicit identifier (tests).
  ChordNode& add_node_with_id(Key id, std::string name);

  /// Install exact predecessor/successor/finger state on every alive
  /// node (equivalent to running the join + stabilization protocols to
  /// quiescence; what benches use).
  void build_static_ring();

  /// Dynamically join a new node through `bootstrap` using the message
  /// protocol. Returns the joining node.
  ChordNode& join_node(const std::string& name, Key bootstrap);

  /// Graceful departure with state handover.
  void leave_gracefully(Key id);

  /// Abrupt failure: the node simply stops responding.
  void crash(Key id);

  // --- fault injection ----------------------------------------------------
  /// Split the network: nodes in different groups cannot exchange
  /// messages (sends fail like a connection to a dead peer; in-flight
  /// messages are dropped at the cut). Nodes absent from every group —
  /// including nodes that join later — form an implicit remainder
  /// group, so set_partition({minority}) cuts `minority` off from
  /// everyone else.
  void set_partition(const std::vector<std::vector<Key>>& groups);

  /// Remove the partition. Ring re-merge is the nodes' job (remembered-
  /// contact probing + stabilization); the wire just works again.
  void heal_partition();

  bool partitioned() const { return partitioned_; }

  /// True when `a` and `b` can currently exchange messages.
  bool reachable(Key a, Key b) const;

  /// Gray failure: multiply every transmission delay touching `id` (as
  /// sender or receiver) by `factor` (>= 1). factor == 1 clears.
  void set_slow_factor(Key id, double factor);
  void clear_slow_factors();
  double slow_factor(Key id) const;

  /// Swap the in-flight loss model at runtime (nullptr = lossless).
  /// The model is a *prototype*: every node keeps its own clone as its
  /// sender-side channel, drawn from its own loss RNG stream, so loss
  /// decisions are a function of the sender's transmission history alone
  /// — independent of the engine's shard count. Installing and later
  /// removing a model never perturbs latency or topology sampling.
  void set_loss_model(std::unique_ptr<sim::LossModel> model);
  sim::LossModel* loss_model() { return loss_.get(); }

  /// Number of alive senders whose Gilbert–Elliott channel is currently
  /// in the Bad state (0 when another/no loss model is installed).
  std::size_t loss_bad_state_count() const;

  // --- lookup / iteration ------------------------------------------------
  bool is_alive(Key id) const;
  ChordNode* node(Key id);
  const ChordNode* node(Key id) const;

  std::size_t alive_count() const { return alive_.size(); }
  /// Sorted identifiers of alive nodes.
  std::vector<Key> alive_ids() const { return alive_; }
  /// Alive node by dense index (0 <= i < alive_count()), in id order.
  /// O(1): the alive set is kept as a sorted vector (workload drivers
  /// call this on their random-node-pick hot path).
  ChordNode& alive_node(std::size_t i);

  /// Ground truth: the node that covers `key` (the successor of `key`
  /// among alive ring members).
  Key oracle_successor(Key key) const;

  /// Start periodic maintenance on every alive node.
  void start_maintenance_all();
  /// Stop periodic maintenance on every alive node (lets a simulation
  /// drain to quiescence after a fault scenario).
  void stop_maintenance_all();

  // --- wire ---------------------------------------------------------------
  /// Deliver `msg` from `from` to `to` after one network latency sample.
  /// Returns false without sending if `to` is not alive (models a failed
  /// connection attempt; the caller should evict the peer and retry).
  bool transmit(Key from, Key to, WireMessage msg,
                overlay::MessageClass cls);

  /// Schedule a zero-latency local action (self-deliveries are
  /// asynchronous but free).
  void self_deliver(std::function<void()> action);

  // --- environment ---------------------------------------------------------
  sim::SimulatorBase& sim() { return sim_; }
  Rng& rng() { return rng_; }
  overlay::TrafficStats& traffic() { return traffic_; }
  const overlay::TrafficStats& traffic() const { return traffic_; }
  metrics::Registry& registry() { return registry_; }
  const ChordConfig& config() const { return cfg_; }
  RingParams ring() const { return cfg_.ring; }

  // --- observability ------------------------------------------------------
  /// Install a per-run trace sink (nullptr = tracing off, the default).
  /// Not owned; must outlive the network.
  void set_trace_sink(metrics::TraceSink* sink) { trace_sink_ = sink; }
  metrics::TraceSink* trace_sink() const { return trace_sink_; }

  /// Registry handles resolved once at construction so per-message code
  /// never does a std::map string lookup (see Registry's cached-handle
  /// API). Shared by the network's wire and every ChordNode.
  struct HotStats {
    explicit HotStats(metrics::Registry& reg);

    metrics::Counter* send_to_dead;
    metrics::Counter* retransmits;
    metrics::Counter* send_failed;
    metrics::Counter* dup_suppressed;
    metrics::Counter* route_dropped;
    metrics::Counter* route_no_candidate;
    metrics::Counter* mcast_dropped_keys;
    metrics::Counter* chain_dropped;
    metrics::Counter* chain_no_candidate;
    metrics::Counter* lookup_dropped;
    metrics::Counter* lookup_no_candidate;
    metrics::Counter* net_partition_refused;
    metrics::Counter* net_partition_dropped;
    metrics::Counter* net_lost;
    metrics::Counter* join_retry;
    std::array<metrics::Counter*, overlay::kMessageClassCount>
        net_lost_by_class;
    // Per-message-class wire service time (sampled latency incl. the
    // gray-failure slowdown, microseconds): the load observatory's
    // per-class service-time profile ("chord.net.delay_us.<class>").
    std::array<metrics::Histogram*, overlay::kMessageClassCount>
        delay_us_by_class;
    metrics::Histogram* route_hops;       // hops of completed app routes
    metrics::Histogram* mcast_fanout;     // branches per m-cast split
    metrics::Histogram* retries_per_send; // retransmits per reliable send
  };
  HotStats& hot() { return hot_; }

 private:
  // Per-sender wire state: every node draws its latency and loss
  // decisions from its own RNG streams (seeded from the run seed and the
  // node id) and owns a clone of the loss-model prototype. This makes
  // every wire draw a pure function of the sender's own transmission
  // history, which is what lets the parallel engine transmit from many
  // shards concurrently while staying bit-identical to the serial run:
  // a single shared stream would be consumed in wall-clock order.
  struct WireState {
    common::Domain domain = common::kGlobalDomain;
    Rng latency_rng;
    Rng loss_rng;
    std::unique_ptr<sim::LossModel> loss;  // null = lossless channel
  };

  sim::SimulatorBase& sim_;
  ChordConfig cfg_;
  std::uint64_t seed_;
  Rng rng_;
  std::unique_ptr<sim::LatencyModel> latency_;
  std::unique_ptr<sim::LossModel> loss_;  // prototype; null = lossless
  std::unordered_map<Key, WireState> wire_;
  overlay::TrafficStats traffic_;
  metrics::Registry registry_;
  HotStats hot_{registry_};
  metrics::TraceSink* trace_sink_ = nullptr;

  std::map<Key, std::unique_ptr<ChordNode>> nodes_;  // includes dead nodes
  std::vector<Key> alive_;  // sorted; O(1) dense indexing for benches
  // Gracefully-departed (not crashed) nodes: lame ducks that may still
  // receive acks while their pending reliable sends drain.
  std::unordered_set<Key> departed_;

  // Fault state. partition_group_ maps node -> group id while a
  // partition is active (unlisted nodes are group 0); slow_factors_
  // holds the gray-failure latency multipliers (> 1 only).
  bool partitioned_ = false;
  std::unordered_map<Key, int> partition_group_;
  std::unordered_map<Key, double> slow_factors_;
};

}  // namespace cbps::chord
