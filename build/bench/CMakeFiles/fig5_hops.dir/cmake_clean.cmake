file(REMOVE_RECURSE
  "CMakeFiles/fig5_hops.dir/fig5_hops.cpp.o"
  "CMakeFiles/fig5_hops.dir/fig5_hops.cpp.o.d"
  "fig5_hops"
  "fig5_hops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_hops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
