file(REMOVE_RECURSE
  "CMakeFiles/route_cache_ablation.dir/route_cache_ablation.cpp.o"
  "CMakeFiles/route_cache_ablation.dir/route_cache_ablation.cpp.o.d"
  "route_cache_ablation"
  "route_cache_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_cache_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
