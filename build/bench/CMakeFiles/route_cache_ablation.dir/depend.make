# Empty dependencies file for route_cache_ablation.
# This may be replaced when dependencies are built.
