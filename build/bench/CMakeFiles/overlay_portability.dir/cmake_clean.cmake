file(REMOVE_RECURSE
  "CMakeFiles/overlay_portability.dir/overlay_portability.cpp.o"
  "CMakeFiles/overlay_portability.dir/overlay_portability.cpp.o.d"
  "overlay_portability"
  "overlay_portability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overlay_portability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
