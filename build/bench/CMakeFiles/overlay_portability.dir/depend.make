# Empty dependencies file for overlay_portability.
# This may be replaced when dependencies are built.
