# Empty compiler generated dependencies file for fig9a_buffering.
# This may be replaced when dependencies are built.
