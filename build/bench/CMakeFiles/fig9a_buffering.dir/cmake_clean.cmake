file(REMOVE_RECURSE
  "CMakeFiles/fig9a_buffering.dir/fig9a_buffering.cpp.o"
  "CMakeFiles/fig9a_buffering.dir/fig9a_buffering.cpp.o.d"
  "fig9a_buffering"
  "fig9a_buffering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9a_buffering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
