file(REMOVE_RECURSE
  "libcbps_bench_harness.a"
)
