file(REMOVE_RECURSE
  "CMakeFiles/cbps_bench_harness.dir/harness.cpp.o"
  "CMakeFiles/cbps_bench_harness.dir/harness.cpp.o.d"
  "libcbps_bench_harness.a"
  "libcbps_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbps_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
