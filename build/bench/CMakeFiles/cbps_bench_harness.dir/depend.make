# Empty dependencies file for cbps_bench_harness.
# This may be replaced when dependencies are built.
