file(REMOVE_RECURSE
  "CMakeFiles/micro_pubsub.dir/micro_pubsub.cpp.o"
  "CMakeFiles/micro_pubsub.dir/micro_pubsub.cpp.o.d"
  "micro_pubsub"
  "micro_pubsub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_pubsub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
