file(REMOVE_RECURSE
  "CMakeFiles/fig9b_discretization.dir/fig9b_discretization.cpp.o"
  "CMakeFiles/fig9b_discretization.dir/fig9b_discretization.cpp.o.d"
  "fig9b_discretization"
  "fig9b_discretization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9b_discretization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
