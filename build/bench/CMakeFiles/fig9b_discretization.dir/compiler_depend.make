# Empty compiler generated dependencies file for fig9b_discretization.
# This may be replaced when dependencies are built.
