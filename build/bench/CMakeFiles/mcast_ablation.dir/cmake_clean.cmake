file(REMOVE_RECURSE
  "CMakeFiles/mcast_ablation.dir/mcast_ablation.cpp.o"
  "CMakeFiles/mcast_ablation.dir/mcast_ablation.cpp.o.d"
  "mcast_ablation"
  "mcast_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcast_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
