# Empty dependencies file for mcast_ablation.
# This may be replaced when dependencies are built.
