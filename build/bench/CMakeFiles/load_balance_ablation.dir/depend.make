# Empty dependencies file for load_balance_ablation.
# This may be replaced when dependencies are built.
