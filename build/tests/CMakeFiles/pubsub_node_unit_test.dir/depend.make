# Empty dependencies file for pubsub_node_unit_test.
# This may be replaced when dependencies are built.
