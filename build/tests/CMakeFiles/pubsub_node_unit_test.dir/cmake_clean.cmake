file(REMOVE_RECURSE
  "CMakeFiles/pubsub_node_unit_test.dir/pubsub_node_unit_test.cpp.o"
  "CMakeFiles/pubsub_node_unit_test.dir/pubsub_node_unit_test.cpp.o.d"
  "pubsub_node_unit_test"
  "pubsub_node_unit_test.pdb"
  "pubsub_node_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pubsub_node_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
