file(REMOVE_RECURSE
  "CMakeFiles/counting_index_test.dir/counting_index_test.cpp.o"
  "CMakeFiles/counting_index_test.dir/counting_index_test.cpp.o.d"
  "counting_index_test"
  "counting_index_test.pdb"
  "counting_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counting_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
