# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/chord_test[1]_include.cmake")
include("/root/repo/build/tests/mapping_test[1]_include.cmake")
include("/root/repo/build/tests/pubsub_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/counting_index_test[1]_include.cmake")
include("/root/repo/build/tests/pastry_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/overlay_test[1]_include.cmake")
include("/root/repo/build/tests/pubsub_node_unit_test[1]_include.cmake")
include("/root/repo/build/tests/flags_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/churn_test[1]_include.cmake")
