file(REMOVE_RECURSE
  "libcbps_pastry.a"
)
