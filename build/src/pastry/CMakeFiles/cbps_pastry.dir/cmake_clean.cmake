file(REMOVE_RECURSE
  "CMakeFiles/cbps_pastry.dir/network.cpp.o"
  "CMakeFiles/cbps_pastry.dir/network.cpp.o.d"
  "CMakeFiles/cbps_pastry.dir/node.cpp.o"
  "CMakeFiles/cbps_pastry.dir/node.cpp.o.d"
  "libcbps_pastry.a"
  "libcbps_pastry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbps_pastry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
