# Empty compiler generated dependencies file for cbps_pastry.
# This may be replaced when dependencies are built.
