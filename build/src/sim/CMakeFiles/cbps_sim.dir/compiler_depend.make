# Empty compiler generated dependencies file for cbps_sim.
# This may be replaced when dependencies are built.
