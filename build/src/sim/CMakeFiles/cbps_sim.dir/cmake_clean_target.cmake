file(REMOVE_RECURSE
  "libcbps_sim.a"
)
