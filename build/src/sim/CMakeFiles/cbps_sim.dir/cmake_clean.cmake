file(REMOVE_RECURSE
  "CMakeFiles/cbps_sim.dir/simulator.cpp.o"
  "CMakeFiles/cbps_sim.dir/simulator.cpp.o.d"
  "libcbps_sim.a"
  "libcbps_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbps_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
