
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pubsub/counting_index.cpp" "src/pubsub/CMakeFiles/cbps_pubsub.dir/counting_index.cpp.o" "gcc" "src/pubsub/CMakeFiles/cbps_pubsub.dir/counting_index.cpp.o.d"
  "/root/repo/src/pubsub/delivery_checker.cpp" "src/pubsub/CMakeFiles/cbps_pubsub.dir/delivery_checker.cpp.o" "gcc" "src/pubsub/CMakeFiles/cbps_pubsub.dir/delivery_checker.cpp.o.d"
  "/root/repo/src/pubsub/mapping.cpp" "src/pubsub/CMakeFiles/cbps_pubsub.dir/mapping.cpp.o" "gcc" "src/pubsub/CMakeFiles/cbps_pubsub.dir/mapping.cpp.o.d"
  "/root/repo/src/pubsub/node.cpp" "src/pubsub/CMakeFiles/cbps_pubsub.dir/node.cpp.o" "gcc" "src/pubsub/CMakeFiles/cbps_pubsub.dir/node.cpp.o.d"
  "/root/repo/src/pubsub/schema.cpp" "src/pubsub/CMakeFiles/cbps_pubsub.dir/schema.cpp.o" "gcc" "src/pubsub/CMakeFiles/cbps_pubsub.dir/schema.cpp.o.d"
  "/root/repo/src/pubsub/store.cpp" "src/pubsub/CMakeFiles/cbps_pubsub.dir/store.cpp.o" "gcc" "src/pubsub/CMakeFiles/cbps_pubsub.dir/store.cpp.o.d"
  "/root/repo/src/pubsub/subscription.cpp" "src/pubsub/CMakeFiles/cbps_pubsub.dir/subscription.cpp.o" "gcc" "src/pubsub/CMakeFiles/cbps_pubsub.dir/subscription.cpp.o.d"
  "/root/repo/src/pubsub/system.cpp" "src/pubsub/CMakeFiles/cbps_pubsub.dir/system.cpp.o" "gcc" "src/pubsub/CMakeFiles/cbps_pubsub.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cbps_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cbps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/cbps_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/chord/CMakeFiles/cbps_chord.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/cbps_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
