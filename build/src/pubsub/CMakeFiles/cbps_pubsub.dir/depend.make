# Empty dependencies file for cbps_pubsub.
# This may be replaced when dependencies are built.
