file(REMOVE_RECURSE
  "CMakeFiles/cbps_pubsub.dir/counting_index.cpp.o"
  "CMakeFiles/cbps_pubsub.dir/counting_index.cpp.o.d"
  "CMakeFiles/cbps_pubsub.dir/delivery_checker.cpp.o"
  "CMakeFiles/cbps_pubsub.dir/delivery_checker.cpp.o.d"
  "CMakeFiles/cbps_pubsub.dir/mapping.cpp.o"
  "CMakeFiles/cbps_pubsub.dir/mapping.cpp.o.d"
  "CMakeFiles/cbps_pubsub.dir/node.cpp.o"
  "CMakeFiles/cbps_pubsub.dir/node.cpp.o.d"
  "CMakeFiles/cbps_pubsub.dir/schema.cpp.o"
  "CMakeFiles/cbps_pubsub.dir/schema.cpp.o.d"
  "CMakeFiles/cbps_pubsub.dir/store.cpp.o"
  "CMakeFiles/cbps_pubsub.dir/store.cpp.o.d"
  "CMakeFiles/cbps_pubsub.dir/subscription.cpp.o"
  "CMakeFiles/cbps_pubsub.dir/subscription.cpp.o.d"
  "CMakeFiles/cbps_pubsub.dir/system.cpp.o"
  "CMakeFiles/cbps_pubsub.dir/system.cpp.o.d"
  "libcbps_pubsub.a"
  "libcbps_pubsub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbps_pubsub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
