file(REMOVE_RECURSE
  "libcbps_pubsub.a"
)
