file(REMOVE_RECURSE
  "CMakeFiles/cbps_metrics.dir/registry.cpp.o"
  "CMakeFiles/cbps_metrics.dir/registry.cpp.o.d"
  "libcbps_metrics.a"
  "libcbps_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbps_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
