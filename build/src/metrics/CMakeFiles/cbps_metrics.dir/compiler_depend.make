# Empty compiler generated dependencies file for cbps_metrics.
# This may be replaced when dependencies are built.
