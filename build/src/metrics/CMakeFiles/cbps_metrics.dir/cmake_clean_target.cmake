file(REMOVE_RECURSE
  "libcbps_metrics.a"
)
