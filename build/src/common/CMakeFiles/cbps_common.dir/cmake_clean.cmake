file(REMOVE_RECURSE
  "CMakeFiles/cbps_common.dir/flags.cpp.o"
  "CMakeFiles/cbps_common.dir/flags.cpp.o.d"
  "CMakeFiles/cbps_common.dir/hash.cpp.o"
  "CMakeFiles/cbps_common.dir/hash.cpp.o.d"
  "CMakeFiles/cbps_common.dir/logging.cpp.o"
  "CMakeFiles/cbps_common.dir/logging.cpp.o.d"
  "CMakeFiles/cbps_common.dir/rng.cpp.o"
  "CMakeFiles/cbps_common.dir/rng.cpp.o.d"
  "CMakeFiles/cbps_common.dir/sha1.cpp.o"
  "CMakeFiles/cbps_common.dir/sha1.cpp.o.d"
  "libcbps_common.a"
  "libcbps_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbps_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
