# Empty dependencies file for cbps_common.
# This may be replaced when dependencies are built.
