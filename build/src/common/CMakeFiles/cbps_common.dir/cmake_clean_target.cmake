file(REMOVE_RECURSE
  "libcbps_common.a"
)
