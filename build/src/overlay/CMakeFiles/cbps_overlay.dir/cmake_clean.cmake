file(REMOVE_RECURSE
  "CMakeFiles/cbps_overlay.dir/mcast_partition.cpp.o"
  "CMakeFiles/cbps_overlay.dir/mcast_partition.cpp.o.d"
  "CMakeFiles/cbps_overlay.dir/payload.cpp.o"
  "CMakeFiles/cbps_overlay.dir/payload.cpp.o.d"
  "libcbps_overlay.a"
  "libcbps_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbps_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
