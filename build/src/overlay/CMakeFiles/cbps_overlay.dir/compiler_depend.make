# Empty compiler generated dependencies file for cbps_overlay.
# This may be replaced when dependencies are built.
