file(REMOVE_RECURSE
  "libcbps_overlay.a"
)
