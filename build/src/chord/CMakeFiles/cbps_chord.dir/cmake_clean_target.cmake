file(REMOVE_RECURSE
  "libcbps_chord.a"
)
