# Empty dependencies file for cbps_chord.
# This may be replaced when dependencies are built.
