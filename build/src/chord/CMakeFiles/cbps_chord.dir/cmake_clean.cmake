file(REMOVE_RECURSE
  "CMakeFiles/cbps_chord.dir/finger_table.cpp.o"
  "CMakeFiles/cbps_chord.dir/finger_table.cpp.o.d"
  "CMakeFiles/cbps_chord.dir/location_cache.cpp.o"
  "CMakeFiles/cbps_chord.dir/location_cache.cpp.o.d"
  "CMakeFiles/cbps_chord.dir/network.cpp.o"
  "CMakeFiles/cbps_chord.dir/network.cpp.o.d"
  "CMakeFiles/cbps_chord.dir/node.cpp.o"
  "CMakeFiles/cbps_chord.dir/node.cpp.o.d"
  "libcbps_chord.a"
  "libcbps_chord.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbps_chord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
