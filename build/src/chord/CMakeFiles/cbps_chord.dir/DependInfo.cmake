
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chord/finger_table.cpp" "src/chord/CMakeFiles/cbps_chord.dir/finger_table.cpp.o" "gcc" "src/chord/CMakeFiles/cbps_chord.dir/finger_table.cpp.o.d"
  "/root/repo/src/chord/location_cache.cpp" "src/chord/CMakeFiles/cbps_chord.dir/location_cache.cpp.o" "gcc" "src/chord/CMakeFiles/cbps_chord.dir/location_cache.cpp.o.d"
  "/root/repo/src/chord/network.cpp" "src/chord/CMakeFiles/cbps_chord.dir/network.cpp.o" "gcc" "src/chord/CMakeFiles/cbps_chord.dir/network.cpp.o.d"
  "/root/repo/src/chord/node.cpp" "src/chord/CMakeFiles/cbps_chord.dir/node.cpp.o" "gcc" "src/chord/CMakeFiles/cbps_chord.dir/node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cbps_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cbps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/cbps_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/cbps_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
