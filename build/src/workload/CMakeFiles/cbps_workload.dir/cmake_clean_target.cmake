file(REMOVE_RECURSE
  "libcbps_workload.a"
)
