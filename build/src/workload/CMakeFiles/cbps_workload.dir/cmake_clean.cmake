file(REMOVE_RECURSE
  "CMakeFiles/cbps_workload.dir/churn.cpp.o"
  "CMakeFiles/cbps_workload.dir/churn.cpp.o.d"
  "CMakeFiles/cbps_workload.dir/driver.cpp.o"
  "CMakeFiles/cbps_workload.dir/driver.cpp.o.d"
  "CMakeFiles/cbps_workload.dir/generator.cpp.o"
  "CMakeFiles/cbps_workload.dir/generator.cpp.o.d"
  "CMakeFiles/cbps_workload.dir/trace.cpp.o"
  "CMakeFiles/cbps_workload.dir/trace.cpp.o.d"
  "libcbps_workload.a"
  "libcbps_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbps_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
