# Empty compiler generated dependencies file for cbps_workload.
# This may be replaced when dependencies are built.
