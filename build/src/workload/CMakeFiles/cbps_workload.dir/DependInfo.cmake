
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/churn.cpp" "src/workload/CMakeFiles/cbps_workload.dir/churn.cpp.o" "gcc" "src/workload/CMakeFiles/cbps_workload.dir/churn.cpp.o.d"
  "/root/repo/src/workload/driver.cpp" "src/workload/CMakeFiles/cbps_workload.dir/driver.cpp.o" "gcc" "src/workload/CMakeFiles/cbps_workload.dir/driver.cpp.o.d"
  "/root/repo/src/workload/generator.cpp" "src/workload/CMakeFiles/cbps_workload.dir/generator.cpp.o" "gcc" "src/workload/CMakeFiles/cbps_workload.dir/generator.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/workload/CMakeFiles/cbps_workload.dir/trace.cpp.o" "gcc" "src/workload/CMakeFiles/cbps_workload.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cbps_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pubsub/CMakeFiles/cbps_pubsub.dir/DependInfo.cmake"
  "/root/repo/build/src/chord/CMakeFiles/cbps_chord.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cbps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/cbps_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/cbps_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
