# Empty compiler generated dependencies file for cbps_sim_tool.
# This may be replaced when dependencies are built.
