file(REMOVE_RECURSE
  "CMakeFiles/cbps_sim_tool.dir/cbps_sim.cpp.o"
  "CMakeFiles/cbps_sim_tool.dir/cbps_sim.cpp.o.d"
  "cbps-sim"
  "cbps-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbps_sim_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
