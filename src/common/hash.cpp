#include "cbps/common/hash.hpp"

namespace cbps {

namespace {

Key digest_to_key(const Sha1::Digest& d, RingParams ring) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | d[static_cast<std::size_t>(i)];
  return ring.wrap(v);
}

}  // namespace

Key consistent_hash(std::string_view name, RingParams ring) {
  return digest_to_key(Sha1::hash(name), ring);
}

Key consistent_hash(std::uint64_t v, RingParams ring) {
  std::uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<std::uint8_t>(v >> (56 - 8 * i));
  }
  Sha1 h;
  h.update(bytes, sizeof bytes);
  return digest_to_key(h.finish(), ring);
}

}  // namespace cbps
