#include "cbps/common/flags.hpp"

#include <algorithm>
#include <charconv>
#include <iomanip>

namespace cbps {

const FlagParser::Flag* FlagParser::find(const std::string& name) const {
  for (const Flag& f : flags_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

bool FlagParser::assign(const Flag& flag, const std::string& value,
                        std::ostream& err) {
  bool ok = true;
  std::visit(
      [&](auto* target) {
        using T = std::remove_pointer_t<decltype(target)>;
        if constexpr (std::is_same_v<T, bool>) {
          if (value == "true" || value == "1" || value.empty()) {
            *target = true;
          } else if (value == "false" || value == "0") {
            *target = false;
          } else {
            ok = false;
          }
        } else if constexpr (std::is_same_v<T, std::int64_t>) {
          auto [p, ec] = std::from_chars(value.data(),
                                         value.data() + value.size(),
                                         *target);
          ok = ec == std::errc{} && p == value.data() + value.size();
        } else if constexpr (std::is_same_v<T, double>) {
          try {
            std::size_t pos = 0;
            *target = std::stod(value, &pos);
            ok = pos == value.size();
          } catch (...) {
            ok = false;
          }
        } else {
          *target = value;
        }
      },
      flag.target);
  if (!ok) {
    err << "invalid value for --" << flag.name << ": '" << value << "'\n";
  }
  return ok;
}

bool FlagParser::parse(int argc, const char* const* argv, std::ostream& out,
                       std::ostream& err) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      print_help(out);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      err << "unexpected argument: " << arg << '\n';
      return false;
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    const Flag* flag = find(arg);
    if (flag == nullptr) {
      err << "unknown flag: --" << arg << '\n';
      return false;
    }
    if (!has_value) {
      const bool is_bool = std::holds_alternative<bool*>(flag->target);
      if (is_bool) {
        // bare boolean flag
      } else if (i + 1 < argc) {
        value = argv[++i];
        has_value = true;
      } else {
        err << "missing value for --" << arg << '\n';
        return false;
      }
    }
    if (!assign(*flag, value, err)) return false;
  }
  return true;
}

void FlagParser::print_help(std::ostream& os) const {
  os << description_ << "\n\nflags:\n";
  for (const Flag& f : flags_) {
    std::string current;
    std::visit(
        [&](auto* target) {
          using T = std::remove_pointer_t<decltype(target)>;
          if constexpr (std::is_same_v<T, bool>) {
            current = *target ? "true" : "false";
          } else if constexpr (std::is_same_v<T, std::string>) {
            current = *target;
          } else {
            current = std::to_string(*target);
          }
        },
        f.target);
    os << "  --" << std::left << std::setw(22) << f.name << ' ' << f.help
       << " (default: " << current << ")\n";
  }
}

}  // namespace cbps
