#include "cbps/common/logging.hpp"

#include <cstdio>

#include "cbps/common/assert.hpp"

namespace cbps {

namespace {

// Wire the assertion failure path to the recent-lines ring for every
// binary that links the logger (tests, benches, tools alike): the lines
// leading up to a CBPS_ASSERT are usually the story.
[[maybe_unused]] const bool g_assert_hook_installed = [] {
  detail::assert_dump_hook() = [] {
    Logger::instance().dump_recent(std::cerr);
  };
  return true;
}();

}  // namespace

namespace logctx {

State& state() {
  thread_local State s;
  return s;
}

}  // namespace logctx

namespace {

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      break;
  }
  return "?????";
}

}  // namespace

void Logger::write(LogLevel level, std::string_view msg) {
  std::string line;
  line.reserve(msg.size() + 32);
  line += '[';
  line += level_name(level);
  line += ']';
  const logctx::State& ctx = logctx::state();
  if (ctx.clock_now_us != nullptr) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "[t=%.6fs]",
                  static_cast<double>(ctx.clock_now_us(ctx.clock_ctx)) / 1e6);
    line += buf;
  }
  if (ctx.has_node) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "[n=%llu]",
                  static_cast<unsigned long long>(ctx.node));
    line += buf;
  }
  line += ' ';
  line += msg;

  const bool to_console = level >= this->level();
  std::ostream& os = (level >= LogLevel::kWarn) ? std::cerr : std::clog;
  // detlint: concurrency-ok(whole-line console/ring mutex; log text never feeds run state)
  const std::lock_guard<std::mutex> lock(write_mu_);
  if (level >= ring_level()) {
    if (ring_.size() >= kRingCap) ring_.pop_front();
    ring_.push_back(line);
  }
  if (to_console) os << line << '\n';
}

std::vector<std::string> Logger::recent_lines() const {
  // detlint: concurrency-ok(ring snapshot under the logger mutex)
  const std::lock_guard<std::mutex> lock(write_mu_);
  return {ring_.begin(), ring_.end()};
}

void Logger::dump_recent(std::ostream& os) {
  // detlint: concurrency-ok(ring snapshot under the logger mutex)
  const std::lock_guard<std::mutex> lock(write_mu_);
  if (ring_.empty()) return;
  os << "--- recent log lines (" << ring_.size() << ") ---\n";
  for (const auto& l : ring_) os << l << '\n';
  os << "--- end recent log lines ---\n";
  ring_.clear();
}

void Logger::clear_recent() {
  // detlint: concurrency-ok(ring snapshot under the logger mutex)
  const std::lock_guard<std::mutex> lock(write_mu_);
  ring_.clear();
}

}  // namespace cbps
