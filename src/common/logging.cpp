#include "cbps/common/logging.hpp"

namespace cbps {

namespace {

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      break;
  }
  return "?????";
}

}  // namespace

void Logger::write(LogLevel level, std::string_view msg) {
  std::ostream& os = (level >= LogLevel::kWarn) ? std::cerr : std::clog;
  const std::lock_guard<std::mutex> lock(write_mu_);
  os << '[' << level_name(level) << "] " << msg << '\n';
}

}  // namespace cbps
