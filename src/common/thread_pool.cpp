#include "cbps/common/thread_pool.hpp"

#include <utility>

namespace cbps::common {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mu_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock lock(mu_);
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mu_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr e = std::move(first_error_);
    first_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      task_ready_.wait(lock,
                       [this] { return stopping_ || !queue_.empty(); });
      // Drain the queue even when stopping: destructor semantics are
      // "finish everything submitted, then join".
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    try {
      task();
    } catch (...) {
      std::unique_lock lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::unique_lock lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

std::size_t ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

}  // namespace cbps::common
