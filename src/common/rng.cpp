#include "cbps/common/rng.hpp"

#include <cmath>

#include "cbps/common/types.hpp"

namespace cbps {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl64(std::uint64_t v, unsigned n) {
  return (v << n) | (v >> (64 - n));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl64(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl64(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  CBPS_ASSERT(lo <= hi);
  const std::uint64_t range =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next());
  }
  // Lemire's unbiased bounded generation.
  std::uint64_t x = next();
  Uint128 m = static_cast<Uint128>(x) * range;
  auto l = static_cast<std::uint64_t>(m);
  if (l < range) {
    const std::uint64_t t = (0 - range) % range;
    while (l < t) {
      x = next();
      m = static_cast<Uint128>(x) * range;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                   static_cast<std::uint64_t>(m >> 64));
}

double Rng::uniform01() {
  // 53 random bits into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

double Rng::exponential(double mean) {
  CBPS_ASSERT(mean > 0.0);
  double u = uniform01();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

Rng Rng::split() {
  return Rng(next() ^ 0xD1B54A32D192ED03ull);
}

ZipfSampler::ZipfSampler(std::uint64_t n, double s) : n_(n), s_(s) {
  CBPS_ASSERT(n >= 1);
  CBPS_ASSERT(s > 0.0);
  h_x1_ = h(1.5) - 1.0;
  h_n_ = h(static_cast<double>(n) + 0.5);
  threshold_ = 2.0 - h_inv(h(2.5) - std::pow(2.0, -s));
}

// H(x) = integral of 1/t^s: (x^(1-s) - 1) / (1 - s), with the s == 1
// limit log(x). Shifted to be exact for the rejection-inversion scheme.
double ZipfSampler::h(double x) const {
  if (std::abs(s_ - 1.0) < 1e-12) return std::log(x);
  return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double ZipfSampler::h_inv(double x) const {
  if (std::abs(s_ - 1.0) < 1e-12) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
}

std::uint64_t ZipfSampler::operator()(Rng& rng) const {
  if (n_ == 1) return 1;
  // Hörmann rejection-inversion (as used by e.g. Apache Commons).
  for (;;) {
    const double u = h_n_ + rng.uniform01() * (h_x1_ - h_n_);
    const double x = h_inv(u);
    std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double kd = static_cast<double>(k);
    if (kd - x <= threshold_ ||
        u >= h(kd + 0.5) - std::pow(kd, -s_)) {
      return k;
    }
  }
}

void RunningStat::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  sum_ += x;
  sum_sq_ += x * x;
}

void RunningStat::merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  count_ += other.count_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  const double n = static_cast<double>(count_);
  const double m = sum_ / n;
  return (sum_sq_ - n * m * m) / (n - 1);
}

}  // namespace cbps
