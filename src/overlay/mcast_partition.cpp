#include "cbps/overlay/mcast_partition.hpp"

#include <algorithm>

#include "cbps/common/assert.hpp"

namespace cbps::overlay {

McastPartition partition_mcast_targets(
    RingParams ring, Key self, const std::function<bool(Key)>& covers,
    std::vector<Key> targets, const std::vector<Key>& candidates) {
  McastPartition out;
  out.delegated.resize(candidates.size());

  std::sort(targets.begin(), targets.end(), [&](Key a, Key b) {
    return ring.distance(self, a) < ring.distance(self, b);
  });
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());

  for (Key k : targets) {
    if (covers(k)) {
      out.local.push_back(k);
      continue;
    }
    if (candidates.empty()) {
      out.undeliverable.push_back(k);
      continue;
    }
    std::size_t chosen = 0;
    if (!ring.in_open_closed(self, candidates.front(), k)) {
      const std::uint64_t dk = ring.distance(self, k);
      for (std::size_t j = candidates.size(); j-- > 1;) {
        if (ring.distance(self, candidates[j]) < dk) {
          chosen = j;
          break;
        }
      }
    }
    out.delegated[chosen].push_back(k);
  }
  return out;
}

}  // namespace cbps::overlay
