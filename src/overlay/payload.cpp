#include "cbps/overlay/payload.hpp"

#include <numeric>

namespace cbps::overlay {

std::string_view to_string(MessageClass cls) {
  switch (cls) {
    case MessageClass::kSubscribe:
      return "subscribe";
    case MessageClass::kUnsubscribe:
      return "unsubscribe";
    case MessageClass::kPublish:
      return "publish";
    case MessageClass::kNotify:
      return "notify";
    case MessageClass::kCollect:
      return "collect";
    case MessageClass::kStateTransfer:
      return "state_transfer";
    case MessageClass::kControl:
      return "control";
    case MessageClass::kGossip:
      return "gossip";
    case MessageClass::kCount:
      break;
  }
  return "unknown";
}

std::uint64_t TrafficStats::hops(MessageClass cls) const {
  std::uint64_t n = 0;
  for (const Block& b : blocks_) n += b.hops[index(cls)];
  return n;
}

std::uint64_t TrafficStats::deliveries(MessageClass cls) const {
  std::uint64_t n = 0;
  for (const Block& b : blocks_) n += b.deliveries[index(cls)];
  return n;
}

std::uint64_t TrafficStats::bytes(MessageClass cls) const {
  std::uint64_t n = 0;
  for (const Block& b : blocks_) n += b.bytes[index(cls)];
  return n;
}

std::uint64_t TrafficStats::total_hops() const {
  std::uint64_t n = 0;
  for (const Block& b : blocks_) {
    n = std::accumulate(b.hops.begin(), b.hops.end(), n);
  }
  return n;
}

std::uint64_t TrafficStats::total_bytes() const {
  std::uint64_t n = 0;
  for (const Block& b : blocks_) {
    n = std::accumulate(b.bytes.begin(), b.bytes.end(), n);
  }
  return n;
}

RunningStat TrafficStats::route_hops(MessageClass cls) const {
  RunningStat out;
  for (const Block& b : blocks_) out.merge(b.route_hops[index(cls)]);
  return out;
}

void TrafficStats::reset() {
  for (Block& b : blocks_) {
    b.hops.fill(0);
    b.deliveries.fill(0);
    b.bytes.fill(0);
    b.route_hops.fill(RunningStat{});
  }
}

}  // namespace cbps::overlay
