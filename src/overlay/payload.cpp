#include "cbps/overlay/payload.hpp"

#include <numeric>

namespace cbps::overlay {

std::string_view to_string(MessageClass cls) {
  switch (cls) {
    case MessageClass::kSubscribe:
      return "subscribe";
    case MessageClass::kUnsubscribe:
      return "unsubscribe";
    case MessageClass::kPublish:
      return "publish";
    case MessageClass::kNotify:
      return "notify";
    case MessageClass::kCollect:
      return "collect";
    case MessageClass::kStateTransfer:
      return "state_transfer";
    case MessageClass::kControl:
      return "control";
    case MessageClass::kCount:
      break;
  }
  return "unknown";
}

std::uint64_t TrafficStats::total_hops() const {
  return std::accumulate(hops_.begin(), hops_.end(), std::uint64_t{0});
}

std::uint64_t TrafficStats::total_bytes() const {
  return std::accumulate(bytes_.begin(), bytes_.end(), std::uint64_t{0});
}

void TrafficStats::reset() {
  hops_.fill(0);
  deliveries_.fill(0);
  bytes_.fill(0);
  route_hops_.fill(RunningStat{});
}

}  // namespace cbps::overlay
