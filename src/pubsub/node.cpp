#include "cbps/pubsub/node.hpp"

#include <algorithm>
#include <iterator>
#include <set>
#include <utility>

#include "cbps/common/logging.hpp"
#include "cbps/common/sorted_view.hpp"

namespace cbps::pubsub {

using metrics::DropReason;
using metrics::SpanKind;
using overlay::PayloadPtr;

namespace {

// SplitMix64 finalizer: decorrelates the per-node gossip RNG streams
// derived from (base seed, node id) — adjacent ids must not produce
// adjacent states.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

PubSubNode::PubSubNode(overlay::OverlayNode& overlay,
                       sim::SimulatorBase& sim, const AkMapping& mapping,
                       PubSubConfig cfg)
    : overlay_(overlay), sim_(sim), mapping_(mapping), cfg_(cfg),
      gossip_rng_(mix64(cfg.gossip_seed ^ mix64(overlay.id()))),
      key_load_(cfg.key_topk_capacity) {
  store_.use_engine(cfg_.match_engine, mapping_.schema());
  overlay_.set_app(this);
}

PubSubNode::~PubSubNode() = default;

// ---------------------------------------------------------------------------
// Application API
// ---------------------------------------------------------------------------

void PubSubNode::send_to_keys(const std::vector<Key>& keys,
                              PayloadPtr payload,
                              PubSubConfig::Transport transport) {
  if (keys.empty()) return;
  switch (transport) {
    case PubSubConfig::Transport::kUnicast:
      for (Key k : keys) overlay_.send(k, payload);
      break;
    case PubSubConfig::Transport::kMulticast:
      overlay_.m_cast(keys, std::move(payload));
      break;
    case PubSubConfig::Transport::kChain:
      overlay_.chain_cast(keys, std::move(payload));
      break;
  }
}

void PubSubNode::subscribe(SubscriptionPtr sub, sim::SimTime ttl) {
  CBPS_ASSERT(sub != nullptr && sub->id != 0);
  CBPS_ASSERT_MSG(sub->subscriber == overlay_.id(),
                  "subscription's subscriber key must be this node");
  const std::vector<Key> keys = mapping_.subscription_keys(*sub);
  const sim::SimTime expiry =
      ttl == sim::kSimTimeNever ? sim::kSimTimeNever : sim_.now() + ttl;
  own_subs_[sub->id] = OwnSub{sub, expiry};
  auto msg = std::make_shared<SubscribeMsg>(
      sub, expiry, mapping_.subscription_ranges(*sub));
  if (trace_ != nullptr && trace_->enabled()) {
    if (const std::uint64_t tid = trace_->maybe_start_trace(); tid != 0) {
      const auto now = sim_.now();
      const std::uint64_t root = trace_->emit(
          metrics::TraceRef{tid, 0}, SpanKind::kSubscribe, overlay_.id(),
          now, now, sub->id, keys.size());
      const std::uint64_t map_span = trace_->emit(
          metrics::TraceRef{tid, root}, SpanKind::kMap, overlay_.id(), now,
          now, keys.size());
      msg->trace = metrics::TraceRef{tid, map_span};
    }
  }
  send_to_keys(keys, std::move(msg), cfg_.sub_transport);
}

std::size_t PubSubNode::refresh_subscriptions() {
  if (halted_) return 0;
  std::size_t n = 0;
  // Refresh sends draw wire randomness per message, so emission order
  // must be a function of the subscription set, not hash layout (D1).
  for (const auto* entry : sorted_view(own_subs_)) {
    const OwnSub& own = entry->second;
    if (own.expires_at != sim::kSimTimeNever &&
        own.expires_at <= sim_.now()) {
      continue;  // already expired; a refresh must not resurrect it
    }
    send_to_keys(mapping_.subscription_keys(*own.sub),
                 std::make_shared<SubscribeMsg>(
                     own.sub, own.expires_at,
                     mapping_.subscription_ranges(*own.sub)),
                 cfg_.sub_transport);
    ++n;
  }
  return n;
}

void PubSubNode::unsubscribe(SubscriptionId id) {
  auto it = own_subs_.find(id);
  if (it == own_subs_.end()) return;
  const std::vector<Key> keys =
      mapping_.subscription_keys(*it->second.sub);
  send_to_keys(keys, std::make_shared<UnsubscribeMsg>(id),
               cfg_.sub_transport);
  own_subs_.erase(it);
}

void PubSubNode::publish(EventPtr event) {
  CBPS_ASSERT(event != nullptr && event->id != 0);
  const std::vector<Key> keys = mapping_.event_keys(*event);
  fanout_hist_.add(static_cast<double>(keys.size()));
  auto msg =
      std::make_shared<PublishMsg>(event, overlay_.id(), sim_.now());
  if (trace_ != nullptr && trace_->enabled()) {
    if (const std::uint64_t tid = trace_->maybe_start_trace(); tid != 0) {
      const auto now = sim_.now();
      const std::uint64_t root = trace_->emit(
          metrics::TraceRef{tid, 0}, SpanKind::kPublish, overlay_.id(), now,
          now, event->id, keys.size());
      const std::uint64_t map_span = trace_->emit(
          metrics::TraceRef{tid, root}, SpanKind::kMap, overlay_.id(), now,
          now, keys.size());
      msg->trace = metrics::TraceRef{tid, map_span};
    }
  }
  send_to_keys(keys, std::move(msg), cfg_.pub_transport);
}

// ---------------------------------------------------------------------------
// Delivery dispatch
// ---------------------------------------------------------------------------

void PubSubNode::on_deliver(Key key, const PayloadPtr& payload) {
  const Key covered[] = {key};
  dispatch(covered, payload);
}

void PubSubNode::on_deliver_mcast(std::span<const Key> covered,
                                  const PayloadPtr& payload) {
  dispatch(covered, payload);
}

void PubSubNode::halt() {
  halted_ = true;
  // A crashed process loses its volatile buffers; the armed one-shot
  // timers see halted_ and do nothing when they fire.
  notify_buffer_.clear();
  collect_to_succ_.clear();
  collect_to_pred_.clear();
  gossip_seen_.clear();
}

std::size_t PubSubNode::re_replicate() {
  if (cfg_.replication_factor == 0 || halted_) return 0;
  // Re-own first: a replica whose owner crashed leaves this node covering
  // its range while still holding only the passive copy — with no owner,
  // nothing would ever rebuild the chain and a second crash loses the
  // record. Collect before upgrading (no mutation during for_each).
  std::vector<StoredSubRecord> adopt;
  store_.for_each([&](const SubscriptionStore::Record& rec) {
    if (!rec.replica) return;
    if (std::any_of(rec.ranges.begin(), rec.ranges.end(),
                    [&](const KeyRange& r) {
                      return coverage_intersects(r);
                    })) {
      adopt.push_back({rec.sub, rec.expires_at, rec.ranges, false});
    }
  });
  for (const StoredSubRecord& rec : adopt) {
    store_.insert(SubscriptionStore::Record{rec.sub, rec.expires_at,
                                            rec.ranges, /*replica=*/false});
  }
  // Re-home second: an owned record none of whose ranges intersect our
  // coverage is stranded here (accepted while our predecessor was
  // unknown mid-repair, so our believed coverage was transiently huge).
  // Re-issue it toward its current rendezvous and drop our copy.
  std::vector<StoredSubRecord> stranded;
  store_.for_each([&](const SubscriptionStore::Record& rec) {
    if (rec.replica) return;
    if (!std::any_of(rec.ranges.begin(), rec.ranges.end(),
                     [&](const KeyRange& r) {
                       return coverage_intersects(r);
                     })) {
      stranded.push_back({rec.sub, rec.expires_at, rec.ranges, false});
    }
  });
  for (const StoredSubRecord& rec : stranded) {
    store_.remove(rec.sub->id);
    ++reissued_imports_;
    send_to_keys(mapping_.subscription_keys(*rec.sub),
                 std::make_shared<SubscribeMsg>(rec.sub, rec.expires_at,
                                                rec.ranges),
                 cfg_.sub_transport);
  }
  std::size_t n = 0;
  store_.for_each([&](const SubscriptionStore::Record& rec) {
    if (rec.replica) return;
    overlay_.send_to_successor(std::make_shared<ReplicaMsg>(
        StoredSubRecord{rec.sub, rec.expires_at, rec.ranges},
        cfg_.replication_factor));
    ++n;
  });
  return n;
}

void PubSubNode::dispatch(std::span<const Key> covered,
                          const PayloadPtr& payload) {
  if (halted_) return;
  if (auto* pub = dynamic_cast<const PublishMsg*>(payload.get())) {
    handle_publish(*pub, covered);
  } else if (auto* sub = dynamic_cast<const SubscribeMsg*>(payload.get())) {
    handle_subscribe(*sub, covered);
  } else if (auto* notify = dynamic_cast<const NotifyMsg*>(payload.get())) {
    handle_notify(*notify);
  } else if (auto* collect =
                 dynamic_cast<const CollectMsg*>(payload.get())) {
    handle_collect(*collect);
  } else if (auto* mn = dynamic_cast<const MultiNotifyMsg*>(payload.get())) {
    handle_multi_notify(*mn, covered);
  } else if (auto* gp = dynamic_cast<const GossipMsg*>(payload.get())) {
    handle_gossip(*gp);
  } else if (auto* gd = dynamic_cast<const GossipDigestMsg*>(payload.get())) {
    handle_gossip_digest(*gd);
  } else if (auto* gr = dynamic_cast<const GossipRepairMsg*>(payload.get())) {
    handle_gossip_repair(*gr);
  } else if (auto* gsr =
                 dynamic_cast<const GossipSubRepairMsg*>(payload.get())) {
    handle_gossip_sub_repair(*gsr);
  } else if (auto* unsub =
                 dynamic_cast<const UnsubscribeMsg*>(payload.get())) {
    handle_unsubscribe(*unsub);
  } else if (auto* rep = dynamic_cast<const ReplicaMsg*>(payload.get())) {
    handle_replica(*rep);
  } else if (auto* rrm =
                 dynamic_cast<const ReplicaRemoveMsg*>(payload.get())) {
    handle_replica_remove(*rrm);
  } else if (auto* st = dynamic_cast<const StateMsg*>(payload.get())) {
    import_state(payload);
    (void)st;
  } else {
    CBPS_LOG_WARN << "pubsub node " << overlay_.id()
                  << ": unknown payload type dropped";
  }
}

// ---------------------------------------------------------------------------
// Rendezvous-side handling
// ---------------------------------------------------------------------------

void PubSubNode::handle_subscribe(const SubscribeMsg& msg,
                                  std::span<const Key> covered) {
  // Load attribution: one store op per rendezvous key this delivery
  // covers (an m-cast delivery stores under several keys at once).
  for (const Key k : covered) key_load_.subs_stored.offer(k);
  SubscriptionStore::Record rec{msg.sub, msg.expires_at, msg.ranges,
                                /*replica=*/false};
  const bool fresh = store_.insert(rec);
  if (msg.expires_at != sim::kSimTimeNever) schedule_sweep();
  if (fresh && cfg_.replication_factor > 0) {
    overlay_.send_to_successor(std::make_shared<ReplicaMsg>(
        StoredSubRecord{msg.sub, msg.expires_at, msg.ranges},
        cfg_.replication_factor));
  }
}

void PubSubNode::handle_unsubscribe(const UnsubscribeMsg& msg) {
  const bool removed = store_.remove(msg.sub_id);
  if (removed && cfg_.replication_factor > 0) {
    overlay_.send_to_successor(std::make_shared<ReplicaRemoveMsg>(
        msg.sub_id, cfg_.replication_factor));
  }
}

void PubSubNode::handle_replica(const ReplicaMsg& msg) {
  store_.insert(SubscriptionStore::Record{msg.record.sub,
                                          msg.record.expires_at,
                                          msg.record.ranges,
                                          /*replica=*/true});
  if (msg.record.expires_at != sim::kSimTimeNever) schedule_sweep();
  if (msg.remaining_hops > 1) {
    overlay_.send_to_successor(
        std::make_shared<ReplicaMsg>(msg.record, msg.remaining_hops - 1));
  }
}

void PubSubNode::handle_replica_remove(const ReplicaRemoveMsg& msg) {
  store_.remove(msg.sub_id);
  if (msg.remaining_hops > 1) {
    overlay_.send_to_successor(std::make_shared<ReplicaRemoveMsg>(
        msg.sub_id, msg.remaining_hops - 1));
  }
}

void PubSubNode::handle_publish(const PublishMsg& msg,
                                std::span<const Key> covered) {
  switch (cfg_.dissemination) {
    case PubSubConfig::Dissemination::kUnicast:
      break;
    case PubSubConfig::Dissemination::kMcast:
      disseminate_mcast(msg, covered);
      return;
    case PubSubConfig::Dissemination::kGossip:
      disseminate_gossip(msg, covered);
      return;
  }
  const auto matches = store_.match(*msg.event, sim_.now());
  std::vector<std::uint64_t> per_key_notifies(covered.size(), 0);
  for (const SubscriptionStore::Record* rec : matches) {
    // Mapping-level exactly-once filter: with multi-key EK mappings
    // (Selective-Attribute) only the rendezvous holding the
    // subscription's own selective key notifies. The first responsible
    // covered key takes the load attribution, so each notification is
    // charged exactly once.
    std::size_t ki = covered.size();
    for (std::size_t i = 0; i < covered.size(); ++i) {
      if (mapping_.should_notify(*rec->sub, *msg.event, covered[i])) {
        ki = i;
        break;
      }
    }
    if (ki == covered.size()) continue;
    ++per_key_notifies[ki];
    key_load_.notify_fanout.offer(covered[ki]);
    route_match(*rec, msg.event, msg.published_at, msg.trace);
  }
  record_match_load(msg, covered, matches.size(), per_key_notifies);
}

/// Shared tail of the match paths (unicast handle_publish and the
/// m-cast/gossip collect_entries): per-key match-invocation and
/// match-set-size attribution plus the kHotKey trace spans.
void PubSubNode::record_match_load(
    const PublishMsg& msg, std::span<const Key> covered,
    std::size_t match_set_size,
    const std::vector<std::uint64_t>& per_key_notifies) {
  const sim::SimTime now = sim_.now();
  for (std::size_t i = 0; i < covered.size(); ++i) {
    key_load_.match_calls.offer(covered[i]);
    key_load_.match_units.offer(covered[i], match_set_size);
    if (trace_ != nullptr && msg.trace.sampled()) {
      trace_->emit(msg.trace, SpanKind::kHotKey, overlay_.id(), now, now,
                   covered[i], per_key_notifies[i]);
    }
  }
}

void PubSubNode::handle_notify(const NotifyMsg& msg) {
  const sim::SimTime now = sim_.now();
  if (msg.subscriber != overlay_.id()) {
    // Notifications are routed by the subscriber's key, so when the
    // addressee is gone (crashed, or the ring moved mid-route) the
    // message lands on whoever now owns that key. Surfacing it here
    // would be a ghost delivery under the dead subscriber's identity.
    misdirected_notifies_ += msg.batch.size();
    if (trace_ != nullptr) {
      for (const Notification& n : msg.batch) {
        if (!n.trace.sampled()) continue;
        trace_->emit(n.trace, SpanKind::kDrop, overlay_.id(), now, now,
                     static_cast<std::uint64_t>(DropReason::kMisdirected));
      }
    }
    return;
  }
  for (const Notification& n : msg.batch) {
    if (cfg_.duplicate_suppression &&
        !delivered_.emplace(n.event->id, n.subscription).second) {
      ++duplicates_suppressed_;
      if (trace_ != nullptr && n.trace.sampled()) {
        trace_->emit(n.trace, SpanKind::kDrop, overlay_.id(), now, now,
                     static_cast<std::uint64_t>(DropReason::kDuplicate));
      }
      continue;
    }
    ++notifications_received_;
    const double delay_s = sim::to_seconds(now - n.published_at);
    notification_delay_.add(delay_s);
    delay_hist_.add(delay_s);
    if (trace_ != nullptr && n.trace.sampled()) {
      // Instant at arrival — a span must not start before its parent
      // (the notify send); the end-to-end latency is the distance to the
      // trace's publish root (and lives in the delay histogram anyway).
      trace_->emit(n.trace, SpanKind::kDeliver, overlay_.id(), now, now,
                   n.subscription, n.event->id);
    }
    if (sink_) sink_(msg.subscriber, n);
  }
}

// ---------------------------------------------------------------------------
// Group dissemination backends: m-cast and gossip (extensions; the
// paper's unicast notify leg stays the default)
// ---------------------------------------------------------------------------

std::vector<GossipEntry> PubSubNode::collect_entries(
    const PublishMsg& msg, std::span<const Key> covered) {
  std::vector<GossipEntry> entries;
  const auto matches = store_.match(*msg.event, sim_.now());
  std::vector<std::uint64_t> per_key_notifies(covered.size(), 0);
  for (const SubscriptionStore::Record* rec : matches) {
    // Same exactly-once filter as the unicast path: with multi-key EK
    // mappings only the rendezvous holding the subscription's selective
    // key disseminates. As there, the first responsible covered key
    // takes the load attribution.
    std::size_t ki = covered.size();
    for (std::size_t i = 0; i < covered.size(); ++i) {
      if (mapping_.should_notify(*rec->sub, *msg.event, covered[i])) {
        ki = i;
        break;
      }
    }
    if (ki == covered.size()) continue;
    ++per_key_notifies[ki];
    key_load_.notify_fanout.offer(covered[ki]);
    entries.push_back(GossipEntry{
        rec->sub->subscriber,
        Notification{msg.event, rec->sub->id, msg.published_at, msg.trace}});
  }
  record_match_load(msg, covered, matches.size(), per_key_notifies);
  // Canonical entry order: the record/payload is wire content, so its
  // layout must not depend on the match engine's internal order (D1).
  std::sort(entries.begin(), entries.end(),
            [](const GossipEntry& a, const GossipEntry& b) {
              if (a.subscriber != b.subscriber) {
                return a.subscriber < b.subscriber;
              }
              return a.notification.subscription < b.notification.subscription;
            });
  return entries;
}

void PubSubNode::surface_own_entries(const std::vector<GossipEntry>& entries) {
  const sim::SimTime now = sim_.now();
  for (const GossipEntry& e : entries) {
    if (e.subscriber != overlay_.id()) continue;
    const Notification& n = e.notification;
    if (cfg_.duplicate_suppression &&
        !delivered_.emplace(n.event->id, n.subscription).second) {
      ++duplicates_suppressed_;
      if (trace_ != nullptr && n.trace.sampled()) {
        trace_->emit(n.trace, SpanKind::kDrop, overlay_.id(), now, now,
                     static_cast<std::uint64_t>(DropReason::kDuplicate));
      }
      continue;
    }
    ++notifications_received_;
    const double delay_s = sim::to_seconds(now - n.published_at);
    notification_delay_.add(delay_s);
    delay_hist_.add(delay_s);
    if (trace_ != nullptr && n.trace.sampled()) {
      trace_->emit(n.trace, SpanKind::kDeliver, overlay_.id(), now, now,
                   n.subscription, n.event->id);
    }
    if (sink_) sink_(e.subscriber, n);
  }
}

void PubSubNode::disseminate_mcast(const PublishMsg& msg,
                                   std::span<const Key> covered) {
  auto out = std::make_shared<MultiNotifyMsg>();
  out->entries = collect_entries(msg, covered);
  if (out->entries.empty()) return;
  std::vector<Key> group;
  for (const GossipEntry& e : out->entries) {
    if (group.empty() || group.back() != e.subscriber) {
      group.push_back(e.subscriber);
    }
  }
  if (trace_ != nullptr) {
    const auto now = sim_.now();
    for (GossipEntry& e : out->entries) {
      Notification& n = e.notification;
      if (!n.trace.sampled()) continue;
      const std::uint64_t span =
          trace_->emit(n.trace, SpanKind::kNotify, overlay_.id(), now, now,
                       e.subscriber, out->entries.size());
      if (span != 0) n.trace.parent_span = span;
    }
  }
  ++notify_batches_sent_;
  notifications_sent_ += out->entries.size();
  for (const GossipEntry& e : out->entries) {
    if (e.notification.trace.sampled()) {
      out->trace = e.notification.trace;
      break;
    }
  }
  overlay_.m_cast(std::move(group), std::move(out));
}

void PubSubNode::handle_multi_notify(const MultiNotifyMsg& msg,
                                     std::span<const Key> covered) {
  const sim::SimTime now = sim_.now();
  for (const GossipEntry& e : msg.entries) {
    if (e.subscriber == overlay_.id()) continue;
    // We cover this entry's subscriber key but are not that subscriber:
    // the addressee crashed (or the ring moved). Ghost-drop, as in
    // handle_notify.
    if (std::find(covered.begin(), covered.end(), e.subscriber) !=
        covered.end()) {
      ++misdirected_notifies_;
      if (trace_ != nullptr && e.notification.trace.sampled()) {
        trace_->emit(e.notification.trace, SpanKind::kDrop, overlay_.id(),
                     now, now,
                     static_cast<std::uint64_t>(DropReason::kMisdirected));
      }
    }
  }
  surface_own_entries(msg.entries);
}

std::uint32_t PubSubNode::gossip_rounds_for(std::size_t group_size) const {
  if (cfg_.gossip_rounds != 0) return cfg_.gossip_rounds;
  // Push epidemics infect the group w.h.p. in O(log n) rounds; two extra
  // rounds of slack absorb unlucky fan-out collisions.
  std::uint32_t r = 0;
  while ((std::size_t{1} << r) < group_size) ++r;
  return r + 2;
}

void PubSubNode::disseminate_gossip(const PublishMsg& msg,
                                    std::span<const Key> covered) {
  auto rec = std::make_shared<GossipRecord>();
  rec->entries = collect_entries(msg, covered);
  if (rec->entries.empty()) return;
  rec->id = GossipId{overlay_.id(), next_gossip_seq_++};
  rec->seeded_at = sim_.now();
  for (const GossipEntry& e : rec->entries) {
    if (rec->group.empty() || rec->group.back() != e.subscriber) {
      rec->group.push_back(e.subscriber);
    }
  }
  ++notify_batches_sent_;
  notifications_sent_ += rec->entries.size();
  const GossipRecordPtr ptr = rec;  // immutable from here on
  absorb_gossip_record(ptr);  // the seed surfaces its own entries too
  gossip_push(ptr, gossip_rounds_for(ptr->group.size()));
}

void PubSubNode::gossip_push(const GossipRecordPtr& rec,
                             std::uint32_t rounds) {
  if (rounds == 0) return;
  std::vector<Key> cand;
  cand.reserve(rec->group.size());
  for (Key k : rec->group) {
    if (k != overlay_.id()) cand.push_back(k);
  }
  if (cand.empty()) return;
  metrics::TraceRef rtrace;
  for (const GossipEntry& e : rec->entries) {
    if (e.notification.trace.sampled()) {
      rtrace = e.notification.trace;
      break;
    }
  }
  const sim::SimTime now = sim_.now();
  // Partial Fisher-Yates over the group: fanout distinct peers, drawn
  // from this node's own gossip stream (never the overlay's or the
  // workload's — backends must not perturb each other's runs).
  const std::size_t n = std::min(cfg_.gossip_fanout, cand.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = static_cast<std::size_t>(gossip_rng_.uniform_int(
        static_cast<std::int64_t>(i),
        static_cast<std::int64_t>(cand.size() - 1)));
    std::swap(cand[i], cand[j]);
    auto out = std::make_shared<GossipMsg>(cand[i], rec, rounds - 1);
    out->trace = rtrace;
    ++gossip_stats_.pushes_sent;
    if (trace_ != nullptr && rtrace.sampled()) {
      trace_->emit(rtrace, SpanKind::kGossipPush, overlay_.id(), now, now,
                   rounds - 1, cand[i]);
    }
    overlay_.send(cand[i], std::move(out));
  }
}

bool PubSubNode::absorb_gossip_record(const GossipRecordPtr& rec) {
  // Past its retention deadline the record is dead system-wide; taking
  // it (from a repair racing the sender's prune) would restart its
  // retention here and feed it back into anti-entropy.
  if (rec->seeded_at + cfg_.gossip_window <= sim_.now()) return false;
  const auto [it, fresh] = gossip_seen_.try_emplace(rec->id, rec);
  if (!fresh) return false;
  surface_own_entries(rec->entries);
  schedule_anti_entropy();
  return true;
}

void PubSubNode::handle_gossip(const GossipMsg& msg) {
  if (msg.target != overlay_.id()) {
    // Pushes are key-routed, so a crashed member's share lands on its
    // key's new owner. Ghost-drop; anti-entropy is what recovers the
    // member if it comes back.
    ++gossip_stats_.misdirected;
    if (trace_ != nullptr && msg.trace.sampled()) {
      const sim::SimTime now = sim_.now();
      trace_->emit(msg.trace, SpanKind::kDrop, overlay_.id(), now, now,
                   static_cast<std::uint64_t>(DropReason::kMisdirected));
    }
    return;
  }
  if (!absorb_gossip_record(msg.rec)) {
    ++gossip_stats_.duplicates;
    return;
  }
  // Infect-and-die: forward only on first receipt, with one round spent.
  gossip_push(msg.rec, msg.rounds_left);
}

void PubSubNode::schedule_anti_entropy() {
  if (anti_entropy_scheduled_ || cfg_.anti_entropy_period == 0) return;
  if (gossip_seen_.empty()) return;
  anti_entropy_scheduled_ = true;
  const common::ActorScope as(overlay_.domain());
  sim_.schedule_after(cfg_.anti_entropy_period, [this] {
    anti_entropy_scheduled_ = false;
    if (!halted_) anti_entropy_tick();
  });
}

std::shared_ptr<GossipDigestMsg> PubSubNode::build_digest(Key to,
                                                          bool reply) {
  auto digest = std::make_shared<GossipDigestMsg>(overlay_.id(), to, reply);
  digest->have.reserve(gossip_seen_.size());
  for (const auto& [id, rec] : gossip_seen_) digest->have.push_back(id);
  // Owned records only: a replica advertised here would make every chain
  // member look like an owner and re-gossip its backup copy.
  store_.for_each([&](const SubscriptionStore::Record& rec) {
    if (rec.replica) return;
    digest->subs.push_back(GossipSubDigest{rec.sub->id, rec.expires_at});
  });
  std::sort(digest->subs.begin(), digest->subs.end(),
            [](const GossipSubDigest& a, const GossipSubDigest& b) {
              return a.id < b.id;
            });
  return digest;
}

void PubSubNode::anti_entropy_tick() {
  const sim::SimTime now = sim_.now();
  // Retention prune: once the record's system-wide deadline passes it
  // leaves the repair inventory — and when the cache drains, the timer
  // disarms, so an idle system quiesces.
  for (auto it = gossip_seen_.begin(); it != gossip_seen_.end();) {
    if (it->second->seeded_at + cfg_.gossip_window <= now) {
      it = gossip_seen_.erase(it);
    } else {
      ++it;
    }
  }
  if (gossip_seen_.empty()) return;
  // Partners: up to fanout uniform picks over every member of every
  // cached group — the nodes that could be missing one of our records —
  // plus each record's origin. The origin is never a group member, but
  // it is the authoritative holder: digesting it lets a member pull
  // records it lost without waiting for the rendezvous to pick it,
  // doubling the repair paths per tick. One partner per tick gives too
  // few exchange attempts inside the retention window when many groups
  // share a rendezvous; fanout picks keep the repair probability in
  // step with the push phase.
  const std::set<Key> peer_set = [&] {
    std::set<Key> s;
    for (const auto& [id, rec] : gossip_seen_) {
      s.insert(rec->group.begin(), rec->group.end());
      s.insert(id.origin);
    }
    s.erase(overlay_.id());
    return s;
  }();
  std::vector<Key> peers(peer_set.begin(), peer_set.end());
  const std::size_t n = std::min(cfg_.gossip_fanout, peers.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = static_cast<std::size_t>(gossip_rng_.uniform_int(
        static_cast<std::int64_t>(i),
        static_cast<std::int64_t>(peers.size() - 1)));
    std::swap(peers[i], peers[j]);
    ++gossip_stats_.digests_sent;
    overlay_.send(peers[i], build_digest(peers[i], /*reply=*/false));
  }
  schedule_anti_entropy();
}

void PubSubNode::handle_gossip_digest(const GossipDigestMsg& msg) {
  if (msg.target != overlay_.id()) {
    ++gossip_stats_.misdirected;
    return;
  }
  answer_digest(msg);
}

void PubSubNode::answer_digest(const GossipDigestMsg& msg) {
  // Event repair: every cached record the digest's have-list lacks —
  // but only records whose group contains the peer. A record the peer
  // is not a member of is not the peer's business: pushing it would
  // spread state beyond the match group and inflate every later digest.
  // Both sides are sorted, so this is one set-difference walk.
  auto rep = std::make_shared<GossipRepairMsg>(overlay_.id(), msg.from);
  auto have_it = msg.have.begin();
  for (const auto& [id, rec] : gossip_seen_) {
    while (have_it != msg.have.end() && *have_it < id) ++have_it;
    if (have_it != msg.have.end() && *have_it == id) continue;
    if (!std::binary_search(rec->group.begin(), rec->group.end(),
                            msg.from)) {
      continue;
    }
    rep->records.push_back(rec);
  }
  if (!rep->records.empty()) {
    overlay_.send(msg.from, std::move(rep));
  }
  // Rendezvous-state repair: owned records whose SK ranges contain the
  // peer's own key — the peer covers that key, so it should be holding
  // the record as an owner — that its digest does not list. Replica
  // copies are never offered (see build_digest).
  std::vector<StoredSubRecord> missing;
  const RingParams ring = overlay_.ring();
  store_.for_each([&](const SubscriptionStore::Record& rec) {
    if (rec.replica) return;
    const bool relevant = std::any_of(
        rec.ranges.begin(), rec.ranges.end(), [&](const KeyRange& r) {
          return ring.in_closed_closed(r.lo, r.hi, msg.from);
        });
    if (!relevant) return;
    const auto it = std::lower_bound(
        msg.subs.begin(), msg.subs.end(), rec.sub->id,
        [](const GossipSubDigest& d, SubscriptionId id) { return d.id < id; });
    if (it != msg.subs.end() && it->id == rec.sub->id) return;
    missing.push_back({rec.sub, rec.expires_at, rec.ranges, false});
  });
  if (!missing.empty()) {
    // Store iteration order is hash-layout dependent; the wire payload
    // must not be (D1).
    std::sort(missing.begin(), missing.end(),
              [](const StoredSubRecord& a, const StoredSubRecord& b) {
                return a.sub->id < b.sub->id;
              });
    auto subrep = std::make_shared<GossipSubRepairMsg>(msg.from);
    subrep->records = std::move(missing);
    overlay_.send(msg.from, std::move(subrep));
  }
  if (!msg.reply) {
    ++gossip_stats_.digests_sent;
    overlay_.send(msg.from, build_digest(msg.from, /*reply=*/true));
  }
}

void PubSubNode::handle_gossip_repair(const GossipRepairMsg& msg) {
  if (msg.target != overlay_.id()) {
    ++gossip_stats_.misdirected;
    return;
  }
  const sim::SimTime now = sim_.now();
  for (const GossipRecordPtr& rec : msg.records) {
    // Repaired records do not re-enter the push phase (no gossip_push):
    // anti-entropy converges, it does not re-ignite the epidemic.
    if (!absorb_gossip_record(rec)) continue;
    ++gossip_stats_.repair_records;
    if (trace_ != nullptr) {
      for (const GossipEntry& e : rec->entries) {
        if (!e.notification.trace.sampled()) continue;
        trace_->emit(e.notification.trace, SpanKind::kGossipRepair,
                     overlay_.id(), now, now, rec->entries.size());
        break;
      }
    }
  }
}

void PubSubNode::handle_gossip_sub_repair(const GossipSubRepairMsg& msg) {
  if (msg.target != overlay_.id()) {
    ++gossip_stats_.misdirected;
    return;
  }
  bool any_expiring = false;
  for (const StoredSubRecord& rec : msg.records) {
    if (rec.expires_at != sim::kSimTimeNever && rec.expires_at <= sim_.now()) {
      continue;  // repair must not resurrect an expired subscription
    }
    // Coverage check, as on state import: the sender's view of our
    // responsibility may be stale.
    if (!std::any_of(rec.ranges.begin(), rec.ranges.end(),
                     [&](const KeyRange& r) {
                       return coverage_intersects(r);
                     })) {
      continue;
    }
    const bool fresh = store_.insert(SubscriptionStore::Record{
        rec.sub, rec.expires_at, rec.ranges, /*replica=*/false});
    any_expiring |= rec.expires_at != sim::kSimTimeNever;
    if (!fresh) continue;
    ++gossip_stats_.subs_learned;
    // A record learned (or upgraded from a replica) this way needs a
    // replica chain along the *current* successors.
    if (cfg_.replication_factor > 0) {
      overlay_.send_to_successor(std::make_shared<ReplicaMsg>(
          StoredSubRecord{rec.sub, rec.expires_at, rec.ranges},
          cfg_.replication_factor));
    }
  }
  if (any_expiring) schedule_sweep();
}

// ---------------------------------------------------------------------------
// Notification paths: immediate, buffered, collected (§4.3.2)
// ---------------------------------------------------------------------------

void PubSubNode::route_match(const SubscriptionStore::Record& rec,
                             EventPtr event, sim::SimTime published_at,
                             metrics::TraceRef trace) {
  Notification n{std::move(event), rec.sub->id, published_at, trace};
  const Key subscriber = rec.sub->subscriber;

  if (cfg_.collecting) {
    const KeyRange* range = my_range_for(rec);
    if (range != nullptr && range->size(overlay_.ring()) > 1 &&
        !is_agent_for(*range)) {
      enqueue_collect(CollectItem{*range, subscriber, std::move(n)});
      return;
    }
    // We are the agent (or the range is degenerate): buffer and flush
    // periodically toward the subscriber.
    buffer_notification(subscriber, std::move(n));
    return;
  }
  if (cfg_.buffering) {
    buffer_notification(subscriber, std::move(n));
    return;
  }
  if (trace_ != nullptr && n.trace.sampled()) {
    const auto now = sim_.now();
    const std::uint64_t span = trace_->emit(
        n.trace, SpanKind::kNotify, overlay_.id(), now, now, subscriber, 1);
    if (span != 0) n.trace.parent_span = span;
  }
  ++notify_batches_sent_;
  ++notifications_sent_;
  auto out = std::make_shared<NotifyMsg>(
      subscriber, std::vector<Notification>{std::move(n)});
  out->trace = out->batch.front().trace;
  overlay_.send(subscriber, std::move(out));
}

void PubSubNode::buffer_notification(Key subscriber, Notification n) {
  if (trace_ != nullptr && n.trace.sampled()) {
    const auto now = sim_.now();
    const std::uint64_t span = trace_->emit(
        n.trace, SpanKind::kBuffer, overlay_.id(), now, now, subscriber);
    if (span != 0) n.trace.parent_span = span;
  }
  notify_buffer_[subscriber].push_back(std::move(n));
  if (!flush_scheduled_) {
    flush_scheduled_ = true;
    // The flush timer is this node's own event: key/place it on this
    // node's overlay domain (same shard as the rest of its state).
    const common::ActorScope as(overlay_.domain());
    sim_.schedule_after(cfg_.buffer_period, [this] {
      flush_scheduled_ = false;
      if (!halted_) flush_notify_buffer();
    });
  }
}

void PubSubNode::flush_notify_buffer() {
  // One NotifyMsg per subscriber, in subscriber-key order: send order
  // decides wire RNG draws and event keys downstream, so it must not
  // depend on the buffer's bucket layout (D1).
  for (auto* entry : sorted_view(notify_buffer_)) {
    const Key subscriber = entry->first;
    std::vector<Notification>& batch = entry->second;
    if (batch.empty()) continue;
    ++notify_batches_sent_;
    notifications_sent_ += batch.size();
    if (trace_ != nullptr) {
      const auto now = sim_.now();
      for (Notification& n : batch) {
        if (!n.trace.sampled()) continue;
        const std::uint64_t span =
            trace_->emit(n.trace, SpanKind::kNotify, overlay_.id(), now, now,
                         subscriber, batch.size());
        if (span != 0) n.trace.parent_span = span;
      }
    }
    auto out = std::make_shared<NotifyMsg>(subscriber, std::move(batch));
    for (const Notification& n : out->batch) {
      if (n.trace.sampled()) {
        out->trace = n.trace;  // overlay hop spans attach to one of them
        break;
      }
    }
    overlay_.send(subscriber, std::move(out));
  }
  notify_buffer_.clear();
}

void PubSubNode::enqueue_collect(CollectItem item) {
  if (trace_ != nullptr && item.notification.trace.sampled()) {
    const auto now = sim_.now();
    const std::uint64_t span =
        trace_->emit(item.notification.trace, SpanKind::kCollect,
                     overlay_.id(), now, now, item.subscriber);
    if (span != 0) item.notification.trace.parent_span = span;
  }
  auto& queue =
      agent_toward_successor(item.range) ? collect_to_succ_ : collect_to_pred_;
  queue.push_back(std::move(item));
  if (!collect_scheduled_) {
    collect_scheduled_ = true;
    const common::ActorScope as(overlay_.domain());
    sim_.schedule_after(cfg_.buffer_period, [this] {
      collect_scheduled_ = false;
      if (!halted_) flush_collect_buffers();
    });
  }
}

void PubSubNode::flush_collect_buffers() {
  // One message per direction regardless of how many subscriptions are
  // involved: "the cost of exchanging notifications between neighbor
  // nodes is amortized across all stored subscriptions" (§4.3.2).
  const auto send_batch = [this](std::vector<CollectItem>& items,
                                 bool to_successor) {
    if (items.empty()) return;
    auto out = std::make_shared<CollectMsg>(std::move(items));
    items.clear();
    for (const CollectItem& item : out->items) {
      if (item.notification.trace.sampled()) {
        out->trace = item.notification.trace;
        break;
      }
    }
    if (to_successor) {
      overlay_.send_to_successor(std::move(out));
    } else {
      overlay_.send_to_predecessor(std::move(out));
    }
  };
  send_batch(collect_to_succ_, /*to_successor=*/true);
  send_batch(collect_to_pred_, /*to_successor=*/false);
}

void PubSubNode::handle_collect(const CollectMsg& msg) {
  for (const CollectItem& item : msg.items) {
    if (is_agent_for(item.range)) {
      buffer_notification(item.subscriber, item.notification);
    } else {
      // Keep moving toward the agent; re-batched with our own pending
      // items on the next flush.
      enqueue_collect(item);
    }
  }
}

// ---------------------------------------------------------------------------
// Expiration (simulated unsubscriptions, §5.1)
// ---------------------------------------------------------------------------

void PubSubNode::schedule_sweep() {
  const sim::SimTime next = store_.next_expiry();
  if (next == sim::kSimTimeNever) return;
  const sim::SimTime at = std::max(next, sim_.now());
  if (sweep_scheduled_ && sweep_at_ <= at) return;
  sweep_scheduled_ = true;
  sweep_at_ = at;
  const common::ActorScope as(overlay_.domain());
  sim_.schedule_at(at, [this, at] {
    if (sweep_at_ != at) return;  // superseded by an earlier sweep
    sweep_scheduled_ = false;
    sweep_at_ = sim::kSimTimeNever;
    if (!halted_) sweep_expired();
  });
}

void PubSubNode::sweep_expired() {
  store_.sweep_expired(sim_.now());
  schedule_sweep();  // re-arm for the next earliest expiry, if any
}

// ---------------------------------------------------------------------------
// Collecting geometry
// ---------------------------------------------------------------------------

bool PubSubNode::covers_key(Key k) const {
  const RingParams ring = overlay_.ring();
  const Key pred = overlay_.predecessor_id();
  if (pred == overlay_.id()) return true;  // whole ring
  return ring.in_open_closed(pred, overlay_.id(), k);
}

bool PubSubNode::coverage_intersects(const KeyRange& r) const {
  const RingParams ring = overlay_.ring();
  const Key pred = overlay_.predecessor_id();
  if (pred == overlay_.id()) return true;
  // (pred, id] and [r.lo, r.hi] intersect iff either contains the
  // other's first element.
  return ring.in_open_closed(pred, overlay_.id(), r.lo) ||
         ring.in_closed_closed(r.lo, r.hi, ring.add(pred, 1));
}

const KeyRange* PubSubNode::my_range_for(
    const SubscriptionStore::Record& rec) const {
  for (const KeyRange& r : rec.ranges) {
    if (coverage_intersects(r)) return &r;
  }
  return nullptr;
}

bool PubSubNode::is_agent_for(const KeyRange& r) const {
  return covers_key(overlay_.ring().midpoint(r.lo, r.hi));
}

bool PubSubNode::agent_toward_successor(const KeyRange& r) const {
  const RingParams ring = overlay_.ring();
  const Key mid = ring.midpoint(r.lo, r.hi);
  const Key pos =
      ring.in_closed_closed(r.lo, r.hi, overlay_.id()) ? overlay_.id() : r.hi;
  return ring.distance(r.lo, pos) < ring.distance(r.lo, mid);
}

// ---------------------------------------------------------------------------
// State handover (joins / leaves, §4.1)
// ---------------------------------------------------------------------------

overlay::PayloadPtr PubSubNode::export_state(Key range_lo, Key range_hi,
                                             bool remove) {
  const RingParams ring = overlay_.ring();
  const auto in_handed_range = [&](const KeyRange& r) {
    // (range_lo, range_hi] vs [r.lo, r.hi]
    return ring.in_open_closed(range_lo, range_hi, r.lo) ||
           ring.in_closed_closed(r.lo, r.hi, ring.add(range_lo, 1));
  };

  std::vector<StoredSubRecord> out;
  store_.for_each([&](const SubscriptionStore::Record& rec) {
    if (rec.replica) {
      // The receiver is taking over (part of) our ring position, which
      // makes it a better-placed holder for every replica chain we
      // participate in; hand replicas over as replicas. We keep our own
      // copies too (extra copies are harmless: a replica only ever
      // matches events once its holder legitimately covers their keys).
      out.push_back({rec.sub, rec.expires_at, rec.ranges, true});
      return;
    }
    if (std::any_of(rec.ranges.begin(), rec.ranges.end(), in_handed_range)) {
      out.push_back({rec.sub, rec.expires_at, rec.ranges, false});
    }
  });

  if (remove) {
    // Keep records that still intersect our remaining coverage
    // (range_hi, id]; when the whole range is handed away (leave),
    // nothing remains.
    const bool nothing_left = range_hi == overlay_.id();
    store_.remove_if([&](const SubscriptionStore::Record& rec) {
      if (rec.replica) return false;
      if (!std::any_of(rec.ranges.begin(), rec.ranges.end(),
                       in_handed_range)) {
        return false;
      }
      if (nothing_left) return true;
      const auto in_remaining = [&](const KeyRange& r) {
        return ring.in_open_closed(range_hi, overlay_.id(), r.lo) ||
               ring.in_closed_closed(r.lo, r.hi, ring.add(range_hi, 1));
      };
      return !std::any_of(rec.ranges.begin(), rec.ranges.end(),
                          in_remaining);
    });
  }
  return std::make_shared<StateMsg>(std::move(out));
}

void PubSubNode::import_state(const overlay::PayloadPtr& state) {
  const auto* msg = dynamic_cast<const StateMsg*>(state.get());
  if (msg == nullptr) {
    CBPS_LOG_WARN << "pubsub node " << overlay_.id()
                  << ": unexpected state payload";
    return;
  }
  if (halted_) return;
  bool any_expiring = false;
  for (const StoredSubRecord& rec : msg->records) {
    // Ownership check: after a partition heals, state transfers can land
    // on a node the re-merged ring no longer makes responsible for any
    // of the record's ranges. Storing it here would strand it — re-issue
    // it as a fresh subscription toward the current rendezvous instead.
    if (!rec.replica &&
        !std::any_of(rec.ranges.begin(), rec.ranges.end(),
                     [&](const KeyRange& r) {
                       return coverage_intersects(r);
                     })) {
      ++reissued_imports_;
      send_to_keys(mapping_.subscription_keys(*rec.sub),
                   std::make_shared<SubscribeMsg>(rec.sub, rec.expires_at,
                                                  rec.ranges),
                   cfg_.sub_transport);
      continue;
    }
    const bool fresh = store_.insert(SubscriptionStore::Record{
        rec.sub, rec.expires_at, rec.ranges, rec.replica});
    // A freshly learned owned record needs its replica chain built along
    // the *current* successors (the exporter's chain predates the move).
    if (fresh && !rec.replica && cfg_.replication_factor > 0) {
      overlay_.send_to_successor(std::make_shared<ReplicaMsg>(
          StoredSubRecord{rec.sub, rec.expires_at, rec.ranges},
          cfg_.replication_factor));
    }
    any_expiring |= rec.expires_at != sim::kSimTimeNever;
  }
  if (any_expiring) schedule_sweep();
}

}  // namespace cbps::pubsub
