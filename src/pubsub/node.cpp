#include "cbps/pubsub/node.hpp"

#include <algorithm>
#include <utility>

#include "cbps/common/logging.hpp"
#include "cbps/common/sorted_view.hpp"

namespace cbps::pubsub {

using metrics::DropReason;
using metrics::SpanKind;
using overlay::PayloadPtr;

PubSubNode::PubSubNode(overlay::OverlayNode& overlay,
                       sim::SimulatorBase& sim, const AkMapping& mapping,
                       PubSubConfig cfg)
    : overlay_(overlay), sim_(sim), mapping_(mapping), cfg_(cfg) {
  store_.use_engine(cfg_.match_engine, mapping_.schema());
  overlay_.set_app(this);
}

PubSubNode::~PubSubNode() = default;

// ---------------------------------------------------------------------------
// Application API
// ---------------------------------------------------------------------------

void PubSubNode::send_to_keys(const std::vector<Key>& keys,
                              PayloadPtr payload,
                              PubSubConfig::Transport transport) {
  if (keys.empty()) return;
  switch (transport) {
    case PubSubConfig::Transport::kUnicast:
      for (Key k : keys) overlay_.send(k, payload);
      break;
    case PubSubConfig::Transport::kMulticast:
      overlay_.m_cast(keys, std::move(payload));
      break;
    case PubSubConfig::Transport::kChain:
      overlay_.chain_cast(keys, std::move(payload));
      break;
  }
}

void PubSubNode::subscribe(SubscriptionPtr sub, sim::SimTime ttl) {
  CBPS_ASSERT(sub != nullptr && sub->id != 0);
  CBPS_ASSERT_MSG(sub->subscriber == overlay_.id(),
                  "subscription's subscriber key must be this node");
  const std::vector<Key> keys = mapping_.subscription_keys(*sub);
  const sim::SimTime expiry =
      ttl == sim::kSimTimeNever ? sim::kSimTimeNever : sim_.now() + ttl;
  own_subs_[sub->id] = OwnSub{sub, expiry};
  auto msg = std::make_shared<SubscribeMsg>(
      sub, expiry, mapping_.subscription_ranges(*sub));
  if (trace_ != nullptr && trace_->enabled()) {
    if (const std::uint64_t tid = trace_->maybe_start_trace(); tid != 0) {
      const auto now = sim_.now();
      const std::uint64_t root = trace_->emit(
          metrics::TraceRef{tid, 0}, SpanKind::kSubscribe, overlay_.id(),
          now, now, sub->id, keys.size());
      const std::uint64_t map_span = trace_->emit(
          metrics::TraceRef{tid, root}, SpanKind::kMap, overlay_.id(), now,
          now, keys.size());
      msg->trace = metrics::TraceRef{tid, map_span};
    }
  }
  send_to_keys(keys, std::move(msg), cfg_.sub_transport);
}

std::size_t PubSubNode::refresh_subscriptions() {
  if (halted_) return 0;
  std::size_t n = 0;
  // Refresh sends draw wire randomness per message, so emission order
  // must be a function of the subscription set, not hash layout (D1).
  for (const auto* entry : sorted_view(own_subs_)) {
    const OwnSub& own = entry->second;
    if (own.expires_at != sim::kSimTimeNever &&
        own.expires_at <= sim_.now()) {
      continue;  // already expired; a refresh must not resurrect it
    }
    send_to_keys(mapping_.subscription_keys(*own.sub),
                 std::make_shared<SubscribeMsg>(
                     own.sub, own.expires_at,
                     mapping_.subscription_ranges(*own.sub)),
                 cfg_.sub_transport);
    ++n;
  }
  return n;
}

void PubSubNode::unsubscribe(SubscriptionId id) {
  auto it = own_subs_.find(id);
  if (it == own_subs_.end()) return;
  const std::vector<Key> keys =
      mapping_.subscription_keys(*it->second.sub);
  send_to_keys(keys, std::make_shared<UnsubscribeMsg>(id),
               cfg_.sub_transport);
  own_subs_.erase(it);
}

void PubSubNode::publish(EventPtr event) {
  CBPS_ASSERT(event != nullptr && event->id != 0);
  const std::vector<Key> keys = mapping_.event_keys(*event);
  fanout_hist_.add(static_cast<double>(keys.size()));
  auto msg =
      std::make_shared<PublishMsg>(event, overlay_.id(), sim_.now());
  if (trace_ != nullptr && trace_->enabled()) {
    if (const std::uint64_t tid = trace_->maybe_start_trace(); tid != 0) {
      const auto now = sim_.now();
      const std::uint64_t root = trace_->emit(
          metrics::TraceRef{tid, 0}, SpanKind::kPublish, overlay_.id(), now,
          now, event->id, keys.size());
      const std::uint64_t map_span = trace_->emit(
          metrics::TraceRef{tid, root}, SpanKind::kMap, overlay_.id(), now,
          now, keys.size());
      msg->trace = metrics::TraceRef{tid, map_span};
    }
  }
  send_to_keys(keys, std::move(msg), cfg_.pub_transport);
}

// ---------------------------------------------------------------------------
// Delivery dispatch
// ---------------------------------------------------------------------------

void PubSubNode::on_deliver(Key key, const PayloadPtr& payload) {
  const Key covered[] = {key};
  dispatch(covered, payload);
}

void PubSubNode::on_deliver_mcast(std::span<const Key> covered,
                                  const PayloadPtr& payload) {
  dispatch(covered, payload);
}

void PubSubNode::halt() {
  halted_ = true;
  // A crashed process loses its volatile buffers; the armed one-shot
  // timers see halted_ and do nothing when they fire.
  notify_buffer_.clear();
  collect_to_succ_.clear();
  collect_to_pred_.clear();
}

std::size_t PubSubNode::re_replicate() {
  if (cfg_.replication_factor == 0 || halted_) return 0;
  // Re-own first: a replica whose owner crashed leaves this node covering
  // its range while still holding only the passive copy — with no owner,
  // nothing would ever rebuild the chain and a second crash loses the
  // record. Collect before upgrading (no mutation during for_each).
  std::vector<StoredSubRecord> adopt;
  store_.for_each([&](const SubscriptionStore::Record& rec) {
    if (!rec.replica) return;
    if (std::any_of(rec.ranges.begin(), rec.ranges.end(),
                    [&](const KeyRange& r) {
                      return coverage_intersects(r);
                    })) {
      adopt.push_back({rec.sub, rec.expires_at, rec.ranges, false});
    }
  });
  for (const StoredSubRecord& rec : adopt) {
    store_.insert(SubscriptionStore::Record{rec.sub, rec.expires_at,
                                            rec.ranges, /*replica=*/false});
  }
  // Re-home second: an owned record none of whose ranges intersect our
  // coverage is stranded here (accepted while our predecessor was
  // unknown mid-repair, so our believed coverage was transiently huge).
  // Re-issue it toward its current rendezvous and drop our copy.
  std::vector<StoredSubRecord> stranded;
  store_.for_each([&](const SubscriptionStore::Record& rec) {
    if (rec.replica) return;
    if (!std::any_of(rec.ranges.begin(), rec.ranges.end(),
                     [&](const KeyRange& r) {
                       return coverage_intersects(r);
                     })) {
      stranded.push_back({rec.sub, rec.expires_at, rec.ranges, false});
    }
  });
  for (const StoredSubRecord& rec : stranded) {
    store_.remove(rec.sub->id);
    ++reissued_imports_;
    send_to_keys(mapping_.subscription_keys(*rec.sub),
                 std::make_shared<SubscribeMsg>(rec.sub, rec.expires_at,
                                                rec.ranges),
                 cfg_.sub_transport);
  }
  std::size_t n = 0;
  store_.for_each([&](const SubscriptionStore::Record& rec) {
    if (rec.replica) return;
    overlay_.send_to_successor(std::make_shared<ReplicaMsg>(
        StoredSubRecord{rec.sub, rec.expires_at, rec.ranges},
        cfg_.replication_factor));
    ++n;
  });
  return n;
}

void PubSubNode::dispatch(std::span<const Key> covered,
                          const PayloadPtr& payload) {
  if (halted_) return;
  if (auto* pub = dynamic_cast<const PublishMsg*>(payload.get())) {
    handle_publish(*pub, covered);
  } else if (auto* sub = dynamic_cast<const SubscribeMsg*>(payload.get())) {
    handle_subscribe(*sub);
  } else if (auto* notify = dynamic_cast<const NotifyMsg*>(payload.get())) {
    handle_notify(*notify);
  } else if (auto* collect =
                 dynamic_cast<const CollectMsg*>(payload.get())) {
    handle_collect(*collect);
  } else if (auto* unsub =
                 dynamic_cast<const UnsubscribeMsg*>(payload.get())) {
    handle_unsubscribe(*unsub);
  } else if (auto* rep = dynamic_cast<const ReplicaMsg*>(payload.get())) {
    handle_replica(*rep);
  } else if (auto* rrm =
                 dynamic_cast<const ReplicaRemoveMsg*>(payload.get())) {
    handle_replica_remove(*rrm);
  } else if (auto* st = dynamic_cast<const StateMsg*>(payload.get())) {
    import_state(payload);
    (void)st;
  } else {
    CBPS_LOG_WARN << "pubsub node " << overlay_.id()
                  << ": unknown payload type dropped";
  }
}

// ---------------------------------------------------------------------------
// Rendezvous-side handling
// ---------------------------------------------------------------------------

void PubSubNode::handle_subscribe(const SubscribeMsg& msg) {
  SubscriptionStore::Record rec{msg.sub, msg.expires_at, msg.ranges,
                                /*replica=*/false};
  const bool fresh = store_.insert(rec);
  if (msg.expires_at != sim::kSimTimeNever) schedule_sweep();
  if (fresh && cfg_.replication_factor > 0) {
    overlay_.send_to_successor(std::make_shared<ReplicaMsg>(
        StoredSubRecord{msg.sub, msg.expires_at, msg.ranges},
        cfg_.replication_factor));
  }
}

void PubSubNode::handle_unsubscribe(const UnsubscribeMsg& msg) {
  const bool removed = store_.remove(msg.sub_id);
  if (removed && cfg_.replication_factor > 0) {
    overlay_.send_to_successor(std::make_shared<ReplicaRemoveMsg>(
        msg.sub_id, cfg_.replication_factor));
  }
}

void PubSubNode::handle_replica(const ReplicaMsg& msg) {
  store_.insert(SubscriptionStore::Record{msg.record.sub,
                                          msg.record.expires_at,
                                          msg.record.ranges,
                                          /*replica=*/true});
  if (msg.record.expires_at != sim::kSimTimeNever) schedule_sweep();
  if (msg.remaining_hops > 1) {
    overlay_.send_to_successor(
        std::make_shared<ReplicaMsg>(msg.record, msg.remaining_hops - 1));
  }
}

void PubSubNode::handle_replica_remove(const ReplicaRemoveMsg& msg) {
  store_.remove(msg.sub_id);
  if (msg.remaining_hops > 1) {
    overlay_.send_to_successor(std::make_shared<ReplicaRemoveMsg>(
        msg.sub_id, msg.remaining_hops - 1));
  }
}

void PubSubNode::handle_publish(const PublishMsg& msg,
                                std::span<const Key> covered) {
  const auto matches = store_.match(*msg.event, sim_.now());
  for (const SubscriptionStore::Record* rec : matches) {
    // Mapping-level exactly-once filter: with multi-key EK mappings
    // (Selective-Attribute) only the rendezvous holding the
    // subscription's own selective key notifies.
    const bool responsible = std::any_of(
        covered.begin(), covered.end(), [&](Key k) {
          return mapping_.should_notify(*rec->sub, *msg.event, k);
        });
    if (!responsible) continue;
    route_match(*rec, msg.event, msg.published_at, msg.trace);
  }
}

void PubSubNode::handle_notify(const NotifyMsg& msg) {
  const sim::SimTime now = sim_.now();
  if (msg.subscriber != overlay_.id()) {
    // Notifications are routed by the subscriber's key, so when the
    // addressee is gone (crashed, or the ring moved mid-route) the
    // message lands on whoever now owns that key. Surfacing it here
    // would be a ghost delivery under the dead subscriber's identity.
    misdirected_notifies_ += msg.batch.size();
    if (trace_ != nullptr) {
      for (const Notification& n : msg.batch) {
        if (!n.trace.sampled()) continue;
        trace_->emit(n.trace, SpanKind::kDrop, overlay_.id(), now, now,
                     static_cast<std::uint64_t>(DropReason::kMisdirected));
      }
    }
    return;
  }
  for (const Notification& n : msg.batch) {
    if (cfg_.duplicate_suppression &&
        !delivered_.emplace(n.event->id, n.subscription).second) {
      ++duplicates_suppressed_;
      if (trace_ != nullptr && n.trace.sampled()) {
        trace_->emit(n.trace, SpanKind::kDrop, overlay_.id(), now, now,
                     static_cast<std::uint64_t>(DropReason::kDuplicate));
      }
      continue;
    }
    ++notifications_received_;
    const double delay_s = sim::to_seconds(now - n.published_at);
    notification_delay_.add(delay_s);
    delay_hist_.add(delay_s);
    if (trace_ != nullptr && n.trace.sampled()) {
      // Instant at arrival — a span must not start before its parent
      // (the notify send); the end-to-end latency is the distance to the
      // trace's publish root (and lives in the delay histogram anyway).
      trace_->emit(n.trace, SpanKind::kDeliver, overlay_.id(), now, now,
                   n.subscription, n.event->id);
    }
    if (sink_) sink_(msg.subscriber, n);
  }
}

// ---------------------------------------------------------------------------
// Notification paths: immediate, buffered, collected (§4.3.2)
// ---------------------------------------------------------------------------

void PubSubNode::route_match(const SubscriptionStore::Record& rec,
                             EventPtr event, sim::SimTime published_at,
                             metrics::TraceRef trace) {
  Notification n{std::move(event), rec.sub->id, published_at, trace};
  const Key subscriber = rec.sub->subscriber;

  if (cfg_.collecting) {
    const KeyRange* range = my_range_for(rec);
    if (range != nullptr && range->size(overlay_.ring()) > 1 &&
        !is_agent_for(*range)) {
      enqueue_collect(CollectItem{*range, subscriber, std::move(n)});
      return;
    }
    // We are the agent (or the range is degenerate): buffer and flush
    // periodically toward the subscriber.
    buffer_notification(subscriber, std::move(n));
    return;
  }
  if (cfg_.buffering) {
    buffer_notification(subscriber, std::move(n));
    return;
  }
  if (trace_ != nullptr && n.trace.sampled()) {
    const auto now = sim_.now();
    const std::uint64_t span = trace_->emit(
        n.trace, SpanKind::kNotify, overlay_.id(), now, now, subscriber, 1);
    if (span != 0) n.trace.parent_span = span;
  }
  ++notify_batches_sent_;
  ++notifications_sent_;
  auto out = std::make_shared<NotifyMsg>(
      subscriber, std::vector<Notification>{std::move(n)});
  out->trace = out->batch.front().trace;
  overlay_.send(subscriber, std::move(out));
}

void PubSubNode::buffer_notification(Key subscriber, Notification n) {
  if (trace_ != nullptr && n.trace.sampled()) {
    const auto now = sim_.now();
    const std::uint64_t span = trace_->emit(
        n.trace, SpanKind::kBuffer, overlay_.id(), now, now, subscriber);
    if (span != 0) n.trace.parent_span = span;
  }
  notify_buffer_[subscriber].push_back(std::move(n));
  if (!flush_scheduled_) {
    flush_scheduled_ = true;
    // The flush timer is this node's own event: key/place it on this
    // node's overlay domain (same shard as the rest of its state).
    const common::ActorScope as(overlay_.domain());
    sim_.schedule_after(cfg_.buffer_period, [this] {
      flush_scheduled_ = false;
      if (!halted_) flush_notify_buffer();
    });
  }
}

void PubSubNode::flush_notify_buffer() {
  // One NotifyMsg per subscriber, in subscriber-key order: send order
  // decides wire RNG draws and event keys downstream, so it must not
  // depend on the buffer's bucket layout (D1).
  for (auto* entry : sorted_view(notify_buffer_)) {
    const Key subscriber = entry->first;
    std::vector<Notification>& batch = entry->second;
    if (batch.empty()) continue;
    ++notify_batches_sent_;
    notifications_sent_ += batch.size();
    if (trace_ != nullptr) {
      const auto now = sim_.now();
      for (Notification& n : batch) {
        if (!n.trace.sampled()) continue;
        const std::uint64_t span =
            trace_->emit(n.trace, SpanKind::kNotify, overlay_.id(), now, now,
                         subscriber, batch.size());
        if (span != 0) n.trace.parent_span = span;
      }
    }
    auto out = std::make_shared<NotifyMsg>(subscriber, std::move(batch));
    for (const Notification& n : out->batch) {
      if (n.trace.sampled()) {
        out->trace = n.trace;  // overlay hop spans attach to one of them
        break;
      }
    }
    overlay_.send(subscriber, std::move(out));
  }
  notify_buffer_.clear();
}

void PubSubNode::enqueue_collect(CollectItem item) {
  if (trace_ != nullptr && item.notification.trace.sampled()) {
    const auto now = sim_.now();
    const std::uint64_t span =
        trace_->emit(item.notification.trace, SpanKind::kCollect,
                     overlay_.id(), now, now, item.subscriber);
    if (span != 0) item.notification.trace.parent_span = span;
  }
  auto& queue =
      agent_toward_successor(item.range) ? collect_to_succ_ : collect_to_pred_;
  queue.push_back(std::move(item));
  if (!collect_scheduled_) {
    collect_scheduled_ = true;
    const common::ActorScope as(overlay_.domain());
    sim_.schedule_after(cfg_.buffer_period, [this] {
      collect_scheduled_ = false;
      if (!halted_) flush_collect_buffers();
    });
  }
}

void PubSubNode::flush_collect_buffers() {
  // One message per direction regardless of how many subscriptions are
  // involved: "the cost of exchanging notifications between neighbor
  // nodes is amortized across all stored subscriptions" (§4.3.2).
  const auto send_batch = [this](std::vector<CollectItem>& items,
                                 bool to_successor) {
    if (items.empty()) return;
    auto out = std::make_shared<CollectMsg>(std::move(items));
    items.clear();
    for (const CollectItem& item : out->items) {
      if (item.notification.trace.sampled()) {
        out->trace = item.notification.trace;
        break;
      }
    }
    if (to_successor) {
      overlay_.send_to_successor(std::move(out));
    } else {
      overlay_.send_to_predecessor(std::move(out));
    }
  };
  send_batch(collect_to_succ_, /*to_successor=*/true);
  send_batch(collect_to_pred_, /*to_successor=*/false);
}

void PubSubNode::handle_collect(const CollectMsg& msg) {
  for (const CollectItem& item : msg.items) {
    if (is_agent_for(item.range)) {
      buffer_notification(item.subscriber, item.notification);
    } else {
      // Keep moving toward the agent; re-batched with our own pending
      // items on the next flush.
      enqueue_collect(item);
    }
  }
}

// ---------------------------------------------------------------------------
// Expiration (simulated unsubscriptions, §5.1)
// ---------------------------------------------------------------------------

void PubSubNode::schedule_sweep() {
  const sim::SimTime next = store_.next_expiry();
  if (next == sim::kSimTimeNever) return;
  const sim::SimTime at = std::max(next, sim_.now());
  if (sweep_scheduled_ && sweep_at_ <= at) return;
  sweep_scheduled_ = true;
  sweep_at_ = at;
  const common::ActorScope as(overlay_.domain());
  sim_.schedule_at(at, [this, at] {
    if (sweep_at_ != at) return;  // superseded by an earlier sweep
    sweep_scheduled_ = false;
    sweep_at_ = sim::kSimTimeNever;
    if (!halted_) sweep_expired();
  });
}

void PubSubNode::sweep_expired() {
  store_.sweep_expired(sim_.now());
  schedule_sweep();  // re-arm for the next earliest expiry, if any
}

// ---------------------------------------------------------------------------
// Collecting geometry
// ---------------------------------------------------------------------------

bool PubSubNode::covers_key(Key k) const {
  const RingParams ring = overlay_.ring();
  const Key pred = overlay_.predecessor_id();
  if (pred == overlay_.id()) return true;  // whole ring
  return ring.in_open_closed(pred, overlay_.id(), k);
}

bool PubSubNode::coverage_intersects(const KeyRange& r) const {
  const RingParams ring = overlay_.ring();
  const Key pred = overlay_.predecessor_id();
  if (pred == overlay_.id()) return true;
  // (pred, id] and [r.lo, r.hi] intersect iff either contains the
  // other's first element.
  return ring.in_open_closed(pred, overlay_.id(), r.lo) ||
         ring.in_closed_closed(r.lo, r.hi, ring.add(pred, 1));
}

const KeyRange* PubSubNode::my_range_for(
    const SubscriptionStore::Record& rec) const {
  for (const KeyRange& r : rec.ranges) {
    if (coverage_intersects(r)) return &r;
  }
  return nullptr;
}

bool PubSubNode::is_agent_for(const KeyRange& r) const {
  return covers_key(overlay_.ring().midpoint(r.lo, r.hi));
}

bool PubSubNode::agent_toward_successor(const KeyRange& r) const {
  const RingParams ring = overlay_.ring();
  const Key mid = ring.midpoint(r.lo, r.hi);
  const Key pos =
      ring.in_closed_closed(r.lo, r.hi, overlay_.id()) ? overlay_.id() : r.hi;
  return ring.distance(r.lo, pos) < ring.distance(r.lo, mid);
}

// ---------------------------------------------------------------------------
// State handover (joins / leaves, §4.1)
// ---------------------------------------------------------------------------

overlay::PayloadPtr PubSubNode::export_state(Key range_lo, Key range_hi,
                                             bool remove) {
  const RingParams ring = overlay_.ring();
  const auto in_handed_range = [&](const KeyRange& r) {
    // (range_lo, range_hi] vs [r.lo, r.hi]
    return ring.in_open_closed(range_lo, range_hi, r.lo) ||
           ring.in_closed_closed(r.lo, r.hi, ring.add(range_lo, 1));
  };

  std::vector<StoredSubRecord> out;
  store_.for_each([&](const SubscriptionStore::Record& rec) {
    if (rec.replica) {
      // The receiver is taking over (part of) our ring position, which
      // makes it a better-placed holder for every replica chain we
      // participate in; hand replicas over as replicas. We keep our own
      // copies too (extra copies are harmless: a replica only ever
      // matches events once its holder legitimately covers their keys).
      out.push_back({rec.sub, rec.expires_at, rec.ranges, true});
      return;
    }
    if (std::any_of(rec.ranges.begin(), rec.ranges.end(), in_handed_range)) {
      out.push_back({rec.sub, rec.expires_at, rec.ranges, false});
    }
  });

  if (remove) {
    // Keep records that still intersect our remaining coverage
    // (range_hi, id]; when the whole range is handed away (leave),
    // nothing remains.
    const bool nothing_left = range_hi == overlay_.id();
    store_.remove_if([&](const SubscriptionStore::Record& rec) {
      if (rec.replica) return false;
      if (!std::any_of(rec.ranges.begin(), rec.ranges.end(),
                       in_handed_range)) {
        return false;
      }
      if (nothing_left) return true;
      const auto in_remaining = [&](const KeyRange& r) {
        return ring.in_open_closed(range_hi, overlay_.id(), r.lo) ||
               ring.in_closed_closed(r.lo, r.hi, ring.add(range_hi, 1));
      };
      return !std::any_of(rec.ranges.begin(), rec.ranges.end(),
                          in_remaining);
    });
  }
  return std::make_shared<StateMsg>(std::move(out));
}

void PubSubNode::import_state(const overlay::PayloadPtr& state) {
  const auto* msg = dynamic_cast<const StateMsg*>(state.get());
  if (msg == nullptr) {
    CBPS_LOG_WARN << "pubsub node " << overlay_.id()
                  << ": unexpected state payload";
    return;
  }
  if (halted_) return;
  bool any_expiring = false;
  for (const StoredSubRecord& rec : msg->records) {
    // Ownership check: after a partition heals, state transfers can land
    // on a node the re-merged ring no longer makes responsible for any
    // of the record's ranges. Storing it here would strand it — re-issue
    // it as a fresh subscription toward the current rendezvous instead.
    if (!rec.replica &&
        !std::any_of(rec.ranges.begin(), rec.ranges.end(),
                     [&](const KeyRange& r) {
                       return coverage_intersects(r);
                     })) {
      ++reissued_imports_;
      send_to_keys(mapping_.subscription_keys(*rec.sub),
                   std::make_shared<SubscribeMsg>(rec.sub, rec.expires_at,
                                                  rec.ranges),
                   cfg_.sub_transport);
      continue;
    }
    const bool fresh = store_.insert(SubscriptionStore::Record{
        rec.sub, rec.expires_at, rec.ranges, rec.replica});
    // A freshly learned owned record needs its replica chain built along
    // the *current* successors (the exporter's chain predates the move).
    if (fresh && !rec.replica && cfg_.replication_factor > 0) {
      overlay_.send_to_successor(std::make_shared<ReplicaMsg>(
          StoredSubRecord{rec.sub, rec.expires_at, rec.ranges},
          cfg_.replication_factor));
    }
    any_expiring |= rec.expires_at != sim::kSimTimeNever;
  }
  if (any_expiring) schedule_sweep();
}

}  // namespace cbps::pubsub
