#include "cbps/pubsub/subscription.hpp"

#include <algorithm>
#include <set>

namespace cbps::pubsub {

std::ostream& operator<<(std::ostream& os, const Event& e) {
  os << "event#" << e.id << '(';
  for (std::size_t i = 0; i < e.values.size(); ++i) {
    if (i) os << ", ";
    os << e.values[i];
  }
  return os << ')';
}

const Constraint* Subscription::constraint_on(std::size_t attr) const {
  for (const Constraint& c : constraints) {
    if (c.attribute == attr) return &c;
  }
  return nullptr;
}

bool Subscription::matches(const Event& e) const {
  return std::all_of(
      constraints.begin(), constraints.end(), [&](const Constraint& c) {
        return c.attribute < e.values.size() &&
               c.range.contains(e.values[c.attribute]);
      });
}

bool Subscription::valid_for(const Schema& schema) const {
  std::set<std::size_t> seen;
  for (const Constraint& c : constraints) {
    if (c.attribute >= schema.dimensions()) return false;
    if (!seen.insert(c.attribute).second) return false;  // duplicate attr
    const ClosedInterval& dom = schema.domain(c.attribute);
    if (c.range.lo < dom.lo || c.range.hi > dom.hi) return false;
  }
  return true;
}

bool Subscription::well_formed_for(const Schema& schema) const {
  std::set<std::size_t> seen;
  for (const Constraint& c : constraints) {
    if (c.attribute >= schema.dimensions()) return false;
    if (!seen.insert(c.attribute).second) return false;  // duplicate attr
  }
  return true;
}

bool Subscription::satisfiable_for(const Schema& schema) const {
  return std::all_of(
      constraints.begin(), constraints.end(), [&](const Constraint& c) {
        return c.attribute < schema.dimensions() &&
               c.range.overlaps(schema.domain(c.attribute));
      });
}

ClosedInterval Subscription::effective_interval(const Schema& schema,
                                                std::size_t attr) const {
  const ClosedInterval& dom = schema.domain(attr);
  const Constraint* c = constraint_on(attr);
  if (c == nullptr) return dom;
  const auto clamped = c->range.intersect(dom);
  CBPS_ASSERT_MSG(clamped.has_value(),
                  "effective_interval on unsatisfiable constraint");
  return *clamped;
}

bool Subscription::covers(const Schema& schema,
                          const Subscription& other) const {
  // Only our own constraints can exclude events; attributes we leave
  // unconstrained span the whole domain and contain anything.
  for (const Constraint& c : constraints) {
    const ClosedInterval mine = effective_interval(schema, c.attribute);
    const ClosedInterval theirs =
        other.effective_interval(schema, c.attribute);
    if (theirs.lo < mine.lo || theirs.hi > mine.hi) return false;
  }
  return true;
}

double Subscription::selectivity(const Schema& schema,
                                 std::size_t attr) const {
  const Constraint* c = constraint_on(attr);
  if (c == nullptr) return 1.0;
  return static_cast<double>(c->range.width()) /
         static_cast<double>(schema.domain_size(attr));
}

std::optional<std::size_t> Subscription::most_selective_attribute(
    const Schema& schema) const {
  std::optional<std::size_t> best;
  double best_sel = 0.0;
  for (const Constraint& c : constraints) {
    const double sel = selectivity(schema, c.attribute);
    if (!best || sel < best_sel ||
        (sel == best_sel && c.attribute < *best)) {
      best = c.attribute;
      best_sel = sel;
    }
  }
  return best;
}

std::ostream& operator<<(std::ostream& os, const Subscription& s) {
  os << "sub#" << s.id << '{';
  for (std::size_t i = 0; i < s.constraints.size(); ++i) {
    if (i) os << " && ";
    const Constraint& c = s.constraints[i];
    os << c.range.lo << "<=a" << c.attribute << "<=" << c.range.hi;
  }
  return os << '}';
}

}  // namespace cbps::pubsub
