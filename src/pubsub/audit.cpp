#include "cbps/pubsub/audit.hpp"

#include <algorithm>
#include <iostream>
#include <sstream>
#include <unordered_set>

#include "cbps/common/logging.hpp"
#include "cbps/common/sorted_view.hpp"

namespace cbps::pubsub {

namespace {

constexpr std::size_t kMaxIssues = 20;

void add_issue(std::vector<std::string>& issues, const std::string& msg) {
  if (issues.size() < kMaxIssues) issues.push_back(msg);
}

/// Does [r.lo, r.hi] intersect the arc (lo, hi] on `ring`?
bool range_intersects(const RingParams& ring, Key lo, Key hi,
                      const KeyRange& r) {
  return ring.in_open_closed(lo, hi, r.lo) ||
         ring.in_closed_closed(r.lo, r.hi, ring.add(lo, 1));
}

}  // namespace

RingAuditReport audit_ring(chord::ChordNetwork& net) {
  RingAuditReport report;
  const std::vector<Key> ids = net.alive_ids();
  const std::size_t n = ids.size();
  report.nodes_audited = n;
  if (n == 0) return report;

  for (std::size_t i = 0; i < n; ++i) {
    const Key id = ids[i];
    const chord::ChordNode& node = *net.node(id);
    const Key true_succ = ids[(i + 1) % n];
    const Key true_pred = ids[(i + n - 1) % n];

    if (n > 1) {
      if (node.successor_id() != true_succ) {
        ++report.successor_mismatches;
        std::ostringstream os;
        os << "node " << id << ": successor " << node.successor_id()
           << ", oracle says " << true_succ;
        add_issue(report.issues, os.str());
      }
      const auto pred = node.predecessor();
      if (!pred || *pred != true_pred) {
        ++report.predecessor_mismatches;
        std::ostringstream os;
        os << "node " << id << ": predecessor "
           << (pred ? std::to_string(*pred) : std::string("<none>"))
           << ", oracle says " << true_pred;
        add_issue(report.issues, os.str());
      }
    }

    for (Key s : node.successor_list()) {
      if (net.is_alive(s)) continue;
      ++report.dead_successor_entries;
      std::ostringstream os;
      os << "node " << id << ": dead successor-list entry " << s;
      add_issue(report.issues, os.str());
    }

    const chord::FingerTable& fingers = node.finger_table();
    for (std::size_t f = 0; f < fingers.size(); ++f) {
      const auto entry = fingers.get(f);
      if (!entry) continue;
      if (!net.is_alive(*entry)) {
        ++report.dead_fingers;
        std::ostringstream os;
        os << "node " << id << ": finger " << f << " -> dead node "
           << *entry;
        add_issue(report.issues, os.str());
      } else if (*entry != net.oracle_successor(fingers.start(f))) {
        ++report.stale_fingers;
      }
    }
  }
  return report;
}

SystemAuditReport audit_system(PubSubSystem& system) {
  SystemAuditReport report;
  chord::ChordNetwork& net = system.network();
  report.ring = audit_ring(net);

  const std::vector<Key> ids = net.alive_ids();
  const std::size_t n = ids.size();
  if (n == 0) return report;
  const RingParams ring = net.ring();
  const std::size_t rf = system.config().pubsub.replication_factor;

  // Ground-truth coverage of node ids[i] is (ids[i-1], ids[i]].
  const auto true_pred_of = [&](std::size_t i) {
    return ids[(i + n - 1) % n];
  };

  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t idx = system.index_of(ids[i]);
    const PubSubNode& pn = system.pubsub_node(idx);
    const Key pred = true_pred_of(i);

    pn.store().for_each([&](const SubscriptionStore::Record& rec) {
      if (rec.replica) return;
      // Placement: an owned record must intersect this node's true
      // coverage through at least one of its key runs (a single-node
      // ring covers everything).
      const bool placed =
          n == 1 || std::any_of(rec.ranges.begin(), rec.ranges.end(),
                                [&](const KeyRange& r) {
                                  return range_intersects(ring, pred,
                                                          ids[i], r);
                                });
      if (!placed) {
        ++report.misplaced_records;
        std::ostringstream os;
        os << "node " << ids[i] << ": stores sub " << rec.sub->id
           << " but covers none of its keys";
        add_issue(report.issues, os.str());
      }
      // Replica coverage: the next min(rf, n-1) alive successors must
      // each hold a copy (replica or owned — a chain member that took
      // over ownership still protects the record).
      const std::size_t want = std::min(rf, n - 1);
      std::size_t holding = 0;
      for (std::size_t k = 1; k <= want; ++k) {
        const std::size_t succ_idx =
            system.index_of(ids[(i + k) % n]);
        if (system.pubsub_node(succ_idx).store().find(rec.sub->id) !=
            nullptr) {
          ++holding;
        }
      }
      if (holding < want) {
        ++report.under_replicated;
        std::ostringstream os;
        os << "node " << ids[i] << ": sub " << rec.sub->id << " has "
           << holding << "/" << want << " replicas";
        add_issue(report.issues, os.str());
      }
    });

    // Rendezvous completeness: every subscription this node still holds
    // (issued, never withdrawn) must be stored at each of its oracle
    // rendezvous nodes.
    for (const auto* own_entry : sorted_view(pn.own_subscriptions())) {
      const SubscriptionId sub_id = own_entry->first;
      const auto& own = own_entry->second;
      std::unordered_set<Key> owners;
      for (Key k : system.mapping().subscription_keys(*own.sub)) {
        owners.insert(net.oracle_successor(k));
      }
      // Issue text order must track subscription/owner ids, not hash
      // layout (D1) — these lines land in test logs and audit output.
      for (const Key* owner_p : sorted_view(owners)) {
        const Key owner = *owner_p;
        const std::size_t oidx = system.index_of(owner);
        const auto* rec = system.pubsub_node(oidx).store().find(sub_id);
        if (rec != nullptr) continue;
        ++report.unstored_subscriptions;
        std::ostringstream os;
        os << "sub " << sub_id << " (subscriber " << ids[i]
           << ") missing at rendezvous " << owner;
        add_issue(report.issues, os.str());
      }
    }
  }
  if (!report.ok()) {
    // The lines leading up to the violation are usually the story: dump
    // the logger's recent-lines ring (kept even below the console level)
    // next to the verdict.
    std::cerr << "[audit] invariant violation; recent log lines:\n";
    Logger::instance().dump_recent(std::cerr);
  }
  return report;
}

}  // namespace cbps::pubsub
