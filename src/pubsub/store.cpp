#include "cbps/pubsub/store.hpp"

#include <algorithm>

#include "cbps/common/sorted_view.hpp"

namespace cbps::pubsub {

const char* to_string(MatchEngine engine) {
  switch (engine) {
    case MatchEngine::kBruteForce:
      return "brute";
    case MatchEngine::kCountingIndex:
      return "counting";
    case MatchEngine::kCoveringIndex:
      return "covering";
  }
  return "?";
}

std::optional<MatchEngine> match_engine_from_string(std::string_view s) {
  if (s == "brute") return MatchEngine::kBruteForce;
  if (s == "counting") return MatchEngine::kCountingIndex;
  if (s == "covering") return MatchEngine::kCoveringIndex;
  return std::nullopt;
}

void SubscriptionStore::index_expiry(SubscriptionId id, sim::SimTime at) {
  if (at == sim::kSimTimeNever) return;
  expiry_index_.emplace(at, id);
}

void SubscriptionStore::unindex_expiry(SubscriptionId id, sim::SimTime at) {
  if (at == sim::kSimTimeNever) return;
  auto [lo, hi] = expiry_index_.equal_range(at);
  for (auto it = lo; it != hi; ++it) {
    if (it->second == id) {
      expiry_index_.erase(it);
      return;
    }
  }
}

SubscriptionStore::RecordMap::iterator SubscriptionStore::erase_record(
    RecordMap::iterator it) {
  if (!it->second.replica) --owned_;
  unindex_expiry(it->first, it->second.expires_at);
  if (index_) index_->remove(it->first);
  return records_.erase(it);
}

bool SubscriptionStore::insert(const Record& record) {
  CBPS_ASSERT(record.sub != nullptr);
  auto [it, inserted] = records_.emplace(record.sub->id, record);
  if (inserted) {
    index_expiry(it->first, record.expires_at);
    if (index_) index_->insert(record.sub);
    if (!record.replica) {
      ++owned_;
      note_owned_change();
    }
    return true;
  }
  // Refresh: update expiry and ranges; a non-replica insert upgrades a
  // replica record to owned.
  Record& existing = it->second;
  if (existing.expires_at != record.expires_at) {
    unindex_expiry(it->first, existing.expires_at);
    existing.expires_at = record.expires_at;
    index_expiry(it->first, existing.expires_at);
  }
  // A re-subscription can carry different constraints under the same id
  // (the subscriber upgraded its filter): the index entries and the
  // stored pointer must follow, or the indexed engines keep matching the
  // stale constraints and silently diverge from brute force.
  if (existing.sub != record.sub) {
    if (index_ && existing.sub->constraints != record.sub->constraints) {
      index_->remove(it->first);
      index_->insert(record.sub);
    }
    existing.sub = record.sub;
  }
  existing.ranges = record.ranges;
  if (existing.replica && !record.replica) {
    existing.replica = false;
    ++owned_;
    note_owned_change();
    // Fresh *ownership*: the node held only a passive copy until now, so
    // the caller must still build the replication chain for it.
    return true;
  }
  return false;
}

bool SubscriptionStore::remove(SubscriptionId id) {
  auto it = records_.find(id);
  if (it == records_.end()) return false;
  erase_record(it);
  return true;
}

const SubscriptionStore::Record* SubscriptionStore::find(
    SubscriptionId id) const {
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

std::size_t SubscriptionStore::sweep_expired(sim::SimTime now) {
  std::size_t removed = 0;
  while (!expiry_index_.empty() && expiry_index_.begin()->first <= now) {
    const SubscriptionId id = expiry_index_.begin()->second;
    auto it = records_.find(id);
    CBPS_ASSERT(it != records_.end());
    erase_record(it);
    ++removed;
  }
  return removed;
}

std::vector<const SubscriptionStore::Record*> SubscriptionStore::match(
    const Event& e, sim::SimTime now) const {
  std::vector<const Record*> out;
  if (index_) {
    std::vector<SubscriptionId> ids;
    index_->match_into(e, ids);
    out.reserve(ids.size());
    for (SubscriptionId id : ids) {
      const auto it = records_.find(id);
      CBPS_ASSERT(it != records_.end());
      if (it->second.expires_at <= now) continue;
      out.push_back(&it->second);
    }
    return out;
  }
  out.reserve(records_.size());
  // The scan itself may walk in hash order — the result is canonicalized
  // below, so no ordering escapes. Keeping the walk raw preserves the
  // brute engine's cost profile at bench scale (10^6+ records).
  // detlint: unordered-ok(full scan; result sorted by id before return)
  for (const auto& [_, rec] : records_) {
    if (rec.expires_at <= now) continue;
    if (rec.sub->matches(e)) out.push_back(&rec);
  }
  // Brute force is the oracle engine: its match order must be a pure
  // function of the stored set, not of bucket layout (D1).
  std::sort(out.begin(), out.end(), [](const Record* a, const Record* b) {
    return a->sub->id < b->sub->id;
  });
  return out;
}

void SubscriptionStore::for_each(
    const std::function<void(const Record&)>& fn) const {
  // Callers forward replicas and emit audit issues from this callback:
  // visit in id order so those side effects are deterministic (D1).
  for (const auto* entry : sorted_view(records_)) fn(entry->second);
}

std::size_t SubscriptionStore::remove_if(
    const std::function<bool(const Record&)>& pred) {
  // Erase in id order: removals mutate the match index's posting lists
  // (swap-erase), so removal order shapes later match_into output (D1).
  std::vector<SubscriptionId> doomed;
  for (const auto* entry : sorted_view(records_)) {
    if (pred(entry->second)) doomed.push_back(entry->first);
  }
  for (SubscriptionId id : doomed) {
    const auto it = records_.find(id);
    CBPS_ASSERT(it != records_.end());
    erase_record(it);
  }
  return doomed.size();
}

void SubscriptionStore::note_owned_change() {
  if (owned_ > peak_owned_) peak_owned_ = owned_;
}

}  // namespace cbps::pubsub
