#include "cbps/pubsub/delivery_checker.hpp"

#include <sstream>

#include "cbps/common/assert.hpp"

namespace cbps::pubsub {

namespace {
constexpr std::size_t kMaxIssues = 20;

void add_issue(DeliveryChecker::Report& report, const std::string& msg) {
  if (report.issues.size() < kMaxIssues) report.issues.push_back(msg);
}
}  // namespace

void DeliveryChecker::on_subscribe(SubscriptionPtr sub, sim::SimTime when,
                                   sim::SimTime expires_at) {
  CBPS_ASSERT(sub != nullptr);
  const SubscriptionId id = sub->id;
  subs_[id] = SubEntry{std::move(sub), when, expires_at};
}

void DeliveryChecker::on_unsubscribe(SubscriptionId id, sim::SimTime when) {
  auto it = subs_.find(id);
  if (it == subs_.end()) return;
  it->second.ends_at = std::min(it->second.ends_at, when);
}

void DeliveryChecker::on_node_crashed(Key node, sim::SimTime when) {
  for (auto& [_, entry] : subs_) {
    if (entry.sub->subscriber != node) continue;
    entry.ends_at = std::min(entry.ends_at, when);
  }
}

void DeliveryChecker::on_publish(EventPtr event, sim::SimTime when) {
  CBPS_ASSERT(event != nullptr);
  publishes_.push_back(PubEntry{std::move(event), when});
}

void DeliveryChecker::on_notify(Key subscriber, const Notification& n,
                                sim::SimTime /*when*/) {
  // detlint: concurrency-ok(commutative keyed counts; TSan-proven in parallel_sim_test)
  const std::lock_guard<std::mutex> lock(notify_mu_);
  auto& info = deliveries_[{n.event->id, n.subscription}];
  // Dedup before counting: the pair's subscriber identity is fixed by
  // its first delivery. A replayed/duplicate NotifyMsg must only bump
  // the count — overwriting the subscriber here used to let a late
  // misrouted duplicate decide the wrong-subscriber verdict.
  if (info.count == 0) {
    info.subscriber = subscriber;
  } else if (info.subscriber != subscriber) {
    info.subscriber_mismatch = true;
  }
  ++info.count;
}

DeliveryChecker::Report DeliveryChecker::verify(
    sim::SimTime grace, sim::SimTime pubs_after) const {
  Report report;

  for (const PubEntry& pub : publishes_) {
    if (pub.when < pubs_after) continue;
    for (const auto& [sub_id, entry] : subs_) {
      const bool matches = entry.sub->matches(*pub.event);
      const auto it = deliveries_.find({pub.event->id, sub_id});
      const std::uint64_t delivered_count =
          it == deliveries_.end() ? 0 : it->second.count;

      if (delivered_count > 0 && !matches) {
        report.spurious += delivered_count;
        std::ostringstream os;
        os << *pub.event << " delivered to non-matching " << *entry.sub;
        add_issue(report, os.str());
        continue;
      }
      if (delivered_count > 0 &&
          (it->second.subscriber != entry.sub->subscriber ||
           it->second.subscriber_mismatch)) {
        ++report.wrong_subscriber;
        std::ostringstream os;
        os << *pub.event << " for " << *entry.sub
           << " delivered to node " << it->second.subscriber
           << (it->second.subscriber_mismatch
                   ? " (and to at least one other node)"
                   : "")
           << " instead of " << entry.sub->subscriber;
        add_issue(report, os.str());
      }
      if (!matches) continue;

      // Activity window with grace around both boundaries.
      const bool clearly_active =
          pub.when >= entry.subscribed_at + grace &&
          (entry.ends_at == sim::kSimTimeNever ||
           pub.when + grace <= entry.ends_at);
      const bool clearly_inactive =
          pub.when < entry.subscribed_at ||
          (entry.ends_at != sim::kSimTimeNever && pub.when >= entry.ends_at);

      if (clearly_active) {
        ++report.expected;
        if (delivered_count == 0) {
          ++report.missing;
          std::ostringstream os;
          os << *pub.event << " (t=" << sim::to_seconds(pub.when)
             << "s) never reached " << *entry.sub;
          add_issue(report, os.str());
        } else {
          ++report.delivered;
          if (delivered_count > 1) {
            report.duplicates += delivered_count - 1;
            std::ostringstream os;
            os << *pub.event << " delivered " << delivered_count
               << " times to " << *entry.sub;
            add_issue(report, os.str());
          }
        }
      } else if (clearly_inactive && delivered_count > 0 &&
                 pub.when < entry.subscribed_at) {
        // Delivered although published strictly before the subscription
        // existed: impossible in a correct run.
        report.spurious += delivered_count;
        std::ostringstream os;
        os << *pub.event << " delivered to not-yet-registered " << *entry.sub;
        add_issue(report, os.str());
      }
      // Boundary (grace) region: deliveries are acceptable either way,
      // and duplicates there are still suspicious but tolerated.
    }
  }
  return report;
}

}  // namespace cbps::pubsub
