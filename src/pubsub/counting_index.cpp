#include "cbps/pubsub/counting_index.hpp"

#include <algorithm>

namespace cbps::pubsub {

CountingIndex::CountingIndex(const Schema& schema,
                             std::size_t buckets_per_attribute)
    : schema_(schema), buckets_per_attribute_(buckets_per_attribute) {
  CBPS_ASSERT(buckets_per_attribute_ >= 1);
  buckets_.resize(schema_.dimensions());
  for (auto& attr_buckets : buckets_) {
    attr_buckets.resize(buckets_per_attribute_);
  }
}

std::size_t CountingIndex::bucket_of(std::size_t attr, Value v) const {
  const ClosedInterval dom = schema_.domain(attr);
  CBPS_ASSERT(dom.contains(v));
  const auto offset = static_cast<std::uint64_t>(v - dom.lo);
  return static_cast<std::size_t>(
      static_cast<Uint128>(offset) * buckets_per_attribute_ / dom.width());
}

bool CountingIndex::insert(const SubscriptionPtr& sub) {
  CBPS_ASSERT(sub != nullptr);
  CBPS_ASSERT_MSG(sub->well_formed_for(schema_),
                  "subscription/schema mismatch");
  if (subs_.contains(sub->id)) return false;

  std::uint32_t dense;
  if (!free_dense_.empty()) {
    dense = free_dense_.back();
    free_dense_.pop_back();
  } else {
    dense = static_cast<std::uint32_t>(dense_.size());
    dense_.emplace_back();
  }
  dense_[dense] = DenseInfo{
      sub->id, static_cast<std::uint32_t>(sub->constraints.size())};
  subs_.emplace(sub->id, SubInfo{sub, dense});

  // A constraint disjoint from its domain makes the whole conjunction
  // unsatisfiable: register the id but add no bucket entries, so the
  // subscription never matches — consistent with the brute-force scan.
  if (!sub->satisfiable_for(schema_)) return true;

  if (sub->constraints.empty()) {
    match_all_.push_back(sub->id);
    return true;
  }
  for (const Constraint& c : sub->constraints) {
    const ClosedInterval clamped =
        *c.range.intersect(schema_.domain(c.attribute));
    const std::size_t first = bucket_of(c.attribute, clamped.lo);
    const std::size_t last = bucket_of(c.attribute, clamped.hi);
    for (std::size_t b = first; b <= last; ++b) {
      buckets_[c.attribute][b].push_back(Entry{dense, c.range});
    }
  }
  return true;
}

bool CountingIndex::remove(SubscriptionId id) {
  const auto it = subs_.find(id);
  if (it == subs_.end()) return false;
  const SubscriptionPtr sub = it->second.sub;
  const std::uint32_t dense = it->second.dense;
  subs_.erase(it);
  dense_[dense] = DenseInfo{};
  free_dense_.push_back(dense);

  if (!sub->satisfiable_for(schema_)) return true;  // had no entries

  if (sub->constraints.empty()) {
    std::erase(match_all_, id);
    return true;
  }
  for (const Constraint& c : sub->constraints) {
    const ClosedInterval clamped =
        *c.range.intersect(schema_.domain(c.attribute));
    const std::size_t first = bucket_of(c.attribute, clamped.lo);
    const std::size_t last = bucket_of(c.attribute, clamped.hi);
    for (std::size_t b = first; b <= last; ++b) {
      std::erase_if(buckets_[c.attribute][b],
                    [dense](const Entry& e) { return e.dense == dense; });
    }
  }
  return true;
}

std::vector<SubscriptionId> CountingIndex::match(const Event& e) const {
  std::vector<SubscriptionId> out;
  match_into(e, out);
  return out;
}

void CountingIndex::match_into(const Event& e,
                               std::vector<SubscriptionId>& out) const {
  CBPS_ASSERT(e.values.size() == schema_.dimensions());
  ++epoch_;
  if (scratch_count_.size() < dense_.size()) {
    scratch_count_.resize(dense_.size(), 0);
    scratch_epoch_.resize(dense_.size(), 0);
  }
  scratch_touched_.clear();
  for (std::size_t attr = 0; attr < schema_.dimensions(); ++attr) {
    const Value v = e.values[attr];
    if (!schema_.domain(attr).contains(v)) continue;
    const auto& bucket = buckets_[attr][bucket_of(attr, v)];
    for (const Entry& entry : bucket) {
      if (!entry.range.contains(v)) continue;
      if (scratch_epoch_[entry.dense] != epoch_) {
        scratch_epoch_[entry.dense] = epoch_;
        scratch_count_[entry.dense] = 1;
        scratch_touched_.push_back(entry.dense);
      } else {
        ++scratch_count_[entry.dense];
      }
    }
  }
  out.reserve(out.size() + match_all_.size() + scratch_touched_.size());
  out.insert(out.end(), match_all_.begin(), match_all_.end());
  for (const std::uint32_t dense : scratch_touched_) {
    if (scratch_count_[dense] == dense_[dense].constraint_count) {
      out.push_back(dense_[dense].id);
    }
  }
}

std::size_t CountingIndex::memory_bytes() const {
  std::size_t bytes = 0;
  for (const auto& attr_buckets : buckets_) {
    bytes += attr_buckets.capacity() * sizeof(std::vector<Entry>);
    for (const auto& bucket : attr_buckets) {
      bytes += bucket.capacity() * sizeof(Entry);
    }
  }
  bytes += match_all_.capacity() * sizeof(SubscriptionId);
  // unordered_map: node (key/value + hash-next pointer) per element plus
  // the bucket array.
  bytes += subs_.size() *
           (sizeof(std::pair<const SubscriptionId, SubInfo>) +
            2 * sizeof(void*));
  bytes += subs_.bucket_count() * sizeof(void*);
  bytes += dense_.capacity() * sizeof(DenseInfo);
  bytes += free_dense_.capacity() * sizeof(std::uint32_t);
  bytes += scratch_count_.capacity() * sizeof(std::uint32_t);
  bytes += scratch_epoch_.capacity() * sizeof(std::uint64_t);
  bytes += scratch_touched_.capacity() * sizeof(std::uint32_t);
  return bytes;
}

}  // namespace cbps::pubsub
