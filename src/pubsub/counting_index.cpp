#include "cbps/pubsub/counting_index.hpp"

#include <algorithm>

namespace cbps::pubsub {

CountingIndex::CountingIndex(const Schema& schema,
                             std::size_t buckets_per_attribute)
    : schema_(schema), buckets_per_attribute_(buckets_per_attribute) {
  CBPS_ASSERT(buckets_per_attribute_ >= 1);
  buckets_.resize(schema_.dimensions());
  for (auto& attr_buckets : buckets_) {
    attr_buckets.resize(buckets_per_attribute_);
  }
}

std::size_t CountingIndex::bucket_of(std::size_t attr, Value v) const {
  const ClosedInterval dom = schema_.domain(attr);
  CBPS_ASSERT(dom.contains(v));
  const auto offset = static_cast<std::uint64_t>(v - dom.lo);
  return static_cast<std::size_t>(
      static_cast<Uint128>(offset) * buckets_per_attribute_ / dom.width());
}

bool CountingIndex::insert(const SubscriptionPtr& sub) {
  CBPS_ASSERT(sub != nullptr);
  CBPS_ASSERT_MSG(sub->valid_for(schema_), "subscription/schema mismatch");
  const auto [it, inserted] = subs_.emplace(
      sub->id,
      SubInfo{sub, static_cast<std::uint32_t>(sub->constraints.size())});
  if (!inserted) return false;

  if (sub->constraints.empty()) {
    match_all_.push_back(sub->id);
    return true;
  }
  for (const Constraint& c : sub->constraints) {
    const ClosedInterval clamped =
        *c.range.intersect(schema_.domain(c.attribute));
    const std::size_t first = bucket_of(c.attribute, clamped.lo);
    const std::size_t last = bucket_of(c.attribute, clamped.hi);
    for (std::size_t b = first; b <= last; ++b) {
      buckets_[c.attribute][b].push_back(Entry{sub->id, c.range});
    }
  }
  return true;
}

bool CountingIndex::remove(SubscriptionId id) {
  const auto it = subs_.find(id);
  if (it == subs_.end()) return false;
  const SubscriptionPtr sub = it->second.sub;
  subs_.erase(it);

  if (sub->constraints.empty()) {
    std::erase(match_all_, id);
    return true;
  }
  for (const Constraint& c : sub->constraints) {
    const ClosedInterval clamped =
        *c.range.intersect(schema_.domain(c.attribute));
    const std::size_t first = bucket_of(c.attribute, clamped.lo);
    const std::size_t last = bucket_of(c.attribute, clamped.hi);
    for (std::size_t b = first; b <= last; ++b) {
      std::erase_if(buckets_[c.attribute][b],
                    [id](const Entry& e) { return e.id == id; });
    }
  }
  return true;
}

std::vector<SubscriptionId> CountingIndex::match(const Event& e) const {
  CBPS_ASSERT(e.values.size() == schema_.dimensions());
  std::unordered_map<SubscriptionId, std::uint32_t> counts;
  for (std::size_t attr = 0; attr < schema_.dimensions(); ++attr) {
    const Value v = e.values[attr];
    if (!schema_.domain(attr).contains(v)) continue;
    const auto& bucket = buckets_[attr][bucket_of(attr, v)];
    for (const Entry& entry : bucket) {
      if (entry.range.contains(v)) ++counts[entry.id];
    }
  }
  std::vector<SubscriptionId> out(match_all_);
  for (const auto& [id, satisfied] : counts) {
    const auto it = subs_.find(id);
    CBPS_ASSERT(it != subs_.end());
    if (satisfied == it->second.constraint_count) out.push_back(id);
  }
  return out;
}

}  // namespace cbps::pubsub
