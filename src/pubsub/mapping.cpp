#include "cbps/pubsub/mapping.hpp"

#include <algorithm>

#include "cbps/common/assert.hpp"

namespace cbps::pubsub {

// ---------------------------------------------------------------------------
// ScalingHasher
// ---------------------------------------------------------------------------

ScalingHasher::ScalingHasher(ClosedInterval domain, unsigned bits,
                             Value interval_width)
    : domain_(domain), bits_(bits), width_(interval_width) {
  CBPS_ASSERT_MSG(bits >= 1 && bits <= 63, "hash width out of range");
  CBPS_ASSERT_MSG(interval_width >= 1, "discretization width must be >= 1");
}

std::uint64_t ScalingHasher::hash(Value x) const {
  CBPS_ASSERT_MSG(domain_.contains(x), "value outside attribute domain");
  std::uint64_t shifted = static_cast<std::uint64_t>(x - domain_.lo);
  if (width_ > 1) {
    const auto w = static_cast<std::uint64_t>(width_);
    shifted = shifted / w * w;
  }
  // h(x) = x * 2^l / |Omega|, in 128-bit to avoid overflow.
  const Uint128 scaled =
      (static_cast<Uint128>(shifted) << bits_) / domain_.width();
  const auto h = static_cast<std::uint64_t>(scaled);
  CBPS_ASSERT(h < (std::uint64_t{1} << bits_));
  return h;
}

std::vector<std::uint64_t> ScalingHasher::hash_set(ClosedInterval r) const {
  const auto clamped = r.intersect(domain_);
  if (!clamped) return {};
  std::vector<std::uint64_t> out;
  if (width_ == 1) {
    // The image of a contiguous value range is the contiguous integer
    // range [h(lo), h(hi)] (h is monotone; when 2^l <= |Omega| it hits
    // every integer in between, and the contiguous superset is still a
    // correct, and contiguous, SK otherwise).
    const std::uint64_t lo = hash(clamped->lo);
    const std::uint64_t hi = hash(clamped->hi);
    out.reserve(hi - lo + 1);
    for (std::uint64_t v = lo; v <= hi; ++v) out.push_back(v);
    return out;
  }
  // One hash value per overlapped discretization interval.
  const auto w = static_cast<std::uint64_t>(width_);
  const std::uint64_t first =
      static_cast<std::uint64_t>(clamped->lo - domain_.lo) / w;
  const std::uint64_t last =
      static_cast<std::uint64_t>(clamped->hi - domain_.lo) / w;
  out.reserve(last - first + 1);
  for (std::uint64_t a = first; a <= last; ++a) {
    const Value bucket_start =
        domain_.lo + static_cast<Value>(a * w);
    const std::uint64_t h = hash(std::min(bucket_start, domain_.hi));
    if (out.empty() || out.back() != h) out.push_back(h);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

namespace {

void sort_unique(std::vector<Key>& keys) {
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
}

std::vector<ScalingHasher> make_hashers(const Schema& schema, unsigned bits,
                                        const MappingOptions& opt) {
  std::vector<ScalingHasher> hs;
  hs.reserve(schema.dimensions());
  for (std::size_t i = 0; i < schema.dimensions(); ++i) {
    hs.emplace_back(schema.domain(i), bits, opt.discretization);
  }
  return hs;
}

}  // namespace

std::vector<Key> AkMapping::rotate(std::vector<Key> keys) const {
  if (rotation_ == 0) return keys;
  for (Key& k : keys) k = ring_.add(k, rotation_);
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::vector<KeyRange> AkMapping::subscription_ranges(
    const Subscription& sub) const {
  std::vector<Key> keys = subscription_keys(sub);
  std::vector<KeyRange> runs;
  for (Key k : keys) {  // keys sorted ascending
    if (!runs.empty() && runs.back().hi + 1 == k) {
      runs.back().hi = k;
    } else {
      runs.push_back({k, k});
    }
  }
  // Merge a run ending at 2^m - 1 with one starting at 0 (ring wrap).
  if (runs.size() >= 2 && runs.front().lo == 0 &&
      runs.back().hi == ring_.max_key()) {
    runs.front().lo = runs.back().lo;
    runs.pop_back();
  }
  return runs;
}

std::string_view to_string(MappingKind kind) {
  switch (kind) {
    case MappingKind::kAttributeSplit:
      return "attribute-split";
    case MappingKind::kKeySpaceSplit:
      return "key-space-split";
    case MappingKind::kSelectiveAttribute:
      return "selective-attribute";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Mapping 1: Attribute-Split
// ---------------------------------------------------------------------------
//
// l = m. Each constraint hashes independently; SK is the union over all
// attributes (unconstrained attributes contribute their full domain so
// that EK may pick any attribute). EK hashes one attribute of the event.

namespace {

class AttributeSplitMapping final : public AkMapping {
 public:
  AttributeSplitMapping(Schema schema, RingParams ring,
                        MappingOptions opt, EventAttrPolicy policy)
      : AkMapping(std::move(schema), ring, opt.rotation),
        hashers_(make_hashers(schema_, ring.bits(), opt)),
        policy_(policy) {}

  std::string_view name() const override { return "attribute-split"; }

  std::vector<Key> subscription_keys_impl(
      const Subscription& sub) const override {
    std::vector<Key> keys;
    for (std::size_t i = 0; i < schema_.dimensions(); ++i) {
      const Constraint* c = sub.constraint_on(i);
      const ClosedInterval r = c ? c->range : schema_.domain(i);
      for (std::uint64_t h : hashers_[i].hash_set(r)) keys.push_back(h);
    }
    sort_unique(keys);
    return keys;
  }

  std::vector<Key> event_keys_impl(const Event& e) const override {
    const std::size_t i =
        policy_ == EventAttrPolicy::kFixedFirst
            ? 0
            : static_cast<std::size_t>(e.id % schema_.dimensions());
    return {hashers_[i].hash(e.value(i))};
  }

 private:
  std::vector<ScalingHasher> hashers_;
  EventAttrPolicy policy_;
};

// ---------------------------------------------------------------------------
// Mapping 2: Key Space-Split
// ---------------------------------------------------------------------------
//
// l = floor(m / d) bits per attribute. SK is every concatenation of
// per-attribute fragments; EK is the single concatenation of the event's
// fragments. The concatenation occupies the high key bits so the produced
// keys spread uniformly over the whole ring even when d*l < m.

class KeySpaceSplitMapping final : public AkMapping {
 public:
  KeySpaceSplitMapping(Schema schema, RingParams ring, MappingOptions opt)
      : AkMapping(std::move(schema), ring, opt.rotation),
        frag_bits_(ring.bits() / static_cast<unsigned>(schema_.dimensions())),
        pad_bits_(ring.bits() -
                  frag_bits_ * static_cast<unsigned>(schema_.dimensions())),
        hashers_(make_hashers(schema_, frag_bits_, opt)) {
    CBPS_ASSERT_MSG(frag_bits_ >= 1,
                    "key space too small: need m >= d for Key Space-Split");
  }

  std::string_view name() const override { return "key-space-split"; }

  std::vector<Key> subscription_keys_impl(
      const Subscription& sub) const override {
    // Cartesian product of the per-attribute fragment sets.
    std::vector<Key> partial{0};
    for (std::size_t i = 0; i < schema_.dimensions(); ++i) {
      const Constraint* c = sub.constraint_on(i);
      const ClosedInterval r = c ? c->range : schema_.domain(i);
      const std::vector<std::uint64_t> frags = hashers_[i].hash_set(r);
      CBPS_ASSERT(!frags.empty());
      std::vector<Key> next;
      next.reserve(partial.size() * frags.size());
      for (Key p : partial) {
        for (std::uint64_t f : frags) next.push_back((p << frag_bits_) | f);
      }
      partial = std::move(next);
      CBPS_ASSERT_MSG(partial.size() <= (std::size_t{1} << 22),
                      "Key Space-Split product exploded; coarsen the "
                      "discretization or constrain more attributes");
    }
    for (Key& k : partial) k <<= pad_bits_;
    sort_unique(partial);
    return partial;
  }

  std::vector<Key> event_keys_impl(const Event& e) const override {
    Key k = 0;
    for (std::size_t i = 0; i < schema_.dimensions(); ++i) {
      k = (k << frag_bits_) | hashers_[i].hash(e.value(i));
    }
    return {k << pad_bits_};
  }

 private:
  unsigned frag_bits_;
  unsigned pad_bits_;
  std::vector<ScalingHasher> hashers_;
};

// ---------------------------------------------------------------------------
// Mapping 3: Selective-Attribute
// ---------------------------------------------------------------------------
//
// l = m. A subscription maps only by its most selective constraint; an
// event maps by every attribute (d keys worst case). A rendezvous
// notifies a subscription only when the key the event arrived on is the
// subscription's own selective-attribute key — this keeps notification
// exactly-once even when several event keys land in one stored range.

class SelectiveAttributeMapping final : public AkMapping {
 public:
  SelectiveAttributeMapping(Schema schema, RingParams ring,
                            MappingOptions opt)
      : AkMapping(std::move(schema), ring, opt.rotation),
        hashers_(make_hashers(schema_, ring.bits(), opt)) {}

  std::string_view name() const override { return "selective-attribute"; }

  std::vector<Key> subscription_keys_impl(
      const Subscription& sub) const override {
    const std::size_t s = selective_attr(sub);
    const Constraint* c = sub.constraint_on(s);
    const ClosedInterval r = c ? c->range : schema_.domain(s);
    std::vector<Key> keys;
    for (std::uint64_t h : hashers_[s].hash_set(r)) keys.push_back(h);
    return keys;  // already sorted & unique
  }

  std::vector<Key> event_keys_impl(const Event& e) const override {
    std::vector<Key> keys;
    keys.reserve(schema_.dimensions());
    for (std::size_t i = 0; i < schema_.dimensions(); ++i) {
      keys.push_back(hashers_[i].hash(e.value(i)));
    }
    sort_unique(keys);
    return keys;
  }

  bool should_notify_impl(const Subscription& sub, const Event& e,
                          Key delivered_key) const override {
    const std::size_t s = selective_attr(sub);
    return hashers_[s].hash(e.value(s)) == delivered_key;
  }

 private:
  std::size_t selective_attr(const Subscription& sub) const {
    return sub.most_selective_attribute(schema_).value_or(0);
  }

  std::vector<ScalingHasher> hashers_;
};

}  // namespace

std::unique_ptr<AkMapping> make_mapping(MappingKind kind, Schema schema,
                                        RingParams ring,
                                        MappingOptions options) {
  switch (kind) {
    case MappingKind::kAttributeSplit:
      return std::make_unique<AttributeSplitMapping>(
          std::move(schema), ring, options, EventAttrPolicy::kByEventId);
    case MappingKind::kKeySpaceSplit:
      return std::make_unique<KeySpaceSplitMapping>(std::move(schema), ring,
                                                    options);
    case MappingKind::kSelectiveAttribute:
      return std::make_unique<SelectiveAttributeMapping>(std::move(schema),
                                                         ring, options);
  }
  CBPS_ASSERT_MSG(false, "unknown mapping kind");
  return nullptr;
}

std::unique_ptr<AkMapping> make_attribute_split(Schema schema,
                                                RingParams ring,
                                                MappingOptions options,
                                                EventAttrPolicy policy) {
  return std::make_unique<AttributeSplitMapping>(std::move(schema), ring,
                                                 options, policy);
}

}  // namespace cbps::pubsub
