#include "cbps/pubsub/schema.hpp"

#include "cbps/common/sha1.hpp"

namespace cbps::pubsub {

Value Schema::value_from_string(std::size_t attr, std::string_view s) const {
  const ClosedInterval dom = domain(attr);
  const Sha1::Digest d = Sha1::hash(s);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | d[static_cast<std::size_t>(i)];
  return dom.lo + static_cast<Value>(v % dom.width());
}

}  // namespace cbps::pubsub
