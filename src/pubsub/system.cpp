#include "cbps/pubsub/system.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "cbps/common/logging.hpp"
#include "cbps/sim/latency.hpp"
#include "cbps/sim/loss.hpp"
#include "cbps/sim/parallel_simulator.hpp"

namespace cbps::pubsub {

namespace {

/// Engine factory: the sharded engine needs a positive conservative
/// lookahead (the latency model's min_delay); otherwise serial.
std::unique_ptr<sim::SimulatorBase> make_engine(
    std::size_t threads, const sim::LatencyModel& latency) {
  if (threads <= 1) return std::make_unique<sim::Simulator>();
  const sim::SimTime lookahead = latency.min_delay();
  if (lookahead <= 0) {
    CBPS_LOG_WARN << "sim_threads=" << threads
                  << " requested but the latency model has min_delay 0; "
                     "falling back to the serial engine";
    return std::make_unique<sim::Simulator>();
  }
  return std::make_unique<sim::ParallelSimulator>(
      static_cast<unsigned>(threads), lookahead);
}

}  // namespace

PubSubSystem::PubSubSystem(SystemConfig cfg, Schema schema) : cfg_(cfg) {
  // A reliable (ack/retry) wire can deliver an application message twice
  // (retransmit re-routed around a crashed hop); arm the end-to-end
  // safety net whenever that layer is on — configured loss or the
  // fault-scenario engine's force_reliable.
  if (cfg_.chord.reliable_transport()) {
    cfg_.pubsub.duplicate_suppression = true;
  }
  // The epidemic deliberately delivers the same record many times; the
  // end-to-end filter is what turns that redundancy back into at-most-
  // once application delivery. Derive the per-node gossip streams from
  // the system seed so two seeds give two independent epidemics.
  if (cfg_.pubsub.dissemination == PubSubConfig::Dissemination::kGossip) {
    cfg_.pubsub.duplicate_suppression = true;
  }
  cfg_.pubsub.gossip_seed = cfg_.seed * 0x9e3779b97f4a7c15ull + 0x6a09e667f3bcc909ull;
  mapping_ = make_mapping(cfg.mapping, std::move(schema), cfg.chord.ring,
                          cfg.mapping_options);
  auto latency = std::make_unique<sim::FixedLatency>(cfg.message_delay);
  sim_ = make_engine(cfg.sim_threads, *latency);
  network_ = std::make_unique<chord::ChordNetwork>(
      *sim_, cfg.chord, cfg.seed, std::move(latency));
  if (cfg_.trace_sample_rate > 0.0) {
    trace_sink_ =
        std::make_unique<metrics::TraceSink>(cfg_.trace_sample_rate);
    network_->set_trace_sink(trace_sink_.get());
  }

  const std::size_t vppn = std::max<std::size_t>(1, cfg.virtual_nodes_per_host);
  hosts_ = std::max<std::size_t>(1, cfg.nodes / vppn);
  std::map<Key, std::size_t> host_by_id;
  std::size_t created = 0;
  for (std::size_t h = 0; h < hosts_ && created < cfg.nodes; ++h) {
    for (std::size_t v = 0; v < vppn && created < cfg.nodes; ++v) {
      const std::string name =
          vppn == 1 ? "node-" + std::to_string(h)
                    : "node-" + std::to_string(h) + "#v" + std::to_string(v);
      host_by_id[network_->add_node(name).id()] = h;
      ++created;
    }
  }
  network_->build_static_ring();

  node_ids_ = network_->alive_ids();
  nodes_.reserve(node_ids_.size());
  host_of_.reserve(node_ids_.size());
  for (Key id : node_ids_) {
    nodes_.push_back(std::make_unique<PubSubNode>(
        *network_->node(id), *sim_, *mapping_, cfg_.pubsub));
    nodes_.back()->set_trace_sink(trace_sink_.get());
    host_of_.push_back(host_by_id.at(id));
  }
}

std::size_t PubSubSystem::host_count() const { return hosts_; }

PubSubSystem::StorageStats PubSubSystem::host_storage_stats() const {
  StorageStats s;
  std::vector<std::size_t> owned(hosts_, 0);
  std::vector<std::size_t> peak(hosts_, 0);
  std::vector<std::size_t> replicas(hosts_, 0);
  std::vector<bool> alive(hosts_, false);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!network_->is_alive(node_ids_[i])) continue;
    const std::size_t h = host_of_[i];
    alive[h] = true;
    const SubscriptionStore& store = nodes_[i]->store();
    owned[h] += store.owned_size();
    peak[h] += store.peak_owned_size();
    replicas[h] += store.size() - store.owned_size();
  }
  std::size_t alive_hosts = 0;
  std::size_t sum_owned = 0;
  std::size_t sum_peak = 0;
  for (std::size_t h = 0; h < hosts_; ++h) {
    if (!alive[h]) continue;
    ++alive_hosts;
    sum_owned += owned[h];
    sum_peak += peak[h];
    s.max_owned = std::max(s.max_owned, owned[h]);
    s.max_peak = std::max(s.max_peak, peak[h]);
    s.total_replicas += replicas[h];
  }
  if (alive_hosts == 0) return s;
  s.total_owned = sum_owned;
  s.avg_owned =
      static_cast<double>(sum_owned) / static_cast<double>(alive_hosts);
  s.avg_peak =
      static_cast<double>(sum_peak) / static_cast<double>(alive_hosts);
  return s;
}

PubSubSystem::~PubSubSystem() { stop_sampler(); }

std::size_t PubSubSystem::join_node(const std::string& name) {
  // Bootstrap from any alive member.
  Key bootstrap = 0;
  bool found = false;
  for (Key id : node_ids_) {
    if (network_->is_alive(id)) {
      bootstrap = id;
      found = true;
      break;
    }
  }
  CBPS_ASSERT_MSG(found, "need an alive node to bootstrap a join");
  chord::ChordNode& cn = network_->join_node(name, bootstrap);
  auto app = std::make_unique<PubSubNode>(cn, *sim_, *mapping_, cfg_.pubsub);
  app->set_trace_sink(trace_sink_.get());
  if (sink_) app->set_notify_sink(sink_);
  const auto pos = static_cast<std::size_t>(
      std::lower_bound(node_ids_.begin(), node_ids_.end(), cn.id()) -
      node_ids_.begin());
  node_ids_.insert(node_ids_.begin() + static_cast<std::ptrdiff_t>(pos),
                   cn.id());
  nodes_.insert(nodes_.begin() + static_cast<std::ptrdiff_t>(pos),
                std::move(app));
  host_of_.insert(host_of_.begin() + static_cast<std::ptrdiff_t>(pos),
                  hosts_++);
  return pos;
}

void PubSubSystem::leave_node(std::size_t i) {
  network_->leave_gracefully(node_id(i));
}

void PubSubSystem::crash_node(std::size_t i) {
  // Order matters: halt the application layer first so nothing it does
  // during the chord-level teardown (or from an already-armed timer)
  // escapes the crash.
  pubsub_node(i).halt();
  network_->crash(node_id(i));
}

std::size_t PubSubSystem::index_of(Key id) const {
  const auto it = std::lower_bound(node_ids_.begin(), node_ids_.end(), id);
  CBPS_ASSERT_MSG(it != node_ids_.end() && *it == id, "unknown node id");
  return static_cast<std::size_t>(it - node_ids_.begin());
}

std::size_t PubSubSystem::re_replicate_all() {
  std::size_t n = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!network_->is_alive(node_ids_[i])) continue;
    n += nodes_[i]->re_replicate();
  }
  return n;
}

std::size_t PubSubSystem::refresh_all_subscriptions() {
  std::size_t n = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!network_->is_alive(node_ids_[i])) continue;
    n += nodes_[i]->refresh_subscriptions();
  }
  return n;
}

PubSubNode& PubSubSystem::pubsub_node(std::size_t i) {
  CBPS_ASSERT(i < nodes_.size());
  return *nodes_[i];
}

chord::ChordNode& PubSubSystem::chord_node(std::size_t i) {
  CBPS_ASSERT(i < node_ids_.size());
  return *network_->node(node_ids_[i]);
}

SubscriptionPtr PubSubSystem::subscribe(std::size_t node_idx,
                                        std::vector<Constraint> constraints,
                                        sim::SimTime ttl) {
  auto sub = std::make_shared<Subscription>();
  sub->id = next_sub_id_++;
  sub->subscriber = node_id(node_idx);
  sub->constraints = std::move(constraints);
  CBPS_ASSERT_MSG(sub->valid_for(schema()), "invalid subscription");
  ++subs_issued_;
  pubsub_node(node_idx).subscribe(sub, ttl);
  return sub;
}

void PubSubSystem::unsubscribe(std::size_t node_idx, SubscriptionId id) {
  pubsub_node(node_idx).unsubscribe(id);
}

std::vector<SubscriptionPtr> PubSubSystem::subscribe_disjunction(
    std::size_t node_idx, std::vector<std::vector<Constraint>> clauses,
    sim::SimTime ttl) {
  std::vector<SubscriptionPtr> subs;
  subs.reserve(clauses.size());
  for (auto& clause : clauses) {
    subs.push_back(subscribe(node_idx, std::move(clause), ttl));
  }
  return subs;
}

EventId PubSubSystem::publish(std::size_t node_idx,
                              std::vector<Value> values) {
  auto event = std::make_shared<Event>();
  event->id = next_event_id_++;
  event->values = std::move(values);
  CBPS_ASSERT_MSG(event->valid_for(schema()), "invalid event");
  ++pubs_issued_;
  pubsub_node(node_idx).publish(std::move(event));
  return next_event_id_ - 1;
}

void PubSubSystem::set_notify_sink(NotifySink sink) {
  sink_ = std::move(sink);
  for (auto& node : nodes_) node->set_notify_sink(sink_);
}

PubSubSystem::StorageStats PubSubSystem::storage_stats() const {
  StorageStats s;
  std::size_t sum_owned = 0;
  std::size_t sum_peak = 0;
  std::size_t alive = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!network_->is_alive(node_ids_[i])) continue;  // departed/crashed
    ++alive;
    const SubscriptionStore& store = nodes_[i]->store();
    const std::size_t owned = store.owned_size();
    const std::size_t peak = store.peak_owned_size();
    sum_owned += owned;
    sum_peak += peak;
    s.max_owned = std::max(s.max_owned, owned);
    s.max_peak = std::max(s.max_peak, peak);
    s.total_replicas += store.size() - owned;
  }
  if (alive == 0) return s;
  s.total_owned = sum_owned;
  s.avg_owned =
      static_cast<double>(sum_owned) / static_cast<double>(alive);
  s.avg_peak = static_cast<double>(sum_peak) / static_cast<double>(alive);
  return s;
}

std::uint64_t PubSubSystem::notifications_delivered() const {
  std::uint64_t n = 0;
  for (const auto& node : nodes_) n += node->notifications_received();
  return n;
}

std::uint64_t PubSubSystem::duplicates_suppressed() const {
  std::uint64_t n = 0;
  for (const auto& node : nodes_) n += node->duplicates_suppressed();
  return n;
}

PubSubNode::GossipStats PubSubSystem::gossip_stats() const {
  PubSubNode::GossipStats total;
  for (const auto& node : nodes_) total += node->gossip_stats();
  return total;
}

RunningStat PubSubSystem::notification_delay() const {
  RunningStat total;
  for (const auto& node : nodes_) total.merge(node->notification_delay());
  return total;
}

metrics::Histogram PubSubSystem::delay_histogram() const {
  metrics::Histogram total;
  for (const auto& node : nodes_) total.merge(node->delay_histogram());
  return total;
}

metrics::Histogram PubSubSystem::fanout_histogram() const {
  metrics::Histogram total;
  for (const auto& node : nodes_) total.merge(node->fanout_histogram());
  return total;
}

KeyLoad PubSubSystem::key_load() const {
  // nodes_ parallels node_ids_, which is kept sorted by ring id — the
  // canonical domain order. The merge is permutation-invariant anyway
  // (union-sum, no eviction), but folding in a fixed order keeps the
  // walk itself D1-clean.
  KeyLoad total(cfg_.pubsub.key_topk_capacity);
  for (const auto& node : nodes_) total.merge(node->key_load());
  return total;
}

PubSubSystem::LoadImbalance PubSubSystem::load_imbalance() const {
  LoadImbalance out;
  std::vector<std::uint64_t> loads;
  loads.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!network_->is_alive(node_ids_[i])) continue;
    loads.push_back(nodes_[i]->key_load().total());
  }
  if (loads.empty()) return out;
  std::sort(loads.begin(), loads.end());
  std::uint64_t sum = 0;
  double weighted = 0.0;  // sum of rank_i * load_(i), ranks 1..n
  for (std::size_t i = 0; i < loads.size(); ++i) {
    sum += loads[i];
    weighted += static_cast<double>(i + 1) * static_cast<double>(loads[i]);
  }
  out.max_load = loads.back();
  const double n = static_cast<double>(loads.size());
  out.mean_load = static_cast<double>(sum) / n;
  if (sum == 0) return out;  // no load at all: balanced by definition
  out.max_over_mean = static_cast<double>(out.max_load) / out.mean_load;
  // Gini over the sorted loads: G = 2*sum(i*x_i)/(n*sum(x)) - (n+1)/n.
  out.gini = 2.0 * weighted / (n * static_cast<double>(sum)) - (n + 1.0) / n;
  return out;
}

// ---------------------------------------------------------------------------
// Time-series sampler
// ---------------------------------------------------------------------------

void PubSubSystem::sample_once() {
  std::size_t pending_retries = 0;
  std::size_t owned_max = 0;
  std::size_t owned_sum = 0;
  std::size_t alive = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!network_->is_alive(node_ids_[i])) continue;
    ++alive;
    pending_retries += network_->node(node_ids_[i])->pending_send_count();
    const std::size_t owned = nodes_[i]->store().owned_size();
    owned_sum += owned;
    owned_max = std::max(owned_max, owned);
  }
  // Per-sender channels each carry their own Gilbert-Elliott state;
  // report how many alive senders currently sit in the bad state.
  const double ge_bad =
      static_cast<double>(network_->loss_bad_state_count());
  const LoadImbalance imbalance = load_imbalance();
  series_.append(
      sim_->now(),
      {static_cast<double>(sim_->pending_events()),
       static_cast<double>(pending_retries),
       static_cast<double>(owned_max),
       alive == 0 ? 0.0
                  : static_cast<double>(owned_sum) /
                        static_cast<double>(alive),
       static_cast<double>(alive),
       static_cast<double>(notifications_delivered()),
       ge_bad, imbalance.max_over_mean, imbalance.gini});
}

void PubSubSystem::start_sampler(sim::SimTime period) {
  if (sampler_timer_ != 0) return;
  sample_once();  // baseline row at the current time
  sampler_timer_ = sim_->add_timer(period, [this] { sample_once(); });
}

void PubSubSystem::stop_sampler() {
  if (sampler_timer_ == 0) return;
  sim_->cancel_timer(sampler_timer_);
  sampler_timer_ = 0;
}

}  // namespace cbps::pubsub
