#include "cbps/pubsub/covering_index.hpp"

#include <algorithm>

namespace cbps::pubsub {
namespace {

// Umbrella ids live in their own half of the id space so they can never
// collide with (or leak as) application subscription ids.
constexpr SubscriptionId kSyntheticBit = SubscriptionId{1} << 63;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;

ClosedInterval hull_of(const ClosedInterval& a, const ClosedInterval& b) {
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

}  // namespace

CoveringIndex::CoveringIndex(const Schema& schema, CoveringOptions opts)
    : schema_(schema),
      opts_(opts),
      index_(schema, opts.buckets_per_attribute),
      next_umbrella_id_(kSyntheticBit | 1) {
  CBPS_ASSERT(opts_.max_children_per_root >= 2);
}

std::uint64_t CoveringIndex::signature(const Subscription& sub,
                                       std::size_t free_attr) const {
  // Hash the free attribute plus every *other* constrained attribute's
  // clamped interval, in attribute order (constraint order in the
  // subscription is arbitrary).
  std::uint64_t h = fnv1a(kFnvOffset, free_attr);
  for (std::size_t attr = 0; attr < schema_.dimensions(); ++attr) {
    if (attr == free_attr) continue;
    const Constraint* c = sub.constraint_on(attr);
    if (c == nullptr) continue;
    const ClosedInterval eff = sub.effective_interval(schema_, attr);
    h = fnv1a(h, attr);
    h = fnv1a(h, static_cast<std::uint64_t>(eff.lo));
    h = fnv1a(h, static_cast<std::uint64_t>(eff.hi));
  }
  return h;
}

std::uint64_t CoveringIndex::merge_covered(
    std::vector<ClosedInterval>& covered, ClosedInterval iv) {
  // Insert preserving sort order, then coalesce overlapping/adjacent
  // runs. Lists are tiny (<= max_children_per_root entries).
  const auto pos = std::lower_bound(
      covered.begin(), covered.end(), iv,
      [](const ClosedInterval& a, const ClosedInterval& b) {
        return a.lo < b.lo;
      });
  covered.insert(pos, iv);
  std::vector<ClosedInterval> merged;
  merged.reserve(covered.size());
  for (const ClosedInterval& c : covered) {
    if (!merged.empty() &&
        (c.lo <= merged.back().hi ||
         static_cast<std::uint64_t>(c.lo - merged.back().hi) == 1)) {
      merged.back().hi = std::max(merged.back().hi, c.hi);
    } else {
      merged.push_back(c);
    }
  }
  covered = std::move(merged);
  return covered_width(covered);
}

std::uint64_t CoveringIndex::covered_width(
    const std::vector<ClosedInterval>& covered) {
  std::uint64_t w = 0;
  for (const ClosedInterval& c : covered) w += c.width();
  return w;
}

bool CoveringIndex::insert(const SubscriptionPtr& sub) {
  if (!insert_internal(sub)) return false;
  ++logical_size_;
  return true;
}

bool CoveringIndex::insert_internal(const SubscriptionPtr& sub) {
  CBPS_ASSERT(sub != nullptr);
  CBPS_ASSERT_MSG(sub->well_formed_for(schema_),
                  "subscription/schema mismatch");
  CBPS_ASSERT_MSG((sub->id & kSyntheticBit) == 0,
                  "application subscription id collides with umbrella ids");
  if (roots_.contains(sub->id) || parent_of_.contains(sub->id) ||
      inert_.contains(sub->id)) {
    return false;
  }
  if (!sub->satisfiable_for(schema_)) {
    // Can never match any event; hold it only for remove()/duplicate
    // bookkeeping, exactly like the other engines skip it.
    inert_.emplace(sub->id, sub);
    return true;
  }
  if (try_cover(sub)) return true;
  if (try_merge(sub)) return true;
  add_root(sub);
  return true;
}

bool CoveringIndex::try_cover(const SubscriptionPtr& sub) {
  // Any root covering `sub` must match every point of sub's subspace, so
  // probing the index with one such point yields a candidate superset.
  Event probe;
  probe.id = 0;
  probe.values.reserve(schema_.dimensions());
  for (std::size_t attr = 0; attr < schema_.dimensions(); ++attr) {
    probe.values.push_back(sub->effective_interval(schema_, attr).lo);
  }
  scratch_ids_.clear();
  index_.match_into(probe, scratch_ids_);
  std::size_t tested = 0;
  for (const SubscriptionId root_id : scratch_ids_) {
    if (tested++ >= opts_.max_cover_candidates) break;
    RootInfo& info = roots_.at(root_id);
    if (info.children.size() >= opts_.max_children_per_root) continue;
    if (!info.sub->covers(schema_, *sub)) continue;
    info.children.push_back(sub);
    parent_of_.emplace(sub->id, root_id);
    if (info.umbrella) {
      // The child lies inside the hull; folding its interval in can only
      // shrink the uncovered (false-positive) fraction.
      merge_covered(info.covered,
                    sub->effective_interval(schema_, info.free_attr));
    }
    return true;
  }
  return false;
}

bool CoveringIndex::try_merge(const SubscriptionPtr& sub) {
  // Look for a root identical to `sub` on every constrained attribute
  // but one ("the free attribute"), then group both under an umbrella
  // whose free-attribute interval is the hull.
  auto same_except = [&](const Subscription& a, const Subscription& b,
                         std::size_t free_attr) {
    for (std::size_t attr = 0; attr < schema_.dimensions(); ++attr) {
      const Constraint* ca = a.constraint_on(attr);
      const Constraint* cb = b.constraint_on(attr);
      if ((ca == nullptr) != (cb == nullptr)) return false;
      if (ca == nullptr) continue;
      if (attr == free_attr) continue;
      if (a.effective_interval(schema_, attr) !=
          b.effective_interval(schema_, attr)) {
        return false;
      }
    }
    return a.constraint_on(free_attr) != nullptr &&
           b.constraint_on(free_attr) != nullptr;
  };

  for (const Constraint& c : sub->constraints) {
    const std::size_t free_attr = c.attribute;
    const std::uint64_t sig = signature(*sub, free_attr);
    const auto mit = merge_map_.find(sig);
    if (mit == merge_map_.end()) continue;
    const ClosedInterval sub_iv = sub->effective_interval(schema_, free_attr);
    std::size_t tested = 0;
    for (const SubscriptionId root_id : mit->second) {
      if (tested++ >= opts_.max_merge_candidates) break;
      RootInfo& info = roots_.at(root_id);
      if (info.umbrella && info.free_attr != free_attr) continue;
      if (!same_except(*info.sub, *sub, free_attr)) continue;

      const ClosedInterval root_iv =
          info.sub->effective_interval(schema_, free_attr);
      const ClosedInterval hull = hull_of(root_iv, sub_iv);
      std::vector<ClosedInterval> covered =
          info.umbrella ? info.covered
                        : std::vector<ClosedInterval>{root_iv};
      const std::uint64_t union_w = merge_covered(covered, sub_iv);
      const double fp =
          1.0 - static_cast<double>(union_w) /
                    static_cast<double>(hull.width());
      if (fp > opts_.merge_fp_budget) continue;

      if (info.umbrella) {
        if (info.children.size() >= opts_.max_children_per_root) continue;
        if (hull != root_iv) {
          // The hull grew: rebuild the umbrella subscription (same id,
          // new interval) and re-register its bucket entries.
          auto grown = std::make_shared<Subscription>(*info.sub);
          for (Constraint& gc : grown->constraints) {
            if (gc.attribute == free_attr) gc.range = hull;
          }
          index_.remove(root_id);
          index_.insert(grown);
          info.sub = std::move(grown);
        }
        info.covered = std::move(covered);
        info.children.push_back(sub);
        parent_of_.emplace(sub->id, root_id);
        return true;
      }

      // Real root: demote it (and its covered children) under a fresh
      // umbrella spanning the hull.
      if (info.children.size() + 2 > opts_.max_children_per_root) continue;
      auto umbrella = std::make_shared<Subscription>();
      umbrella->id = next_umbrella_id_++;
      umbrella->subscriber = 0;
      for (std::size_t attr = 0; attr < schema_.dimensions(); ++attr) {
        if (info.sub->constraint_on(attr) == nullptr) continue;
        umbrella->constraints.push_back(
            {attr, attr == free_attr
                       ? hull
                       : info.sub->effective_interval(schema_, attr)});
      }

      RootInfo uinfo;
      uinfo.sub = umbrella;
      uinfo.umbrella = true;
      uinfo.free_attr = free_attr;
      uinfo.covered = std::move(covered);
      uinfo.children = std::move(info.children);
      uinfo.children.push_back(info.sub);
      uinfo.children.push_back(sub);

      remove_root_entry(root_id, info);
      roots_.erase(root_id);
      for (const SubscriptionPtr& child : uinfo.children) {
        parent_of_[child->id] = umbrella->id;
      }
      index_.insert(umbrella);
      auto [uit, inserted] = roots_.emplace(umbrella->id, std::move(uinfo));
      CBPS_ASSERT(inserted);
      register_sigs(umbrella->id, uit->second);
      ++umbrella_count_;
      return true;
    }
  }
  return false;
}

void CoveringIndex::add_root(const SubscriptionPtr& sub) {
  index_.insert(sub);
  auto [it, inserted] = roots_.emplace(sub->id, RootInfo{});
  CBPS_ASSERT(inserted);
  it->second.sub = sub;
  register_sigs(sub->id, it->second);
}

void CoveringIndex::register_sigs(SubscriptionId id, RootInfo& info) {
  // Umbrellas only ever merge on their free attribute; real roots can
  // merge on any constrained attribute.
  info.sigs.clear();
  if (info.umbrella) {
    info.sigs.push_back(signature(*info.sub, info.free_attr));
  } else {
    for (const Constraint& c : info.sub->constraints) {
      info.sigs.push_back(signature(*info.sub, c.attribute));
    }
  }
  for (const std::uint64_t sig : info.sigs) {
    merge_map_[sig].push_back(id);
  }
}

void CoveringIndex::unregister_sigs(SubscriptionId id,
                                    const RootInfo& info) {
  for (const std::uint64_t sig : info.sigs) {
    const auto it = merge_map_.find(sig);
    if (it == merge_map_.end()) continue;
    std::erase(it->second, id);
    if (it->second.empty()) merge_map_.erase(it);
  }
}

void CoveringIndex::remove_root_entry(SubscriptionId id, RootInfo& info) {
  index_.remove(id);
  unregister_sigs(id, info);
}

void CoveringIndex::promote_children(
    std::vector<SubscriptionPtr> children) {
  // Expansion: re-admit each orphan through the full insert path so it
  // can be re-covered, merged, or become a root of its own.
  for (SubscriptionPtr& child : children) {
    const bool ok = insert_internal(std::move(child));
    CBPS_ASSERT_MSG(ok, "orphaned child failed to re-insert");
  }
}

bool CoveringIndex::remove(SubscriptionId id) {
  if (inert_.erase(id) > 0) {
    --logical_size_;
    return true;
  }

  const auto pit = parent_of_.find(id);
  if (pit != parent_of_.end()) {
    const SubscriptionId parent_id = pit->second;
    parent_of_.erase(pit);
    RootInfo& parent = roots_.at(parent_id);
    std::erase_if(parent.children, [id](const SubscriptionPtr& c) {
      return c->id == id;
    });
    --logical_size_;
    if (parent.umbrella) {
      if (parent.children.size() < 2) {
        // One member left: the umbrella earns nothing — dissolve it.
        std::vector<SubscriptionPtr> orphans =
            std::move(parent.children);
        remove_root_entry(parent_id, parent);
        roots_.erase(parent_id);
        --umbrella_count_;
        for (const SubscriptionPtr& c : orphans) {
          parent_of_.erase(c->id);
        }
        promote_children(std::move(orphans));
      } else {
        // Recompute the member-coverage union the removed interval may
        // have been carrying.
        parent.covered.clear();
        for (const SubscriptionPtr& c : parent.children) {
          merge_covered(parent.covered,
                        c->effective_interval(schema_, parent.free_attr));
        }
      }
    }
    return true;
  }

  const auto rit = roots_.find(id);
  if (rit == roots_.end() || rit->second.umbrella) return false;
  std::vector<SubscriptionPtr> orphans = std::move(rit->second.children);
  remove_root_entry(id, rit->second);
  roots_.erase(rit);
  for (const SubscriptionPtr& c : orphans) parent_of_.erase(c->id);
  --logical_size_;
  promote_children(std::move(orphans));
  return true;
}

void CoveringIndex::match_into(const Event& e,
                               std::vector<SubscriptionId>& out) const {
  scratch_ids_.clear();
  index_.match_into(e, scratch_ids_);
  for (const SubscriptionId root_id : scratch_ids_) {
    const RootInfo& info = roots_.at(root_id);
    // A real root hit is exact (the counting index checks the original
    // ranges); an umbrella hit is only a candidate and is never
    // reported itself.
    if (!info.umbrella) out.push_back(root_id);
    for (const SubscriptionPtr& child : info.children) {
      if (child->matches(e)) out.push_back(child->id);
    }
  }
}

std::size_t CoveringIndex::memory_bytes() const {
  std::size_t bytes = index_.memory_bytes();
  bytes += roots_.size() *
           (sizeof(std::pair<const SubscriptionId, RootInfo>) +
            2 * sizeof(void*));
  bytes += roots_.bucket_count() * sizeof(void*);
  // detlint: unordered-ok(order-independent byte sum)
  for (const auto& [_, info] : roots_) {
    bytes += info.children.capacity() * sizeof(SubscriptionPtr);
    bytes += info.covered.capacity() * sizeof(ClosedInterval);
    bytes += info.sigs.capacity() * sizeof(std::uint64_t);
  }
  bytes += parent_of_.size() *
           (sizeof(std::pair<const SubscriptionId, SubscriptionId>) +
            2 * sizeof(void*));
  bytes += parent_of_.bucket_count() * sizeof(void*);
  bytes += inert_.size() *
           (sizeof(std::pair<const SubscriptionId, SubscriptionPtr>) +
            2 * sizeof(void*));
  bytes += merge_map_.size() *
           (sizeof(std::pair<const std::uint64_t,
                             std::vector<SubscriptionId>>) +
            2 * sizeof(void*));
  // detlint: unordered-ok(order-independent byte sum)
  for (const auto& [_, ids] : merge_map_) {
    bytes += ids.capacity() * sizeof(SubscriptionId);
  }
  bytes += merge_map_.bucket_count() * sizeof(void*);
  bytes += scratch_ids_.capacity() * sizeof(SubscriptionId);
  return bytes;
}

}  // namespace cbps::pubsub
