#include "cbps/metrics/registry.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <utility>
#include <vector>

namespace cbps::metrics {

std::uint64_t Registry::counter_value(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

void Registry::reset_all() {
  // Reset in place: callers hold Counter&/RunningStat&/Histogram&
  // handles across resets (per-phase measurement), so entries must
  // never be destroyed.
  for (auto& [_, c] : counters_) c.reset();
  for (auto& [_, s] : stats_) s.reset();
  for (auto& [_, h] : histograms_) h.reset();
}

void Registry::print(std::ostream& os) const {
  // Merge the three maps into one name-sorted table: each source map is
  // already sorted, so collecting and sorting by name yields a single
  // deterministic interleaving regardless of entry kinds.
  std::vector<std::pair<const std::string*, std::string>> lines;
  lines.reserve(counters_.size() + stats_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    lines.emplace_back(&name, std::to_string(c.value()));
  }
  for (const auto& [name, s] : stats_) {
    std::ostringstream line;
    line << "count=" << s.count() << " mean=" << s.mean()
         << " min=" << s.min() << " max=" << s.max();
    lines.emplace_back(&name, line.str());
  }
  for (const auto& [name, h] : histograms_) {
    std::ostringstream line;
    h.print(line);
    lines.emplace_back(&name, line.str());
  }
  std::sort(lines.begin(), lines.end(),
            [](const auto& a, const auto& b) { return *a.first < *b.first; });
  for (const auto& [name, text] : lines) {
    os << std::left << std::setw(44) << *name << ' ' << text << '\n';
  }
}

}  // namespace cbps::metrics
