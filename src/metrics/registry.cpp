#include "cbps/metrics/registry.hpp"

#include <iomanip>

namespace cbps::metrics {

std::uint64_t Registry::counter_value(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

void Registry::reset_all() {
  // Reset in place: callers hold Counter&/RunningStat& across resets
  // (per-phase measurement), so entries must never be destroyed.
  for (auto& [_, c] : counters_) c.reset();
  for (auto& [_, s] : stats_) s.reset();
}

void Registry::print(std::ostream& os) const {
  for (const auto& [name, c] : counters_) {
    os << std::left << std::setw(44) << name << ' ' << c.value() << '\n';
  }
  for (const auto& [name, s] : stats_) {
    os << std::left << std::setw(44) << name << " count=" << s.count()
       << " mean=" << s.mean() << " min=" << s.min() << " max=" << s.max()
       << '\n';
  }
}

}  // namespace cbps::metrics
