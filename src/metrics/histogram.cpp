#include "cbps/metrics/histogram.hpp"

#include <cmath>
#include <ostream>

namespace cbps::metrics {

namespace {

void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v,
                                  std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram& Histogram::operator=(const Histogram& o) {
  if (this == &o) return *this;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    buckets_[i].store(o.bucket(i), std::memory_order_relaxed);
  }
  count_.store(o.count_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  sum_.store(o.sum_.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
  min_.store(o.min_.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
  max_.store(o.max_.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
  return *this;
}

std::size_t Histogram::bucket_index(double v) {
  if (!(v > 0.0)) return 0;  // zero, negative, NaN
  int exp = 0;
  double m = std::frexp(v, &exp);  // v = m * 2^exp, m in [0.5, 1)
  if (exp < kMinExp) {
    exp = kMinExp;
    m = 0.5;
  } else if (exp > kMaxExp) {
    exp = kMaxExp;
    m = 1.0 - 1.0 / (2 * kSubBuckets);  // top sub-bucket
  }
  auto sub = static_cast<int>((m - 0.5) * (2 * kSubBuckets));
  if (sub < 0) sub = 0;
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  return static_cast<std::size_t>(exp - kMinExp) * kSubBuckets +
         static_cast<std::size_t>(sub) + 1;
}

double Histogram::bucket_mid(std::size_t i) {
  if (i == 0) return 0.0;
  const std::size_t k = i - 1;
  const int exp = kMinExp + static_cast<int>(k / kSubBuckets);
  const auto sub = static_cast<int>(k % kSubBuckets);
  const double base = std::ldexp(1.0, exp - 1);  // 2^(exp-1)
  const double width = base / kSubBuckets;
  return base + width * (static_cast<double>(sub) + 0.5);
}

void Histogram::add(double v, std::uint64_t weight) {
  if (weight == 0) return;
  atomic_min(min_, v);
  atomic_max(max_, v);
  buckets_[bucket_index(v)].fetch_add(weight, std::memory_order_relaxed);
  count_.fetch_add(weight, std::memory_order_relaxed);
  atomic_add(sum_, v * static_cast<double>(weight));
}

double Histogram::percentile(double p) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  if (p <= 0.0) return min();
  if (p >= 100.0) return max();
  // Rank of the requested observation, 1-based.
  auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    seen += bucket(i);
    if (seen >= rank) {
      double v = bucket_mid(i);
      if (v < min()) v = min();
      if (v > max()) v = max();
      return v;
    }
  }
  return max();
}

void Histogram::merge(const Histogram& other) {
  if (other.count() == 0) return;
  atomic_min(min_, other.min_.load(std::memory_order_relaxed));
  atomic_max(max_, other.max_.load(std::memory_order_relaxed));
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    buckets_[i].fetch_add(other.bucket(i), std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  atomic_add(sum_, other.sum());
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

void Histogram::print(std::ostream& os) const {
  os << "count=" << count() << " mean=" << mean() << " p50=" << p50()
     << " p90=" << p90() << " p99=" << p99() << " max=" << max();
}

}  // namespace cbps::metrics
