#include "cbps/metrics/histogram.hpp"

#include <cmath>
#include <ostream>

namespace cbps::metrics {

std::size_t Histogram::bucket_index(double v) {
  if (!(v > 0.0)) return 0;  // zero, negative, NaN
  int exp = 0;
  double m = std::frexp(v, &exp);  // v = m * 2^exp, m in [0.5, 1)
  if (exp < kMinExp) {
    exp = kMinExp;
    m = 0.5;
  } else if (exp > kMaxExp) {
    exp = kMaxExp;
    m = 1.0 - 1.0 / (2 * kSubBuckets);  // top sub-bucket
  }
  auto sub = static_cast<int>((m - 0.5) * (2 * kSubBuckets));
  if (sub < 0) sub = 0;
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  return static_cast<std::size_t>(exp - kMinExp) * kSubBuckets +
         static_cast<std::size_t>(sub) + 1;
}

double Histogram::bucket_mid(std::size_t i) {
  if (i == 0) return 0.0;
  const std::size_t k = i - 1;
  const int exp = kMinExp + static_cast<int>(k / kSubBuckets);
  const auto sub = static_cast<int>(k % kSubBuckets);
  const double base = std::ldexp(1.0, exp - 1);  // 2^(exp-1)
  const double width = base / kSubBuckets;
  return base + width * (static_cast<double>(sub) + 0.5);
}

void Histogram::add(double v, std::uint64_t weight) {
  if (weight == 0) return;
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  buckets_[bucket_index(v)] += weight;
  count_ += weight;
  sum_ += v * static_cast<double>(weight);
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  if (p <= 0.0) return min_;
  if (p >= 100.0) return max_;
  // Rank of the requested observation, 1-based.
  auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      double v = bucket_mid(i);
      if (v < min_) v = min_;
      if (v > max_) v = max_;
      return v;
    }
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  for (std::size_t i = 0; i < kBucketCount; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::reset() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

void Histogram::print(std::ostream& os) const {
  os << "count=" << count_ << " mean=" << mean() << " p50=" << p50()
     << " p90=" << p90() << " p99=" << p99() << " max=" << max();
}

}  // namespace cbps::metrics
