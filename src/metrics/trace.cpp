#include "cbps/metrics/trace.hpp"

#include <algorithm>
#include <ostream>
#include <unordered_map>

#include "cbps/common/assert.hpp"
#include "cbps/common/exec_context.hpp"

namespace cbps::metrics {

const char* to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kPublish: return "publish";
    case SpanKind::kSubscribe: return "subscribe";
    case SpanKind::kMap: return "map";
    case SpanKind::kRouteHop: return "route-hop";
    case SpanKind::kMcastSplit: return "mcast-split";
    case SpanKind::kBuffer: return "buffer";
    case SpanKind::kCollect: return "collect";
    case SpanKind::kNotify: return "notify";
    case SpanKind::kDeliver: return "deliver";
    case SpanKind::kRetry: return "retry";
    case SpanKind::kDrop: return "drop";
    case SpanKind::kGossipPush: return "gossip-push";
    case SpanKind::kGossipRepair: return "gossip-repair";
    case SpanKind::kHotKey: return "hot-key";
    case SpanKind::kCount: break;
  }
  return "?";
}

TraceSink::TraceSink(double sample_rate)
    : sample_rate_(sample_rate < 0.0   ? 0.0
                   : sample_rate > 1.0 ? 1.0
                                       : sample_rate),
      stripes_(kMaxStripes) {}

std::uint64_t TraceSink::maybe_start_trace() {
  CBPS_ASSERT_MSG(common::exec_context().stripe == 0,
                  "trace roots start from global context only");
  if (sample_rate_ <= 0.0) return 0;
  credit_ += sample_rate_;
  if (credit_ < 1.0) return 0;
  credit_ -= 1.0;
  return next_trace_++;
}

std::uint64_t TraceSink::emit(const TraceRef& t, SpanKind kind,
                              std::uint64_t node, std::uint64_t start_us,
                              std::uint64_t end_us, std::uint64_t a,
                              std::uint64_t b) {
  if (!t.sampled()) return 0;
  CBPS_ASSERT_MSG(!finalized_, "emit() after spans were finalized");
  auto& x = common::exec_context();
  CBPS_ASSERT(x.stripe < kMaxStripes);
  Stripe& s = stripes_[x.stripe];
  if (s.recs.size() >= max_spans_) {
    ++s.dropped;
    return 0;
  }
  // Provisional id: stripe-tagged so ids never collide across workers.
  // finalize() renumbers them 1..n in canonical order.
  const std::uint64_t id = ((static_cast<std::uint64_t>(x.stripe) + 1) << 48) |
                           s.next_local++;
  s.recs.push_back(Rec{Span{id, t.trace_id, t.parent_span, kind, node,
                            start_us, end_us, a, b},
                       x.time, x.event_key, x.emit_seq++});
  return id;
}

std::uint64_t TraceSink::spans_dropped() const {
  std::uint64_t n = 0;
  for (const Stripe& s : stripes_) n += s.dropped;
  return n;
}

void TraceSink::finalize() {
  if (finalized_) return;
  finalized_ = true;

  std::size_t total = 0;
  for (const Stripe& s : stripes_) total += s.recs.size();

  std::vector<Rec> all;
  all.reserve(total);
  for (Stripe& s : stripes_) {
    std::move(s.recs.begin(), s.recs.end(), std::back_inserter(all));
    s.recs.clear();
    s.recs.shrink_to_fit();
  }

  // Canonical order: (sim time, event key, emission index). Within one
  // stripe the triple is strictly increasing per event, and event keys
  // are unique across stripes, so the order — and therefore the
  // renumbering — is a pure function of the workload, not of the engine
  // or shard count. stable_sort keeps append order on the (test-only)
  // case of emits outside any event callback.
  std::stable_sort(all.begin(), all.end(), [](const Rec& l, const Rec& r) {
    if (l.time != r.time) return l.time < r.time;
    if (l.event_key != r.event_key) return l.event_key < r.event_key;
    return l.emit_seq < r.emit_seq;
  });

  std::unordered_map<std::uint64_t, std::uint64_t> remap;
  remap.reserve(all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    remap.emplace(all[i].span.span_id, i + 1);
  }

  final_.reserve(all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    Span s = all[i].span;
    s.span_id = i + 1;
    if (s.parent_span != 0) {
      // A missing parent was dropped by the span cap; orphan to root.
      const auto it = remap.find(s.parent_span);
      s.parent_span = it != remap.end() ? it->second : 0;
    }
    final_.push_back(s);
  }
}

void TraceSink::write_jsonl(std::ostream& os) {
  for (const Span& s : spans()) {
    os << "{\"span\":" << s.span_id << ",\"trace\":" << s.trace_id
       << ",\"parent\":" << s.parent_span << ",\"kind\":\""
       << to_string(s.kind) << "\",\"node\":" << s.node
       << ",\"ts_us\":" << s.start_us << ",\"end_us\":" << s.end_us
       << ",\"a\":" << s.a << ",\"b\":" << s.b << "}\n";
  }
}

void TraceSink::write_chrome_trace(std::ostream& os) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const Span& s : spans()) {
    if (!first) os << ",";
    first = false;
    // Complete ("X") events; zero-duration instants get dur=1 so they
    // stay visible in the Perfetto timeline. pid 1 = the simulation,
    // tid = node id, so each Perfetto track is one node's activity.
    const std::uint64_t dur = s.end_us > s.start_us ? s.end_us - s.start_us : 1;
    os << "\n{\"name\":\"" << to_string(s.kind)
       << "\",\"cat\":\"cbps\",\"ph\":\"X\",\"ts\":" << s.start_us
       << ",\"dur\":" << dur << ",\"pid\":1,\"tid\":" << s.node
       << ",\"args\":{\"span\":" << s.span_id << ",\"trace\":" << s.trace_id
       << ",\"parent\":" << s.parent_span << ",\"a\":" << s.a
       << ",\"b\":" << s.b << "}}";
  }
  os << "\n]}\n";
}

}  // namespace cbps::metrics
