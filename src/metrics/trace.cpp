#include "cbps/metrics/trace.hpp"

#include <ostream>

namespace cbps::metrics {

const char* to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kPublish: return "publish";
    case SpanKind::kSubscribe: return "subscribe";
    case SpanKind::kMap: return "map";
    case SpanKind::kRouteHop: return "route-hop";
    case SpanKind::kMcastSplit: return "mcast-split";
    case SpanKind::kBuffer: return "buffer";
    case SpanKind::kCollect: return "collect";
    case SpanKind::kNotify: return "notify";
    case SpanKind::kDeliver: return "deliver";
    case SpanKind::kRetry: return "retry";
    case SpanKind::kDrop: return "drop";
    case SpanKind::kCount: break;
  }
  return "?";
}

TraceSink::TraceSink(double sample_rate)
    : sample_rate_(sample_rate < 0.0   ? 0.0
                   : sample_rate > 1.0 ? 1.0
                                       : sample_rate) {}

std::uint64_t TraceSink::maybe_start_trace() {
  if (sample_rate_ <= 0.0) return 0;
  credit_ += sample_rate_;
  if (credit_ < 1.0) return 0;
  credit_ -= 1.0;
  return next_trace_++;
}

std::uint64_t TraceSink::emit(const TraceRef& t, SpanKind kind,
                              std::uint64_t node, std::uint64_t start_us,
                              std::uint64_t end_us, std::uint64_t a,
                              std::uint64_t b) {
  if (!t.sampled()) return 0;
  if (spans_.size() >= max_spans_) {
    ++spans_dropped_;
    return 0;
  }
  const std::uint64_t id = next_span_++;
  spans_.push_back(Span{id, t.trace_id, t.parent_span, kind, node, start_us,
                        end_us, a, b});
  return id;
}

void TraceSink::write_jsonl(std::ostream& os) const {
  for (const Span& s : spans_) {
    os << "{\"span\":" << s.span_id << ",\"trace\":" << s.trace_id
       << ",\"parent\":" << s.parent_span << ",\"kind\":\""
       << to_string(s.kind) << "\",\"node\":" << s.node
       << ",\"ts_us\":" << s.start_us << ",\"end_us\":" << s.end_us
       << ",\"a\":" << s.a << ",\"b\":" << s.b << "}\n";
  }
}

void TraceSink::write_chrome_trace(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const Span& s : spans_) {
    if (!first) os << ",";
    first = false;
    // Complete ("X") events; zero-duration instants get dur=1 so they
    // stay visible in the Perfetto timeline. pid 1 = the simulation,
    // tid = node id, so each Perfetto track is one node's activity.
    const std::uint64_t dur = s.end_us > s.start_us ? s.end_us - s.start_us : 1;
    os << "\n{\"name\":\"" << to_string(s.kind)
       << "\",\"cat\":\"cbps\",\"ph\":\"X\",\"ts\":" << s.start_us
       << ",\"dur\":" << dur << ",\"pid\":1,\"tid\":" << s.node
       << ",\"args\":{\"span\":" << s.span_id << ",\"trace\":" << s.trace_id
       << ",\"parent\":" << s.parent_span << ",\"a\":" << s.a
       << ",\"b\":" << s.b << "}}";
  }
  os << "\n]}\n";
}

}  // namespace cbps::metrics
