#include "cbps/metrics/topk.hpp"

#include <algorithm>

namespace cbps::metrics {

TopK::TopK(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void TopK::offer(std::uint64_t key, std::uint64_t weight) {
  if (weight == 0) return;
  total_ += weight;
  if (const auto it = cells_.find(key); it != cells_.end()) {
    it->second.count += weight;
    return;
  }
  if (cells_.size() < capacity_) {
    cells_.emplace(key, Cell{weight, 0});
    return;
  }
  // Space-saving eviction: replace the minimum-count entry; among equal
  // minima the largest key id goes (total order — no layout dependence).
  auto victim = cells_.begin();
  for (auto it = std::next(cells_.begin()); it != cells_.end(); ++it) {
    if (it->second.count < victim->second.count ||
        (it->second.count == victim->second.count &&
         it->first > victim->first)) {
      victim = it;
    }
  }
  const std::uint64_t floor = victim->second.count;
  cells_.erase(victim);
  cells_.emplace(key, Cell{floor + weight, floor});
}

void TopK::merge(const TopK& other) {
  total_ += other.total_;
  for (const auto& [key, cell] : other.cells_) {
    Cell& mine = cells_[key];
    mine.count += cell.count;
    mine.error += cell.error;
  }
}

std::vector<TopK::Entry> TopK::top(std::size_t k) const {
  std::vector<Entry> out;
  out.reserve(cells_.size());
  for (const auto& [key, cell] : cells_) {
    out.push_back(Entry{key, cell.count, cell.error});
  }
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.key < b.key;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

TopK::Entry TopK::find(std::uint64_t key) const {
  const auto it = cells_.find(key);
  if (it == cells_.end()) return Entry{key, 0, 0};
  return Entry{key, it->second.count, it->second.error};
}

void TopK::reset() {
  total_ = 0;
  cells_.clear();
}

}  // namespace cbps::metrics
