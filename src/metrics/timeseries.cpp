#include "cbps/metrics/timeseries.hpp"

#include <ostream>

#include "cbps/common/assert.hpp"

namespace cbps::metrics {

void TimeSeries::append(std::uint64_t t_us, std::vector<double> row) {
  CBPS_ASSERT_MSG(row.size() == columns_.size(),
                  "TimeSeries row arity mismatch");
  times_us_.push_back(t_us);
  rows_.push_back(std::move(row));
}

void TimeSeries::write_json(std::ostream& os) const {
  os << "{\"columns\":[\"t_s\"";
  for (const auto& c : columns_) os << ",\"" << c << "\"";
  os << "],\"rows\":[";
  for (std::size_t i = 0; i < times_us_.size(); ++i) {
    if (i) os << ",";
    os << "\n[" << static_cast<double>(times_us_[i]) / 1e6;
    for (double v : rows_[i]) os << "," << v;
    os << "]";
  }
  os << "\n]}";
}

void TimeSeries::write_csv(std::ostream& os) const {
  os << "t_s";
  for (const auto& c : columns_) os << "," << c;
  os << "\n";
  for (std::size_t i = 0; i < times_us_.size(); ++i) {
    os << static_cast<double>(times_us_[i]) / 1e6;
    for (double v : rows_[i]) os << "," << v;
    os << "\n";
  }
}

}  // namespace cbps::metrics
