#include "cbps/chord/network.hpp"

#include <algorithm>
#include <utility>

#include "cbps/common/hash.hpp"
#include "cbps/common/logging.hpp"

namespace cbps::chord {

ChordNetwork::HotStats::HotStats(metrics::Registry& reg)
    : send_to_dead(reg.counter_handle("chord.send_to_dead")),
      retransmits(reg.counter_handle("chord.retransmits")),
      send_failed(reg.counter_handle("chord.send_failed")),
      dup_suppressed(reg.counter_handle("chord.dup_suppressed")),
      route_dropped(reg.counter_handle("chord.route_dropped")),
      route_no_candidate(reg.counter_handle("chord.route_no_candidate")),
      mcast_dropped_keys(reg.counter_handle("chord.mcast_dropped_keys")),
      chain_dropped(reg.counter_handle("chord.chain_dropped")),
      chain_no_candidate(reg.counter_handle("chord.chain_no_candidate")),
      lookup_dropped(reg.counter_handle("chord.lookup_dropped")),
      lookup_no_candidate(reg.counter_handle("chord.lookup_no_candidate")),
      net_partition_refused(
          reg.counter_handle("chord.net.partition_refused")),
      net_partition_dropped(
          reg.counter_handle("chord.net.partition_dropped")),
      net_lost(reg.counter_handle("chord.net.lost")),
      join_retry(reg.counter_handle("chord.join_retry")),
      route_hops(reg.histogram_handle("chord.route_hops")),
      mcast_fanout(reg.histogram_handle("chord.mcast_fanout")),
      retries_per_send(reg.histogram_handle("chord.retries_per_send")) {
  for (std::size_t c = 0; c < overlay::kMessageClassCount; ++c) {
    net_lost_by_class[c] = reg.counter_handle(
        std::string("chord.net.lost.") +
        std::string(overlay::to_string(static_cast<overlay::MessageClass>(c))));
    delay_us_by_class[c] = reg.histogram_handle(
        std::string("chord.net.delay_us.") +
        std::string(overlay::to_string(static_cast<overlay::MessageClass>(c))));
  }
}

namespace {

// SplitMix64 finalizer: decorrelates the per-node wire-stream seeds
// derived from (run seed, node id).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

ChordNetwork::ChordNetwork(sim::SimulatorBase& sim, ChordConfig cfg,
                           std::uint64_t seed,
                           std::unique_ptr<sim::LatencyModel> latency)
    : sim_(sim),
      cfg_(cfg),
      seed_(seed),
      rng_(seed),
      latency_(latency ? std::move(latency) : sim::default_latency()) {
  if (cfg_.loss_rate > 0.0) {
    loss_ = std::make_unique<sim::UniformLoss>(cfg_.loss_rate);
  }
}

ChordNetwork::~ChordNetwork() {
  // Timers owned by nodes reference the simulator; stop them while the
  // nodes still exist.
  for (auto& [_, n] : nodes_) {
    n->stop_maintenance();
    n->cancel_pending_sends();
  }
}

ChordNode& ChordNetwork::add_node(const std::string& name) {
  Key id = consistent_hash(name, cfg_.ring);
  int salt = 0;
  while (nodes_.contains(id)) {
    id = consistent_hash(name + "#" + std::to_string(salt++), cfg_.ring);
  }
  return add_node_with_id(id, name);
}

ChordNode& ChordNetwork::add_node_with_id(Key id, std::string name) {
  CBPS_ASSERT_MSG(!nodes_.contains(id), "duplicate node id");
  CBPS_ASSERT(id <= cfg_.ring.max_key());
  // Per-sender wire streams seeded from (run seed, node id): the draw
  // sequences are independent of registration order and engine choice.
  // Dedicated loss stream so enabling loss never perturbs latency.
  WireState ws{sim_.register_domain(), Rng(mix64(seed_ ^ mix64(id))),
               Rng(mix64(seed_ ^ mix64(id) ^ 0x9e3779b97f4a7c15ull)),
               loss_ ? loss_->clone() : nullptr};
  auto node =
      std::make_unique<ChordNode>(*this, id, std::move(name), ws.domain);
  ChordNode& ref = *node;
  nodes_.emplace(id, std::move(node));
  wire_.emplace(id, std::move(ws));
  alive_.insert(std::lower_bound(alive_.begin(), alive_.end(), id), id);
  return ref;
}

void ChordNetwork::build_static_ring() {
  const std::vector<Key> ids = alive_ids();
  CBPS_ASSERT(!ids.empty());
  const std::size_t n = ids.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Key id = ids[i];
    ChordNode& node = *nodes_.at(id);

    std::optional<Key> pred;
    std::vector<Key> succs;
    if (n > 1) {
      pred = ids[(i + n - 1) % n];
      for (std::size_t j = 1; j <= cfg_.successor_list_size && j < n; ++j) {
        succs.push_back(ids[(i + j) % n]);
      }
    }

    std::vector<Key> fingers(cfg_.ring.bits());
    for (std::size_t f = 0; f < fingers.size(); ++f) {
      const Key start = cfg_.ring.add(id, std::uint64_t{1} << f);
      fingers[f] = oracle_successor(start);
    }
    node.install_state(pred, std::move(succs), std::move(fingers));
  }
}

ChordNode& ChordNetwork::join_node(const std::string& name, Key bootstrap) {
  CBPS_ASSERT_MSG(is_alive(bootstrap), "bootstrap node must be alive");
  ChordNode& node = add_node(name);
  node.begin_join(bootstrap);
  return node;
}

void ChordNetwork::leave_gracefully(Key id) {
  CBPS_ASSERT_MSG(is_alive(id),
                  "leave_gracefully: node is not alive (double removal?)");
  CBPS_ASSERT_MSG(alive_.size() > 1,
                  "leave_gracefully: cannot remove the last alive node");
  nodes_.at(id)->leave_gracefully();
  alive_.erase(std::lower_bound(alive_.begin(), alive_.end(), id));
  // The process is still up (lame duck): it keeps retransmitting its
  // pending reliable sends — the state handover above in particular —
  // and may receive the acks for them. See transmit().
  departed_.insert(id);
}

void ChordNetwork::crash(Key id) {
  CBPS_ASSERT_MSG(is_alive(id),
                  "crash: node is not alive (double removal?)");
  CBPS_ASSERT_MSG(alive_.size() > 1,
                  "crash: cannot remove the last alive node");
  nodes_.at(id)->go_offline();
  alive_.erase(std::lower_bound(alive_.begin(), alive_.end(), id));
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

void ChordNetwork::set_partition(const std::vector<std::vector<Key>>& groups) {
  partition_group_.clear();
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (Key id : groups[g]) partition_group_[id] = static_cast<int>(g);
  }
  partitioned_ = true;
}

void ChordNetwork::heal_partition() {
  partitioned_ = false;
  partition_group_.clear();
}

bool ChordNetwork::reachable(Key a, Key b) const {
  if (!partitioned_) return true;
  const auto group = [this](Key id) {
    const auto it = partition_group_.find(id);
    return it == partition_group_.end() ? -1 : it->second;
  };
  return group(a) == group(b);
}

void ChordNetwork::set_slow_factor(Key id, double factor) {
  CBPS_ASSERT_MSG(factor >= 1.0, "slow factor must be >= 1");
  if (factor == 1.0) {
    slow_factors_.erase(id);
  } else {
    slow_factors_[id] = factor;
  }
}

void ChordNetwork::clear_slow_factors() { slow_factors_.clear(); }

double ChordNetwork::slow_factor(Key id) const {
  const auto it = slow_factors_.find(id);
  return it == slow_factors_.end() ? 1.0 : it->second;
}

void ChordNetwork::set_loss_model(std::unique_ptr<sim::LossModel> model) {
  loss_ = std::move(model);
  // detlint: unordered-ok(every wire gets an identical fresh clone; commutative)
  for (auto& [_, ws] : wire_) {
    ws.loss = loss_ ? loss_->clone() : nullptr;
  }
}

std::size_t ChordNetwork::loss_bad_state_count() const {
  std::size_t n = 0;
  for (Key id : alive_) {
    const auto it = wire_.find(id);
    if (it == wire_.end()) continue;
    const auto* ge =
        dynamic_cast<const sim::GilbertElliottLoss*>(it->second.loss.get());
    if (ge != nullptr && ge->in_bad_state()) ++n;
  }
  return n;
}

bool ChordNetwork::is_alive(Key id) const {
  return std::binary_search(alive_.begin(), alive_.end(), id);
}

ChordNode* ChordNetwork::node(Key id) {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second.get();
}

const ChordNode* ChordNetwork::node(Key id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second.get();
}

ChordNode& ChordNetwork::alive_node(std::size_t i) {
  CBPS_ASSERT(i < alive_.size());
  return *nodes_.at(alive_[i]);
}

Key ChordNetwork::oracle_successor(Key key) const {
  CBPS_ASSERT_MSG(!alive_.empty(), "no alive nodes");
  auto it = std::lower_bound(alive_.begin(), alive_.end(), key);
  return it == alive_.end() ? alive_.front() : *it;
}

void ChordNetwork::start_maintenance_all() {
  for (Key id : alive_) nodes_.at(id)->start_maintenance();
}

void ChordNetwork::stop_maintenance_all() {
  for (Key id : alive_) nodes_.at(id)->stop_maintenance();
}

namespace {

/// Approximate wire size of a message: the application payload plus
/// 8 bytes per carried key.
std::size_t wire_size_bytes(const WireMessage& msg) {
  return std::visit(
      [](const auto& m) -> std::size_t {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, RouteMsg>) {
          return m.payload->size_bytes() + 8;
        } else if constexpr (std::is_same_v<T, McastMsg> ||
                             std::is_same_v<T, ChainMsg>) {
          return m.payload->size_bytes() + 8 * m.targets.size();
        } else if constexpr (std::is_same_v<T, NeighborMsg>) {
          return m.payload->size_bytes();
        } else if constexpr (std::is_same_v<T, StateTransferMsg>) {
          return m.state ? m.state->size_bytes() : 0;
        } else if constexpr (std::is_same_v<T, PredLeaveMsg>) {
          return (m.state ? m.state->size_bytes() : 0) + 8;
        } else if constexpr (std::is_same_v<T, GetNeighborsReply>) {
          return 8 * (1 + m.successors.size());
        } else {
          return 16;  // small fixed-size control messages
        }
      },
      msg);
}

}  // namespace

bool ChordNetwork::transmit(Key from, Key to, WireMessage msg,
                            overlay::MessageClass cls) {
  if (!is_alive(to)) {
    // Lame-duck exception: a gracefully-departed node is still running
    // and listening for the acks of its draining sends. Everything
    // else bounces — it has left the ring.
    const bool ack_to_lame_duck =
        std::holds_alternative<AckMsg>(msg) && departed_.contains(to);
    if (!ack_to_lame_duck) return false;
  }
  if (!reachable(from, to)) {
    // Partitioned link: the connection attempt fails exactly like a
    // dead peer, so the caller evicts the peer and the successor-list /
    // finger repair machinery takes over inside each side of the cut.
    hot_.net_partition_refused->inc();
    return false;
  }
  traffic_.record_hop(cls, wire_size_bytes(msg));

  // All wire randomness comes from the *sender's* streams: transmit is
  // only ever called from the sending node's own execution context (or
  // from the exclusive global context), so the draws race with nothing
  // and replay identically at any shard count.
  WireState& src_wire = wire_.at(from);
  if (src_wire.loss != nullptr && src_wire.loss->drop(src_wire.loss_rng)) {
    // The message hit the wire (hop/bytes recorded) but never arrives.
    hot_.net_lost->inc();
    hot_.net_lost_by_class[static_cast<std::size_t>(cls)]->inc();
    return true;
  }

  const ChordNode& src = *nodes_.at(from);
  auto env = std::make_shared<Envelope>();
  env->from = from;
  env->from_has_pred = src.predecessor().has_value();
  env->from_pred = src.predecessor().value_or(0);
  env->msg = std::move(msg);

  sim::SimTime delay = latency_->sample(src_wire.latency_rng);
  // Gray failure: a slow node stretches every message it touches.
  const double slow = std::max(slow_factor(from), slow_factor(to));
  if (slow > 1.0) {
    delay = static_cast<sim::SimTime>(static_cast<double>(delay) * slow);
  }
  // Integer-microsecond samples into a lock-free histogram: the sum is
  // order-independent, so concurrent shard senders stay deterministic.
  hot_.delay_us_by_class[static_cast<std::size_t>(cls)]->add(
      static_cast<double>(delay));
  // Deliver on the destination's scheduling domain: the receive callback
  // runs on (and is keyed by) the receiver's shard. The latency floor
  // (LatencyModel::min_delay) is the parallel engine's lookahead, which
  // is exactly what makes this cross-shard handoff legal mid-window.
  sim_.schedule_for(wire_.at(to).domain, sim_.now() + delay,
                    [this, from, to, env] {
    // Destination died in flight — except a lame-duck ack: the departed
    // process is still up, waiting for exactly this.
    if (!is_alive(to) && !(std::holds_alternative<AckMsg>(env->msg) &&
                           departed_.contains(to))) {
      return;
    }
    // A partition cut the link while the message was in flight: it is
    // silently lost, and the sender's ack/retry layer must recover it
    // (or fail the send and reroute).
    if (!reachable(from, to)) {
      hot_.net_partition_dropped->inc();
      return;
    }
    nodes_.at(to)->receive(std::move(*env));
  });
  return true;
}

void ChordNetwork::self_deliver(std::function<void()> action) {
  sim_.schedule_after(0, std::move(action));
}

}  // namespace cbps::chord
