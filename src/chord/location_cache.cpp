#include "cbps/chord/location_cache.hpp"

namespace cbps::chord {

void LocationCache::insert(Key node, Key range_lo) {
  if (capacity_ == 0) return;
  auto it = map_.find(node);
  if (it != map_.end()) {
    it->second.first = range_lo;
    touch(it);
    return;
  }
  if (map_.size() >= capacity_) {
    const Key victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
  }
  lru_.push_front(node);
  map_.emplace(node, std::make_pair(range_lo, lru_.begin()));
}

void LocationCache::evict(Key node) {
  auto it = map_.find(node);
  if (it == map_.end()) return;
  lru_.erase(it->second.second);
  map_.erase(it);
}

std::optional<Key> LocationCache::find_owner(Key key) {
  // Several cached entries can cover `key`; the map is ordered (see
  // header) so the winner — and the route it shapes — is the lowest
  // covering node id, a pure function of the cache contents. The old
  // unordered_map scan returned whichever covering entry hashing put
  // first: the PR 4 Registry::print bug class, on the routing path.
  for (auto it = map_.begin(); it != map_.end(); ++it) {
    const Key node = it->first;
    const Key range_lo = it->second.first;
    if (node != range_lo && ring_.in_open_closed(range_lo, node, key)) {
      touch(it);
      return node;
    }
  }
  return std::nullopt;
}

void LocationCache::touch(Map::iterator it) {
  lru_.splice(lru_.begin(), lru_, it->second.second);
  it->second.second = lru_.begin();
}

}  // namespace cbps::chord
