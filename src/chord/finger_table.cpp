#include "cbps/chord/finger_table.hpp"

#include <algorithm>

namespace cbps::chord {

void FingerTable::evict(Key node) {
  for (auto& e : entries_) {
    if (e && *e == node) e = std::nullopt;
  }
}

std::vector<Key> FingerTable::distinct_nodes() const {
  std::vector<Key> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) {
    if (e) out.push_back(*e);
  }
  std::sort(out.begin(), out.end(), [this](Key a, Key b) {
    return ring_.distance(owner_, a) < ring_.distance(owner_, b);
  });
  out.erase(std::unique(out.begin(), out.end()), out.end());
  // The owner itself can appear in sparse rings (its successor may wrap
  // to itself); it is not a useful delegation target.
  std::erase(out, owner_);
  return out;
}

}  // namespace cbps::chord
