#include "cbps/chord/node.hpp"

#include <algorithm>
#include <utility>

#include "cbps/chord/network.hpp"
#include "cbps/common/logging.hpp"
#include "cbps/common/sorted_view.hpp"
#include "cbps/overlay/mcast_partition.hpp"

namespace cbps::chord {

using metrics::DropReason;
using metrics::SpanKind;
using overlay::MessageClass;
using overlay::PayloadPtr;

namespace {

/// Trace context for the next span at this hop: the payload's sampled
/// trace, re-parented on the previous hop's span when one is carried on
/// the wire message.
metrics::TraceRef hop_ref(const PayloadPtr& payload,
                          std::uint64_t parent_span) {
  metrics::TraceRef t = payload ? payload->trace : metrics::TraceRef{};
  if (parent_span != 0) t.parent_span = parent_span;
  return t;
}

/// Trace context of any wire message (unsampled for payload-free ones).
metrics::TraceRef wire_ref(const WireMessage& msg) {
  return std::visit(
      [](const auto& m) -> metrics::TraceRef {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, RouteMsg> ||
                      std::is_same_v<T, McastMsg> ||
                      std::is_same_v<T, ChainMsg>) {
          return hop_ref(m.payload, m.parent_span);
        } else if constexpr (std::is_same_v<T, NeighborMsg>) {
          return m.payload ? m.payload->trace : metrics::TraceRef{};
        } else {
          return {};
        }
      },
      msg);
}

}  // namespace

ChordNode::ChordNode(ChordNetwork& net, Key id, std::string name,
                     common::Domain domain)
    : net_(net),
      id_(id),
      name_(std::move(name)),
      domain_(domain),
      fingers_(net.ring(), id),
      cache_(net.ring(), net.config().location_cache_size) {}

RingParams ChordNode::ring() const { return net_.ring(); }

const ChordConfig& ChordNode::config() const { return net_.config(); }

bool ChordNode::covers(Key k) const {
  // A node that knows no predecessor accepts whatever routing hands it:
  // either the ring has a single member, or the predecessor just failed
  // and this node is the legitimate successor of the orphaned range.
  if (!has_pred_) return true;
  return ring().in_open_closed(pred_, id_, k);
}

bool ChordNode::transmit(Key to, WireMessage msg, MessageClass cls) {
  CBPS_ASSERT_MSG(to != id_, "self-transmit must be a local delivery");
  // Gossip rides best-effort even on a reliable wire: the epidemic's own
  // redundancy (fan-out + anti-entropy repair) is its loss recovery, and
  // per-hop acks would double-charge the overhead the benches compare.
  if (config().reliable_transport() && cls != MessageClass::kGossip &&
      seq_field(msg) != nullptr) {
    return transmit_reliable(to, std::move(msg), cls);
  }
  if (!net_.transmit(id_, to, std::move(msg), cls)) {
    net_.hot().send_to_dead->inc();
    on_peer_dead(to);
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Ack/retry reliability (armed only when the network injects loss)
// ---------------------------------------------------------------------------

bool ChordNode::transmit_reliable(Key to, WireMessage msg,
                                  MessageClass cls) {
  const std::uint64_t seq = next_send_seq_++;
  *seq_field(msg) = seq;
  if (!net_.transmit(id_, to, msg, cls)) {
    net_.hot().send_to_dead->inc();
    on_peer_dead(to);
    return false;
  }
  PendingSend p;
  p.to = to;
  p.cls = cls;
  p.timeout = rto_for(to);
  p.sent_at = net_.sim().now();
  // Self-owned timer: keyed by (and sharded with) this node even when
  // the send was issued from a driver's global-context callback, so the
  // cancel in handle_ack is always a same-shard operation.
  const common::ActorScope as(domain_);
  p.timer =
      net_.sim().schedule_after(p.timeout, [this, seq] { retransmit(seq); });
  p.msg = std::move(msg);  // retransmission copy; payload ptr is shared
  pending_sends_.emplace(seq, std::move(p));
  return true;
}

void ChordNode::retransmit(std::uint64_t seq) {
  auto it = pending_sends_.find(seq);
  if (it == pending_sends_.end()) return;  // acked since the timer fired
  PendingSend& p = it->second;
  if (p.retries >= config().max_retries) {
    net_.hot().send_failed->inc();
    net_.hot().retries_per_send->add(p.retries);
    if (auto* ts = net_.trace_sink()) {
      if (const auto t = wire_ref(p.msg); t.sampled()) {
        const auto now = net_.sim().now();
        ts->emit(t, SpanKind::kDrop, id_, now, now,
                 static_cast<std::uint64_t>(DropReason::kRetryBudget),
                 p.retries);
      }
    }
    pending_sends_.erase(it);
    return;
  }
  ++p.retries;
  net_.hot().retransmits->inc();
  if (auto* ts = net_.trace_sink()) {
    if (const auto t = wire_ref(p.msg); t.sampled()) {
      const auto now = net_.sim().now();
      ts->emit(t, SpanKind::kRetry, id_, now, now, p.retries);
    }
  }
  if (net_.transmit(id_, p.to, p.msg, p.cls)) {
    p.timeout *= 2;  // exponential backoff
    const common::ActorScope as(domain_);
    p.timer = net_.sim().schedule_after(p.timeout,
                                        [this, seq] { retransmit(seq); });
    return;
  }
  // The peer died while we were retrying. Evict it, then re-route the
  // message through a live candidate where the semantics allow it. The
  // seq is reset to 0 so the re-injected copy gets a fresh id (and a
  // fresh pending entry) at its next transmit.
  const Key dead = p.to;
  WireMessage msg = std::move(p.msg);
  pending_sends_.erase(it);
  net_.hot().send_to_dead->inc();
  on_peer_dead(dead);
  if (auto* r = std::get_if<RouteMsg>(&msg)) {
    r->seq = 0;
    forward_route(std::move(*r));
  } else if (auto* m = std::get_if<McastMsg>(&msg)) {
    run_mcast(std::move(m->targets), m->payload, m->hops,
              /*initiator=*/false, m->parent_span);
  } else if (auto* c = std::get_if<ChainMsg>(&msg)) {
    c->seq = 0;
    forward_chain(std::move(*c));
  } else if (auto* pl = std::get_if<PredLeaveMsg>(&msg)) {
    // The successor we were handing our state to died mid-handover;
    // hand it to the next live successor instead (we already evicted
    // the dead one above).
    const Key succ = successor_id();
    if (succ != id_) {
      pl->seq = 0;
      transmit(succ, std::move(*pl), MessageClass::kStateTransfer);
    } else {
      net_.hot().send_failed->inc();
    }
  } else {
    // NeighborMsg / SuccLeaveMsg / state-pull traffic: the peer it
    // addressed is gone and no equivalent recipient exists; count the
    // loss.
    net_.hot().send_failed->inc();
  }
}

void ChordNode::handle_ack(std::uint64_t acked_seq) {
  auto it = pending_sends_.find(acked_seq);
  if (it == pending_sends_.end()) return;  // late ack of a retransmit
  net_.hot().retries_per_send->add(it->second.retries);
  // Karn's rule: only never-retransmitted sends yield RTT samples — an
  // ack after a retransmission is ambiguous about which copy it answers.
  if (it->second.retries == 0 && config().adaptive_rto) {
    record_rtt_sample(it->second.to, net_.sim().now() - it->second.sent_at);
  }
  net_.sim().cancel(it->second.timer);
  pending_sends_.erase(it);
}

void ChordNode::record_rtt_sample(Key peer, sim::SimTime rtt) {
  RttState& s = rtt_[peer];
  const double r = static_cast<double>(rtt);
  if (!s.valid) {
    // RFC 6298 initialization: SRTT = R, RTTVAR = R/2.
    s.srtt_us = r;
    s.rttvar_us = r / 2.0;
    s.valid = true;
    return;
  }
  // Jacobson's EWMA (alpha = 1/8, beta = 1/4), variance first.
  const double err = r - s.srtt_us;
  s.rttvar_us += ((err < 0 ? -err : err) - s.rttvar_us) / 4.0;
  s.srtt_us += err / 8.0;
}

sim::SimTime ChordNode::rto_for(Key peer) const {
  if (!config().adaptive_rto) return config().retry_base;
  const auto it = rtt_.find(peer);
  if (it == rtt_.end() || !it->second.valid) return config().retry_base;
  const double rto = it->second.srtt_us + 4.0 * it->second.rttvar_us;
  return std::clamp(static_cast<sim::SimTime>(rto), config().rto_min,
                    config().rto_max);
}

sim::SimTime ChordNode::current_rto(Key peer) const { return rto_for(peer); }

void ChordNode::cancel_pending_sends() {
  // detlint: unordered-ok(cancel marks slots stale; commutative, no output)
  for (auto& [_, p] : pending_sends_) net_.sim().cancel(p.timer);
  pending_sends_.clear();
}

void ChordNode::go_offline() {
  offline_ = true;
  stop_maintenance();
  cancel_pending_sends();
}

void ChordNode::on_peer_dead(Key peer) {
  fingers_.evict(peer);
  cache_.evict(peer);
  std::erase(succs_, peer);
  if (has_pred_ && pred_ == peer) has_pred_ = false;
  remember_contact(peer);
}

void ChordNode::remember_contact(Key peer) {
  if (peer == id_ || remembered_.size() >= kMaxRemembered) return;
  remembered_.insert(peer);
}

void ChordNode::probe_remembered() {
  // Raw transmits on purpose: a probe that fails (the contact is truly
  // dead, or the partition still stands) must not re-trigger eviction —
  // the contact is already evicted; we are fishing for its return.
  // Probe in key order: each transmit draws wire randomness, so probe
  // order must be a function of the remembered set, not hash layout (D1).
  for (const Key* peer : sorted_view(remembered_)) {
    net_.transmit(id_, *peer, GetNeighborsReq{id_}, MessageClass::kControl);
  }
}

// ---------------------------------------------------------------------------
// Next-hop selection
// ---------------------------------------------------------------------------

std::optional<Key> ChordNode::closest_preceding(Key key) const {
  // Best candidate: maximal ring distance from us while still in
  // (id, key]. Scans fingers, successor list, predecessor and the
  // location cache (all O(log n + cache) candidates).
  std::optional<Key> best;
  std::uint64_t best_dist = 0;
  const auto consider = [&](Key c) {
    if (c == id_) return;
    if (!ring().in_open_closed(id_, key, c)) return;
    const std::uint64_t d = ring().distance(id_, c);
    if (!best || d > best_dist) {
      best = c;
      best_dist = d;
    }
  };
  for (std::size_t i = 0; i < fingers_.size(); ++i) {
    if (auto f = fingers_.get(i)) consider(*f);
  }
  for (Key s : succs_) consider(s);
  if (has_pred_) consider(pred_);
  for (Key c : cache_.nodes()) consider(c);
  return best;
}

std::optional<Key> ChordNode::next_hop(Key key) const {
  if (covers(key)) return std::nullopt;
  // Location-cache shortcut: a peer we believe covers `key` can take the
  // message directly (it re-routes if the belief turned stale).
  if (auto owner =
          const_cast<LocationCache&>(cache_).find_owner(key)) {
    if (*owner != id_) return owner;
  }
  if (!succs_.empty() &&
      ring().in_open_closed(id_, succs_.front(), key)) {
    return succs_.front();
  }
  if (auto c = closest_preceding(key)) return c;
  if (!succs_.empty()) return succs_.front();
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Unicast routing
// ---------------------------------------------------------------------------

void ChordNode::send(Key key, PayloadPtr payload) {
  RouteMsg msg{key, std::move(payload), 0, id_};
  if (covers(key)) {
    net_.self_deliver(
        [this, msg = std::move(msg)] { deliver_route(msg); });
    return;
  }
  forward_route(std::move(msg));
}

void ChordNode::handle_route(RouteMsg msg) {
  if (covers(msg.target)) {
    deliver_route(msg);
    return;
  }
  forward_route(std::move(msg));
}

void ChordNode::deliver_route(const RouteMsg& msg) {
  if (offline_) return;  // self-delivery scheduled before the crash
  const MessageClass cls = msg.payload->message_class();
  net_.traffic().record_delivery(cls);
  net_.traffic().record_route_complete(cls, msg.hops);
  net_.hot().route_hops->add(msg.hops);
  if (config().owner_feedback && msg.origin != id_ && msg.hops > 1) {
    transmit(msg.origin, OwnerInfoMsg{id_, has_pred_ ? pred_ : id_},
             MessageClass::kControl);
  }
  if (app_ != nullptr) app_->on_deliver(msg.target, msg.payload);
}

void ChordNode::forward_route(RouteMsg msg) {
  metrics::TraceSink* ts = net_.trace_sink();
  if (msg.hops >= config().max_route_hops) {
    net_.hot().route_dropped->inc();
    if (ts != nullptr) {
      if (const auto t = hop_ref(msg.payload, msg.parent_span); t.sampled()) {
        const auto now = net_.sim().now();
        ts->emit(t, SpanKind::kDrop, id_, now, now,
                 static_cast<std::uint64_t>(DropReason::kMaxHops), msg.hops);
      }
    }
    CBPS_LOG_WARN << "node " << id_ << ": dropping route to " << msg.target
                  << " after " << msg.hops << " hops";
    return;
  }
  const MessageClass cls = msg.payload->message_class();
  // One span per forwarding step, re-parenting the wire message so the
  // next hop's span chains to this one.
  if (ts != nullptr) {
    if (const auto t = hop_ref(msg.payload, msg.parent_span); t.sampled()) {
      const auto now = net_.sim().now();
      if (const auto span = ts->emit(t, SpanKind::kRouteHop, id_, now, now,
                                     msg.target, msg.hops);
          span != 0) {
        msg.parent_span = span;
      }
    }
  }
  for (;;) {
    if (covers(msg.target)) {  // candidate eviction can make us the owner
      deliver_route(msg);
      return;
    }
    const auto nh = next_hop(msg.target);
    if (!nh) {
      net_.hot().route_no_candidate->inc();
      if (ts != nullptr) {
        if (const auto t = hop_ref(msg.payload, msg.parent_span);
            t.sampled()) {
          const auto now = net_.sim().now();
          ts->emit(t, SpanKind::kDrop, id_, now, now,
                   static_cast<std::uint64_t>(DropReason::kNoCandidate),
                   msg.hops);
        }
      }
      return;
    }
    RouteMsg out = msg;
    out.hops = msg.hops + 1;
    if (transmit(*nh, std::move(out), cls)) return;
    // transmit evicted the dead peer; retry with the next candidate.
  }
}

// ---------------------------------------------------------------------------
// m-cast (paper §4.3.1, Figure 4)
// ---------------------------------------------------------------------------

void ChordNode::m_cast(std::vector<Key> keys, PayloadPtr payload) {
  if (keys.empty()) return;
  run_mcast(std::move(keys), payload, /*hops=*/0, /*initiator=*/true);
}

void ChordNode::handle_mcast(McastMsg msg) {
  run_mcast(std::move(msg.targets), msg.payload, msg.hops,
            /*initiator=*/false, msg.parent_span);
}

void ChordNode::run_mcast(std::vector<Key> keys, const PayloadPtr& payload,
                          std::uint32_t hops, bool initiator,
                          std::uint64_t parent_span) {
  if (offline_) return;
  metrics::TraceSink* ts = net_.trace_sink();
  if (hops >= config().max_route_hops) {
    net_.hot().mcast_dropped_keys->inc(keys.size());
    if (ts != nullptr) {
      if (const auto t = hop_ref(payload, parent_span); t.sampled()) {
        const auto now = net_.sim().now();
        ts->emit(t, SpanKind::kDrop, id_, now, now,
                 static_cast<std::uint64_t>(DropReason::kMaxHops),
                 keys.size());
      }
    }
    return;
  }

  // Delegation candidates: the distinct finger nodes (f_1 is the
  // successor in a converged ring) sorted by ring distance.
  std::vector<Key> candidates = fingers_.distinct_nodes();
  if (!succs_.empty() &&
      std::find(candidates.begin(), candidates.end(), succs_.front()) ==
          candidates.end()) {
    candidates.push_back(succs_.front());
    std::sort(candidates.begin(), candidates.end(),
              [this](Key a, Key b) {
                return ring().distance(id_, a) < ring().distance(id_, b);
              });
  }

  // Figure 4 segment delegation (shared across overlays).
  const overlay::McastPartition part = overlay::partition_mcast_targets(
      ring(), id_, [this](Key k) { return covers(k); }, std::move(keys),
      candidates);

  if (!part.local.empty() && app_ != nullptr) {
    const MessageClass cls = payload->message_class();
    net_.traffic().record_delivery(cls);
    if (initiator) {
      // Keep the upcall asynchronous even for the initiator.
      PayloadPtr p = payload;
      std::vector<Key> covered = part.local;
      net_.self_deliver([this, covered = std::move(covered), p] {
        if (!offline_) app_->on_deliver_mcast(covered, p);
      });
    } else {
      app_->on_deliver_mcast(part.local, payload);
    }
  }
  if (!part.undeliverable.empty()) {
    net_.hot().mcast_dropped_keys->inc(part.undeliverable.size());
    if (ts != nullptr) {
      if (const auto t = hop_ref(payload, parent_span); t.sampled()) {
        const auto now = net_.sim().now();
        ts->emit(t, SpanKind::kDrop, id_, now, now,
                 static_cast<std::uint64_t>(DropReason::kMcastDead),
                 part.undeliverable.size());
      }
    }
  }

  std::size_t branches = 0;
  std::size_t delegated_keys = 0;
  for (const auto& d : part.delegated) {
    if (d.empty()) continue;
    ++branches;
    delegated_keys += d.size();
  }
  std::uint64_t split_span = parent_span;
  if (branches > 0) {
    net_.hot().mcast_fanout->add(static_cast<double>(branches));
    if (ts != nullptr) {
      if (const auto t = hop_ref(payload, parent_span); t.sampled()) {
        const auto now = net_.sim().now();
        if (const auto span =
                ts->emit(t, SpanKind::kMcastSplit, id_, now, now,
                         delegated_keys + part.local.size(), branches);
            span != 0) {
          split_span = span;
        }
      }
    }
  }

  const MessageClass cls = payload->message_class();
  std::vector<Key> retry;
  for (std::size_t j = 0; j < candidates.size(); ++j) {
    if (part.delegated[j].empty()) continue;
    if (!transmit(candidates[j],
                  McastMsg{part.delegated[j], payload, hops + 1, 0,
                           split_span},
                  cls)) {
      retry.insert(retry.end(), part.delegated[j].begin(),
                   part.delegated[j].end());
    }
  }
  if (!retry.empty()) {
    // Dead candidates were evicted; re-run the assignment for their keys.
    run_mcast(std::move(retry), payload, hops + 1, /*initiator=*/false,
              split_span);
  }
}

// ---------------------------------------------------------------------------
// chain_cast: conservative unicast-based one-to-many (§4.3.1 baseline)
// ---------------------------------------------------------------------------

void ChordNode::chain_cast(std::vector<Key> keys, PayloadPtr payload) {
  if (keys.empty()) return;
  std::sort(keys.begin(), keys.end(), [this](Key a, Key b) {
    return ring().distance(id_, a) < ring().distance(id_, b);
  });
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  run_chain(std::move(keys), payload, /*hops=*/0, /*initiator=*/true);
}

void ChordNode::handle_chain(ChainMsg msg) {
  if (covers(msg.targets.front())) {
    run_chain(std::move(msg.targets), msg.payload, msg.hops,
              /*initiator=*/false, msg.parent_span);
  } else {
    forward_chain(std::move(msg));
  }
}

void ChordNode::run_chain(std::vector<Key> keys, const PayloadPtr& payload,
                          std::uint32_t hops, bool initiator,
                          std::uint64_t parent_span) {
  if (offline_) return;
  std::vector<Key> covered;
  std::vector<Key> remaining;
  for (Key k : keys) {
    (covers(k) ? covered : remaining).push_back(k);
  }
  if (!covered.empty() && app_ != nullptr) {
    const MessageClass cls = payload->message_class();
    net_.traffic().record_delivery(cls);
    if (initiator) {
      PayloadPtr p = payload;
      net_.self_deliver([this, covered, p] {
        if (!offline_) app_->on_deliver_mcast(covered, p);
      });
    } else {
      app_->on_deliver_mcast(covered, payload);
    }
  }
  if (remaining.empty()) return;

  // Keep ring order relative to this node: the nearest remaining key is
  // visited next (the paper's "forward M to k_i + 1" walk).
  std::sort(remaining.begin(), remaining.end(), [this](Key a, Key b) {
    return ring().distance(id_, a) < ring().distance(id_, b);
  });
  forward_chain(ChainMsg{std::move(remaining), payload, hops, 0,
                         parent_span});
}

void ChordNode::forward_chain(ChainMsg msg) {
  metrics::TraceSink* ts = net_.trace_sink();
  if (msg.hops >= config().max_route_hops) {
    net_.hot().chain_dropped->inc();
    if (ts != nullptr) {
      if (const auto t = hop_ref(msg.payload, msg.parent_span); t.sampled()) {
        const auto now = net_.sim().now();
        ts->emit(t, SpanKind::kDrop, id_, now, now,
                 static_cast<std::uint64_t>(DropReason::kMaxHops),
                 msg.targets.size());
      }
    }
    return;
  }
  const MessageClass cls = msg.payload->message_class();
  if (ts != nullptr) {
    if (const auto t = hop_ref(msg.payload, msg.parent_span); t.sampled()) {
      const auto now = net_.sim().now();
      if (const auto span = ts->emit(t, SpanKind::kRouteHop, id_, now, now,
                                     msg.targets.front(), msg.hops);
          span != 0) {
        msg.parent_span = span;
      }
    }
  }
  for (;;) {
    if (covers(msg.targets.front())) {
      run_chain(std::move(msg.targets), msg.payload, msg.hops,
                /*initiator=*/false, msg.parent_span);
      return;
    }
    const auto nh = next_hop(msg.targets.front());
    if (!nh) {
      net_.hot().chain_no_candidate->inc();
      if (ts != nullptr) {
        if (const auto t = hop_ref(msg.payload, msg.parent_span);
            t.sampled()) {
          const auto now = net_.sim().now();
          ts->emit(t, SpanKind::kDrop, id_, now, now,
                   static_cast<std::uint64_t>(DropReason::kNoCandidate),
                   msg.targets.size());
        }
      }
      return;
    }
    ChainMsg out = msg;
    out.hops = msg.hops + 1;
    if (transmit(*nh, std::move(out), cls)) return;
  }
}

// ---------------------------------------------------------------------------
// Neighbor sends (collecting, §4.3.2)
// ---------------------------------------------------------------------------

void ChordNode::send_to_successor(PayloadPtr payload) {
  while (!succs_.empty()) {
    const Key s = succs_.front();
    if (transmit(s, NeighborMsg{payload}, payload->message_class())) return;
  }
  // Alone in the ring: local delivery.
  if (app_ != nullptr) {
    PayloadPtr p = std::move(payload);
    net_.self_deliver([this, p] {
      if (!offline_) app_->on_deliver(id_, p);
    });
  }
}

void ChordNode::send_to_predecessor(PayloadPtr payload) {
  if (has_pred_ && pred_ != id_) {
    if (transmit(pred_, NeighborMsg{payload}, payload->message_class())) {
      return;
    }
  }
  if (app_ != nullptr) {
    PayloadPtr p = std::move(payload);
    net_.self_deliver([this, p] {
      if (!offline_) app_->on_deliver(id_, p);
    });
  }
}

// ---------------------------------------------------------------------------
// Lookup protocol
// ---------------------------------------------------------------------------

void ChordNode::handle_find_successor(FindSuccessorReq msg) {
  if (covers(msg.target)) {
    if (msg.reply_to == id_) {
      handle_find_successor_reply(
          FindSuccessorReply{msg.target, id_, msg.req_id});
      return;
    }
    transmit(msg.reply_to, FindSuccessorReply{msg.target, id_, msg.req_id},
             MessageClass::kControl);
    return;
  }
  if (msg.hops >= config().max_route_hops) {
    net_.hot().lookup_dropped->inc();
    return;
  }
  for (;;) {
    if (covers(msg.target)) {
      handle_find_successor(msg);  // eviction made us the owner
      return;
    }
    const auto nh = next_hop(msg.target);
    if (!nh) {
      net_.hot().lookup_no_candidate->inc();
      return;
    }
    FindSuccessorReq out = msg;
    out.hops = msg.hops + 1;
    if (transmit(*nh, std::move(out), MessageClass::kControl)) return;
  }
}

void ChordNode::handle_find_successor_reply(const FindSuccessorReply& msg) {
  if (msg.req_id == kJoinReqId) {
    if (msg.owner == id_ && joining_) {
      // A stale routing path bounced the lookup back to us before we
      // were integrated; retry through the bootstrap after a beat.
      net_.hot().join_retry->inc();
      const Key bootstrap = join_bootstrap_;
      const common::ActorScope as(domain_);
      net_.sim().schedule_after(sim::sec(1),
                                [this, bootstrap] { begin_join(bootstrap); });
      return;
    }
    // Join step 2: we found our successor.
    set_successor_front(msg.owner);
    if (msg.owner != id_) {
      transmit(msg.owner, PullStateReq{0, id_, id_},
               MessageClass::kStateTransfer);
      transmit(msg.owner, GetNeighborsReq{id_}, MessageClass::kControl);
      transmit(msg.owner, NotifyPredMsg{}, MessageClass::kControl);
    }
    joining_ = false;
    if (config().stabilize_period > 0) start_maintenance();
    return;
  }
  auto it = pending_finger_fixes_.find(msg.req_id);
  if (it == pending_finger_fixes_.end()) return;
  const std::size_t finger = it->second;
  pending_finger_fixes_.erase(it);
  fingers_.set(finger, msg.owner);
}

// ---------------------------------------------------------------------------
// Stabilization (Chord's periodic maintenance)
// ---------------------------------------------------------------------------

void ChordNode::start_maintenance() {
  if (maintenance_timer_ != 0 || config().stabilize_period == 0) return;
  // Self-owned periodic timer; see transmit_reliable for why the scope.
  const common::ActorScope as(domain_);
  maintenance_timer_ = net_.sim().add_timer(config().stabilize_period,
                                            [this] { maintenance_tick(); });
}

void ChordNode::stop_maintenance() {
  if (maintenance_timer_ == 0) return;
  net_.sim().cancel_timer(maintenance_timer_);
  maintenance_timer_ = 0;
}

void ChordNode::maintenance_tick() {
  check_predecessor();
  stabilize();
  fix_fingers();
  probe_remembered();
}

void ChordNode::check_predecessor() {
  if (!has_pred_ || pred_ == id_) return;
  // A failed transmit evicts the dead predecessor via on_peer_dead.
  transmit(pred_, GetNeighborsReq{id_}, MessageClass::kControl);
}

void ChordNode::stabilize() {
  while (!succs_.empty()) {
    const Key s = succs_.front();
    if (s == id_) {
      succs_.erase(succs_.begin());
      continue;
    }
    if (transmit(s, GetNeighborsReq{id_}, MessageClass::kControl)) return;
  }
}

void ChordNode::fix_fingers() {
  for (std::size_t i = 0; i < fingers_.size(); ++i) {
    const Key target = fingers_.start(i);
    if (covers(target)) {
      fingers_.set(i, id_);
      continue;
    }
    const std::uint64_t req = next_req_id_++;
    pending_finger_fixes_[req] = i;
    handle_find_successor(FindSuccessorReq{target, id_, req, 0});
  }
}

void ChordNode::handle_get_neighbors(const GetNeighborsReq& msg) {
  if (msg.reply_to == id_) return;
  transmit(msg.reply_to, GetNeighborsReply{has_pred_, pred_, succs_},
           MessageClass::kControl);
}

void ChordNode::handle_get_neighbors_reply(const GetNeighborsReply& msg,
                                           Key from) {
  if (succs_.empty() || from != succs_.front()) {
    // A reply from our predecessor's liveness probe or a stale
    // successor; still useful as a predecessor hint while joining.
    if (!has_pred_ && msg.has_pred && msg.pred != id_) {
      adopt_predecessor(msg.pred);
    }
    return;
  }
  // Standard stabilize: if succ's predecessor sits between us, it is our
  // better successor.
  if (msg.has_pred && msg.pred != id_ &&
      ring().in_open_open(id_, succs_.front(), msg.pred)) {
    set_successor_front(msg.pred);
  } else {
    // Refresh the successor list from the successor's own list.
    std::vector<Key> fresh{succs_.front()};
    for (Key s : msg.successors) {
      if (s == id_) continue;
      if (std::find(fresh.begin(), fresh.end(), s) == fresh.end()) {
        fresh.push_back(s);
      }
      if (fresh.size() >= config().successor_list_size) break;
    }
    succs_ = std::move(fresh);
  }
  if (!has_pred_ && msg.has_pred && msg.pred != id_) {
    adopt_predecessor(msg.pred);
  }
  if (!succs_.empty() && succs_.front() != id_) {
    transmit(succs_.front(), NotifyPredMsg{}, MessageClass::kControl);
  }
}

void ChordNode::handle_notify_pred(Key candidate) {
  if (candidate == id_) return;
  if (!has_pred_ || ring().in_open_open(pred_, id_, candidate)) {
    adopt_predecessor(candidate);
  }
}

void ChordNode::adopt_predecessor(Key candidate) {
  if (has_pred_ && candidate == pred_) return;
  if (has_pred_ && app_ != nullptr &&
      ring().in_open_open(pred_, id_, candidate)) {
    // Our covered range shrank from (pred, id] to (candidate, id]; the
    // keys in (pred, candidate] belong to the new predecessor now.
    // Push the exported state to it: during a normal join the new owner
    // already pulled a copy (the import dedupes), but during a
    // post-partition ring merge this transfer is the only path that
    // returns the orphaned range's subscriptions to their owner.
    PayloadPtr st = app_->export_state(pred_, candidate, /*remove=*/true);
    if (st != nullptr && candidate != id_) {
      transmit(candidate, StateTransferMsg{std::move(st)},
               MessageClass::kStateTransfer);
    }
  }
  pred_ = candidate;
  has_pred_ = true;
}

// ---------------------------------------------------------------------------
// Join / leave
// ---------------------------------------------------------------------------

void ChordNode::begin_join(Key bootstrap) {
  CBPS_ASSERT_MSG(bootstrap != id_, "cannot bootstrap from self");
  if (offline_) return;  // crashed while a join retry was scheduled
  joining_ = true;
  join_bootstrap_ = bootstrap;
  transmit(bootstrap, FindSuccessorReq{id_, id_, kJoinReqId, 0},
           MessageClass::kControl);
}

void ChordNode::handle_pull_state(const PullStateReq& msg) {
  PayloadPtr st;
  if (app_ != nullptr) {
    const Key lo = has_pred_ ? pred_ : id_;
    st = app_->export_state(lo, msg.range_hi, /*remove=*/false);
  }
  transmit(msg.reply_to, StateTransferMsg{std::move(st)},
           MessageClass::kStateTransfer);
}

void ChordNode::handle_pred_leave(const PredLeaveMsg& msg, Key from) {
  // Our predecessor left and handed us its range and state.
  on_peer_dead(from);
  if (msg.has_new_pred && msg.new_pred != id_) {
    pred_ = msg.new_pred;
    has_pred_ = true;
  } else {
    has_pred_ = false;
  }
  if (msg.state != nullptr && app_ != nullptr) app_->import_state(msg.state);
}

void ChordNode::handle_succ_leave(const SuccLeaveMsg& msg, Key from) {
  on_peer_dead(from);
  if (msg.new_succ != id_) set_successor_front(msg.new_succ);
}

void ChordNode::leave_gracefully() {
  stop_maintenance();
  // Pending reliable sends are deliberately NOT cancelled: the leaver
  // lingers as a lame duck, retransmitting its in-flight messages (and
  // the handover below) until they are acked or the budget runs out.
  // The network keeps delivering acks to departed-but-not-crashed
  // nodes for exactly this reason.
  const Key succ = successor_id();
  if (succ == id_) return;  // alone; nothing to hand over
  PayloadPtr st;
  if (app_ != nullptr) {
    const Key lo = has_pred_ ? pred_ : id_;
    st = app_->export_state(lo, id_, /*remove=*/true);
  }
  transmit(succ, PredLeaveMsg{has_pred_, pred_, std::move(st)},
           MessageClass::kStateTransfer);
  if (has_pred_ && pred_ != id_) {
    transmit(pred_, SuccLeaveMsg{succ}, MessageClass::kControl);
  }
}

void ChordNode::install_state(std::optional<Key> pred,
                              std::vector<Key> succs,
                              std::vector<Key> finger_nodes) {
  has_pred_ = pred.has_value();
  pred_ = pred.value_or(0);
  std::erase(succs, id_);
  succs_ = std::move(succs);
  CBPS_ASSERT(finger_nodes.size() == fingers_.size());
  for (std::size_t i = 0; i < finger_nodes.size(); ++i) {
    fingers_.set(i, finger_nodes[i]);
  }
  joining_ = false;
}

void ChordNode::set_successor_front(Key s) {
  if (s == id_) return;
  std::erase(succs_, s);
  succs_.insert(succs_.begin(), s);
  if (succs_.size() > config().successor_list_size) {
    succs_.resize(config().successor_list_size);
  }
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

void ChordNode::receive(Envelope env) {
  // A crashed process reads nothing off the wire (a message can already
  // be scheduled for delivery when the crash lands).
  if (offline_) return;

  // Log lines emitted while handling this message carry our identity.
  const logctx::ScopedNode log_node(id_);

  // Passive learning: every envelope reveals the sender and its claimed
  // covered range. Senders with no predecessor are not ring-integrated
  // (joining nodes) and must not become routing candidates.
  if (env.from_has_pred) cache_.insert(env.from, env.from_pred);

  // An evicted contact is talking to us again — the partition healed (or
  // the eviction was spurious); stop probing for it.
  remembered_.erase(env.from);

  // Opportunistic ring repair: if an integrated sender sits between us
  // and our current successor, the ring merged (or healed) and the
  // sender is our better successor. Mirrors the stabilize rule, but
  // fires on every message instead of once per maintenance period.
  // An isolated node (every peer evicted: empty successor list, or
  // collapsed to itself) takes any integrated sender as its way back in.
  const bool isolated = succs_.empty() || succs_.front() == id_;
  if (env.from_has_pred && !joining_ && env.from != id_ &&
      (isolated ||
       ring().in_open_open(id_, succs_.front(), env.from))) {
    set_successor_front(env.from);
    transmit(env.from, NotifyPredMsg{}, MessageClass::kControl);
  }

  // Reliability: ack every seq-stamped message, then suppress
  // retransmits we already processed. The ack is sent unconditionally —
  // a duplicate means our previous ack was lost in flight.
  if (const std::uint64_t* seq = seq_field(env.msg);
      seq != nullptr && *seq != 0) {
    transmit(env.from, AckMsg{*seq}, MessageClass::kControl);
    if (!seen_seqs_[env.from].insert(*seq).second) {
      net_.hot().dup_suppressed->inc();
      return;
    }
  }

  std::visit(
      [&](auto&& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, RouteMsg>) {
          handle_route(std::move(m));
        } else if constexpr (std::is_same_v<T, McastMsg>) {
          handle_mcast(std::move(m));
        } else if constexpr (std::is_same_v<T, ChainMsg>) {
          handle_chain(std::move(m));
        } else if constexpr (std::is_same_v<T, NeighborMsg>) {
          if (app_ != nullptr) app_->on_deliver(id_, m.payload);
        } else if constexpr (std::is_same_v<T, AckMsg>) {
          handle_ack(m.acked_seq);
        } else if constexpr (std::is_same_v<T, OwnerInfoMsg>) {
          cache_.insert(m.owner, m.owner_range_lo);
        } else if constexpr (std::is_same_v<T, FindSuccessorReq>) {
          handle_find_successor(std::move(m));
        } else if constexpr (std::is_same_v<T, FindSuccessorReply>) {
          handle_find_successor_reply(m);
        } else if constexpr (std::is_same_v<T, GetNeighborsReq>) {
          handle_get_neighbors(m);
        } else if constexpr (std::is_same_v<T, GetNeighborsReply>) {
          handle_get_neighbors_reply(m, env.from);
        } else if constexpr (std::is_same_v<T, NotifyPredMsg>) {
          handle_notify_pred(env.from);
        } else if constexpr (std::is_same_v<T, PullStateReq>) {
          handle_pull_state(m);
        } else if constexpr (std::is_same_v<T, StateTransferMsg>) {
          if (m.state != nullptr && app_ != nullptr) {
            app_->import_state(m.state);
          }
        } else if constexpr (std::is_same_v<T, PredLeaveMsg>) {
          handle_pred_leave(m, env.from);
        } else if constexpr (std::is_same_v<T, SuccLeaveMsg>) {
          handle_succ_leave(m, env.from);
        }
      },
      env.msg);
}

}  // namespace cbps::chord
