#include <algorithm>

#include "cbps/common/exec_context.hpp"
#include "cbps/common/hash.hpp"
#include "cbps/common/logging.hpp"
#include "cbps/overlay/mcast_partition.hpp"
#include "cbps/pastry/pastry.hpp"

namespace cbps::pastry {

using metrics::DropReason;
using metrics::SpanKind;
using overlay::MessageClass;
using overlay::PayloadPtr;

namespace {

/// Trace context for the next span at this hop (see chord/node.cpp).
metrics::TraceRef hop_ref(const PayloadPtr& payload,
                          std::uint64_t parent_span) {
  metrics::TraceRef t = payload ? payload->trace : metrics::TraceRef{};
  if (parent_span != 0) t.parent_span = parent_span;
  return t;
}

metrics::TraceRef wire_ref(const WireMessage& msg) {
  return std::visit(
      [](const auto& m) -> metrics::TraceRef {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, RouteMsg> ||
                      std::is_same_v<T, McastMsg> ||
                      std::is_same_v<T, ChainMsg>) {
          return hop_ref(m.payload, m.parent_span);
        } else if constexpr (std::is_same_v<T, NeighborMsg>) {
          return m.payload ? m.payload->trace : metrics::TraceRef{};
        } else {
          return {};
        }
      },
      msg);
}

}  // namespace

PastryNode::PastryNode(PastryNetwork& net, Key id, std::string name,
                       common::Domain domain)
    : net_(net), id_(id), name_(std::move(name)), domain_(domain) {
  table_.resize(net_.ring().bits());
}

RingParams PastryNode::ring() const { return net_.ring(); }
const PastryConfig& PastryNode::config() const { return net_.config(); }

Key PastryNode::successor_id() const {
  return leaf_succ_.empty() ? id_ : leaf_succ_.front();
}

Key PastryNode::predecessor_id() const {
  return leaf_pred_.empty() ? id_ : leaf_pred_.front();
}

bool PastryNode::covers(Key k) const {
  if (leaf_pred_.empty()) return true;  // alone in the overlay
  return ring().in_open_closed(leaf_pred_.front(), id_, k);
}

void PastryNode::install_state(std::vector<Key> leaf_pred,
                               std::vector<Key> leaf_succ,
                               std::vector<std::optional<Key>> table) {
  CBPS_ASSERT(table.size() == ring().bits());
  leaf_pred_ = std::move(leaf_pred);
  leaf_succ_ = std::move(leaf_succ);
  table_ = std::move(table);
}

bool PastryNode::transmit(Key to, WireMessage msg, MessageClass cls) {
  CBPS_ASSERT_MSG(to != id_, "self-transmit must be a local delivery");
  // Gossip is best-effort even on a reliable wire (see ChordNode): the
  // epidemic's redundancy is its loss recovery.
  if (config().reliable_transport() && cls != MessageClass::kGossip &&
      seq_field(msg) != nullptr) {
    return transmit_reliable(to, std::move(msg), cls);
  }
  if (!net_.transmit(id_, to, std::move(msg), cls)) {
    net_.hot().send_to_dead->inc();
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Ack/retry reliability (armed only when the network injects loss)
// ---------------------------------------------------------------------------

bool PastryNode::transmit_reliable(Key to, WireMessage msg,
                                   MessageClass cls) {
  const std::uint64_t seq = next_send_seq_++;
  *seq_field(msg) = seq;
  if (!net_.transmit(id_, to, msg, cls)) {
    net_.hot().send_to_dead->inc();
    return false;
  }
  PendingSend p;
  p.to = to;
  p.cls = cls;
  p.timeout = config().retry_base;
  {
    // The retry timer is this node's own event: key/place it on this
    // node's domain so handle_ack's cancel is always same-shard.
    const common::ActorScope as(domain_);
    p.timer = net_.sim().schedule_after(p.timeout,
                                        [this, seq] { retransmit(seq); });
  }
  p.msg = std::move(msg);  // retransmission copy; payload ptr is shared
  pending_sends_.emplace(seq, std::move(p));
  return true;
}

void PastryNode::retransmit(std::uint64_t seq) {
  auto it = pending_sends_.find(seq);
  if (it == pending_sends_.end()) return;  // acked since the timer fired
  PendingSend& p = it->second;
  if (p.retries >= config().max_retries) {
    net_.hot().send_failed->inc();
    net_.hot().retries_per_send->add(p.retries);
    if (auto* ts = net_.trace_sink()) {
      if (const auto t = wire_ref(p.msg); t.sampled()) {
        const auto now = net_.sim().now();
        ts->emit(t, SpanKind::kDrop, id_, now, now,
                 static_cast<std::uint64_t>(DropReason::kRetryBudget),
                 p.retries);
      }
    }
    pending_sends_.erase(it);
    return;
  }
  ++p.retries;
  net_.hot().retransmits->inc();
  if (auto* ts = net_.trace_sink()) {
    if (const auto t = wire_ref(p.msg); t.sampled()) {
      const auto now = net_.sim().now();
      ts->emit(t, SpanKind::kRetry, id_, now, now, p.retries);
    }
  }
  if (net_.transmit(id_, p.to, p.msg, p.cls)) {
    p.timeout *= 2;  // exponential backoff
    const common::ActorScope as(domain_);
    p.timer = net_.sim().schedule_after(p.timeout,
                                        [this, seq] { retransmit(seq); });
    return;
  }
  // The Pastry harness has no membership dynamics, so this only fires if
  // a peer was removed out-of-band; count the loss.
  pending_sends_.erase(it);
  net_.hot().send_failed->inc();
}

void PastryNode::handle_ack(std::uint64_t acked_seq) {
  auto it = pending_sends_.find(acked_seq);
  if (it == pending_sends_.end()) return;  // late ack of a retransmit
  net_.hot().retries_per_send->add(it->second.retries);
  net_.sim().cancel(it->second.timer);
  pending_sends_.erase(it);
}

void PastryNode::cancel_pending_sends() {
  // detlint: unordered-ok(cancel marks slots stale; commutative, no output)
  for (auto& [_, p] : pending_sends_) net_.sim().cancel(p.timer);
  pending_sends_.clear();
}

unsigned PastryNode::shared_prefix_bits(Key key) const {
  const unsigned m = ring().bits();
  const Key diff = (key ^ id_) & ring().max_key();
  if (diff == 0) return m;
  unsigned shared = 0;
  for (unsigned bit = m; bit-- > 0;) {
    if ((diff >> bit) & 1) break;
    ++shared;
  }
  return shared;
}

std::vector<Key> PastryNode::known_nodes_by_distance() const {
  std::vector<Key> nodes;
  nodes.insert(nodes.end(), leaf_succ_.begin(), leaf_succ_.end());
  nodes.insert(nodes.end(), leaf_pred_.begin(), leaf_pred_.end());
  for (const auto& e : table_) {
    if (e) nodes.push_back(*e);
  }
  std::sort(nodes.begin(), nodes.end(), [this](Key a, Key b) {
    return ring().distance(id_, a) < ring().distance(id_, b);
  });
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  std::erase(nodes, id_);
  return nodes;
}

std::optional<Key> PastryNode::next_hop(Key key) const {
  if (covers(key)) return std::nullopt;

  // Leaf-set completion: if the key falls inside the leaf span, hand it
  // to the leaf that covers it (successor-of-key among the leaves).
  if (!leaf_succ_.empty() &&
      ring().in_open_closed(id_, leaf_succ_.back(), key)) {
    for (Key l : leaf_succ_) {
      if (ring().in_open_closed(id_, l, key)) return l;
    }
  }

  // Prefix routing: the row-r entry shares r bits with us and differs at
  // bit r; if `key` also differs from us exactly at bit r, that entry is
  // one prefix digit closer to key.
  const unsigned shared = shared_prefix_bits(key);
  if (shared < ring().bits() && table_[shared]) {
    return table_[shared];
  }

  // Rare case: no table entry — fall back to the closest known node
  // strictly preceding the key (guaranteed ring progress, like Chord).
  std::optional<Key> best;
  std::uint64_t best_dist = 0;
  for (Key c : known_nodes_by_distance()) {
    if (!ring().in_open_closed(id_, key, c)) continue;
    const std::uint64_t d = ring().distance(id_, c);
    if (!best || d > best_dist) {
      best = c;
      best_dist = d;
    }
  }
  if (best) return best;
  if (!leaf_succ_.empty()) return leaf_succ_.front();
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Unicast
// ---------------------------------------------------------------------------

void PastryNode::send(Key key, PayloadPtr payload) {
  RouteMsg msg{key, std::move(payload), 0};
  if (covers(key)) {
    net_.self_deliver([this, msg = std::move(msg)] { deliver_route(msg); });
    return;
  }
  handle_route(std::move(msg));
}

void PastryNode::deliver_route(const RouteMsg& msg) {
  const MessageClass cls = msg.payload->message_class();
  net_.traffic().record_delivery(cls);
  net_.traffic().record_route_complete(cls, msg.hops);
  net_.hot().route_hops->add(msg.hops);
  if (app_ != nullptr) app_->on_deliver(msg.target, msg.payload);
}

void PastryNode::handle_route(RouteMsg msg) {
  if (covers(msg.target)) {
    deliver_route(msg);
    return;
  }
  if (msg.hops >= config().max_route_hops) {
    net_.hot().route_dropped->inc();
    if (auto* ts = net_.trace_sink()) {
      const auto now = net_.sim().now();
      ts->emit(hop_ref(msg.payload, msg.parent_span), SpanKind::kDrop, id_,
               now, now, static_cast<std::uint64_t>(DropReason::kMaxHops),
               msg.hops);
    }
    return;
  }
  const auto nh = next_hop(msg.target);
  if (!nh) {
    net_.hot().route_no_candidate->inc();
    if (auto* ts = net_.trace_sink()) {
      const auto now = net_.sim().now();
      ts->emit(hop_ref(msg.payload, msg.parent_span), SpanKind::kDrop, id_,
               now, now,
               static_cast<std::uint64_t>(DropReason::kNoCandidate),
               msg.hops);
    }
    return;
  }
  const MessageClass cls = msg.payload->message_class();
  RouteMsg out = std::move(msg);
  ++out.hops;
  if (auto* ts = net_.trace_sink()) {
    const auto now = net_.sim().now();
    const std::uint64_t span =
        ts->emit(hop_ref(out.payload, out.parent_span), SpanKind::kRouteHop,
                 id_, now, now, out.target, out.hops);
    if (span != 0) out.parent_span = span;
  }
  transmit(*nh, std::move(out), cls);
}

// ---------------------------------------------------------------------------
// m-cast / chain
// ---------------------------------------------------------------------------

void PastryNode::m_cast(std::vector<Key> keys, PayloadPtr payload) {
  if (keys.empty()) return;
  run_mcast(std::move(keys), payload, 0, /*initiator=*/true);
}

void PastryNode::run_mcast(std::vector<Key> keys, const PayloadPtr& payload,
                           std::uint32_t hops, bool initiator,
                           std::uint64_t parent_span) {
  if (hops >= config().max_route_hops) {
    net_.hot().mcast_dropped_keys->inc(keys.size());
    if (auto* ts = net_.trace_sink()) {
      const auto now = net_.sim().now();
      ts->emit(hop_ref(payload, parent_span), SpanKind::kDrop, id_, now, now,
               static_cast<std::uint64_t>(DropReason::kMaxHops), keys.size());
    }
    return;
  }
  const std::vector<Key> candidates = known_nodes_by_distance();
  const overlay::McastPartition part = overlay::partition_mcast_targets(
      ring(), id_, [this](Key k) { return covers(k); }, std::move(keys),
      candidates);

  if (!part.local.empty() && app_ != nullptr) {
    const MessageClass cls = payload->message_class();
    net_.traffic().record_delivery(cls);
    if (initiator) {
      PayloadPtr p = payload;
      std::vector<Key> covered = part.local;
      net_.self_deliver([this, covered = std::move(covered), p] {
        app_->on_deliver_mcast(covered, p);
      });
    } else {
      app_->on_deliver_mcast(part.local, payload);
    }
  }
  if (!part.undeliverable.empty()) {
    net_.hot().mcast_dropped_keys->inc(part.undeliverable.size());
    if (auto* ts = net_.trace_sink()) {
      const auto now = net_.sim().now();
      ts->emit(hop_ref(payload, parent_span), SpanKind::kDrop, id_, now, now,
               static_cast<std::uint64_t>(DropReason::kMcastDead),
               part.undeliverable.size());
    }
  }
  std::size_t branches = 0;
  std::size_t delegated_keys = 0;
  for (const auto& d : part.delegated) {
    if (d.empty()) continue;
    ++branches;
    delegated_keys += d.size();
  }
  std::uint64_t split_span = parent_span;
  if (branches > 0) {
    net_.hot().mcast_fanout->add(static_cast<double>(branches));
    if (auto* ts = net_.trace_sink()) {
      const auto now = net_.sim().now();
      const std::uint64_t span =
          ts->emit(hop_ref(payload, parent_span), SpanKind::kMcastSplit, id_,
                   now, now, delegated_keys + part.local.size(), branches);
      if (span != 0) split_span = span;
    }
  }
  const MessageClass cls = payload->message_class();
  for (std::size_t j = 0; j < candidates.size(); ++j) {
    if (part.delegated[j].empty()) continue;
    transmit(candidates[j],
             McastMsg{part.delegated[j], payload, hops + 1, 0, split_span},
             cls);
  }
}

void PastryNode::chain_cast(std::vector<Key> keys, PayloadPtr payload) {
  if (keys.empty()) return;
  run_chain(std::move(keys), payload, 0, /*initiator=*/true);
}

void PastryNode::run_chain(std::vector<Key> keys, const PayloadPtr& payload,
                           std::uint32_t hops, bool initiator,
                           std::uint64_t parent_span) {
  std::sort(keys.begin(), keys.end(), [this](Key a, Key b) {
    return ring().distance(id_, a) < ring().distance(id_, b);
  });
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  std::vector<Key> covered;
  std::vector<Key> remaining;
  for (Key k : keys) (covers(k) ? covered : remaining).push_back(k);

  if (!covered.empty() && app_ != nullptr) {
    const MessageClass cls = payload->message_class();
    net_.traffic().record_delivery(cls);
    if (initiator) {
      PayloadPtr p = payload;
      net_.self_deliver(
          [this, covered, p] { app_->on_deliver_mcast(covered, p); });
    } else {
      app_->on_deliver_mcast(covered, payload);
    }
  }
  if (remaining.empty()) return;
  forward_chain(ChainMsg{std::move(remaining), payload, hops, 0, parent_span});
}

void PastryNode::forward_chain(ChainMsg msg) {
  if (msg.hops >= config().max_route_hops) {
    net_.hot().chain_dropped->inc();
    if (auto* ts = net_.trace_sink()) {
      const auto now = net_.sim().now();
      ts->emit(hop_ref(msg.payload, msg.parent_span), SpanKind::kDrop, id_,
               now, now, static_cast<std::uint64_t>(DropReason::kMaxHops),
               msg.targets.size());
    }
    return;
  }
  if (covers(msg.targets.front())) {
    run_chain(std::move(msg.targets), msg.payload, msg.hops,
              /*initiator=*/false, msg.parent_span);
    return;
  }
  const auto nh = next_hop(msg.targets.front());
  if (!nh) {
    net_.hot().chain_no_candidate->inc();
    if (auto* ts = net_.trace_sink()) {
      const auto now = net_.sim().now();
      ts->emit(hop_ref(msg.payload, msg.parent_span), SpanKind::kDrop, id_,
               now, now,
               static_cast<std::uint64_t>(DropReason::kNoCandidate),
               msg.targets.size());
    }
    return;
  }
  const MessageClass cls = msg.payload->message_class();
  ChainMsg out = std::move(msg);
  ++out.hops;
  if (auto* ts = net_.trace_sink()) {
    const auto now = net_.sim().now();
    const std::uint64_t span =
        ts->emit(hop_ref(out.payload, out.parent_span), SpanKind::kRouteHop,
                 id_, now, now, out.targets.front(), out.hops);
    if (span != 0) out.parent_span = span;
  }
  transmit(*nh, std::move(out), cls);
}

// ---------------------------------------------------------------------------
// Neighbor sends
// ---------------------------------------------------------------------------

void PastryNode::send_to_successor(PayloadPtr payload) {
  if (!leaf_succ_.empty()) {
    const MessageClass cls = payload->message_class();
    transmit(leaf_succ_.front(), NeighborMsg{std::move(payload)}, cls);
    return;
  }
  if (app_ != nullptr) {
    PayloadPtr p = std::move(payload);
    net_.self_deliver([this, p] { app_->on_deliver(id_, p); });
  }
}

void PastryNode::send_to_predecessor(PayloadPtr payload) {
  if (!leaf_pred_.empty()) {
    const MessageClass cls = payload->message_class();
    transmit(leaf_pred_.front(), NeighborMsg{std::move(payload)}, cls);
    return;
  }
  if (app_ != nullptr) {
    PayloadPtr p = std::move(payload);
    net_.self_deliver([this, p] { app_->on_deliver(id_, p); });
  }
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

void PastryNode::receive(Key from, WireMessage msg) {
  const logctx::ScopedNode log_node(id_);
  // Reliability: ack every seq-stamped message, then suppress
  // retransmits we already processed (the ack is re-sent — a duplicate
  // means our previous ack was lost in flight).
  if (const std::uint64_t* seq = seq_field(msg);
      seq != nullptr && *seq != 0) {
    transmit(from, AckMsg{*seq}, MessageClass::kControl);
    if (!seen_seqs_[from].insert(*seq).second) {
      net_.hot().dup_suppressed->inc();
      if (auto* ts = net_.trace_sink()) {
        if (const auto t = wire_ref(msg); t.sampled()) {
          const auto now = net_.sim().now();
          ts->emit(t, SpanKind::kDrop, id_, now, now,
                   static_cast<std::uint64_t>(DropReason::kDuplicate));
        }
      }
      return;
    }
  }

  std::visit(
      [&](auto&& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, RouteMsg>) {
          handle_route(std::move(m));
        } else if constexpr (std::is_same_v<T, McastMsg>) {
          run_mcast(std::move(m.targets), m.payload, m.hops,
                    /*initiator=*/false, m.parent_span);
        } else if constexpr (std::is_same_v<T, ChainMsg>) {
          if (covers(m.targets.front())) {
            run_chain(std::move(m.targets), m.payload, m.hops,
                      /*initiator=*/false, m.parent_span);
          } else {
            forward_chain(std::move(m));
          }
        } else if constexpr (std::is_same_v<T, NeighborMsg>) {
          if (app_ != nullptr) app_->on_deliver(id_, m.payload);
        } else if constexpr (std::is_same_v<T, AckMsg>) {
          handle_ack(m.acked_seq);
        }
      },
      msg);
}

}  // namespace cbps::pastry
