#include <algorithm>
#include <utility>

#include "cbps/common/hash.hpp"
#include "cbps/pastry/pastry.hpp"

namespace cbps::pastry {

PastryNetwork::HotStats::HotStats(metrics::Registry& reg)
    : send_to_dead(reg.counter_handle("pastry.send_to_dead")),
      retransmits(reg.counter_handle("pastry.retransmits")),
      send_failed(reg.counter_handle("pastry.send_failed")),
      dup_suppressed(reg.counter_handle("pastry.dup_suppressed")),
      route_dropped(reg.counter_handle("pastry.route_dropped")),
      route_no_candidate(reg.counter_handle("pastry.route_no_candidate")),
      mcast_dropped_keys(reg.counter_handle("pastry.mcast_dropped_keys")),
      chain_dropped(reg.counter_handle("pastry.chain_dropped")),
      chain_no_candidate(reg.counter_handle("pastry.chain_no_candidate")),
      net_lost(reg.counter_handle("pastry.net.lost")),
      route_hops(reg.histogram_handle("pastry.route_hops")),
      mcast_fanout(reg.histogram_handle("pastry.mcast_fanout")),
      retries_per_send(reg.histogram_handle("pastry.retries_per_send")) {
  for (std::size_t c = 0; c < overlay::kMessageClassCount; ++c) {
    net_lost_by_class[c] = reg.counter_handle(
        std::string("pastry.net.lost.") +
        std::string(overlay::to_string(static_cast<overlay::MessageClass>(c))));
  }
}

namespace {

// SplitMix64 finalizer: decorrelates per-sender wire streams derived
// from (run seed, node id). Same mixer as ChordNetwork.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

PastryNetwork::PastryNetwork(sim::SimulatorBase& sim, PastryConfig cfg,
                             std::uint64_t seed,
                             std::unique_ptr<sim::LatencyModel> latency)
    : sim_(sim),
      cfg_(cfg),
      seed_(seed),
      rng_(seed),
      latency_(latency ? std::move(latency) : sim::default_latency()) {
  if (cfg_.loss_rate > 0.0) {
    loss_ = std::make_unique<sim::UniformLoss>(cfg_.loss_rate);
  }
}

PastryNetwork::~PastryNetwork() {
  // Retry timers reference the simulator and capture node pointers;
  // cancel them while the nodes still exist.
  for (auto& [_, n] : nodes_) n->cancel_pending_sends();
}

PastryNode& PastryNetwork::add_node(const std::string& name) {
  Key id = consistent_hash(name, cfg_.ring);
  int salt = 0;
  while (nodes_.contains(id)) {
    id = consistent_hash(name + "#" + std::to_string(salt++), cfg_.ring);
  }
  return add_node_with_id(id, name);
}

PastryNode& PastryNetwork::add_node_with_id(Key id, std::string name) {
  CBPS_ASSERT(!nodes_.contains(id));
  // Wire streams are pure functions of (run seed, node id): identical
  // regardless of engine flavor or node-creation order.
  WireState ws{sim_.register_domain(),
               Rng(mix64(seed_ ^ mix64(id))),
               Rng(mix64(seed_ ^ mix64(id) ^ 0x9e3779b97f4a7c15ull)),
               loss_ ? loss_->clone() : nullptr};
  auto node =
      std::make_unique<PastryNode>(*this, id, std::move(name), ws.domain);
  PastryNode& ref = *node;
  nodes_.emplace(id, std::move(node));
  wire_.emplace(id, std::move(ws));
  ids_.insert(std::lower_bound(ids_.begin(), ids_.end(), id), id);
  return ref;
}

void PastryNetwork::build_static_ring() {
  const std::vector<Key>& sorted = ids_;
  const std::size_t n = sorted.size();
  CBPS_ASSERT(n > 0);
  const unsigned m = cfg_.ring.bits();

  for (std::size_t i = 0; i < n; ++i) {
    const Key id = sorted[i];

    std::vector<Key> pred;
    std::vector<Key> succ;
    for (std::size_t j = 1; j <= cfg_.leaf_set_size && j < n; ++j) {
      pred.push_back(sorted[(i + n - j) % n]);
      succ.push_back(sorted[(i + j) % n]);
    }

    // Routing table: row r holds some node sharing the top r bits with
    // `id` and differing at bit r (bit 0 = most significant). The id
    // subtree with that prefix is a contiguous key interval.
    std::vector<std::optional<Key>> table(m);
    for (unsigned r = 0; r < m; ++r) {
      const unsigned low_bits = m - r - 1;
      const Key prefix = id >> (low_bits + 1);
      const Key flipped_bit = ((id >> low_bits) & 1) ^ 1;
      const Key lo = ((prefix << 1) | flipped_bit) << low_bits;
      const Key hi = lo | ((Key{1} << low_bits) - 1);
      auto it = std::lower_bound(ids_.begin(), ids_.end(), lo);
      if (it != ids_.end() && *it <= hi) {
        table[r] = *it;
      }
    }
    nodes_.at(id)->install_state(std::move(pred), std::move(succ),
                                 std::move(table));
  }
}

PastryNode* PastryNetwork::node(Key id) {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second.get();
}

PastryNode& PastryNetwork::node_at(std::size_t i) {
  CBPS_ASSERT(i < ids_.size());
  return *nodes_.at(ids_[i]);
}

Key PastryNetwork::oracle_successor(Key key) const {
  CBPS_ASSERT(!ids_.empty());
  auto it = std::lower_bound(ids_.begin(), ids_.end(), key);
  return it == ids_.end() ? ids_.front() : *it;
}

namespace {

std::size_t wire_size_bytes(const WireMessage& msg) {
  return std::visit(
      [](const auto& m) -> std::size_t {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, RouteMsg>) {
          return m.payload->size_bytes() + 8;
        } else if constexpr (std::is_same_v<T, McastMsg> ||
                             std::is_same_v<T, ChainMsg>) {
          return m.payload->size_bytes() + 8 * m.targets.size();
        } else if constexpr (std::is_same_v<T, NeighborMsg>) {
          return m.payload->size_bytes();
        } else {
          return 16;  // AckMsg
        }
      },
      msg);
}

}  // namespace

bool PastryNetwork::transmit(Key from, Key to, WireMessage msg,
                             overlay::MessageClass cls) {
  if (!std::binary_search(ids_.begin(), ids_.end(), to)) return false;
  traffic_.record_hop(cls, wire_size_bytes(msg));

  // Only the sender's own streams are consulted, so a transmit issued
  // from node `from`'s event (or from exclusive global context) never
  // races with other shards.
  WireState& src_wire = wire_.at(from);
  if (src_wire.loss != nullptr && src_wire.loss->drop(src_wire.loss_rng)) {
    // The message hit the wire (hop/bytes recorded) but never arrives.
    hot_.net_lost->inc();
    hot_.net_lost_by_class[static_cast<std::size_t>(cls)]->inc();
    return true;
  }

  auto boxed = std::make_shared<WireMessage>(std::move(msg));
  const sim::SimTime delay = latency_->sample(src_wire.latency_rng);
  sim_.schedule_for(wire_.at(to).domain, sim_.now() + delay,
                    [this, from, to, boxed] {
                      if (!std::binary_search(ids_.begin(), ids_.end(), to))
                        return;
                      nodes_.at(to)->receive(from, std::move(*boxed));
                    });
  return true;
}

void PastryNetwork::self_deliver(std::function<void()> action) {
  sim_.schedule_after(0, std::move(action));
}

}  // namespace cbps::pastry
