#include "cbps/workload/trace.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "cbps/common/assert.hpp"

namespace cbps::workload {

std::uint64_t Trace::subscription_count() const {
  std::uint64_t n = 0;
  for (const TraceOp& op : ops_) {
    if (op.kind == TraceOp::Kind::kSubscribe) ++n;
  }
  return n;
}

std::uint64_t Trace::publication_count() const {
  std::uint64_t n = 0;
  for (const TraceOp& op : ops_) {
    if (op.kind == TraceOp::Kind::kPublish) ++n;
  }
  return n;
}

void Trace::save(std::ostream& os) const {
  os << "# cbps workload trace v1\n";
  for (const TraceOp& op : ops_) {
    switch (op.kind) {
      case TraceOp::Kind::kSubscribe: {
        os << "sub " << op.at << ' ' << op.node << ' ' << op.sub_id << ' ';
        if (op.ttl == sim::kSimTimeNever) {
          os << "never";
        } else {
          os << op.ttl;
        }
        for (const pubsub::Constraint& c : op.constraints) {
          os << ' ' << c.attribute << ':' << c.range.lo << ':'
             << c.range.hi;
        }
        os << '\n';
        break;
      }
      case TraceOp::Kind::kUnsubscribe:
        os << "unsub " << op.at << ' ' << op.node << ' ' << op.sub_id
           << '\n';
        break;
      case TraceOp::Kind::kPublish: {
        os << "pub " << op.at << ' ' << op.node;
        for (Value v : op.values) os << ' ' << v;
        os << '\n';
        break;
      }
    }
  }
}

namespace {

bool fail(std::string* error, std::size_t line_no, const std::string& why) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line_no) + ": " + why;
  }
  return false;
}

bool parse_line(const std::string& line, std::size_t line_no, Trace* trace,
                std::string* error) {
  std::istringstream in(line);
  std::string verb;
  in >> verb;
  if (verb.empty() || verb[0] == '#') return true;

  TraceOp op;
  if (verb == "sub") {
    op.kind = TraceOp::Kind::kSubscribe;
    std::string ttl;
    if (!(in >> op.at >> op.node >> op.sub_id >> ttl)) {
      return fail(error, line_no, "malformed sub header");
    }
    if (ttl == "never") {
      op.ttl = sim::kSimTimeNever;
    } else {
      try {
        op.ttl = std::stoull(ttl);
      } catch (...) {
        return fail(error, line_no, "bad ttl '" + ttl + "'");
      }
    }
    std::string c;
    while (in >> c) {
      const auto p1 = c.find(':');
      const auto p2 = c.find(':', p1 + 1);
      if (p1 == std::string::npos || p2 == std::string::npos) {
        return fail(error, line_no, "bad constraint '" + c + "'");
      }
      try {
        const std::size_t attr = std::stoull(c.substr(0, p1));
        const Value lo = std::stoll(c.substr(p1 + 1, p2 - p1 - 1));
        const Value hi = std::stoll(c.substr(p2 + 1));
        if (lo > hi) {
          return fail(error, line_no, "inverted range in '" + c + "'");
        }
        op.constraints.push_back({attr, {lo, hi}});
      } catch (...) {
        return fail(error, line_no, "bad constraint '" + c + "'");
      }
    }
  } else if (verb == "unsub") {
    op.kind = TraceOp::Kind::kUnsubscribe;
    if (!(in >> op.at >> op.node >> op.sub_id)) {
      return fail(error, line_no, "malformed unsub");
    }
  } else if (verb == "pub") {
    op.kind = TraceOp::Kind::kPublish;
    if (!(in >> op.at >> op.node)) {
      return fail(error, line_no, "malformed pub header");
    }
    Value v;
    while (in >> v) op.values.push_back(v);
    if (op.values.empty()) {
      return fail(error, line_no, "publication with no values");
    }
  } else {
    return fail(error, line_no, "unknown verb '" + verb + "'");
  }
  trace->add(std::move(op));
  return true;
}

}  // namespace

std::optional<Trace> Trace::load(std::istream& is, std::string* error) {
  Trace trace;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (!parse_line(line, line_no, &trace, error)) return std::nullopt;
  }
  return trace;
}

// ---------------------------------------------------------------------------
// TraceReplayer
// ---------------------------------------------------------------------------

TraceReplayer::TraceReplayer(pubsub::PubSubSystem& system,
                             const Trace& trace)
    : system_(system), trace_(trace) {}

void TraceReplayer::start() {
  for (const TraceOp& op : trace_.ops()) {
    CBPS_ASSERT_MSG(op.at >= system_.sim().now(),
                    "trace ops must not precede the current time");
    system_.sim().schedule_at(op.at, [this, &op] { apply(op); });
  }
}

void TraceReplayer::apply(const TraceOp& op) {
  if (op.node >= system_.node_count()) {
    ++skipped_;
    return;
  }
  switch (op.kind) {
    case TraceOp::Kind::kSubscribe: {
      const auto sub =
          system_.subscribe(op.node, op.constraints, op.ttl);
      sub_ids_[op.sub_id] = {op.node, sub->id};
      break;
    }
    case TraceOp::Kind::kUnsubscribe: {
      const auto it = sub_ids_.find(op.sub_id);
      if (it == sub_ids_.end()) {
        ++skipped_;
        return;
      }
      system_.unsubscribe(it->second.first, it->second.second);
      break;
    }
    case TraceOp::Kind::kPublish:
      system_.publish(op.node, op.values);
      break;
  }
  ++replayed_;
}

}  // namespace cbps::workload
