#include "cbps/workload/churn.hpp"

#include <vector>

namespace cbps::workload {

ChurnDriver::ChurnDriver(pubsub::PubSubSystem& system, ChurnParams params,
                         std::uint64_t seed, Protected is_protected)
    : system_(system),
      params_(params),
      rng_(seed),
      is_protected_(std::move(is_protected)) {}

void ChurnDriver::start() {
  CBPS_ASSERT_MSG(system_.config().chord.stabilize_period > 0,
                  "churn requires Chord maintenance to be enabled");
  schedule_next();
}

void ChurnDriver::schedule_next() {
  if (stopped_ || events() >= params_.max_events) return;
  const double wait_s = rng_.exponential(params_.mean_interval_s);
  system_.sim().schedule_after(sim::from_seconds(wait_s),
                               [this] { fire(); });
}

std::optional<std::size_t> ChurnDriver::pick_victim() {
  std::vector<std::size_t> candidates;
  std::size_t alive = 0;
  for (std::size_t i = 0; i < system_.node_count(); ++i) {
    const Key id = system_.node_id(i);
    if (!system_.network().is_alive(id)) continue;
    ++alive;
    if (is_protected_ && is_protected_(id)) continue;
    candidates.push_back(i);
  }
  if (alive <= params_.min_nodes || candidates.empty()) {
    return std::nullopt;
  }
  return candidates[static_cast<std::size_t>(rng_.uniform_int(
      0, static_cast<std::int64_t>(candidates.size()) - 1))];
}

void ChurnDriver::fire() {
  if (stopped_ || events() >= params_.max_events) return;
  const sim::SimTime now = system_.sim().now();
  if (rng_.bernoulli(params_.join_fraction)) {
    const std::size_t idx =
        system_.join_node("churn-join-" + std::to_string(join_seq_++));
    log_.push_back({ChurnEvent::Kind::kJoin, system_.node_id(idx), now});
    ++joins_;
  } else if (const auto victim = pick_victim()) {
    const Key victim_id = system_.node_id(*victim);
    if (rng_.bernoulli(params_.crash_fraction)) {
      system_.crash_node(*victim);
      log_.push_back({ChurnEvent::Kind::kCrash, victim_id, now});
      if (checker_ != nullptr) checker_->on_node_crashed(victim_id, now);
      ++crashes_;
    } else {
      system_.leave_node(*victim);
      log_.push_back({ChurnEvent::Kind::kLeave, victim_id, now});
      ++leaves_;
    }
  }
  schedule_next();
}

}  // namespace cbps::workload
