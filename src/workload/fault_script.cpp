#include "cbps/workload/fault_script.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <unordered_set>
#include <utility>

#include "cbps/sim/loss.hpp"

namespace cbps::workload {

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

namespace {

void fail(std::string* error, std::string msg) {
  if (error != nullptr) *error = std::move(msg);
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  while (true) {
    const std::size_t pos = s.find(sep);
    out.push_back(s.substr(0, pos));
    if (pos == std::string_view::npos) break;
    s.remove_prefix(pos + 1);
  }
  return out;
}

bool parse_double(std::string_view s, double* out) {
  const std::string tmp(s);
  char* end = nullptr;
  const double v = std::strtod(tmp.c_str(), &end);
  if (end != tmp.c_str() + tmp.size()) return false;
  *out = v;
  return true;
}

bool parse_prob(std::string_view s, double* out) {
  return parse_double(s, out) && *out >= 0.0 && *out <= 1.0;
}

bool parse_time_s(std::string_view s, sim::SimTime* out) {
  double secs = 0.0;
  if (!parse_double(s, &secs) || secs < 0.0) return false;
  *out = sim::from_seconds(secs);
  return true;
}

bool parse_count(std::string_view s, std::size_t* out) {
  double v = 0.0;
  if (!parse_double(s, &v) || v < 1.0 || v != std::floor(v)) return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

}  // namespace

bool FaultScript::needs_reliable_transport() const {
  return std::any_of(directives.begin(), directives.end(),
                     [](const FaultDirective& d) {
                       return d.kind == FaultDirective::Kind::kPartition ||
                              d.kind == FaultDirective::Kind::kLoss ||
                              d.kind == FaultDirective::Kind::kCrashBurst;
                     });
}

sim::SimTime FaultScript::all_clear_at() const {
  sim::SimTime clear = 0;
  for (const FaultDirective& d : directives) {
    clear = std::max(
        clear, d.until != sim::kSimTimeNever ? d.until : d.at);
  }
  return clear;
}

std::optional<FaultScript> FaultScript::parse(std::string_view text,
                                              std::string* error) {
  FaultScript script;
  std::vector<std::string_view> statements;
  for (std::string_view line : split(text, '\n')) {
    // Strip comments before splitting on ';'.
    if (const std::size_t hash = line.find('#');
        hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    for (std::string_view stmt : split(line, ';')) {
      stmt = trim(stmt);
      if (!stmt.empty()) statements.push_back(stmt);
    }
  }

  for (std::string_view stmt : statements) {
    std::vector<std::string_view> tokens;
    for (std::string_view t : split(stmt, ' ')) {
      t = trim(t);
      if (!t.empty()) tokens.push_back(t);
    }
    FaultDirective d;
    const std::string_view name = tokens.front();
    bool has_at = false;
    if (name == "partition") {
      d.kind = FaultDirective::Kind::kPartition;
    } else if (name == "loss") {
      d.kind = FaultDirective::Kind::kLoss;
    } else if (name == "slow") {
      d.kind = FaultDirective::Kind::kSlow;
    } else if (name == "crash_burst") {
      d.kind = FaultDirective::Kind::kCrashBurst;
    } else if (name == "checkpoint") {
      d.kind = FaultDirective::Kind::kCheckpoint;
      d.label = "checkpoint";
    } else {
      fail(error, "unknown directive '" + std::string(name) + "'");
      return std::nullopt;
    }

    std::string_view model = "uniform";
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      const std::size_t eq = tokens[i].find('=');
      if (eq == std::string_view::npos) {
        fail(error, "expected key=value, got '" + std::string(tokens[i]) +
                        "' in '" + std::string(stmt) + "'");
        return std::nullopt;
      }
      const std::string_view key = tokens[i].substr(0, eq);
      const std::string_view val = tokens[i].substr(eq + 1);
      bool ok = true;
      if (key == "at") {
        ok = parse_time_s(val, &d.at);
        has_at = ok;
      } else if (key == "until" || key == "heal") {
        ok = parse_time_s(val, &d.until);
      } else if (key == "frac") {
        ok = parse_prob(val, &d.frac) && d.frac > 0.0 && d.frac < 1.0;
      } else if (key == "model") {
        model = val;
        ok = val == "uniform" || val == "ge";
      } else if (key == "rate") {
        ok = parse_prob(val, &d.rate);
      } else if (key == "p") {
        ok = parse_prob(val, &d.ge_p);
      } else if (key == "q") {
        ok = parse_prob(val, &d.ge_q);
      } else if (key == "good") {
        ok = parse_prob(val, &d.ge_good);
      } else if (key == "bad") {
        ok = parse_prob(val, &d.ge_bad);
      } else if (key == "nodes") {
        ok = parse_count(val, &d.nodes);
      } else if (key == "factor") {
        ok = parse_double(val, &d.factor) && d.factor >= 1.0;
      } else if (key == "count") {
        ok = parse_count(val, &d.count);
      } else if (key == "correlation") {
        ok = parse_prob(val, &d.correlation);
      } else if (key == "label") {
        d.label = std::string(val);
      } else {
        fail(error, "unknown key '" + std::string(key) + "' in '" +
                        std::string(stmt) + "'");
        return std::nullopt;
      }
      if (!ok) {
        fail(error, "bad value for '" + std::string(key) + "' in '" +
                        std::string(stmt) + "'");
        return std::nullopt;
      }
    }

    if (!has_at) {
      fail(error, "directive '" + std::string(stmt) + "' needs at=<secs>");
      return std::nullopt;
    }
    if (d.until != sim::kSimTimeNever && d.until <= d.at) {
      fail(error, "until/heal must be later than at in '" +
                      std::string(stmt) + "'");
      return std::nullopt;
    }
    d.loss_kind = model == "ge" ? FaultDirective::LossKind::kGilbertElliott
                                : FaultDirective::LossKind::kUniform;
    script.directives.push_back(std::move(d));
  }
  return script;
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

FaultScriptRunner::FaultScriptRunner(pubsub::PubSubSystem& system,
                                     FaultScript script, std::uint64_t seed,
                                     Protected is_protected)
    : system_(system),
      script_(std::move(script)),
      rng_(seed ^ 0xfa017c7a5c31ull),
      is_protected_(std::move(is_protected)) {}

void FaultScriptRunner::start() {
  sim::SimulatorBase& sim = system_.sim();
  for (const FaultDirective& d : script_.directives) {
    sim.schedule_at(std::max(d.at, sim.now()), [this, &d] { apply(d); });
  }
}

void FaultScriptRunner::apply(const FaultDirective& d) {
  switch (d.kind) {
    case FaultDirective::Kind::kPartition:
      apply_partition(d);
      break;
    case FaultDirective::Kind::kLoss:
      apply_loss(d);
      break;
    case FaultDirective::Kind::kSlow:
      apply_slow(d);
      break;
    case FaultDirective::Kind::kCrashBurst:
      apply_crash_burst(d);
      break;
    case FaultDirective::Kind::kCheckpoint:
      if (on_checkpoint_) on_checkpoint_(d.label, system_.sim().now());
      break;
  }
}

void FaultScriptRunner::apply_partition(const FaultDirective& d) {
  chord::ChordNetwork& net = system_.network();
  const std::vector<Key> ids = net.alive_ids();
  const std::size_t n = ids.size();
  if (n < 2) return;

  // Minority group: a contiguous arc of ceil(frac * n) nodes starting at
  // a seeded offset — contiguous, because that is the hard case for ring
  // repair (both cut points fall inside one coverage gap).
  std::size_t cut = static_cast<std::size_t>(
      std::ceil(d.frac * static_cast<double>(n)));
  cut = std::min(cut, n - 1);
  const auto off = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(n) - 1));
  std::vector<Key> minority;
  minority.reserve(cut);
  for (std::size_t i = 0; i < cut; ++i) {
    minority.push_back(ids[(off + i) % n]);
  }
  net.set_partition({minority});
  ++partitions_;

  if (d.until == sim::kSimTimeNever) return;
  system_.sim().schedule_at(d.until, [this] {
    system_.network().heal_partition();
    last_heal_at_ = system_.sim().now();
    // Ownership has been reshuffled across the cut; once stabilization
    // has had a couple of rounds to re-merge the ring, rebuild every
    // replica chain along the restored successor order. Subscribers also
    // refresh their soft state: a subscription issued *during* the cut
    // toward the other side exhausts its retry budget and is never
    // stored — only the subscriber can re-issue it.
    schedule_re_replication(/*refresh_subs=*/true);
  });
}

void FaultScriptRunner::apply_loss(const FaultDirective& d) {
  chord::ChordNetwork& net = system_.network();
  if (d.loss_kind == FaultDirective::LossKind::kGilbertElliott) {
    net.set_loss_model(std::make_unique<sim::GilbertElliottLoss>(
        d.ge_p, d.ge_q, d.ge_good, d.ge_bad));
  } else {
    net.set_loss_model(std::make_unique<sim::UniformLoss>(d.rate));
  }
  ++loss_swaps_;
  if (d.until == sim::kSimTimeNever) return;
  system_.sim().schedule_at(d.until, [this] {
    system_.network().set_loss_model(nullptr);
    ++loss_swaps_;
  });
}

void FaultScriptRunner::apply_slow(const FaultDirective& d) {
  chord::ChordNetwork& net = system_.network();
  std::vector<Key> candidates;
  for (Key id : net.alive_ids()) {
    if (is_protected_ && is_protected_(id)) continue;
    if (net.slow_factor(id) > 1.0) continue;  // already gray
    candidates.push_back(id);
  }
  std::vector<Key> chosen;
  for (std::size_t i = 0; i < d.nodes && !candidates.empty(); ++i) {
    const auto j = static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(candidates.size()) - 1));
    chosen.push_back(candidates[j]);
    candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(j));
  }
  for (Key id : chosen) net.set_slow_factor(id, d.factor);
  slow_marks_ += chosen.size();

  if (d.until == sim::kSimTimeNever || chosen.empty()) return;
  system_.sim().schedule_at(d.until, [this, chosen] {
    for (Key id : chosen) system_.network().set_slow_factor(id, 1.0);
  });
}

void FaultScriptRunner::apply_crash_burst(const FaultDirective& d) {
  chord::ChordNetwork& net = system_.network();
  std::optional<Key> last;
  for (std::size_t i = 0; i < d.count; ++i) {
    if (net.alive_count() <= 2) return;  // keep a workable ring
    const std::vector<Key> ids = net.alive_ids();
    std::vector<Key> candidates;
    for (Key id : ids) {
      if (is_protected_ && is_protected_(id)) continue;
      candidates.push_back(id);
    }
    if (candidates.empty()) return;

    Key victim = 0;
    if (last && rng_.bernoulli(d.correlation)) {
      // Correlated failure: take the ring successor of the previous
      // victim (correlated crashes of adjacent nodes are what defeats
      // successor-list replication).
      victim = net.oracle_successor(net.ring().add(*last, 1));
      if (is_protected_ && is_protected_(victim)) {
        victim = candidates[static_cast<std::size_t>(rng_.uniform_int(
            0, static_cast<std::int64_t>(candidates.size()) - 1))];
      }
    } else {
      victim = candidates[static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(candidates.size()) - 1))];
    }
    const sim::SimTime now = system_.sim().now();
    system_.crash_node(system_.index_of(victim));
    if (checker_ != nullptr) checker_->on_node_crashed(victim, now);
    ++crashes_;
    last = victim;
  }

  // As after a heal: once the survivors have re-stabilized around the
  // holes, rebuild the replica chains (let replica holders whose owner
  // died adopt their records), and have subscribers re-issue — a
  // correlated burst can take out an entire owner+replica chain, which
  // only the subscriber's own soft state can restore.
  schedule_re_replication(/*refresh_subs=*/true);
}

void FaultScriptRunner::schedule_re_replication(bool refresh_subs) {
  const sim::SimTime period = system_.config().chord.stabilize_period;
  if (period == 0 || (system_.config().pubsub.replication_factor == 0 &&
                      !refresh_subs)) {
    return;
  }
  // Two passes: an early one catches the common case, a late one re-runs
  // after a large contiguous hole (several adjacent crashes, or a whole
  // partition arc) has taken extra stabilization rounds to close.
  const auto pass = [this, refresh_subs] {
    system_.re_replicate_all();
    if (refresh_subs) system_.refresh_all_subscriptions();
  };
  system_.sim().schedule_after(2 * period, pass);
  system_.sim().schedule_after(8 * period, pass);
}

}  // namespace cbps::workload
