#include "cbps/workload/generator.hpp"

#include <algorithm>
#include <cmath>

namespace cbps::workload {

using pubsub::Constraint;
using pubsub::Subscription;

namespace {

std::uint64_t gcd64(std::uint64_t a, std::uint64_t b) {
  while (b != 0) {
    const std::uint64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

}  // namespace

WorkloadGenerator::WorkloadGenerator(pubsub::Schema schema,
                                     WorkloadParams params,
                                     std::uint64_t seed)
    : schema_(std::move(schema)), params_(std::move(params)), rng_(seed) {
  zipf_.reserve(schema_.dimensions());
  rank_multiplier_.reserve(schema_.dimensions());
  for (std::size_t i = 0; i < schema_.dimensions(); ++i) {
    zipf_.emplace_back(schema_.domain_size(i), params_.zipf_exponent);
    // Rank -> value bijection: Zipf models *popularity*, but the popular
    // values must be spread across the domain (consecutive ranks are not
    // neighboring values). (rank * m) mod |Omega| with gcd(m, |Omega|)=1
    // is a bijection that decorrelates rank from position.
    const std::uint64_t width = schema_.domain_size(i);
    std::uint64_t m = 2654435761ull % width;
    if (m == 0) m = 1;
    while (gcd64(m, width) != 1) ++m;
    rank_multiplier_.push_back(m);
  }
}

Value WorkloadGenerator::zipf_value(std::size_t attr) {
  const std::uint64_t rank = zipf_[attr](rng_);  // 1-based
  const std::uint64_t width = schema_.domain_size(attr);
  const std::uint64_t pos =
      static_cast<std::uint64_t>(
          (static_cast<Uint128>(rank) * rank_multiplier_[attr]) % width);
  return schema_.domain(attr).lo + static_cast<Value>(pos);
}

Constraint WorkloadGenerator::make_constraint(std::size_t attr) {
  const ClosedInterval dom = schema_.domain(attr);
  const bool selective = params_.is_selective(attr);
  const double frac = selective ? params_.selective_range_frac
                                : params_.nonselective_range_frac;

  // Range length uniform in [1, X] where X = frac * |Omega_i|.
  const auto x = std::max<Value>(
      1, static_cast<Value>(std::llround(
             frac * static_cast<double>(schema_.domain_size(attr)))));
  const Value len = rng_.uniform_int(1, x);

  // Center: Zipf-popular value for selective attributes (popularity
  // follows Zipf; the popular values are spread over the domain),
  // uniform otherwise.
  const Value center =
      selective ? zipf_value(attr) : rng_.uniform_int(dom.lo, dom.hi);

  Value lo = center - len / 2;
  Value hi = lo + len - 1;
  // Clamp by shifting so the range keeps its drawn length.
  if (lo < dom.lo) {
    hi += dom.lo - lo;
    lo = dom.lo;
  }
  if (hi > dom.hi) {
    lo -= hi - dom.hi;
    hi = dom.hi;
  }
  lo = std::max(lo, dom.lo);
  return Constraint{attr, ClosedInterval{lo, hi}};
}

std::vector<Constraint> WorkloadGenerator::make_constraints() {
  std::vector<Constraint> cs;
  cs.reserve(schema_.dimensions());
  for (std::size_t i = 0; i < schema_.dimensions(); ++i) {
    cs.push_back(make_constraint(i));
  }
  return cs;
}

std::vector<Value> WorkloadGenerator::make_random_values() {
  std::vector<Value> vs;
  vs.reserve(schema_.dimensions());
  for (std::size_t i = 0; i < schema_.dimensions(); ++i) {
    const ClosedInterval dom = schema_.domain(i);
    vs.push_back(rng_.uniform_int(dom.lo, dom.hi));
  }
  return vs;
}

std::vector<Value> WorkloadGenerator::make_matching_values(
    const Subscription& target) {
  std::vector<Value> vs;
  vs.reserve(schema_.dimensions());
  for (std::size_t i = 0; i < schema_.dimensions(); ++i) {
    const Constraint* c = target.constraint_on(i);
    const ClosedInterval r = c ? c->range : schema_.domain(i);
    vs.push_back(rng_.uniform_int(r.lo, r.hi));
  }
  return vs;
}

std::vector<Value> WorkloadGenerator::make_event_values(
    std::span<const pubsub::SubscriptionPtr> active) {
  if (!active.empty() && rng_.bernoulli(params_.matching_probability)) {
    const auto pick = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(active.size()) - 1));
    return make_matching_values(*active[pick]);
  }
  return make_random_values();
}

}  // namespace cbps::workload
