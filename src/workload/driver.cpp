#include "cbps/workload/driver.hpp"

#include <algorithm>

namespace cbps::workload {

using pubsub::SubscriptionPtr;

Driver::Driver(pubsub::PubSubSystem& system, WorkloadGenerator& gen,
               DriverParams params, pubsub::DeliveryChecker* checker,
               Trace* record)
    : system_(system),
      gen_(gen),
      params_(params),
      checker_(checker),
      record_(record) {
  if (checker_ != nullptr) {
    system_.set_notify_sink([this](Key subscriber,
                                   const pubsub::Notification& n) {
      checker_->on_notify(subscriber, n, system_.sim().now());
    });
  }
}

void Driver::start() {
  if (params_.max_subscriptions > 0) schedule_next_subscription();
  if (params_.max_publications > 0) schedule_next_publication();
}

void Driver::run_to_completion() {
  CBPS_ASSERT_MSG(
      params_.max_subscriptions !=
              std::numeric_limits<std::uint64_t>::max() &&
          params_.max_publications !=
              std::numeric_limits<std::uint64_t>::max(),
      "run_to_completion needs finite budgets");
  system_.quiesce();
  CBPS_ASSERT(finished());
}

std::size_t Driver::random_node() {
  // Only alive nodes issue operations (relevant under membership churn).
  for (int attempt = 0; attempt < 64; ++attempt) {
    const auto idx = static_cast<std::size_t>(gen_.rng().uniform_int(
        0, static_cast<std::int64_t>(system_.node_count()) - 1));
    if (system_.network().is_alive(system_.node_id(idx))) return idx;
  }
  // Degenerate fallback: scan for any alive node.
  for (std::size_t i = 0; i < system_.node_count(); ++i) {
    if (system_.network().is_alive(system_.node_id(i))) return i;
  }
  CBPS_ASSERT_MSG(false, "no alive nodes left");
  return 0;
}

void Driver::schedule_next_subscription() {
  system_.sim().schedule_after(params_.sub_interval,
                               [this] { inject_subscription(); });
}

void Driver::schedule_next_publication() {
  const double wait_s = gen_.rng().exponential(params_.pub_mean_interval_s);
  system_.sim().schedule_after(sim::from_seconds(wait_s),
                               [this] { inject_publication(); });
}

void Driver::inject_subscription() {
  const std::size_t node = random_node();
  const sim::SimTime now = system_.sim().now();
  const SubscriptionPtr sub =
      system_.subscribe(node, gen_.make_constraints(), params_.sub_ttl);

  const sim::SimTime expires_at = params_.sub_ttl == sim::kSimTimeNever
                                      ? sim::kSimTimeNever
                                      : now + params_.sub_ttl;
  active_.push_back(ActiveSub{sub, expires_at});
  if (checker_ != nullptr) checker_->on_subscribe(sub, now, expires_at);
  if (record_ != nullptr) {
    TraceOp op;
    op.kind = TraceOp::Kind::kSubscribe;
    op.at = now;
    op.node = node;
    op.sub_id = sub->id;
    op.ttl = params_.sub_ttl;
    op.constraints = sub->constraints;
    record_->add(std::move(op));
  }

  ++subs_issued_;
  if (subs_issued_ < params_.max_subscriptions) {
    schedule_next_subscription();
  }
}

void Driver::inject_publication() {
  const std::vector<SubscriptionPtr>& view = active_subscriptions();

  std::vector<Value> values;
  Rng& rng = gen_.rng();
  const bool stay_local =
      params_.event_locality > 0.0 &&
      (locality_anchor_ != nullptr || !anchor_values_.empty()) &&
      rng.bernoulli(params_.event_locality);
  if (stay_local && locality_anchor_ != nullptr) {
    // Temporally local run of matching events: stay inside the previous
    // event's subscription region.
    values = gen_.make_matching_values(*locality_anchor_);
  } else if (stay_local) {
    // Local run of non-matching events: small random walk around the
    // previous point (keeps the configured matching probability intact).
    values = anchor_values_;
    const pubsub::Schema& schema = gen_.schema();
    for (std::size_t i = 0; i < values.size(); ++i) {
      const ClosedInterval dom = schema.domain(i);
      const Value step = std::max<Value>(
          1, static_cast<Value>(dom.width() / 1000));
      values[i] = std::clamp(values[i] + rng.uniform_int(-step, step),
                             dom.lo, dom.hi);
    }
  } else if (!view.empty() &&
             rng.bernoulli(gen_.params().matching_probability)) {
    const auto pick = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(view.size()) - 1));
    locality_anchor_ = view[pick];
    anchor_values_.clear();
    values = gen_.make_matching_values(*locality_anchor_);
  } else {
    locality_anchor_ = nullptr;
    values = gen_.make_random_values();
    anchor_values_ = values;
  }
  const std::size_t node = random_node();
  const EventId id = system_.publish(node, values);
  if (record_ != nullptr) {
    TraceOp op;
    op.kind = TraceOp::Kind::kPublish;
    op.at = system_.sim().now();
    op.node = node;
    op.values = values;
    record_->add(std::move(op));
  }
  if (checker_ != nullptr) {
    auto event = std::make_shared<pubsub::Event>();
    event->id = id;
    event->values = values;
    checker_->on_publish(std::move(event), system_.sim().now());
  }
  ++pubs_issued_;
  if (pubs_issued_ < params_.max_publications) {
    schedule_next_publication();
  }
}

void Driver::prune_expired() {
  const sim::SimTime now = system_.sim().now();
  std::erase_if(active_, [now](const ActiveSub& a) {
    return a.expires_at != sim::kSimTimeNever && a.expires_at <= now;
  });
}

const std::vector<SubscriptionPtr>& Driver::active_subscriptions() {
  prune_expired();
  active_view_.clear();
  active_view_.reserve(active_.size());
  for (const ActiveSub& a : active_) active_view_.push_back(a.sub);
  return active_view_;
}

}  // namespace cbps::workload
