#include "cbps/sim/parallel_simulator.hpp"

#include <algorithm>
#include <utility>

#include "cbps/common/logging.hpp"

namespace cbps::sim {

namespace {

// Worker identity for the window currently executing on this thread.
// Null engine = not inside a parallel window (global context).
struct TlWorker {
  ParallelSimulator* engine = nullptr;
  std::uint32_t core = 0;
};
thread_local TlWorker tl_worker;

std::uint64_t global_clock_now_us(const void* ctx) {
  return static_cast<const ParallelSimulator*>(ctx)->now();
}

}  // namespace

ParallelSimulator::ParallelSimulator(unsigned threads, SimTime lookahead)
    : shards_(std::max(1u, threads)),
      lookahead_(lookahead),
      pool_(shards_) {
  CBPS_ASSERT_MSG(shards_ <= 63, "EventId core field is 6 bits");
  CBPS_ASSERT_MSG(lookahead_ > 0,
                  "zero lookahead would deadlock the epoch barrier; use "
                  "the serial engine for zero-delay latency models");
  cores_.reserve(shards_ + 1);
  for (std::uint32_t c = 0; c <= shards_; ++c) {
    cores_.push_back(std::make_unique<CoreState>(c));
  }
}

ParallelSimulator::~ParallelSimulator() = default;

SimTime ParallelSimulator::now() const {
  const TlWorker& tl = tl_worker;
  if (tl.engine == this) return cores_[tl.core]->cur_time;
  return now_;
}

std::uint64_t ParallelSimulator::next_key(Domain actor) {
  if (actor == 0) {
    CBPS_ASSERT_MSG(tl_worker.engine != this,
                    "global-domain scheduling from a worker");
    return detail::make_key(0, global_seq_++);
  }
  CBPS_ASSERT_MSG(actor < next_domain_,
                  "acting domain not registered with this engine");
  const std::uint32_t i = actor - 1;
  return detail::make_key(actor,
                          dom_seq_[i / kDomainBlock].v[i % kDomainBlock]++);
}

ParallelSimulator::EventId ParallelSimulator::schedule_at(SimTime t,
                                                          Callback cb) {
  const Domain actor = common::exec_context().actor_domain;
  const std::uint32_t core = core_of(actor);
  if (tl_worker.engine == this) {
    CBPS_ASSERT_MSG(core == tl_worker.core,
                    "worker scheduling onto a foreign shard without "
                    "schedule_for");
  } else {
    CBPS_ASSERT_MSG(t >= now_, "scheduling into the past");
  }
  return cores_[core]->ev.schedule(t, next_key(actor), actor,
                                   std::move(cb));
}

ParallelSimulator::EventId ParallelSimulator::schedule_for(Domain target,
                                                           SimTime t,
                                                           Callback cb) {
  const Domain actor = common::exec_context().actor_domain;
  const std::uint64_t key = next_key(actor);
  const std::uint32_t tc = core_of(target);
  if (tl_worker.engine == this) {
    CoreState& own = *cores_[tl_worker.core];
    if (tc == tl_worker.core) {
      return own.ev.schedule(t, key, target, std::move(cb));
    }
    // Cross-shard: must be outside the running window (network
    // transmission delay >= lookahead guarantees this) so the target
    // shard cannot race with its own present.
    CBPS_ASSERT_MSG(t >= window_end_,
                    "cross-shard event inside the lookahead window");
    own.outbox.push_back(OutboxEntry{tc, target, t, key, std::move(cb)});
    return kInvalidEvent;
  }
  // Global context (barriers, setup). An event closer than one
  // lookahead runs on the global core so it keeps its canonical-key
  // position among the other global-context events at that time.
  CBPS_ASSERT_MSG(t >= now_, "scheduling into the past");
  const std::uint32_t core = t >= now_ + lookahead_ ? tc : 0u;
  return cores_[core]->ev.schedule(t, key, target, std::move(cb));
}

bool ParallelSimulator::cancel(EventId id) {
  if (id == kInvalidEvent) return false;
  const std::uint32_t core = detail::EventCore::core_of_id(id);
  CBPS_ASSERT(core < cores_.size());
  CBPS_ASSERT_MSG(tl_worker.engine != this || core == tl_worker.core,
                  "cross-shard cancel from a worker");
  return cores_[core]->ev.cancel(id);
}

ParallelSimulator::TimerId ParallelSimulator::add_timer(SimTime period,
                                                        SimTime first_delay,
                                                        Callback cb) {
  CBPS_ASSERT_MSG(period > 0, "zero-period timer would livelock");
  const Domain owner = common::exec_context().actor_domain;
  const std::uint32_t core = core_of(owner);
  CBPS_ASSERT_MSG(tl_worker.engine != this || core == tl_worker.core,
                  "timer owned by a foreign shard");
  auto& ev = cores_[core]->ev;
  const std::uint64_t local = ev.next_timer_seq++;
  ev.timers.emplace(
      local, detail::EventCore::TimerState{
                 period, std::make_shared<Callback>(std::move(cb)),
                 kInvalidEvent, owner});
  auto& st = ev.timers.at(local);
  st.next_event =
      ev.schedule(now() + first_delay, next_key(owner), owner,
                  [this, core, local] { fire_timer(core, local); });
  return (static_cast<TimerId>(core) << 56) | local;
}

void ParallelSimulator::fire_timer(std::uint32_t core_idx,
                                   std::uint64_t local_id) {
  auto& ev = cores_[core_idx]->ev;
  auto it = ev.timers.find(local_id);
  CBPS_ASSERT(it != ev.timers.end());
  // Pin the body (the callback may cancel_timer, erasing the state);
  // rearm before the body runs, as the serial engine does.
  const std::shared_ptr<Callback> body = it->second.cb;
  auto& st = it->second;
  st.next_event = ev.schedule(
      now() + st.period, next_key(st.owner), st.owner,
      [this, core_idx, local_id] { fire_timer(core_idx, local_id); });
  (*body)();
}

bool ParallelSimulator::cancel_timer(TimerId id) {
  const auto core = static_cast<std::uint32_t>(id >> 56);
  const std::uint64_t local = id & ((std::uint64_t{1} << 56) - 1);
  if (core >= cores_.size()) return false;
  CBPS_ASSERT_MSG(tl_worker.engine != this || core == tl_worker.core,
                  "cross-shard timer cancel from a worker");
  auto& ev = cores_[core]->ev;
  auto it = ev.timers.find(local);
  if (it == ev.timers.end()) return false;
  ev.cancel(it->second.next_event);
  ev.timers.erase(it);
  return true;
}

SimulatorBase::Domain ParallelSimulator::register_domain() {
  CBPS_ASSERT_MSG(tl_worker.engine != this,
                  "domains register from global context only");
  const Domain d = next_domain_++;
  const std::uint32_t block = (d - 1) / kDomainBlock;
  if (block >= dom_seq_.size()) dom_seq_.resize(block + 1);
  return d;
}

void ParallelSimulator::run_shard(std::uint32_t core_idx,
                                  SimTime window_end) {
  CoreState& c = *cores_[core_idx];
  tl_worker = TlWorker{this, core_idx};
  const logctx::ScopedClock clock(this, &global_clock_now_us);
  auto& x = common::exec_context();
  detail::EventCore::Popped ev;
  while (true) {
    const SimTime t = c.ev.min_time();
    if (t >= window_end) break;
    c.ev.pop(ev);
    c.cur_time = ev.time;
    x.time = ev.time;
    x.actor_domain = ev.target;
    x.event_key = ev.key;
    x.emit_seq = 0;
    x.stripe = core_idx;
    ev.cb();
  }
  x.actor_domain = common::kGlobalDomain;
  x.event_key = 0;
  x.stripe = 0;
  tl_worker = TlWorker{};
}

void ParallelSimulator::run_global_batch(SimTime g) {
  now_ = g;
  CoreState& c0 = *cores_[0];
  c0.cur_time = g;
  auto& x = common::exec_context();
  detail::EventCore::Popped ev;
  // New global events at time g scheduled by the batch itself join the
  // batch (min_time re-checks); shard events wait for the next window.
  while (c0.ev.min_time() == g) {
    c0.ev.pop(ev);
    x.time = g;
    x.actor_domain = ev.target;
    x.event_key = ev.key;
    x.emit_seq = 0;
    x.stripe = 0;
    ev.cb();
  }
  x.actor_domain = common::kGlobalDomain;
  x.event_key = 0;
}

std::uint64_t ParallelSimulator::run_loop(SimTime limit,
                                          std::uint64_t max_events) {
  const logctx::ScopedClock clock(this, &global_clock_now_us);
  const std::uint64_t start = events_processed();
  while (events_processed() - start < max_events) {
    const SimTime g = cores_[0]->ev.min_time();
    SimTime m = kSimTimeNever;
    for (std::uint32_t s = 1; s <= shards_; ++s) {
      m = std::min(m, cores_[s]->ev.min_time());
    }
    const SimTime t = std::min(g, m);
    if (t == kSimTimeNever || t > limit) break;
    if (g <= m) {
      // Canonical order: at equal time, global-domain keys precede all
      // node keys, so the whole global batch at g runs first.
      run_global_batch(g);
      continue;
    }
    // Parallel window over [m, w).
    SimTime w = std::min(m + lookahead_, g);  // g may be kSimTimeNever
    if (limit != kSimTimeNever && w > limit) w = limit + 1;
    window_end_ = w;
    for (std::uint32_t s = 1; s <= shards_; ++s) {
      pool_.submit([this, s, w] { run_shard(s, w); });
    }
    pool_.wait();
    // Barrier merge of cross-shard events, shard order. The order is
    // cosmetic: keys were allocated at schedule time and heaps order by
    // (time, key), so execution order is insertion-independent.
    for (std::uint32_t s = 1; s <= shards_; ++s) {
      auto& ob = cores_[s]->outbox;
      for (auto& e : ob) {
        cores_[e.target_core]->ev.schedule(e.time, e.key, e.target,
                                           std::move(e.cb));
      }
      ob.clear();
    }
    now_ = std::max(now_, std::min(w, limit));
    common::exec_context().time = now_;
  }
  return events_processed() - start;
}

std::uint64_t ParallelSimulator::run(std::uint64_t max_events) {
  const std::uint64_t n = run_loop(kSimTimeNever, max_events);
  // Land the clock on the last processed event, as the serial engine's
  // run() does.
  SimTime end = now_;
  for (const auto& c : cores_) end = std::max(end, c->ev.floor_time());
  now_ = end;
  common::exec_context().time = now_;
  return n;
}

std::uint64_t ParallelSimulator::run_until(SimTime t) {
  CBPS_ASSERT(t >= now_);
  const std::uint64_t n = run_loop(t, ~std::uint64_t{0});
  now_ = t;
  common::exec_context().time = now_;
  return n;
}

std::size_t ParallelSimulator::pending_events() const {
  std::size_t n = 0;
  for (const auto& c : cores_) n += c->ev.live();
  return n;
}

std::uint64_t ParallelSimulator::events_processed() const {
  std::uint64_t n = 0;
  for (const auto& c : cores_) n += c->ev.processed();
  return n;
}

std::uint64_t ParallelSimulator::stale_entries_skipped() const {
  std::uint64_t n = 0;
  for (const auto& c : cores_) n += c->ev.stale_skipped();
  return n;
}

std::uint64_t ParallelSimulator::heap_compactions() const {
  std::uint64_t n = 0;
  for (const auto& c : cores_) n += c->ev.compactions();
  return n;
}

}  // namespace cbps::sim
