#include "cbps/sim/simulator.hpp"

#include <utility>

#include "cbps/common/logging.hpp"

namespace cbps::sim {

namespace {

// Clock hook for log-line prefixes: installed once per dispatch loop
// (not per event) so the hot path pays nothing.
std::uint64_t log_clock_now_us(const void* ctx) {
  return static_cast<const Simulator*>(ctx)->now();
}

}  // namespace

Simulator::Simulator() : dom_seq_(1, 0) {}

std::uint64_t Simulator::next_key() {
  const Domain actor = common::exec_context().actor_domain;
  CBPS_ASSERT_MSG(actor < dom_seq_.size(),
                  "acting domain not registered with this engine");
  return detail::make_key(actor, dom_seq_[actor]++);
}

Simulator::EventId Simulator::schedule_at(SimTime t, Callback cb) {
  CBPS_ASSERT_MSG(t >= now_, "scheduling into the past");
  return core_.schedule(t, next_key(), common::exec_context().actor_domain,
                        std::move(cb));
}

Simulator::EventId Simulator::schedule_for(Domain target, SimTime t,
                                           Callback cb) {
  CBPS_ASSERT_MSG(t >= now_, "scheduling into the past");
  return core_.schedule(t, next_key(), target, std::move(cb));
}

bool Simulator::cancel(EventId id) { return core_.cancel(id); }

Simulator::TimerId Simulator::add_timer(SimTime period, SimTime first_delay,
                                        Callback cb) {
  CBPS_ASSERT_MSG(period > 0, "zero-period timer would livelock");
  const Domain owner = common::exec_context().actor_domain;
  const TimerId id = core_.next_timer_seq++;
  core_.timers.emplace(
      id, detail::EventCore::TimerState{
              period, std::make_shared<Callback>(std::move(cb)),
              kInvalidEvent, owner});
  auto& st = core_.timers.at(id);
  st.next_event = core_.schedule(now_ + first_delay, next_key(), owner,
                                 [this, id] { fire_timer(id); });
  return id;
}

void Simulator::fire_timer(TimerId id) {
  auto it = core_.timers.find(id);
  CBPS_ASSERT(it != core_.timers.end());
  // Pin the body: the callback may cancel_timer(id), which erases the
  // timer state — the shared_ptr keeps the callable alive through the
  // invocation without copying it. Rearm before the body runs (the seed
  // engine's behavior; keeps the timer phase independent of body work).
  const std::shared_ptr<Callback> body = it->second.cb;
  auto& st = it->second;
  st.next_event = core_.schedule(now_ + st.period, next_key(), st.owner,
                                 [this, id] { fire_timer(id); });
  (*body)();
}

bool Simulator::cancel_timer(TimerId id) {
  auto it = core_.timers.find(id);
  if (it == core_.timers.end()) return false;
  core_.cancel(it->second.next_event);
  core_.timers.erase(it);
  return true;
}

SimulatorBase::Domain Simulator::register_domain() {
  const auto d = static_cast<Domain>(dom_seq_.size());
  dom_seq_.push_back(0);
  return d;
}

bool Simulator::step() {
  detail::EventCore::Popped ev;
  if (!core_.pop(ev)) return false;
  now_ = ev.time;
  auto& x = common::exec_context();
  x.time = ev.time;
  x.actor_domain = ev.target;
  x.event_key = ev.key;
  x.emit_seq = 0;
  x.stripe = 0;
  ev.cb();
  x.actor_domain = common::kGlobalDomain;
  x.event_key = 0;
  return true;
}

std::uint64_t Simulator::run(std::uint64_t max_events) {
  const logctx::ScopedClock clock(this, &log_clock_now_us);
  std::uint64_t n = 0;
  while (n < max_events && step()) ++n;
  common::exec_context().time = now_;
  return n;
}

std::uint64_t Simulator::run_until(SimTime t) {
  const logctx::ScopedClock clock(this, &log_clock_now_us);
  std::uint64_t n = 0;
  while (true) {
    const SimTime next = core_.min_time();
    if (next == kSimTimeNever || next > t) break;
    step();
    ++n;
  }
  CBPS_ASSERT(t >= now_);
  now_ = t;
  common::exec_context().time = now_;
  return n;
}

}  // namespace cbps::sim
