#include "cbps/sim/simulator.hpp"

#include <algorithm>
#include <utility>

#include "cbps/common/logging.hpp"

namespace cbps::sim {

namespace {

struct HeapGreater {
  template <typename T>
  bool operator()(const T& a, const T& b) const {
    return a > b;
  }
};

// Clock hook for log-line prefixes: installed once per dispatch loop
// (not per event) so the hot path pays nothing.
std::uint64_t log_clock_now_us(const void* ctx) {
  return static_cast<const Simulator*>(ctx)->now();
}

}  // namespace

Simulator::EventId Simulator::schedule_at(SimTime t, Callback cb) {
  CBPS_ASSERT_MSG(t >= now_, "scheduling into the past");
  CBPS_ASSERT(static_cast<bool>(cb));
  std::uint32_t slot;
  if (free_head_ != kNoSlot) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.cb = std::move(cb);
  s.armed = true;
  const EventId id = make_id(s.gen, slot);
  heap_.push_back(HeapEntry{t, next_seq_++, id});
  std::push_heap(heap_.begin(), heap_.end(), HeapGreater{});
  ++live_;
  return id;
}

void Simulator::release(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.cb = nullptr;
  s.armed = false;
  ++s.gen;
  s.next_free = free_head_;
  free_head_ = slot;
  --live_;
}

bool Simulator::cancel(EventId id) {
  if (!is_live(id)) return false;
  release(slot_of(id));
  // The heap entry stays behind and is skipped lazily when popped —
  // unless stale entries now dominate, in which case rebuild.
  maybe_compact();
  return true;
}

void Simulator::maybe_compact() {
  const std::size_t stale = heap_.size() - live_;
  if (stale <= live_ || heap_.size() < 64) return;
  std::erase_if(heap_,
                [this](const HeapEntry& e) { return !is_live(e.id); });
  std::make_heap(heap_.begin(), heap_.end(), HeapGreater{});
}

Simulator::TimerId Simulator::add_timer(SimTime period, Callback cb) {
  return add_timer(period, period, std::move(cb));
}

Simulator::TimerId Simulator::add_timer(SimTime period, SimTime first_delay,
                                        Callback cb) {
  CBPS_ASSERT_MSG(period > 0, "zero-period timer would livelock");
  const TimerId id = next_timer_id_++;
  timers_.emplace(id, TimerState{period,
                                 std::make_shared<Callback>(std::move(cb)),
                                 kInvalidEvent});
  auto& st = timers_.at(id);
  st.next_event = schedule_after(first_delay, [this, id] { fire_timer(id); });
  return id;
}

void Simulator::arm_timer(TimerId id) {
  auto& st = timers_.at(id);
  st.next_event =
      schedule_after(st.period, [this, id] { fire_timer(id); });
}

void Simulator::fire_timer(TimerId id) {
  auto it = timers_.find(id);
  CBPS_ASSERT(it != timers_.end());
  // Pin the body: the callback may cancel_timer(id), which erases the
  // timer state — the shared_ptr keeps the callable alive through the
  // invocation without copying it.
  const std::shared_ptr<Callback> body = it->second.cb;
  arm_timer(id);
  (*body)();
}

bool Simulator::cancel_timer(TimerId id) {
  auto it = timers_.find(id);
  if (it == timers_.end()) return false;
  cancel(it->second.next_event);
  timers_.erase(it);
  return true;
}

bool Simulator::step() {
  while (!heap_.empty()) {
    const HeapEntry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), HeapGreater{});
    heap_.pop_back();
    if (!is_live(top.id)) continue;  // cancelled
    CBPS_ASSERT(top.time >= now_);
    now_ = top.time;
    const std::uint32_t slot = slot_of(top.id);
    Callback cb = std::move(slots_[slot].cb);
    release(slot);
    ++processed_;
    cb();
    return true;
  }
  return false;
}

std::uint64_t Simulator::run(std::uint64_t max_events) {
  const logctx::ScopedClock clock(this, &log_clock_now_us);
  std::uint64_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

std::uint64_t Simulator::run_until(SimTime t) {
  const logctx::ScopedClock clock(this, &log_clock_now_us);
  std::uint64_t n = 0;
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    if (!is_live(top.id)) {
      std::pop_heap(heap_.begin(), heap_.end(), HeapGreater{});
      heap_.pop_back();
      continue;
    }
    if (top.time > t) break;
    step();
    ++n;
  }
  CBPS_ASSERT(t >= now_);
  now_ = t;
  return n;
}

}  // namespace cbps::sim
