#include "cbps/sim/simulator.hpp"

#include <utility>

namespace cbps::sim {

Simulator::EventId Simulator::schedule_at(SimTime t, Callback cb) {
  CBPS_ASSERT_MSG(t >= now_, "scheduling into the past");
  CBPS_ASSERT(cb != nullptr);
  const EventId id = next_id_++;
  heap_.push(HeapEntry{t, id});
  pending_.emplace(id, std::move(cb));
  return id;
}

bool Simulator::cancel(EventId id) {
  // The heap entry stays behind and is skipped lazily when popped.
  return pending_.erase(id) > 0;
}

Simulator::TimerId Simulator::add_timer(SimTime period, Callback cb) {
  return add_timer(period, period, std::move(cb));
}

Simulator::TimerId Simulator::add_timer(SimTime period, SimTime first_delay,
                                        Callback cb) {
  CBPS_ASSERT_MSG(period > 0, "zero-period timer would livelock");
  const TimerId id = next_timer_id_++;
  timers_.emplace(id, TimerState{period, std::move(cb), kInvalidEvent});
  auto& st = timers_.at(id);
  st.next_event = schedule_after(first_delay, [this, id] { fire_timer(id); });
  return id;
}

void Simulator::arm_timer(TimerId id) {
  auto& st = timers_.at(id);
  st.next_event =
      schedule_after(st.period, [this, id] { fire_timer(id); });
}

void Simulator::fire_timer(TimerId id) {
  auto it = timers_.find(id);
  CBPS_ASSERT(it != timers_.end());
  // Copy the body: the callback may cancel_timer(id), which destroys the
  // stored std::function — invoking the stored one directly would be UB.
  Callback body = it->second.cb;
  arm_timer(id);
  body();
}

bool Simulator::cancel_timer(TimerId id) {
  auto it = timers_.find(id);
  if (it == timers_.end()) return false;
  cancel(it->second.next_event);
  timers_.erase(it);
  return true;
}

bool Simulator::step() {
  while (!heap_.empty()) {
    const HeapEntry top = heap_.top();
    auto it = pending_.find(top.id);
    if (it == pending_.end()) {
      heap_.pop();  // cancelled
      continue;
    }
    heap_.pop();
    CBPS_ASSERT(top.time >= now_);
    now_ = top.time;
    Callback cb = std::move(it->second);
    pending_.erase(it);
    ++processed_;
    cb();
    return true;
  }
  return false;
}

std::uint64_t Simulator::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

std::uint64_t Simulator::run_until(SimTime t) {
  std::uint64_t n = 0;
  while (!heap_.empty()) {
    const HeapEntry top = heap_.top();
    if (!pending_.contains(top.id)) {
      heap_.pop();
      continue;
    }
    if (top.time > t) break;
    step();
    ++n;
  }
  CBPS_ASSERT(t >= now_);
  now_ = t;
  return n;
}

}  // namespace cbps::sim
