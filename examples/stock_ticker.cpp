// Stock-ticker example: temporal locality + the buffering optimization.
//
// A market data feed publishes ticks for a handful of symbols. Traders
// subscribe with content-based filters (price bands, volume floors) on a
// symbol they care about. Consecutive ticks of one symbol have close
// attribute values — the paper's motivating case for notification
// buffering (§4.3.2: "stock tickers ... exhibit temporal locality").
//
// The same feed is replayed twice, without and with buffering, and the
// notification message counts are compared.
//
//   $ ./examples/stock_ticker
#include <cstdio>
#include <string>
#include <vector>

#include "cbps/common/rng.hpp"
#include "cbps/pubsub/system.hpp"

using namespace cbps;

namespace {

// Attributes: symbol (hashed to an id), price in cents, volume, and
// percent change scaled by 100.
pubsub::Schema ticker_schema() {
  return pubsub::Schema({
      {"symbol", {0, 999}},
      {"price_cents", {0, 1'000'000}},
      {"volume", {0, 10'000'000}},
      {"change_bp", {-5'000, 5'000}},  // basis points
  });
}

struct FeedStats {
  std::uint64_t notifications = 0;
  std::uint64_t notify_hops = 0;
  std::uint64_t notify_batches = 0;
};

FeedStats run_feed(bool buffering) {
  pubsub::SystemConfig cfg;
  cfg.nodes = 100;
  cfg.seed = 7;
  cfg.mapping = pubsub::MappingKind::kSelectiveAttribute;
  cfg.pubsub.sub_transport = pubsub::PubSubConfig::Transport::kMulticast;
  cfg.pubsub.buffering = buffering;
  cfg.pubsub.buffer_period = sim::sec(2);

  pubsub::PubSubSystem system(cfg, ticker_schema());

  // Ten traders: each watches one symbol within a price band, with the
  // equality constraint on `symbol` as the natural selective attribute.
  Rng rng(42);
  for (std::size_t trader = 0; trader < 10; ++trader) {
    const Value symbol = rng.uniform_int(0, 9);
    const Value band_lo = rng.uniform_int(10'000, 500'000);
    system.subscribe(trader, {
        {0, ClosedInterval::point(symbol)},      // symbol == X
        {1, {band_lo, band_lo + 100'000}},       // price band
        {2, {100'000, 10'000'000}},              // volume floor
    });
  }
  system.run_for(sim::sec(5));

  // Replay a random walk per symbol: strong temporal locality.
  std::vector<Value> price(10);
  for (auto& p : price) p = rng.uniform_int(100'000, 400'000);
  for (int tick = 0; tick < 400; ++tick) {
    const Value symbol = rng.uniform_int(0, 9);
    Value& p = price[static_cast<std::size_t>(symbol)];
    const Value delta = rng.uniform_int(-500, 500);
    p = std::clamp<Value>(p + delta, 0, 1'000'000);
    const Value volume = rng.uniform_int(50'000, 2'000'000);
    const Value change = std::clamp<Value>(delta / 10, -5'000, 5'000);
    system.publish(
        static_cast<std::size_t>(rng.uniform_int(0, 99)),
        {symbol, p, volume, change});
    system.run_for(sim::ms(200));  // 5 ticks per second
  }
  system.quiesce();

  FeedStats stats;
  stats.notifications = system.notifications_delivered();
  stats.notify_hops = system.traffic().hops(overlay::MessageClass::kNotify);
  for (std::size_t i = 0; i < system.node_count(); ++i) {
    stats.notify_batches += system.pubsub_node(i).notify_batches_sent();
  }
  return stats;
}

}  // namespace

int main() {
  std::puts("stock ticker feed: 10 traders, 10 symbols, 400 ticks\n");

  const FeedStats immediate = run_feed(/*buffering=*/false);
  const FeedStats buffered = run_feed(/*buffering=*/true);

  std::printf("%-28s %14s %14s\n", "", "immediate", "buffered(2s)");
  std::printf("%-28s %14llu %14llu\n", "notifications delivered",
              static_cast<unsigned long long>(immediate.notifications),
              static_cast<unsigned long long>(buffered.notifications));
  std::printf("%-28s %14llu %14llu\n", "notification messages",
              static_cast<unsigned long long>(immediate.notify_batches),
              static_cast<unsigned long long>(buffered.notify_batches));
  std::printf("%-28s %14llu %14llu\n", "notification hops",
              static_cast<unsigned long long>(immediate.notify_hops),
              static_cast<unsigned long long>(buffered.notify_hops));
  if (buffered.notify_hops < immediate.notify_hops &&
      immediate.notifications == buffered.notifications) {
    std::printf("\nbuffering delivered the same %llu notifications with "
                "%.0f%% fewer hops.\n",
                static_cast<unsigned long long>(buffered.notifications),
                100.0 * (1.0 - static_cast<double>(buffered.notify_hops) /
                                   static_cast<double>(
                                       immediate.notify_hops)));
  }
  return 0;
}
