// Quickstart: the smallest end-to-end use of the library.
//
// Builds a 50-node Chord ring with the CB-pub/sub layer on top, registers
// a couple of content-based subscriptions, publishes events, and prints
// the notifications as they arrive.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "cbps/pubsub/system.hpp"

using namespace cbps;

int main() {
  // A 2-attribute event space: temperature in [-40, 60] and humidity in
  // [0, 100].
  pubsub::Schema schema({
      {"temperature", {-40, 60}},
      {"humidity", {0, 100}},
  });

  pubsub::SystemConfig cfg;
  cfg.nodes = 50;
  cfg.seed = 2025;
  cfg.mapping = pubsub::MappingKind::kSelectiveAttribute;
  cfg.pubsub.sub_transport = pubsub::PubSubConfig::Transport::kMulticast;

  pubsub::PubSubSystem system(cfg, schema);

  // Print every notification delivered anywhere in the system.
  system.set_notify_sink([&](Key subscriber, const pubsub::Notification& n) {
    std::printf("  [t=%5.2fs] node %4llu notified: sub#%llu matched "
                "event#%llu (temp=%lld, hum=%lld)\n",
                sim::to_seconds(system.sim().now()),
                static_cast<unsigned long long>(subscriber),
                static_cast<unsigned long long>(n.subscription),
                static_cast<unsigned long long>(n.event->id),
                static_cast<long long>(n.event->values[0]),
                static_cast<long long>(n.event->values[1]));
  });

  std::puts("subscribing:");
  std::puts("  node 3:  heat alerts       (temperature >= 35)");
  std::puts("  node 17: mold watch        (temperature 10..30 AND humidity >= 80)");
  std::puts("  node 42: freeze protection (temperature <= 0)");
  system.subscribe(3, {{0, {35, 60}}});
  system.subscribe(17, {{0, {10, 30}}, {1, {80, 100}}});
  system.subscribe(42, {{0, {-40, 0}}});

  // Let the subscriptions reach their rendezvous nodes.
  system.run_for(sim::sec(5));

  std::puts("publishing five readings:");
  system.publish(8, {38, 20});    // heat alert
  system.publish(12, {22, 85});   // mold watch
  system.publish(30, {-5, 50});   // freeze protection
  system.publish(5, {20, 40});    // matches nothing
  system.publish(44, {40, 90});   // heat alert again
  system.quiesce();

  const auto& traffic = system.traffic();
  std::printf("\ntraffic summary (one-hop messages):\n");
  std::printf("  subscriptions: %llu hops\n",
              static_cast<unsigned long long>(
                  traffic.hops(overlay::MessageClass::kSubscribe)));
  std::printf("  publications:  %llu hops\n",
              static_cast<unsigned long long>(
                  traffic.hops(overlay::MessageClass::kPublish)));
  std::printf("  notifications: %llu hops\n",
              static_cast<unsigned long long>(
                  traffic.hops(overlay::MessageClass::kNotify)));
  std::printf("  delivered notifications: %llu\n",
              static_cast<unsigned long long>(
                  system.notifications_delivered()));
  return 0;
}
