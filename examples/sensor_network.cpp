// Sensor-network example: Selective-Attribute mapping + discretization.
//
// A field of sensors publishes readings tagged with a region id; consumer
// dashboards subscribe to one region (a highly selective equality
// constraint) with loose value filters. This is exactly the workload
// Mapping 3 is designed for (§4.2: "equality constraints on attributes
// such as 'type' or 'topic'"), and the subscriptions' wide value ranges
// show what discretization (§4.3.3) buys.
//
//   $ ./examples/sensor_network
#include <cstdio>

#include "cbps/common/rng.hpp"
#include "cbps/pubsub/system.hpp"

using namespace cbps;

namespace {

pubsub::Schema sensor_schema() {
  return pubsub::Schema({
      {"region", {0, 9'999}},
      {"temperature_mC", {-40'000, 60'000}},  // millidegrees
      {"battery_mV", {0, 5'000}},
  });
}

struct RunResult {
  std::uint64_t sub_hops = 0;
  std::uint64_t notifications = 0;
  double max_subs_per_node = 0;
};

RunResult run(Value discretization) {
  pubsub::SystemConfig cfg;
  cfg.nodes = 200;
  cfg.seed = 31;
  cfg.mapping = pubsub::MappingKind::kSelectiveAttribute;
  cfg.mapping_options.discretization = discretization;
  cfg.pubsub.sub_transport = pubsub::PubSubConfig::Transport::kUnicast;

  pubsub::PubSubSystem system(cfg, sensor_schema());
  Rng rng(5);

  // 150 regional dashboards: "region == R, temperature in a broad band".
  // The equality constraint is the selective attribute, so each maps to
  // a single rendezvous key.
  for (int i = 0; i < 150; ++i) {
    const auto node = static_cast<std::size_t>(rng.uniform_int(0, 199));
    const Value region = rng.uniform_int(0, 99);
    const Value t_lo = rng.uniform_int(-40'000, 20'000);
    system.subscribe(node, {
        {0, ClosedInterval::point(region)},
        {1, {t_lo, t_lo + 30'000}},
    });
  }
  // 150 fleet-wide anomaly watchers: temperature band only (partially
  // defined subscriptions). Their wide value range maps to a long run of
  // rendezvous keys — exactly what discretization (§4.3.3) compresses.
  for (int i = 0; i < 150; ++i) {
    const auto node = static_cast<std::size_t>(rng.uniform_int(0, 199));
    const Value t_lo = rng.uniform_int(30'000, 50'000);  // heat anomalies
    system.subscribe(node, {
        {1, {t_lo, t_lo + 8'000}},
    });
  }
  system.run_for(sim::sec(10));
  const std::uint64_t sub_hops =
      system.traffic().hops(overlay::MessageClass::kSubscribe);

  // 500 sensor readings across the regions.
  for (int i = 0; i < 500; ++i) {
    const auto node = static_cast<std::size_t>(rng.uniform_int(0, 199));
    system.publish(node, {rng.uniform_int(0, 99),
                          rng.uniform_int(-40'000, 60'000),
                          rng.uniform_int(2'000, 5'000)});
    system.run_for(sim::ms(100));
  }
  system.quiesce();

  RunResult r;
  r.sub_hops = sub_hops;
  r.notifications = system.notifications_delivered();
  r.max_subs_per_node =
      static_cast<double>(system.storage_stats().max_peak);
  return r;
}

}  // namespace

int main() {
  std::puts("sensor network: 200 nodes, 150 region dashboards +");
  std::puts("150 fleet-wide anomaly watchers, 500 readings");
  std::puts("mapping: Selective-Attribute, three discretization settings\n");

  std::printf("%-26s %12s %16s %14s\n", "discretization", "sub hops",
              "max subs/node", "notifications");
  for (Value w : {Value{1}, Value{800}, Value{1600}}) {
    const RunResult r = run(w);
    std::printf("%-26lld %12llu %16.0f %14llu\n",
                static_cast<long long>(w),
                static_cast<unsigned long long>(r.sub_hops),
                r.max_subs_per_node,
                static_cast<unsigned long long>(r.notifications));
  }
  std::puts("\ncoarser discretization cuts subscription-propagation hops");
  std::puts("while every matching reading is still delivered.");
  return 0;
}
