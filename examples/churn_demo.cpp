// Churn demo: self-configuration under joins, graceful leaves and
// crashes — the property that motivates the whole architecture (§1: the
// first content-based pub/sub "not requiring any manual configuration
// ... apart from the setup of an overlay network itself").
//
// Nodes join and leave while subscriptions and publications keep
// flowing; subscription state follows the key-space handovers, and a
// replication factor of 2 covers abrupt crashes. A delivery ledger
// reports how much of the traffic reached its subscribers.
//
//   $ ./examples/churn_demo
#include <cstdio>
#include <string>
#include <vector>

#include "cbps/pubsub/delivery_checker.hpp"
#include "cbps/pubsub/system.hpp"
#include "cbps/workload/generator.hpp"

using namespace cbps;

int main() {
  pubsub::Schema schema = pubsub::Schema::uniform(3, 99'999);

  pubsub::SystemConfig cfg;
  cfg.nodes = 48;
  cfg.seed = 99;
  cfg.mapping = pubsub::MappingKind::kSelectiveAttribute;
  cfg.pubsub.sub_transport = pubsub::PubSubConfig::Transport::kMulticast;
  cfg.pubsub.replication_factor = 2;
  cfg.chord.stabilize_period = sim::sec(5);

  pubsub::PubSubSystem system(cfg, schema);
  system.network().start_maintenance_all();

  pubsub::DeliveryChecker checker;
  system.set_notify_sink([&](Key subscriber, const pubsub::Notification& n) {
    checker.on_notify(subscriber, n, system.sim().now());
  });

  workload::WorkloadParams wp;
  wp.matching_probability = 0.8;
  workload::WorkloadGenerator gen(schema, wp, 1);

  std::vector<pubsub::SubscriptionPtr> active;
  auto subscribe_from = [&](std::size_t node) {
    auto sub = system.subscribe(node, gen.make_constraints());
    checker.on_subscribe(sub, system.sim().now(), sim::kSimTimeNever);
    active.push_back(sub);
  };
  auto publish_from = [&](std::size_t node) {
    const std::vector<Value> values = gen.make_event_values(active);
    const EventId id = system.publish(node, values);
    auto event = std::make_shared<pubsub::Event>();
    event->id = id;
    event->values = values;
    checker.on_publish(std::move(event), system.sim().now());
  };

  std::puts("phase 1: 12 subscriptions, 20 events on a stable 48-node ring");
  for (std::size_t i = 0; i < 12; ++i) {
    subscribe_from(i % system.node_count());
    system.run_for(sim::sec(2));
  }
  for (int i = 0; i < 20; ++i) {
    publish_from(static_cast<std::size_t>(gen.rng().uniform_int(
        0, static_cast<std::int64_t>(system.node_count()) - 1)));
    system.run_for(sim::sec(1));
  }

  std::puts("phase 2: churn — 4 joins, 3 graceful leaves, 2 crashes");
  for (int i = 0; i < 4; ++i) {
    system.join_node("joiner-" + std::to_string(i));
    system.run_for(sim::sec(15));
  }
  // Leave / crash nodes that are not subscribers.
  int removed = 0;
  for (const Key id : system.network().alive_ids()) {
    if (removed >= 5) break;
    bool is_subscriber = false;
    for (const auto& s : active) is_subscriber |= (s->subscriber == id);
    if (is_subscriber) continue;
    std::size_t idx = 0;
    while (system.node_id(idx) != id) ++idx;
    if (removed < 3) {
      system.leave_node(idx);
    } else {
      system.crash_node(idx);
    }
    ++removed;
    system.run_for(sim::sec(30));
  }

  std::puts("phase 3: 20 more events through the churned ring");
  for (int i = 0; i < 20; ++i) {
    // Publish from a node that is still alive (index into current list).
    const auto alive = system.network().alive_count();
    const Key pub_id = system.network().alive_ids()[static_cast<std::size_t>(
        gen.rng().uniform_int(0, static_cast<std::int64_t>(alive) - 1))];
    // Map id back to a dense index.
    for (std::size_t idx = 0; idx < system.node_count(); ++idx) {
      if (system.node_id(idx) == pub_id) {
        publish_from(idx);
        break;
      }
    }
    system.run_for(sim::sec(2));
  }
  system.run_for(sim::sec(60));

  const auto report = checker.verify(/*grace=*/sim::sec(5));
  std::printf("\ndelivery ledger: %llu expected, %llu delivered, "
              "%llu missing, %llu duplicate, %llu spurious\n",
              static_cast<unsigned long long>(report.expected),
              static_cast<unsigned long long>(report.delivered),
              static_cast<unsigned long long>(report.missing),
              static_cast<unsigned long long>(report.duplicates),
              static_cast<unsigned long long>(report.spurious));
  std::printf("final ring size: %zu nodes (48 +4 joins -3 leaves -2 crashes)\n",
              system.network().alive_count());
  std::printf("state-transfer hops spent: %llu\n",
              static_cast<unsigned long long>(system.traffic().hops(
                  overlay::MessageClass::kStateTransfer)));
  std::puts(report.ok() ? "all deliveries correct under churn."
                        : "some deliveries were disrupted by churn (see "
                          "ledger above).");
  return 0;
}
