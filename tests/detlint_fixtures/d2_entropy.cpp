// D2: ambient entropy sources outside common/rng.cpp / common/flags.cpp.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

unsigned long long ambient_seed() {
  std::random_device rd;  // detlint-expect: D2
  unsigned long long seed = rd();
  seed ^= static_cast<unsigned long long>(time(nullptr));  // detlint-expect: D2
  seed ^= static_cast<unsigned long long>(
      std::chrono::system_clock::now().time_since_epoch().count());  // detlint-expect: D2
  if (const char* env = getenv("SEED")) {  // detlint-expect: D2
    seed ^= static_cast<unsigned long long>(env[0]);
  }
  srand(static_cast<unsigned>(seed));  // detlint-expect: D2
  return seed + static_cast<unsigned long long>(rand());  // detlint-expect: D2
}
