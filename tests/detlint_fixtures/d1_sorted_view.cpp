// D1 escape: routing the iteration through cbps::sorted_view() is the
// sanctioned deterministic walk — no finding, no waiver needed.
#include <unordered_map>

#include "cbps/common/sorted_view.hpp"

struct Emitter {
  std::unordered_map<int, int> pending_;

  int emit_all() {
    int out = 0;
    for (const auto* entry : cbps::sorted_view(pending_)) {
      out += entry->first * entry->second;
    }
    return out;
  }
};
