// D1: range-for over an unordered container must be flagged.
#include <string>
#include <unordered_map>
#include <unordered_set>

struct Registry {
  std::unordered_map<int, std::string> entries_;
  std::unordered_set<int> ids_;

  int walk() const {
    int n = 0;
    for (const auto& [id, name] : entries_) {  // detlint-expect: D1
      n += id + static_cast<int>(name.size());
    }
    for (int id : ids_) n += id;  // detlint-expect: D1
    return n;
  }
};
