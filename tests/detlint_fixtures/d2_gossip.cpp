// D2: a gossip-shaped TU that reaches for ambient entropy. Peer
// selection must draw from an injected per-node stream (seeded off the
// config), never from the machine — a random_device here would make
// every epidemic run unrepeatable.
#include <random>
#include <vector>

unsigned long long pick_gossip_partner(const std::vector<unsigned long long>& group) {
  std::random_device entropy;  // detlint-expect: D2
  std::mt19937_64 rng(entropy());
  return group[rng() % group.size()];
}
