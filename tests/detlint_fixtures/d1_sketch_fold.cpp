// D1: the load-observatory fold shape. Folding per-shard sketches out
// of an unordered container walks them in hash-layout order — the merge
// had better be commutative, and detlint cannot prove that, so the walk
// is flagged. The clean shape keeps shard sketches in an ordered map
// (or a vector indexed in canonical domain order) so the fold order is
// layout-independent by construction.
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

struct Sketch {
  std::uint64_t total = 0;
  void merge(const Sketch& other) { total += other.total; }
};

struct ShardedObservatory {
  std::unordered_map<int, Sketch> by_shard_;  // hash layout
  std::map<int, Sketch> by_shard_ordered_;
  std::vector<Sketch> by_shard_ring_;  // indexed in ring order

  // Flagged: the fold visits shards in hash order, so any
  // non-commutative step (truncation, error floors) would make the
  // merged report depend on the container's layout.
  Sketch fold_unordered() const {
    Sketch acc;
    for (const auto& [shard, sketch] : by_shard_) {  // detlint-expect: D1
      acc.merge(sketch);
    }
    return acc;
  }

  // Clean: ordered key walk — the canonical fold order.
  Sketch fold_ordered() const {
    Sketch acc;
    for (const auto& [shard, sketch] : by_shard_ordered_) {
      acc.merge(sketch);
    }
    return acc;
  }

  // Clean: ring-order vector walk (what PubSubSystem::key_load does).
  Sketch fold_ring() const {
    Sketch acc;
    for (const Sketch& sketch : by_shard_ring_) {
      acc.merge(sketch);
    }
    return acc;
  }
};
