// D3: ordering or hashing on pointer values — address-space layout is
// not deterministic across runs, so pointer keys poison any downstream
// iteration or sort order.
#include <cstdint>
#include <functional>
#include <map>
#include <set>

struct Node {
  int v = 0;
};

std::uint64_t pointer_keys(Node* a) {
  std::set<Node*, std::less<Node*>> ordered;  // detlint-expect: D3
  ordered.insert(a);
  std::map<int, int, std::greater<int*>> bad_cmp;  // detlint-expect: D3
  const std::size_t h = std::hash<Node*>{}(a);  // detlint-expect: D3
  const auto key = reinterpret_cast<std::uintptr_t>(a);  // detlint-expect: D3
  return h + key;
}
