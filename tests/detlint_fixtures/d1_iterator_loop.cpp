// D1: classic iterator loops over unordered containers are flagged too.
#include <unordered_map>

struct Cache {
  std::unordered_map<int, int> map_;

  int first_match(int key) {
    for (auto it = map_.begin(); it != map_.end(); ++it) {  // detlint-expect: D1
      if (it->second == key) return it->first;
    }
    return -1;
  }
};
