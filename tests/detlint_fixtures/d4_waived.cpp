// D4 escape: a justified `// detlint: concurrency-ok(<reason>)` waiver.
#include <mutex>

struct Guarded {
  // detlint: concurrency-ok(selftest fixture; commutative counter)
  std::mutex mu_;
  int n_ = 0;

  void bump() {
    // detlint: concurrency-ok(selftest fixture; commutative counter)
    const std::lock_guard<std::mutex> lock(mu_);
    ++n_;
  }
};
