// Clean file: ordered containers, parameter-seeded randomness, no raw
// concurrency — nothing may fire here.
#include <map>
#include <set>
#include <string>
#include <vector>

struct OrderedRegistry {
  std::map<std::string, int> counters_;
  std::set<int> ids_;

  int print_total() const {
    int n = 0;
    for (const auto& [name, c] : counters_) n += c + static_cast<int>(name.size());
    for (int id : ids_) n += id;
    return n;
  }
};

// Seeds flow in as parameters, never from ambient sources.
std::vector<int> make_sequence(unsigned long long seed, int count) {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(count));
  unsigned long long s = seed;
  for (int i = 0; i < count; ++i) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    out.push_back(static_cast<int>(s >> 33));
  }
  return out;
}
