// D1: unordered types hidden behind a `using` alias, iterated by a
// single-statement (braceless) range-for — both the alias and the
// one-liner parse must be handled.
#include <unordered_map>

struct Store {
  using RecordMap = std::unordered_map<unsigned long long, int>;
  RecordMap records_;
  int sink = 0;

  void drain() {
    for (auto& [id, v] : records_) sink += v;  // detlint-expect: D1
  }
};
