// D1 escape: a `// detlint: unordered-ok(<reason>)` waiver on the loop
// line (or the line above) suppresses the finding; the waiver must
// still surface in `--list-waivers`.
#include <unordered_map>

struct Totals {
  std::unordered_map<int, int> counts_;

  int sum() const {
    int n = 0;
    // detlint: unordered-ok(order-independent sum for the selftest)
    for (const auto& [_, c] : counts_) n += c;
    return n;
  }
};
