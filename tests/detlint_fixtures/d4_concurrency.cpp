// D4: raw concurrency primitives outside the blessed modules
// (thread_pool, parallel_simulator, the metrics striped folds).
#include <atomic>
#include <mutex>
#include <thread>

struct SneakyShared {
  std::mutex mu_;  // detlint-expect: D4
  std::atomic<int> hits_{0};  // detlint-expect: D4

  void poke() {
    std::thread t([this] {  // detlint-expect: D4
      const std::lock_guard<std::mutex> lock(mu_);  // detlint-expect: D4
      hits_.fetch_add(1);
    });
    t.join();
  }
};
