// Tests for the ak-mapping layer: the scaling hash, the Figure 3 worked
// example, per-mapping key-count formulas (§4.2), discretization
// (§4.3.3) and — most importantly — randomized property tests of the
// mapping intersection rule: e ∈ σ  ⇒  EK(e) ∩ SK(σ) ≠ ∅.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include "cbps/common/rng.hpp"
#include "cbps/pubsub/mapping.hpp"
#include "cbps/workload/generator.hpp"

namespace cbps::pubsub {
namespace {

Subscription make_sub(std::vector<Constraint> cs, SubscriptionId id = 1,
                      Key subscriber = 0) {
  Subscription s;
  s.id = id;
  s.subscriber = subscriber;
  s.constraints = std::move(cs);
  return s;
}

Event make_event(std::vector<Value> values, EventId id = 1) {
  Event e;
  e.id = id;
  e.values = std::move(values);
  return e;
}

// ---------------------------------------------------------------------------
// ScalingHasher
// ---------------------------------------------------------------------------

TEST(ScalingHasherTest, MatchesPaperFormula) {
  // h(x) = x * 2^l / |Omega|, domain [0,7], l=2: h(x) = x/2.
  ScalingHasher h({0, 7}, 2);
  EXPECT_EQ(h.hash(0), 0u);
  EXPECT_EQ(h.hash(1), 0u);
  EXPECT_EQ(h.hash(4), 2u);
  EXPECT_EQ(h.hash(5), 2u);
  EXPECT_EQ(h.hash(6), 3u);
  EXPECT_EQ(h.hash(7), 3u);
}

TEST(ScalingHasherTest, MonotoneAndBounded) {
  ScalingHasher h({0, 1'000'000}, 13);
  std::uint64_t prev = 0;
  for (Value x = 0; x <= 1'000'000; x += 997) {
    const std::uint64_t v = h.hash(x);
    EXPECT_GE(v, prev);
    EXPECT_LT(v, 1u << 13);
    prev = v;
  }
}

TEST(ScalingHasherTest, ShiftedDomain) {
  ScalingHasher h({-100, 99}, 4);  // width 200, 16 buckets of 12.5
  EXPECT_EQ(h.hash(-100), 0u);
  EXPECT_EQ(h.hash(99), 15u);
}

TEST(ScalingHasherTest, HashSetContiguousWithoutDiscretization) {
  ScalingHasher h({0, 999}, 5);  // 32 keys over 1000 values
  const auto set = h.hash_set({100, 400});
  ASSERT_FALSE(set.empty());
  EXPECT_EQ(set.front(), h.hash(100));
  EXPECT_EQ(set.back(), h.hash(400));
  for (std::size_t i = 1; i < set.size(); ++i) {
    EXPECT_EQ(set[i], set[i - 1] + 1);
  }
  // ceil(r * 2^l / |Omega|)-ish: 301 * 32 / 1000 ≈ 9.6.
  EXPECT_NEAR(static_cast<double>(set.size()), 10.0, 1.0);
}

TEST(ScalingHasherTest, HashSetClampsToDomain) {
  ScalingHasher h({0, 99}, 4);
  EXPECT_TRUE(h.hash_set({200, 300}).empty());
  const auto set = h.hash_set({50, 500});
  EXPECT_EQ(set.back(), h.hash(99));
}

TEST(ScalingHasherTest, DiscretizationCoarsensKeys) {
  // Domain 1e6, l=13; a 30k range maps to ~246 keys raw but far fewer
  // with 1500-wide intervals (§4.3.3).
  ScalingHasher fine({0, 999'999}, 13);
  ScalingHasher coarse({0, 999'999}, 13, 1500);
  const ClosedInterval r{100'000, 130'000};
  const auto fine_keys = fine.hash_set(r);
  const auto coarse_keys = coarse.hash_set(r);
  EXPECT_GT(fine_keys.size(), 5 * coarse_keys.size());
  // Every value's coarse hash must be in the coarse key set (EK/SK
  // consistency).
  for (Value x = r.lo; x <= r.hi; x += 37) {
    EXPECT_TRUE(std::binary_search(coarse_keys.begin(), coarse_keys.end(),
                                   coarse.hash(x)));
  }
}

TEST(ScalingHasherTest, DiscretizedValuesShareIntervalKey) {
  ScalingHasher h({0, 999}, 8, 100);
  for (Value base = 0; base < 1000; base += 100) {
    const std::uint64_t k = h.hash(base);
    for (Value off = 1; off < 100; off += 13) {
      EXPECT_EQ(h.hash(base + off), k) << base << "+" << off;
    }
  }
}

// ---------------------------------------------------------------------------
// Figure 3 worked example
// ---------------------------------------------------------------------------
//
// sigma = {a1 < 2, 3 < a2 < 7}, e = {a1 = 1, a2 = 6} over two attributes
// with |Omega_i| = 8.

class MappingFig3Test : public ::testing::Test {
 protected:
  Schema schema_ = Schema::uniform(2, 7);  // values 0..7
  Subscription sub_ = make_sub({{0, {0, 1}}, {1, {4, 6}}});
  Event event_ = make_event({1, 6});
};

TEST_F(MappingFig3Test, AttributeSplit) {
  // With the key space coinciding with the attribute space (m=3, so
  // h = identity): SK = H(c1) ∪ H(c2) = {0,1} ∪ {4,5,6}; EK ∈ SK.
  auto mapping = make_attribute_split(schema_, RingParams{3}, {},
                                      EventAttrPolicy::kFixedFirst);
  EXPECT_EQ(mapping->subscription_keys(sub_),
            (std::vector<Key>{0, 1, 4, 5, 6}));
  // Figure 3(b): EK(e) = h(e.a1) = 1.
  EXPECT_EQ(mapping->event_keys(event_), std::vector<Key>{1});
}

TEST_F(MappingFig3Test, KeySpaceSplit) {
  // m=4, d=2 -> l=2: h(x) = x/2. H(c1) = {00}, H(c2) = {10, 11};
  // SK = {0010, 0011}; EK = h(1)∘h(6) = 00∘11 = 0011 (Figure 3(c)).
  auto mapping = make_mapping(MappingKind::kKeySpaceSplit, schema_,
                              RingParams{4});
  EXPECT_EQ(mapping->subscription_keys(sub_),
            (std::vector<Key>{0b0010, 0b0011}));
  EXPECT_EQ(mapping->event_keys(event_), std::vector<Key>{0b0011});
}

TEST_F(MappingFig3Test, SelectiveAttribute) {
  // c1 spans 2 of 8 values, c2 spans 3: attribute 0 is most selective,
  // so SK = H(c1) = {0, 1}; EK = {h(1), h(6)} = {1, 6}.
  auto mapping = make_mapping(MappingKind::kSelectiveAttribute, schema_,
                              RingParams{3});
  EXPECT_EQ(mapping->subscription_keys(sub_), (std::vector<Key>{0, 1}));
  EXPECT_EQ(mapping->event_keys(event_), (std::vector<Key>{1, 6}));
}

// ---------------------------------------------------------------------------
// Subscription helpers
// ---------------------------------------------------------------------------

TEST(SubscriptionTest, MatchesConjunction) {
  const Schema schema = Schema::uniform(3, 100);
  const Subscription s = make_sub({{0, {10, 20}}, {2, {50, 60}}});
  EXPECT_TRUE(s.matches(make_event({15, 99, 55})));
  EXPECT_FALSE(s.matches(make_event({15, 99, 61})));
  EXPECT_FALSE(s.matches(make_event({9, 99, 55})));
  // Unconstrained attribute 1 never filters.
  EXPECT_TRUE(s.matches(make_event({10, 0, 50})));
}

TEST(SubscriptionTest, ValidityChecks) {
  const Schema schema = Schema::uniform(2, 100);
  EXPECT_TRUE(make_sub({{0, {0, 100}}}).valid_for(schema));
  EXPECT_FALSE(make_sub({{2, {0, 10}}}).valid_for(schema));  // bad attr
  EXPECT_FALSE(
      make_sub({{0, {0, 101}}}).valid_for(schema));  // beyond domain
  EXPECT_FALSE(make_sub({{0, {0, 1}}, {0, {5, 6}}})
                   .valid_for(schema));  // duplicate attr
}

TEST(SubscriptionTest, MostSelectiveAttribute) {
  const Schema schema = Schema::uniform(3, 999);
  EXPECT_EQ(make_sub({{0, {0, 499}}, {1, {0, 9}}, {2, {0, 99}}})
                .most_selective_attribute(schema),
            std::optional<std::size_t>(1));
  // Ties break to the lowest index.
  EXPECT_EQ(make_sub({{1, {0, 9}}, {2, {10, 19}}})
                .most_selective_attribute(schema),
            std::optional<std::size_t>(1));
  EXPECT_FALSE(make_sub({}).most_selective_attribute(schema).has_value());
}

TEST(SubscriptionTest, EqualityConstraintIsPoint) {
  const Schema schema = Schema::uniform(1, 999);
  const Subscription s = make_sub({{0, ClosedInterval::point(42)}});
  EXPECT_TRUE(s.matches(make_event({42})));
  EXPECT_FALSE(s.matches(make_event({43})));
  EXPECT_DOUBLE_EQ(s.selectivity(schema, 0), 1.0 / 1000.0);
}

// ---------------------------------------------------------------------------
// Paper §4.2 key-count behavior (paper workload parameters)
// ---------------------------------------------------------------------------

class MappingKeyCountTest : public ::testing::Test {
 protected:
  static constexpr Value kAttrMax = 1'000'000;
  Schema schema_ = Schema::uniform(4, kAttrMax);
  RingParams ring_{13};

  // A non-selective subscription: 3%-of-domain ranges on each attribute.
  Subscription nonselective_ = make_sub({{0, {100'000, 130'000}},
                                         {1, {200'000, 230'000}},
                                         {2, {300'000, 330'000}},
                                         {3, {400'000, 430'000}}});
  // Same but with one highly selective (0.1%) constraint.
  Subscription selective_ = make_sub({{0, {100'000, 100'999}},
                                      {1, {200'000, 230'000}},
                                      {2, {300'000, 330'000}},
                                      {3, {400'000, 430'000}}});
};

TEST_F(MappingKeyCountTest, AttributeSplitSumsPerAttributeRanges) {
  auto m = make_mapping(MappingKind::kAttributeSplit, schema_, ring_);
  // Each 30k range -> ~ceil(30001 * 8192 / 1e6+1) ≈ 246 keys; 4 attrs.
  const auto keys = m->subscription_keys(nonselective_);
  EXPECT_NEAR(static_cast<double>(keys.size()), 4 * 246.0, 30.0);
  // Publications map to exactly one key.
  EXPECT_EQ(m->event_keys(make_event({1, 2, 3, 4})).size(), 1u);
}

TEST_F(MappingKeyCountTest, KeySpaceSplitMapsToFewKeys) {
  auto m = make_mapping(MappingKind::kKeySpaceSplit, schema_, ring_);
  // l = 13/4 = 3 bits per attribute: a 3% range covers at most 2 of the
  // 8 fragments -> product stays tiny ("slightly over one key", §5.2).
  const auto keys = m->subscription_keys(nonselective_);
  EXPECT_GE(keys.size(), 1u);
  EXPECT_LE(keys.size(), 16u);
  EXPECT_EQ(m->event_keys(make_event({1, 2, 3, 4})).size(), 1u);
}

TEST_F(MappingKeyCountTest, SelectiveAttributeUsesMostSelectiveOnly) {
  auto m = make_mapping(MappingKind::kSelectiveAttribute, schema_, ring_);
  // Non-selective sub: smallest of the four ranges, here all 30k ->
  // ~246 keys; with the selective constraint -> ~8 keys.
  const auto ns = m->subscription_keys(nonselective_);
  EXPECT_NEAR(static_cast<double>(ns.size()), 246.0, 10.0);
  const auto sel = m->subscription_keys(selective_);
  EXPECT_LE(sel.size(), 10u);
  // Events map to d keys (4, minus collisions).
  const auto ek = m->event_keys(make_event({1, 250'000, 500'000, 750'000}));
  EXPECT_EQ(ek.size(), 4u);
}

TEST_F(MappingKeyCountTest, AttributeSplitRoughlyTenTimesSelective) {
  // §5.2: "The number of mapped keys per subscription was about ten
  // times higher for mapping 1 compared with mapping 3" under the
  // paper's workload. Check the ratio statistically.
  auto m1 = make_mapping(MappingKind::kAttributeSplit, schema_, ring_);
  auto m3 = make_mapping(MappingKind::kSelectiveAttribute, schema_, ring_);
  workload::WorkloadGenerator gen(schema_, {}, 99);
  double sum1 = 0, sum3 = 0;
  for (int i = 0; i < 200; ++i) {
    const Subscription s = make_sub(gen.make_constraints());
    sum1 += static_cast<double>(m1->subscription_keys(s).size());
    sum3 += static_cast<double>(m3->subscription_keys(s).size());
  }
  const double ratio = sum1 / sum3;
  EXPECT_GT(ratio, 6.0);
  EXPECT_LT(ratio, 14.0);
}

TEST_F(MappingKeyCountTest, PartiallyDefinedSubscriptions) {
  // §4.2: Selective-Attribute is the least sensitive to subscriptions
  // constraining only some attributes.
  const Subscription partial = make_sub({{2, {300'000, 300'999}}});
  auto m1 = make_mapping(MappingKind::kAttributeSplit, schema_, ring_);
  auto m3 = make_mapping(MappingKind::kSelectiveAttribute, schema_, ring_);
  const auto k1 = m1->subscription_keys(partial);
  const auto k3 = m3->subscription_keys(partial);
  EXPECT_LE(k3.size(), 10u);
  // Attribute-Split must cover unconstrained attributes entirely.
  EXPECT_GT(k1.size(), 8000u);
}

// ---------------------------------------------------------------------------
// subscription_ranges (collecting support)
// ---------------------------------------------------------------------------

TEST(MappingRangesTest, ContiguousRunsCompress) {
  const Schema schema = Schema::uniform(2, 999'999);
  auto m = make_mapping(MappingKind::kSelectiveAttribute, schema,
                        RingParams{13});
  const Subscription s = make_sub({{0, {0, 30'000}}, {1, {0, 999'999}}});
  const auto ranges = m->subscription_ranges(s);
  ASSERT_EQ(ranges.size(), 1u);
  const auto keys = m->subscription_keys(s);
  EXPECT_EQ(ranges[0].lo, keys.front());
  EXPECT_EQ(ranges[0].hi, keys.back());
  EXPECT_EQ(ranges[0].size(RingParams{13}), keys.size());
}

TEST(MappingRangesTest, AttributeSplitYieldsOneRunPerAttribute) {
  const Schema schema = Schema::uniform(3, 999'999);
  auto m = make_mapping(MappingKind::kAttributeSplit, schema,
                        RingParams{13});
  const Subscription s = make_sub(
      {{0, {0, 20'000}}, {1, {400'000, 420'000}}, {2, {800'000, 820'000}}});
  const auto ranges = m->subscription_ranges(s);
  EXPECT_EQ(ranges.size(), 3u);
}

// ---------------------------------------------------------------------------
// The mapping intersection rule (property tests)
// ---------------------------------------------------------------------------

struct IntersectionParam {
  MappingKind kind;
  Value discretization;
  bool selective_attr;
};

class IntersectionRuleTest
    : public ::testing::TestWithParam<IntersectionParam> {};

TEST_P(IntersectionRuleTest, MatchingPairsAlwaysIntersect) {
  const IntersectionParam param = GetParam();
  const Schema schema = Schema::uniform(4, 1'000'000);
  const RingParams ring{13};
  MappingOptions opt;
  opt.discretization = param.discretization;
  auto mapping = make_mapping(param.kind, schema, ring, opt);

  workload::WorkloadParams wp;
  if (param.selective_attr) wp.selective = {true, false, false, false};
  workload::WorkloadGenerator gen(schema, wp, 4242);

  for (int iter = 0; iter < 500; ++iter) {
    Subscription sub = make_sub(gen.make_constraints(),
                                static_cast<SubscriptionId>(iter + 1));
    // Randomly drop constraints to cover partially-defined subscriptions.
    while (sub.constraints.size() > 1 && gen.rng().bernoulli(0.2)) {
      sub.constraints.pop_back();
    }
    const Event e = make_event(gen.make_matching_values(sub),
                               static_cast<EventId>(iter + 1));
    ASSERT_TRUE(sub.matches(e));

    const auto sk = mapping->subscription_keys(sub);
    const auto ek = mapping->event_keys(e);
    ASSERT_FALSE(sk.empty());
    ASSERT_FALSE(ek.empty());
    const bool intersects = std::any_of(ek.begin(), ek.end(), [&](Key k) {
      return std::binary_search(sk.begin(), sk.end(), k);
    });
    ASSERT_TRUE(intersects)
        << to_string(param.kind) << " violated the intersection rule for "
        << sub << " and " << e;

    // Exactly-once support: at least one EK key must pass should_notify,
    // and every passing key must be in SK.
    int responsible = 0;
    for (Key k : ek) {
      if (mapping->should_notify(sub, e, k)) {
        ++responsible;
        EXPECT_TRUE(std::binary_search(sk.begin(), sk.end(), k));
      }
    }
    ASSERT_GE(responsible, 1);
    if (param.kind == MappingKind::kSelectiveAttribute) {
      ASSERT_EQ(responsible, 1)
          << "selective-attribute must have a unique responsible key";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMappings, IntersectionRuleTest,
    ::testing::Values(
        IntersectionParam{MappingKind::kAttributeSplit, 1, false},
        IntersectionParam{MappingKind::kAttributeSplit, 1, true},
        IntersectionParam{MappingKind::kAttributeSplit, 1500, false},
        IntersectionParam{MappingKind::kKeySpaceSplit, 1, false},
        IntersectionParam{MappingKind::kKeySpaceSplit, 1, true},
        IntersectionParam{MappingKind::kKeySpaceSplit, 1500, false},
        IntersectionParam{MappingKind::kSelectiveAttribute, 1, false},
        IntersectionParam{MappingKind::kSelectiveAttribute, 1, true},
        IntersectionParam{MappingKind::kSelectiveAttribute, 1500, false},
        IntersectionParam{MappingKind::kSelectiveAttribute, 1500, true}),
    [](const ::testing::TestParamInfo<IntersectionParam>& info) {
      std::string name{to_string(info.param.kind)};
      std::replace(name.begin(), name.end(), '-', '_');
      name += info.param.discretization > 1 ? "_disc" : "_fine";
      name += info.param.selective_attr ? "_sel" : "_nosel";
      return name;
    });

TEST(MappingMiscTest, NonMatchingEventsUsuallyMissSubscription) {
  // Sanity: EK of a far-away event should not hit SK of a tight sub
  // (not a guarantee, but should hold for clearly disjoint values).
  const Schema schema = Schema::uniform(4, 1'000'000);
  auto m = make_mapping(MappingKind::kKeySpaceSplit, schema, RingParams{13});
  const Subscription s = make_sub(
      {{0, {0, 100}}, {1, {0, 100}}, {2, {0, 100}}, {3, {0, 100}}});
  const Event e = make_event({900'000, 900'000, 900'000, 900'000});
  const auto sk = m->subscription_keys(s);
  const auto ek = m->event_keys(e);
  EXPECT_FALSE(std::binary_search(sk.begin(), sk.end(), ek[0]));
}

TEST(MappingMiscTest, EventKeysSortedAndUnique) {
  const Schema schema = Schema::uniform(4, 1'000'000);
  Rng rng(5);
  for (MappingKind kind :
       {MappingKind::kAttributeSplit, MappingKind::kKeySpaceSplit,
        MappingKind::kSelectiveAttribute}) {
    auto m = make_mapping(kind, schema, RingParams{13});
    for (int i = 0; i < 50; ++i) {
      Event e = make_event({rng.uniform_int(0, 1'000'000),
                            rng.uniform_int(0, 1'000'000),
                            rng.uniform_int(0, 1'000'000),
                            rng.uniform_int(0, 1'000'000)},
                           static_cast<EventId>(i + 1));
      const auto ek = m->event_keys(e);
      EXPECT_TRUE(std::is_sorted(ek.begin(), ek.end()));
      EXPECT_EQ(std::adjacent_find(ek.begin(), ek.end()), ek.end());
      for (Key k : ek) EXPECT_LE(k, RingParams{13}.max_key());
    }
  }
}

// ---------------------------------------------------------------------------
// Key-space rotation (the "nearly static" hotspot adjustment of §4.2)
// ---------------------------------------------------------------------------

TEST(MappingRotationTest, RotationShiftsEveryKeyConsistently) {
  const Schema schema = Schema::uniform(2, 9'999);
  const RingParams ring{10};
  MappingOptions rotated;
  rotated.rotation = 300;
  auto base = make_mapping(MappingKind::kSelectiveAttribute, schema, ring);
  auto rot = make_mapping(MappingKind::kSelectiveAttribute, schema, ring,
                          rotated);

  const Subscription sub = make_sub({{0, {1'000, 1'400}}});
  const auto k0 = base->subscription_keys(sub);
  const auto k1 = rot->subscription_keys(sub);
  ASSERT_EQ(k0.size(), k1.size());
  for (std::size_t i = 0; i < k0.size(); ++i) {
    EXPECT_EQ(ring.add(k0[i], 300), k1[i]);
  }
  const Event e = make_event({1'200, 5'000});
  const auto e0 = base->event_keys(e);
  const auto e1 = rot->event_keys(e);
  ASSERT_EQ(e0.size(), e1.size());
  for (std::size_t i = 0; i < e0.size(); ++i) {
    EXPECT_EQ(ring.add(e0[i], 300), e1[i]);
  }
}

TEST(MappingRotationTest, IntersectionRuleHoldsUnderRotation) {
  const Schema schema = Schema::uniform(4, 1'000'000);
  const RingParams ring{13};
  workload::WorkloadGenerator gen(schema, {}, 808);
  for (const MappingKind kind :
       {MappingKind::kAttributeSplit, MappingKind::kKeySpaceSplit,
        MappingKind::kSelectiveAttribute}) {
    MappingOptions opt;
    opt.rotation = 4'321;
    auto m = make_mapping(kind, schema, ring, opt);
    for (int i = 0; i < 100; ++i) {
      const Subscription sub = make_sub(gen.make_constraints(),
                                        static_cast<SubscriptionId>(i + 1));
      const Event e = make_event(gen.make_matching_values(sub),
                                 static_cast<EventId>(i + 1));
      const auto sk = m->subscription_keys(sub);
      const auto ek = m->event_keys(e);
      int responsible = 0;
      for (Key k : ek) {
        if (m->should_notify(sub, e, k)) {
          ++responsible;
          EXPECT_TRUE(std::binary_search(sk.begin(), sk.end(), k));
        }
      }
      ASSERT_GE(responsible, 1) << to_string(kind);
    }
  }
}

TEST(MappingRotationTest, RotationRelocatesHotspot) {
  // The point of the adjustment: the same hot subscription region maps
  // to a disjoint set of keys after an epoch change.
  const Schema schema = Schema::uniform(1, 9'999);
  const RingParams ring{10};
  MappingOptions epoch1;
  epoch1.rotation = 512;  // half the ring
  auto m0 = make_mapping(MappingKind::kSelectiveAttribute, schema, ring);
  auto m1 = make_mapping(MappingKind::kSelectiveAttribute, schema, ring,
                         epoch1);
  const Subscription hot = make_sub({{0, {0, 200}}});
  const auto k0 = m0->subscription_keys(hot);
  const auto k1 = m1->subscription_keys(hot);
  for (Key k : k1) {
    EXPECT_FALSE(std::binary_search(k0.begin(), k0.end(), k));
  }
}

TEST(MappingRotationTest, RangesStayContiguousAcrossWrap) {
  const Schema schema = Schema::uniform(1, 9'999);
  const RingParams ring{10};
  MappingOptions opt;
  opt.rotation = 1'000;  // pushes high keys past 2^10
  auto m = make_mapping(MappingKind::kSelectiveAttribute, schema, ring, opt);
  const Subscription sub = make_sub({{0, {9'000, 9'999}}});
  const auto ranges = m->subscription_ranges(sub);
  ASSERT_EQ(ranges.size(), 1u);  // wrap-merged into one ring range
  const auto keys = m->subscription_keys(sub);
  EXPECT_EQ(ranges[0].size(ring), keys.size());
  for (Key k : keys) EXPECT_TRUE(ranges[0].contains(ring, k));
}

// ---------------------------------------------------------------------------
// String attributes (§3.2 footnote 2)
// ---------------------------------------------------------------------------

TEST(SchemaStringTest, HashedStringsLandInDomain) {
  const Schema schema({{"topic", {0, 999}}, {"price", {0, 10'000}}});
  for (const char* name : {"sports", "politics", "weather", ""}) {
    const Value v = schema.value_from_string(0, name);
    EXPECT_TRUE(schema.domain(0).contains(v)) << name;
  }
}

TEST(SchemaStringTest, DeterministicAndDiscriminating) {
  const Schema schema({{"topic", {0, 999'999}}});
  EXPECT_EQ(schema.value_from_string(0, "sports"),
            schema.value_from_string(0, "sports"));
  EXPECT_NE(schema.value_from_string(0, "sports"),
            schema.value_from_string(0, "politics"));
}

TEST(SchemaStringTest, EqualityConstraintOnHashedStringMatches) {
  const Schema schema({{"topic", {0, 999'999}}, {"price", {0, 1'000}}});
  const Value sports = schema.value_from_string(0, "sports");
  const Subscription sub =
      make_sub({{0, ClosedInterval::point(sports)}, {1, {100, 200}}});
  EXPECT_TRUE(sub.matches(make_event({sports, 150})));
  EXPECT_FALSE(sub.matches(
      make_event({schema.value_from_string(0, "politics"), 150})));
}

TEST(MappingMiscTest, DiscretizationReducesSubscriptionKeys) {
  // §4.3.3 / Figure 9(b): coarser discretization, fewer rendezvous keys.
  const Schema schema = Schema::uniform(4, 1'000'000);
  workload::WorkloadGenerator gen(schema, {}, 7);
  MappingOptions fine;
  MappingOptions disc10;
  disc10.discretization = 1500;  // 10% of the 15k mean range
  MappingOptions disc20;
  disc20.discretization = 3000;
  auto m_fine = make_mapping(MappingKind::kSelectiveAttribute, schema,
                             RingParams{13}, fine);
  auto m_10 = make_mapping(MappingKind::kSelectiveAttribute, schema,
                           RingParams{13}, disc10);
  auto m_20 = make_mapping(MappingKind::kSelectiveAttribute, schema,
                           RingParams{13}, disc20);
  double k_fine = 0, k_10 = 0, k_20 = 0;
  for (int i = 0; i < 100; ++i) {
    const Subscription s = make_sub(gen.make_constraints());
    k_fine += static_cast<double>(m_fine->subscription_keys(s).size());
    k_10 += static_cast<double>(m_10->subscription_keys(s).size());
    k_20 += static_cast<double>(m_20->subscription_keys(s).size());
  }
  EXPECT_GT(k_fine, k_10);
  EXPECT_GT(k_10, k_20);
}

}  // namespace
}  // namespace cbps::pubsub
