// Tests for the membership ChurnDriver and delivery under sustained
// churn.
#include <gtest/gtest.h>

#include <set>

#include "cbps/pubsub/delivery_checker.hpp"
#include "cbps/workload/churn.hpp"
#include "cbps/workload/driver.hpp"

namespace cbps::workload {
namespace {

pubsub::SystemConfig churn_config(std::size_t nodes = 32) {
  pubsub::SystemConfig cfg;
  cfg.nodes = nodes;
  cfg.seed = 3;
  cfg.chord.ring = RingParams{11};
  cfg.chord.stabilize_period = sim::sec(5);
  cfg.mapping = pubsub::MappingKind::kSelectiveAttribute;
  cfg.pubsub.sub_transport = pubsub::PubSubConfig::Transport::kMulticast;
  return cfg;
}

TEST(ChurnDriverTest, RespectsMinNodes) {
  pubsub::PubSubSystem system(churn_config(16),
                              pubsub::Schema::uniform(2, 999));
  system.network().start_maintenance_all();
  ChurnParams cp;
  cp.mean_interval_s = 10.0;
  cp.join_fraction = 0.0;  // removals only
  cp.crash_fraction = 0.0;
  cp.min_nodes = 12;
  ChurnDriver churn(system, cp, 7);
  churn.start();
  system.run_for(sim::sec(3'000));
  churn.stop();
  EXPECT_EQ(system.network().alive_count(), 12u);
  EXPECT_EQ(churn.leaves(), 4u);
  EXPECT_EQ(churn.crashes(), 0u);
}

TEST(ChurnDriverTest, ProtectedNodesSurvive) {
  pubsub::PubSubSystem system(churn_config(16),
                              pubsub::Schema::uniform(2, 999));
  system.network().start_maintenance_all();
  std::set<Key> precious{system.node_id(0), system.node_id(5),
                         system.node_id(11)};
  ChurnParams cp;
  cp.mean_interval_s = 10.0;
  cp.join_fraction = 0.0;
  cp.crash_fraction = 1.0;  // crashes only
  cp.min_nodes = 4;
  ChurnDriver churn(system, cp, 9,
                    [&](Key id) { return precious.contains(id); });
  churn.start();
  system.run_for(sim::sec(5'000));
  for (Key id : precious) {
    EXPECT_TRUE(system.network().is_alive(id)) << id;
  }
  EXPECT_GT(churn.crashes(), 0u);
}

TEST(ChurnDriverTest, MaxEventsStopsTheProcess) {
  pubsub::PubSubSystem system(churn_config(24),
                              pubsub::Schema::uniform(2, 999));
  system.network().start_maintenance_all();
  ChurnParams cp;
  cp.mean_interval_s = 5.0;
  cp.max_events = 6;
  ChurnDriver churn(system, cp, 11);
  churn.start();
  system.run_for(sim::sec(10'000));
  EXPECT_EQ(churn.events(), 6u);
}

TEST(ChurnDriverTest, JoinsGrowTheRing) {
  pubsub::PubSubSystem system(churn_config(16),
                              pubsub::Schema::uniform(2, 999));
  system.network().start_maintenance_all();
  ChurnParams cp;
  cp.mean_interval_s = 20.0;
  cp.join_fraction = 1.0;  // joins only
  cp.max_events = 5;
  ChurnDriver churn(system, cp, 13);
  churn.start();
  system.run_for(sim::sec(2'000));
  EXPECT_EQ(churn.joins(), 5u);
  EXPECT_EQ(system.network().alive_count(), 21u);
  EXPECT_EQ(system.node_count(), 21u);  // pub/sub layer attached to all
}

TEST(ChurnIntegrationTest, GracefulChurnBarelyDisturbsDelivery) {
  pubsub::PubSubSystem system(churn_config(48),
                              pubsub::Schema::uniform(3, 99'999));
  system.network().start_maintenance_all();

  pubsub::DeliveryChecker checker;
  WorkloadParams wp;
  wp.matching_probability = 0.8;
  WorkloadGenerator gen(system.schema(), wp, 19);
  DriverParams dp;
  dp.max_subscriptions = 30;
  dp.max_publications = 150;
  Driver driver(system, gen, dp, &checker);
  driver.start();

  ChurnParams cp;
  cp.mean_interval_s = 40.0;
  cp.crash_fraction = 0.0;  // graceful only
  cp.min_nodes = 24;
  ChurnDriver churn(system, cp, 21, [&driver](Key id) {
    for (const auto& sub : driver.active_subscriptions()) {
      if (sub->subscriber == id) return true;
    }
    return false;
  });
  churn.start();

  system.run_for(sim::sec(1'200));
  churn.stop();
  system.run_for(sim::sec(120));

  const auto report = checker.verify(sim::sec(10));
  ASSERT_GT(report.expected, 50u);
  EXPECT_GE(static_cast<double>(report.delivered),
            0.97 * static_cast<double>(report.expected))
      << "missing=" << report.missing
      << (report.issues.empty() ? "" : " first: " + report.issues[0]);
  EXPECT_EQ(report.spurious, 0u);
  EXPECT_GT(churn.events(), 10u);
}

}  // namespace
}  // namespace cbps::workload
