// Unit tests for the overlay-layer utilities: traffic accounting, the
// shared m-cast partition, and the metrics registry.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "cbps/metrics/registry.hpp"
#include "cbps/overlay/mcast_partition.hpp"
#include "cbps/overlay/payload.hpp"

namespace cbps::overlay {
namespace {

TEST(TrafficStatsTest, PerClassAccounting) {
  TrafficStats stats;
  stats.record_hop(MessageClass::kSubscribe);
  stats.record_hop(MessageClass::kSubscribe);
  stats.record_hop(MessageClass::kPublish);
  stats.record_hop(MessageClass::kControl);
  stats.record_delivery(MessageClass::kPublish);

  EXPECT_EQ(stats.hops(MessageClass::kSubscribe), 2u);
  EXPECT_EQ(stats.hops(MessageClass::kPublish), 1u);
  EXPECT_EQ(stats.hops(MessageClass::kNotify), 0u);
  EXPECT_EQ(stats.total_hops(), 4u);
  EXPECT_EQ(stats.app_hops(), 3u);  // excludes control
  EXPECT_EQ(stats.deliveries(MessageClass::kPublish), 1u);
}

TEST(TrafficStatsTest, RouteSummariesAndReset) {
  TrafficStats stats;
  stats.record_route_complete(MessageClass::kNotify, 2);
  stats.record_route_complete(MessageClass::kNotify, 4);
  EXPECT_EQ(stats.route_hops(MessageClass::kNotify).count(), 2u);
  EXPECT_DOUBLE_EQ(stats.route_hops(MessageClass::kNotify).mean(), 3.0);
  stats.reset();
  EXPECT_EQ(stats.total_hops(), 0u);
  EXPECT_EQ(stats.route_hops(MessageClass::kNotify).count(), 0u);
}

TEST(MessageClassTest, Names) {
  EXPECT_EQ(to_string(MessageClass::kSubscribe), "subscribe");
  EXPECT_EQ(to_string(MessageClass::kCollect), "collect");
  EXPECT_EQ(to_string(MessageClass::kStateTransfer), "state_transfer");
}

// ---------------------------------------------------------------------------
// partition_mcast_targets
// ---------------------------------------------------------------------------

class McastPartitionTest : public ::testing::Test {
 protected:
  RingParams ring_{8};  // 256 keys
  Key self_ = 100;
  Key pred_ = 90;
  std::function<bool(Key)> covers_ = [this](Key k) {
    return ring_.in_open_closed(pred_, self_, k);
  };
};

TEST_F(McastPartitionTest, LocalKeysSeparated) {
  const auto part = partition_mcast_targets(
      ring_, self_, covers_, {95, 100, 150}, {120, 200});
  EXPECT_EQ(part.local, (std::vector<Key>{100, 95}));  // by ring distance
  EXPECT_EQ(part.delegated.size(), 2u);
  EXPECT_EQ(part.delegated[0], (std::vector<Key>{150}));
  EXPECT_TRUE(part.delegated[1].empty());
  EXPECT_TRUE(part.undeliverable.empty());
}

TEST_F(McastPartitionTest, SegmentsTravelToStrictlyPrecedingCandidate) {
  // Candidates at 120 and 200: keys in (100,120] -> 120; keys in
  // (120, 200] travel to 120 too?? No: (120, 200) -> 120 only if
  // strictly preceding; key 200 itself goes to 120's segment? distance
  // rule: key 200 has candidate 120 strictly preceding (dist 20 < 100),
  // and candidate 200 NOT strictly preceding (equal) -> goes to 120.
  const auto part = partition_mcast_targets(
      ring_, self_, covers_, {110, 130, 200, 210}, {120, 200});
  EXPECT_EQ(part.delegated[0], (std::vector<Key>{110, 130, 200}));
  EXPECT_EQ(part.delegated[1], (std::vector<Key>{210}));
}

TEST_F(McastPartitionTest, DuplicatesRemoved) {
  const auto part = partition_mcast_targets(ring_, self_, covers_,
                                            {130, 130, 130}, {120});
  EXPECT_EQ(part.delegated[0], (std::vector<Key>{130}));
}

TEST_F(McastPartitionTest, NoCandidatesMeansUndeliverable) {
  const auto part =
      partition_mcast_targets(ring_, self_, covers_, {95, 150}, {});
  EXPECT_EQ(part.local, (std::vector<Key>{95}));
  EXPECT_EQ(part.undeliverable, (std::vector<Key>{150}));
}

TEST_F(McastPartitionTest, WrappingTargets) {
  const auto part = partition_mcast_targets(
      ring_, self_, covers_, {250, 5, 95}, {180, 240});
  EXPECT_EQ(part.local, (std::vector<Key>{95}));
  // 250 and 5 are both beyond candidate 240 (strictly preceding both).
  EXPECT_TRUE(part.delegated[0].empty());
  EXPECT_EQ(part.delegated[1], (std::vector<Key>{250, 5}));
}

TEST_F(McastPartitionTest, EmptyTargetsYieldEmptyPartition) {
  const auto part =
      partition_mcast_targets(ring_, self_, covers_, {}, {120, 200});
  EXPECT_TRUE(part.local.empty());
  ASSERT_EQ(part.delegated.size(), 2u);
  EXPECT_TRUE(part.delegated[0].empty());
  EXPECT_TRUE(part.delegated[1].empty());
  EXPECT_TRUE(part.undeliverable.empty());
}

TEST_F(McastPartitionTest, KeyBeyondSoleCandidateFallsBackToFirst) {
  // Keys past the only candidate have no strictly-preceding delegate to
  // fall back on (the scan stops at index 1), so the `chosen = 0`
  // default must route them to the first candidate rather than lose
  // them — it is still the best forwarding step available.
  const auto part =
      partition_mcast_targets(ring_, self_, covers_, {250, 5}, {120});
  EXPECT_TRUE(part.local.empty());
  ASSERT_EQ(part.delegated.size(), 1u);
  EXPECT_EQ(part.delegated[0], (std::vector<Key>{250, 5}));
  EXPECT_TRUE(part.undeliverable.empty());
}

TEST_F(McastPartitionTest, DisjointUnionPreserved) {
  // Every input key appears in exactly one output bucket.
  std::vector<Key> targets;
  for (Key k = 0; k < 256; k += 3) targets.push_back(k);
  const std::vector<Key> candidates{110, 140, 180, 240, 40};
  // candidates must be sorted by distance from self:
  std::vector<Key> sorted = candidates;
  std::sort(sorted.begin(), sorted.end(), [&](Key a, Key b) {
    return ring_.distance(self_, a) < ring_.distance(self_, b);
  });
  const auto part =
      partition_mcast_targets(ring_, self_, covers_, targets, sorted);
  std::multiset<Key> seen(part.local.begin(), part.local.end());
  for (const auto& bucket : part.delegated) {
    seen.insert(bucket.begin(), bucket.end());
  }
  seen.insert(part.undeliverable.begin(), part.undeliverable.end());
  EXPECT_EQ(seen.size(), targets.size());
  for (Key k : targets) EXPECT_EQ(seen.count(k), 1u) << k;
}

}  // namespace
}  // namespace cbps::overlay

namespace cbps::metrics {
namespace {

TEST(RegistryTest, CountersCreateOnDemand) {
  Registry reg;
  EXPECT_EQ(reg.counter_value("x"), 0u);
  reg.counter("x").inc();
  reg.counter("x").inc(5);
  EXPECT_EQ(reg.counter_value("x"), 6u);
  EXPECT_EQ(reg.counter_value("y"), 0u);  // does not create
  EXPECT_EQ(reg.counters().size(), 1u);
}

TEST(RegistryTest, StatsAndPrint) {
  Registry reg;
  reg.counter("alpha").inc(3);
  reg.stat("lat").add(1.0);
  reg.stat("lat").add(3.0);
  std::ostringstream os;
  reg.print(os);
  EXPECT_NE(os.str().find("alpha"), std::string::npos);
  EXPECT_NE(os.str().find("mean=2"), std::string::npos);
}

TEST(RegistryTest, ResetAll) {
  Registry reg;
  reg.counter("a").inc(7);
  reg.stat("s").add(1.0);
  reg.reset_all();
  EXPECT_EQ(reg.counter_value("a"), 0u);
  // Entries are reset in place, never destroyed: names persist (so a
  // post-reset print still shows every metric) with zeroed contents.
  ASSERT_EQ(reg.stats().size(), 1u);
  EXPECT_EQ(reg.stats().at("s").count(), 0u);
}

TEST(RegistryTest, ResetAllPreservesHandedOutReferences) {
  // Regression: reset_all() used to clear() the underlying maps, which
  // destroyed the Counter/RunningStat objects long-lived callers hold
  // references to (ChordNetwork caches them per message class) — any
  // use after reset was a use-after-free. Entries must be zeroed in
  // place instead.
  Registry reg;
  Counter& hops = reg.counter("hops");
  RunningStat& delay = reg.stat("delay");
  hops.inc(5);
  delay.add(2.0);

  reg.reset_all();

  hops.inc(3);
  delay.add(7.0);
  EXPECT_EQ(reg.counter_value("hops"), 3u);
  ASSERT_EQ(reg.stats().count("delay"), 1u);
  EXPECT_EQ(reg.stats().at("delay").count(), 1u);
  EXPECT_DOUBLE_EQ(reg.stats().at("delay").mean(), 7.0);
  // And the handed-out references still alias the registry's entries.
  EXPECT_EQ(&reg.counter("hops"), &hops);
  EXPECT_EQ(&reg.stat("delay"), &delay);
}

}  // namespace
}  // namespace cbps::metrics
