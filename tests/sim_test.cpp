// Tests for the discrete-event simulation engine.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "cbps/sim/latency.hpp"
#include "cbps/sim/simulator.hpp"

namespace cbps::sim {
namespace {

TEST(SimulatorTest, ProcessesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(ms(30), [&] { order.push_back(3); });
  sim.schedule_at(ms(10), [&] { order.push_back(1); });
  sim.schedule_at(ms(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), ms(30));
}

TEST(SimulatorTest, TiesBreakByScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(ms(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SimulatorTest, ClockVisibleInsideCallback) {
  Simulator sim;
  SimTime seen = 0;
  sim.schedule_after(sec(2), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, sec(2));
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  std::vector<SimTime> fire_times;
  sim.schedule_at(ms(10), [&] {
    fire_times.push_back(sim.now());
    sim.schedule_after(ms(15), [&] { fire_times.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(fire_times.size(), 2u);
  EXPECT_EQ(fire_times[0], ms(10));
  EXPECT_EQ(fire_times[1], ms(25));
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const auto id = sim.schedule_at(ms(5), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a no-op
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelAfterFiringReturnsFalse) {
  Simulator sim;
  const auto id = sim.schedule_at(ms(1), [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  std::vector<int> fired;
  sim.schedule_at(ms(10), [&] { fired.push_back(1); });
  sim.schedule_at(ms(20), [&] { fired.push_back(2); });
  sim.schedule_at(ms(30), [&] { fired.push_back(3); });
  EXPECT_EQ(sim.run_until(ms(20)), 2u);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), ms(20));
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, RunUntilWithNoEventsAdvancesClock) {
  Simulator sim;
  EXPECT_EQ(sim.run_until(sec(100)), 0u);
  EXPECT_EQ(sim.now(), sec(100));
}

TEST(SimulatorTest, RunHonorsMaxEvents) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(ms(static_cast<std::uint64_t>(i)), [&] { ++count; });
  }
  EXPECT_EQ(sim.run(4), 4u);
  EXPECT_EQ(count, 4);
  sim.run();
  EXPECT_EQ(count, 10);
}

TEST(SimulatorTest, PeriodicTimerFiresRepeatedly) {
  Simulator sim;
  std::vector<SimTime> fires;
  const auto id = sim.add_timer(sec(3), [&] { fires.push_back(sim.now()); });
  sim.run_until(sec(10));
  EXPECT_EQ(fires, (std::vector<SimTime>{sec(3), sec(6), sec(9)}));
  sim.cancel_timer(id);
  sim.run_until(sec(20));
  EXPECT_EQ(fires.size(), 3u);
}

TEST(SimulatorTest, TimerWithCustomFirstDelay) {
  Simulator sim;
  std::vector<SimTime> fires;
  sim.add_timer(sec(5), sec(1), [&] { fires.push_back(sim.now()); });
  sim.run_until(sec(12));
  EXPECT_EQ(fires, (std::vector<SimTime>{sec(1), sec(6), sec(11)}));
}

TEST(SimulatorTest, TimerCanCancelItself) {
  Simulator sim;
  int count = 0;
  Simulator::TimerId id = 0;
  id = sim.add_timer(sec(1), [&] {
    if (++count == 3) sim.cancel_timer(id);
  });
  sim.run_until(sec(10));
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, CancelUnknownTimerReturnsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel_timer(999));
}

TEST(SimulatorTest, EventsProcessedCounter) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_after(ms(1), [] {});
  sim.run();
  EXPECT_EQ(sim.events_processed(), 5u);
}

TEST(SimulatorTest, CancelledIdStaysDeadAfterSlotReuse) {
  Simulator sim;
  bool a_fired = false;
  bool b_fired = false;
  const auto id_a = sim.schedule_at(ms(10), [&] { a_fired = true; });
  EXPECT_TRUE(sim.cancel(id_a));
  // The freed slot is reused, but a fresh generation makes a fresh id.
  const auto id_b = sim.schedule_at(ms(20), [&] { b_fired = true; });
  EXPECT_NE(id_a, id_b);
  EXPECT_FALSE(sim.cancel(id_a));  // the old id must not hit the new event
  sim.run();
  EXPECT_FALSE(a_fired);
  EXPECT_TRUE(b_fired);
}

TEST(SimulatorTest, FiredIdDoesNotCancelSlotSuccessor) {
  Simulator sim;
  const auto id_a = sim.schedule_at(ms(1), [] {});
  sim.run();
  bool b_fired = false;
  const auto id_b = sim.schedule_at(ms(2), [&] { b_fired = true; });
  EXPECT_NE(id_a, id_b);
  EXPECT_FALSE(sim.cancel(id_a));
  sim.run();
  EXPECT_TRUE(b_fired);
}

TEST(SimulatorTest, PendingEventsTracksCancellation) {
  Simulator sim;
  const auto a = sim.schedule_at(ms(1), [] {});
  sim.schedule_at(ms(2), [] {});
  sim.schedule_at(ms(3), [] {});
  EXPECT_EQ(sim.pending_events(), 3u);
  EXPECT_TRUE(sim.cancel(a));
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, HeapCompactionPreservesOrderAndTies) {
  // Cancel enough entries that the stale ones outnumber the live ones
  // (triggering compaction), then check the survivors still fire in
  // time order with schedule-order tie-breaking.
  Simulator sim;
  std::vector<Simulator::EventId> cancels;
  std::vector<int> order;
  for (int i = 0; i < 1000; ++i) {
    const auto id = sim.schedule_at(
        ms(static_cast<std::uint64_t>(100 + i % 7)),
        [&order, i] { order.push_back(i); });
    if (i % 10 != 0) cancels.push_back(id);
  }
  for (const auto id : cancels) EXPECT_TRUE(sim.cancel(id));
  EXPECT_EQ(sim.pending_events(), 100u);
  sim.run();
  ASSERT_EQ(order.size(), 100u);
  for (std::size_t i = 1; i < order.size(); ++i) {
    // Same-time events keep schedule order, so within a time bucket the
    // payload values are ascending; across buckets time dominates.
    const int prev_time = order[i - 1] % 7;
    const int cur_time = order[i] % 7;
    EXPECT_TRUE(prev_time < cur_time ||
                (prev_time == cur_time && order[i - 1] < order[i]));
  }
}

TEST(SimulatorTest, AckRetryChurnKeepsPendingBounded) {
  // The ack/retry pattern: every fire cancels a long-dead decoy and
  // schedules a replacement. Generation reuse must keep this airtight.
  Simulator sim;
  int fires = 0;
  Simulator::EventId decoy = sim.schedule_at(sec(1000), [] { FAIL(); });
  std::function<void()> step = [&] {
    ++fires;
    EXPECT_TRUE(sim.cancel(decoy));
    if (fires < 5000) {
      decoy = sim.schedule_at(sec(1000) + ms(static_cast<std::uint64_t>(fires)),
                              [] { FAIL(); });
      sim.schedule_after(us(3), step);
    }
  };
  sim.schedule_after(us(3), step);
  sim.run();
  EXPECT_EQ(fires, 5000);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(LatencyTest, FixedLatencyIsConstant) {
  Rng rng(1);
  FixedLatency lat(ms(50));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(lat.sample(rng), ms(50));
}

TEST(LatencyTest, UniformLatencyWithinBounds) {
  Rng rng(2);
  UniformLatency lat(ms(10), ms(90));
  RunningStat stat;
  for (int i = 0; i < 10000; ++i) {
    const SimTime v = lat.sample(rng);
    EXPECT_GE(v, ms(10));
    EXPECT_LE(v, ms(90));
    stat.add(static_cast<double>(v));
  }
  EXPECT_NEAR(stat.mean(), static_cast<double>(ms(50)),
              static_cast<double>(ms(2)));
}

TEST(TimeTest, Conversions) {
  EXPECT_EQ(sec(2), ms(2000));
  EXPECT_EQ(ms(1), us(1000));
  EXPECT_DOUBLE_EQ(to_seconds(sec(5)), 5.0);
  EXPECT_EQ(from_seconds(2.5), ms(2500));
}

}  // namespace
}  // namespace cbps::sim
