// Tests for the rendezvous matching engines: counting-index unit
// behaviour, covering/merging semantics, and differential properties
// driving every engine against the brute-force oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "cbps/pubsub/counting_index.hpp"
#include "cbps/pubsub/covering_index.hpp"
#include "cbps/pubsub/store.hpp"
#include "cbps/workload/generator.hpp"

namespace cbps::pubsub {
namespace {

SubscriptionPtr make_sub(SubscriptionId id, std::vector<Constraint> cs) {
  auto s = std::make_shared<Subscription>();
  s->id = id;
  s->subscriber = 1;
  s->constraints = std::move(cs);
  return s;
}

Event make_event(std::vector<Value> values, EventId id = 1) {
  Event e;
  e.id = id;
  e.values = std::move(values);
  return e;
}

TEST(CountingIndexTest, SingleConstraintMatch) {
  const Schema schema = Schema::uniform(2, 999);
  CountingIndex index(schema, 16);
  EXPECT_TRUE(index.insert(make_sub(1, {{0, {100, 200}}})));
  EXPECT_EQ(index.match(make_event({150, 0})),
            std::vector<SubscriptionId>{1});
  EXPECT_TRUE(index.match(make_event({201, 0})).empty());
  EXPECT_TRUE(index.match(make_event({99, 999})).empty());
}

TEST(CountingIndexTest, ConjunctionRequiresAllConstraints) {
  const Schema schema = Schema::uniform(3, 999);
  CountingIndex index(schema, 16);
  index.insert(make_sub(1, {{0, {0, 499}}, {2, {500, 999}}}));
  EXPECT_EQ(index.match(make_event({100, 7, 600})).size(), 1u);
  EXPECT_TRUE(index.match(make_event({100, 7, 499})).empty());
  EXPECT_TRUE(index.match(make_event({500, 7, 600})).empty());
}

TEST(CountingIndexTest, EmptyConstraintsMatchEverything) {
  const Schema schema = Schema::uniform(2, 999);
  CountingIndex index(schema, 16);
  index.insert(make_sub(7, {}));
  EXPECT_EQ(index.match(make_event({0, 999})),
            std::vector<SubscriptionId>{7});
  EXPECT_TRUE(index.remove(7));
  EXPECT_TRUE(index.match(make_event({0, 999})).empty());
}

TEST(CountingIndexTest, DuplicateInsertRejected) {
  const Schema schema = Schema::uniform(1, 99);
  CountingIndex index(schema, 4);
  EXPECT_TRUE(index.insert(make_sub(1, {{0, {0, 50}}})));
  EXPECT_FALSE(index.insert(make_sub(1, {{0, {0, 50}}})));
  EXPECT_EQ(index.match(make_event({25})).size(), 1u);  // no double count
}

TEST(CountingIndexTest, RemoveUnknownReturnsFalse) {
  const Schema schema = Schema::uniform(1, 99);
  CountingIndex index(schema, 4);
  EXPECT_FALSE(index.remove(42));
}

TEST(CountingIndexTest, DomainBoundaryValues) {
  const Schema schema = Schema::uniform(1, 999);
  CountingIndex index(schema, 7);  // non-divisible bucket count
  index.insert(make_sub(1, {{0, {0, 0}}}));
  index.insert(make_sub(2, {{0, {999, 999}}}));
  index.insert(make_sub(3, {{0, {0, 999}}}));
  const auto at_lo = index.match(make_event({0}));
  EXPECT_EQ(std::set<SubscriptionId>(at_lo.begin(), at_lo.end()),
            (std::set<SubscriptionId>{1, 3}));
  const auto at_hi = index.match(make_event({999}));
  EXPECT_EQ(std::set<SubscriptionId>(at_hi.begin(), at_hi.end()),
            (std::set<SubscriptionId>{2, 3}));
}

TEST(CountingIndexTest, ShiftedDomain) {
  const Schema schema({{"t", {-100, 100}}});
  CountingIndex index(schema, 8);
  index.insert(make_sub(1, {{0, {-50, -10}}}));
  EXPECT_EQ(index.match(make_event({-30})).size(), 1u);
  EXPECT_TRUE(index.match(make_event({0})).empty());
}

TEST(CountingIndexTest, EquivalentToBruteForceOnRandomWorkload) {
  const Schema schema = Schema::uniform(4, 1'000'000);
  CountingIndex index(schema, 256);
  workload::WorkloadParams wp;
  wp.nonselective_range_frac = 0.10;
  workload::WorkloadGenerator gen(schema, wp, 31337);

  std::vector<SubscriptionPtr> subs;
  for (int i = 0; i < 400; ++i) {
    auto cs = gen.make_constraints();
    // Drop random constraints to cover partial subscriptions.
    while (cs.size() > 1 && gen.rng().bernoulli(0.3)) cs.pop_back();
    auto s = make_sub(static_cast<SubscriptionId>(i + 1), std::move(cs));
    index.insert(s);
    subs.push_back(std::move(s));
  }
  // Interleave removals.
  for (int i = 0; i < 100; ++i) {
    const auto pick = static_cast<std::size_t>(
        gen.rng().uniform_int(0, static_cast<std::int64_t>(subs.size()) - 1));
    index.remove(subs[pick]->id);
    subs.erase(subs.begin() + static_cast<std::ptrdiff_t>(pick));
  }

  for (int trial = 0; trial < 300; ++trial) {
    Event e;
    e.id = static_cast<EventId>(trial + 1);
    if (trial % 2 == 0 && !subs.empty()) {
      const auto pick = static_cast<std::size_t>(gen.rng().uniform_int(
          0, static_cast<std::int64_t>(subs.size()) - 1));
      e.values = gen.make_matching_values(*subs[pick]);
    } else {
      e.values = gen.make_random_values();
    }

    std::set<SubscriptionId> expected;
    for (const auto& s : subs) {
      if (s->matches(e)) expected.insert(s->id);
    }
    const auto got_vec = index.match(e);
    const std::set<SubscriptionId> got(got_vec.begin(), got_vec.end());
    ASSERT_EQ(got, expected) << "trial " << trial;
    ASSERT_EQ(got_vec.size(), got.size()) << "duplicate ids reported";
  }
}

// Regression: a constraint range disjoint from the schema domain used to
// dereference an empty std::optional in CountingIndex::insert. The
// subscription is unsatisfiable — every engine must hold it inert (never
// match, still removable) exactly like brute force never matches it.
TEST(CountingIndexTest, DomainDisjointConstraintIsInert) {
  const Schema schema({{"t", {0, 999}}, {"u", {0, 999}}});
  CountingIndex index(schema, 8);
  // Disjoint on attr 0 and valid on attr 1: no event can satisfy it.
  EXPECT_TRUE(index.insert(make_sub(1, {{0, {2000, 3000}}, {1, {0, 999}}})));
  EXPECT_EQ(index.size(), 1u);
  EXPECT_TRUE(index.match(make_event({500, 500})).empty());
  EXPECT_FALSE(index.insert(make_sub(1, {{0, {2000, 3000}}})));
  EXPECT_TRUE(index.remove(1));
  EXPECT_EQ(index.size(), 0u);

  CoveringIndex covering(schema);
  EXPECT_TRUE(
      covering.insert(make_sub(2, {{0, {2000, 3000}}, {1, {0, 999}}})));
  EXPECT_EQ(covering.inert_count(), 1u);
  EXPECT_EQ(covering.stored_roots(), 0u);
  std::vector<SubscriptionId> out;
  covering.match_into(make_event({500, 500}), out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(covering.remove(2));
  EXPECT_EQ(covering.size(), 0u);
}

// Regression: a refresh (same id, new constraints) used to leave stale
// index entries and a stale stored pointer, so the indexed engines kept
// matching the old filter while brute force matched the new one.
TEST(StoreWithIndexTest, RefreshWithChangedConstraintsReindexes) {
  const Schema schema = Schema::uniform(1, 999);
  for (const MatchEngine engine :
       {MatchEngine::kBruteForce, MatchEngine::kCountingIndex,
        MatchEngine::kCoveringIndex}) {
    SubscriptionStore store;
    store.use_engine(engine, schema);
    store.insert({make_sub(1, {{0, {0, 100}}}), sim::kSimTimeNever, {},
                  false});
    // Re-subscription under the same id with a different filter.
    store.insert({make_sub(1, {{0, {500, 600}}}), sim::kSimTimeNever, {},
                  false});
    EXPECT_TRUE(store.match(make_event({50}), 0).empty())
        << "engine " << to_string(engine) << " matched stale constraints";
    const auto hits = store.match(make_event({550}), 0);
    ASSERT_EQ(hits.size(), 1u) << "engine " << to_string(engine);
    // The stored pointer must be the refreshed subscription, not the
    // original (a stale pointer reports the wrong constraint set to
    // collectors/state handover even when the id matches).
    EXPECT_EQ(hits[0]->sub->constraints[0].range, (ClosedInterval{500, 600}));
  }
}

TEST(CoveringIndexTest, NarrowerSubscriptionBecomesCoveredChild) {
  const Schema schema = Schema::uniform(2, 999);
  CoveringIndex index(schema);
  EXPECT_TRUE(index.insert(make_sub(1, {{0, {100, 500}}})));
  EXPECT_TRUE(index.insert(make_sub(2, {{0, {200, 300}}, {1, {0, 10}}})));
  EXPECT_EQ(index.stored_roots(), 1u);
  EXPECT_EQ(index.covered_children(), 1u);
  EXPECT_EQ(index.size(), 2u);

  std::vector<SubscriptionId> out;
  index.match_into(make_event({250, 5}), out);
  EXPECT_EQ(std::set<SubscriptionId>(out.begin(), out.end()),
            (std::set<SubscriptionId>{1, 2}));
  out.clear();
  index.match_into(make_event({250, 500}), out);  // outside child's a1
  EXPECT_EQ(out, std::vector<SubscriptionId>{1});
  out.clear();
  index.match_into(make_event({150, 5}), out);  // outside child's a0
  EXPECT_EQ(out, std::vector<SubscriptionId>{1});
}

TEST(CoveringIndexTest, RemovingCovererPromotesChildren) {
  const Schema schema = Schema::uniform(1, 999);
  CoveringIndex index(schema);
  index.insert(make_sub(1, {{0, {0, 500}}}));
  index.insert(make_sub(2, {{0, {100, 200}}}));
  index.insert(make_sub(3, {{0, {150, 180}}}));
  EXPECT_EQ(index.stored_roots(), 1u);
  EXPECT_EQ(index.covered_children(), 2u);

  EXPECT_TRUE(index.remove(1));
  EXPECT_EQ(index.size(), 2u);
  // Children re-admitted: sub 3 is narrower than sub 2, so it re-covers.
  EXPECT_EQ(index.covered_children(), 1u);
  std::vector<SubscriptionId> out;
  index.match_into(make_event({160}), out);
  EXPECT_EQ(std::set<SubscriptionId>(out.begin(), out.end()),
            (std::set<SubscriptionId>{2, 3}));
  out.clear();
  index.match_into(make_event({400}), out);  // only the removed coverer
  EXPECT_TRUE(out.empty());
}

TEST(CoveringIndexTest, OneAttributeShiftMergesUnderUmbrella) {
  const Schema schema = Schema::uniform(2, 999);
  CoveringIndex index(schema);
  // Identical on a1, adjacent on a0: prime merging material.
  index.insert(make_sub(1, {{0, {100, 199}}, {1, {50, 60}}}));
  index.insert(make_sub(2, {{0, {200, 299}}, {1, {50, 60}}}));
  EXPECT_EQ(index.umbrella_count(), 1u);
  EXPECT_EQ(index.stored_roots(), 1u);  // just the umbrella
  EXPECT_EQ(index.covered_children(), 2u);

  std::vector<SubscriptionId> out;
  index.match_into(make_event({150, 55}), out);
  EXPECT_EQ(out, std::vector<SubscriptionId>{1});
  out.clear();
  index.match_into(make_event({250, 55}), out);
  EXPECT_EQ(out, std::vector<SubscriptionId>{2});
  out.clear();
  index.match_into(make_event({150, 70}), out);  // outside both on a1
  EXPECT_TRUE(out.empty());

  // Removing one member dissolves the umbrella back to a plain root.
  EXPECT_TRUE(index.remove(1));
  EXPECT_EQ(index.umbrella_count(), 0u);
  EXPECT_EQ(index.stored_roots(), 1u);
  EXPECT_EQ(index.covered_children(), 0u);
  out.clear();
  index.match_into(make_event({250, 55}), out);
  EXPECT_EQ(out, std::vector<SubscriptionId>{2});
}

TEST(CoveringIndexTest, MergeRespectsFalsePositiveBudget) {
  const Schema schema = Schema::uniform(1, 999'999);
  CoveringOptions opts;
  opts.merge_fp_budget = 0.25;
  CoveringIndex index(schema, opts);
  // Far apart: hull [0, 900009] would be ~99.998% uncovered — no merge.
  index.insert(make_sub(1, {{0, {0, 9}}}));
  index.insert(make_sub(2, {{0, {900'000, 900'009}}}));
  EXPECT_EQ(index.umbrella_count(), 0u);
  EXPECT_EQ(index.stored_roots(), 2u);
  // Adjacent: zero uncovered hull — merges.
  index.insert(make_sub(3, {{0, {10, 19}}}));
  EXPECT_EQ(index.umbrella_count(), 1u);
  std::vector<SubscriptionId> out;
  index.match_into(make_event({5}), out);
  EXPECT_EQ(out, std::vector<SubscriptionId>{1});
  out.clear();
  index.match_into(make_event({15}), out);
  EXPECT_EQ(out, std::vector<SubscriptionId>{3});
}

TEST(CoveringIndexTest, ReportsMemoryAndSupportsMatchAllRoots) {
  const Schema schema = Schema::uniform(2, 999);
  CoveringIndex index(schema);
  index.insert(make_sub(1, {}));  // matches everything, covers everything
  index.insert(make_sub(2, {{0, {10, 20}}}));
  EXPECT_EQ(index.stored_roots(), 1u);
  EXPECT_EQ(index.covered_children(), 1u);
  EXPECT_GT(index.memory_bytes(), 0u);
  std::vector<SubscriptionId> out;
  index.match_into(make_event({15, 0}), out);
  EXPECT_EQ(std::set<SubscriptionId>(out.begin(), out.end()),
            (std::set<SubscriptionId>{1, 2}));
  out.clear();
  index.match_into(make_event({500, 0}), out);
  EXPECT_EQ(out, std::vector<SubscriptionId>{1});
}

TEST(StoreWithIndexTest, MatchesLikeBruteForceStore) {
  const Schema schema = Schema::uniform(3, 9'999);
  workload::WorkloadGenerator gen(schema, {}, 5);

  SubscriptionStore brute;
  SubscriptionStore indexed;
  indexed.use_counting_index(schema, 64);
  EXPECT_EQ(brute.engine(), MatchEngine::kBruteForce);
  EXPECT_EQ(indexed.engine(), MatchEngine::kCountingIndex);

  for (int i = 0; i < 200; ++i) {
    auto s = make_sub(static_cast<SubscriptionId>(i + 1),
                      gen.make_constraints());
    const sim::SimTime expiry =
        (i % 3 == 0) ? sim::sec(static_cast<std::uint64_t>(i)) :
                       sim::kSimTimeNever;
    brute.insert({s, expiry, {}, false});
    indexed.insert({s, expiry, {}, false});
  }
  brute.sweep_expired(sim::sec(100));
  indexed.sweep_expired(sim::sec(100));
  ASSERT_EQ(brute.size(), indexed.size());

  for (int trial = 0; trial < 200; ++trial) {
    Event e;
    e.id = static_cast<EventId>(trial + 1);
    e.values = gen.make_random_values();
    auto ids_of = [](const std::vector<const SubscriptionStore::Record*>&
                         recs) {
      std::set<SubscriptionId> ids;
      for (const auto* r : recs) ids.insert(r->sub->id);
      return ids;
    };
    ASSERT_EQ(ids_of(brute.match(e, sim::sec(150))),
              ids_of(indexed.match(e, sim::sec(150))));
  }
}

// Differential property: drive random insert / refresh / remove /
// sweep_expired sequences through all three engines and assert they
// report identical match sets throughout. Brute force is the oracle;
// the indexed engines must never diverge from it (this is the test that
// pins both fixed divergence bugs and the covering engine's exactness).
TEST(MatchEngineDifferentialTest, EnginesAgreeUnderRandomChurn) {
  const Schema schema = Schema::uniform(3, 99'999);
  for (const std::uint64_t seed : {11u, 23u, 47u, 101u}) {
    workload::WorkloadParams wp;
    wp.nonselective_range_frac = 0.15;
    workload::WorkloadGenerator gen(schema, wp, seed);
    Rng& rng = gen.rng();

    SubscriptionStore brute;
    SubscriptionStore counting;
    SubscriptionStore covering;
    counting.use_counting_index(schema, 64);
    covering.use_covering_index(schema);
    SubscriptionStore* stores[] = {&brute, &counting, &covering};

    std::vector<SubscriptionPtr> live;
    sim::SimTime now = 0;
    SubscriptionId next_id = 1;

    auto random_constraints = [&] {
      auto cs = gen.make_constraints();
      while (cs.size() > 1 && rng.bernoulli(0.35)) cs.pop_back();
      if (rng.bernoulli(0.05)) {
        // Occasionally unsatisfiable: range disjoint from the domain.
        std::erase_if(cs,
                      [](const Constraint& c) { return c.attribute == 2; });
        cs.push_back({2, {200'000, 200'100}});
      }
      return cs;
    };

    for (int step = 0; step < 600; ++step) {
      now += sim::ms(100);
      const double roll = rng.uniform01();
      if (roll < 0.45 || live.empty()) {
        auto s = make_sub(next_id++, random_constraints());
        const sim::SimTime expiry = rng.bernoulli(0.3)
                                        ? now + sim::sec(5)
                                        : sim::kSimTimeNever;
        for (auto* st : stores) st->insert({s, expiry, {}, false});
        live.push_back(std::move(s));
      } else if (roll < 0.60) {
        // Refresh an existing id, usually with changed constraints.
        const auto pick = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(live.size()) - 1));
        auto s = std::make_shared<Subscription>();
        s->id = live[pick]->id;
        s->subscriber = live[pick]->subscriber;
        s->constraints = rng.bernoulli(0.8) ? random_constraints()
                                            : live[pick]->constraints;
        const sim::SimTime expiry = rng.bernoulli(0.5)
                                        ? now + sim::sec(5)
                                        : sim::kSimTimeNever;
        for (auto* st : stores) st->insert({s, expiry, {}, false});
        live[pick] = std::move(s);
      } else if (roll < 0.75) {
        const auto pick = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(live.size()) - 1));
        for (auto* st : stores) st->remove(live[pick]->id);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      } else if (roll < 0.80) {
        const std::size_t swept = brute.sweep_expired(now);
        ASSERT_EQ(counting.sweep_expired(now), swept);
        ASSERT_EQ(covering.sweep_expired(now), swept);
      }

      Event e;
      e.id = static_cast<EventId>(step + 1);
      if (!live.empty() && rng.bernoulli(0.5)) {
        const auto pick = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(live.size()) - 1));
        if (live[pick]->satisfiable_for(schema)) {
          e.values = gen.make_matching_values(*live[pick]);
        } else {
          e.values = gen.make_random_values();
        }
      } else {
        e.values = gen.make_random_values();
      }

      auto ids_of = [](const std::vector<const SubscriptionStore::Record*>&
                           recs) {
        std::set<SubscriptionId> ids;
        for (const auto* r : recs) ids.insert(r->sub->id);
        return ids;
      };
      const auto expected = ids_of(brute.match(e, now));
      ASSERT_EQ(ids_of(counting.match(e, now)), expected)
          << "counting diverged at seed " << seed << " step " << step;
      ASSERT_EQ(ids_of(covering.match(e, now)), expected)
          << "covering diverged at seed " << seed << " step " << step;
    }
    // The engines' bookkeeping must agree on the logical population too.
    ASSERT_EQ(brute.size(), counting.size());
    ASSERT_EQ(brute.size(), covering.size());
    if (const auto* cov = covering.covering_index()) {
      ASSERT_EQ(cov->size(),
                cov->stored_roots() - cov->umbrella_count() +
                    cov->covered_children() + cov->inert_count());
    }
  }
}

}  // namespace
}  // namespace cbps::pubsub
