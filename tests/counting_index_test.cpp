// Tests for the counting-based matching index: unit behaviour and a
// randomized equivalence property against the brute-force oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "cbps/pubsub/counting_index.hpp"
#include "cbps/pubsub/store.hpp"
#include "cbps/workload/generator.hpp"

namespace cbps::pubsub {
namespace {

SubscriptionPtr make_sub(SubscriptionId id, std::vector<Constraint> cs) {
  auto s = std::make_shared<Subscription>();
  s->id = id;
  s->subscriber = 1;
  s->constraints = std::move(cs);
  return s;
}

Event make_event(std::vector<Value> values, EventId id = 1) {
  Event e;
  e.id = id;
  e.values = std::move(values);
  return e;
}

TEST(CountingIndexTest, SingleConstraintMatch) {
  const Schema schema = Schema::uniform(2, 999);
  CountingIndex index(schema, 16);
  EXPECT_TRUE(index.insert(make_sub(1, {{0, {100, 200}}})));
  EXPECT_EQ(index.match(make_event({150, 0})),
            std::vector<SubscriptionId>{1});
  EXPECT_TRUE(index.match(make_event({201, 0})).empty());
  EXPECT_TRUE(index.match(make_event({99, 999})).empty());
}

TEST(CountingIndexTest, ConjunctionRequiresAllConstraints) {
  const Schema schema = Schema::uniform(3, 999);
  CountingIndex index(schema, 16);
  index.insert(make_sub(1, {{0, {0, 499}}, {2, {500, 999}}}));
  EXPECT_EQ(index.match(make_event({100, 7, 600})).size(), 1u);
  EXPECT_TRUE(index.match(make_event({100, 7, 499})).empty());
  EXPECT_TRUE(index.match(make_event({500, 7, 600})).empty());
}

TEST(CountingIndexTest, EmptyConstraintsMatchEverything) {
  const Schema schema = Schema::uniform(2, 999);
  CountingIndex index(schema, 16);
  index.insert(make_sub(7, {}));
  EXPECT_EQ(index.match(make_event({0, 999})),
            std::vector<SubscriptionId>{7});
  EXPECT_TRUE(index.remove(7));
  EXPECT_TRUE(index.match(make_event({0, 999})).empty());
}

TEST(CountingIndexTest, DuplicateInsertRejected) {
  const Schema schema = Schema::uniform(1, 99);
  CountingIndex index(schema, 4);
  EXPECT_TRUE(index.insert(make_sub(1, {{0, {0, 50}}})));
  EXPECT_FALSE(index.insert(make_sub(1, {{0, {0, 50}}})));
  EXPECT_EQ(index.match(make_event({25})).size(), 1u);  // no double count
}

TEST(CountingIndexTest, RemoveUnknownReturnsFalse) {
  const Schema schema = Schema::uniform(1, 99);
  CountingIndex index(schema, 4);
  EXPECT_FALSE(index.remove(42));
}

TEST(CountingIndexTest, DomainBoundaryValues) {
  const Schema schema = Schema::uniform(1, 999);
  CountingIndex index(schema, 7);  // non-divisible bucket count
  index.insert(make_sub(1, {{0, {0, 0}}}));
  index.insert(make_sub(2, {{0, {999, 999}}}));
  index.insert(make_sub(3, {{0, {0, 999}}}));
  const auto at_lo = index.match(make_event({0}));
  EXPECT_EQ(std::set<SubscriptionId>(at_lo.begin(), at_lo.end()),
            (std::set<SubscriptionId>{1, 3}));
  const auto at_hi = index.match(make_event({999}));
  EXPECT_EQ(std::set<SubscriptionId>(at_hi.begin(), at_hi.end()),
            (std::set<SubscriptionId>{2, 3}));
}

TEST(CountingIndexTest, ShiftedDomain) {
  const Schema schema({{"t", {-100, 100}}});
  CountingIndex index(schema, 8);
  index.insert(make_sub(1, {{0, {-50, -10}}}));
  EXPECT_EQ(index.match(make_event({-30})).size(), 1u);
  EXPECT_TRUE(index.match(make_event({0})).empty());
}

TEST(CountingIndexTest, EquivalentToBruteForceOnRandomWorkload) {
  const Schema schema = Schema::uniform(4, 1'000'000);
  CountingIndex index(schema, 256);
  workload::WorkloadParams wp;
  wp.nonselective_range_frac = 0.10;
  workload::WorkloadGenerator gen(schema, wp, 31337);

  std::vector<SubscriptionPtr> subs;
  for (int i = 0; i < 400; ++i) {
    auto cs = gen.make_constraints();
    // Drop random constraints to cover partial subscriptions.
    while (cs.size() > 1 && gen.rng().bernoulli(0.3)) cs.pop_back();
    auto s = make_sub(static_cast<SubscriptionId>(i + 1), std::move(cs));
    index.insert(s);
    subs.push_back(std::move(s));
  }
  // Interleave removals.
  for (int i = 0; i < 100; ++i) {
    const auto pick = static_cast<std::size_t>(
        gen.rng().uniform_int(0, static_cast<std::int64_t>(subs.size()) - 1));
    index.remove(subs[pick]->id);
    subs.erase(subs.begin() + static_cast<std::ptrdiff_t>(pick));
  }

  for (int trial = 0; trial < 300; ++trial) {
    Event e;
    e.id = static_cast<EventId>(trial + 1);
    if (trial % 2 == 0 && !subs.empty()) {
      const auto pick = static_cast<std::size_t>(gen.rng().uniform_int(
          0, static_cast<std::int64_t>(subs.size()) - 1));
      e.values = gen.make_matching_values(*subs[pick]);
    } else {
      e.values = gen.make_random_values();
    }

    std::set<SubscriptionId> expected;
    for (const auto& s : subs) {
      if (s->matches(e)) expected.insert(s->id);
    }
    const auto got_vec = index.match(e);
    const std::set<SubscriptionId> got(got_vec.begin(), got_vec.end());
    ASSERT_EQ(got, expected) << "trial " << trial;
    ASSERT_EQ(got_vec.size(), got.size()) << "duplicate ids reported";
  }
}

TEST(StoreWithIndexTest, MatchesLikeBruteForceStore) {
  const Schema schema = Schema::uniform(3, 9'999);
  workload::WorkloadGenerator gen(schema, {}, 5);

  SubscriptionStore brute;
  SubscriptionStore indexed;
  indexed.use_counting_index(schema, 64);
  EXPECT_EQ(brute.engine(), MatchEngine::kBruteForce);
  EXPECT_EQ(indexed.engine(), MatchEngine::kCountingIndex);

  for (int i = 0; i < 200; ++i) {
    auto s = make_sub(static_cast<SubscriptionId>(i + 1),
                      gen.make_constraints());
    const sim::SimTime expiry =
        (i % 3 == 0) ? sim::sec(static_cast<std::uint64_t>(i)) :
                       sim::kSimTimeNever;
    brute.insert({s, expiry, {}, false});
    indexed.insert({s, expiry, {}, false});
  }
  brute.sweep_expired(sim::sec(100));
  indexed.sweep_expired(sim::sec(100));
  ASSERT_EQ(brute.size(), indexed.size());

  for (int trial = 0; trial < 200; ++trial) {
    Event e;
    e.id = static_cast<EventId>(trial + 1);
    e.values = gen.make_random_values();
    auto ids_of = [](const std::vector<const SubscriptionStore::Record*>&
                         recs) {
      std::set<SubscriptionId> ids;
      for (const auto* r : recs) ids.insert(r->sub->id);
      return ids;
    };
    ASSERT_EQ(ids_of(brute.match(e, sim::sec(150))),
              ids_of(indexed.match(e, sim::sec(150))));
  }
}

}  // namespace
}  // namespace cbps::pubsub
