// Load-observatory integration tests.
//
// The observatory's whole value rests on two properties:
//   1. the emitted metrics JSON (hot-key tables, imbalance summary,
//      time-series) is bit-identical at any --sim-threads, and
//   2. the per-key sketch counts bracket the exact per-key load.
// Both are asserted here on a Zipf-centered workload (one selective
// attribute concentrates rendezvous traffic on popular values — the
// regime the observatory exists for). The suite carries the `obs` label
// and runs under TSan via check_all.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cbps/metrics/topk.hpp"
#include "cbps/pubsub/system.hpp"
#include "cbps/workload/driver.hpp"
#include "harness.hpp"

using namespace cbps;

namespace {

// Read a metrics JSON file, dropping the one line that legitimately
// depends on the engine shape: the "sim_threads" summary field records
// the thread count itself. Every other byte must match across engines.
std::string slurp_masked(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string out, line;
  while (std::getline(in, line)) {
    if (line.find("\"sim_threads\"") != std::string::npos) continue;
    out += line;
    out += '\n';
  }
  return out;
}

bench::ExperimentConfig zipf_config() {
  bench::ExperimentConfig cfg;
  cfg.nodes = 64;
  cfg.ring_bits = 10;
  cfg.seed = 17;
  cfg.subscriptions = 300;
  cfg.publications = 300;
  cfg.selective_attributes = 1;  // Zipf-centered rendezvous traffic
  return cfg;
}

// One PubSubSystem + Driver run; returns the ring-folded sketch set.
// `capacity` sized >= the whole key space makes every sketch exact
// (nothing is ever evicted), and the capacity cannot perturb the
// simulation — the sketches only observe it — so two runs differing
// only in capacity see the identical event stream.
pubsub::KeyLoad run_key_load(std::size_t capacity) {
  pubsub::SystemConfig cfg;
  cfg.nodes = 48;
  cfg.chord.ring = RingParams{10};
  cfg.seed = 23;
  cfg.pubsub.key_topk_capacity = capacity;
  pubsub::PubSubSystem system(cfg, pubsub::Schema::uniform(4, 1'000'000));

  workload::WorkloadParams wp;
  wp.selective.assign(4, false);
  wp.selective[0] = true;  // Zipf centers on the selective attribute
  workload::WorkloadGenerator gen(system.schema(), wp, 5);
  workload::DriverParams dp;
  dp.max_subscriptions = 250;
  dp.max_publications = 250;
  workload::Driver driver(system, gen, dp);
  driver.start();
  driver.run_to_completion();
  return system.key_load();
}

void expect_brackets(const metrics::TopK& sketch, const metrics::TopK& oracle,
                     const char* what) {
  ASSERT_EQ(sketch.total(), oracle.total()) << what;
  if (sketch.total() == 0) return;
  const std::uint64_t bound = sketch.total() / sketch.capacity();
  for (const auto& e : sketch.top(sketch.size())) {
    const std::uint64_t truth = oracle.find(e.key).count;
    EXPECT_LE(truth, e.count) << what << " key " << e.key;
    EXPECT_LE(e.count - e.error, truth) << what << " key " << e.key;
    EXPECT_LE(e.error, bound) << what << " key " << e.key;
  }
  // Every key whose exact load beats the space-saving bound is tracked.
  for (const auto& heavy : oracle.top(oracle.size())) {
    if (heavy.count > bound) {
      EXPECT_GT(sketch.find(heavy.key).count, 0u)
          << what << " lost heavy key " << heavy.key << " (" << heavy.count
          << " > " << bound << ")";
    }
  }
}

}  // namespace

// The acceptance oracle: run the identical workload with the sketches
// sized far beyond the distinct-key count (exact counting, error 0) and
// check the default-capacity sketches bracket those exact counts within
// the space-saving bound.
TEST(LoadObservatoryTest, SketchBracketsExactOracleOnZipfWorkload) {
  const pubsub::KeyLoad oracle = run_key_load(1u << 20);
  const pubsub::KeyLoad sketched = run_key_load(metrics::TopK::kDefaultCapacity);

  // The huge-capacity run never evicted: its error terms are all zero.
  for (const auto& e : oracle.match_calls.top(oracle.match_calls.size())) {
    ASSERT_EQ(e.error, 0u);
  }
  ASSERT_GT(oracle.match_calls.total(), 0u) << "workload produced no matches";

  expect_brackets(sketched.subs_stored, oracle.subs_stored, "subs_stored");
  expect_brackets(sketched.match_calls, oracle.match_calls, "match_calls");
  expect_brackets(sketched.match_units, oracle.match_units, "match_units");
  expect_brackets(sketched.notify_fanout, oracle.notify_fanout,
                  "notify_fanout");

  // Zipf skew must actually concentrate: the hottest key carries many
  // times the uniform per-key share of match traffic.
  const auto top1 = oracle.match_calls.top(1);
  ASSERT_FALSE(top1.empty());
  const double uniform_share =
      static_cast<double>(oracle.match_calls.total()) /
      static_cast<double>(oracle.match_calls.size());
  EXPECT_GT(static_cast<double>(top1.front().count), 5.0 * uniform_share)
      << "expected the hottest key well above the uniform per-key share";
}

// Notifications are charged to exactly one covered key each: the
// notify_fanout sketch total equals the delivered-notification count.
TEST(LoadObservatoryTest, NotifyFanoutChargesEachDeliveryOnce) {
  pubsub::SystemConfig cfg;
  cfg.nodes = 32;
  cfg.chord.ring = RingParams{10};
  cfg.seed = 29;
  pubsub::PubSubSystem system(cfg, pubsub::Schema::uniform(4, 1'000'000));
  workload::WorkloadGenerator gen(system.schema(), workload::WorkloadParams{},
                                  9);
  workload::DriverParams dp;
  dp.max_subscriptions = 150;
  dp.max_publications = 150;
  workload::Driver driver(system, gen, dp);
  driver.start();
  driver.run_to_completion();

  EXPECT_EQ(system.key_load().notify_fanout.total(),
            system.notifications_delivered());
}

// The full pipeline, end to end: a Zipf-centered run's --metrics-json
// output (hot-key tables included) is byte-identical between the serial
// engine and the 8-way sharded engine. This is the observability
// counterpart of the engine's bit-identical guarantee — per-node
// sketches fold in ring order regardless of shard count.
TEST(LoadObservatoryTest, MetricsJsonBitIdenticalAcrossSimThreads) {
  const std::string dir = ::testing::TempDir();
  const auto path = [&](std::size_t threads) {
    return dir + "load_obs_t" + std::to_string(threads) + ".json";
  };

  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    bench::ExperimentConfig cfg = zipf_config();
    cfg.sim_threads = threads;
    cfg.metrics_json_path = path(threads);
    const bench::ExperimentResult r = bench::run_experiment(cfg);
    EXPECT_GT(r.notifications_delivered, 0u);
    EXPECT_GT(r.hot_key_top1_share, 0.0);
  }

  const std::string serial = slurp_masked(path(1));
  const std::string sharded = slurp_masked(path(8));
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, sharded)
      << "metrics JSON diverged between --sim-threads 1 and 8";

  // The emitted document carries every observatory section.
  for (const char* needle :
       {"\"hot_keys\"", "\"subs_stored\"", "\"match_calls\"",
        "\"match_units\"", "\"notify_fanout\"", "load_gini",
        "load_max_over_mean", "hot_key_top1_share"}) {
    EXPECT_NE(serial.find(needle), std::string::npos)
        << "metrics JSON missing " << needle;
  }
  std::remove(path(1).c_str());
  std::remove(path(8).c_str());
}

// The summary imbalance metrics agree with a hand-rolled Gini over the
// same per-node loads (sorted-rank formula).
TEST(LoadObservatoryTest, ImbalanceSummaryMatchesHandComputedGini) {
  pubsub::SystemConfig cfg;
  cfg.nodes = 40;
  cfg.chord.ring = RingParams{10};
  cfg.seed = 31;
  pubsub::PubSubSystem system(cfg, pubsub::Schema::uniform(4, 1'000'000));
  workload::WorkloadGenerator gen(system.schema(), workload::WorkloadParams{},
                                  3);
  workload::DriverParams dp;
  dp.max_subscriptions = 200;
  dp.max_publications = 100;
  workload::Driver driver(system, gen, dp);
  driver.start();
  driver.run_to_completion();

  std::vector<double> loads;
  for (std::size_t i = 0; i < system.node_count(); ++i) {
    loads.push_back(
        static_cast<double>(system.pubsub_node(i).key_load().total()));
  }
  std::sort(loads.begin(), loads.end());
  double sum = 0, weighted = 0;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    sum += loads[i];
    weighted += static_cast<double>(i + 1) * loads[i];
  }
  ASSERT_GT(sum, 0.0);
  const double n = static_cast<double>(loads.size());
  const double gini = 2.0 * weighted / (n * sum) - (n + 1.0) / n;

  const pubsub::PubSubSystem::LoadImbalance imb = system.load_imbalance();
  EXPECT_NEAR(imb.gini, gini, 1e-12);
  EXPECT_DOUBLE_EQ(imb.max_over_mean, loads.back() / (sum / n));
  EXPECT_GE(imb.gini, 0.0);
  EXPECT_LT(imb.gini, 1.0);
}
