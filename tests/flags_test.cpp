// Tests for the command-line flag parser used by the tools.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "cbps/common/flags.hpp"

namespace cbps {
namespace {

struct ParseResult {
  bool ok;
  std::string out;
  std::string err;
};

ParseResult parse(FlagParser& parser, std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  std::ostringstream out;
  std::ostringstream err;
  const bool ok = parser.parse(static_cast<int>(args.size()), args.data(),
                               out, err);
  return {ok, out.str(), err.str()};
}

TEST(FlagParserTest, ParsesAllTypesWithEquals) {
  bool b = false;
  std::int64_t i = 0;
  double d = 0;
  std::string s;
  FlagParser p("test");
  p.add("b", "", &b);
  p.add("i", "", &i);
  p.add("d", "", &d);
  p.add("s", "", &s);
  const auto r = parse(p, {"--b=true", "--i=-42", "--d=2.5", "--s=hello"});
  EXPECT_TRUE(r.ok) << r.err;
  EXPECT_TRUE(b);
  EXPECT_EQ(i, -42);
  EXPECT_DOUBLE_EQ(d, 2.5);
  EXPECT_EQ(s, "hello");
}

TEST(FlagParserTest, ParsesSpaceSeparatedValues) {
  std::int64_t i = 0;
  std::string s;
  FlagParser p("test");
  p.add("count", "", &i);
  p.add("name", "", &s);
  const auto r = parse(p, {"--count", "7", "--name", "x y"});
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(i, 7);
  EXPECT_EQ(s, "x y");
}

TEST(FlagParserTest, BareBooleanFlag) {
  bool verbose = false;
  FlagParser p("test");
  p.add("verbose", "", &verbose);
  EXPECT_TRUE(parse(p, {"--verbose"}).ok);
  EXPECT_TRUE(verbose);
  EXPECT_TRUE(parse(p, {"--verbose=false"}).ok);
  EXPECT_FALSE(verbose);
}

TEST(FlagParserTest, RejectsUnknownFlag) {
  FlagParser p("test");
  const auto r = parse(p, {"--nope=1"});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.err.find("unknown flag"), std::string::npos);
}

TEST(FlagParserTest, RejectsBadValues) {
  std::int64_t i = 0;
  double d = 0;
  FlagParser p("test");
  p.add("i", "", &i);
  p.add("d", "", &d);
  EXPECT_FALSE(parse(p, {"--i=abc"}).ok);
  EXPECT_FALSE(parse(p, {"--d=1.2.3"}).ok);
  EXPECT_FALSE(parse(p, {"--i"}).ok);  // missing value
}

TEST(FlagParserTest, RejectsPositionalArguments) {
  FlagParser p("test");
  EXPECT_FALSE(parse(p, {"stray"}).ok);
}

TEST(FlagParserTest, HelpPrintsDefaultsAndStops) {
  std::int64_t i = 31337;
  FlagParser p("my tool");
  p.add("port", "listen port", &i);
  const auto r = parse(p, {"--help"});
  EXPECT_FALSE(r.ok);  // signals "exit now"
  EXPECT_NE(r.out.find("my tool"), std::string::npos);
  EXPECT_NE(r.out.find("port"), std::string::npos);
  EXPECT_NE(r.out.find("31337"), std::string::npos);
}

}  // namespace
}  // namespace cbps
