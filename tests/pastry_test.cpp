// Tests for the Pastry-style prefix-routing overlay, and the portability
// proof: the whole CB-pub/sub layer running unchanged on top of it
// (paper §3.1 footnote 1).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "cbps/pastry/pastry.hpp"
#include "cbps/pubsub/delivery_checker.hpp"
#include "cbps/pubsub/node.hpp"
#include "cbps/workload/generator.hpp"

namespace cbps::pastry {
namespace {

using overlay::MessageClass;
using overlay::PayloadPtr;

struct TestPayload final : overlay::Payload {
  explicit TestPayload(int t) : tag(t) {}
  MessageClass message_class() const override {
    return MessageClass::kPublish;
  }
  int tag;
};

struct Delivery {
  Key node;
  std::vector<Key> keys;
};

class RecordingApp final : public overlay::OverlayApp {
 public:
  RecordingApp(Key node, std::vector<Delivery>& sink)
      : node_(node), sink_(sink) {}
  void on_deliver(Key key, const PayloadPtr&) override {
    sink_.push_back({node_, {key}});
  }
  void on_deliver_mcast(std::span<const Key> covered,
                        const PayloadPtr&) override {
    sink_.push_back({node_, {covered.begin(), covered.end()}});
  }
  PayloadPtr export_state(Key, Key, bool) override { return nullptr; }
  void import_state(const PayloadPtr&) override {}

 private:
  Key node_;
  std::vector<Delivery>& sink_;
};

class PastryHarness {
 public:
  explicit PastryHarness(std::size_t n, PastryConfig cfg = {}) {
    net = std::make_unique<PastryNetwork>(sim, cfg, 5);
    for (std::size_t i = 0; i < n; ++i) {
      net->add_node("p" + std::to_string(i));
    }
    net->build_static_ring();
    for (Key id : net->ids()) {
      apps.push_back(std::make_unique<RecordingApp>(id, deliveries));
      net->node(id)->set_app(apps.back().get());
    }
  }

  sim::Simulator sim;
  std::unique_ptr<PastryNetwork> net;
  std::vector<Delivery> deliveries;
  std::vector<std::unique_ptr<RecordingApp>> apps;
};

TEST(PastryTopologyTest, LeafSetsMatchRingOrder) {
  PastryHarness h(32);
  const auto ids = h.net->ids();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const PastryNode& node = *h.net->node(ids[i]);
    EXPECT_EQ(node.predecessor_id(), ids[(i + ids.size() - 1) % ids.size()]);
    EXPECT_EQ(node.successor_id(), ids[(i + 1) % ids.size()]);
    EXPECT_EQ(node.leaf_successors().size(), 4u);
  }
}

TEST(PastryTopologyTest, RoutingTablePrefixInvariant) {
  PastryHarness h(64);
  const RingParams ring = h.net->ring();
  for (Key id : h.net->ids()) {
    const PastryNode& node = *h.net->node(id);
    for (unsigned r = 0; r < ring.bits(); ++r) {
      const auto entry = node.routing_table()[r];
      if (!entry) continue;
      // Shares exactly r leading bits: identical above bit r, different
      // at bit r.
      const unsigned low_bits = ring.bits() - r - 1;
      EXPECT_EQ(*entry >> (low_bits + 1), id >> (low_bits + 1));
      EXPECT_NE((*entry >> low_bits) & 1, (id >> low_bits) & 1);
    }
  }
}

TEST(PastryRoutingTest, DeliversAtOracleSuccessor) {
  PastryHarness h(64);
  Rng rng(3);
  std::vector<Key> targets;
  for (int i = 0; i < 300; ++i) {
    const Key key = static_cast<Key>(
        rng.uniform_int(0, static_cast<std::int64_t>(h.net->ring().max_key())));
    targets.push_back(key);
    h.net->node_at(static_cast<std::size_t>(rng.uniform_int(0, 63)))
        .send(key, std::make_shared<TestPayload>(i));
  }
  h.sim.run();
  ASSERT_EQ(h.deliveries.size(), targets.size());
  for (const Delivery& d : h.deliveries) {
    ASSERT_EQ(d.keys.size(), 1u);
    EXPECT_EQ(d.node, h.net->oracle_successor(d.keys[0]));
  }
}

TEST(PastryRoutingTest, HopCountLogarithmic) {
  PastryHarness h(128);
  Rng rng(4);
  for (int i = 0; i < 300; ++i) {
    const Key key = static_cast<Key>(
        rng.uniform_int(0, static_cast<std::int64_t>(h.net->ring().max_key())));
    h.net->node_at(0).send(key, std::make_shared<TestPayload>(i));
  }
  h.sim.run();
  const auto& stat =
      h.net->traffic().route_hops(MessageClass::kPublish);
  ASSERT_EQ(stat.count(), 300u);
  // Binary prefix routing resolves >= 1 bit per hop: <= m = 13 always,
  // and on average about log2(128) = 7.
  EXPECT_LE(stat.max(), 13.0);
  EXPECT_LT(stat.mean(), 8.0);
}

TEST(PastryMcastTest, DeliversToExactlyCoveringNodesOnce) {
  PastryHarness h(48);
  const RingParams ring = h.net->ring();
  std::vector<Key> targets;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    targets.push_back(ring.wrap(1000 + i));
  }
  h.net->node_at(7).m_cast(targets, std::make_shared<TestPayload>(1));
  h.sim.run();

  std::map<Key, std::set<Key>> expected;
  for (Key k : targets) expected[h.net->oracle_successor(k)].insert(k);

  std::set<Key> seen;
  std::size_t total = 0;
  for (const Delivery& d : h.deliveries) {
    EXPECT_TRUE(seen.insert(d.node).second)
        << "node " << d.node << " received the m-cast twice";
    EXPECT_EQ(std::set<Key>(d.keys.begin(), d.keys.end()),
              expected[d.node]);
    total += d.keys.size();
  }
  EXPECT_EQ(seen.size(), expected.size());
  EXPECT_EQ(total, targets.size());
}

TEST(PastryMcastTest, WrappingRangeAndDuplicates) {
  PastryHarness h(16);
  const RingParams ring = h.net->ring();
  std::vector<Key> targets;
  for (std::uint64_t i = 0; i < 300; ++i) {
    targets.push_back(ring.wrap(ring.max_key() - 100 + i));
    targets.push_back(ring.wrap(ring.max_key() - 100 + i));  // dup
  }
  h.net->node_at(3).m_cast(targets, std::make_shared<TestPayload>(2));
  h.sim.run();
  std::size_t total = 0;
  std::set<Key> seen;
  for (const Delivery& d : h.deliveries) {
    EXPECT_TRUE(seen.insert(d.node).second);
    total += d.keys.size();
  }
  EXPECT_EQ(total, 300u);
}

TEST(PastryChainTest, DeliversSameCoverage) {
  PastryHarness h(32);
  const RingParams ring = h.net->ring();
  std::vector<Key> targets;
  for (std::uint64_t i = 0; i < 1000; ++i) targets.push_back(ring.wrap(i));
  h.net->node_at(5).chain_cast(targets, std::make_shared<TestPayload>(3));
  h.sim.run();
  std::size_t total = 0;
  for (const Delivery& d : h.deliveries) total += d.keys.size();
  EXPECT_EQ(total, targets.size());
}

TEST(PastryNeighborTest, NeighborSends) {
  PastryHarness h(8);
  PastryNode& n = h.net->node_at(2);
  n.send_to_successor(std::make_shared<TestPayload>(1));
  n.send_to_predecessor(std::make_shared<TestPayload>(2));
  h.sim.run();
  ASSERT_EQ(h.deliveries.size(), 2u);
  std::set<Key> nodes;
  for (const auto& d : h.deliveries) nodes.insert(d.node);
  EXPECT_TRUE(nodes.contains(n.successor_id()));
  EXPECT_TRUE(nodes.contains(n.predecessor_id()));
}

TEST(PastryEdgeTest, TwoNodeRing) {
  PastryHarness h(2);
  const auto ids = h.net->ids();
  PastryNode& a = *h.net->node(ids[0]);
  EXPECT_EQ(a.successor_id(), ids[1]);
  EXPECT_EQ(a.predecessor_id(), ids[1]);
  Rng rng(9);
  for (int i = 0; i < 40; ++i) {
    const Key key = static_cast<Key>(
        rng.uniform_int(0, static_cast<std::int64_t>(h.net->ring().max_key())));
    a.send(key, std::make_shared<TestPayload>(i));
  }
  h.sim.run();
  ASSERT_EQ(h.deliveries.size(), 40u);
  for (const Delivery& d : h.deliveries) {
    EXPECT_EQ(d.node, h.net->oracle_successor(d.keys[0]));
  }
}

TEST(PastryEdgeTest, SingleNodeSelfDelivers) {
  PastryHarness h(1);
  PastryNode& only = h.net->node_at(0);
  only.send(1234, std::make_shared<TestPayload>(1));
  only.m_cast({1, 2, 3}, std::make_shared<TestPayload>(2));
  h.sim.run();
  std::size_t total = 0;
  for (const Delivery& d : h.deliveries) total += d.keys.size();
  EXPECT_EQ(total, 4u);
  EXPECT_EQ(h.net->traffic().total_hops(), 0u);
}

// ---------------------------------------------------------------------------
// Portability: the full CB-pub/sub layer on Pastry
// ---------------------------------------------------------------------------

struct PastryPubSubParam {
  pubsub::MappingKind kind;
  pubsub::PubSubConfig::Transport transport;
  const char* name;
};

class PastryPubSubTest : public ::testing::TestWithParam<PastryPubSubParam> {
};

TEST_P(PastryPubSubTest, EndToEndExactlyOnce) {
  const PastryPubSubParam param = GetParam();
  sim::Simulator sim;
  PastryConfig cfg;
  cfg.ring = RingParams{12};
  PastryNetwork net(sim, cfg, 9);
  for (int i = 0; i < 32; ++i) net.add_node("pp" + std::to_string(i));
  net.build_static_ring();

  const pubsub::Schema schema = pubsub::Schema::uniform(3, 99'999);
  auto mapping =
      pubsub::make_mapping(param.kind, schema, cfg.ring);

  pubsub::PubSubConfig pcfg;
  pcfg.sub_transport = param.transport;
  pcfg.pub_transport = param.transport;

  std::vector<std::unique_ptr<pubsub::PubSubNode>> nodes;
  const std::vector<Key> ids = net.ids();
  for (Key id : ids) {
    nodes.push_back(std::make_unique<pubsub::PubSubNode>(
        *net.node(id), sim, *mapping, pcfg));
  }

  pubsub::DeliveryChecker checker;
  for (auto& n : nodes) {
    n->set_notify_sink([&](Key subscriber, const pubsub::Notification& nf) {
      checker.on_notify(subscriber, nf, sim.now());
    });
  }

  workload::WorkloadParams wp;
  wp.matching_probability = 0.7;
  wp.nonselective_range_frac = 0.10;
  workload::WorkloadGenerator gen(schema, wp, 777);

  std::vector<pubsub::SubscriptionPtr> active;
  SubscriptionId next_sub = 1;
  EventId next_event = 1;
  for (int round = 0; round < 25; ++round) {
    const auto node_idx = static_cast<std::size_t>(
        gen.rng().uniform_int(0, static_cast<std::int64_t>(ids.size()) - 1));
    auto sub = std::make_shared<pubsub::Subscription>();
    sub->id = next_sub++;
    sub->subscriber = ids[node_idx];
    sub->constraints = gen.make_constraints();
    nodes[node_idx]->subscribe(sub);
    checker.on_subscribe(sub, sim.now(), sim::kSimTimeNever);
    active.push_back(sub);
    sim.run_until(sim.now() + sim::sec(3));

    for (int e = 0; e < 2; ++e) {
      auto event = std::make_shared<pubsub::Event>();
      event->id = next_event++;
      event->values = gen.make_event_values(active);
      const auto pub_idx = static_cast<std::size_t>(gen.rng().uniform_int(
          0, static_cast<std::int64_t>(ids.size()) - 1));
      checker.on_publish(event, sim.now());
      nodes[pub_idx]->publish(std::move(event));
      sim.run_until(sim.now() + sim::sec(1));
    }
  }
  sim.run();

  const auto report = checker.verify();
  EXPECT_GT(report.expected, 0u);
  EXPECT_TRUE(report.ok())
      << param.name << ": missing=" << report.missing
      << " dup=" << report.duplicates << " spurious=" << report.spurious
      << (report.issues.empty() ? "" : "\n  " + report.issues[0]);
}

INSTANTIATE_TEST_SUITE_P(
    Portability, PastryPubSubTest,
    ::testing::Values(
        PastryPubSubParam{pubsub::MappingKind::kAttributeSplit,
                          pubsub::PubSubConfig::Transport::kUnicast,
                          "m1_unicast"},
        PastryPubSubParam{pubsub::MappingKind::kKeySpaceSplit,
                          pubsub::PubSubConfig::Transport::kMulticast,
                          "m2_mcast"},
        PastryPubSubParam{pubsub::MappingKind::kSelectiveAttribute,
                          pubsub::PubSubConfig::Transport::kMulticast,
                          "m3_mcast"},
        PastryPubSubParam{pubsub::MappingKind::kSelectiveAttribute,
                          pubsub::PubSubConfig::Transport::kChain,
                          "m3_chain"}),
    [](const ::testing::TestParamInfo<PastryPubSubParam>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace cbps::pastry
