// Tests for the parallel sweep runner: determinism across --jobs and
// in-sweep-order row reporting.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sweep.hpp"

namespace cbps::bench {
namespace {

ExperimentConfig small_config(std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.nodes = 32;
  cfg.ring_bits = 10;
  cfg.seed = seed;
  cfg.mapping = pubsub::MappingKind::kSelectiveAttribute;
  cfg.subscriptions = 30;
  cfg.publications = 30;
  cfg.verify = true;
  return cfg;
}

std::vector<std::vector<std::pair<std::string, double>>> run_with_jobs(
    std::size_t jobs) {
  Sweep<> sweep("sweep_test");
  SweepOptions opts;
  opts.jobs = jobs;
  sweep.set_options(opts);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    sweep.add("seed=" + std::to_string(seed), small_config(seed));
  }
  std::vector<std::vector<std::pair<std::string, double>>> rows;
  for (const ExperimentResult& r : sweep.run()) {
    EXPECT_TRUE(r.verified);
    auto fields = json_fields(r);
    fields.emplace_back("sim_events", static_cast<double>(r.sim_events));
    rows.push_back(std::move(fields));
  }
  return rows;
}

TEST(SweepTest, ParallelSmoke) {
  // The TSan preset runs this too: five simulations across eight
  // workers must be race-free.
  const auto rows = run_with_jobs(8);
  EXPECT_EQ(rows.size(), 5u);
}

TEST(SweepTest, JobsDoNotChangeResults) {
  const auto serial = run_with_jobs(1);
  const auto parallel = run_with_jobs(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].size(), parallel[i].size());
    for (std::size_t f = 0; f < serial[i].size(); ++f) {
      EXPECT_EQ(serial[i][f].first, parallel[i][f].first);
      // Bit-identical, not merely approximately equal.
      EXPECT_EQ(serial[i][f].second, parallel[i][f].second)
          << "point " << i << " field " << serial[i][f].first;
    }
  }
}

struct SlowRow {
  std::size_t index = 0;
};

JsonFields json_fields(const SlowRow& r) {
  return {{"index", static_cast<double>(r.index)}};
}

TEST(SweepTest, RowsReportInSweepOrderEvenWhenLaterPointsFinishFirst) {
  Sweep<SlowRow> sweep("sweep_order_test");
  SweepOptions opts;
  opts.jobs = 4;
  sweep.set_options(opts);
  // Earlier points sleep longer, so completion order is roughly the
  // reverse of sweep order.
  for (std::size_t i = 0; i < 8; ++i) {
    sweep.add("p" + std::to_string(i), [i] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5 * (8 - i)));
      return SlowRow{i};
    });
  }
  std::vector<std::size_t> reported;
  sweep.run([&](std::size_t i, const SlowRow& r) {
    EXPECT_EQ(i, r.index);
    reported.push_back(i);
  });
  ASSERT_EQ(reported.size(), 8u);
  for (std::size_t i = 0; i < reported.size(); ++i) {
    EXPECT_EQ(reported[i], i);
  }
}

TEST(SweepTest, BodyExceptionPropagatesFromRun) {
  Sweep<SlowRow> sweep("sweep_throw_test");
  SweepOptions opts;
  opts.jobs = 2;
  sweep.set_options(opts);
  sweep.add("ok", [] { return SlowRow{0}; });
  sweep.add("bad", []() -> SlowRow { throw std::runtime_error("boom"); });
  EXPECT_THROW(sweep.run(), std::runtime_error);
}

TEST(SweepTest, WritesJsonRecord) {
  const std::string path = ::testing::TempDir() + "/sweep_test.json";
  Sweep<SlowRow> sweep("sweep_json_test");
  SweepOptions opts;
  opts.jobs = 1;
  opts.json_path = path;
  sweep.set_options(opts);
  sweep.add("a", [] { return SlowRow{0}; });
  sweep.add("b", [] { return SlowRow{1}; });
  sweep.run();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  EXPECT_NE(text.find("\"bench\": \"sweep_json_test\""), std::string::npos);
  EXPECT_NE(text.find("\"label\": \"a\""), std::string::npos);
  EXPECT_NE(text.find("\"label\": \"b\""), std::string::npos);
  EXPECT_NE(text.find("\"index\""), std::string::npos);
  EXPECT_NE(text.find("\"wall_s\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cbps::bench
