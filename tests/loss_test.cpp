// Tests for message-loss fault injection (sim::LossModel) and the
// hop-by-hop ack/retry reliability layer: the loss model itself, the
// Chord and Pastry transport mechanics (retransmission, duplicate
// suppression, retry-budget exhaustion, zero-overhead gating), and
// end-to-end exactly-once pub/sub delivery under loss and churn.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "cbps/chord/network.hpp"
#include "cbps/chord/node.hpp"
#include "cbps/common/rng.hpp"
#include "cbps/pastry/pastry.hpp"
#include "cbps/pubsub/delivery_checker.hpp"
#include "cbps/sim/loss.hpp"
#include "cbps/workload/churn.hpp"
#include "cbps/workload/driver.hpp"

namespace cbps {
namespace {

using overlay::MessageClass;
using overlay::PayloadPtr;

// ---------------------------------------------------------------------------
// LossModel unit behavior
// ---------------------------------------------------------------------------

TEST(UniformLossTest, BoundaryRatesAreDeterministic) {
  Rng rng(11);
  sim::UniformLoss never(0.0);
  sim::UniformLoss always(1.0);
  for (int i = 0; i < 1'000; ++i) {
    EXPECT_FALSE(never.drop(rng));
    EXPECT_TRUE(always.drop(rng));
  }
}

TEST(UniformLossTest, RateIsHonoredStatistically) {
  Rng rng(12);
  sim::UniformLoss loss(0.3);
  const int kDraws = 100'000;
  int dropped = 0;
  for (int i = 0; i < kDraws; ++i) dropped += loss.drop(rng) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(dropped) / kDraws, 0.3, 0.01);
}

// ---------------------------------------------------------------------------
// Chord transport scaffolding
// ---------------------------------------------------------------------------

struct TagPayload final : overlay::Payload {
  explicit TagPayload(int t) : tag(t) {}
  MessageClass message_class() const override {
    return MessageClass::kPublish;
  }
  int tag;
};

struct TagDelivery {
  Key node;
  std::vector<Key> keys;  // one entry for unicast, the segment for m-cast
  int tag;
};

class TagApp final : public overlay::OverlayApp {
 public:
  TagApp(Key node, std::vector<TagDelivery>& sink)
      : node_(node), sink_(sink) {}

  void on_deliver(Key key, const PayloadPtr& payload) override {
    const auto* p = dynamic_cast<const TagPayload*>(payload.get());
    ASSERT_NE(p, nullptr);
    sink_.push_back({node_, {key}, p->tag});
  }
  void on_deliver_mcast(std::span<const Key> covered,
                        const PayloadPtr& payload) override {
    const auto* p = dynamic_cast<const TagPayload*>(payload.get());
    ASSERT_NE(p, nullptr);
    sink_.push_back({node_, {covered.begin(), covered.end()}, p->tag});
  }
  PayloadPtr export_state(Key, Key, bool) override { return nullptr; }
  void import_state(const PayloadPtr&) override {}

 private:
  Key node_;
  std::vector<TagDelivery>& sink_;
};

class ChordLossHarness {
 public:
  explicit ChordLossHarness(std::size_t n, chord::ChordConfig cfg,
                            std::uint64_t seed = 1) {
    net = std::make_unique<chord::ChordNetwork>(sim, cfg, seed);
    for (std::size_t i = 0; i < n; ++i) {
      net->add_node("n" + std::to_string(i));
    }
    net->build_static_ring();
    for (Key id : net->alive_ids()) {
      apps.push_back(std::make_unique<TagApp>(id, deliveries));
      net->node(id)->set_app(apps.back().get());
    }
  }

  std::uint64_t counter(const std::string& name) const {
    return net->registry().counter_value(name);
  }

  std::size_t pending_total() const {
    std::size_t total = 0;
    for (Key id : net->alive_ids()) total += net->node(id)->pending_send_count();
    return total;
  }

  sim::Simulator sim;
  std::unique_ptr<chord::ChordNetwork> net;
  std::vector<TagDelivery> deliveries;
  std::vector<std::unique_ptr<TagApp>> apps;
};

// ---------------------------------------------------------------------------
// Chord ack/retry mechanics
// ---------------------------------------------------------------------------

TEST(ChordLossTest, DropsAreCountedPerMessageClass) {
  chord::ChordConfig cfg;
  cfg.loss_rate = 0.5;
  ChordLossHarness h(16, cfg, 2);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const Key key = static_cast<Key>(rng.uniform_int(
        0, static_cast<std::int64_t>(h.net->ring().max_key())));
    h.net->alive_node(static_cast<std::size_t>(rng.uniform_int(0, 15)))
        .send(key, std::make_shared<TagPayload>(i));
  }
  h.sim.run();

  const std::uint64_t lost = h.counter("chord.net.lost");
  EXPECT_GT(lost, 0u);
  EXPECT_GT(h.counter("chord.net.lost.publish"), 0u);
  // Only application routes (publish) and their acks (control) hit the
  // wire here; the per-class counters must account for every drop.
  EXPECT_EQ(lost, h.counter("chord.net.lost.publish") +
                      h.counter("chord.net.lost.control"));
  EXPECT_GT(h.counter("chord.retransmits"), 0u);
  EXPECT_EQ(h.pending_total(), 0u);
}

TEST(ChordLossTest, AckRetryRecoversEveryUnicastAtModerateLoss) {
  chord::ChordConfig cfg;
  cfg.loss_rate = 0.05;
  ChordLossHarness h(64, cfg, 4);
  Rng rng(5);
  const int kSends = 200;
  std::vector<Key> targets;
  for (int i = 0; i < kSends; ++i) {
    const Key key = static_cast<Key>(rng.uniform_int(
        0, static_cast<std::int64_t>(h.net->ring().max_key())));
    targets.push_back(key);
    h.net->alive_node(static_cast<std::size_t>(rng.uniform_int(0, 63)))
        .send(key, std::make_shared<TagPayload>(i));
  }
  h.sim.run();

  // Exactly-once: every send arrives despite drops (retries recover
  // them), and no retransmit surfaces twice (receiver-side dedup).
  ASSERT_EQ(h.deliveries.size(), static_cast<std::size_t>(kSends));
  std::set<int> tags;
  for (const TagDelivery& d : h.deliveries) {
    EXPECT_TRUE(tags.insert(d.tag).second) << "tag " << d.tag << " twice";
    ASSERT_EQ(d.keys.size(), 1u);
    EXPECT_EQ(d.node, h.net->oracle_successor(d.keys[0]));
    EXPECT_EQ(d.keys[0], targets[static_cast<std::size_t>(d.tag)]);
  }
  EXPECT_GT(h.counter("chord.net.lost"), 0u);
  EXPECT_GT(h.counter("chord.retransmits"), 0u);
  // A lost ack forces a retransmit of an already-delivered message; the
  // receiver must swallow it (and re-ack) rather than re-deliver.
  EXPECT_GT(h.counter("chord.dup_suppressed"), 0u);
  EXPECT_EQ(h.counter("chord.send_failed"), 0u);
  EXPECT_EQ(h.pending_total(), 0u);
}

TEST(ChordLossTest, McastUnderLossCoversEveryTargetExactlyOnce) {
  chord::ChordConfig cfg;
  cfg.loss_rate = 0.05;
  ChordLossHarness h(32, cfg, 6);
  const RingParams ring = h.net->ring();
  std::vector<Key> targets;
  for (std::uint64_t i = 0; i < 500; ++i) targets.push_back(ring.wrap(i * 11));
  h.net->alive_node(3).m_cast(targets, std::make_shared<TagPayload>(1));
  h.sim.run();

  std::map<Key, std::set<Key>> expected;
  for (Key k : targets) expected[h.net->oracle_successor(k)].insert(k);

  std::set<Key> seen;
  std::size_t total = 0;
  for (const TagDelivery& d : h.deliveries) {
    EXPECT_TRUE(seen.insert(d.node).second)
        << "node " << d.node << " received the m-cast twice";
    EXPECT_EQ(std::set<Key>(d.keys.begin(), d.keys.end()), expected[d.node]);
    total += d.keys.size();
  }
  EXPECT_EQ(seen.size(), expected.size());
  EXPECT_EQ(total, targets.size());
  EXPECT_GT(h.counter("chord.net.lost"), 0u);
  EXPECT_EQ(h.counter("chord.send_failed"), 0u);
  EXPECT_EQ(h.pending_total(), 0u);
}

// App with actual state, for exercising the graceful-leave handover.
struct IntBagPayload final : overlay::Payload {
  explicit IntBagPayload(std::vector<int> i) : items(std::move(i)) {}
  MessageClass message_class() const override {
    return MessageClass::kStateTransfer;
  }
  std::vector<int> items;
};

class IntBagApp final : public overlay::OverlayApp {
 public:
  void on_deliver(Key, const PayloadPtr&) override {}
  void on_deliver_mcast(std::span<const Key>, const PayloadPtr&) override {}
  PayloadPtr export_state(Key, Key, bool remove) override {
    std::vector<int> out = state;
    if (remove) state.clear();
    return std::make_shared<IntBagPayload>(std::move(out));
  }
  void import_state(const PayloadPtr& payload) override {
    const auto* bag = dynamic_cast<const IntBagPayload*>(payload.get());
    ASSERT_NE(bag, nullptr);
    state.insert(state.end(), bag->items.begin(), bag->items.end());
  }
  std::vector<int> state;
};

TEST(ChordLossTest, GracefulLeaveHandsOverStateDespiteHeavyLoss) {
  // Regression: the leave handover (PredLeaveMsg) used to be fire-and-
  // forget, so one dropped message silently destroyed the leaver's
  // whole rendezvous state. It is now ack-eligible, and the leaver
  // lingers as a lame duck retransmitting it until acked.
  sim::Simulator sim;
  chord::ChordConfig cfg;
  cfg.loss_rate = 0.6;
  cfg.max_retries = 20;
  chord::ChordNetwork net(sim, cfg, 13);
  for (int i = 0; i < 8; ++i) net.add_node("n" + std::to_string(i));
  net.build_static_ring();
  std::map<Key, IntBagApp> apps;
  for (Key id : net.alive_ids()) net.node(id)->set_app(&apps[id]);

  const std::vector<Key> ids = net.alive_ids();
  const Key leaver = ids[2];
  const Key heir = ids[3];
  apps[leaver].state = {1, 2, 3};
  net.leave_gracefully(leaver);
  sim.run();

  EXPECT_EQ(apps[heir].state, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(net.node(leaver)->pending_send_count(), 0u);  // drained
  EXPECT_EQ(net.registry().counter_value("chord.send_failed"), 0u);
}

TEST(ChordLossTest, RetryBudgetExhaustionCountsFailedSend) {
  chord::ChordConfig cfg;
  cfg.loss_rate = 1.0;  // black hole: nothing ever arrives
  cfg.max_retries = 3;
  ChordLossHarness h(2, cfg, 7);
  const std::vector<Key> ids = h.net->alive_ids();
  // Key owned by the peer, so the send must cross the (dead) wire.
  h.net->node(ids[0])->send(ids[1], std::make_shared<TagPayload>(1));
  h.sim.run();

  EXPECT_TRUE(h.deliveries.empty());
  EXPECT_EQ(h.counter("chord.retransmits"), 3u);
  EXPECT_EQ(h.counter("chord.send_failed"), 1u);
  EXPECT_EQ(h.counter("chord.net.lost"), 4u);  // original + 3 retries
  EXPECT_EQ(h.pending_total(), 0u);  // budget spent => entry dropped
}

TEST(ChordLossTest, ZeroLossRateKeepsReliabilityLayerDisarmed) {
  // At loss 0 the reliability machinery must be completely inert: no
  // acks, no timers, no parked sends — and therefore the retry knobs
  // must not change a single transmitted message.
  auto run = [](chord::ChordConfig cfg) {
    ChordLossHarness h(24, cfg, 8);
    Rng rng(9);
    for (int i = 0; i < 100; ++i) {
      const Key key = static_cast<Key>(rng.uniform_int(
          0, static_cast<std::int64_t>(h.net->ring().max_key())));
      h.net->alive_node(static_cast<std::size_t>(rng.uniform_int(0, 23)))
          .send(key, std::make_shared<TagPayload>(i));
    }
    h.sim.run();
    EXPECT_EQ(h.counter("chord.net.lost"), 0u);
    EXPECT_EQ(h.counter("chord.retransmits"), 0u);
    EXPECT_EQ(h.counter("chord.dup_suppressed"), 0u);
    EXPECT_EQ(h.pending_total(), 0u);
    std::vector<std::pair<Key, int>> log;
    for (const TagDelivery& d : h.deliveries) log.emplace_back(d.node, d.tag);
    return std::make_pair(log, h.net->traffic().total_hops());
  };

  chord::ChordConfig plain;
  chord::ChordConfig tweaked;
  tweaked.max_retries = 50;
  tweaked.retry_base = sim::ms(1);
  const auto a = run(plain);
  const auto b = run(tweaked);
  EXPECT_EQ(a.first, b.first);    // identical deliveries, in order
  EXPECT_EQ(a.second, b.second);  // identical wire traffic
}

// ---------------------------------------------------------------------------
// Pastry ack/retry
// ---------------------------------------------------------------------------

TEST(PastryLossTest, AckRetryRecoversEveryUnicastAtModerateLoss) {
  sim::Simulator sim;
  pastry::PastryConfig cfg;
  cfg.loss_rate = 0.05;
  pastry::PastryNetwork net(sim, cfg, 5);
  for (int i = 0; i < 32; ++i) net.add_node("p" + std::to_string(i));
  net.build_static_ring();
  std::vector<TagDelivery> deliveries;
  std::vector<std::unique_ptr<TagApp>> apps;
  for (Key id : net.ids()) {
    apps.push_back(std::make_unique<TagApp>(id, deliveries));
    net.node(id)->set_app(apps.back().get());
  }

  Rng rng(6);
  const int kSends = 150;
  for (int i = 0; i < kSends; ++i) {
    const Key key = static_cast<Key>(rng.uniform_int(
        0, static_cast<std::int64_t>(net.ring().max_key())));
    net.node_at(static_cast<std::size_t>(rng.uniform_int(0, 31)))
        .send(key, std::make_shared<TagPayload>(i));
  }
  sim.run();

  ASSERT_EQ(deliveries.size(), static_cast<std::size_t>(kSends));
  std::set<int> tags;
  for (const TagDelivery& d : deliveries) {
    EXPECT_TRUE(tags.insert(d.tag).second) << "tag " << d.tag << " twice";
    ASSERT_EQ(d.keys.size(), 1u);
    EXPECT_EQ(d.node, net.oracle_successor(d.keys[0]));
  }
  EXPECT_GT(net.registry().counter_value("pastry.net.lost"), 0u);
  EXPECT_GT(net.registry().counter_value("pastry.retransmits"), 0u);
  EXPECT_EQ(net.registry().counter_value("pastry.send_failed"), 0u);
  std::size_t pending = 0;
  for (Key id : net.ids()) pending += net.node(id)->pending_send_count();
  EXPECT_EQ(pending, 0u);
}

// ---------------------------------------------------------------------------
// End-to-end pub/sub under loss (and churn)
// ---------------------------------------------------------------------------

pubsub::SystemConfig lossy_config(std::size_t nodes, double loss_rate) {
  pubsub::SystemConfig cfg;
  cfg.nodes = nodes;
  cfg.seed = 3;
  cfg.chord.ring = RingParams{11};
  cfg.chord.stabilize_period = sim::sec(5);
  cfg.chord.loss_rate = loss_rate;
  cfg.mapping = pubsub::MappingKind::kSelectiveAttribute;
  cfg.pubsub.sub_transport = pubsub::PubSubConfig::Transport::kMulticast;
  return cfg;
}

TEST(LossIntegrationTest, StaticRingFivePercentLossIsExactlyOnce) {
  pubsub::PubSubSystem system(lossy_config(48, 0.05),
                              pubsub::Schema::uniform(3, 99'999));

  pubsub::DeliveryChecker checker;
  workload::WorkloadParams wp;
  wp.matching_probability = 0.8;
  workload::WorkloadGenerator gen(system.schema(), wp, 19);
  workload::DriverParams dp;
  dp.max_subscriptions = 30;
  dp.max_publications = 150;
  workload::Driver driver(system, gen, dp, &checker);
  driver.start();
  driver.run_to_completion();

  const auto report = checker.verify();
  ASSERT_GT(report.expected, 50u);
  EXPECT_TRUE(report.ok())
      << "missing=" << report.missing << " dup=" << report.duplicates
      << " spurious=" << report.spurious
      << (report.issues.empty() ? "" : "\n  " + report.issues[0]);

  const metrics::Registry& reg = system.network().registry();
  EXPECT_GT(reg.counter_value("chord.net.lost"), 0u);
  EXPECT_GT(reg.counter_value("chord.retransmits"), 0u);
  EXPECT_EQ(reg.counter_value("chord.send_failed"), 0u);
}

TEST(LossIntegrationTest, LossUnderChurnStaysExactlyOnce) {
  pubsub::PubSubSystem system(lossy_config(48, 0.05),
                              pubsub::Schema::uniform(3, 99'999));
  system.network().start_maintenance_all();

  pubsub::DeliveryChecker checker;
  workload::WorkloadParams wp;
  wp.matching_probability = 0.8;
  workload::WorkloadGenerator gen(system.schema(), wp, 19);
  workload::DriverParams dp;
  dp.max_subscriptions = 30;
  dp.max_publications = 150;
  workload::Driver driver(system, gen, dp, &checker);
  driver.start();

  workload::ChurnParams cp;
  cp.mean_interval_s = 40.0;
  cp.crash_fraction = 0.0;  // graceful only
  cp.min_nodes = 24;
  workload::ChurnDriver churn(system, cp, 21, [&driver](Key id) {
    for (const auto& sub : driver.active_subscriptions()) {
      if (sub->subscriber == id) return true;
    }
    return false;
  });
  churn.start();

  system.run_for(sim::sec(1'200));
  churn.stop();
  system.run_for(sim::sec(120));

  const auto report = checker.verify(sim::sec(10));
  ASSERT_GT(report.expected, 50u);
  EXPECT_EQ(report.missing, 0u)
      << (report.issues.empty() ? "" : report.issues[0]);
  EXPECT_EQ(report.duplicates, 0u);
  EXPECT_EQ(report.spurious, 0u);
  EXPECT_GT(churn.events(), 10u);

  const metrics::Registry& reg = system.network().registry();
  EXPECT_GT(reg.counter_value("chord.net.lost"), 0u);
  EXPECT_GT(reg.counter_value("chord.retransmits"), 0u);
}

}  // namespace
}  // namespace cbps
