// Tests of the §5.1 workload model: range-length distributions, center
// distributions, the paper's "0.6% most-restrictive-range" observation,
// matching-probability enforcement, and the Driver's arrival processes.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cbps/pubsub/delivery_checker.hpp"
#include "cbps/pubsub/system.hpp"
#include "cbps/workload/driver.hpp"
#include "cbps/workload/generator.hpp"

namespace cbps::workload {
namespace {

constexpr Value kAttrMax = 1'000'000;

pubsub::Schema paper_schema() { return pubsub::Schema::uniform(4, kAttrMax); }

TEST(WorkloadGeneratorTest, ConstraintsCoverEveryAttribute) {
  WorkloadGenerator gen(paper_schema(), {}, 1);
  const auto cs = gen.make_constraints();
  ASSERT_EQ(cs.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(cs[i].attribute, i);
    EXPECT_GE(cs[i].range.lo, 0);
    EXPECT_LE(cs[i].range.hi, kAttrMax);
  }
}

TEST(WorkloadGeneratorTest, NonSelectiveRangeAtMostThreePercent) {
  WorkloadGenerator gen(paper_schema(), {}, 2);
  RunningStat widths;
  for (int i = 0; i < 2000; ++i) {
    for (const auto& c : gen.make_constraints()) {
      widths.add(static_cast<double>(c.range.width()));
    }
  }
  // Uniform in [1, 0.03 * 1e6]: max <= 30000ish, mean ≈ 15000.
  EXPECT_LE(widths.max(), 0.03 * kAttrMax + 2);
  EXPECT_NEAR(widths.mean(), 0.015 * kAttrMax, 0.002 * kAttrMax);
}

TEST(WorkloadGeneratorTest, SelectiveRangeAtMostPointOnePercent) {
  WorkloadParams wp;
  wp.selective = {true, false, false, false};
  WorkloadGenerator gen(paper_schema(), wp, 3);
  RunningStat sel_widths;
  for (int i = 0; i < 2000; ++i) {
    const auto cs = gen.make_constraints();
    sel_widths.add(static_cast<double>(cs[0].range.width()));
  }
  EXPECT_LE(sel_widths.max(), 0.001 * kAttrMax + 2);
  EXPECT_NEAR(sel_widths.mean(), 0.0005 * kAttrMax, 0.0001 * kAttrMax);
}

TEST(WorkloadGeneratorTest, MostRestrictiveRangeMatchesPaperClaim) {
  // §5.1: with all attributes non-selective, the most restrictive of the
  // 4 constraints spans 0.6% of ATTR_MAX on average (min of 4 uniforms
  // over [0, 3%] has mean 3%/5).
  WorkloadGenerator gen(paper_schema(), {}, 4);
  RunningStat min_widths;
  for (int i = 0; i < 5000; ++i) {
    const auto cs = gen.make_constraints();
    std::uint64_t best = ~std::uint64_t{0};
    for (const auto& c : cs) best = std::min(best, c.range.width());
    min_widths.add(static_cast<double>(best));
  }
  EXPECT_NEAR(min_widths.mean(), 0.006 * kAttrMax, 0.0008 * kAttrMax);
}

TEST(WorkloadGeneratorTest, SelectiveCentersAreZipfSkewed) {
  // Zipf governs *popularity*: a few distinct center values dominate,
  // but those values are spread over the domain (no positional pile-up).
  WorkloadParams wp;
  wp.selective = {true, false, false, false};
  WorkloadGenerator gen(paper_schema(), wp, 5);
  std::map<Value, int> center_freq;
  const int kSamples = 3000;
  for (int i = 0; i < kSamples; ++i) {
    const auto cs = gen.make_constraints();
    center_freq[(cs[0].range.lo + cs[0].range.hi) / 2]++;
  }
  int top = 0;
  Value top_center = 0;
  for (const auto& [center, freq] : center_freq) {
    if (freq > top) {
      top = freq;
      top_center = center;
    }
  }
  // The most popular center (Zipf rank 1, s=1 over 1e6: ~7% of mass)
  // repeats far more often than uniform sampling would allow...
  EXPECT_GT(top, kSamples / 30);
  // ...and popular centers are not clustered at the domain's low end.
  int low_centers = 0;
  for (const auto& [center, freq] : center_freq) {
    if (center <= kAttrMax / 100) low_centers += freq;
  }
  EXPECT_LT(low_centers, kSamples / 4);
  (void)top_center;
}

TEST(WorkloadGeneratorTest, NonSelectiveCentersRoughlyUniform) {
  WorkloadGenerator gen(paper_schema(), {}, 6);
  RunningStat centers;
  for (int i = 0; i < 4000; ++i) {
    const auto cs = gen.make_constraints();
    centers.add(static_cast<double>((cs[1].range.lo + cs[1].range.hi) / 2));
  }
  EXPECT_NEAR(centers.mean(), kAttrMax / 2.0, kAttrMax / 40.0);
}

TEST(WorkloadGeneratorTest, MatchingValuesAlwaysMatch) {
  WorkloadGenerator gen(paper_schema(), {}, 7);
  for (int i = 0; i < 500; ++i) {
    pubsub::Subscription sub;
    sub.id = 1;
    sub.constraints = gen.make_constraints();
    pubsub::Event e;
    e.id = 1;
    e.values = gen.make_matching_values(sub);
    EXPECT_TRUE(sub.matches(e));
    EXPECT_TRUE(e.valid_for(gen.schema()));
  }
}

TEST(WorkloadGeneratorTest, MatchingProbabilityHonored) {
  WorkloadParams wp;
  wp.matching_probability = 0.5;
  WorkloadGenerator gen(paper_schema(), wp, 8);

  // A pool of active subscriptions.
  std::vector<pubsub::SubscriptionPtr> active;
  for (int i = 0; i < 20; ++i) {
    auto s = std::make_shared<pubsub::Subscription>();
    s->id = static_cast<SubscriptionId>(i + 1);
    s->constraints = gen.make_constraints();
    active.push_back(std::move(s));
  }

  int matched = 0;
  const int kSamples = 4000;
  for (int i = 0; i < kSamples; ++i) {
    pubsub::Event e;
    e.id = 1;
    e.values = gen.make_event_values(active);
    const bool any = std::any_of(active.begin(), active.end(),
                                 [&](const pubsub::SubscriptionPtr& s) {
                                   return s->matches(e);
                                 });
    if (any) ++matched;
  }
  EXPECT_NEAR(static_cast<double>(matched) / kSamples, 0.5, 0.04);
}

TEST(WorkloadGeneratorTest, EmptyActiveSetFallsBackToRandom) {
  WorkloadParams wp;
  wp.matching_probability = 1.0;
  WorkloadGenerator gen(paper_schema(), wp, 9);
  const auto values = gen.make_event_values({});
  EXPECT_EQ(values.size(), 4u);
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

pubsub::SystemConfig driver_system_config() {
  pubsub::SystemConfig cfg;
  cfg.nodes = 16;
  cfg.seed = 11;
  cfg.chord.ring = RingParams{10};
  cfg.mapping = pubsub::MappingKind::kKeySpaceSplit;
  return cfg;
}

TEST(DriverTest, IssuesExactBudgets) {
  pubsub::PubSubSystem system(driver_system_config(),
                              pubsub::Schema::uniform(4, 9'999));
  WorkloadGenerator gen(system.schema(), {}, 21);
  DriverParams dp;
  dp.max_subscriptions = 20;
  dp.max_publications = 35;
  Driver driver(system, gen, dp);
  driver.start();
  driver.run_to_completion();
  EXPECT_EQ(driver.subscriptions_issued(), 20u);
  EXPECT_EQ(driver.publications_issued(), 35u);
  EXPECT_EQ(system.subscriptions_issued(), 20u);
  EXPECT_EQ(system.publications_issued(), 35u);
}

TEST(DriverTest, SubscriptionsArriveAtRegularRate) {
  pubsub::PubSubSystem system(driver_system_config(),
                              pubsub::Schema::uniform(4, 9'999));
  WorkloadGenerator gen(system.schema(), {}, 22);
  DriverParams dp;
  dp.sub_interval = sim::sec(5);
  dp.max_subscriptions = 10;
  dp.max_publications = 0;
  Driver driver(system, gen, dp);
  driver.start();
  system.run_for(sim::sec(26));
  EXPECT_EQ(driver.subscriptions_issued(), 5u);  // t = 5,10,15,20,25
  system.run_for(sim::sec(100));
  EXPECT_EQ(driver.subscriptions_issued(), 10u);
}

TEST(DriverTest, PoissonPublicationsApproximateMeanRate) {
  pubsub::PubSubSystem system(driver_system_config(),
                              pubsub::Schema::uniform(4, 9'999));
  WorkloadGenerator gen(system.schema(), {}, 23);
  DriverParams dp;
  dp.pub_mean_interval_s = 5.0;
  dp.max_subscriptions = 0;
  dp.max_publications = 100000;
  Driver driver(system, gen, dp);
  driver.start();
  system.run_for(sim::sec(5000));
  // ~1000 expected over 5000 s.
  EXPECT_NEAR(static_cast<double>(driver.publications_issued()), 1000.0,
              120.0);
}

TEST(DriverTest, ActiveSubscriptionsPrunedByTtl) {
  pubsub::PubSubSystem system(driver_system_config(),
                              pubsub::Schema::uniform(4, 9'999));
  WorkloadGenerator gen(system.schema(), {}, 24);
  DriverParams dp;
  dp.sub_interval = sim::sec(5);
  dp.sub_ttl = sim::sec(40);
  dp.max_subscriptions = 1000;
  dp.max_publications = 0;
  Driver driver(system, gen, dp);
  driver.start();
  system.run_for(sim::sec(300));
  // Steady state: ~40/5 = 8 active.
  EXPECT_NEAR(static_cast<double>(driver.active_subscriptions().size()),
              8.0, 2.0);
}

TEST(DriverTest, CheckerIntegratedRunIsCorrect) {
  pubsub::SystemConfig cfg = driver_system_config();
  cfg.pubsub.sub_transport = pubsub::PubSubConfig::Transport::kMulticast;
  pubsub::PubSubSystem system(cfg, pubsub::Schema::uniform(4, 9'999));
  WorkloadParams wp;
  wp.matching_probability = 0.8;
  WorkloadGenerator gen(system.schema(), wp, 25);
  pubsub::DeliveryChecker checker;
  DriverParams dp;
  dp.max_subscriptions = 15;
  dp.max_publications = 60;
  dp.sub_interval = sim::sec(5);
  Driver driver(system, gen, dp, &checker);
  driver.start();
  driver.run_to_completion();
  const auto report = checker.verify();
  EXPECT_GT(checker.publication_count(), 0u);
  EXPECT_TRUE(report.ok()) << "missing=" << report.missing
                           << " dup=" << report.duplicates
                           << " spurious=" << report.spurious;
  EXPECT_GT(report.expected, 0u);
}

}  // namespace
}  // namespace cbps::workload
