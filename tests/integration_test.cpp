// System-level integration tests: scaled-down versions of the paper's
// experiments with their qualitative outcomes asserted, plus
// reproducibility and long-run stability checks.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cbps/pubsub/delivery_checker.hpp"
#include "cbps/pubsub/system.hpp"
#include "cbps/workload/driver.hpp"
#include "cbps/workload/generator.hpp"

namespace cbps::pubsub {
namespace {

using Transport = PubSubConfig::Transport;
using overlay::MessageClass;

struct RunStats {
  double hops_per_sub = 0;
  double hops_per_pub = 0;
  std::size_t max_subs = 0;
  double avg_subs = 0;
  std::uint64_t notifications = 0;
  std::uint64_t total_hops = 0;
};

RunStats run(MappingKind mapping, Transport transport, std::size_t nodes,
             std::uint64_t subs, std::uint64_t pubs,
             int selective_attrs = 0, Value discretization = 1,
             std::uint64_t seed = 3) {
  SystemConfig cfg;
  cfg.nodes = nodes;
  cfg.seed = seed;
  cfg.mapping = mapping;
  cfg.mapping_options.discretization = discretization;
  cfg.pubsub.sub_transport = transport;
  cfg.pubsub.pub_transport = transport;
  PubSubSystem system(cfg, Schema::uniform(4, 1'000'000));

  workload::WorkloadParams wp;
  wp.zipf_exponent = 0.7;
  wp.selective.assign(4, false);
  for (int i = 0; i < selective_attrs; ++i) {
    wp.selective[static_cast<std::size_t>(i)] = true;
  }
  workload::WorkloadGenerator gen(system.schema(), wp, seed * 31 + 7);

  workload::DriverParams dp;
  dp.max_subscriptions = subs;
  dp.max_publications = pubs;
  workload::Driver driver(system, gen, dp);
  driver.start();
  driver.run_to_completion();

  RunStats r;
  if (subs > 0) {
    r.hops_per_sub =
        static_cast<double>(system.traffic().hops(MessageClass::kSubscribe)) /
        static_cast<double>(subs);
  }
  if (pubs > 0) {
    r.hops_per_pub =
        static_cast<double>(system.traffic().hops(MessageClass::kPublish)) /
        static_cast<double>(pubs);
  }
  const auto st = system.storage_stats();
  r.max_subs = st.max_peak;
  r.avg_subs = st.avg_peak;
  r.notifications = system.notifications_delivered();
  r.total_hops = system.traffic().total_hops();
  return r;
}

// --- Figure 5 shape ---------------------------------------------------------

TEST(IntegrationShapeTest, SubscriptionCostOrderingAcrossMappings) {
  const auto m1 = run(MappingKind::kAttributeSplit, Transport::kUnicast,
                      100, 200, 0);
  const auto m2 = run(MappingKind::kKeySpaceSplit, Transport::kUnicast,
                      100, 200, 0);
  const auto m3 = run(MappingKind::kSelectiveAttribute, Transport::kUnicast,
                      100, 200, 0);
  // Paper Fig. 5: M1 ~10x M3's subscription cost; M2 is the cheapest.
  EXPECT_GT(m1.hops_per_sub, 4.0 * m3.hops_per_sub);
  EXPECT_LT(m2.hops_per_sub, m3.hops_per_sub);
}

TEST(IntegrationShapeTest, McastReducesHighKeyCountSubscriptionCost) {
  const auto uni = run(MappingKind::kAttributeSplit, Transport::kUnicast,
                       100, 150, 0);
  const auto mc = run(MappingKind::kAttributeSplit, Transport::kMulticast,
                      100, 150, 0);
  // Paper: >90% at n=500; at n=100 the key ranges cover fewer nodes so
  // demand >= 80%.
  EXPECT_LT(mc.hops_per_sub, 0.2 * uni.hops_per_sub);
}

TEST(IntegrationShapeTest, PublicationCostM3IsDTimesM2) {
  const auto m2 = run(MappingKind::kKeySpaceSplit, Transport::kUnicast,
                      200, 100, 300);
  const auto m3 = run(MappingKind::kSelectiveAttribute, Transport::kUnicast,
                      200, 100, 300);
  // M3 routes each event to d=4 keys, M2 to one.
  EXPECT_GT(m3.hops_per_pub, 2.0 * m2.hops_per_pub);
  EXPECT_LT(m3.hops_per_pub, 8.0 * m2.hops_per_pub);
}

// --- Figure 7 shape ---------------------------------------------------------

TEST(IntegrationShapeTest, PublicationHopsGrowSublinearlyWithN) {
  const auto small = run(MappingKind::kSelectiveAttribute,
                         Transport::kUnicast, 100, 100, 300);
  const auto large = run(MappingKind::kSelectiveAttribute,
                         Transport::kUnicast, 400, 100, 300);
  EXPECT_GT(large.hops_per_pub, small.hops_per_pub);
  // 4x nodes must cost far less than 4x hops (logarithmic routing).
  EXPECT_LT(large.hops_per_pub, 2.0 * small.hops_per_pub);
}

// --- Figure 6/8 shape -------------------------------------------------------

TEST(IntegrationShapeTest, MemoryOrderingWithoutSelectiveAttrs) {
  // n = 250, where the Figure 8 gap between the mappings is established
  // (at n = 100 the paper's own M2 and M3 points nearly coincide).
  const auto m1 = run(MappingKind::kAttributeSplit, Transport::kMulticast,
                      250, 2000, 0);
  const auto m2 = run(MappingKind::kKeySpaceSplit, Transport::kMulticast,
                      250, 2000, 0);
  const auto m3 = run(MappingKind::kSelectiveAttribute,
                      Transport::kMulticast, 250, 2000, 0);
  EXPECT_LT(m2.avg_subs, 0.7 * m3.avg_subs);
  EXPECT_LT(m3.avg_subs, 0.7 * m1.avg_subs);
  EXPECT_LT(m3.max_subs, m1.max_subs);
  // M1 stores every subscription on many nodes: its average must exceed
  // the subscription count divided by node count by a wide margin.
  EXPECT_GT(m1.avg_subs, 4.0 * 2000.0 / 250.0);
}

TEST(IntegrationShapeTest, SelectiveAttributeHelpsM3) {
  const auto without = run(MappingKind::kSelectiveAttribute,
                           Transport::kMulticast, 250, 2000, 0, 0);
  const auto with_sel = run(MappingKind::kSelectiveAttribute,
                            Transport::kMulticast, 250, 2000, 0,
                            /*selective_attrs=*/1);
  EXPECT_LT(with_sel.avg_subs, 0.65 * without.avg_subs);
}

// --- Figure 9(b) shape ------------------------------------------------------

TEST(IntegrationShapeTest, DiscretizationMonotonicallyCutsSubHops) {
  const auto none = run(MappingKind::kSelectiveAttribute,
                        Transport::kUnicast, 100, 200, 0, 0, 1);
  const auto d10 = run(MappingKind::kSelectiveAttribute,
                       Transport::kUnicast, 100, 200, 0, 0, 1500);
  const auto d20 = run(MappingKind::kSelectiveAttribute,
                       Transport::kUnicast, 100, 200, 0, 0, 3000);
  EXPECT_GT(none.hops_per_sub, d10.hops_per_sub);
  EXPECT_GT(d10.hops_per_sub, d20.hops_per_sub);
}

// --- Reproducibility --------------------------------------------------------

TEST(IntegrationDeterminismTest, IdenticalSeedsGiveIdenticalRuns) {
  const auto a = run(MappingKind::kSelectiveAttribute, Transport::kMulticast,
                     64, 120, 200, 1, 1, /*seed=*/99);
  const auto b = run(MappingKind::kSelectiveAttribute, Transport::kMulticast,
                     64, 120, 200, 1, 1, /*seed=*/99);
  EXPECT_EQ(a.total_hops, b.total_hops);
  EXPECT_EQ(a.notifications, b.notifications);
  EXPECT_EQ(a.max_subs, b.max_subs);
}

TEST(IntegrationDeterminismTest, DifferentSeedsDiffer) {
  const auto a = run(MappingKind::kSelectiveAttribute, Transport::kMulticast,
                     64, 120, 200, 1, 1, /*seed=*/99);
  const auto b = run(MappingKind::kSelectiveAttribute, Transport::kMulticast,
                     64, 120, 200, 1, 1, /*seed=*/100);
  EXPECT_NE(a.total_hops, b.total_hops);
}

// --- Long-run expiry stability ----------------------------------------------

TEST(IntegrationExpiryTest, StorageIsBoundedAndDrains) {
  SystemConfig cfg;
  cfg.nodes = 64;
  cfg.seed = 5;
  cfg.mapping = MappingKind::kKeySpaceSplit;
  cfg.pubsub.sub_transport = Transport::kMulticast;
  PubSubSystem system(cfg, Schema::uniform(4, 1'000'000));

  workload::WorkloadGenerator gen(system.schema(), {}, 55);
  workload::DriverParams dp;
  dp.max_subscriptions = 2000;
  dp.max_publications = 0;
  dp.sub_interval = sim::sec(5);
  dp.sub_ttl = sim::sec(200);  // steady state: ~40 live subscriptions
  workload::Driver driver(system, gen, dp);
  driver.start();

  // Mid-run: storage must be bounded near the steady state, far below
  // the total injected count.
  system.run_for(sim::sec(5 * 1000));
  EXPECT_LT(system.storage_stats().total_owned, 300u);
  EXPECT_GT(system.storage_stats().total_owned, 0u);

  // After the run + TTL, everything must drain.
  system.quiesce();
  EXPECT_EQ(system.storage_stats().total_owned, 0u);
  EXPECT_EQ(driver.subscriptions_issued(), 2000u);
}

// --- End-to-end correctness under combined churn ------------------------------

TEST(IntegrationChurnTest, WorkloadSurvivesJoinsLeavesAndCrashes) {
  SystemConfig cfg;
  cfg.nodes = 40;
  cfg.seed = 8;
  cfg.mapping = MappingKind::kSelectiveAttribute;
  cfg.pubsub.sub_transport = Transport::kMulticast;
  cfg.pubsub.replication_factor = 2;
  cfg.chord.stabilize_period = sim::sec(5);
  PubSubSystem system(cfg, Schema::uniform(3, 99'999));
  system.network().start_maintenance_all();

  DeliveryChecker checker;
  system.set_notify_sink([&](Key subscriber, const Notification& n) {
    checker.on_notify(subscriber, n, system.sim().now());
  });

  workload::WorkloadParams wp;
  wp.matching_probability = 0.8;
  workload::WorkloadGenerator gen(system.schema(), wp, 21);

  std::vector<SubscriptionPtr> active;
  for (std::size_t i = 0; i < 10; ++i) {
    auto sub = system.subscribe(i, gen.make_constraints());
    checker.on_subscribe(sub, system.sim().now(), sim::kSimTimeNever);
    active.push_back(sub);
    system.run_for(sim::sec(3));
  }

  // Churn: two joins, one graceful leave, one crash (non-subscribers).
  system.join_node("fresh-1");
  system.run_for(sim::sec(30));
  system.join_node("fresh-2");
  system.run_for(sim::sec(30));
  int removed = 0;
  for (Key id : system.network().alive_ids()) {
    if (removed >= 2) break;
    bool is_subscriber = false;
    for (const auto& s : active) is_subscriber |= s->subscriber == id;
    if (is_subscriber) continue;
    std::size_t idx = system.node_count();
    for (std::size_t i = 0; i < system.node_count(); ++i) {
      if (system.node_id(i) == id) {
        idx = i;
        break;
      }
    }
    ASSERT_LT(idx, system.node_count());
    if (removed == 0) {
      system.leave_node(idx);
    } else {
      system.crash_node(idx);
    }
    ++removed;
    system.run_for(sim::sec(60));
  }

  // Traffic through the churned ring.
  for (int i = 0; i < 30; ++i) {
    auto event = std::make_shared<Event>();
    const std::vector<Value> values = gen.make_event_values(active);
    // Publish from an alive node.
    const std::vector<Key> alive = system.network().alive_ids();
    const Key pub_id = alive[static_cast<std::size_t>(gen.rng().uniform_int(
        0, static_cast<std::int64_t>(alive.size()) - 1))];
    for (std::size_t idx = 0; idx < system.node_count(); ++idx) {
      if (system.node_id(idx) == pub_id) {
        const EventId id = system.publish(idx, values);
        event->id = id;
        event->values = values;
        checker.on_publish(event, system.sim().now());
        break;
      }
    }
    system.run_for(sim::sec(3));
  }
  system.run_for(sim::sec(60));

  const auto report = checker.verify(sim::sec(5));
  EXPECT_GT(report.expected, 0u);
  EXPECT_EQ(report.missing, 0u)
      << (report.issues.empty() ? "" : report.issues[0]);
  EXPECT_EQ(report.duplicates, 0u);
  EXPECT_EQ(report.spurious, 0u);
}

}  // namespace
}  // namespace cbps::pubsub
