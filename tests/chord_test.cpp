// Tests for the Chord substrate: finger tables, location cache, unicast
// routing vs a ground-truth oracle, the m-cast primitive of paper §4.3.1
// (Figure 4), the conservative chain baseline, and the join/leave/crash
// maintenance protocols.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "cbps/chord/network.hpp"
#include "cbps/chord/node.hpp"
#include "cbps/common/rng.hpp"
#include "cbps/overlay/node.hpp"
#include "cbps/sim/simulator.hpp"

namespace cbps::chord {
namespace {

using overlay::MessageClass;
using overlay::PayloadPtr;

// ---------------------------------------------------------------------------
// Test scaffolding
// ---------------------------------------------------------------------------

struct TestPayload final : overlay::Payload {
  explicit TestPayload(int t, MessageClass c = MessageClass::kPublish)
      : tag(t), cls(c) {}
  MessageClass message_class() const override { return cls; }
  int tag;
  MessageClass cls;
};

struct StatePayload final : overlay::Payload {
  explicit StatePayload(std::vector<int> i) : items(std::move(i)) {}
  MessageClass message_class() const override {
    return MessageClass::kStateTransfer;
  }
  std::vector<int> items;
};

struct UnicastDelivery {
  Key node;
  Key key;
  int tag;
};

struct McastDelivery {
  Key node;
  std::vector<Key> keys;
  int tag;
};

struct Recorder {
  std::vector<UnicastDelivery> unicast;
  std::vector<McastDelivery> mcast;
};

// Minimal app: records deliveries; holds a bag of ints as "state" keyed
// by nothing (state-transfer plumbing is exercised, content checked by
// the pub/sub tests).
class TestApp final : public overlay::OverlayApp {
 public:
  TestApp(Key node, Recorder& rec) : node_(node), rec_(rec) {}

  void on_deliver(Key key, const PayloadPtr& payload) override {
    if (auto* st = dynamic_cast<const StatePayload*>(payload.get())) {
      state.insert(state.end(), st->items.begin(), st->items.end());
      return;
    }
    const auto* p = dynamic_cast<const TestPayload*>(payload.get());
    ASSERT_NE(p, nullptr);
    rec_.unicast.push_back({node_, key, p->tag});
  }

  void on_deliver_mcast(std::span<const Key> covered,
                        const PayloadPtr& payload) override {
    const auto* p = dynamic_cast<const TestPayload*>(payload.get());
    ASSERT_NE(p, nullptr);
    rec_.mcast.push_back(
        {node_, {covered.begin(), covered.end()}, p->tag});
  }

  PayloadPtr export_state(Key, Key, bool remove) override {
    std::vector<int> out = state;
    if (remove) state.clear();
    return std::make_shared<StatePayload>(std::move(out));
  }

  void import_state(const PayloadPtr& payload) override {
    const auto* st = dynamic_cast<const StatePayload*>(payload.get());
    ASSERT_NE(st, nullptr);
    state.insert(state.end(), st->items.begin(), st->items.end());
  }

  std::vector<int> state;

 private:
  Key node_;
  Recorder& rec_;
};

class Harness {
 public:
  explicit Harness(std::size_t n, ChordConfig cfg = {},
                   std::uint64_t seed = 1) {
    net = std::make_unique<ChordNetwork>(sim, cfg, seed);
    for (std::size_t i = 0; i < n; ++i) {
      net->add_node("n" + std::to_string(i));
    }
    net->build_static_ring();
    attach_apps();
  }

  void attach_apps() {
    for (Key id : net->alive_ids()) {
      if (apps.contains(id)) continue;
      apps[id] = std::make_unique<TestApp>(id, recorder);
      net->node(id)->set_app(apps[id].get());
    }
  }

  ChordNode& node_covering(Key key) {
    return *net->node(net->oracle_successor(key));
  }

  /// Checks the exact static-topology invariants against the oracle.
  void expect_converged_ring() {
    const std::vector<Key> ids = net->alive_ids();
    const std::size_t n = ids.size();
    for (std::size_t i = 0; i < n; ++i) {
      const ChordNode& node = *net->node(ids[i]);
      if (n == 1) continue;
      ASSERT_TRUE(node.predecessor().has_value()) << "node " << ids[i];
      EXPECT_EQ(*node.predecessor(), ids[(i + n - 1) % n])
          << "pred of " << ids[i];
      ASSERT_FALSE(node.successor_list().empty());
      EXPECT_EQ(node.successor_list().front(), ids[(i + 1) % n])
          << "succ of " << ids[i];
    }
  }

  sim::Simulator sim;
  std::unique_ptr<ChordNetwork> net;
  Recorder recorder;
  std::map<Key, std::unique_ptr<TestApp>> apps;
};

// ---------------------------------------------------------------------------
// FingerTable / LocationCache units
// ---------------------------------------------------------------------------

TEST(FingerTableTest, StartsFollowPowersOfTwo) {
  const RingParams ring{6};
  FingerTable ft(ring, 10);
  EXPECT_EQ(ft.size(), 6u);
  EXPECT_EQ(ft.start(0), 11u);
  EXPECT_EQ(ft.start(1), 12u);
  EXPECT_EQ(ft.start(5), (10u + 32u) % 64u);
}

TEST(FingerTableTest, DistinctNodesSortedByDistanceAndDeduped) {
  const RingParams ring{6};
  FingerTable ft(ring, 60);
  ft.set(0, 62);
  ft.set(1, 62);
  ft.set(2, 3);
  ft.set(3, 20);
  ft.set(4, 60);  // self: must be dropped
  const auto nodes = ft.distinct_nodes();
  EXPECT_EQ(nodes, (std::vector<Key>{62, 3, 20}));
}

TEST(FingerTableTest, EvictRemovesAllEntries) {
  const RingParams ring{6};
  FingerTable ft(ring, 0);
  ft.set(0, 5);
  ft.set(1, 5);
  ft.set(2, 9);
  ft.evict(5);
  EXPECT_FALSE(ft.get(0).has_value());
  EXPECT_FALSE(ft.get(1).has_value());
  EXPECT_EQ(ft.get(2), std::optional<Key>(9));
}

TEST(LocationCacheTest, FindOwnerUsesCoveredRange) {
  const RingParams ring{8};
  LocationCache cache(ring, 8);
  cache.insert(/*node=*/100, /*range_lo=*/90);  // covers (90, 100]
  EXPECT_EQ(cache.find_owner(95), std::optional<Key>(100));
  EXPECT_EQ(cache.find_owner(100), std::optional<Key>(100));
  EXPECT_FALSE(cache.find_owner(90).has_value());
  EXPECT_FALSE(cache.find_owner(101).has_value());
}

TEST(LocationCacheTest, LruEviction) {
  const RingParams ring{8};
  LocationCache cache(ring, 2);
  cache.insert(10, 5);
  cache.insert(20, 15);
  cache.insert(30, 25);  // evicts 10
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.find_owner(7).has_value());
  EXPECT_TRUE(cache.find_owner(18).has_value());
  EXPECT_TRUE(cache.find_owner(28).has_value());
}

TEST(LocationCacheTest, HitRefreshesLruPosition) {
  const RingParams ring{8};
  LocationCache cache(ring, 2);
  cache.insert(10, 5);
  cache.insert(20, 15);
  EXPECT_TRUE(cache.find_owner(8).has_value());  // touch 10
  cache.insert(30, 25);                          // evicts 20, not 10
  EXPECT_TRUE(cache.find_owner(8).has_value());
  EXPECT_FALSE(cache.find_owner(18).has_value());
}

TEST(LocationCacheTest, EvictAndZeroCapacity) {
  const RingParams ring{8};
  LocationCache cache(ring, 4);
  cache.insert(10, 5);
  cache.evict(10);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.find_owner(8).has_value());

  LocationCache disabled(ring, 0);
  disabled.insert(10, 5);
  EXPECT_EQ(disabled.size(), 0u);
}

// ---------------------------------------------------------------------------
// Static topology
// ---------------------------------------------------------------------------

TEST(ChordStaticTest, RingInvariantsHold) {
  Harness h(32);
  h.expect_converged_ring();
}

TEST(ChordStaticTest, FingersMatchOracle) {
  Harness h(32);
  for (Key id : h.net->alive_ids()) {
    const ChordNode& node = *h.net->node(id);
    const FingerTable& ft = node.finger_table();
    for (std::size_t i = 0; i < ft.size(); ++i) {
      ASSERT_TRUE(ft.get(i).has_value());
      EXPECT_EQ(*ft.get(i), h.net->oracle_successor(ft.start(i)))
          << "node " << id << " finger " << i;
    }
  }
}

TEST(ChordStaticTest, OracleSuccessorWraps) {
  Harness h(4);
  const auto ids = h.net->alive_ids();
  // A key beyond the last node wraps to the first.
  EXPECT_EQ(h.net->oracle_successor(ids.back() + 1), ids.front());
  EXPECT_EQ(h.net->oracle_successor(ids.front()), ids.front());
}

TEST(ChordStaticTest, SingleNodeCoversEverything) {
  Harness h(1);
  ChordNode& only = h.net->alive_node(0);
  for (Key k = 0; k < h.net->ring().size(); k += 997) {
    EXPECT_TRUE(only.covers(k));
  }
}

// ---------------------------------------------------------------------------
// Unicast routing
// ---------------------------------------------------------------------------

TEST(ChordRoutingTest, DeliversAtOracleSuccessor) {
  Harness h(64);
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const Key key = static_cast<Key>(
        rng.uniform_int(0, static_cast<std::int64_t>(h.net->ring().max_key())));
    ChordNode& src = h.net->alive_node(static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(h.net->alive_count()) - 1)));
    src.send(key, std::make_shared<TestPayload>(i));
  }
  h.sim.run();
  ASSERT_EQ(h.recorder.unicast.size(), 200u);
  for (const UnicastDelivery& d : h.recorder.unicast) {
    EXPECT_EQ(d.node, h.net->oracle_successor(d.key))
        << "key " << d.key << " delivered at wrong node";
  }
}

TEST(ChordRoutingTest, HopCountBoundedByLogN) {
  ChordConfig cfg;
  cfg.location_cache_size = 0;  // pure finger routing
  cfg.owner_feedback = false;
  Harness h(128, cfg);
  Rng rng(11);
  for (int i = 0; i < 300; ++i) {
    const Key key = static_cast<Key>(
        rng.uniform_int(0, static_cast<std::int64_t>(h.net->ring().max_key())));
    h.net->alive_node(0).send(key, std::make_shared<TestPayload>(i));
  }
  h.sim.run();
  const auto& stat =
      h.net->traffic().route_hops(MessageClass::kPublish);
  ASSERT_EQ(stat.count(), 300u);
  // Chord guarantee: O(log n) hops; with perfect fingers, <= log2(n)+1.
  EXPECT_LE(stat.max(), 8.0);  // log2(128) = 7
  EXPECT_GT(stat.mean(), 1.0);
}

TEST(ChordRoutingTest, SelfCoveredKeySelfDeliversWithoutHops) {
  Harness h(16);
  ChordNode& node = h.net->alive_node(3);
  node.send(node.id(), std::make_shared<TestPayload>(1));
  h.sim.run();
  ASSERT_EQ(h.recorder.unicast.size(), 1u);
  EXPECT_EQ(h.recorder.unicast[0].node, node.id());
  EXPECT_EQ(h.net->traffic().hops(MessageClass::kPublish), 0u);
}

TEST(ChordRoutingTest, LocationCacheShortensRepeatRoutes) {
  ChordConfig cfg;
  cfg.location_cache_size = 128;
  cfg.owner_feedback = true;
  Harness h(128, cfg);
  ChordNode& src = h.net->alive_node(0);
  const Key key = h.net->ring().sub(src.id(), 1);  // far side of the ring

  src.send(key, std::make_shared<TestPayload>(1));
  h.sim.run();
  const auto first = h.net->traffic().route_hops(MessageClass::kPublish);
  ASSERT_EQ(first.count(), 1u);
  const double first_hops = first.max();

  src.send(key, std::make_shared<TestPayload>(2));
  h.sim.run();
  const auto second = h.net->traffic().route_hops(MessageClass::kPublish);
  ASSERT_EQ(second.count(), 2u);
  const double second_hops = second.sum() - first_hops;
  if (first_hops > 1.0) {
    // Owner feedback lets the second route go direct.
    EXPECT_EQ(second_hops, 1.0);
  }
}

TEST(ChordRoutingTest, ManyRoutesAverageBelowLogNWithCache) {
  ChordConfig cfg;
  cfg.location_cache_size = 128;
  Harness h(100, cfg);
  Rng rng(3);
  // Warm phase + measured phase from one busy node.
  for (int i = 0; i < 600; ++i) {
    const Key key = static_cast<Key>(
        rng.uniform_int(0, static_cast<std::int64_t>(h.net->ring().max_key())));
    h.net->alive_node(5).send(key, std::make_shared<TestPayload>(i));
  }
  h.sim.run();
  const auto& stat = h.net->traffic().route_hops(MessageClass::kPublish);
  // log2(100) ≈ 6.6; the cache should pull the average well below it
  // (the paper reports ~2.5 at n=500, §5.1).
  EXPECT_LT(stat.mean(), 4.0);
}

// ---------------------------------------------------------------------------
// m-cast (Figure 4)
// ---------------------------------------------------------------------------

std::vector<Key> key_range(Key lo, std::uint64_t count, RingParams ring) {
  std::vector<Key> keys;
  keys.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) keys.push_back(ring.add(lo, i));
  return keys;
}

TEST(ChordMcastTest, DeliversToExactlyCoveringNodesOnce) {
  Harness h(48);
  const RingParams ring = h.net->ring();
  const std::vector<Key> targets = key_range(1000, 2000, ring);

  h.net->alive_node(7).m_cast(targets, std::make_shared<TestPayload>(1));
  h.sim.run();

  // Expected: each target key delivered exactly once at its oracle
  // successor; each node at most one m-cast delivery.
  std::map<Key, std::vector<Key>> by_node;
  for (Key k : targets) by_node[h.net->oracle_successor(k)].push_back(k);

  std::set<Key> seen_nodes;
  std::size_t keys_delivered = 0;
  for (const McastDelivery& d : h.recorder.mcast) {
    EXPECT_TRUE(seen_nodes.insert(d.node).second)
        << "node " << d.node << " received the m-cast twice";
    ASSERT_TRUE(by_node.contains(d.node));
    std::vector<Key> expected = by_node[d.node];
    std::vector<Key> got = d.keys;
    std::sort(expected.begin(), expected.end());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << "covered-key set mismatch at " << d.node;
    keys_delivered += got.size();
  }
  EXPECT_EQ(seen_nodes.size(), by_node.size());
  EXPECT_EQ(keys_delivered, targets.size());
}

TEST(ChordMcastTest, WrappingRange) {
  Harness h(16);
  const RingParams ring = h.net->ring();
  const std::vector<Key> targets = key_range(ring.sub(0, 100), 200, ring);
  h.net->alive_node(3).m_cast(targets, std::make_shared<TestPayload>(2));
  h.sim.run();
  std::size_t total = 0;
  for (const McastDelivery& d : h.recorder.mcast) total += d.keys.size();
  EXPECT_EQ(total, targets.size());
}

TEST(ChordMcastTest, DuplicateAndSingletonKeys) {
  Harness h(8);
  ChordNode& src = h.net->alive_node(0);
  const Key k = h.net->ring().midpoint(src.id(), h.net->alive_node(4).id());
  src.m_cast({k, k, k}, std::make_shared<TestPayload>(3));
  h.sim.run();
  ASSERT_EQ(h.recorder.mcast.size(), 1u);
  EXPECT_EQ(h.recorder.mcast[0].keys, std::vector<Key>{k});
  EXPECT_EQ(h.recorder.mcast[0].node, h.net->oracle_successor(k));
}

TEST(ChordMcastTest, InitiatorCoversSomeTargets) {
  Harness h(8);
  ChordNode& src = h.net->alive_node(2);
  // One key we cover ourselves + one far key.
  const Key own = src.id();
  const Key far = h.net->ring().add(src.id(), h.net->ring().size() / 2);
  src.m_cast({own, far}, std::make_shared<TestPayload>(4));
  h.sim.run();
  std::set<Key> nodes;
  for (const auto& d : h.recorder.mcast) nodes.insert(d.node);
  EXPECT_TRUE(nodes.contains(src.id()));
  EXPECT_TRUE(nodes.contains(h.net->oracle_successor(far)));
}

TEST(ChordMcastTest, MessageComplexityIsLogNPlusRange) {
  ChordConfig cfg;
  cfg.location_cache_size = 0;
  Harness h(64, cfg);
  const RingParams ring = h.net->ring();
  // A range covering ~16 of 64 nodes.
  const std::vector<Key> targets = key_range(0, ring.size() / 4, ring);
  std::size_t nodes_in_range = 0;
  for (Key id : h.net->alive_ids()) {
    if (id < ring.size() / 4) ++nodes_in_range;
  }
  h.net->alive_node(40).m_cast(targets, std::make_shared<TestPayload>(5));
  h.sim.run();
  const std::uint64_t hops = h.net->traffic().hops(MessageClass::kPublish);
  // O(log n + N_range): the log term covers the initial finger fan-out
  // plus per-level delegation relays (a small multiple of log2 n = 6).
  EXPECT_LE(hops, nodes_in_range + 4 * 6);
  EXPECT_GE(hops, nodes_in_range > 0 ? nodes_in_range - 1 : 0);
}

TEST(ChordMcastTest, DilationIsLogarithmic) {
  ChordConfig cfg;
  cfg.location_cache_size = 0;
  Harness h(64, cfg);
  const RingParams ring = h.net->ring();
  const std::vector<Key> targets = key_range(0, ring.size() / 2, ring);
  h.net->alive_node(10).m_cast(targets, std::make_shared<TestPayload>(6));
  h.sim.run();
  // Fixed 50 ms per hop: the last delivery must happen within
  // O(log n) hops' worth of time.
  EXPECT_LE(h.sim.now(), sim::ms(50) * 8);
}

// ---------------------------------------------------------------------------
// chain_cast (conservative unicast baseline)
// ---------------------------------------------------------------------------

TEST(ChordChainTest, DeliversSameSetAsMcast) {
  Harness h(32);
  const RingParams ring = h.net->ring();
  const std::vector<Key> targets = key_range(500, 1500, ring);

  h.net->alive_node(3).chain_cast(targets, std::make_shared<TestPayload>(7));
  h.sim.run();

  std::map<Key, std::vector<Key>> by_node;
  for (Key k : targets) by_node[h.net->oracle_successor(k)].push_back(k);

  std::set<Key> seen;
  std::size_t total = 0;
  for (const McastDelivery& d : h.recorder.mcast) {
    EXPECT_TRUE(seen.insert(d.node).second);
    total += d.keys.size();
  }
  EXPECT_EQ(seen.size(), by_node.size());
  EXPECT_EQ(total, targets.size());
}

TEST(ChordChainTest, DilationIsLinearInRangeNodes) {
  ChordConfig cfg;
  cfg.location_cache_size = 0;
  Harness h(64, cfg);
  const RingParams ring = h.net->ring();
  const std::vector<Key> targets = key_range(0, ring.size() / 2, ring);
  std::size_t nodes_in_range = 0;
  for (Key id : h.net->alive_ids()) {
    if (id < ring.size() / 2) ++nodes_in_range;
  }
  h.net->alive_node(10).chain_cast(targets,
                                   std::make_shared<TestPayload>(8));
  h.sim.run();
  // The walk visits range nodes sequentially: completion time must be at
  // least nodes_in_range - 1 hops (versus O(log n) for m-cast).
  EXPECT_GE(h.sim.now(), sim::ms(50) * (nodes_in_range - 1));
}

// ---------------------------------------------------------------------------
// Neighbor sends
// ---------------------------------------------------------------------------

TEST(ChordNeighborTest, SuccessorAndPredecessorDelivery) {
  Harness h(8);
  ChordNode& node = h.net->alive_node(2);
  node.send_to_successor(
      std::make_shared<TestPayload>(1, MessageClass::kCollect));
  node.send_to_predecessor(
      std::make_shared<TestPayload>(2, MessageClass::kCollect));
  h.sim.run();
  ASSERT_EQ(h.recorder.unicast.size(), 2u);
  std::map<int, Key> by_tag;
  for (const auto& d : h.recorder.unicast) by_tag[d.tag] = d.node;
  EXPECT_EQ(by_tag[1], node.successor_id());
  EXPECT_EQ(by_tag[2], node.predecessor_id());
  EXPECT_EQ(h.net->traffic().hops(MessageClass::kCollect), 2u);
}

// ---------------------------------------------------------------------------
// Dynamic membership
// ---------------------------------------------------------------------------

ChordConfig maintenance_config() {
  ChordConfig cfg;
  cfg.stabilize_period = sim::sec(5);
  return cfg;
}

TEST(ChordJoinTest, JoinConvergesAndTransfersCoverage) {
  Harness h(16, maintenance_config());
  h.net->start_maintenance_all();

  ChordNode& joiner = h.net->join_node("late-arrival", h.net->alive_ids()[0]);
  h.attach_apps();
  h.sim.run_until(sim::sec(60));

  h.expect_converged_ring();
  // The joiner must now own (pred, id]: a message routed to its id from a
  // third node must be delivered by the joiner.
  ChordNode& other = h.net->alive_node(0);
  h.recorder.unicast.clear();
  other.send(joiner.id(), std::make_shared<TestPayload>(42));
  h.sim.run_until(h.sim.now() + sim::sec(5));
  ASSERT_FALSE(h.recorder.unicast.empty());
  EXPECT_EQ(h.recorder.unicast.back().node, joiner.id());
}

TEST(ChordJoinTest, ManySequentialJoins) {
  Harness h(8, maintenance_config());
  h.net->start_maintenance_all();
  for (int i = 0; i < 8; ++i) {
    h.net->join_node("j" + std::to_string(i), h.net->alive_ids()[0]);
    h.attach_apps();
    h.sim.run_until(h.sim.now() + sim::sec(30));
  }
  h.sim.run_until(h.sim.now() + sim::sec(60));
  EXPECT_EQ(h.net->alive_count(), 16u);
  h.expect_converged_ring();
}

TEST(ChordLeaveTest, GracefulLeaveRepairsRingAndMovesState) {
  Harness h(16, maintenance_config());
  h.net->start_maintenance_all();

  const std::vector<Key> ids = h.net->alive_ids();
  const Key leaver = ids[5];
  const Key succ = ids[6];
  h.apps[leaver]->state = {1, 2, 3};

  h.net->leave_gracefully(leaver);
  h.sim.run_until(sim::sec(60));

  EXPECT_EQ(h.net->alive_count(), 15u);
  h.expect_converged_ring();
  EXPECT_EQ(h.apps[succ]->state, (std::vector<int>{1, 2, 3}));

  // Keys previously covered by the leaver now route to its successor.
  h.recorder.unicast.clear();
  h.net->alive_node(0).send(leaver, std::make_shared<TestPayload>(9));
  h.sim.run_until(h.sim.now() + sim::sec(5));
  ASSERT_FALSE(h.recorder.unicast.empty());
  EXPECT_EQ(h.recorder.unicast.back().node, succ);
}

TEST(ChordCrashTest, RingHealsThroughSuccessorLists) {
  Harness h(16, maintenance_config());
  h.net->start_maintenance_all();
  h.sim.run_until(sim::sec(20));

  const std::vector<Key> ids = h.net->alive_ids();
  h.net->crash(ids[3]);
  h.sim.run_until(sim::sec(120));

  EXPECT_EQ(h.net->alive_count(), 15u);
  h.expect_converged_ring();

  // Routing to the dead node's keys lands at its successor.
  h.recorder.unicast.clear();
  h.net->alive_node(10).send(ids[3], std::make_shared<TestPayload>(13));
  h.sim.run_until(h.sim.now() + sim::sec(5));
  ASSERT_FALSE(h.recorder.unicast.empty());
  EXPECT_EQ(h.recorder.unicast.back().node, h.net->oracle_successor(ids[3]));
}

TEST(ChordCrashTest, MultipleSimultaneousCrashes) {
  ChordConfig cfg = maintenance_config();
  cfg.successor_list_size = 6;
  Harness h(24, cfg);
  h.net->start_maintenance_all();
  h.sim.run_until(sim::sec(20));

  const std::vector<Key> ids = h.net->alive_ids();
  h.net->crash(ids[4]);
  h.net->crash(ids[5]);  // two adjacent nodes at once
  h.net->crash(ids[12]);
  h.sim.run_until(sim::sec(240));

  EXPECT_EQ(h.net->alive_count(), 21u);
  h.expect_converged_ring();
}

TEST(ChordEdgeTest, TwoNodeRingRoutesBothWays) {
  Harness h(2);
  const auto ids = h.net->alive_ids();
  ChordNode& a = *h.net->node(ids[0]);
  // Keys on both arcs route to the right owner.
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const Key key = static_cast<Key>(
        rng.uniform_int(0, static_cast<std::int64_t>(h.net->ring().max_key())));
    a.send(key, std::make_shared<TestPayload>(i));
  }
  h.sim.run();
  ASSERT_EQ(h.recorder.unicast.size(), 50u);
  for (const auto& d : h.recorder.unicast) {
    EXPECT_EQ(d.node, h.net->oracle_successor(d.key));
  }
}

TEST(ChordEdgeTest, TwoNodeMcastCoversWholeRing) {
  Harness h(2);
  const RingParams ring = h.net->ring();
  std::vector<Key> all;
  for (Key k = 0; k < ring.size(); k += 64) all.push_back(k);
  h.net->alive_node(0).m_cast(all, std::make_shared<TestPayload>(1));
  h.sim.run();
  std::size_t total = 0;
  std::set<Key> nodes;
  for (const auto& d : h.recorder.mcast) {
    EXPECT_TRUE(nodes.insert(d.node).second);
    total += d.keys.size();
  }
  EXPECT_EQ(nodes.size(), 2u);
  EXPECT_EQ(total, all.size());
}

TEST(ChordEdgeTest, McastReroutesAroundDeadCandidate) {
  // Crash one of the source's fingers, let stabilization repair the
  // ring, then m-cast: the dead candidate must be evicted at transmit
  // time and its keys re-assigned, with the crashed node's own keys
  // delivered by its (repaired) successor.
  Harness h(24, maintenance_config());
  h.net->start_maintenance_all();
  h.sim.run_until(sim::sec(20));
  ChordNode& src = h.net->alive_node(0);
  const auto fingers = src.finger_table().distinct_nodes();
  ASSERT_GE(fingers.size(), 3u);
  const Key victim = fingers[fingers.size() / 2];
  h.net->crash(victim);
  h.sim.run_until(sim::sec(120));  // let successor lists repair coverage

  const RingParams ring = h.net->ring();
  std::vector<Key> targets = key_range(0, ring.size() / 2, ring);
  h.recorder.mcast.clear();
  src.m_cast(targets, std::make_shared<TestPayload>(9));
  h.sim.run_until(h.sim.now() + sim::sec(10));

  std::map<Key, std::size_t> expected;
  for (Key k : targets) expected[h.net->oracle_successor(k)] += 1;
  std::size_t total = 0;
  std::set<Key> seen;
  for (const auto& d : h.recorder.mcast) {
    EXPECT_TRUE(seen.insert(d.node).second);
    EXPECT_NE(d.node, victim);
    total += d.keys.size();
  }
  // Every key whose owner is alive must be delivered exactly once.
  EXPECT_EQ(total, targets.size());
  EXPECT_EQ(seen.size(), expected.size());
}

TEST(ChordEdgeTest, RouteSurvivesDeadNextHop) {
  Harness h(24);
  ChordNode& src = h.net->alive_node(2);
  const auto fingers = src.finger_table().distinct_nodes();
  const Key victim = fingers[fingers.size() - 1];  // farthest finger
  h.net->crash(victim);
  // Route to a key just past the dead finger: the first candidate fails
  // at transmit time and the route must fall back and still arrive.
  const Key key = h.net->ring().add(victim, 1);
  src.send(key, std::make_shared<TestPayload>(4));
  h.sim.run();
  ASSERT_EQ(h.recorder.unicast.size(), 1u);
  EXPECT_EQ(h.recorder.unicast[0].node, h.net->oracle_successor(key));
}

TEST(ChordMcastTest, ConnectionBoundPreserved) {
  // §4.3.1: the m-cast "preserves the log n limit on the number of
  // neighbors that each node has to maintain connections with" — every
  // node only ever transmits to its fingers/successor, never to
  // arbitrary peers. Verified by delegating a whole-ring multicast and
  // checking each sender's distinct destinations against its tables.
  Harness h(64);
  const RingParams ring = h.net->ring();
  std::vector<Key> all_keys(ring.size());
  for (Key k = 0; k < ring.size(); ++k) all_keys[k] = k;

  // A whole-ring m-cast: every node covers part of the target set and
  // must *deliver* exactly once (Figure 4's at-most-once guarantee).
  // Message count exceeds n - 1 only by boundary relay hops (a node can
  // additionally relay a segment that starts just past its own range),
  // staying within the O(N + log n) budget.
  h.net->alive_node(0).m_cast(all_keys, std::make_shared<TestPayload>(1));
  h.sim.run();

  std::set<Key> nodes;
  std::size_t keys_covered = 0;
  for (const McastDelivery& d : h.recorder.mcast) {
    EXPECT_TRUE(nodes.insert(d.node).second);
    keys_covered += d.keys.size();
  }
  EXPECT_EQ(nodes.size(), 64u);
  EXPECT_EQ(keys_covered, ring.size());
  const std::uint64_t hops =
      h.net->traffic().hops(overlay::MessageClass::kPublish);
  EXPECT_GE(hops, 63u);
  EXPECT_LE(hops, 2 * 63u);
}

TEST(ChordEdgeTest, EmptyMcastIsNoOp) {
  Harness h(4);
  h.net->alive_node(0).m_cast({}, std::make_shared<TestPayload>(1));
  h.net->alive_node(0).chain_cast({}, std::make_shared<TestPayload>(2));
  h.sim.run();
  EXPECT_TRUE(h.recorder.mcast.empty());
  EXPECT_EQ(h.net->traffic().total_hops(), 0u);
}

TEST(ChordNetworkTest, AliveNodeIndexesInIdOrderAndStaysFastAtScale) {
  // Regression: alive_node(i) used to walk a std::map with std::advance,
  // making every dense-index pick O(n) — the workload drivers sit on this
  // path, so large-ring benches degraded quadratically. The alive set is
  // now a sorted vector with O(1) indexing.
  sim::Simulator sim;
  ChordConfig cfg;
  cfg.ring = RingParams{24};
  ChordNetwork net(sim, cfg, 1);
  const std::size_t kNodes = 8'192;
  for (std::size_t i = 0; i < kNodes; ++i) {
    net.add_node_with_id(static_cast<Key>(i * 7 + 3),
                         "n" + std::to_string(i));
  }

  // Dense indexing agrees with the sorted id list, including after a
  // membership change in the middle of the range.
  const std::vector<Key> ids = net.alive_ids();
  ASSERT_EQ(ids.size(), kNodes);
  for (std::size_t i : {std::size_t{0}, kNodes / 3, kNodes - 1}) {
    EXPECT_EQ(net.alive_node(i).id(), ids[i]);
  }
  net.crash(ids[kNodes / 2]);
  ASSERT_EQ(net.alive_count(), kNodes - 1);
  EXPECT_EQ(net.alive_node(kNodes / 2).id(), ids[kNodes / 2 + 1]);

  // ~3M picks: O(1) finishes in well under a second; the old O(n) walk
  // (~12 billion iterator steps here) blows any sane budget.
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t sum = 0;
  for (std::uint64_t round = 0; round < 400; ++round) {
    for (std::size_t i = 0; i < kNodes - 1; ++i) {
      sum += net.alive_node(i).id();
    }
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_NE(sum, 0u);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            2'000);
}

TEST(ChordMaintenanceTest, StabilizationFixesManuallyBrokenRing) {
  Harness h(12, maintenance_config());
  // Degrade: give one node a wrong (but alive) successor.
  const std::vector<Key> ids = h.net->alive_ids();
  ChordNode& victim = *h.net->node(ids[2]);
  victim.install_state(ids[1], {ids[7]}, std::vector<Key>(13, ids[7]));
  h.net->start_maintenance_all();
  h.sim.run_until(sim::sec(120));
  h.expect_converged_ring();
}

}  // namespace
}  // namespace cbps::chord
