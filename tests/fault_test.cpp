// Tests for the fault-scenario engine: Gilbert–Elliott bursty loss,
// FaultScript parsing, adaptive (Jacobson/Karn) retransmission timeouts,
// scripted partition/heal with the post-heal invariant auditor, the
// ghost-delivery regression, membership-guard death tests and the
// determinism of churn + fault runs across sweep worker counts.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cbps/chord/network.hpp"
#include "cbps/chord/node.hpp"
#include "cbps/common/rng.hpp"
#include "cbps/pubsub/audit.hpp"
#include "cbps/pubsub/delivery_checker.hpp"
#include "cbps/sim/loss.hpp"
#include "cbps/workload/churn.hpp"
#include "cbps/workload/driver.hpp"
#include "cbps/workload/fault_script.hpp"
#include "sweep.hpp"

namespace cbps {
namespace {

using workload::FaultDirective;
using workload::FaultScript;
using workload::FaultScriptRunner;

// ---------------------------------------------------------------------------
// Gilbert–Elliott loss model
// ---------------------------------------------------------------------------

TEST(GilbertElliottLossTest, StationaryStatisticsMatchTheory) {
  const double p = 0.05, q = 0.25, good = 0.01, bad = 0.8;
  sim::GilbertElliottLoss loss(p, q, good, bad);
  EXPECT_DOUBLE_EQ(loss.stationary_bad(), p / (p + q));
  EXPECT_DOUBLE_EQ(loss.mean_rate(),
                   loss.stationary_bad() * bad +
                       (1.0 - loss.stationary_bad()) * good);

  Rng rng(31);
  const int kDraws = 300'000;
  int dropped = 0;
  for (int i = 0; i < kDraws; ++i) dropped += loss.drop(rng) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(dropped) / kDraws, loss.mean_rate(),
              0.01);
}

TEST(GilbertElliottLossTest, DropsAreBurstyComparedToUniform) {
  // With bad_loss = 1, a drop run lasts as long as the Bad state:
  // geometric with mean 1/q messages. A uniform model at the same mean
  // rate produces runs of mean 1/(1-rate) ~= 1.
  const double p = 0.01, q = 0.25;
  sim::GilbertElliottLoss ge(p, q, 0.0, 1.0);
  sim::UniformLoss uniform(ge.mean_rate());

  const auto mean_drop_run = [](sim::LossModel& m, std::uint64_t seed) {
    Rng rng(seed);
    int runs = 0, drops = 0;
    bool in_run = false;
    for (int i = 0; i < 300'000; ++i) {
      if (m.drop(rng)) {
        ++drops;
        if (!in_run) ++runs;
        in_run = true;
      } else {
        in_run = false;
      }
    }
    return runs == 0 ? 0.0 : static_cast<double>(drops) / runs;
  };

  const double ge_run = mean_drop_run(ge, 33);
  const double uniform_run = mean_drop_run(uniform, 34);
  EXPECT_NEAR(ge_run, 1.0 / q, 1.0);
  EXPECT_LT(uniform_run, 1.5);
  EXPECT_GT(ge_run, 2.0 * uniform_run);
}

// ---------------------------------------------------------------------------
// FaultScript parsing
// ---------------------------------------------------------------------------

TEST(FaultScriptTest, ParsesEveryDirectiveKind) {
  const char* text =
      "# robustness scenario\n"
      "partition at=10 heal=40 frac=0.4\n"
      "loss at=5 until=35 model=ge p=0.05 q=0.25 good=0.01 bad=0.8\n"
      "slow at=10 until=50 nodes=3 factor=8; crash_burst at=20 count=5 "
      "correlation=0.7\n"
      "checkpoint at=60 label=post-heal\n";
  std::string error;
  const auto script = FaultScript::parse(text, &error);
  ASSERT_TRUE(script.has_value()) << error;
  ASSERT_EQ(script->directives.size(), 5u);

  const FaultDirective& part = script->directives[0];
  EXPECT_EQ(part.kind, FaultDirective::Kind::kPartition);
  EXPECT_EQ(part.at, sim::sec(10));
  EXPECT_EQ(part.until, sim::sec(40));
  EXPECT_DOUBLE_EQ(part.frac, 0.4);

  const FaultDirective& loss = script->directives[1];
  EXPECT_EQ(loss.kind, FaultDirective::Kind::kLoss);
  EXPECT_EQ(loss.loss_kind, FaultDirective::LossKind::kGilbertElliott);
  EXPECT_DOUBLE_EQ(loss.ge_p, 0.05);
  EXPECT_DOUBLE_EQ(loss.ge_q, 0.25);
  EXPECT_DOUBLE_EQ(loss.ge_good, 0.01);
  EXPECT_DOUBLE_EQ(loss.ge_bad, 0.8);

  const FaultDirective& slow = script->directives[2];
  EXPECT_EQ(slow.kind, FaultDirective::Kind::kSlow);
  EXPECT_EQ(slow.nodes, 3u);
  EXPECT_DOUBLE_EQ(slow.factor, 8.0);

  const FaultDirective& burst = script->directives[3];
  EXPECT_EQ(burst.kind, FaultDirective::Kind::kCrashBurst);
  EXPECT_EQ(burst.count, 5u);
  EXPECT_DOUBLE_EQ(burst.correlation, 0.7);
  EXPECT_EQ(burst.until, sim::kSimTimeNever);

  const FaultDirective& cp = script->directives[4];
  EXPECT_EQ(cp.kind, FaultDirective::Kind::kCheckpoint);
  EXPECT_EQ(cp.label, "post-heal");
}

TEST(FaultScriptTest, EmptyAndCommentOnlyInputsParseToEmptyScripts) {
  EXPECT_TRUE(FaultScript::parse("")->empty());
  EXPECT_TRUE(FaultScript::parse("  # nothing\n\n;;\n")->empty());
}

TEST(FaultScriptTest, RejectsMalformedInput) {
  const char* bad_inputs[] = {
      "explode at=3",                  // unknown directive
      "partition heal=40 frac=0.4",    // missing at
      "partition at=50 heal=40",       // heal before start
      "loss at=0 model=weird",         // unknown loss model
      "loss at=0 rate=1.5",            // probability out of range
      "partition at=1 foo=2",          // unknown key
      "partition at=1 frac",           // not key=value
      "slow at=2 factor=0.5",          // slowdown below 1 is a speedup
      "crash_burst at=1 count=0",      // empty burst
      "partition at=1 frac=1.0",       // cutting everyone is no partition
  };
  for (const char* text : bad_inputs) {
    std::string error;
    EXPECT_FALSE(FaultScript::parse(text, &error).has_value()) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(FaultScriptTest, ReliableTransportOnlyWhenMessagesCanBeLost) {
  EXPECT_FALSE(FaultScript::parse("slow at=1 nodes=2 factor=4; "
                                  "checkpoint at=9")
                   ->needs_reliable_transport());
  EXPECT_TRUE(FaultScript::parse("partition at=1 heal=5 frac=0.3")
                  ->needs_reliable_transport());
  EXPECT_TRUE(FaultScript::parse("loss at=1 rate=0.1")
                  ->needs_reliable_transport());
  EXPECT_TRUE(FaultScript::parse("crash_burst at=1 count=2")
                  ->needs_reliable_transport());
}

TEST(FaultScriptTest, AllClearTracksTheLatestFault) {
  EXPECT_EQ(FaultScript{}.all_clear_at(), 0u);
  const auto script = FaultScript::parse(
      "partition at=10 heal=40\n"
      "slow at=50 until=60 nodes=1\n"
      "crash_burst at=100 count=2\n");  // one-shot: clears at its start
  ASSERT_TRUE(script.has_value());
  EXPECT_EQ(script->all_clear_at(), sim::sec(100));
  // A persistent fault (no until) counts from its start; nothing later
  // ever clears it.
  EXPECT_EQ(FaultScript::parse("loss at=30 rate=0.1")->all_clear_at(),
            sim::sec(30));
}

// ---------------------------------------------------------------------------
// Adaptive retransmission (Jacobson/Karn RTO)
// ---------------------------------------------------------------------------

struct PingPayload final : overlay::Payload {
  overlay::MessageClass message_class() const override {
    return overlay::MessageClass::kPublish;
  }
};

class NullApp final : public overlay::OverlayApp {
 public:
  void on_deliver(Key, const overlay::PayloadPtr&) override { ++delivered; }
  void on_deliver_mcast(std::span<const Key>,
                        const overlay::PayloadPtr&) override {}
  overlay::PayloadPtr export_state(Key, Key, bool) override {
    return nullptr;
  }
  void import_state(const overlay::PayloadPtr&) override {}
  int delivered = 0;
};

struct RtoHarness {
  explicit RtoHarness(chord::ChordConfig cfg) {
    net = std::make_unique<chord::ChordNetwork>(sim, cfg, 17);
    net->add_node("a");
    net->add_node("b");
    net->build_static_ring();
    for (Key id : net->alive_ids()) net->node(id)->set_app(&app);
  }

  sim::Simulator sim;
  std::unique_ptr<chord::ChordNetwork> net;
  NullApp app;
};

TEST(AdaptiveRtoTest, ConvergesFromRetryBaseToTheLinkRtt) {
  chord::ChordConfig cfg;
  cfg.force_reliable = true;  // lossless, but acked: RTT samples flow
  RtoHarness h(cfg);
  const std::vector<Key> ids = h.net->alive_ids();

  // No traffic yet: the estimator has no sample, so the configured
  // retry_base is the timeout.
  EXPECT_EQ(h.net->node(ids[0])->current_rto(ids[1]), cfg.retry_base);

  // The default wire is a fixed 50 ms each way, so every clean sample is
  // a 100 ms RTT; SRTT locks to it and RTTVAR decays to ~0. The RTO must
  // leave retry_base and settle just above the true RTT (clamped below
  // by rto_min).
  for (int i = 0; i < 20; ++i) {
    h.net->node(ids[0])->send(ids[1], std::make_shared<PingPayload>());
    h.sim.run();
  }
  const sim::SimTime rto = h.net->node(ids[0])->current_rto(ids[1]);
  EXPECT_NE(rto, cfg.retry_base);
  EXPECT_GE(rto, cfg.rto_min);
  EXPECT_LT(rto, sim::ms(150));
  EXPECT_EQ(h.app.delivered, 20);
}

TEST(AdaptiveRtoTest, KarnRuleIgnoresAcksOfRetransmittedSends) {
  // Drop exactly the first transmission: the message is delivered by its
  // retransmit, whose ack is ambiguous (which copy does it answer?), so
  // it must NOT feed the estimator — the RTO stays at retry_base.
  // Clones (the per-sender channels) share the counter so exactly the
  // first N transmissions anywhere are dropped, not N per sender.
  struct DropFirstN final : sim::LossModel {
    explicit DropFirstN(int n) : left(std::make_shared<int>(n)) {}
    bool drop(Rng&) override { return (*left)-- > 0; }
    std::unique_ptr<sim::LossModel> clone() const override {
      auto copy = std::make_unique<DropFirstN>(0);
      copy->left = left;
      return copy;
    }
    std::shared_ptr<int> left;
  };

  chord::ChordConfig cfg;
  cfg.force_reliable = true;
  RtoHarness h(cfg);
  const std::vector<Key> ids = h.net->alive_ids();
  h.net->set_loss_model(std::make_unique<DropFirstN>(1));

  h.net->node(ids[0])->send(ids[1], std::make_shared<PingPayload>());
  h.sim.run();

  EXPECT_EQ(h.app.delivered, 1);
  EXPECT_EQ(h.net->registry().counter_value("chord.retransmits"), 1u);
  EXPECT_EQ(h.net->node(ids[0])->current_rto(ids[1]), cfg.retry_base);
}

TEST(AdaptiveRtoTest, DisabledEstimatorAlwaysUsesRetryBase) {
  chord::ChordConfig cfg;
  cfg.force_reliable = true;
  cfg.adaptive_rto = false;
  RtoHarness h(cfg);
  const std::vector<Key> ids = h.net->alive_ids();
  for (int i = 0; i < 10; ++i) {
    h.net->node(ids[0])->send(ids[1], std::make_shared<PingPayload>());
    h.sim.run();
  }
  EXPECT_EQ(h.net->node(ids[0])->current_rto(ids[1]), cfg.retry_base);
}

// ---------------------------------------------------------------------------
// Scripted partition / heal + invariant audit
// ---------------------------------------------------------------------------

pubsub::SystemConfig fault_config(std::size_t nodes,
                                  const FaultScript& script,
                                  std::size_t replication = 0) {
  pubsub::SystemConfig cfg;
  cfg.nodes = nodes;
  cfg.seed = 5;
  cfg.chord.ring = RingParams{11};
  cfg.chord.stabilize_period = sim::sec(5);
  cfg.chord.force_reliable = script.needs_reliable_transport();
  cfg.mapping = pubsub::MappingKind::kSelectiveAttribute;
  cfg.pubsub.sub_transport = pubsub::PubSubConfig::Transport::kMulticast;
  cfg.pubsub.replication_factor = replication;
  return cfg;
}

TEST(FaultScenarioTest, PartitionSplitsTheRingAndHealRemergesIt) {
  const auto script = FaultScript::parse("partition at=20 heal=120 frac=0.4");
  ASSERT_TRUE(script.has_value());
  pubsub::PubSubSystem system(fault_config(32, *script),
                              pubsub::Schema::uniform(2, 999));
  system.network().start_maintenance_all();
  FaultScriptRunner runner(system, *script, 5);
  runner.start();

  // Mid-partition the two arcs have stabilized into separate sub-rings,
  // both of which disagree with the global membership oracle.
  system.run_for(sim::sec(80));
  EXPECT_EQ(runner.partitions_applied(), 1u);
  EXPECT_FALSE(pubsub::audit_ring(system.network()).ok());

  // After the heal, remembered-contact probing and stabilization must
  // re-merge the arcs into one oracle-consistent ring.
  system.run_for(sim::sec(50));  // now 10 s past the heal
  for (int i = 0; i < 40 && !pubsub::audit_ring(system.network()).ok();
       ++i) {
    system.run_for(sim::sec(10));
  }
  const pubsub::RingAuditReport report = pubsub::audit_ring(system.network());
  EXPECT_TRUE(report.ok()) << (report.issues.empty() ? ""
                                                     : report.issues[0]);
  EXPECT_EQ(report.nodes_audited, 32u);
}

TEST(FaultScenarioTest, PostHealDeliveryIsCompleteAndAuditClean) {
  // The acceptance scenario: subscribe (some mid-partition), cut 40% of
  // the ring off for 200 s while publishing through it, heal, and
  // require a clean system audit plus a post-heal delivery ratio of 1
  // with bounded duplicates.
  const auto script = FaultScript::parse("partition at=100 heal=300 frac=0.4");
  ASSERT_TRUE(script.has_value());
  pubsub::PubSubSystem system(fault_config(48, *script, /*replication=*/2),
                              pubsub::Schema::uniform(3, 99'999));
  system.network().start_maintenance_all();

  pubsub::DeliveryChecker checker;
  FaultScriptRunner runner(system, *script, 5);
  runner.set_delivery_checker(&checker);
  runner.start();

  workload::WorkloadParams wp;
  wp.matching_probability = 0.8;
  workload::WorkloadGenerator gen(system.schema(), wp, 19);
  workload::DriverParams dp;
  dp.max_subscriptions = 30;
  dp.max_publications = 120;
  workload::Driver driver(system, gen, dp, &checker);
  driver.start();

  while (!driver.finished()) system.run_for(sim::sec(60));
  system.run_for(sim::sec(120));
  system.network().stop_maintenance_all();
  system.quiesce();

  const pubsub::SystemAuditReport audit = pubsub::audit_system(system);
  EXPECT_TRUE(audit.ok()) << (audit.issues.empty() ? "" : audit.issues[0]);

  // Post-heal window: publications after the script's last fault cleared
  // plus a few stabilization rounds must all deliver, exactly once.
  const sim::SimTime window =
      script->all_clear_at() + 8 * system.config().chord.stabilize_period;
  const auto report = checker.verify(sim::sec(15), window);
  ASSERT_GT(report.expected, 20u);
  EXPECT_EQ(report.missing, 0u)
      << (report.issues.empty() ? "" : report.issues[0]);
  EXPECT_EQ(report.duplicates, 0u);
  EXPECT_EQ(report.spurious, 0u);
}

// ---------------------------------------------------------------------------
// Ghost-delivery regression
// ---------------------------------------------------------------------------

TEST(FaultScenarioTest, CrashedSubscriberReceivesNoGhostNotifications) {
  // Regression: a crashed rendezvous with buffering enabled used to keep
  // flushing its buffered notifications, so a subscriber could hear from
  // beyond the grave. The pub/sub layer is halted on crash; nothing may
  // surface at the dead node after the crash instant.
  pubsub::SystemConfig cfg;
  cfg.nodes = 24;
  cfg.seed = 7;
  cfg.chord.ring = RingParams{11};
  cfg.mapping = pubsub::MappingKind::kSelectiveAttribute;
  cfg.pubsub.sub_transport = pubsub::PubSubConfig::Transport::kMulticast;
  cfg.pubsub.buffering = true;
  cfg.pubsub.buffer_period = sim::sec(5);
  pubsub::PubSubSystem system(cfg, pubsub::Schema::uniform(2, 999));

  pubsub::DeliveryChecker checker;
  struct SinkEntry {
    Key subscriber;
    sim::SimTime when;
  };
  std::vector<SinkEntry> sink;
  system.set_notify_sink([&](Key subscriber, const pubsub::Notification& n) {
    sink.push_back({subscriber, system.sim().now()});
    checker.on_notify(subscriber, n, system.sim().now());
  });

  // Everyone subscribes to everything, so every node is both a
  // subscriber and (for some key) a rendezvous.
  for (std::size_t i = 0; i < system.node_count(); ++i) {
    checker.on_subscribe(system.subscribe(i, {{0, {0, 999}}}),
                         system.sim().now(), sim::kSimTimeNever);
  }
  system.quiesce();
  system.run_for(sim::sec(10));  // clear the checker's grace window

  auto event = std::make_shared<pubsub::Event>();
  event->values = {123, 456};
  event->id = system.publish(0, event->values);
  checker.on_publish(event, system.sim().now());
  const std::size_t victim = 7;
  const Key victim_key = system.node_id(victim);
  const sim::SimTime crash_at = system.sim().now();
  system.crash_node(victim);
  checker.on_node_crashed(victim_key, crash_at);
  system.quiesce();

  std::size_t live_deliveries = 0;
  for (const SinkEntry& e : sink) {
    EXPECT_FALSE(e.subscriber == victim_key && e.when >= crash_at)
        << "ghost delivery at crashed node " << victim_key;
    if (e.subscriber != victim_key) ++live_deliveries;
  }
  // The event itself did flow to the survivors.
  EXPECT_GE(live_deliveries, 20u);

  // The oracle must not count the crashed subscriber as expected (its
  // subscription ends at the crash), and nothing it saw was a ghost.
  const auto report = checker.verify();
  EXPECT_TRUE(report.ok()) << (report.issues.empty() ? ""
                                                     : report.issues[0]);
  EXPECT_EQ(report.expected, 23u);  // 24 subscribers minus the victim
}

// ---------------------------------------------------------------------------
// Membership guard death tests
// ---------------------------------------------------------------------------

using FaultGuardDeathTest = ::testing::Test;

TEST(FaultGuardDeathTest, DoubleRemovalIsRejected) {
  sim::Simulator sim;
  chord::ChordNetwork net(sim, chord::ChordConfig{}, 3);
  for (int i = 0; i < 3; ++i) net.add_node("n" + std::to_string(i));
  net.build_static_ring();
  const Key victim = net.alive_ids()[0];
  net.crash(victim);
  EXPECT_DEATH(net.crash(victim), "not alive");
  EXPECT_DEATH(net.leave_gracefully(victim), "not alive");
}

TEST(FaultGuardDeathTest, LastAliveNodeCannotBeRemoved) {
  sim::Simulator sim;
  chord::ChordNetwork net(sim, chord::ChordConfig{}, 3);
  net.add_node("only");
  net.build_static_ring();
  const Key only = net.alive_ids()[0];
  EXPECT_DEATH(net.crash(only), "last alive");
  EXPECT_DEATH(net.leave_gracefully(only), "last alive");
}

// ---------------------------------------------------------------------------
// Determinism of churn + fault runs across sweep workers
// ---------------------------------------------------------------------------

struct ChurnFingerprint {
  std::vector<workload::ChurnDriver::ChurnEvent> log;
  std::uint64_t script_crashes = 0;
  std::uint64_t total_hops = 0;
};

bench::JsonFields json_fields(const ChurnFingerprint& r) {
  return {{"events", static_cast<double>(r.log.size())},
          {"total_hops", static_cast<double>(r.total_hops)}};
}

std::vector<ChurnFingerprint> run_churn_sweep(std::size_t jobs) {
  bench::Sweep<ChurnFingerprint> sweep("fault_determinism_test");
  bench::SweepOptions opts;
  opts.jobs = jobs;
  sweep.set_options(opts);
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    sweep.add("seed=" + std::to_string(seed), [seed] {
      const auto script = FaultScript::parse(
          "slow at=50 until=250 nodes=2 factor=4\n"
          "crash_burst at=150 count=2 correlation=0.5");
      pubsub::SystemConfig cfg;
      cfg.nodes = 24;
      cfg.seed = seed;
      cfg.chord.ring = RingParams{11};
      cfg.chord.stabilize_period = sim::sec(5);
      cfg.chord.force_reliable = script->needs_reliable_transport();
      cfg.mapping = pubsub::MappingKind::kSelectiveAttribute;
      pubsub::PubSubSystem system(cfg, pubsub::Schema::uniform(2, 999));
      system.network().start_maintenance_all();

      FaultScriptRunner runner(system, *script, seed);
      runner.start();
      workload::ChurnParams cp;
      cp.mean_interval_s = 30.0;
      cp.min_nodes = 12;
      workload::ChurnDriver churn(system, cp, seed * 31 + 7);
      churn.start();

      system.run_for(sim::sec(600));
      churn.stop();
      system.run_for(sim::sec(60));
      return ChurnFingerprint{churn.event_log(), runner.crashes(),
                              system.traffic().total_hops()};
    });
  }
  return sweep.run();
}

TEST(ChurnDeterminismTest, SameSeedIsIdenticalAcrossWorkerCounts) {
  const auto serial = run_churn_sweep(1);
  const auto parallel = run_churn_sweep(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_GT(serial[i].log.size(), 4u);
    EXPECT_EQ(serial[i].script_crashes, parallel[i].script_crashes);
    EXPECT_EQ(serial[i].total_hops, parallel[i].total_hops);
    ASSERT_EQ(serial[i].log.size(), parallel[i].log.size());
    for (std::size_t e = 0; e < serial[i].log.size(); ++e) {
      EXPECT_EQ(serial[i].log[e].kind, parallel[i].log[e].kind);
      EXPECT_EQ(serial[i].log[e].node, parallel[i].log[e].node);
      EXPECT_EQ(serial[i].log[e].at, parallel[i].log[e].at);
    }
  }
}

}  // namespace
}  // namespace cbps
